type t = {
  name : string;
  slug : string;
  description : string;
  source : string;
  mem_words : int;
  init_mem : int array -> unit;
  golden : int array -> int array;
}

(* Compiled-CDFG cache, shared by every (config, flow) cell of a kernel.
   The experiment harness maps cells from several domains concurrently, and
   an unguarded Hashtbl corrupts under parallel mutation — so all access
   holds [cache_mutex].  Compilation is a few ms per kernel and happens at
   most once per kernel per process, so compiling inside the lock is
   fine (and guarantees a single canonical CDFG value per kernel). *)
let cache : (string, Cgra_ir.Cdfg.t) Hashtbl.t = Hashtbl.create 8
let raw_cache : (string, Cgra_ir.Cdfg.t) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let memoized cache compile k =
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache k.slug with
      | Some c -> c
      | None ->
        let c = compile k.source in
        Hashtbl.add cache k.slug c;
        c)

let cdfg k = memoized cache Cgra_lang.Compile.compile_exn k

let cdfg_raw k =
  memoized raw_cache (Cgra_lang.Compile.compile_exn ~raw:true) k

let fresh_mem k =
  let mem = Array.make k.mem_words 0 in
  k.init_mem mem;
  mem

let run_golden k = k.golden (fresh_mem k)
