(** Definition of one benchmark kernel.

    Each of the paper's seven compute-intensive signal-processing kernels
    (Section IV) is written in the kernel language, paired with a plain
    OCaml golden model used to validate the interpreter, the CGRA
    simulator and the CPU baseline against each other. *)

type t = {
  name : string;  (** paper label, e.g. "FIR" *)
  slug : string;  (** identifier, e.g. "fir" *)
  description : string;
  source : string;  (** kernel-language program *)
  mem_words : int;  (** data-memory image size *)
  init_mem : int array -> unit;  (** writes the deterministic inputs *)
  golden : int array -> int array;
      (** expected final memory, computed in OCaml from the initial image
          (the argument is not mutated) *)
}

val cdfg : t -> Cgra_ir.Cdfg.t
(** Compile the kernel source (memoized).  Raises
    [Cgra_lang.Compile.Error] if the bundled source does not compile — a
    programming error caught by the tests. *)

val cdfg_raw : t -> Cgra_ir.Cdfg.t
(** Same source compiled with {!Cgra_lang.Compile.compile}[ ~raw:true]
    (naive lowering, no clean-up; memoized separately): the unoptimized
    baseline the [cgra_opt] pipeline and the [opt_report] artifact start
    from. *)

val fresh_mem : t -> int array
(** A new initialised memory image. *)

val run_golden : t -> int array
(** [golden] applied to a fresh image. *)
