(** Reference interpreter for {!Cdfg.t}.

    Serves two roles: it produces the golden memory image against which the
    CGRA simulator and the CPU baseline are checked, and it records the
    dynamic basic-block trace used to turn per-block latencies into total
    kernel cycles. *)

type trace = {
  block_counts : int array;  (** executions per block id *)
  block_order : int list;    (** dynamic order, first executed first *)
  steps : int;               (** total blocks executed *)
}

exception Out_of_bounds of { block : string; node : int; addr : int }
(** A load or store escaped the memory image. *)

exception
  Bad_arity of { block : string; node : int; opcode : string; expected : int; got : int }
(** A [Load]/[Store] node carried the wrong operand count — a malformed
    CDFG that slipped past {!Cdfg.validate} (which rejects it when run).
    Named diagnostics instead of the bare [Failure "nth"] the old
    operand indexing died with. *)

exception Step_limit_exceeded
(** The kernel did not return within [max_steps] blocks. *)

val run :
  ?init_syms:(Cdfg.sym * int) list ->
  ?max_steps:int ->
  Cdfg.t ->
  mem:int array ->
  trace
(** [run cdfg ~mem] executes from the entry block until [Return], mutating
    [mem] in place.  Symbol variables start at 0 unless overridden by
    [init_syms].  [max_steps] (default 1_000_000) bounds the number of
    executed blocks. *)

val eval_block :
  Cdfg.t -> int -> sym_env:int array -> mem:int array -> int option
(** [eval_block cdfg bi ~sym_env ~mem] executes one block: evaluates its
    nodes, applies [live_out] to [sym_env], and returns the successor block
    (or [None] for [Return]).  Exposed for differential testing against the
    CGRA simulator at block granularity. *)
