(** Imperative construction of {!Cdfg.t} values.

    Used by the kernel-language lowering ({!Cgra_lang}) and by tests that
    build small CDFGs by hand.  Blocks and symbols are declared first so
    terminators can reference forward blocks; nodes are appended in order,
    which guarantees the strictly-decreasing operand invariant of
    {!Cdfg.validate}. *)

type t
type block_handle

val create : string -> t
(** [create kernel_name] starts an empty CDFG. *)

val fresh_sym : t -> string -> Cdfg.sym
(** Declares a symbol variable (cross-block value). *)

val add_block : t -> string -> block_handle
(** Declares a block; the first declared block is the entry. *)

val block_id : block_handle -> int

val add_node :
  ?mem_dep:int list ->
  t -> block_handle -> Opcode.t -> Cdfg.operand list -> Cdfg.operand
(** Appends an operation node; returns its result as an operand.  Raises
    [Invalid_argument] on arity mismatch or if the opcode has no result and
    the returned operand would be used (Store returns a dummy operand that
    must not be consumed). *)

val set_live_out : t -> block_handle -> Cdfg.sym -> Cdfg.operand -> unit
(** Records [sym := operand] at block exit.  A later call for the same
    symbol in the same block replaces the earlier one. *)

val set_terminator : t -> block_handle -> Cdfg.terminator -> unit
(** Must be called exactly once per block before {!finish}. *)

type error =
  | Missing_terminator of { block : string }
      (** {!set_terminator} was never called for [block]. *)
  | Invalid_cdfg of { kernel : string; reason : string }
      (** The frozen CDFG failed {!Cdfg.validate}. *)

val error_to_string : error -> string

exception Build_error of error
(** Registered with [Printexc.register_printer]. *)

val finish : t -> Cdfg.t
(** Freezes the CDFG and validates it; raises {!Build_error} on
    ill-formed input. *)

val finish_result : t -> (Cdfg.t, error) result
(** Like {!finish} but returns the error instead of raising. *)
