type proto_block = {
  pname : string;
  mutable pnodes : Cdfg.node list; (* reversed *)
  mutable pcount : int;
  mutable plive_out : (Cdfg.sym * Cdfg.operand) list; (* reversed, latest first *)
  mutable pterm : Cdfg.terminator option;
}

type t = {
  kname : string;
  mutable pblocks : proto_block list; (* reversed *)
  mutable nblocks : int;
  mutable syms : string list; (* reversed *)
  mutable nsyms : int;
}

type block_handle = { bid : int; proto : proto_block }

let create kname = { kname; pblocks = []; nblocks = 0; syms = []; nsyms = 0 }

let fresh_sym b name =
  let id = b.nsyms in
  b.nsyms <- id + 1;
  b.syms <- name :: b.syms;
  id

let add_block b pname =
  let proto = { pname; pnodes = []; pcount = 0; plive_out = []; pterm = None } in
  let bid = b.nblocks in
  b.nblocks <- bid + 1;
  b.pblocks <- proto :: b.pblocks;
  { bid; proto }

let block_id h = h.bid

let add_node ?(mem_dep = []) _b h opcode operands =
  if List.length operands <> Opcode.arity opcode then
    invalid_arg
      (Printf.sprintf "Builder.add_node: %s expects %d operands"
         (Opcode.to_string opcode) (Opcode.arity opcode));
  let id = h.proto.pcount in
  h.proto.pcount <- id + 1;
  h.proto.pnodes <- { Cdfg.opcode; operands; mem_dep } :: h.proto.pnodes;
  Cdfg.Node id

let set_live_out _b h sym op =
  h.proto.plive_out <- (sym, op) :: List.remove_assoc sym h.proto.plive_out

let set_terminator _b h term = h.proto.pterm <- Some term

type error =
  | Missing_terminator of { block : string }
  | Invalid_cdfg of { kernel : string; reason : string }

let error_to_string = function
  | Missing_terminator { block } ->
    Printf.sprintf "block %s has no terminator" block
  | Invalid_cdfg { kernel; reason } ->
    Printf.sprintf "kernel %s froze to an invalid CDFG: %s" kernel reason

exception Build_error of error

let () =
  Printexc.register_printer (function
    | Build_error e -> Some (Printf.sprintf "Builder.Build_error (%s)" (error_to_string e))
    | _ -> None)

let finish_result b =
  let exception Freeze of error in
  let freeze proto =
    match proto.pterm with
    | None -> raise (Freeze (Missing_terminator { block = proto.pname }))
    | Some terminator ->
      { Cdfg.name = proto.pname;
        nodes = Array.of_list (List.rev proto.pnodes);
        live_out = List.rev proto.plive_out;
        terminator }
  in
  match List.rev_map freeze b.pblocks with
  | exception Freeze e -> Error e
  | blocks ->
    let c =
      { Cdfg.kernel_name = b.kname;
        blocks = Array.of_list blocks;
        entry = 0;
        sym_count = b.nsyms;
        sym_names = Array.of_list (List.rev b.syms) }
    in
    (match Cdfg.validate c with
     | Ok () -> Ok c
     | Error reason -> Error (Invalid_cdfg { kernel = b.kname; reason }))

let finish b =
  match finish_result b with Ok c -> c | Error e -> raise (Build_error e)
