type trace = {
  block_counts : int array;
  block_order : int list;
  steps : int;
}

exception Out_of_bounds of { block : string; node : int; addr : int }

exception
  Bad_arity of { block : string; node : int; opcode : string; expected : int; got : int }

exception Step_limit_exceeded

let eval_block (c : Cdfg.t) bi ~sym_env ~mem =
  let b = c.Cdfg.blocks.(bi) in
  let results = Array.make (Array.length b.nodes) 0 in
  let value = function
    | Cdfg.Node j -> results.(j)
    | Cdfg.Sym s -> sym_env.(s)
    | Cdfg.Imm k -> Opcode.wrap32 k
  in
  let mem_check i addr =
    if addr < 0 || addr >= Array.length mem then
      raise (Out_of_bounds { block = b.name; node = i; addr })
  in
  (* Strict operand patterns instead of [List.nth]: a malformed node (one
     that slipped past [Cdfg.validate]) surfaces as a typed [Bad_arity]
     naming the node, not as a bare [Failure "nth"]. *)
  let bad_arity i op expected got =
    raise
      (Bad_arity
         { block = b.name; node = i; opcode = Opcode.to_string op; expected; got })
  in
  Array.iteri
    (fun i n ->
      match n.Cdfg.opcode with
      | Opcode.Load -> (
        match n.Cdfg.operands with
        | [ a ] ->
          let addr = value a in
          mem_check i addr;
          results.(i) <- mem.(addr)
        | ops -> bad_arity i Opcode.Load 1 (List.length ops))
      | Opcode.Store -> (
        match n.Cdfg.operands with
        | [ a; v ] ->
          let addr = value a in
          let v = value v in
          mem_check i addr;
          mem.(addr) <- v
        | ops -> bad_arity i Opcode.Store 2 (List.length ops))
      | op -> results.(i) <- Opcode.eval op (List.map value n.operands))
    b.nodes;
  (* live_out right-hand sides are all read before any write, so
     [i := j; j := i] style swaps behave like parallel assignment. *)
  let updates = List.map (fun (s, op) -> (s, value op)) b.live_out in
  List.iter (fun (s, v) -> sym_env.(s) <- v) updates;
  match b.terminator with
  | Cdfg.Jump t -> Some t
  | Cdfg.Branch (cond, t, e) -> Some (if value cond <> 0 then t else e)
  | Cdfg.Return -> None

let run ?(init_syms = []) ?(max_steps = 1_000_000) (c : Cdfg.t) ~mem =
  let sym_env = Array.make (max 1 c.Cdfg.sym_count) 0 in
  List.iter (fun (s, v) -> sym_env.(s) <- Opcode.wrap32 v) init_syms;
  let counts = Array.make (Array.length c.blocks) 0 in
  let rec go bi order steps =
    if steps >= max_steps then raise Step_limit_exceeded;
    counts.(bi) <- counts.(bi) + 1;
    match eval_block c bi ~sym_env ~mem with
    | Some next -> go next (bi :: order) (steps + 1)
    | None ->
      { block_counts = counts; block_order = List.rev (bi :: order); steps = steps + 1 }
  in
  go c.entry [] 0
