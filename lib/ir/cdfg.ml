type sym = int

type operand = Node of int | Sym of sym | Imm of int

type node = { opcode : Opcode.t; operands : operand list; mem_dep : int list }

type terminator = Jump of int | Branch of operand * int * int | Return

type block = {
  name : string;
  nodes : node array;
  live_out : (sym * operand) list;
  terminator : terminator;
}

type t = {
  kernel_name : string;
  blocks : block array;
  entry : int;
  sym_count : int;
  sym_names : string array;
}

let block_count c = Array.length c.blocks

let node_count c =
  Array.fold_left (fun acc b -> acc + Array.length b.nodes) 0 c.blocks

let term_targets = function
  | Jump b -> [ b ]
  | Branch (_, t, e) -> [ t; e ]
  | Return -> []

let cfg c =
  let g = Cgra_graph.Digraph.create () in
  Array.iter (fun _ -> ignore (Cgra_graph.Digraph.add_node g)) c.blocks;
  Array.iteri
    (fun i b ->
      List.iter
        (fun dst -> Cgra_graph.Digraph.add_edge g ~src:i ~dst)
        (term_targets b.terminator))
    c.blocks;
  g

let dfg_graph b =
  let g = Cgra_graph.Digraph.create () in
  Array.iter (fun _ -> ignore (Cgra_graph.Digraph.add_node g)) b.nodes;
  Array.iteri
    (fun i n ->
      List.iter
        (function
          | Node j -> Cgra_graph.Digraph.add_edge g ~src:j ~dst:i
          | Sym _ | Imm _ -> ())
        n.operands;
      List.iter (fun j -> Cgra_graph.Digraph.add_edge g ~src:j ~dst:i) n.mem_dep)
    b.nodes;
  g

let validate c =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nblocks = Array.length c.blocks in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let check_operand bname i op =
    match op with
    | Node j ->
      if j < 0 || j >= i then
        fail "block %s: node %d references node %d (must be earlier)" bname i j
    | Sym s ->
      if s < 0 || s >= c.sym_count then
        fail "block %s: node %d references unknown symbol %d" bname i s
    | Imm _ -> ()
  in
  let check_block bi b =
    Array.iteri
      (fun i n ->
        if List.length n.operands <> Opcode.arity n.opcode then
          fail "block %s: node %d (%s) has arity %d, expected %d" b.name i
            (Opcode.to_string n.opcode)
            (List.length n.operands) (Opcode.arity n.opcode);
        List.iter (check_operand b.name i) n.operands;
        List.iter
          (fun j ->
            if j < 0 || j >= i then
              fail "block %s: node %d mem-depends on node %d (must be earlier)"
                b.name i j)
          n.mem_dep)
      b.nodes;
    let nnodes = Array.length b.nodes in
    let check_value_operand what op =
      match op with
      | Node j ->
        if j < 0 || j >= nnodes then
          fail "block %s: %s references node %d out of range" b.name what j
        else if not (Opcode.has_result b.nodes.(j).opcode) then
          fail "block %s: %s references node %d which has no result" b.name what j
      | Sym s ->
        if s < 0 || s >= c.sym_count then
          fail "block %s: %s references unknown symbol %d" b.name what s
      | Imm _ -> ()
    in
    List.iter
      (fun (s, op) ->
        if s < 0 || s >= c.sym_count then
          fail "block %s: live_out defines unknown symbol %d" b.name s;
        check_value_operand "live_out" op)
      b.live_out;
    (match b.terminator with
     | Branch (cond, _, _) -> check_value_operand "branch condition" cond
     | Jump _ | Return -> ());
    List.iter
      (fun dst ->
        if dst < 0 || dst >= nblocks then
          fail "block %s: terminator targets unknown block %d" b.name dst)
      (term_targets b.terminator);
    ignore bi
  in
  if nblocks = 0 then err "CDFG has no blocks"
  else if c.entry < 0 || c.entry >= nblocks then err "entry block out of range"
  else
    match Array.iteri check_block c.blocks with
    | () ->
      let g = cfg c in
      let reach = Cgra_graph.Digraph.reachable_from g [ c.entry ] in
      (try
         Array.iteri
           (fun i b ->
             if not reach.(i) then fail "block %s unreachable from entry" b.name)
           c.blocks;
         (* Every block's internal DFG must be acyclic, which the
            strictly-decreasing operand rule already guarantees; assert it
            anyway as a safety net for future builders. *)
         Array.iter
           (fun b ->
             match Cgra_graph.Digraph.topo_sort (dfg_graph b) with
             | Ok _ -> ()
             | Error ids ->
               fail "block %s: cyclic DFG through nodes %s" b.name
                 (String.concat ", " (List.map string_of_int ids)))
           c.blocks;
         Ok ()
       with Bad msg -> Error msg)
    | exception Bad msg -> Error msg

let syms_in_block c bi =
  let b = c.blocks.(bi) in
  let fanout = Hashtbl.create 8 in
  let present s =
    if not (Hashtbl.mem fanout s) then Hashtbl.add fanout s 0
  in
  let use = function
    | Sym s -> present s; Hashtbl.replace fanout s (Hashtbl.find fanout s + 1)
    | Node _ | Imm _ -> ()
  in
  Array.iter (fun n -> List.iter use n.operands) b.nodes;
  List.iter
    (fun (s, op) ->
      present s;
      use op)
    b.live_out;
  (match b.terminator with
   | Branch (cond, _, _) -> use cond
   | Jump _ | Return -> ());
  Hashtbl.fold (fun s f acc -> (s, f) :: acc) fanout []
  |> List.sort compare

let block_weight c bi =
  let syms = syms_in_block c bi in
  List.length syms + List.fold_left (fun acc (_, f) -> acc + f) 0 syms

let uses_of_node b i =
  let count = ref 0 in
  let use = function Node j when j = i -> incr count | Node _ | Sym _ | Imm _ -> () in
  Array.iter (fun n -> List.iter use n.operands) b.nodes;
  List.iter (fun (_, op) -> use op) b.live_out;
  (match b.terminator with
   | Branch (cond, _, _) -> use cond
   | Jump _ | Return -> ());
  !count

let pp_operand syms fmt = function
  | Node i -> Format.fprintf fmt "n%d" i
  | Sym s -> Format.fprintf fmt "%s" syms.(s)
  | Imm k -> Format.fprintf fmt "#%d" k

let pp fmt c =
  Format.fprintf fmt "@[<v>kernel %s (entry %s)@," c.kernel_name
    c.blocks.(c.entry).name;
  Array.iteri
    (fun bi b ->
      Format.fprintf fmt "@[<v 2>block %s (w=%d):@," b.name (block_weight c bi);
      Array.iteri
        (fun i n ->
          Format.fprintf fmt "n%d = %s" i (Opcode.to_string n.opcode);
          List.iter (fun op -> Format.fprintf fmt " %a" (pp_operand c.sym_names) op)
            n.operands;
          Format.fprintf fmt "@,")
        b.nodes;
      List.iter
        (fun (s, op) ->
          Format.fprintf fmt "%s := %a@," c.sym_names.(s)
            (pp_operand c.sym_names) op)
        b.live_out;
      (match b.terminator with
       | Jump t -> Format.fprintf fmt "jump %s" c.blocks.(t).name
       | Branch (cond, t, e) ->
         Format.fprintf fmt "branch %a ? %s : %s" (pp_operand c.sym_names) cond
           c.blocks.(t).name c.blocks.(e).name
       | Return -> Format.fprintf fmt "return");
      Format.fprintf fmt "@]@,")
    c.blocks;
  Format.fprintf fmt "@]"
