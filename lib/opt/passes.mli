(** The individual CDFG optimization passes.

    Every pass is a pure function [Cdfg.t -> Cdfg.t * delta] built on one
    shared forward-rewriting engine, so they all preserve the CDFG
    invariants the mapper depends on the same way:

    - symbol-variable pinning: passes never add, remove or renumber
      symbols; [live_out] right-hand sides are remapped but the assigned
      symbol set is only ever shrunk by {!dce} (and only for provably dead
      symbols, via {!Cgra_ir.Opt.remove_dead_live_outs});
    - load/store ordering: [mem_dep] edges are remapped through node
      removals — an edge to a load merged by {!load_elim} is retargeted to
      the surviving load, so anti-dependences survive every pass.

    Passes are local (per basic block); the CFG is never restructured. *)

type delta = { removed : int; rewritten : int }
(** What a pass did: [removed] nodes replaced by an existing operand (plus,
    for {!dce}, dead [live_out] assignments dropped), [rewritten] nodes
    kept with a different opcode or operand list. *)

val no_delta : delta
val add_delta : delta -> delta -> delta

type pass = {
  name : string;  (** short label used in statistics tables *)
  descr : string;
  transform : Cgra_ir.Cdfg.t -> Cgra_ir.Cdfg.t * delta;
}

val const_fold : pass
(** Evaluates pure operations whose operands are all immediates with
    {!Cgra_ir.Opcode.eval} (same 32-bit wrap semantics as the reference
    interpreter), and resolves [Select] on a constant condition. *)

val algebraic : pass
(** Algebraic simplification and strength reduction: [x+0], [x-0], [x-x],
    [x*1], [x*0], [x*2^k] -> [x<<k], shift-by-0, [x&x], [x|x], [x^x],
    identities on comparisons of an operand with itself, and [Select] with
    equal or constant-decided arms. *)

val reassoc : pass
(** Re-associates immediate-addend chains: [Add (Add (y, #a), #b)] becomes
    [Add (y, #(a+b))] (likewise through [Sub]), and canonicalises
    [Add (#a, x)] to [Add (x, #a)].  The naive lowering builds exactly such
    chains for array addressing ([x[p + 12]] -> add, then add of the array
    base), so this is what exposes address arithmetic to {!cse}. *)

val cse : pass
(** Common-subexpression elimination within a basic block: a pure node
    that repeats an earlier (opcode, operands) computation — modulo
    operand order for commutative opcodes — is replaced by the earlier
    node's value. *)

val load_elim : pass
(** Redundant-load elimination across memory-dependence edges: two loads
    with the same address operand and the same (remapped) [mem_dep] set
    observe the same store epoch, so the later one is replaced by the
    earlier.  Trusts [mem_dep] as the dependence declaration — a load that
    omits its ordering edge to a prior store is a malformed CDFG (the
    differential verifier in {!Pipeline} is the safety net). *)

val dce : pass
(** Dead-code elimination: drops [live_out] assignments to dead symbols
    and operation nodes whose results reach no store, live-out or
    terminator (reusing {!Cgra_ir.Opt.remove_dead_live_outs} and
    {!Cgra_ir.Opt.remove_dead_nodes}), iterated to a local fixpoint. *)

val all : pass list
(** The default pipeline order: {!const_fold}, {!algebraic}, {!reassoc},
    {!cse}, {!load_elim}, {!dce}.  Each pass is sound in isolation, so any
    order and subset is semantics-preserving (the fuzz suite runs random
    permutations); this order merely converges fastest. *)

(** {2 Rewriting engine} — exposed for tests and custom passes. *)

type decision =
  | Keep of Cgra_ir.Cdfg.node
      (** emit this node (possibly with a new opcode/operands) *)
  | Subst of Cgra_ir.Cdfg.operand
      (** drop the node; uses see this operand instead *)

val rewrite_blocks :
  (Cgra_ir.Cdfg.block -> index:int -> Cgra_ir.Cdfg.node -> decision) ->
  Cgra_ir.Cdfg.t ->
  Cgra_ir.Cdfg.t * delta
(** [rewrite_blocks rule_of_block c] rewrites every block front to back.
    [rule_of_block b] is called once per block (allocate per-block state
    there); the rule then sees each node with operands and [mem_dep]
    already renumbered into the output block, plus the [index] the node
    will occupy if kept.  [Subst] operands must likewise be in output-block
    space.  [live_out] and terminator conditions are remapped; [mem_dep]
    edges follow node substitutions and drop entries that resolve to
    immediates or symbols. *)
