module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode

type delta = { removed : int; rewritten : int }

let no_delta = { removed = 0; rewritten = 0 }
let add_delta a b =
  { removed = a.removed + b.removed; rewritten = a.rewritten + b.rewritten }

type pass = {
  name : string;
  descr : string;
  transform : Cdfg.t -> Cdfg.t * delta;
}

type decision = Keep of Cdfg.node | Subst of Cdfg.operand

(* ---- the forward-rewriting engine ------------------------------------ *)

(* Rewrites one block front to back.  [subst.(i)] is set when input node
   [i] was dropped; [remap.(i)] is its output index otherwise.  Because
   operand indices strictly decrease, every reference a node makes is
   resolved by the time the rule sees it, so rules work entirely in
   output-block space. *)
let rewrite_block rule_of_block (b : Cdfg.block) =
  let n = Array.length b.nodes in
  let subst : Cdfg.operand option array = Array.make n None in
  let remap = Array.make n (-1) in
  let out = ref [] in
  let next = ref 0 in
  let removed = ref 0 and rewritten = ref 0 in
  let fix_operand = function
    | Cdfg.Node j -> (
      match subst.(j) with Some op -> op | None -> Cdfg.Node remap.(j))
    | (Cdfg.Sym _ | Cdfg.Imm _) as op -> op
  in
  let fix_mem_dep deps =
    List.filter_map
      (fun j ->
        match subst.(j) with
        | None -> Some remap.(j)
        | Some (Cdfg.Node j') -> Some j'
        | Some (Cdfg.Sym _ | Cdfg.Imm _) -> None)
      deps
    |> List.sort_uniq compare
  in
  let rule = rule_of_block b in
  Array.iteri
    (fun i (nd : Cdfg.node) ->
      let fixed =
        { nd with
          Cdfg.operands = List.map fix_operand nd.Cdfg.operands;
          mem_dep = fix_mem_dep nd.Cdfg.mem_dep }
      in
      match rule ~index:!next fixed with
      | Subst op ->
        subst.(i) <- Some op;
        incr removed
      | Keep nd' ->
        if
          nd'.Cdfg.opcode <> fixed.Cdfg.opcode
          || nd'.Cdfg.operands <> fixed.Cdfg.operands
        then incr rewritten;
        remap.(i) <- !next;
        incr next;
        out := nd' :: !out)
    b.nodes;
  let b' =
    { b with
      Cdfg.nodes = Array.of_list (List.rev !out);
      live_out = List.map (fun (s, op) -> (s, fix_operand op)) b.Cdfg.live_out;
      terminator =
        (match b.Cdfg.terminator with
         | Cdfg.Branch (c, t, e) -> Cdfg.Branch (fix_operand c, t, e)
         | (Cdfg.Jump _ | Cdfg.Return) as t -> t) }
  in
  (b', { removed = !removed; rewritten = !rewritten })

let rewrite_blocks rule_of_block (c : Cdfg.t) =
  let delta = ref no_delta in
  let blocks =
    Array.map
      (fun b ->
        let b', d = rewrite_block rule_of_block b in
        delta := add_delta !delta d;
        b')
      c.Cdfg.blocks
  in
  ({ c with Cdfg.blocks }, !delta)

(* ---- helpers ---------------------------------------------------------- *)

let pure op = match op with Opcode.Load | Opcode.Store -> false | _ -> true

(* The interpreter reads [Imm k] through [wrap32], so every identity below
   must test the wrapped value — [Imm 0x100000000] is zero. *)
let iv = Opcode.wrap32

(* Only drop a node whose ordering edges are empty: a [mem_dep] entry
   pointing at a dropped pure node would silently disappear.  Well-formed
   CDFGs never order memory operations after pure nodes, but hand-built
   ones can. *)
let droppable (nd : Cdfg.node) = nd.Cdfg.mem_dep = []

(* ---- constant folding ------------------------------------------------- *)

let const_fold =
  let transform c =
    rewrite_blocks
      (fun _b ~index:_ (nd : Cdfg.node) ->
        if not (pure nd.Cdfg.opcode && droppable nd) then Keep nd
        else
          match nd.Cdfg.opcode, nd.Cdfg.operands with
          | Opcode.Select, [ Cdfg.Imm k; a; b ] ->
            Subst (if iv k <> 0 then a else b)
          | op, operands -> (
            (* Fold only when every operand is an immediate; a single
               extraction makes the arm total, so a non-[Imm] operand
               slipped in by reassociation leaves the node unfolded
               instead of tripping an assert. *)
            let imms =
              List.fold_right
                (fun o acc ->
                  match o, acc with
                  | Cdfg.Imm k, Some vs -> Some (iv k :: vs)
                  | _ -> None)
                operands (Some [])
            in
            match imms with
            | Some vals -> Subst (Cdfg.Imm (Opcode.eval op vals))
            | None -> Keep nd))
      c
  in
  { name = "fold"; descr = "constant folding"; transform }

(* ---- algebraic simplification / strength reduction -------------------- *)

let is_pow2 k = k > 0 && k land (k - 1) = 0

let log2 k =
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k lsr 1) in
  go 0 k

let algebraic =
  let transform c =
    rewrite_blocks
      (fun _b ~index:_ (nd : Cdfg.node) ->
        if not (pure nd.Cdfg.opcode && droppable nd) then Keep nd
        else
          match nd.Cdfg.opcode, nd.Cdfg.operands with
          (* additive / subtractive identities *)
          | Opcode.Add, [ x; Cdfg.Imm k ] when iv k = 0 -> Subst x
          | Opcode.Add, [ Cdfg.Imm k; x ] when iv k = 0 -> Subst x
          | Opcode.Sub, [ x; Cdfg.Imm k ] when iv k = 0 -> Subst x
          | Opcode.Sub, [ x; y ] when x = y -> Subst (Cdfg.Imm 0)
          (* multiplicative identities and strength reduction *)
          | Opcode.Mul, [ x; Cdfg.Imm k ] when iv k = 1 -> Subst x
          | Opcode.Mul, [ Cdfg.Imm k; x ] when iv k = 1 -> Subst x
          | Opcode.Mul, [ _; Cdfg.Imm k ] when iv k = 0 -> Subst (Cdfg.Imm 0)
          | Opcode.Mul, [ Cdfg.Imm k; _ ] when iv k = 0 -> Subst (Cdfg.Imm 0)
          | Opcode.Mul, [ x; Cdfg.Imm k ] when is_pow2 (iv k) ->
            Keep
              { nd with
                Cdfg.opcode = Opcode.Shl;
                operands = [ x; Cdfg.Imm (log2 (iv k)) ] }
          | Opcode.Mul, [ Cdfg.Imm k; x ] when is_pow2 (iv k) ->
            Keep
              { nd with
                Cdfg.opcode = Opcode.Shl;
                operands = [ x; Cdfg.Imm (log2 (iv k)) ] }
          (* shifts: the ALU masks the amount to 5 bits *)
          | (Opcode.Shl | Opcode.Shrl | Opcode.Shra), [ x; Cdfg.Imm k ]
            when iv k land 31 = 0 ->
            Subst x
          | (Opcode.Shl | Opcode.Shrl | Opcode.Shra), [ Cdfg.Imm k; _ ]
            when iv k = 0 ->
            Subst (Cdfg.Imm 0)
          (* bitwise identities *)
          | (Opcode.And | Opcode.Or), [ x; y ] when x = y -> Subst x
          | Opcode.And, [ _; Cdfg.Imm k ] when iv k = 0 -> Subst (Cdfg.Imm 0)
          | Opcode.And, [ Cdfg.Imm k; _ ] when iv k = 0 -> Subst (Cdfg.Imm 0)
          | Opcode.And, [ x; Cdfg.Imm k ] when iv k = -1 -> Subst x
          | Opcode.And, [ Cdfg.Imm k; x ] when iv k = -1 -> Subst x
          | (Opcode.Or | Opcode.Xor), [ x; Cdfg.Imm k ] when iv k = 0 ->
            Subst x
          | (Opcode.Or | Opcode.Xor), [ Cdfg.Imm k; x ] when iv k = 0 ->
            Subst x
          | Opcode.Xor, [ x; y ] when x = y -> Subst (Cdfg.Imm 0)
          (* min/max/select and self-comparisons *)
          | (Opcode.Min | Opcode.Max), [ x; y ] when x = y -> Subst x
          | Opcode.Select, [ _; a; b ] when a = b -> Subst a
          | Opcode.Select, [ Cdfg.Imm k; a; b ] ->
            Subst (if iv k <> 0 then a else b)
          | (Opcode.Eq | Opcode.Le | Opcode.Ge), [ x; y ] when x = y ->
            Subst (Cdfg.Imm 1)
          | (Opcode.Ne | Opcode.Lt | Opcode.Gt), [ x; y ] when x = y ->
            Subst (Cdfg.Imm 0)
          | _ -> Keep nd)
      c
  in
  { name = "alg";
    descr = "algebraic simplification + strength reduction";
    transform }

(* ---- re-association of immediate-addend chains ------------------------ *)

let reassoc =
  let transform c =
    rewrite_blocks
      (fun _b ->
        (* output-index -> node as emitted, for looking through chains *)
        let emitted : (int, Cdfg.node) Hashtbl.t = Hashtbl.create 64 in
        let keep ~index nd =
          Hashtbl.replace emitted index nd;
          Keep nd
        in
        let inner j =
          match Hashtbl.find_opt emitted j with
          | Some { Cdfg.opcode = (Opcode.Add | Opcode.Sub) as op;
                   operands = [ y; Cdfg.Imm a ];
                   mem_dep = [] } ->
            Some (op, y, a)
          | _ -> None
        in
        fun ~index (nd : Cdfg.node) ->
          if not (droppable nd) then Keep nd
          else
            match nd.Cdfg.opcode, nd.Cdfg.operands with
            | Opcode.Add, [ Cdfg.Imm a; (Cdfg.Node _ | Cdfg.Sym _) as x ] ->
              keep ~index { nd with Cdfg.operands = [ x; Cdfg.Imm a ] }
            | (Opcode.Add | Opcode.Sub), [ Cdfg.Node j; Cdfg.Imm b ] -> (
              match inner j with
              | None -> keep ~index nd
              | Some (inner_op, y, a) ->
                (* (y ± a) ± b  =  y ± (a combined b), all mod 2^32 *)
                let outer_sign =
                  if nd.Cdfg.opcode = Opcode.Add then b else -b
                in
                let inner_sign = if inner_op = Opcode.Add then a else -a in
                let k = Opcode.wrap32 (inner_sign + outer_sign) in
                keep ~index
                  { nd with
                    Cdfg.opcode = Opcode.Add;
                    operands = [ y; Cdfg.Imm k ] })
            | _ -> keep ~index nd)
      c
  in
  { name = "reassoc";
    descr = "re-association of immediate addend chains";
    transform }

(* ---- common-subexpression elimination --------------------------------- *)

let cse =
  let transform c =
    rewrite_blocks
      (fun _b ->
        let table : (Opcode.t * Cdfg.operand list, Cdfg.operand) Hashtbl.t =
          Hashtbl.create 64
        in
        fun ~index (nd : Cdfg.node) ->
          if not (pure nd.Cdfg.opcode && droppable nd) then Keep nd
          else begin
            let key =
              if Opcode.is_commutative nd.Cdfg.opcode then
                (nd.Cdfg.opcode, List.sort compare nd.Cdfg.operands)
              else (nd.Cdfg.opcode, nd.Cdfg.operands)
            in
            match Hashtbl.find_opt table key with
            | Some op -> Subst op
            | None ->
              Hashtbl.add table key (Cdfg.Node index);
              Keep nd
          end)
      c
  in
  { name = "cse"; descr = "common-subexpression elimination"; transform }

(* ---- redundant-load elimination --------------------------------------- *)

let load_elim =
  let transform c =
    rewrite_blocks
      (fun _b ->
        (* (address operand, ordering edges) identifies the store epoch a
           load observes: both components are already remapped into
           output space, so two hits really do see the same memory. *)
        let table : (Cdfg.operand list * int list, Cdfg.operand) Hashtbl.t =
          Hashtbl.create 16
        in
        fun ~index (nd : Cdfg.node) ->
          match nd.Cdfg.opcode with
          | Opcode.Load -> (
            let key = (nd.Cdfg.operands, List.sort compare nd.Cdfg.mem_dep) in
            match Hashtbl.find_opt table key with
            | Some op -> Subst op
            | None ->
              Hashtbl.add table key (Cdfg.Node index);
              Keep nd)
          | _ -> Keep nd)
      c
  in
  { name = "rle"; descr = "redundant-load elimination"; transform }

(* ---- dead-code elimination -------------------------------------------- *)

let live_out_count (c : Cdfg.t) =
  Array.fold_left
    (fun acc b -> acc + List.length b.Cdfg.live_out)
    0 c.Cdfg.blocks

let dce =
  let transform c =
    (* [remove_dead_live_outs] can kill the last use of a node and
       [remove_dead_nodes] can kill the last node feeding a live-out's
       defining chain, so iterate the pair to a local fixpoint. *)
    let rec go c removed rounds =
      if rounds >= 8 then (c, removed)
      else begin
        let n0 = Cdfg.node_count c and l0 = live_out_count c in
        let c = Cgra_ir.Opt.remove_dead_live_outs c in
        let c = Cgra_ir.Opt.remove_dead_nodes c in
        let n1 = Cdfg.node_count c and l1 = live_out_count c in
        if n1 = n0 && l1 = l0 then (c, removed)
        else go c (removed + (n0 - n1) + (l0 - l1)) (rounds + 1)
      end
    in
    let c, removed = go c 0 0 in
    (c, { removed; rewritten = 0 })
  in
  { name = "dce";
    descr = "dead node + dead live-out elimination";
    transform }

let all = [ const_fold; algebraic; reassoc; cse; load_elim; dce ]
