module Cdfg = Cgra_ir.Cdfg
module Interp = Cgra_ir.Interp

type verifier = {
  mems : int array list;
  init_syms : (Cdfg.sym * int) list;
  max_steps : int;
}

let verifier_of_mems ?(init_syms = []) ?(max_steps = 1_000_000) mems =
  { mems; init_syms; max_steps }

let default_verifier () =
  let words = 4096 in
  let random seed =
    let rng = Cgra_util.Rng.create seed in
    Array.init words (fun _ -> Cgra_util.Rng.int rng 2048 - 1024)
  in
  verifier_of_mems [ Array.make words 0; random 0x0def; random 0xbeef ]

exception Verification_failed of string

type pass_stat = { pass : string; removed : int; rewritten : int }

type report = {
  kernel : string;
  nodes_before : int;
  nodes_after : int;
  rounds : int;
  per_pass : pass_stat list;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Verification_failed s)) fmt

(* Reference outcome on one input: the final memory image, or None when
   the reference run itself faults (then the input constrains nothing). *)
let reference_output verify c mem0 =
  let mem = Array.copy mem0 in
  match
    Interp.run ~init_syms:verify.init_syms ~max_steps:verify.max_steps c ~mem
  with
  | _trace -> Some mem
  | exception (Interp.Out_of_bounds _ | Interp.Step_limit_exceeded) -> None

let check_pass ~kernel ~pass verify goldens c' =
  (match Cdfg.validate c' with
   | Ok () -> ()
   | Error e ->
     fail "%s: pass %s produced an invalid CDFG: %s" kernel pass e);
  List.iter
    (fun (mem0, golden) ->
      match golden with
      | None -> ()
      | Some expected -> (
        let mem = Array.copy mem0 in
        match
          Interp.run ~init_syms:verify.init_syms ~max_steps:verify.max_steps
            c' ~mem
        with
        | exception Interp.Out_of_bounds { block; node; addr } ->
          fail
            "%s: pass %s made the program fault (block %s, node %d, addr %d)"
            kernel pass block node addr
        | exception Interp.Step_limit_exceeded ->
          fail "%s: pass %s made the program diverge" kernel pass
        | _trace ->
          if mem <> expected then begin
            let i = ref 0 in
            while !i < Array.length mem && mem.(!i) = expected.(!i) do
              incr i
            done;
            fail
              "%s: pass %s changed the output (first diff at mem[%d]: %d, \
               expected %d)"
              kernel pass !i mem.(!i) expected.(!i)
          end))
    goldens

let run ?(passes = Passes.all) ?verify ?(max_rounds = 8) c0 =
  (match Cdfg.validate c0 with
   | Ok () -> ()
   | Error e -> invalid_arg ("Pipeline.run: invalid input CDFG: " ^ e));
  let verify = match verify with Some v -> v | None -> default_verifier () in
  let kernel = c0.Cdfg.kernel_name in
  let goldens =
    List.map (fun mem0 -> (mem0, reference_output verify c0 mem0)) verify.mems
  in
  let totals : (string, Passes.delta) Hashtbl.t = Hashtbl.create 8 in
  let record (p : Passes.pass) d =
    let prev =
      match Hashtbl.find_opt totals p.Passes.name with
      | Some d0 -> d0
      | None -> Passes.no_delta
    in
    Hashtbl.replace totals p.Passes.name (Passes.add_delta prev d)
  in
  let sweep c =
    List.fold_left
      (fun (c, changed) (p : Passes.pass) ->
        let c', d = p.Passes.transform c in
        check_pass ~kernel ~pass:p.Passes.name verify goldens c';
        record p d;
        (c', changed || d.Passes.removed > 0 || d.Passes.rewritten > 0))
      (c, false) passes
  in
  let rec fix c rounds =
    if rounds >= max_rounds then (c, rounds)
    else
      let c', changed = sweep c in
      if changed then fix c' (rounds + 1) else (c', rounds + 1)
  in
  let c, rounds = fix c0 0 in
  let per_pass =
    List.map
      (fun (p : Passes.pass) ->
        let d =
          match Hashtbl.find_opt totals p.Passes.name with
          | Some d -> d
          | None -> Passes.no_delta
        in
        { pass = p.Passes.name;
          removed = d.Passes.removed;
          rewritten = d.Passes.rewritten })
      passes
  in
  ( c,
    { kernel;
      nodes_before = Cdfg.node_count c0;
      nodes_after = Cdfg.node_count c;
      rounds;
      per_pass } )

let render_report r =
  let rows =
    List.map
      (fun s -> [ s.pass; string_of_int s.removed; string_of_int s.rewritten ])
      r.per_pass
  in
  let reduction =
    if r.nodes_before = 0 then 0.0
    else
      100.0
      *. float_of_int (r.nodes_before - r.nodes_after)
      /. float_of_int r.nodes_before
  in
  Printf.sprintf "optimization of %s (%d rounds to fixpoint)\n" r.kernel
    r.rounds
  ^ Cgra_util.Text_table.render ~header:[ "Pass"; "removed"; "rewritten" ]
      ~rows
  ^ Printf.sprintf "nodes: %d -> %d (%.1f%% reduction)\n" r.nodes_before
      r.nodes_after reduction
