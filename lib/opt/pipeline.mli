(** The pass manager: runs {!Passes} to a fixpoint with differential
    verification built in.

    After {e every} pass application the manager (a) re-validates the CDFG
    structurally ({!Cgra_ir.Cdfg.validate}) and (b) re-executes the
    optimized CDFG under the {!Cgra_ir.Interp} reference interpreter on
    the verifier's input set, comparing final memory images against the
    unoptimized program.  Any divergence raises {!Verification_failed}
    naming the guilty pass — an optimized CDFG is never returned unless it
    is observationally equal to its input on every verification input. *)

type verifier = {
  mems : int array list;
      (** initial memory images; each run gets a private copy.  Final
          memory is the observable output being compared (matching the
          golden-model check of the experiment harness). *)
  init_syms : (Cgra_ir.Cdfg.sym * int) list;
  max_steps : int;
}

val verifier_of_mems :
  ?init_syms:(Cgra_ir.Cdfg.sym * int) list ->
  ?max_steps:int ->
  int array list ->
  verifier
(** [max_steps] defaults to 1_000_000 (the interpreter's own default). *)

val default_verifier : unit -> verifier
(** Deterministic fallback when no kernel-specific inputs are available
    (e.g. [cgra_map compile --opt] on an arbitrary source file): a zero
    image plus two pseudo-random 4096-word images from a fixed seed.
    Inputs on which the {e reference} run itself faults (out-of-bounds or
    step limit) are skipped — same stance as the harness, which only
    compares runs the golden model completes. *)

exception Verification_failed of string
(** A pass changed observable behaviour or broke a structural invariant.
    The message names the kernel, the pass and the divergence. *)

type pass_stat = { pass : string; removed : int; rewritten : int }

type report = {
  kernel : string;
  nodes_before : int;
  nodes_after : int;
  rounds : int;  (** full pipeline sweeps until the fixpoint *)
  per_pass : pass_stat list;
      (** aggregated over all rounds, in pipeline order *)
}

val run :
  ?passes:Passes.pass list ->
  ?verify:verifier ->
  ?max_rounds:int ->
  Cgra_ir.Cdfg.t ->
  Cgra_ir.Cdfg.t * report
(** Applies [passes] (default {!Passes.all}) repeatedly until a full sweep
    changes nothing, bounded by [max_rounds] (default 8), verifying after
    each pass against [verify] (default {!default_verifier}).  The input
    CDFG must be valid ([Invalid_argument] otherwise — callers such as
    [Flow.run] validate first and surface their own error). *)

val render_report : report -> string
(** Per-pass statistics as an ASCII table plus a node-count summary
    line. *)
