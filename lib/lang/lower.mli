(** Lowering from kernel-language AST to {!Cgra_ir.Cdfg.t}.

    Scalars become symbol variables; array accesses become address
    arithmetic plus [Load]/[Store] nodes; [while] and [if] create basic
    blocks with [Branch] terminators; [unroll] loops are expanded at
    compile time with the induction variable bound as a constant.

    Per block, the lowering performs local value numbering of pure
    operations (notably the shared address computations) and constant
    folding — the clean-ups the paper's LLVM frontend would do — and keeps
    a scalar environment so reads after in-block assignments use the node
    value rather than the stale symbol. *)

exception Lower_error of string

val lower : ?naive:bool -> Ast.kernel -> Cgra_ir.Cdfg.t
(** Raises {!Lower_error} on semantic errors (undeclared identifiers,
    assignment to constants, non-constant [unroll] bounds, unknown
    intrinsics).

    [naive] (default false) switches all inline optimization off — no
    value numbering, no algebraic folds, no load reuse — emitting one
    node per source operation.  This is the honest "what an unoptimizing
    frontend produces" baseline consumed by the [cgra_opt] pipeline;
    name resolution and the [mem_dep] ordering edges are kept because
    they are semantics, not optimization. *)

val const_eval : (string -> int option) -> Ast.expr -> int option
(** Compile-time evaluation used for [const] declarations and [unroll]
    bounds; the callback resolves named constants. *)
