type phase = Syntax | Semantic | Invalid_ir

type error = { phase : phase; pos : Ast.pos option; msg : string }

exception Error of error

let phase_label = function
  | Syntax -> "syntax error"
  | Semantic -> "semantic error"
  | Invalid_ir -> "internal error"

let error_to_string e =
  match e.pos with
  | Some p ->
    Printf.sprintf "%s at line %d, col %d: %s" (phase_label e.phase)
      p.Ast.line p.Ast.col e.msg
  | None -> Printf.sprintf "%s: %s" (phase_label e.phase) e.msg

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Compile.Error: " ^ error_to_string e)
    | _ -> None)

let compile ?(raw = false) ?(simplify_cfg = false) src =
  match Parser.parse src with
  | exception Ast.Syntax_error (pos, msg) ->
    Stdlib.Error { phase = Syntax; pos = Some pos; msg }
  | ast -> (
    match Lower.lower ~naive:raw ast with
    | exception Lower.Lower_error msg ->
      Stdlib.Error { phase = Semantic; pos = None; msg }
    | cdfg -> (
      let cdfg = if raw then cdfg else Cgra_ir.Opt.optimize cdfg in
      let cdfg = if simplify_cfg then Cgra_ir.Opt.simplify_cfg cdfg else cdfg in
      match Cgra_ir.Cdfg.validate cdfg with
      | Ok () -> Stdlib.Ok cdfg
      | Error msg ->
        Stdlib.Error
          { phase = Invalid_ir;
            pos = None;
            msg = "lowering produced an invalid CDFG: " ^ msg }))

let compile_exn ?raw src =
  match compile ?raw src with
  | Stdlib.Ok c -> c
  | Stdlib.Error e -> raise (Error e)
