(** One-call frontend: kernel-language source to validated CDFG. *)

type phase =
  | Syntax      (** the parser rejected the input *)
  | Semantic    (** lowering rejected it (undeclared names, bad unroll…) *)
  | Invalid_ir  (** lowering produced a CDFG that fails validation — a
                    compiler bug, not a user error *)

type error = { phase : phase; pos : Ast.pos option; msg : string }
(** A diagnostic.  [pos] is the source position for syntax errors (the
    lowering works on a position-free AST, so semantic errors carry
    [None]). *)

exception Error of error

val error_to_string : error -> string
(** ["syntax error at line L, col C: msg"] / ["semantic error: msg"] —
    what drivers should print. *)

val compile :
  ?raw:bool -> ?simplify_cfg:bool -> string -> (Cgra_ir.Cdfg.t, error) result
(** Parse, lower, clean up and validate.  [simplify_cfg] (default false)
    additionally short-circuits trivial forwarding blocks — each block
    costs a controller transition cycle on the CGRA.  [raw] (default
    false) lowers naively ({!Lower.lower}[ ~naive:true]) and skips the
    {!Cgra_ir.Opt} clean-up: the unoptimized baseline for the [cgra_opt]
    pipeline. *)

val compile_exn : ?raw:bool -> string -> Cgra_ir.Cdfg.t
(** Like {!compile} but raises {!Error}. *)
