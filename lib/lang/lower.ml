module B = Cgra_ir.Builder
module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode

exception Lower_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let opcode_of_binop = function
  | Ast.Badd -> Opcode.Add
  | Ast.Bsub -> Opcode.Sub
  | Ast.Bmul -> Opcode.Mul
  | Ast.Bshl -> Opcode.Shl
  | Ast.Bshrl -> Opcode.Shrl
  | Ast.Bshra -> Opcode.Shra
  | Ast.Band -> Opcode.And
  | Ast.Bor -> Opcode.Or
  | Ast.Bxor -> Opcode.Xor
  | Ast.Blt -> Opcode.Lt
  | Ast.Ble -> Opcode.Le
  | Ast.Beq -> Opcode.Eq
  | Ast.Bne -> Opcode.Ne
  | Ast.Bgt -> Opcode.Gt
  | Ast.Bge -> Opcode.Ge

let rec const_eval resolve = function
  | Ast.Int n -> Some n
  | Ast.Var v -> resolve v
  | Ast.Index _ -> None
  | Ast.Bin (op, a, b) -> (
    match const_eval resolve a, const_eval resolve b with
    | Some x, Some y -> Some (Opcode.eval (opcode_of_binop op) [ x; y ])
    | _, _ -> None)
  | Ast.Call ("min", [ a; b ]) -> (
    match const_eval resolve a, const_eval resolve b with
    | Some x, Some y -> Some (min x y)
    | _, _ -> None)
  | Ast.Call ("max", [ a; b ]) -> (
    match const_eval resolve a, const_eval resolve b with
    | Some x, Some y -> Some (max x y)
    | _, _ -> None)
  | Ast.Call _ -> None

type env = {
  builder : B.t;
  syms : (string, Cdfg.sym) Hashtbl.t;
  arrays : (string, int) Hashtbl.t;
  mutable consts : (string * int) list; (* shadowing via prepend *)
  mutable name_counter : int;
      (* per-kernel block-name counter: naming must not depend on what else
         this process compiled before (or concurrently, with [--jobs]) *)
  naive : bool;
      (* [true] disables every inline optimization (value numbering,
         algebraic folds, load reuse) and emits one node per source
         operation — the raw frontend output that [cgra_opt] takes as its
         baseline.  Name resolution ([consts], unroll variables) and the
         [mem_dep] ordering edges are semantics, not optimization, and
         stay on. *)
}

(* Mutable per-block lowering state.  [vars] maps scalars assigned in this
   block to their current operand; [vn] is the local value-numbering table
   for pure operations. *)
type bctx = {
  handle : B.block_handle;
  mutable vars : (string * Cdfg.operand) list;
  mutable vn : ((Opcode.t * Cdfg.operand list) * Cdfg.operand) list;
  mutable loads : ((string * int * Cdfg.operand) * Cdfg.operand) list;
      (** (array, store-epoch, address) -> loaded value: loads are reused
          only while no store to the same array intervenes (arrays are
          disjoint regions by language semantics) *)
  mutable epochs : (string * int) list;
  mutable mem_order : (string * (int option * int list)) list;
      (** per array: last store node and loads issued since — sources of
          the ordering-only [mem_dep] edges *)
}

let new_block env name =
  { handle = B.add_block env.builder name; vars = []; vn = []; loads = [];
    epochs = []; mem_order = [] }

let epoch_of bctx arr =
  match List.assoc_opt arr bctx.epochs with Some e -> e | None -> 0

let bump_epoch bctx arr =
  bctx.epochs <- (arr, epoch_of bctx arr + 1) :: List.remove_assoc arr bctx.epochs

let emit ?mem_dep env bctx opcode operands =
  let pure =
    (not env.naive)
    && match opcode with Opcode.Load | Opcode.Store -> false | _ -> true
  in
  let key = (opcode, operands) in
  match if pure then List.assoc_opt key bctx.vn else None with
  | Some op -> op
  | None ->
    let op = B.add_node ?mem_dep env.builder bctx.handle opcode operands in
    if pure then bctx.vn <- (key, op) :: bctx.vn;
    op

let mem_state bctx arr =
  match List.assoc_opt arr bctx.mem_order with
  | Some st -> st
  | None -> (None, [])

let node_id = function
  | Cdfg.Node i -> i
  | Cdfg.Sym _ | Cdfg.Imm _ -> invalid_arg "Lower.node_id"

(* Emit a load from [arr]: ordered after the last store to [arr]. *)
let emit_load env bctx arr addr =
  let last_store, loads_since = mem_state bctx arr in
  let mem_dep = match last_store with Some s -> [ s ] | None -> [] in
  let v = emit ~mem_dep env bctx Opcode.Load [ addr ] in
  bctx.mem_order <-
    (arr, (last_store, node_id v :: loads_since))
    :: List.remove_assoc arr bctx.mem_order;
  v

(* Emit a store to [arr]: ordered after the last store and all loads of
   [arr] since (anti-dependence). *)
let emit_store env bctx arr addr value =
  let last_store, loads_since = mem_state bctx arr in
  let mem_dep =
    (match last_store with Some s -> [ s ] | None -> []) @ loads_since
  in
  let st = emit ~mem_dep env bctx Opcode.Store [ addr; value ] in
  let store_id =
    (* Store has no result: recover its index from the block count. *)
    match st with
    | Cdfg.Node i -> i
    | Cdfg.Sym _ | Cdfg.Imm _ -> assert false
  in
  bctx.mem_order <-
    (arr, (Some store_id, [])) :: List.remove_assoc arr bctx.mem_order

let fold2 env bctx opcode a b =
  if env.naive then emit env bctx opcode [ a; b ]
  else
  match a, b with
  | Cdfg.Imm x, Cdfg.Imm y -> Cdfg.Imm (Opcode.eval opcode [ x; y ])
  | _, _ ->
    (* Algebraic identities that a real frontend folds away. *)
    (match opcode, a, b with
     | Opcode.Add, v, Cdfg.Imm 0 | Opcode.Add, Cdfg.Imm 0, v -> v
     | Opcode.Sub, v, Cdfg.Imm 0 -> v
     | Opcode.Mul, v, Cdfg.Imm 1 | Opcode.Mul, Cdfg.Imm 1, v -> v
     | Opcode.Mul, _, Cdfg.Imm 0 | Opcode.Mul, Cdfg.Imm 0, _ -> Cdfg.Imm 0
     | (Opcode.Shl | Opcode.Shrl | Opcode.Shra), v, Cdfg.Imm 0 -> v
     | _, _, _ -> emit env bctx opcode [ a; b ])

let rec lower_expr env bctx = function
  | Ast.Int n -> Cdfg.Imm n
  | Ast.Var v -> (
    match List.assoc_opt v env.consts with
    | Some n -> Cdfg.Imm n
    | None -> (
      match List.assoc_opt v bctx.vars with
      | Some op -> op
      | None -> (
        match Hashtbl.find_opt env.syms v with
        | Some s -> Cdfg.Sym s
        | None -> err "undeclared variable %s" v)))
  | Ast.Index (a, idx) ->
    let addr = lower_address env bctx a idx in
    if env.naive then emit_load env bctx a addr
    else
      let key = (a, epoch_of bctx a, addr) in
      (match List.assoc_opt key bctx.loads with
       | Some v -> v
       | None ->
         let v = emit_load env bctx a addr in
         bctx.loads <- (key, v) :: bctx.loads;
         v)
  | Ast.Bin (op, a, b) ->
    let x = lower_expr env bctx a in
    let y = lower_expr env bctx b in
    fold2 env bctx (opcode_of_binop op) x y
  | Ast.Call ("min", [ a; b ]) ->
    fold2 env bctx Opcode.Min (lower_expr env bctx a) (lower_expr env bctx b)
  | Ast.Call ("max", [ a; b ]) ->
    fold2 env bctx Opcode.Max (lower_expr env bctx a) (lower_expr env bctx b)
  | Ast.Call ("abs", [ a ]) ->
    let x = lower_expr env bctx a in
    let neg = fold2 env bctx Opcode.Sub (Cdfg.Imm 0) x in
    fold2 env bctx Opcode.Max x neg
  | Ast.Call ("select", [ c; a; b ]) ->
    let c = lower_expr env bctx c in
    let a = lower_expr env bctx a in
    let b = lower_expr env bctx b in
    (match c with
     | Cdfg.Imm k when not env.naive -> if k <> 0 then a else b
     | Cdfg.Imm _ | Cdfg.Node _ | Cdfg.Sym _ ->
       emit env bctx Opcode.Select [ c; a; b ])
  | Ast.Call (f, args) -> err "unknown intrinsic %s/%d" f (List.length args)

and lower_address env bctx a idx =
  let base =
    match Hashtbl.find_opt env.arrays a with
    | Some b -> b
    | None -> err "undeclared array %s" a
  in
  let i = lower_expr env bctx idx in
  fold2 env bctx Opcode.Add i (Cdfg.Imm base)

let assign env bctx v op =
  if List.mem_assoc v env.consts then err "cannot assign to constant %s" v;
  if not (Hashtbl.mem env.syms v) then err "undeclared variable %s" v;
  bctx.vars <- (v, op) :: List.remove_assoc v bctx.vars

(* Close the current block: commit assigned scalars as live-outs and set
   the terminator. *)
let close env bctx term =
  List.iter
    (fun (v, op) ->
      B.set_live_out env.builder bctx.handle (Hashtbl.find env.syms v) op)
    bctx.vars;
  B.set_terminator env.builder bctx.handle term

let fresh_name env prefix =
  env.name_counter <- env.name_counter + 1;
  Printf.sprintf "%s%d" prefix env.name_counter

let rec lower_stmts env bctx stmts =
  match stmts with
  | [] -> bctx
  | stmt :: rest -> (
    match stmt with
    | Ast.Assign (v, e) ->
      assign env bctx v (lower_expr env bctx e);
      lower_stmts env bctx rest
    | Ast.Store (a, idx, e) ->
      let addr = lower_address env bctx a idx in
      let value = lower_expr env bctx e in
      emit_store env bctx a addr value;
      bump_epoch bctx a;
      lower_stmts env bctx rest
    | Ast.Unroll (v, lo, hi, body) ->
      if Hashtbl.mem env.syms v then
        err "unroll variable %s shadows a scalar" v;
      let saved = env.consts in
      let bctx = ref bctx in
      for k = lo to hi - 1 do
        env.consts <- (v, k) :: saved;
        bctx := lower_stmts env !bctx body
      done;
      env.consts <- saved;
      lower_stmts env !bctx rest
    | Ast.For (init, cond, step, body) ->
      lower_stmts env bctx (init :: Ast.While (cond, body @ [ step ]) :: rest)
    | Ast.While (cond, body) ->
      let header = new_block env (fresh_name env "while") in
      let body_b = new_block env (fresh_name env "body") in
      let after = new_block env (fresh_name env "after") in
      close env bctx (Cdfg.Jump (B.block_id header.handle));
      let cond_op = lower_expr env header cond in
      close env header
        (Cdfg.Branch (cond_op, B.block_id body_b.handle, B.block_id after.handle));
      let body_end = lower_stmts env body_b body in
      close env body_end (Cdfg.Jump (B.block_id header.handle));
      lower_stmts env after rest
    | Ast.If (cond, then_s, else_s) ->
      let cond_op = lower_expr env bctx cond in
      let then_b = new_block env (fresh_name env "then") in
      let after = new_block env (fresh_name env "endif") in
      let else_target, else_close =
        match else_s with
        | [] -> (B.block_id after.handle, None)
        | _ ->
          let else_b = new_block env (fresh_name env "else") in
          (B.block_id else_b.handle, Some else_b)
      in
      close env bctx
        (Cdfg.Branch (cond_op, B.block_id then_b.handle, else_target));
      let then_end = lower_stmts env then_b then_s in
      close env then_end (Cdfg.Jump (B.block_id after.handle));
      (match else_close with
       | None -> ()
       | Some else_b ->
         let else_end = lower_stmts env else_b else_s in
         close env else_end (Cdfg.Jump (B.block_id after.handle)));
      lower_stmts env after rest)

let lower ?(naive = false) (k : Ast.kernel) =
  let builder = B.create k.Ast.name in
  let env =
    { builder; syms = Hashtbl.create 8; arrays = Hashtbl.create 8; consts = [];
      name_counter = 0; naive }
  in
  let declare = function
    | Ast.Dvar names ->
      List.iter
        (fun v ->
          if Hashtbl.mem env.syms v then err "duplicate variable %s" v;
          Hashtbl.add env.syms v (B.fresh_sym builder v))
        names
    | Ast.Darr (name, base) ->
      if Hashtbl.mem env.arrays name then err "duplicate array %s" name;
      Hashtbl.add env.arrays name base
    | Ast.Dconst (name, e) -> (
      let resolve v = List.assoc_opt v env.consts in
      match const_eval resolve e with
      | Some n -> env.consts <- (name, n) :: env.consts
      | None -> err "const %s is not a compile-time constant" name)
  in
  List.iter declare k.Ast.decls;
  let entry = new_block env "entry" in
  let last = lower_stmts env entry k.Ast.body in
  close env last Cdfg.Return;
  B.finish builder
