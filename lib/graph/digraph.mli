(** Mutable directed graph over dense integer node ids.

    All IR graphs (DFGs, the CDFG's control-flow graph) are stored as
    [Digraph.t] plus side tables from node id to payload.  Node ids are
    allocated densely from 0, which lets analyses use plain arrays. *)

type t

val create : unit -> t
(** An empty graph. *)

val add_node : t -> int
(** Allocates and returns the next node id. *)

val node_count : t -> int
(** Number of allocated nodes. *)

val add_edge : t -> src:int -> dst:int -> unit
(** Adds a directed edge.  Duplicate edges are kept (a DFG node can use the
    same value twice, e.g. [x * x]). *)

val succs : t -> int -> int list
(** Successors in insertion order. *)

val preds : t -> int -> int list
(** Predecessors in insertion order. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val nodes : t -> int list
(** All node ids, ascending. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f src dst] once per edge. *)

exception Cycle of int list
(** Raised by the [_exn] entry points on a cyclic graph; carries the ids of
    the nodes stuck on cycles. *)

val topo_sort : t -> (int list, int list) result
(** Topological order of all nodes, or [Error ids] if the graph has a
    cycle — [ids] are the nodes whose in-degree never drained, i.e. the
    nodes on (or locked behind) the offending cycles.  DFGs must be
    acyclic; the control-flow graph is sorted with {!topo_sort_weak}
    instead. *)

val topo_sort_exn : t -> int list
(** Like {!topo_sort} but raises {!Cycle} on a cyclic graph.  For callers
    that have already validated acyclicity. *)

val topo_sort_weak : t -> int list
(** Topological order that tolerates cycles: back edges (relative to a DFS
    from the roots) are ignored, so loops in a CFG yield the natural
    header-before-body order. *)

val is_acyclic : t -> bool

val reachable_from : t -> int list -> bool array
(** [reachable_from g roots] marks every node reachable from [roots]. *)

val longest_path_from_sources : t -> int array
(** For an acyclic graph, the array of longest-path lengths (in edges) from
    any source node.  Used for ASAP levels.  Raises {!Cycle} on a cyclic
    graph. *)

val longest_path_to_sinks : t -> int array
(** Longest-path lengths to any sink node.  Used for ALAP levels.  Raises
    {!Cycle} on a cyclic graph. *)

val to_dot : ?label:(int -> string) -> t -> string
(** Graphviz rendering for debugging and docs. *)
