type t = {
  mutable n : int;
  mutable succ : int list array; (* stored reversed, exposed in order *)
  mutable pred : int list array;
}

let create () = { n = 0; succ = Array.make 8 []; pred = Array.make 8 [] }

let grow g =
  let cap = Array.length g.succ in
  if g.n >= cap then begin
    let ncap = max 8 (2 * cap) in
    let s = Array.make ncap [] and p = Array.make ncap [] in
    Array.blit g.succ 0 s 0 cap;
    Array.blit g.pred 0 p 0 cap;
    g.succ <- s;
    g.pred <- p
  end

let add_node g =
  grow g;
  let id = g.n in
  g.n <- id + 1;
  id

let node_count g = g.n

let check g v =
  if v < 0 || v >= g.n then invalid_arg "Digraph: node id out of range"

let add_edge g ~src ~dst =
  check g src;
  check g dst;
  g.succ.(src) <- dst :: g.succ.(src);
  g.pred.(dst) <- src :: g.pred.(dst)

let succs g v =
  check g v;
  List.rev g.succ.(v)

let preds g v =
  check g v;
  List.rev g.pred.(v)

let out_degree g v =
  check g v;
  List.length g.succ.(v)

let in_degree g v =
  check g v;
  List.length g.pred.(v)

let nodes g = List.init g.n (fun i -> i)

let iter_edges g f =
  for v = 0 to g.n - 1 do
    List.iter (fun w -> f v w) (List.rev g.succ.(v))
  done

exception Cycle of int list

(* Kahn's algorithm; reports the nodes stuck on cycles. *)
let topo_sort g =
  let indeg = Array.init g.n (fun v -> List.length g.pred.(v)) in
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    let visit w =
      indeg.(w) <- indeg.(w) - 1;
      if indeg.(w) = 0 then Queue.add w queue
    in
    List.iter visit (List.rev g.succ.(v))
  done;
  if !seen <> g.n then
    (* Exactly the nodes never drained: each sits on or downstream-inside a
       cycle (its in-degree never reached zero). *)
    Error
      (List.filter (fun v -> indeg.(v) > 0) (List.init g.n (fun i -> i)))
  else Ok (List.rev !order)

let topo_sort_exn g =
  match topo_sort g with Ok order -> order | Error ids -> raise (Cycle ids)

let is_acyclic g = Result.is_ok (topo_sort g)

(* DFS-based order ignoring back edges: post-order reversed. *)
let topo_sort_weak g =
  let state = Array.make g.n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let order = ref [] in
  let rec dfs v =
    if state.(v) = 0 then begin
      state.(v) <- 1;
      List.iter (fun w -> if state.(w) = 0 then dfs w) (List.rev g.succ.(v));
      state.(v) <- 2;
      order := v :: !order
    end
  in
  (* Start from source nodes first so CFG entry blocks lead the order. *)
  for v = 0 to g.n - 1 do
    if List.length g.pred.(v) = 0 then dfs v
  done;
  for v = 0 to g.n - 1 do
    dfs v
  done;
  !order

let reachable_from g roots =
  let seen = Array.make g.n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs (List.rev g.succ.(v))
    end
  in
  List.iter (fun r -> check g r; dfs r) roots;
  seen

let longest_path_from_sources g =
  let order = topo_sort_exn g in
  let dist = Array.make g.n 0 in
  let relax v =
    let bump w = if dist.(v) + 1 > dist.(w) then dist.(w) <- dist.(v) + 1 in
    List.iter bump (List.rev g.succ.(v))
  in
  List.iter relax order;
  dist

let longest_path_to_sinks g =
  let order = topo_sort_exn g in
  let dist = Array.make g.n 0 in
  let relax v =
    let best =
      List.fold_left (fun acc w -> max acc (dist.(w) + 1)) 0 (List.rev g.succ.(v))
    in
    dist.(v) <- best
  in
  List.iter relax (List.rev order);
  dist

let to_dot ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" v (label v)))
    (nodes g);
  iter_edges g (fun s d -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" s d));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
