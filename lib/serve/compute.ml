module K = Cgra_kernels.Kernel_def
module FC = Cgra_core.Flow_config

type outcome =
  | Artifact of { bytes : string; digest : string }
  | Unmappable of { reason : string }
  | Timed_out of { where : string }

let ( let* ) = Result.bind

let cdfg_of (spec : Key.spec) =
  match spec.Key.kernel with
  | Key.Bundled { slug; source = _ } -> (
    match Cgra_kernels.Kernels.by_slug slug with
    | None -> Error (Printf.sprintf "unknown kernel %S" slug)
    | Some k -> (
      match spec.Key.opt with
      | Key.Default -> Ok (K.cdfg k)
      | Key.Raw | Key.Optimized -> Ok (K.cdfg_raw k)))
  | Key.Inline { source; _ } -> (
    let raw =
      match spec.Key.opt with
      | Key.Default -> false
      | Key.Raw | Key.Optimized -> true
    in
    match Cgra_lang.Compile.compile ~raw source with
    | Ok cdfg -> Ok cdfg
    | Error e ->
      Error ("kernel source: " ^ Cgra_lang.Compile.error_to_string e))

let bundled_kernel (spec : Key.spec) =
  match spec.Key.kernel with
  | Key.Bundled { slug; _ } -> Cgra_kernels.Kernels.by_slug slug
  | Key.Inline _ -> None

let fresh_mem (spec : Key.spec) =
  match spec.Key.kernel with
  | Key.Bundled { slug; _ } -> (
    match Cgra_kernels.Kernels.by_slug slug with
    | Some k -> K.fresh_mem k
    | None -> assert false (* cdfg_of already resolved the slug *))
  | Key.Inline { mem_words; _ } -> Array.make mem_words 0

let run ?(deadline = Cgra_util.Deadline.never) (spec : Key.spec) =
  let* cdfg = cdfg_of spec in
  let* fc = Key.config_of_knobs spec.Key.knobs in
  let fc =
    {
      fc with
      FC.optimize = (spec.Key.opt = Key.Optimized);
      faults = spec.Key.faults;
    }
  in
  let cgra = Cgra_arch.Config.cgra spec.Key.config in
  let* () =
    (* Surface bad tile ids in the fault map as a request error before
       mapping, exactly like [cgra_map map --faults]. *)
    if spec.Key.faults = [] then Ok ()
    else
      match Cgra_arch.Cgra.degrade cgra spec.Key.faults with
      | _ -> Ok ()
      | exception Invalid_argument e -> Error ("fault map: " ^ e)
  in
  let opt_verify =
    match (spec.Key.opt, bundled_kernel spec) with
    | Key.Optimized, Some k ->
      Some (Cgra_opt.Pipeline.verifier_of_mems [ K.fresh_mem k ])
    | _ -> None
  in
  match Cgra_core.Flow.run ~config:fc ~deadline ?opt_verify cgra cdfg with
  | exception Cgra_opt.Pipeline.Verification_failed _ ->
    Error "optimization pipeline failed differential verification"
  | Error { Cgra_core.Flow.timed_out = Some where; _ } ->
    (* Not a verdict about the kernel — the caller must not memoise it. *)
    Ok (Timed_out { where })
  | Error f -> Ok (Unmappable { reason = f.Cgra_core.Flow.reason })
  | Ok (m, _stats) -> (
    match Cgra_asm.Assemble.assemble m with
    | exception Cgra_asm.Assemble.Assembly_error e ->
      (* register-file pressure the search does not model — same
         unmappable classification the Runner uses *)
      Ok (Unmappable { reason = "assembly: " ^ e })
    | prog -> (
      let mem = fresh_mem spec in
      (* Protection changes simulation and energy, never the mapping:
         protected requests fetch through the ECC decoder (with the
         default scrub cadence) and pay the protection energy terms.
         With protection off, both calls are exactly the pre-existing
         ones, keeping artifacts byte-identical. *)
      let protect =
        if Cgra_arch.Protection.is_none fc.FC.protection then None
        else
          Some
            {
              Cgra_sim.Simulator.profile = fc.FC.protection;
              upsets = [];
              scrub_interval = Cgra_arch.Protection.default_scrub_interval;
            }
      in
      match Cgra_sim.Simulator.run ?protect prog ~mem with
      | exception Cgra_sim.Simulator.Sim_error e ->
        Error
          ("simulation failed: " ^ Cgra_sim.Simulator.error_to_string e)
      | sim ->
        let* () =
          match bundled_kernel spec with
          | Some k when mem <> K.run_golden k ->
            Error
              (Printf.sprintf
                 "golden-model mismatch for kernel %s — tool bug, refusing \
                  to cache"
                 k.K.slug)
          | _ -> Ok ()
        in
        let energy =
          match protect with
          | None -> Cgra_power.Energy.cgra cgra sim
          | Some _ ->
            Cgra_power.Energy.cgra ~protect:fc.FC.protection cgra sim
        in
        let bytes =
          Artifact.render ~key_digest:(Key.digest spec) ~spec prog sim energy
        in
        Ok (Artifact { bytes; digest = Artifact.digest bytes })))
