type t = { fd : Unix.file_descr }

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let connect ep =
  match
    match ep with
    | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  with
  | fd -> Ok { fd }
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot connect to %s: %s" (endpoint_to_string ep)
         (Unix.error_message err))
  | exception Not_found ->
    Error (Printf.sprintf "cannot resolve %s" (endpoint_to_string ep))
  | exception Failure msg ->
    Error (Printf.sprintf "cannot connect to %s: %s" (endpoint_to_string ep) msg)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_conn ep f =
  match connect ep with
  | Error _ as e -> e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))

let request t req =
  match
    Wire.write_frame t.fd (Wire.to_string (Protocol.request_to_sexp req))
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error ("send failed: " ^ Unix.error_message err)
  | () -> (
    (* The read side raises too — a daemon SIGKILLed mid-compute resets
       the connection and [Unix.read] throws ECONNRESET.  Catching it
       here (not just on the write) is what keeps [cgra_map remote]
       from dying with a raw backtrace when the daemon vanishes. *)
    match Wire.read_frame t.fd with
    | exception Unix.Unix_error (err, _, _) ->
      Error ("receive failed: " ^ Unix.error_message err)
    | Error e -> Error ("receive failed: " ^ Wire.read_error_to_string e)
    | Ok payload -> (
      match Wire.parse payload with
      | Error e -> Error ("malformed response: " ^ e)
      | Ok sexp -> Protocol.response_of_sexp sexp))

let ping ep =
  let t0 = Cgra_util.Clock.now () in
  match with_conn ep (fun t -> request t Protocol.Ping) with
  | Error e -> Error e
  | Ok (Error e) -> Error e
  | Ok (Ok Protocol.Pong) -> Ok ((Cgra_util.Clock.now () -. t0) *. 1e3)
  | Ok (Ok other) ->
    Error
      ("unexpected ping response: "
      ^ Wire.to_string (Protocol.response_to_sexp other))

type source = Daemon of { cached : bool } | Local

type map_result =
  | Artifact of { bytes : string; digest : string; source : source }
  | Unmappable of { reason : string }
  | Timed_out of { where : string }

type map_error =
  | Unreachable of { endpoint : string; reason : string }
  | Rejected of string

let map_error_to_string = function
  | Unreachable { reason; _ } -> reason
  | Rejected reason -> reason

let map_local ?deadline_ms spec =
  let deadline =
    match deadline_ms with
    | None -> Cgra_util.Deadline.never
    | Some ms -> Cgra_util.Deadline.after_ms ms
  in
  match Compute.run ~deadline spec with
  | Error e -> Error (Rejected e)
  | Ok (Compute.Unmappable { reason }) -> Ok (Unmappable { reason })
  | Ok (Compute.Timed_out { where }) -> Ok (Timed_out { where })
  | Ok (Compute.Artifact { bytes; digest }) ->
    Ok (Artifact { bytes; digest; source = Local })

(* Capped exponential backoff with keyed jitter.  The jitter stream is
   seeded from (retry_seed, key digest), so a fleet of clients hammering
   an overloaded daemon for different keys desynchronises — while any
   single run's delays are reproducible, in keeping with the repo-wide
   determinism discipline (nothing consults [Random] or the wall
   clock). *)
let backoff_delays ~retry_seed ~spec ~retries =
  let rng =
    Cgra_util.Rng.create
      (Cgra_util.Rng.seed_of ~base:retry_seed (Key.digest spec))
  in
  List.init retries (fun k ->
      let base = min 2.0 (0.05 *. float_of_int (1 lsl min k 5)) in
      let jitter = 0.5 +. (float_of_int (Cgra_util.Rng.int rng 1000) /. 1000.0) in
      base *. jitter)

let map ?(fallback = true) ?deadline_ms ?(retries = 0) ?(retry_seed = 0) ep
    spec =
  let delays = backoff_delays ~retry_seed ~spec ~retries in
  let attempt_once () =
    match connect ep with
    | Error e -> `Unreachable e
    | Ok t -> (
      let r =
        Fun.protect
          ~finally:(fun () -> close t)
          (fun () -> request t (Protocol.Map { spec; deadline_ms }))
      in
      match r with
      | Error e ->
        (* the daemon answered garbage or hung up mid-frame; that is an
           I/O failure, not a rejection, so treat it like a dead socket.
           Name the endpoint: unlike connect errors, frame-level
           failures do not carry it. *)
        `Unreachable (endpoint_to_string ep ^ ": " ^ e)
      | Ok (Protocol.Artifact_r { digest; cached; bytes }) ->
        `Done (Ok (Artifact { bytes; digest; source = Daemon { cached } }))
      | Ok (Protocol.Unmappable_r { reason }) ->
        `Done (Ok (Unmappable { reason }))
      | Ok (Protocol.Timed_out_r { where }) ->
        (* Not retryable: the same deadline buys the same give-up.  The
           caller decides whether to come back with more patience. *)
        `Done (Ok (Timed_out { where }))
      | Ok (Protocol.Overloaded_r { queue_depth }) ->
        (* Retryable by design: nothing was computed, and the queue
           drains as other requests finish. *)
        `Overloaded queue_depth
      | Ok (Protocol.Error_r { reason }) -> `Done (Error (Rejected reason))
      | Ok other ->
        `Done
          (Error
             (Rejected
                ("unexpected response: "
                ^ Wire.to_string (Protocol.response_to_sexp other)))))
  in
  let rec go delays =
    match (attempt_once (), delays) with
    | `Done r, _ -> r
    | `Unreachable reason, [] ->
      if fallback then map_local ?deadline_ms spec
      else
        Error (Unreachable { endpoint = endpoint_to_string ep; reason })
    | `Overloaded depth, [] ->
      (* The daemon is alive and refusing work — a rejection, not an
         outage, so no local fallback: silently absorbing the shed
         traffic on the client host would defeat the shedding. *)
      Error
        (Rejected
           (Printf.sprintf "daemon overloaded (compute queue %d deep)" depth))
    | (`Unreachable _ | `Overloaded _), delay :: rest ->
      Thread.delay delay;
      go rest
  in
  go delays
