type t = { fd : Unix.file_descr }

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let connect ep =
  match
    match ep with
    | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  with
  | fd -> Ok { fd }
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot connect to %s: %s" (endpoint_to_string ep)
         (Unix.error_message err))
  | exception Not_found ->
    Error (Printf.sprintf "cannot resolve %s" (endpoint_to_string ep))
  | exception Failure msg ->
    Error (Printf.sprintf "cannot connect to %s: %s" (endpoint_to_string ep) msg)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_conn ep f =
  match connect ep with
  | Error _ as e -> e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))

let request t req =
  match
    Wire.write_frame t.fd (Wire.to_string (Protocol.request_to_sexp req))
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error ("send failed: " ^ Unix.error_message err)
  | () -> (
    match Wire.read_frame t.fd with
    | Error e -> Error ("receive failed: " ^ Wire.read_error_to_string e)
    | Ok payload -> (
      match Wire.parse payload with
      | Error e -> Error ("malformed response: " ^ e)
      | Ok sexp -> Protocol.response_of_sexp sexp))

type source = Daemon of { cached : bool } | Local

type map_result =
  | Artifact of { bytes : string; digest : string; source : source }
  | Unmappable of { reason : string }

let map_local spec =
  match Compute.run spec with
  | Error e -> Error e
  | Ok (Compute.Unmappable { reason }) -> Ok (Unmappable { reason })
  | Ok (Compute.Artifact { bytes; digest }) ->
    Ok (Artifact { bytes; digest; source = Local })

let map ?(fallback = true) ep spec =
  match connect ep with
  | Error e -> if fallback then map_local spec else Error e
  | Ok t -> (
    let r = Fun.protect ~finally:(fun () -> close t) (fun () ->
        request t (Protocol.Map spec))
    in
    match r with
    | Error e ->
      (* the daemon answered garbage or hung up mid-frame; that is an
         I/O failure, not a rejection, so fall back like a dead socket *)
      if fallback then map_local spec else Error e
    | Ok (Protocol.Artifact_r { digest; cached; bytes }) ->
      Ok (Artifact { bytes; digest; source = Daemon { cached } })
    | Ok (Protocol.Unmappable_r { reason }) -> Ok (Unmappable { reason })
    | Ok (Protocol.Error_r { reason }) -> Error reason
    | Ok other ->
      Error
        ("unexpected response: "
        ^ Wire.to_string (Protocol.response_to_sexp other)))
