(** Deterministic byte serialization of a compiled-and-simulated mapping —
    the payload the store holds and the daemon ships.

    The rendering contains only reproducible quantities: the binary
    context-memory images ({!Cgra_asm.Assemble.encode_tile}), constant
    pools, symbol register slots, per-block section lengths, simulated
    cycle/stall/instruction counts and the energy breakdown.  Nothing
    host- or wall-clock-dependent appears, so for a fixed request key the
    bytes are identical on every run, host and [--jobs] value — the
    end-to-end determinism contract the store verifies on every read. *)

val render :
  key_digest:string ->
  spec:Key.spec ->
  Cgra_asm.Assemble.program ->
  Cgra_sim.Simulator.result ->
  Cgra_power.Energy.breakdown ->
  string
(** Render the artifact bytes.  [key_digest] is embedded so a stored
    artifact names its own request key. *)

val digest : string -> string
(** MD5 of the artifact bytes, lowercase hex — what the store records
    next to the payload, what the wire protocol reports, and what the CI
    smoke step compares with [md5sum]. *)
