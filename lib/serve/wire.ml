type sexp = Atom of string | List of sexp list

(* ---- rendering -------------------------------------------------------- *)

let safe_atom_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '-' | '_' | '+' | '.' | '/' | ':' | '@' | '=' | '*' | '%' | '#' | ','
  | '<' | '>' | '!' | '?' | '~' | '^' | '&' | '$' | '[' | ']' | '{' | '}'
  | '|' | '\'' ->
    true
  | _ -> false

let needs_quoting s = s = "" || String.exists (fun c -> not (safe_atom_char c)) s

let quote buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c >= 127 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string sexp =
  let buf = Buffer.create 256 in
  let rec go = function
    | Atom s -> if needs_quoting s then quote buf s else Buffer.add_string buf s
    | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          go item)
        items;
      Buffer.add_char buf ')'
  in
  go sexp;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n'
                       || s.[!pos] = '\r') do
      incr pos
    done
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\x escape"
  in
  let parse_quoted () =
    incr pos (* opening quote *);
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents buf
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 'x' ->
            if !pos + 2 >= n then fail "unterminated \\x escape";
            let hi = hex_digit s.[!pos + 1] and lo = hex_digit s.[!pos + 2] in
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            pos := !pos + 3
          | c -> fail (Printf.sprintf "unknown escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_bare () =
    let start = !pos in
    while !pos < n && safe_atom_char s.[!pos] do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let rec parse_sexp () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a sexp, got end of input"
    | Some '(' ->
      incr pos;
      let rec items acc =
        skip_ws ();
        match peek () with
        | None -> fail "unterminated list"
        | Some ')' ->
          incr pos;
          List (List.rev acc)
        | Some _ -> items (parse_sexp () :: acc)
      in
      items []
    | Some ')' -> fail "unexpected ')'"
    | Some '"' -> Atom (parse_quoted ())
    | Some c when safe_atom_char c -> Atom (parse_bare ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_sexp () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after sexp";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- framing ---------------------------------------------------------- *)

let max_frame = 8 * 1024 * 1024

type read_error =
  | Eof
  | Truncated of { wanted : int; got : int }
  | Oversized of { length : int; limit : int }
  | Idle_timeout

let read_error_to_string = function
  | Eof -> "end of stream"
  | Truncated { wanted; got } ->
    Printf.sprintf "truncated frame: wanted %d bytes, got %d" wanted got
  | Oversized { length; limit } ->
    Printf.sprintf "oversized frame: %d bytes exceeds the %d-byte limit"
      length limit
  | Idle_timeout -> "receive timeout (SO_RCVTIMEO) expired"

exception Timed_out_io

(* [Unix.read] may return short; EINTR restarts.  A socket armed with
   SO_RCVTIMEO fails a stalled read with EAGAIN/EWOULDBLOCK — surfaced
   as [Timed_out_io] so [read_frame] can turn it into a typed error
   instead of leaking a raw [Unix_error] into the connection handler. *)
let really_read fd buf off len =
  let got = ref 0 in
  (try
     while !got < len do
       let r =
         try Unix.read fd buf (off + !got) (len - !got)
         with
         | Unix.Unix_error (Unix.EINTR, _, _) -> -1
         | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
           raise Timed_out_io
       in
       if r = 0 then raise Exit else if r > 0 then got := !got + r
     done
   with Exit -> ());
  !got

let read_frame fd =
  match
    let prefix = Bytes.create 4 in
    match really_read fd prefix 0 4 with
    | 0 -> Error Eof
    | g when g < 4 -> Error (Truncated { wanted = 4; got = g })
    | _ ->
      let length = Int32.to_int (Bytes.get_int32_be prefix 0) in
      if length < 0 || length > max_frame then
        Error (Oversized { length; limit = max_frame })
      else begin
        let payload = Bytes.create length in
        let got = really_read fd payload 0 length in
        if got < length then Error (Truncated { wanted = length; got })
        else Ok (Bytes.unsafe_to_string payload)
      end
  with
  | r -> r
  | exception Timed_out_io -> Error Idle_timeout

(* Read and discard [len] bytes — the unconsumed payload behind an
   oversized prefix.  Without the drain, a client still blocked writing
   its too-big frame would fill the socket buffers, never complete the
   write, and so never read the typed [Oversized] answer the server
   sends; it would just see the connection die.  Bounded: stops early
   on EOF, any socket error, or an SO_RCVTIMEO expiry. *)
let drain fd len =
  let chunk = Bytes.create 65536 in
  let left = ref len in
  try
    while !left > 0 do
      let got = really_read fd chunk 0 (min !left (Bytes.length chunk)) in
      if got = 0 then left := 0 else left := !left - got
    done
  with Timed_out_io | Unix.Unix_error _ -> ()

let frame_bytes payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Wire.frame_bytes: payload of %d bytes exceeds max_frame"
         len);
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

let write_frame fd payload =
  let data = frame_bytes payload in
  let len = String.length data in
  let sent = ref 0 in
  while !sent < len do
    let w =
      try Unix.write_substring fd data !sent (len - !sent)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    sent := !sent + w
  done
