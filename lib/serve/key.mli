(** Content-addressed identity of a mapping request.

    A key captures everything the artifact bytes depend on: the kernel
    {e source text} (not its name), the initial memory image, the
    architecture configuration, the semantic flow knobs, the lowering/
    optimization mode, the permanent-fault map, and the tool-chain code
    version.  Two requests with equal keys are guaranteed — by the
    keyed-RNG determinism work of PRs 1–6 — to produce byte-identical
    artifacts, which is what makes the on-disk store and the daemon's
    single-flight dedup sound.

    Deliberately excluded from the key (proven bytes-neutral):
    [expand_jobs] (RNG-free parallel expansion), [validate] (checks only)
    and [optimize] (subsumed by the {!opt} mode). *)

type opt = Default | Raw | Optimized
(** Which CDFG the flow maps — mirrors [Cgra_exp.Runner.opt_mode]. *)

val opt_to_string : opt -> string
val opt_of_string : string -> opt option

type kernel =
  | Bundled of { slug : string; source : string }
      (** a kernel from [Cgra_kernels] — its deterministic input image
          and golden model apply *)
  | Inline of { source : string; mem_words : int }
      (** caller-supplied program text, simulated on a zeroed memory of
          [mem_words] words; no golden check *)

type spec = {
  kernel : kernel;
  config : Cgra_arch.Config.name;
  knobs : (string * string) list;
      (** semantic flow knobs as name/value pairs; order-insensitive —
          the canonical form sorts them *)
  opt : opt;
  faults : Cgra_arch.Cgra.fault list;
}

val code_version : string
(** Baked into every digest: bump it when mapper/assembler/simulator
    changes can alter artifact bytes, and every stale store entry
    silently becomes a miss. *)

val knobs_of_config : Cgra_core.Flow_config.t -> (string * string) list
(** All semantic knobs of a flow configuration (traversal, filters,
    beam/expansion widths, pruning, seeds, retry and degradation budgets)
    as sorted name/value pairs.  Floats render in round-trip-exact
    ["%.17g"] form. *)

val config_of_knobs :
  (string * string) list -> (Cgra_core.Flow_config.t, string) result
(** Rebuild a flow configuration from knob pairs over
    [Flow_config.default] — the daemon side of {!knobs_of_config}.
    Omitted knobs keep their defaults; an unknown name or unparsable
    value is a typed error (protocol version skew must not silently map
    with wrong knobs). *)

val spec_of_bundled :
  slug:string ->
  config:Cgra_arch.Config.name ->
  flow:Cgra_core.Flow_config.t ->
  opt:opt ->
  faults:Cgra_arch.Cgra.fault list ->
  (spec, string) result
(** Resolve a bundled kernel slug and build the spec the [cgra_map]
    client, the [map --emit] path and the daemon all agree on.  [Error]
    names the unknown slug. *)

val canonical : spec -> string
(** The canonical rendering digested by {!digest}: knobs sorted by name,
    faults sorted, sources replaced by their MD5 — so the digest is
    independent of field arrival order on the wire. *)

val digest : spec -> string
(** MD5 of {!canonical}, lowercase hex — the store key and single-flight
    identity. *)
