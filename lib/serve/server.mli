(** The [cgra_mapd] daemon: a long-running mapping service.

    Architecture (DESIGN.md §5f): one listener per endpoint (always a
    Unix-domain socket, optionally loopback TCP) accepts connections on a
    stop-aware select loop; each connection gets a lightweight handler
    thread that decodes length-prefixed {!Wire} frames and serves
    {!Protocol} requests.  A [map] request is keyed ({!Key.digest}),
    looked up in the content-addressed {!Store} (hits return in
    microseconds), and on a miss deduplicated across {e all} connections
    through the same single-flight [Runner.Memo] discipline the
    in-process harness uses, then computed on a persistent
    [Cgra_util.Pool] domain pool with fair per-client FIFO queueing.
    Artifacts are written back to the store, which verifies the recorded
    digest on every read.

    Shutdown — via the [shutdown] request or SIGTERM/SIGINT under
    {!serve} — stops accepting, drains in-flight requests and queued
    jobs, joins the workers and removes the socket file. *)

type config = {
  socket_path : string;        (** Unix-domain socket to listen on *)
  tcp_port : int option;       (** also listen on 127.0.0.1:port *)
  store_root : string option;  (** artifact store root (default
                                   {!Store.default_root}) *)
  jobs : int option;           (** compute worker domains (default
                                   [Pool.default_jobs]) *)
  verbose : bool;              (** log requests to stderr *)
  deadline_ms : int option;    (** default compute deadline per [map]
                                   request; a request's own
                                   [deadline_ms] can only tighten it
                                   (the two are intersected).  [None] =
                                   unlimited *)
  queue_limit : int option;    (** shed [map] misses with
                                   [Overloaded_r] once the compute
                                   queue (queued + running) reaches
                                   this depth; at half this depth
                                   portfolio requests degrade to beam.
                                   Store hits are always served.
                                   [None] = never shed *)
  io_timeout_s : float option; (** SO_RCVTIMEO/SO_SNDTIMEO on accepted
                                   connections: a peer that stalls a
                                   read or write for this long is
                                   dropped, freeing its thread.  [None]
                                   = block forever *)
}

type t

exception Address_in_use of { path : string }
(** Raised by {!start} when the configured Unix socket path is already
    held by a live daemon: the path is probed with a connect (and a
    bounded [ping]) before binding, and only a connection-refused
    socket file — a provably stale leftover — is removed and rebound.
    Binding over a live socket would silently strand the first
    daemon's clients. *)

val start : config -> t
(** Bind the listeners, spawn the worker pool and accept threads, install
    the {!Runner_backend} so harness-computed cells feed the same store.
    Raises [Unix_error] if a listener cannot bind and {!Address_in_use}
    if another live daemon already owns the Unix socket path. *)

val store : t -> Store.t

val request_stop : t -> unit
(** Begin graceful shutdown; idempotent, safe from a signal handler
    context (sets a flag the accept loops poll). *)

val stopping : t -> bool

val wait : t -> unit
(** Block until shutdown completes: accept threads joined, connections
    drained (bounded grace, then force-closed), pool drained and joined,
    socket unlinked. *)

val serve : config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!request_stop}, then
    {!wait} — the [cgra_mapd] main loop. *)
