(** The one compute path behind every cache miss.

    [cgra_mapd] workers, the [cgra_map remote] local fallback and the
    [cgra_map map --emit] artifact writer all call {!run} on the same
    {!Key.spec}, so a warm daemon, a cold daemon and a local build
    produce byte-identical artifacts by construction: compile → optional
    [cgra_opt] pipeline → map ([Cgra_core.Flow.run], degraded by the
    spec's fault map) → assemble → cycle-level simulation (with golden
    check for bundled kernels) → energy model → {!Artifact.render}. *)

type outcome =
  | Artifact of { bytes : string; digest : string }
      (** [digest] is MD5 of [bytes] ({!Artifact.digest}) *)
  | Unmappable of { reason : string }
      (** the flow (or register allocation) found no mapping — a valid,
          memoised negative answer *)
  | Timed_out of { where : string }
      (** the deadline fired mid-map; [where] names the boundary that
          observed it.  Unlike [Unmappable] this is {e not} a verdict
          about the kernel and must never be memoised or stored — a
          retry with more time may well map it. *)

val run : ?deadline:Cgra_util.Deadline.t -> Key.spec -> (outcome, string) result
(** [Error] is a request problem (source does not compile, bad knob,
    invalid fault map for the array) or a tool bug surfaced as a typed
    message (golden-model mismatch, simulator error) — never an escaped
    exception.  [deadline] bounds the mapping flow (compile, assembly
    and simulation are not under it — they are orders of magnitude
    cheaper than a hard map); expiry yields [Ok (Timed_out _)]. *)
