(** Client side of the {!Protocol}: connect, exchange framed requests,
    and a [map] convenience that falls back to computing locally
    (through the same {!Compute} path the daemon uses, so the bytes are
    identical either way) when no daemon is reachable. *)

type t

type endpoint =
  | Unix_socket of string
  | Tcp of string * int  (** host, port *)

val endpoint_to_string : endpoint -> string

val connect : endpoint -> (t, string) result
(** One-line typed error on failure (daemon not running, stale socket,
    connection refused). *)

val close : t -> unit

val with_conn : endpoint -> (t -> 'a) -> ('a, string) result
(** [connect], run the body, [close] (also on exception). *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one framed request and block for the framed response.  Every
    socket-level failure — on the write {e or} the read, including a
    daemon that died mid-compute and reset the connection — comes back
    as a typed [Error], never an escaping [Unix_error]. *)

val ping : endpoint -> (float, string) result
(** Health probe: connect, exchange [ping]/[pong], return the round-trip
    time in milliseconds.  A cheap liveness check before committing a
    batch of requests to a daemon. *)

type source = Daemon of { cached : bool } | Local

type map_result =
  | Artifact of { bytes : string; digest : string; source : source }
  | Unmappable of { reason : string }
  | Timed_out of { where : string }
      (** the deadline fired; [where] names the search boundary that
          observed it *)

type map_error =
  | Unreachable of { endpoint : string; reason : string }
      (** no daemon answered (connect refused, stale socket, or it died
          mid-frame) and fallback was disabled; [reason] names the
          socket path.  Callers can give this its own exit code. *)
  | Rejected of string
      (** the daemon (or the local compute path) was reachable and said
          no: a request error, an overloaded queue after all retries, or
          a malformed-spec failure *)

val map_error_to_string : map_error -> string

val map :
  ?fallback:bool ->
  ?deadline_ms:int ->
  ?retries:int ->
  ?retry_seed:int ->
  endpoint ->
  Key.spec ->
  (map_result, map_error) result
(** Try the daemon first; when it is unreachable and [fallback] is true
    (the default), compute in-process via {!Compute.run} (under the same
    [deadline_ms], so local fallback honours the caller's patience).

    [retries] (default 0) extra attempts are made before giving up or
    falling back, with capped exponential backoff (50 ms base, 2 s cap)
    and jitter keyed on [(retry_seed, Key.digest spec)] — deterministic
    per run, decorrelated across keys.  Retried: connection failures,
    mid-frame hangups, and [Overloaded_r] shedding.  {e Not} retried:
    [Timed_out_r] (the same deadline buys the same give-up) and daemon
    rejections ([Error_r]), which are returned as [Error] without
    fallback — the daemon was reachable and said no. *)
