(** Client side of the {!Protocol}: connect, exchange framed requests,
    and a [map] convenience that falls back to computing locally
    (through the same {!Compute} path the daemon uses, so the bytes are
    identical either way) when no daemon is reachable. *)

type t

type endpoint =
  | Unix_socket of string
  | Tcp of string * int  (** host, port *)

val connect : endpoint -> (t, string) result
(** One-line typed error on failure (daemon not running, stale socket,
    connection refused). *)

val close : t -> unit

val with_conn : endpoint -> (t -> 'a) -> ('a, string) result
(** [connect], run the body, [close] (also on exception). *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one framed request and block for the framed response. *)

type source = Daemon of { cached : bool } | Local

type map_result =
  | Artifact of { bytes : string; digest : string; source : source }
  | Unmappable of { reason : string }

val map :
  ?fallback:bool ->
  endpoint ->
  Key.spec ->
  (map_result, string) result
(** Try the daemon first; when it is unreachable and [fallback] is true
    (the default), compute in-process via {!Compute.run}.  Daemon-side
    request errors are returned as [Error] and do {e not} fall back —
    the daemon was reachable and rejected the request. *)
