module A = Cgra_asm.Assemble
module S = Cgra_sim.Simulator
module E = Cgra_power.Energy

let digest bytes = Digest.to_hex (Digest.string bytes)

let render ~key_digest ~(spec : Key.spec) (prog : A.program) (sim : S.result)
    (energy : E.breakdown) =
  let buf = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "cgra-artifact v1";
  line "key %s" key_digest;
  (match spec.Key.kernel with
  | Key.Bundled { slug; source } ->
    line "kernel %s" slug;
    line "source-md5 %s" (Digest.to_hex (Digest.string source))
  | Key.Inline { source; mem_words } ->
    line "kernel inline mem_words=%d" mem_words;
    line "source-md5 %s" (Digest.to_hex (Digest.string source)));
  line "config %s" (Cgra_arch.Config.to_string spec.Key.config);
  line "opt %s" (Key.opt_to_string spec.Key.opt);
  line "cycles %d" sim.S.cycles;
  line "stalls %d" sim.S.stall_cycles;
  line "blocks_executed %d" sim.S.blocks_executed;
  line "instructions %d" sim.S.instructions;
  line "energy_pj %.3f" energy.E.total_pj;
  line "sym_slot %s"
    (String.concat " " (Array.to_list (Array.map string_of_int prog.A.sym_slot)));
  line "section_length %s"
    (String.concat " "
       (Array.to_list (Array.map string_of_int prog.A.section_length)));
  line "tiles %d" (Array.length prog.A.tiles);
  Array.iteri
    (fun t (tp : A.tile_program) ->
      line "tile %d words %d" t tp.A.words;
      line "  crf %s"
        (String.concat " " (Array.to_list (Array.map string_of_int tp.A.crf)));
      let image = A.encode_tile tp in
      line "  image %s"
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%016Lx") image))))
    prog.A.tiles;
  line "end";
  Buffer.contents buf
