module Clock = Cgra_util.Clock
module Deadline = Cgra_util.Deadline
module Pool = Cgra_util.Pool
module Memo = Cgra_exp.Runner.Memo

type config = {
  socket_path : string;
  tcp_port : int option;
  store_root : string option;
  jobs : int option;
  verbose : bool;
  deadline_ms : int option;
  queue_limit : int option;
  io_timeout_s : float option;
}

(* A request error raised inside a single-flight compute; cached by the
   memo and re-raised to every waiter of the key, like any harness
   failure. *)
exception Request_error of string

type t = {
  cfg : config;
  store : Store.t;
  pool : Pool.Persistent.t;
  flights : (string, Compute.outcome) Memo.t;
  (* counters; the float accumulators live under [stats_mutex] *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  unmappable : int Atomic.t;
  errors : int Atomic.t;
  timeouts : int Atomic.t;
  shed : int Atomic.t;
  stats_mutex : Mutex.t;
  mutable hit_us_total : float;
  mutable miss_us_total : float;
  started_at : float;
  stop : bool Atomic.t;
  client_counter : int Atomic.t;
  conns : int Atomic.t;
  conn_fds : (int, Unix.file_descr) Hashtbl.t;  (* client id -> fd *)
  conn_mutex : Mutex.t;
  mutable listeners : Unix.file_descr list;
  mutable accept_threads : Thread.t list;
}

let log t fmt =
  if t.cfg.verbose then Printf.eprintf ("cgra_mapd: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let store t = t.store
let stopping t = Atomic.get t.stop

(* ---- compute scheduling ----------------------------------------------- *)

(* Run [f] on the pool (FIFO per client lane, round-robin across lanes)
   and block this connection thread until it finishes.  During shutdown
   the pool rejects new work; a drained request then computes inline —
   it was accepted before the drain began, so it still gets an answer. *)
let run_on_pool t ~lane f =
  let m = Mutex.create () in
  let c = Condition.create () in
  let result = ref None in
  let job () =
    let r =
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock m;
    result := Some r;
    Condition.signal c;
    Mutex.unlock m
  in
  if Pool.Persistent.submit t.pool ~lane job then begin
    Mutex.lock m;
    while (match !result with None -> true | Some _ -> false) do
      Condition.wait c m
    done;
    Mutex.unlock m;
    match Option.get !result with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end
  else f ()

(* ---- request handling ------------------------------------------------- *)

let add_latency t ~hit us =
  Mutex.lock t.stats_mutex;
  if hit then t.hit_us_total <- t.hit_us_total +. us
  else t.miss_us_total <- t.miss_us_total +. us;
  Mutex.unlock t.stats_mutex

let snapshot_stats t =
  Mutex.lock t.stats_mutex;
  let hit_us_total = t.hit_us_total and miss_us_total = t.miss_us_total in
  Mutex.unlock t.stats_mutex;
  {
    Protocol.hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    unmappable = Atomic.get t.unmappable;
    errors = Atomic.get t.errors;
    timeouts = Atomic.get t.timeouts;
    shed = Atomic.get t.shed;
    inflight = Pool.Persistent.inflight t.pool;
    stored_entries = Store.entries t.store;
    stored_bytes = Store.total_bytes t.store;
    hit_us_total;
    miss_us_total;
    uptime_s = Clock.now () -. t.started_at;
  }

(* The overload-degradation rung: with the compute queue past half the
   shedding limit, a portfolio request is downgraded to its beam half —
   one backend's worth of pool time instead of two.  The rewrite changes
   the key, so the beam artifact is computed, cached and served under
   its own honest digest (never under the portfolio key: the store must
   stay content-addressed).  A later, calmer portfolio request still
   computes the real race. *)
let downgrade_spec (spec : Key.spec) =
  let is_portfolio (name, v) = name = "backend" && v = "portfolio" in
  if List.exists is_portfolio spec.Key.knobs then
    Some
      {
        spec with
        Key.knobs =
          List.map
            (fun (name, v) ->
              if is_portfolio (name, v) then (name, "beam") else (name, v))
            spec.Key.knobs;
      }
  else None

let queue_depth t = Pool.Persistent.inflight t.pool

let handle_map t ~client spec deadline_ms =
  let t0 = Clock.now () in
  let deadline =
    let of_ms = function
      | None -> Deadline.never
      | Some ms -> Deadline.after_ms ms
    in
    (* The daemon default caps every request; a client may only ask for
       less patience than the daemon allows, never more. *)
    Deadline.intersect (of_ms deadline_ms) (of_ms t.cfg.deadline_ms)
  in
  let spec, degraded =
    match t.cfg.queue_limit with
    | Some limit when 2 * queue_depth t >= limit -> (
      match downgrade_spec spec with
      | Some spec' -> (spec', true)
      | None -> (spec, false))
    | _ -> (spec, false)
  in
  let key_digest = Key.digest spec in
  let elapsed_us () = Clock.elapsed_s t0 *. 1e6 in
  match Store.find t.store key_digest with
  | Store.Hit bytes ->
    Atomic.incr t.hits;
    add_latency t ~hit:true (elapsed_us ());
    log t "client %d: hit %s (%d bytes)" client key_digest
      (String.length bytes);
    Protocol.Artifact_r { digest = Artifact.digest bytes; cached = true; bytes }
  | miss -> (
    (match miss with
    | Store.Evicted_corrupt reason ->
      log t "client %d: evicted corrupt entry %s (%s)" client key_digest
        reason
    | _ -> ());
    (* Load shedding gates the compute path only: a store hit above is
       served even under full load — it costs microseconds, and
       refusing it would shed exactly the traffic the cache exists to
       absorb. *)
    match t.cfg.queue_limit with
    | Some limit when queue_depth t >= limit ->
      let depth = queue_depth t in
      Atomic.incr t.shed;
      log t "client %d: shed %s (queue %d >= limit %d)" client key_digest
        depth limit;
      Protocol.Overloaded_r { queue_depth = depth }
    | _ -> (
      if degraded then
        log t "client %d: overload degradation: portfolio -> beam (%s)"
          client key_digest;
      Atomic.incr t.misses;
      match
        Memo.get t.flights key_digest (fun () ->
            run_on_pool t ~lane:client (fun () ->
                match Compute.run ~deadline spec with
                | Ok outcome -> outcome
                | Error e -> raise (Request_error e)))
      with
      | Compute.Artifact { bytes; digest } ->
        Store.put t.store key_digest bytes;
        add_latency t ~hit:false (elapsed_us ());
        log t "client %d: computed %s (%d bytes, %.1f ms)" client key_digest
          (String.length bytes)
          (Clock.elapsed_s t0 *. 1e3);
        Protocol.Artifact_r { digest; cached = false; bytes }
      | Compute.Unmappable { reason } ->
        Atomic.incr t.unmappable;
        add_latency t ~hit:false (elapsed_us ());
        log t "client %d: unmappable %s (%s)" client key_digest reason;
        Protocol.Unmappable_r { reason }
      | Compute.Timed_out { where } ->
        (* Deadline verdicts are about this request's patience, not the
           spec: evict the flight so a future (possibly more patient)
           request recomputes instead of being served a stale give-up.
           Piggybacked waiters of this flight still see it — they
           shared the compute, so they share its fate. *)
        Memo.forget t.flights key_digest;
        Atomic.incr t.timeouts;
        add_latency t ~hit:false (elapsed_us ());
        log t "client %d: timed out %s (%s)" client key_digest where;
        Protocol.Timed_out_r { where }
      | exception Request_error reason ->
        Atomic.incr t.errors;
        log t "client %d: request error %s (%s)" client key_digest reason;
        Protocol.Error_r { reason }
      | exception e ->
        Atomic.incr t.errors;
        let reason = Printexc.to_string e in
        log t "client %d: internal error %s (%s)" client key_digest reason;
        Protocol.Error_r { reason }))

(* Returns the response and whether the connection should keep reading. *)
let handle_request t ~client = function
  | Protocol.Ping -> (Protocol.Pong, true)
  | Protocol.Stats -> (Protocol.Stats_r (snapshot_stats t), true)
  | Protocol.Clear ->
    (* the same code path the in-process harness uses: both the run
       cache and the cross-request flights are generation-reset *)
    Cgra_exp.Runner.clear_caches ();
    Memo.reset t.flights;
    let evicted = Store.clear t.store in
    log t "client %d: cleared %d stored artifacts" client evicted;
    (Protocol.Cleared { evicted }, true)
  | Protocol.Shutdown ->
    log t "client %d: shutdown requested" client;
    (Protocol.Shutting_down, false)
  | Protocol.Map { spec; deadline_ms } ->
    (handle_map t ~client spec deadline_ms, true)

(* ---- connections ------------------------------------------------------ *)

let request_stop t = Atomic.set t.stop true

let send_response fd resp =
  match Wire.write_frame fd (Wire.to_string (Protocol.response_to_sexp resp)) with
  | () -> true
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let register_conn t client fd =
  Mutex.lock t.conn_mutex;
  Hashtbl.replace t.conn_fds client fd;
  Mutex.unlock t.conn_mutex;
  Atomic.incr t.conns

let unregister_conn t client fd =
  Mutex.lock t.conn_mutex;
  Hashtbl.remove t.conn_fds client;
  Mutex.unlock t.conn_mutex;
  Atomic.decr t.conns;
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle_conn t client fd =
  register_conn t client fd;
  Fun.protect
    ~finally:(fun () -> unregister_conn t client fd)
    (fun () ->
      let rec loop () =
        match Wire.read_frame fd with
        | Error Wire.Eof -> ()
        | Error (Wire.Truncated _) -> ()
        | Error Wire.Idle_timeout ->
          (* vanished or slow-loris peer: free the thread quietly *)
          log t "client %d: receive timeout, dropping connection" client
        | Error (Wire.Oversized { length; _ } as e) ->
          (* Only the 4-byte prefix was consumed; the peer is typically
             still blocked writing its oversized payload.  Drain it so
             that write can complete — otherwise the client never gets
             to read the typed answer, it just sees a reset — then
             answer once and drop the connection (stream position is
             undefined past an oversized frame). *)
          Wire.drain fd length;
          ignore
            (send_response fd
               (Protocol.Error_r { reason = Wire.read_error_to_string e }))
        | Ok payload -> (
          let resp, continue =
            match Wire.parse payload with
            | Error e ->
              (Protocol.Error_r { reason = "parse error: " ^ e }, true)
            | Ok sexp -> (
              match Protocol.request_of_sexp sexp with
              | Error e -> (Protocol.Error_r { reason = e }, true)
              | Ok req -> handle_request t ~client req)
          in
          let sent = send_response fd resp in
          match resp with
          | Protocol.Shutting_down -> request_stop t
          | _ -> if sent && continue && not (Atomic.get t.stop) then loop ())
      in
      loop ())

(* ---- listeners -------------------------------------------------------- *)

let accept_loop t fd =
  while not (Atomic.get t.stop) do
    match Unix.select [ fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept fd with
      | cfd, _ ->
        (* Bound both directions: a stalled read (client vanished or
           trickling) surfaces as [Idle_timeout]; a stalled write (peer
           not reading its response) fails [send_response].  Either way
           the connection thread is freed instead of pinned forever. *)
        (match t.cfg.io_timeout_s with
        | None -> ()
        | Some s -> (
          try
            Unix.setsockopt_float cfd Unix.SO_RCVTIMEO s;
            Unix.setsockopt_float cfd Unix.SO_SNDTIMEO s
          with Unix.Unix_error _ -> ()));
        let client = Atomic.fetch_and_add t.client_counter 1 in
        log t "client %d: connected" client;
        ignore
          (Thread.create
             (fun () ->
               try handle_conn t client cfd
               with e ->
                 Printf.eprintf "cgra_mapd: connection %d died: %s\n%!" client
                   (Printexc.to_string e))
             ())
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
        ->
        ())
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

exception Address_in_use of { path : string }

(* Probe an existing socket path before binding over it.  A connect
   that succeeds means some process is listening there — we confirm
   with a bounded [ping], but even a peer that fails the ping holds
   the socket, so unlinking it would strand that daemon's clients
   either way.  Only a connection-refused (or vanished) socket is
   provably stale and safe to remove. *)
let probe_unix path =
  if not (Sys.file_exists path) then `Absent
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
         Wire.write_frame fd
           (Wire.to_string (Protocol.request_to_sexp Protocol.Ping));
         ignore (Wire.read_frame fd)
       with Unix.Unix_error _ | Sys_error _ -> ());
      close ();
      `Live
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      close ();
      `Stale
    | exception Unix.Unix_error _ ->
      (* Cannot prove it stale (permissions, not-a-socket, ...):
         refuse rather than destroy. *)
      close ();
      `Live
  end

let listen_unix path =
  (match probe_unix path with
  | `Absent -> ()
  | `Stale -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Live -> raise (Address_in_use { path }));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let start cfg =
  let store = Store.open_ ?root:cfg.store_root () in
  (* Crash-recovery sweep before serving: a predecessor SIGKILLed
     mid-write leaves orphaned tmp files and possibly torn entries;
     evicting them here restores the store invariant (every entry
     verifiable) before the first request can trip over the debris. *)
  let swept = Store.scan store in
  Runner_backend.install store;
  let t =
    {
      cfg;
      store;
      pool = Pool.Persistent.create ?jobs:cfg.jobs ();
      flights = Memo.create 64;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      unmappable = Atomic.make 0;
      errors = Atomic.make 0;
      timeouts = Atomic.make 0;
      shed = Atomic.make 0;
      stats_mutex = Mutex.create ();
      hit_us_total = 0.0;
      miss_us_total = 0.0;
      started_at = Clock.now ();
      stop = Atomic.make false;
      client_counter = Atomic.make 0;
      conns = Atomic.make 0;
      conn_fds = Hashtbl.create 16;
      conn_mutex = Mutex.create ();
      listeners = [];
      accept_threads = [];
    }
  in
  let unix_fd = listen_unix cfg.socket_path in
  let listeners =
    unix_fd :: (match cfg.tcp_port with None -> [] | Some p -> [ listen_tcp p ])
  in
  t.listeners <- listeners;
  t.accept_threads <-
    List.map (fun fd -> Thread.create (fun () -> accept_loop t fd) ()) listeners;
  if swept.Store.orphans > 0 || swept.Store.truncated > 0 then
    log t "store scan: removed %d orphaned tmp file(s), %d truncated entr%s"
      swept.Store.orphans swept.Store.truncated
      (if swept.Store.truncated = 1 then "y" else "ies");
  log t "listening on %s%s (store %s, %d stored artifacts)" cfg.socket_path
    (match cfg.tcp_port with
    | None -> ""
    | Some p -> Printf.sprintf " and 127.0.0.1:%d" p)
    (Store.root store) (Store.entries store);
  t

let drain_grace_s = 10.0

let wait t =
  List.iter Thread.join t.accept_threads;
  (* accept loops exited => [stop] is set; give open connections a
     bounded grace to finish their in-flight request, then force-close
     the stragglers so a parked idle client cannot wedge shutdown *)
  let t0 = Clock.now () in
  while Atomic.get t.conns > 0 && Clock.elapsed_s t0 < drain_grace_s do
    Thread.delay 0.02
  done;
  Mutex.lock t.conn_mutex;
  Hashtbl.iter
    (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conn_fds;
  Mutex.unlock t.conn_mutex;
  let t0 = Clock.now () in
  while Atomic.get t.conns > 0 && Clock.elapsed_s t0 < 2.0 do
    Thread.delay 0.02
  done;
  Pool.Persistent.shutdown t.pool;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  log t "shut down (hits %d, misses %d)" (Atomic.get t.hits)
    (Atomic.get t.misses)

let serve cfg =
  let t = start cfg in
  let stop_signal _ = request_stop t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a client vanishing mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  wait t
