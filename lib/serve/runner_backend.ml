module Runner = Cgra_exp.Runner
module K = Cgra_kernels.Kernel_def

let opt_of_runner = function
  | Runner.Default -> Key.Default
  | Runner.Raw -> Key.Raw
  | Runner.Optimized -> Key.Optimized

let backend store : Runner.artifact_backend =
 fun opt k config flow (r : Runner.run) ->
  let spec =
    {
      Key.kernel = Key.Bundled { slug = k.K.slug; source = k.K.source };
      config;
      knobs = Key.knobs_of_config (Runner.cell_flow_config ~opt k.K.slug config flow);
      opt = opt_of_runner opt;
      faults = [];
    }
  in
  let key_digest = Key.digest spec in
  match Store.find store key_digest with
  | Store.Hit _ -> ()
  | Store.Miss | Store.Evicted_corrupt _ ->
    let prog = Cgra_asm.Assemble.assemble r.Runner.mapping in
    let bytes =
      Artifact.render ~key_digest ~spec prog r.Runner.sim r.Runner.energy
    in
    Store.put store key_digest bytes

let install store = Runner.set_artifact_backend (Some (backend store))
