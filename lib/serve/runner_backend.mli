(** Bridge from the experiment harness to the daemon's artifact store.

    {!install} plugs a [Cgra_exp.Runner.artifact_backend] that, for every
    cell the harness computes, rebuilds the cell's exact request key
    (kernel source, configuration, the cell-keyed flow knobs including
    its split seed, opt mode) and writes the serialized artifact into the
    given {!Store} — so a bench warm-up and a running daemon populate and
    share one content-addressed cache. *)

val backend : Store.t -> Cgra_exp.Runner.artifact_backend

val install : Store.t -> unit
(** [Cgra_exp.Runner.set_artifact_backend (Some (backend store))]. *)
