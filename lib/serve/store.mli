(** On-disk content-addressed artifact store under [~/.cache/cgra_mapd].

    Layout: one file per key at [<root>/<d0d1>/<d2..>.art], where the
    digits are the request-key MD5 ({!Key.digest}).  Each entry starts
    with a one-line header recording the payload's own MD5 and length;
    {!find} re-verifies both on every read and {e evicts} (unlinks) any
    entry that fails — a corrupt cache can cost a recompute, never a
    wrong artifact.

    Writes are atomic (unique temp file + [rename] within the store
    directory), so concurrent writers of the same key — N daemon workers,
    or a daemon racing a bench run — leave exactly one valid entry and
    readers never observe a partial file. *)

type t

val default_root : unit -> string
(** [$CGRA_MAPD_CACHE] when set, else [$XDG_CACHE_HOME/cgra_mapd], else
    [~/.cache/cgra_mapd]. *)

val open_ : ?root:string -> unit -> t
(** Open (creating directories as needed).  Raises [Sys_error]/[Unix_error]
    if the root cannot be created. *)

val root : t -> string

type found =
  | Hit of string            (** verified payload bytes *)
  | Miss
  | Evicted_corrupt of string
      (** entry failed header/length/digest verification and was
          removed; the reason is human-readable *)

val find : t -> string -> found
(** [find t key_digest].  Never raises on a malformed entry — corruption
    is data, not control flow. *)

val put : t -> string -> string -> unit
(** [put t key_digest bytes] stores atomically; an existing valid entry
    is left untouched (first writer wins — later writers of the same key
    are producing identical bytes by the determinism contract). *)

val entries : t -> int
(** Stored artifact count (walks the tree). *)

val total_bytes : t -> int
(** Sum of stored file sizes. *)

val clear : t -> int
(** Remove every entry; returns how many were evicted.  The daemon's
    [clear] admin request path. *)

type scan_report = { orphans : int; truncated : int }

val scan : t -> scan_report
(** Crash-recovery sweep, run by the daemon at startup: removes
    orphaned [tmp.*] files (a writer died between temp-file creation
    and the rename) and truncated entries (the header's recorded
    length disagrees with the file size — a torn write).  Cheap: one
    header line and one [stat] per entry, no digest verification
    (that stays {!find}'s lazy job).  Idempotent; a second scan of an
    untouched store reports zeros. *)
