(** Typed request/response messages of the [cgra_mapd] protocol, and
    their s-expression encodings ({!Wire}).

    One request sexp per frame, one response sexp per frame.  A [map]
    request carries the full {!Key.spec} (minus resolved bundled sources
    — the daemon is the authority on its own kernel set), so any
    artifact the determinism contract covers is addressable over the
    wire; simulate- and repair-shaped workloads are the same request with
    the appropriate knobs and fault map, because an artifact embeds its
    simulation results.  *)

type request =
  | Ping
  | Map of Key.spec
  | Stats
  | Clear  (** evict the on-disk store and the in-process caches *)
  | Shutdown  (** drain in-flight requests, then exit *)

type stats = {
  hits : int;            (** served from the content-addressed store *)
  misses : int;          (** required a compute (deduped flights count once) *)
  unmappable : int;      (** negative answers returned *)
  errors : int;          (** request errors returned *)
  inflight : int;        (** computes queued or running right now *)
  stored_entries : int;
  stored_bytes : int;
  hit_us_total : float;  (** summed service latency of hits, microseconds *)
  miss_us_total : float; (** same for misses *)
  uptime_s : float;
}

type response =
  | Pong
  | Artifact_r of { digest : string; cached : bool; bytes : string }
      (** [digest] = MD5 of [bytes]; [cached] = served from the store
          without recomputation *)
  | Unmappable_r of { reason : string }
  | Stats_r of stats
  | Cleared of { evicted : int }
  | Shutting_down
  | Error_r of { reason : string }

val request_to_sexp : request -> Wire.sexp
val request_of_sexp : Wire.sexp -> (request, string) result
val response_to_sexp : response -> Wire.sexp
val response_of_sexp : Wire.sexp -> (response, string) result
