(** Typed request/response messages of the [cgra_mapd] protocol, and
    their s-expression encodings ({!Wire}).

    One request sexp per frame, one response sexp per frame.  A [map]
    request carries the full {!Key.spec} (minus resolved bundled sources
    — the daemon is the authority on its own kernel set), so any
    artifact the determinism contract covers is addressable over the
    wire; simulate- and repair-shaped workloads are the same request with
    the appropriate knobs and fault map, because an artifact embeds its
    simulation results.  *)

type request =
  | Ping
  | Map of { spec : Key.spec; deadline_ms : int option }
      (** [deadline_ms] bounds the server-side compute for this request.
          It is a wire-level attribute, deliberately {e not} part of
          {!Key.spec}: the key digest — and with it the artifact served —
          is identical whatever patience the client declared.  The daemon
          intersects it with its own [--deadline] default. *)
  | Stats
  | Clear  (** evict the on-disk store and the in-process caches *)
  | Shutdown  (** drain in-flight requests, then exit *)

type stats = {
  hits : int;            (** served from the content-addressed store *)
  misses : int;          (** required a compute (deduped flights count once) *)
  unmappable : int;      (** negative answers returned *)
  errors : int;          (** request errors returned *)
  timeouts : int;        (** computes cut short by a deadline *)
  shed : int;            (** map requests refused with [Overloaded_r] *)
  inflight : int;        (** computes queued or running right now *)
  stored_entries : int;
  stored_bytes : int;
  hit_us_total : float;  (** summed service latency of hits, microseconds *)
  miss_us_total : float; (** same for misses *)
  uptime_s : float;
}

type response =
  | Pong
  | Artifact_r of { digest : string; cached : bool; bytes : string }
      (** [digest] = MD5 of [bytes]; [cached] = served from the store
          without recomputation *)
  | Unmappable_r of { reason : string }
  | Timed_out_r of { where : string }
      (** the compute hit its deadline at boundary [where]; not a verdict
          about the kernel, never cached — retrying with more time (or no
          deadline) may succeed.  Clients must not treat it as retryable
          under the {e same} deadline: the same budget will time out
          again. *)
  | Overloaded_r of { queue_depth : int }
      (** load shed: the compute queue was [queue_depth] deep and the
          daemon refused to enqueue more.  Nothing was computed; this is
          the retryable response ({!Client.map} backs off and retries). *)
  | Stats_r of stats
  | Cleared of { evicted : int }
  | Shutting_down
  | Error_r of { reason : string }

val request_to_sexp : request -> Wire.sexp
val request_of_sexp : Wire.sexp -> (request, string) result
val response_to_sexp : response -> Wire.sexp
val response_of_sexp : Wire.sexp -> (response, string) result
