(** Wire format of the [cgra_mapd] protocol: s-expressions in
    length-prefixed frames.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes; the payload of every protocol message is the rendering of one
    {!sexp}.  Frames larger than {!max_frame} are rejected with a typed
    error on both ends — a malformed or hostile peer cannot make the
    daemon allocate unbounded buffers.

    The codec is total over arbitrary byte strings: any atom — including
    artifact bytes with newlines, parens or control characters — prints
    to a quoted, escaped form that parses back to the identical string
    ({!parse} ∘ {!to_string} = identity, enforced by a qcheck property in
    the test suite). *)

type sexp = Atom of string | List of sexp list

val to_string : sexp -> string
(** Canonical single-line rendering.  Atoms are printed bare when they
    consist only of safe graphic characters, quoted-and-escaped
    otherwise; the rendering of a given sexp is unique, so digests over
    renderings are stable. *)

val parse : string -> (sexp, string) result
(** Parse exactly one sexp (surrounding whitespace allowed); trailing
    garbage, unterminated lists/strings and bad escapes are errors. *)

(** {1 Framing} *)

val max_frame : int
(** Upper bound on payload bytes per frame (8 MiB). *)

type read_error =
  | Eof  (** clean end-of-stream before any prefix byte *)
  | Truncated of { wanted : int; got : int }
      (** stream ended mid-prefix or mid-payload *)
  | Oversized of { length : int; limit : int }
      (** prefix announced more than {!max_frame} bytes *)
  | Idle_timeout
      (** the socket's SO_RCVTIMEO expired mid-read: the peer went
          quiet (vanished, or a slow-loris holding the connection) —
          close it and free the thread *)

val read_error_to_string : read_error -> string

val read_frame : Unix.file_descr -> (string, read_error) result
(** Blocking read of one frame's payload.  After [Oversized] the
    announced payload is still unconsumed (only the 4-byte prefix was
    read) — {!drain} it if you intend to answer before closing, since
    the stream position is undefined for further frames either way. *)

val drain : Unix.file_descr -> int -> unit
(** [drain fd n] reads and discards up to [n] bytes.  Used after an
    [Oversized] prefix so the peer's blocked write can complete and it
    can read the typed error response instead of a connection reset.
    Stops early (silently) on EOF, a socket error or a receive
    timeout. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (prefix + payload), handling short writes.  Raises
    [Invalid_argument] if the payload exceeds {!max_frame}, [Unix_error]
    on a dead peer. *)

val frame_bytes : string -> string
(** [frame_bytes payload] is the exact byte sequence {!write_frame}
    sends — the length prefix followed by the payload.  Exposed so tests
    can craft boundary-case streams by hand. *)
