open Wire

type request =
  | Ping
  | Map of { spec : Key.spec; deadline_ms : int option }
  | Stats
  | Clear
  | Shutdown

type stats = {
  hits : int;
  misses : int;
  unmappable : int;
  errors : int;
  timeouts : int;
  shed : int;
  inflight : int;
  stored_entries : int;
  stored_bytes : int;
  hit_us_total : float;
  miss_us_total : float;
  uptime_s : float;
}

type response =
  | Pong
  | Artifact_r of { digest : string; cached : bool; bytes : string }
  | Unmappable_r of { reason : string }
  | Timed_out_r of { where : string }
  | Overloaded_r of { queue_depth : int }
  | Stats_r of stats
  | Cleared of { evicted : int }
  | Shutting_down
  | Error_r of { reason : string }

(* ---- helpers ---------------------------------------------------------- *)

let field name value = List [ Atom name; value ]
let str_field name s = field name (Atom s)
let int_field name i = str_field name (string_of_int i)
let float_field name f = str_field name (Printf.sprintf "%.17g" f)
let bool_field name b = str_field name (if b then "true" else "false")

let ( let* ) = Result.bind

(* Fields of a message body, by name; order-insensitive on the wire.
   Two-element fields map name -> value; longer ones (the [knobs] list)
   map name -> the whole item, which the scalar accessors reject. *)
let assoc_fields items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      match item with
      | List [ Atom name; value ] -> Ok ((name, value) :: acc)
      | List (Atom name :: _) -> Ok ((name, item) :: acc)
      | other -> Error ("malformed field: " ^ Wire.to_string other))
    (Ok []) items

let find_str fields name =
  match List.assoc_opt name fields with
  | Some (Atom s) -> Ok (Some s)
  | Some other ->
    Error (Printf.sprintf "field %s: expected an atom, got %s" name
             (Wire.to_string other))
  | None -> Ok None

let require_str fields name =
  let* v = find_str fields name in
  match v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing field %s" name)

let find_int fields name =
  let* v = find_str fields name in
  match v with
  | None -> Ok None
  | Some s -> (
    match int_of_string_opt s with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %s: not an integer: %S" name s))

let require_int fields name =
  let* v = find_int fields name in
  match v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing field %s" name)

let require_float fields name =
  let* s = require_str fields name in
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %s: not a float: %S" name s)

let require_bool fields name =
  let* s = require_str fields name in
  match s with
  | "true" -> Ok true
  | "false" -> Ok false
  | _ -> Error (Printf.sprintf "field %s: not a boolean: %S" name s)

(* ---- requests --------------------------------------------------------- *)

let knobs_to_sexp knobs =
  List
    (Atom "knobs"
    :: List.map (fun (name, v) -> List [ Atom name; Atom v ]) knobs)

let knobs_of_sexp = function
  | List (Atom "knobs" :: pairs) ->
    List.fold_left
      (fun acc pair ->
        let* acc = acc in
        match pair with
        | List [ Atom name; Atom v ] -> Ok ((name, v) :: acc)
        | other -> Error ("malformed knob: " ^ Wire.to_string other))
      (Ok []) pairs
    |> Result.map List.rev
  | other -> Error ("malformed knobs field: " ^ Wire.to_string other)

let map_to_sexp (spec : Key.spec) deadline_ms =
  let kernel_fields =
    match spec.Key.kernel with
    | Key.Bundled { slug; source = _ } -> [ str_field "kernel" slug ]
    | Key.Inline { source; mem_words } ->
      [ str_field "source" source; int_field "mem_words" mem_words ]
  in
  let faults_fields =
    match spec.Key.faults with
    | [] -> []
    | fs -> [ str_field "faults" (Cgra_arch.Fault_map.to_string fs) ]
  in
  (* The deadline is a wire-level request attribute, deliberately
     outside [Key.spec]: it must never reach the key digest, or two
     requests for the same artifact under different patience would miss
     each other's cache entries. *)
  let deadline_fields =
    match deadline_ms with
    | None -> []
    | Some ms -> [ int_field "deadline_ms" ms ]
  in
  List
    (Atom "map"
     :: kernel_fields
    @ [
        str_field "config" (Cgra_arch.Config.to_string spec.Key.config);
        str_field "opt" (Key.opt_to_string spec.Key.opt);
        knobs_to_sexp spec.Key.knobs;
      ]
    @ faults_fields @ deadline_fields)

let map_of_sexp items =
  let* fields = assoc_fields items in
  let* kernel =
    let* slug = find_str fields "kernel" in
    let* source = find_str fields "source" in
    match (slug, source) with
    | Some _, Some _ -> Error "map: give either kernel or source, not both"
    | None, None -> Error "map: missing kernel (or source)"
    | Some slug, None -> (
      match Cgra_kernels.Kernels.by_slug slug with
      | Some k ->
        Ok (Key.Bundled { slug; source = k.Cgra_kernels.Kernel_def.source })
      | None -> Error (Printf.sprintf "unknown kernel %S" slug))
    | None, Some source ->
      let* mem_words = find_int fields "mem_words" in
      let mem_words = Option.value mem_words ~default:1024 in
      if mem_words <= 0 || mem_words > 1 lsl 20 then
        Error
          (Printf.sprintf "mem_words %d out of range (1 .. %d)" mem_words
             (1 lsl 20))
      else Ok (Key.Inline { source; mem_words })
  in
  let* config_s = require_str fields "config" in
  let* config =
    match Cgra_arch.Config.of_string config_s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown configuration %S" config_s)
  in
  let* opt_s = find_str fields "opt" in
  let* opt =
    match opt_s with
    | None -> Ok Key.Default
    | Some s -> (
      match Key.opt_of_string s with
      | Some o -> Ok o
      | None ->
        Error
          (Printf.sprintf "unknown opt mode %S (default|raw|optimized)" s))
  in
  let* knobs =
    match
      List.find_opt
        (function List (Atom "knobs" :: _) -> true | _ -> false)
        items
    with
    | Some k -> knobs_of_sexp k
    | None -> Ok []
  in
  (* Reject unknown knobs now, with a protocol-level error. *)
  let* _ = Key.config_of_knobs knobs in
  let* faults =
    let* fm = find_str fields "faults" in
    match fm with
    | None -> Ok []
    | Some text -> (
      match Cgra_arch.Fault_map.of_string text with
      | Ok fs -> Ok fs
      | Error e -> Error ("faults: " ^ e))
  in
  let* deadline_ms =
    let* d = find_int fields "deadline_ms" in
    match d with
    | Some ms when ms <= 0 ->
      Error (Printf.sprintf "deadline_ms %d out of range (must be > 0)" ms)
    | d -> Ok d
  in
  Ok (Map { spec = { Key.kernel; config; knobs; opt; faults }; deadline_ms })

let request_to_sexp = function
  | Ping -> List [ Atom "ping" ]
  | Map { spec; deadline_ms } -> map_to_sexp spec deadline_ms
  | Stats -> List [ Atom "stats" ]
  | Clear -> List [ Atom "clear" ]
  | Shutdown -> List [ Atom "shutdown" ]

let request_of_sexp = function
  | List [ Atom "ping" ] -> Ok Ping
  | List (Atom "map" :: items) -> map_of_sexp items
  | List [ Atom "stats" ] -> Ok Stats
  | List [ Atom "clear" ] -> Ok Clear
  | List [ Atom "shutdown" ] -> Ok Shutdown
  | other -> Error ("unknown request: " ^ Wire.to_string other)

(* ---- responses -------------------------------------------------------- *)

let response_to_sexp = function
  | Pong -> List [ Atom "pong" ]
  | Artifact_r { digest; cached; bytes } ->
    List
      [
        Atom "artifact";
        str_field "digest" digest;
        bool_field "cached" cached;
        str_field "bytes" bytes;
      ]
  | Unmappable_r { reason } ->
    List [ Atom "unmappable"; str_field "reason" reason ]
  | Timed_out_r { where } -> List [ Atom "timed_out"; str_field "where" where ]
  | Overloaded_r { queue_depth } ->
    List [ Atom "overloaded"; int_field "queue_depth" queue_depth ]
  | Stats_r s ->
    List
      [
        Atom "stats";
        int_field "hits" s.hits;
        int_field "misses" s.misses;
        int_field "unmappable" s.unmappable;
        int_field "errors" s.errors;
        int_field "timeouts" s.timeouts;
        int_field "shed" s.shed;
        int_field "inflight" s.inflight;
        int_field "stored_entries" s.stored_entries;
        int_field "stored_bytes" s.stored_bytes;
        float_field "hit_us_total" s.hit_us_total;
        float_field "miss_us_total" s.miss_us_total;
        float_field "uptime_s" s.uptime_s;
      ]
  | Cleared { evicted } -> List [ Atom "cleared"; int_field "evicted" evicted ]
  | Shutting_down -> List [ Atom "shutting_down" ]
  | Error_r { reason } -> List [ Atom "error"; str_field "reason" reason ]

let response_of_sexp = function
  | List [ Atom "pong" ] -> Ok Pong
  | List (Atom "artifact" :: items) ->
    let* fields = assoc_fields items in
    let* digest = require_str fields "digest" in
    let* cached = require_bool fields "cached" in
    let* bytes = require_str fields "bytes" in
    Ok (Artifact_r { digest; cached; bytes })
  | List (Atom "unmappable" :: items) ->
    let* fields = assoc_fields items in
    let* reason = require_str fields "reason" in
    Ok (Unmappable_r { reason })
  | List (Atom "timed_out" :: items) ->
    let* fields = assoc_fields items in
    let* where = require_str fields "where" in
    Ok (Timed_out_r { where })
  | List (Atom "overloaded" :: items) ->
    let* fields = assoc_fields items in
    let* queue_depth = require_int fields "queue_depth" in
    Ok (Overloaded_r { queue_depth })
  | List (Atom "stats" :: items) ->
    let* fields = assoc_fields items in
    let* hits = require_int fields "hits" in
    let* misses = require_int fields "misses" in
    let* unmappable = require_int fields "unmappable" in
    let* errors = require_int fields "errors" in
    let* timeouts = require_int fields "timeouts" in
    let* shed = require_int fields "shed" in
    let* inflight = require_int fields "inflight" in
    let* stored_entries = require_int fields "stored_entries" in
    let* stored_bytes = require_int fields "stored_bytes" in
    let* hit_us_total = require_float fields "hit_us_total" in
    let* miss_us_total = require_float fields "miss_us_total" in
    let* uptime_s = require_float fields "uptime_s" in
    Ok
      (Stats_r
         {
           hits;
           misses;
           unmappable;
           errors;
           timeouts;
           shed;
           inflight;
           stored_entries;
           stored_bytes;
           hit_us_total;
           miss_us_total;
           uptime_s;
         })
  | List (Atom "cleared" :: items) ->
    let* fields = assoc_fields items in
    let* evicted = require_int fields "evicted" in
    Ok (Cleared { evicted })
  | List [ Atom "shutting_down" ] -> Ok Shutting_down
  | List (Atom "error" :: items) ->
    let* fields = assoc_fields items in
    let* reason = require_str fields "reason" in
    Ok (Error_r { reason })
  | other -> Error ("unknown response: " ^ Wire.to_string other)
