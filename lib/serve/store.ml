type t = { root : string }

let default_root () =
  match Sys.getenv_opt "CGRA_MAPD_CACHE" with
  | Some d when d <> "" -> d
  | _ -> (
    let join a b = Filename.concat a b in
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> join d "cgra_mapd"
    | _ ->
      let home =
        match Sys.getenv_opt "HOME" with Some h when h <> "" -> h | _ -> "."
      in
      join (join home ".cache") "cgra_mapd")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?root () =
  let root = match root with Some r -> r | None -> default_root () in
  mkdir_p root;
  { root }

let root t = t.root

let valid_digest d =
  String.length d = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) d

let path_of t key_digest =
  if not (valid_digest key_digest) then
    invalid_arg ("Store: not an MD5 hex digest: " ^ key_digest);
  Filename.concat
    (Filename.concat t.root (String.sub key_digest 0 2))
    (String.sub key_digest 2 30 ^ ".art")

type found = Hit of string | Miss | Evicted_corrupt of string

let header payload =
  Printf.sprintf "cgra-store v1 %s %d\n"
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

(* Parse "cgra-store v1 <md5> <len>\n<payload>"; any mismatch is corrupt. *)
let verify raw =
  match String.index_opt raw '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    let hdr = String.sub raw 0 nl in
    let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
    match String.split_on_char ' ' hdr with
    | [ "cgra-store"; "v1"; md5; len ] ->
      if int_of_string_opt len <> Some (String.length payload) then
        Error
          (Printf.sprintf "length mismatch: header %s, payload %d" len
             (String.length payload))
      else if not (valid_digest md5) then Error "malformed digest in header"
      else if Digest.to_hex (Digest.string payload) <> md5 then
        Error "payload digest mismatch"
      else Ok payload
    | _ -> Error "malformed header")

let find t key_digest =
  let path = path_of t key_digest in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Miss
  | raw -> (
    match verify raw with
    | Ok payload -> Hit payload
    | Error reason ->
      (try Sys.remove path with Sys_error _ -> ());
      Evicted_corrupt reason)

(* Unique-enough temp names without randomness: pid + domain + counter. *)
let tmp_counter = Atomic.make 0

let put t key_digest bytes =
  match find t key_digest with
  | Hit _ -> ()
  | Miss | Evicted_corrupt _ ->
    let path = path_of t key_digest in
    mkdir_p (Filename.dirname path);
    let tmp =
      Filename.concat t.root
        (Printf.sprintf "tmp.%d.%d.%d" (Unix.getpid ())
           (Domain.self () :> int)
           (Atomic.fetch_and_add tmp_counter 1))
    in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (header bytes);
        Out_channel.output_string oc bytes);
    Sys.rename tmp path

let iter_entries t f =
  if Sys.file_exists t.root then
    Array.iter
      (fun sub ->
        let dir = Filename.concat t.root sub in
        if String.length sub = 2 && Sys.is_directory dir then
          Array.iter
            (fun file ->
              if Filename.check_suffix file ".art" then
                f (Filename.concat dir file))
            (Sys.readdir dir))
      (Sys.readdir t.root)

let entries t =
  let n = ref 0 in
  iter_entries t (fun _ -> incr n);
  !n

let total_bytes t =
  let n = ref 0 in
  iter_entries t (fun path ->
      match Unix.stat path with
      | { Unix.st_size; _ } -> n := !n + st_size
      | exception Unix.Unix_error _ -> ());
  !n

let clear t =
  let n = ref 0 in
  iter_entries t (fun path ->
      try
        Sys.remove path;
        incr n
      with Sys_error _ -> ());
  !n

(* ---- crash recovery --------------------------------------------------- *)

type scan_report = { orphans : int; truncated : int }

(* A crash can leave exactly two kinds of debris, both bounded by the
   write protocol (tmp file at the root, then rename):

   - orphaned [tmp.*] files: the process died between opening the temp
     file and the rename.  Never referenced by any digest path, so
     removal is always safe.
   - truncated entries: a torn write that still made it to a final
     [.art] path (e.g. the filesystem lost the tail on power cut after
     rename, or debris predating the header format).  The header
     announces the payload length, so truncation is detectable from
     file size alone — no digest work, one [input_line] + [stat] per
     entry.

   [find] would catch the latter lazily (full digest verify on read),
   but only for keys that are asked for; the startup scan restores the
   invariant for the whole store, so a daemon restarted after SIGKILL
   never trips over its predecessor's debris. *)
let scan t =
  let orphans = ref 0 in
  let truncated = ref 0 in
  if Sys.file_exists t.root then
    Array.iter
      (fun name ->
        if String.length name > 4 && String.sub name 0 4 = "tmp." then begin
          (try Sys.remove (Filename.concat t.root name)
           with Sys_error _ -> ());
          incr orphans
        end)
      (Sys.readdir t.root);
  iter_entries t (fun path ->
      let intact =
        try
          In_channel.with_open_bin path (fun ic ->
              match In_channel.input_line ic with
              | None -> false
              | Some hdr -> (
                match String.split_on_char ' ' hdr with
                | [ "cgra-store"; "v1"; md5; len ] -> (
                  valid_digest md5
                  &&
                  match int_of_string_opt len with
                  | Some l ->
                    (Unix.stat path).Unix.st_size
                    = String.length hdr + 1 + l
                  | None -> false)
                | _ -> false))
        with Sys_error _ | Unix.Unix_error _ -> false
      in
      if not intact then begin
        (try Sys.remove path with Sys_error _ -> ());
        incr truncated
      end);
  { orphans = !orphans; truncated = !truncated }
