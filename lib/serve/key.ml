module FC = Cgra_core.Flow_config

type opt = Default | Raw | Optimized

let opt_to_string = function
  | Default -> "default"
  | Raw -> "raw"
  | Optimized -> "optimized"

let opt_of_string = function
  | "default" -> Some Default
  | "raw" -> Some Raw
  | "optimized" -> Some Optimized
  | _ -> None

type kernel =
  | Bundled of { slug : string; source : string }
  | Inline of { source : string; mem_words : int }

type spec = {
  kernel : kernel;
  config : Cgra_arch.Config.name;
  knobs : (string * string) list;
  opt : opt;
  faults : Cgra_arch.Cgra.fault list;
}

(* Bump on any change that can alter artifact bytes for an unchanged
   request: search algorithm, assembler encoding, simulator timing,
   energy constants, artifact layout. *)
let code_version = "cgra_mapd-3"

(* ---- flow knobs ------------------------------------------------------- *)

let float_knob f = Printf.sprintf "%.17g" f
let bool_knob b = if b then "true" else "false"

let traversal_to_string = function
  | FC.Forward -> "forward"
  | FC.Weighted -> "weighted"

let knobs_of_config (fc : FC.t) =
  [
    ("traversal", traversal_to_string fc.traversal);
    ("acmap", bool_knob fc.acmap);
    ("ecmap", bool_knob fc.ecmap);
    ("cab", bool_knob fc.cab);
    ("beam_width", string_of_int fc.beam_width);
    ("expand_per_state", string_of_int fc.expand_per_state);
    ("prune_slack", float_knob fc.prune_slack);
    ("keep_prob", float_knob fc.keep_prob);
    ("recompute_budget", string_of_int fc.recompute_budget);
    ("home_reserve", string_of_int fc.home_reserve);
    ("move_weight", string_of_int fc.move_weight);
    ("energy_bias_nodes", string_of_int fc.energy_bias_nodes);
    ("retries", string_of_int fc.retries);
    ("seed", string_of_int fc.seed);
    ("degrade", bool_knob fc.degrade);
    ("max_attempts", string_of_int fc.max_attempts);
    ("backend", FC.backend_to_string fc.backend);
    ("protection", Cgra_arch.Protection.profile_to_string fc.protection);
  ]
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let config_of_knobs knobs =
  let parse_int name v k =
    match int_of_string_opt v with
    | Some i -> Ok (k i)
    | None -> Error (Printf.sprintf "knob %s: not an integer: %S" name v)
  in
  let parse_float name v k =
    match float_of_string_opt v with
    | Some f -> Ok (k f)
    | None -> Error (Printf.sprintf "knob %s: not a float: %S" name v)
  in
  let parse_bool name v k =
    match v with
    | "true" -> Ok (k true)
    | "false" -> Ok (k false)
    | _ -> Error (Printf.sprintf "knob %s: not a boolean: %S" name v)
  in
  List.fold_left
    (fun acc (name, v) ->
      Result.bind acc (fun (fc : FC.t) ->
          match name with
          | "traversal" -> (
            match v with
            | "forward" -> Ok { fc with traversal = FC.Forward }
            | "weighted" -> Ok { fc with traversal = FC.Weighted }
            | _ ->
              Error
                (Printf.sprintf
                   "knob traversal: %S (expected forward|weighted)" v))
          | "acmap" -> parse_bool name v (fun b -> { fc with acmap = b })
          | "ecmap" -> parse_bool name v (fun b -> { fc with ecmap = b })
          | "cab" -> parse_bool name v (fun b -> { fc with cab = b })
          | "beam_width" ->
            parse_int name v (fun i -> { fc with beam_width = i })
          | "expand_per_state" ->
            parse_int name v (fun i -> { fc with expand_per_state = i })
          | "prune_slack" ->
            parse_float name v (fun f -> { fc with prune_slack = f })
          | "keep_prob" ->
            parse_float name v (fun f -> { fc with keep_prob = f })
          | "recompute_budget" ->
            parse_int name v (fun i -> { fc with recompute_budget = i })
          | "home_reserve" ->
            parse_int name v (fun i -> { fc with home_reserve = i })
          | "move_weight" ->
            parse_int name v (fun i -> { fc with move_weight = i })
          | "energy_bias_nodes" ->
            parse_int name v (fun i -> { fc with energy_bias_nodes = i })
          | "retries" -> parse_int name v (fun i -> { fc with retries = i })
          | "seed" -> parse_int name v (fun i -> { fc with seed = i })
          | "degrade" -> parse_bool name v (fun b -> { fc with degrade = b })
          | "max_attempts" ->
            parse_int name v (fun i -> { fc with max_attempts = i })
          | "backend" -> (
            match FC.backend_of_string v with
            | Some b -> Ok { fc with backend = b }
            | None ->
              Error
                (Printf.sprintf
                   "knob backend: %S (expected beam|exact|portfolio)" v))
          | "protection" -> (
            match Cgra_arch.Protection.profile_of_string v with
            | Some p -> Ok { fc with protection = p }
            | None ->
              Error
                (Printf.sprintf "knob protection: %S (expected %s)" v
                   Cgra_arch.Protection.valid_values))
          | _ -> Error (Printf.sprintf "unknown flow knob %S" name)))
    (Ok FC.default) knobs

let spec_of_bundled ~slug ~config ~flow ~opt ~faults =
  match Cgra_kernels.Kernels.by_slug slug with
  | None ->
    Error
      (Printf.sprintf "unknown kernel %S (try: cgra_map list)" slug)
  | Some k ->
    Ok
      {
        kernel = Bundled { slug; source = k.Cgra_kernels.Kernel_def.source };
        config;
        knobs = knobs_of_config flow;
        opt;
        faults;
      }

(* ---- canonical form and digest ---------------------------------------- *)

let md5_hex s = Digest.to_hex (Digest.string s)

let canonical spec =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "cgra-key v1";
  line "code %s" code_version;
  (match spec.kernel with
  | Bundled { slug; source } ->
    line "kernel bundled %s" slug;
    line "source-md5 %s" (md5_hex source)
  | Inline { source; mem_words } ->
    line "kernel inline mem_words=%d" mem_words;
    line "source-md5 %s" (md5_hex source));
  line "config %s" (Cgra_arch.Config.to_string spec.config);
  line "opt %s" (opt_to_string spec.opt);
  List.iter
    (fun (name, v) -> line "knob %s=%s" name v)
    (List.sort (fun (a, _) (b, _) -> compare a b) spec.knobs);
  List.iter
    (fun f -> line "fault %s" f)
    (List.sort compare
       (List.map Cgra_arch.Cgra.fault_to_string spec.faults));
  Buffer.contents buf

let digest spec = md5_hex (canonical spec)
