(** Deterministic, splittable pseudo-random number generator.

    The mapper's stochastic pruning (Section III-B of the paper) must be
    reproducible run-to-run, so all randomness in the project flows through
    this module rather than [Stdlib.Random].  The generator is a SplitMix64
    stream: 64-bit state, one multiply-xor-shift mixing round per draw. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed].  Equal seeds
    yield identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future. *)

val split : t -> t
(** [split g] draws from [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent draws. *)

val seed_of : base:int -> string -> int
(** [seed_of ~base key] deterministically derives a non-negative seed from
    a base seed and a textual key (FNV-1a folded through the SplitMix64
    mixer).  Used to give every experiment-grid cell its own independent
    stream regardless of evaluation order, so parallel and sequential runs
    agree byte-for-byte. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)] — exactly uniform, via rejection
    sampling of the top partial block of the 62-bit draw range, not the
    modulo-biased [draw mod n].  Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on an
    empty list. *)
