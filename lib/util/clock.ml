external now_ns : unit -> int64 = "cgra_clock_monotonic_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s t0 = Float.max 0.0 (now () -. t0)
