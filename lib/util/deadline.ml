(* A token is the absolute expiry instant in CLOCK_MONOTONIC nanoseconds,
   with Int64.max_int standing in for "never" so [expired] needs no
   option unboxing on the hot path. *)

type t = int64

let never : t = Int64.max_int
let is_never t = Int64.equal t never

let at_ns ns : t = ns

let after_ms ms : t =
  if ms <= 0 then Clock.now_ns ()
  else Int64.add (Clock.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L)

let expired t = (not (is_never t)) && Int64.compare (Clock.now_ns ()) t >= 0

let remaining_ms t =
  if is_never t then None
  else
    let left = Int64.sub t (Clock.now_ns ()) in
    if Int64.compare left 0L <= 0 then Some 0
    else
      (* round up: an unexpired token never reports 0 *)
      Some (Int64.to_int (Int64.div (Int64.add left 999_999L) 1_000_000L))

let intersect a b = if Int64.compare a b <= 0 then a else b
