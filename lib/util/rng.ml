(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen because it is trivially splittable,
   which lets every partial mapping carry an independent stream. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = int64 g in
  { state = seed }

(* FNV-1a over the key, xor-folded with the base seed, finished with the
   SplitMix64 mixer: a deterministic, platform-independent way to give
   every (kernel, config, flow) grid cell its own independent stream.
   [Hashtbl.hash] is deliberately avoided — its value is not pinned across
   compiler versions, and cell seeds must be stable forever. *)
let seed_of ~base key =
  let h = ref (Int64.logxor (Int64.of_int base) 0xCBF29CE484222325L) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    key;
  Int64.to_int (Int64.shift_right_logical (mix64 !h) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Draws are uniform over [0, 2^62); [v mod n] alone is biased towards
     the low residues whenever n does not divide 2^62.  Classic rejection:
     retry draws from the truncated top block [lim, 2^62) so every residue
     keeps exactly [2^62 / n] preimages.  [max_int] is 2^62 - 1, so
     [rem = 2^62 mod n] and the last accepted value is [max_int - rem]. *)
  let rem = (max_int mod n + 1) mod n in
  let top = max_int - rem in
  let rec draw () =
    (* shift to 62 bits so the conversion to a 63-bit OCaml int stays
       non-negative *)
    let v = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
    if v <= top then v mod n else draw ()
  in
  draw ()

let float g =
  let v = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (int64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l ->
    (* One traversal instead of two ([List.length] + [List.nth]); the
       bound passed to [int] is unchanged, so the draw sequence — and
       every artifact seeded through it — is identical. *)
    let a = Array.of_list l in
    a.(int g (Array.length a))
