(** Monotonic clock for duration measurement.

    [Unix.gettimeofday] is wall-clock time and goes backwards under NTP
    adjustment; durations derived from it can be negative.  Everything in
    this project that measures *elapsed time* (compile seconds, ablation
    timings, the parallel-harness speedup report) must go through this
    module instead. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC.  The absolute value is meaningless
    (typically time since boot); only differences are. *)

val now : unit -> float
(** Seconds on the monotonic clock, as a float.  Same caveat. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now () -. t0]: seconds elapsed since the instant
    [t0] previously obtained from {!now}.  Never negative. *)
