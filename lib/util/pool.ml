let default_jobs () = Domain.recommended_domain_count ()

type 'b slot = Ok_ of 'b | Exn of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Each worker grabs the next unclaimed index until the grid is drained.
       [results] is written racily across domains, but every index is
       written by exactly one domain and read only after all joins — the
       join is the synchronisation point. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f items.(i) with
            | v -> Ok_ v
            | exception e -> Exn (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    Array.to_list results
    |> List.map (function
         | Some (Ok_ v) -> v
         | Some (Exn (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index was claimed *))
  end

let iter ?jobs f xs = ignore (map ?jobs f xs)
