let default_jobs () = Domain.recommended_domain_count ()

type 'b slot = Ok_ of 'b | Exn of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Each worker grabs the next unclaimed index until the grid is drained.
       [results] is written racily across domains, but every index is
       written by exactly one domain and read only after all joins — the
       join is the synchronisation point. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f items.(i) with
            | v -> Ok_ v
            | exception e -> Exn (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others;
    Array.to_list results
    |> List.map (function
         | Some (Ok_ v) -> v
         | Some (Exn (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index was claimed *))
  end

let iter ?jobs f xs = ignore (map ?jobs f xs)

(* ---- persistent pool with fair per-lane FIFO queueing ----------------- *)

module Persistent = struct
  (* Jobs are opaque thunks; completion signalling is the submitter's
     business (the serve scheduler wraps jobs with a condition variable).
     Fairness: each lane (one per client) owns a FIFO queue, and lanes
     with pending work rotate through [rr]; a worker takes ONE job from
     the front lane, then sends the lane to the back of the rotation, so
     a client that enqueues a burst cannot starve the others. *)
  type t = {
    mutex : Mutex.t;
    work : Condition.t;        (* signalled when a job or stop arrives *)
    idle : Condition.t;        (* signalled when a job finishes *)
    lanes : (int, (unit -> unit) Queue.t) Hashtbl.t;
    rr : int Queue.t;          (* lanes with pending jobs, rotation order *)
    mutable queued : int;
    mutable running : int;
    mutable stop : bool;
    mutable workers : unit Domain.t array;
  }

  let next_job p =
    match Queue.take_opt p.rr with
    | None -> None
    | Some lane ->
      let q = Hashtbl.find p.lanes lane in
      let job = Queue.take q in
      if Queue.is_empty q then Hashtbl.remove p.lanes lane
      else Queue.add lane p.rr;
      p.queued <- p.queued - 1;
      Some job

  let worker p () =
    Mutex.lock p.mutex;
    let rec take () =
      match next_job p with
      | Some job ->
        p.running <- p.running + 1;
        Mutex.unlock p.mutex;
        (try job () with _ -> ());
        Mutex.lock p.mutex;
        p.running <- p.running - 1;
        Condition.broadcast p.idle;
        take ()
      | None ->
        if p.stop then Mutex.unlock p.mutex
        else begin
          Condition.wait p.work p.mutex;
          take ()
        end
    in
    take ()

  let create ?jobs () =
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let p =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        lanes = Hashtbl.create 8;
        rr = Queue.create ();
        queued = 0;
        running = 0;
        stop = false;
        workers = [||];
      }
    in
    p.workers <- Array.init jobs (fun _ -> Domain.spawn (worker p));
    p

  let submit p ~lane job =
    Mutex.lock p.mutex;
    if p.stop then begin
      Mutex.unlock p.mutex;
      false
    end
    else begin
      (match Hashtbl.find_opt p.lanes lane with
      | Some q -> Queue.add job q
      | None ->
        let q = Queue.create () in
        Queue.add job q;
        Hashtbl.replace p.lanes lane q;
        Queue.add lane p.rr);
      p.queued <- p.queued + 1;
      Condition.signal p.work;
      Mutex.unlock p.mutex;
      true
    end

  let inflight p =
    Mutex.lock p.mutex;
    let n = p.queued + p.running in
    Mutex.unlock p.mutex;
    n

  let shutdown p =
    Mutex.lock p.mutex;
    p.stop <- true;
    (* Drain: workers keep taking queued jobs after [stop]; they only
       exit once the rotation is empty. *)
    while p.queued + p.running > 0 do
      Condition.broadcast p.work;
      Condition.wait p.idle p.mutex
    done;
    Condition.broadcast p.work;
    Mutex.unlock p.mutex;
    Array.iter Domain.join p.workers
end
