(** Plain-text rendering of tables and bar charts.

    The experiment harness prints paper-style artifacts (Table II rows,
    Fig 6-8 latency series) on stdout; this module owns the layout so every
    report looks the same. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] lays the cells out in aligned columns with a
    separator line under the header.  Rows shorter than the header are
    padded with empty cells. *)

val render_aligned :
  header:string list ->
  align:[ `L | `R ] list ->
  rows:string list list ->
  string
(** {!render} with per-column alignment; columns beyond the length of
    [align] stay left-aligned, so [~align:[]] is exactly {!render} —
    existing artifacts keep their historical layout. *)

val bar_chart :
  title:string -> ?width:int -> (string * float) list -> string
(** [bar_chart ~title series] renders one horizontal ASCII bar per labelled
    value, scaled so the largest value spans [width] (default 50) columns.
    Negative values are clamped to zero; a zero-valued entry renders as an
    explicit [(none)] marker, matching the paper's "no mapping found"
    bars. *)

val grouped_chart :
  title:string ->
  group_labels:string list ->
  ?width:int ->
  (string * float list) list ->
  string
(** [grouped_chart ~title ~group_labels rows] renders, for each row
    [(label, values)], one bar per value tagged with the corresponding
    group label — the shape of the paper's per-kernel, per-configuration
    figures. *)

val float_cell : float -> string
(** Compact fixed-point formatting used across reports ("1.43", "0.007"). *)
