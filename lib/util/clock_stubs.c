/* Monotonic clock for duration measurement.

   Unix.gettimeofday is wall-clock time: NTP slews and steps make it jump,
   including backwards, so durations derived from it can come out negative
   or wildly wrong.  CLOCK_MONOTONIC never goes backwards.  The OCaml unix
   library shipped with this compiler does not expose clock_gettime, hence
   this stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

#include <time.h>

CAMLprim value cgra_clock_monotonic_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec));
}
