(** Domain-based worker pool for embarrassingly parallel grids.

    The experiment harness maps every (kernel, configuration, flow) cell of
    the evaluation grid independently; this module fans those cells out
    over OCaml 5 domains.  The design is work-stealing-lite: one shared
    atomic index hands out list elements to whichever domain is free next,
    so uneven cell costs (some cells map in milliseconds, some retry for
    seconds) still balance without any per-domain queues.

    Determinism contract: the *scheduling* order is nondeterministic, but
    the result list is always in input order, and [f] must not communicate
    between elements — under those conditions every [jobs] value produces
    the same result list. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the number of workers used when
    [~jobs] is omitted. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (clamped to [1 .. length xs]; [jobs <= 1] runs sequentially in the
    calling domain without spawning).  Results are returned in input
    order.

    Exceptions: every element is attempted; if any application raised, the
    exception of the smallest-index failing element is re-raised (with its
    original backtrace) after all workers have joined, so no domain is
    leaked and the choice of re-raised exception does not depend on
    scheduling. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f xs] is [map ~jobs f xs] with unit results. *)
