(** Domain-based worker pool for embarrassingly parallel grids.

    The experiment harness maps every (kernel, configuration, flow) cell of
    the evaluation grid independently; this module fans those cells out
    over OCaml 5 domains.  The design is work-stealing-lite: one shared
    atomic index hands out list elements to whichever domain is free next,
    so uneven cell costs (some cells map in milliseconds, some retry for
    seconds) still balance without any per-domain queues.

    Determinism contract: the *scheduling* order is nondeterministic, but
    the result list is always in input order, and [f] must not communicate
    between elements — under those conditions every [jobs] value produces
    the same result list. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the number of workers used when
    [~jobs] is omitted. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (clamped to [1 .. length xs]; [jobs <= 1] runs sequentially in the
    calling domain without spawning).  Results are returned in input
    order.

    Exceptions: every element is attempted; if any application raised, the
    exception of the smallest-index failing element is re-raised (with its
    original backtrace) after all workers have joined, so no domain is
    leaked and the choice of re-raised exception does not depend on
    scheduling. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter ~jobs f xs] is [map ~jobs f xs] with unit results. *)

(** Long-lived worker pool with fair FIFO queueing per lane — the compute
    scheduler under the [cgra_mapd] daemon.  Unlike {!map}, which exists
    for one batch and joins, a persistent pool accepts jobs for its whole
    lifetime; each lane (one per connected client) is a FIFO queue, and
    lanes with pending work are served round-robin, one job at a time, so
    a client that submits a burst cannot starve the others. *)
module Persistent : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** Spawn [jobs] worker domains (default {!default_jobs}, clamped to
      >= 1). *)

  val submit : t -> lane:int -> (unit -> unit) -> bool
  (** Enqueue a job on [lane]'s FIFO; returns [false] (job not accepted)
      after {!shutdown} began.  Jobs must handle their own errors —
      an exception escaping a job is swallowed, not rethrown (the serve
      scheduler converts them to responses before they get here). *)

  val inflight : t -> int
  (** Queued plus currently-running jobs. *)

  val shutdown : t -> unit
  (** Reject new submissions, drain every queued and running job, join
      the workers.  Blocks until the pool is empty — the daemon's
      graceful SIGTERM path. *)
end
