let pad s w =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let pad_left s w =
  let n = String.length s in
  if n >= w then s else String.make (w - n) ' ' ^ s

let render_aligned ~header ~align ~rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let fill r =
    let missing = ncols - List.length r in
    if missing <= 0 then r else r @ List.init missing (fun _ -> "")
  in
  let all = List.map fill (header :: rows) in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let dir i =
    match List.nth_opt align i with Some `R -> `R | Some `L | None -> `L
  in
  let line row =
    let cells =
      List.mapi
        (fun i cell ->
          match dir i with
          | `L -> pad cell widths.(i)
          | `R -> pad_left cell widths.(i))
        row
    in
    let s = String.concat "  " cells in
    (* trim trailing spaces *)
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let sep =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  let body = List.map line rows in
  String.concat "\n" ((line (fill header)) :: sep :: body) ^ "\n"

let render ~header ~rows = render_aligned ~header ~align:[] ~rows

let float_cell v =
  if Float.is_integer v && Float.abs v < 1e6 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 100.0 then Printf.sprintf "%.1f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

let bar ~scale ~width v =
  if v <= 0.0 then "(none)"
  else
    let n = int_of_float (Float.round (v *. scale)) in
    let n = max 1 (min width n) in
    String.make n '#'

let bar_chart ~title ?(width = 50) series =
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series in
  let scale = if vmax <= 0.0 then 0.0 else float_of_int width /. vmax in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let line (label, v) =
    Printf.sprintf "  %s  %s %s" (pad label label_w) (bar ~scale ~width v)
      (float_cell v)
  in
  String.concat "\n" ((title ^ ":") :: List.map line series) ^ "\n"

let grouped_chart ~title ~group_labels ?(width = 40) rows =
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0.0 rows
  in
  let scale = if vmax <= 0.0 then 0.0 else float_of_int width /. vmax in
  let glabel_w =
    List.fold_left (fun acc l -> max acc (String.length l)) 0 group_labels
  in
  let block (label, vs) =
    let lines =
      List.map2
        (fun g v ->
          Printf.sprintf "    %s  %s %s" (pad g glabel_w) (bar ~scale ~width v)
            (float_cell v))
        group_labels vs
    in
    String.concat "\n" (("  " ^ label) :: lines)
  in
  String.concat "\n" ((title ^ ":") :: List.map block rows) ^ "\n"
