(** Cooperative cancellation tokens on the monotonic clock.

    A deadline is an absolute instant on {!Clock.now_ns}'s timeline.  Hot
    loops (search rounds, SAT restarts, binary-search probes) poll it at
    their natural boundaries; a poll is one clock read and one [Int64]
    compare, cheap enough to sit inside a round loop without showing up in
    a profile.  Cancellation is cooperative: nothing is interrupted
    mid-step, so a loop that observes expiry can unwind cleanly and leave
    its state reusable.

    Determinism contract: a deadline is an {e observer}, never an input.
    Code threaded with a token must compute byte-identical results whether
    it was given {!never} or an armed token that does not fire — the only
    behavioural difference a token may make is an early, typed exit when
    it {e does} fire. *)

type t
(** A cancellation token.  Immutable; cheap to copy and share across
    domains. *)

val never : t
(** The token that never expires.  [expired never] is [false] forever and
    costs no clock read. *)

val after_ms : int -> t
(** [after_ms ms] is a token expiring [ms] milliseconds from now.
    [ms <= 0] yields a token that is already expired. *)

val at_ns : int64 -> t
(** A token expiring at an absolute {!Clock.now_ns} instant. *)

val expired : t -> bool
(** One clock read and one compare ([never] short-circuits without the
    read). *)

val remaining_ms : t -> int option
(** Milliseconds until expiry: [None] for {!never}, [Some 0] once
    expired.  Rounds up, so an unexpired token never reports [Some 0]. *)

val is_never : t -> bool
(** [true] iff the token is {!never}. *)

val intersect : t -> t -> t
(** The earlier of two deadlines; [never] is the identity. *)
