(* A compact CDCL SAT solver: two-watched-literal propagation, 1UIP
   learning, Luby restarts, VSIDS with deterministic (lowest-index)
   tie-breaking and phase saving.  No wall clock, no [Random]: the
   search trace is a pure function of the clause set, which is what
   lets the exact backend promise byte-identical artifacts.

   Internal literal encoding: variable [v >= 1] becomes [2*v] for the
   positive literal and [2*v + 1] for the negation, so negation is
   [lxor 1] and the variable is [lsr 1]. *)

type outcome = Sat | Unsat | Unknown

type t = {
  mutable nvars : int;
  (* Clause store: [clauses.(i)] is an array of internal literals.
     Learned clauses share the same store. *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  (* [watches.(l)] lists clause indices in which internal literal [l]
     is one of the two watched literals (positions 0 and 1). *)
  mutable watches : int array array;
  mutable watch_n : int array;
  (* Per-variable state, indexed 1..nvars. *)
  mutable values : int array; (* 0 unassigned / 1 true / -1 false *)
  mutable levels : int array;
  mutable reasons : int array; (* clause index or -1 *)
  mutable activity : float array;
  mutable polarity : bool array; (* saved phase *)
  mutable seen : bool array;
  (* Binary max-heap of unassigned candidate variables. *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable heap_pos : int array; (* -1 when not in heap *)
  (* Assignment trail (internal literals) and decision-level marks. *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable trail_lim : int array;
  mutable lim_n : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;
  mutable units : int array; (* external-facing unit queue, internal lits *)
  mutable units_n : int;
  mutable learnt_mark : bool array; (* per clause index *)
  mutable n_learnt : int;
  mutable max_learnt : float;
  mutable conflicts : int;
  mutable model : bool array;
  mutable has_model : bool;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 256 [||];
    n_clauses = 0;
    watches = Array.make 64 [||];
    watch_n = Array.make 64 0;
    values = Array.make 32 0;
    levels = Array.make 32 0;
    reasons = Array.make 32 (-1);
    activity = Array.make 32 0.0;
    polarity = Array.make 32 false;
    seen = Array.make 32 false;
    heap = Array.make 32 0;
    heap_n = 0;
    heap_pos = Array.make 32 (-1);
    trail = Array.make 32 0;
    trail_n = 0;
    trail_lim = Array.make 32 0;
    lim_n = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    units = Array.make 16 0;
    units_n = 0;
    learnt_mark = Array.make 256 false;
    n_learnt = 0;
    max_learnt = 0.0;
    conflicts = 0;
    model = [||];
    has_model = false;
  }

let nvars s = s.nvars
let stats_conflicts s = s.conflicts
let stats_clauses s = s.n_clauses

(* -- growable storage ---------------------------------------------- *)

let grow a n fill =
  if n < Array.length a then a
  else begin
    let a' = Array.make (max (n + 1) (2 * Array.length a)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let grow_int = grow
let grow_float = grow
let grow_bool = grow
let grow_arr a n = grow a n [||]

let new_var s =
  let v = s.nvars + 1 in
  s.nvars <- v;
  s.values <- grow_int s.values v 0;
  s.levels <- grow_int s.levels v 0;
  s.reasons <- grow_int s.reasons v (-1);
  s.activity <- grow_float s.activity v 0.0;
  s.polarity <- grow_bool s.polarity v false;
  s.seen <- grow_bool s.seen v false;
  s.heap_pos <- grow_int s.heap_pos v (-1);
  s.trail <- grow_int s.trail v 0;
  s.trail_lim <- grow_int s.trail_lim v 0;
  let lit_hi = 2 * v + 1 in
  s.watches <- grow_arr s.watches lit_hi;
  s.watch_n <- grow_int s.watch_n lit_hi 0;
  v

(* -- heap (max by activity, ties to the lowest index) -------------- *)

let heap_lt s v w =
  s.activity.(v) > s.activity.(w)
  || (s.activity.(v) = s.activity.(w) && v < w)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(p) then begin
      let tmp = s.heap.(i) in
      s.heap.(i) <- s.heap.(p);
      s.heap.(p) <- tmp;
      s.heap_pos.(s.heap.(i)) <- i;
      s.heap_pos.(s.heap.(p)) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_n && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_n && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = s.heap.(i) in
    s.heap.(i) <- s.heap.(!best);
    s.heap.(!best) <- tmp;
    s.heap_pos.(s.heap.(i)) <- i;
    s.heap_pos.(s.heap.(!best)) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_int s.heap s.heap_n 0;
    s.heap.(s.heap_n) <- v;
    s.heap_pos.(v) <- s.heap_n;
    s.heap_n <- s.heap_n + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_n <- s.heap_n - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_n > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_n);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

(* -- activities ---------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc *. (1.0 /. 0.95)

(* -- assignment ---------------------------------------------------- *)

let lit_value s l =
  let v = s.values.(l lsr 1) in
  if v = 0 then 0 else if l land 1 = 0 then v else -v

let decision_level s = s.lim_n

let enqueue s l reason =
  let v = l lsr 1 in
  s.values.(v) <- (if l land 1 = 0 then 1 else -1);
  s.levels.(v) <- decision_level s;
  s.reasons.(v) <- reason;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

let backtrack s level =
  if decision_level s > level then begin
    while s.trail_n > s.trail_lim.(level) do
      s.trail_n <- s.trail_n - 1;
      let l = s.trail.(s.trail_n) in
      let v = l lsr 1 in
      s.polarity.(v) <- s.values.(v) = 1;
      s.values.(v) <- 0;
      s.reasons.(v) <- -1;
      heap_insert s v
    done;
    s.qhead <- s.trail_n;
    s.lim_n <- level
  end

(* -- clauses and watches ------------------------------------------- *)

let watch_add s l ci =
  let n = s.watch_n.(l) in
  let a = s.watches.(l) in
  let a =
    if n < Array.length a then a
    else begin
      let a' = Array.make (max 4 (2 * Array.length a)) 0 in
      Array.blit a 0 a' 0 n;
      s.watches.(l) <- a';
      a'
    end
  in
  a.(n) <- ci;
  s.watch_n.(l) <- n + 1

let attach s lits =
  let ci = s.n_clauses in
  s.clauses <- grow_arr s.clauses ci;
  s.learnt_mark <- grow_bool s.learnt_mark ci false;
  s.clauses.(ci) <- lits;
  s.n_clauses <- ci + 1;
  watch_add s lits.(0) ci;
  watch_add s lits.(1) ci;
  ci

let add_clause s ext =
  if s.ok then begin
    let ints =
      List.map
        (fun l ->
          if l = 0 || abs l > s.nvars then
            invalid_arg "Solver.add_clause: literal out of range";
          if l > 0 then 2 * l else (2 * -l) + 1)
        ext
    in
    let sorted = List.sort_uniq compare ints in
    (* Adjacent [2v; 2v+1] after sorting means the clause is a
       tautology and can be dropped. *)
    let rec tauto = function
      | a :: (b :: _ as rest) -> (a lxor 1 = b && a lsr 1 = b lsr 1) || tauto rest
      | _ -> false
    in
    if not (tauto sorted) then
      match sorted with
      | [] -> s.ok <- false
      | [ l ] ->
          s.units <- grow_int s.units s.units_n 0;
          s.units.(s.units_n) <- l;
          s.units_n <- s.units_n + 1
      | _ -> ignore (attach s (Array.of_list sorted))
  end

(* -- propagation --------------------------------------------------- *)

(* Returns the index of a conflicting clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_n do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    (* p just became true: clauses watching [not p] need a look. *)
    let fl = p lxor 1 in
    let ws = s.watches.(fl) in
    let n = s.watch_n.(fl) in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let ci = ws.(!i) in
      incr i;
      let lits = s.clauses.(ci) in
      if Array.length lits = 0 then () (* deleted: drop from this list *)
      else begin
      if lits.(0) = fl then begin
        lits.(0) <- lits.(1);
        lits.(1) <- fl
      end;
      if lit_value s lits.(0) = 1 then begin
        (* Satisfied by the other watch: keep watching. *)
        ws.(!j) <- ci;
        incr j
      end
      else begin
        (* Look for a replacement watch. *)
        let len = Array.length lits in
        let k = ref 2 in
        while !k < len && lit_value s lits.(!k) = -1 do incr k done;
        if !k < len then begin
          lits.(1) <- lits.(!k);
          lits.(!k) <- fl;
          watch_add s lits.(1) ci
        end
        else begin
          (* Unit or conflict: the clause stays watched here. *)
          ws.(!j) <- ci;
          incr j;
          if lit_value s lits.(0) = -1 then begin
            (* Conflict: keep the remaining watchers, stop. *)
            while !i < n do
              ws.(!j) <- ws.(!i);
              incr j;
              incr i
            done;
            confl := ci
          end
          else enqueue s lits.(0) ci
        end
      end
      end
    done;
    s.watch_n.(fl) <- !j
  done;
  !confl

(* -- conflict analysis (first UIP) --------------------------------- *)

let analyze s confl learnt =
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let trail_idx = ref (s.trail_n - 1) in
  let bt_level = ref 0 in
  let learnt_n = ref 1 in
  (* learnt.(0) is reserved for the asserting literal *)
  let continue_ = ref true in
  while !continue_ do
    let lits = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for idx = start to Array.length lits - 1 do
      let q = lits.(idx) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.levels.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.levels.(v) >= decision_level s then incr counter
        else begin
          learnt.(!learnt_n) <- q;
          incr learnt_n;
          if s.levels.(v) > !bt_level then bt_level := s.levels.(v)
        end
      end
    done;
    (* Walk back to the most recent literal contributing to the
       conflict at the current level. *)
    while not s.seen.(s.trail.(!trail_idx) lsr 1) do decr trail_idx done;
    p := s.trail.(!trail_idx);
    decr trail_idx;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    if !counter = 0 then continue_ := false
    else confl := s.reasons.(!p lsr 1)
  done;
  learnt.(0) <- !p lxor 1;
  for idx = 1 to !learnt_n - 1 do
    s.seen.(learnt.(idx) lsr 1) <- false
  done;
  (!learnt_n, !bt_level)

let record_learnt s learnt learnt_n bt_level =
  backtrack s bt_level;
  if learnt_n = 1 then enqueue s learnt.(0) (-1)
  else begin
    let lits = Array.sub learnt 0 learnt_n in
    (* Watch the asserting literal and a literal from the backtrack
       level, so the watch invariant holds after the jump. *)
    let best = ref 1 in
    for idx = 2 to learnt_n - 1 do
      if s.levels.(lits.(idx) lsr 1) > s.levels.(lits.(!best) lsr 1) then
        best := idx
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    let ci = attach s lits in
    s.learnt_mark.(ci) <- true;
    s.n_learnt <- s.n_learnt + 1;
    enqueue s lits.(0) ci
  end

(* -- learned-clause deletion --------------------------------------- *)

(* Called at decision level 0.  Deletes the longer (then newer) half of
   the non-locked learnt clauses by emptying their literal arrays;
   propagation lazily drops empty clauses from the watch lists.  The
   ranking is a pure function of clause lengths and indices, so the
   reduced database — like everything else here — is deterministic. *)
let reduce_db s =
  let cands = ref [] in
  for ci = s.n_clauses - 1 downto 0 do
    if s.learnt_mark.(ci) then begin
      let lits = s.clauses.(ci) in
      if Array.length lits > 3 then begin
        let locked =
          lit_value s lits.(0) = 1 && s.reasons.(lits.(0) lsr 1) = ci
        in
        if not locked then cands := ci :: !cands
      end
    end
  done;
  let arr = Array.of_list !cands in
  Array.sort
    (fun a b ->
      let la = Array.length s.clauses.(a)
      and lb = Array.length s.clauses.(b) in
      if la <> lb then compare lb la else compare b a)
    arr;
  for k = 0 to (Array.length arr / 2) - 1 do
    let ci = arr.(k) in
    s.clauses.(ci) <- [||];
    s.learnt_mark.(ci) <- false;
    s.n_learnt <- s.n_learnt - 1
  done

(* -- restarts ------------------------------------------------------ *)

let luby i =
  let rec go i =
    let k = ref 1 in
    while (1 lsl !k) - 1 < i do incr k done;
    if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
    else go (i - (1 lsl (!k - 1)) + 1)
  in
  go i

(* -- main search --------------------------------------------------- *)

let save_model s =
  let m = Array.make (s.nvars + 1) false in
  for v = 1 to s.nvars do
    m.(v) <- s.values.(v) = 1
  done;
  s.model <- m;
  s.has_model <- true

let solve ?(conflict_budget = max_int) ?(deadline = Cgra_util.Deadline.never) s
    =
  if not s.ok then Unsat
  else begin
    s.has_model <- false;
    for v = 1 to s.nvars do
      if s.values.(v) = 0 then heap_insert s v
    done;
    (* Top-level units first. *)
    let contradiction = ref false in
    for i = 0 to s.units_n - 1 do
      let l = s.units.(i) in
      match lit_value s l with
      | 1 -> ()
      | -1 -> contradiction := true
      | _ -> enqueue s l (-1)
    done;
    if !contradiction then begin
      s.ok <- false;
      Unsat
    end
    else if propagate s >= 0 then begin
      s.ok <- false;
      Unsat
    end
    else begin
      let learnt = Array.make (s.nvars + 1) 0 in
      let result = ref None in
      let restart = ref 1 in
      let spent = ref 0 in
      s.max_learnt <- max 20_000.0 (float_of_int s.n_clauses /. 3.0);
      while !result = None do
        (* Restart boundary: decision level 0, safe to shrink the
           learnt-clause database — and to give up cooperatively. *)
        if Cgra_util.Deadline.expired deadline then result := Some Unknown
        else if float_of_int s.n_learnt > s.max_learnt then begin
          reduce_db s;
          s.max_learnt <- s.max_learnt *. 1.1
        end;
        let limit = 64 * luby !restart in
        incr restart;
        let local = ref 0 in
        let continue_ = ref true in
        while !continue_ && !result = None do
          let confl = propagate s in
          if confl >= 0 then begin
            s.conflicts <- s.conflicts + 1;
            incr spent;
            incr local;
            if decision_level s = 0 then begin
              s.ok <- false;
              result := Some Unsat
            end
            else begin
              let learnt_n, bt_level = analyze s confl learnt in
              record_learnt s learnt learnt_n bt_level;
              var_decay s;
              if
                !spent >= conflict_budget
                || (!spent land 255 = 0 && Cgra_util.Deadline.expired deadline)
              then begin
                backtrack s 0;
                result := Some Unknown
              end
              else if !local >= limit then begin
                backtrack s 0;
                continue_ := false
              end
            end
          end
          else begin
            (* Decide. *)
            let v = ref 0 in
            while !v = 0 && s.heap_n > 0 do
              let w = heap_pop s in
              if s.values.(w) = 0 then v := w
            done;
            if !v = 0 then begin
              save_model s;
              result := Some Sat
            end
            else begin
              s.trail_lim.(s.lim_n) <- s.trail_n;
              s.lim_n <- s.lim_n + 1;
              let l = if s.polarity.(!v) then 2 * !v else (2 * !v) + 1 in
              enqueue s l (-1)
            end
          end
        done
      done;
      match !result with Some r -> r | None -> assert false
    end
  end

let value s v =
  if not s.has_model then invalid_arg "Solver.value: no model"
  else if v < 1 || v > s.nvars then invalid_arg "Solver.value: bad variable"
  else s.model.(v)
