(** A small self-contained CDCL SAT solver.

    Features: two-watched-literal propagation, first-UIP clause
    learning, Luby-sequence restarts, VSIDS variable activity with
    phase saving.  The solver is fully deterministic: decisions break
    activity ties by lowest variable index, activities evolve by a
    fixed arithmetic schedule, and nothing consults the wall clock or
    [Random].  Given the same sequence of [new_var]/[add_clause]
    calls, [solve] always returns the same outcome and (when [Sat])
    the same model — the property the exact mapping backend needs to
    keep artifacts byte-identical at any [--jobs] value.

    Variables are positive integers allocated by {!new_var}.  A
    literal is a non-zero integer: [v] for the positive literal,
    [-v] for the negation — the familiar DIMACS convention. *)

type t

type outcome =
  | Sat  (** a satisfying assignment was found; query it with {!value} *)
  | Unsat  (** the clause set is unsatisfiable *)
  | Unknown  (** the conflict budget ran out before a verdict *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) index.
    Variables are numbered consecutively from 1. *)

val nvars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause given as a list of literals.  Duplicate literals are
    removed and tautologies ([v] and [-v] together) are dropped.  The
    empty clause marks the instance unsatisfiable.  All clauses must
    be added before calling {!solve}; the solver is not incremental. *)

val solve :
  ?conflict_budget:int -> ?deadline:Cgra_util.Deadline.t -> t -> outcome
(** Run CDCL search.  [conflict_budget] bounds the total number of
    conflicts before giving up with [Unknown] (default: unlimited).
    [deadline] is polled at every restart boundary and every 256
    conflicts; expiry behaves exactly like budget exhaustion — the
    trail is backtracked to level 0 and [Unknown] is returned, leaving
    the solver state reusable: a later [solve] call on the same solver
    continues from the learnt clauses accumulated so far.  Callers
    that need to distinguish a timeout from a spent budget check
    {!Cgra_util.Deadline.expired} themselves.  A deadline that never
    fires changes nothing: the search trace, outcome and model are
    byte-identical to a run without one. *)

val value : t -> int -> bool
(** [value s v] is the assignment of variable [v] in the model found
    by the last [solve] that returned [Sat].  Raises [Invalid_argument]
    if no model is available. *)

val stats_conflicts : t -> int
(** Total conflicts encountered across [solve] (deterministic; the
    exact backend reports this as its work measure). *)

val stats_clauses : t -> int
(** Clauses currently attached, problem and learnt together (deleted
    learnt clauses keep their index slot and still count). *)
