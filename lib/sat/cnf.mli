(** Cardinality-constraint helpers over {!Solver} literals.

    Literals use the solver's DIMACS convention: [v] positive,
    [-v] negated.  All encodings allocate auxiliary variables
    deterministically (in list order), so identical inputs produce
    identical CNF. *)

val exactly_one : Solver.t -> int list -> unit
(** At least one and at most one of the literals is true.  The empty
    list makes the instance unsatisfiable (an empty OR). *)

val at_most_one : Solver.t -> int list -> unit
(** Sequential (ladder) at-most-one encoding: linear clauses and
    auxiliary variables, no quadratic blowup on wide lists. *)

val at_most_k : Solver.t -> int list -> int -> unit
(** Sinz sequential-counter encoding of [sum lits <= k].
    [k >= length lits] adds nothing; [k = 0] forces every literal
    false; [k < 0] makes the instance unsatisfiable. *)
