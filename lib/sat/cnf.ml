(* Sinz-style sequential counters (LTseq): linear-size cardinality
   encodings whose auxiliary registers [s_{i,j}] mean "at least j of
   the first i literals are true".  See Sinz, CP 2005. *)

let at_most_k solver lits k =
  let n = List.length lits in
  if k < 0 then Solver.add_clause solver []
  else if k = 0 then
    List.iter (fun l -> Solver.add_clause solver [ -l ]) lits
  else if n > k then begin
    let xs = Array.of_list lits in
    (* regs.(i).(j) = "at least j+1 of xs.(0..i) are true", for
       i in 0..n-2 (the last literal needs no register column). *)
    let regs =
      Array.init (n - 1) (fun _ -> Array.init k (fun _ -> Solver.new_var solver))
    in
    Solver.add_clause solver [ -xs.(0); regs.(0).(0) ];
    for j = 1 to k - 1 do
      Solver.add_clause solver [ -regs.(0).(j) ]
    done;
    for i = 1 to n - 2 do
      Solver.add_clause solver [ -xs.(i); regs.(i).(0) ];
      Solver.add_clause solver [ -regs.(i - 1).(0); regs.(i).(0) ];
      for j = 1 to k - 1 do
        Solver.add_clause solver [ -xs.(i); -regs.(i - 1).(j - 1); regs.(i).(j) ];
        Solver.add_clause solver [ -regs.(i - 1).(j); regs.(i).(j) ]
      done;
      Solver.add_clause solver [ -xs.(i); -regs.(i - 1).(k - 1) ]
    done;
    Solver.add_clause solver [ -xs.(n - 1); -regs.(n - 2).(k - 1) ]
  end

let at_most_one solver lits = at_most_k solver lits 1

let exactly_one solver lits =
  Solver.add_clause solver lits;
  at_most_one solver lits
