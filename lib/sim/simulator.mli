(** Cycle-level simulator of the CGRA executing an assembled program.

    Tiles run lock-step through the context section of the current basic
    block; the global controller sequences blocks using the condition bit
    broadcast by [set_cond] instructions (Fig 1's control bits), adding
    one transition cycle per block.  Loads and stores reach the shared
    data memory through the logarithmic interconnect, modelled as
    [mem_ports] concurrent accesses per cycle — excess accesses stall the
    whole array (the paper's global stall signal).

    Register-file semantics: writes land at the end of a cycle, reads see
    the start-of-cycle state, matching the assembler's assumptions.  Two
    same-cycle writes to one (tile, register) have no defined winner in
    hardware; the simulator detects the conflict during the commit phase
    and raises {!Sim_error} ([Write_conflict]) instead of letting the
    pending-list order decide.

    Every structural check raises a typed {!error} carrying (tile, block,
    cycle) coordinates, so callers — in particular the fault-injection
    campaigns of [Cgra_verify] — can classify failures without parsing
    strings.  The simulator is fully defensive: a corrupted context word
    (out-of-range register, tile or CRF index) produces a typed error,
    never an [Invalid_argument] from an array access.

    The simulator also gathers the per-tile activity counters the energy
    model integrates. *)

type activity = {
  alu_ops : int;        (** non-memory operations executed *)
  mul_ops : int;        (** of which multiplies (costlier) *)
  mem_ops : int;        (** loads + stores issued *)
  moves : int;          (** routing moves and local copies *)
  fetches : int;        (** context words fetched (instructions + pnops) *)
  awake_cycles : int;   (** cycles not clock-gated (executing, not pnop) *)
}

type result = {
  cycles : int;            (** total, including stalls and transitions *)
  stall_cycles : int;
  blocks_executed : int;
  instructions : int;      (** instructions executed (pnops excluded) *)
  activity : activity array;  (** per tile *)
}

(** Structured simulation errors.  [block] is the basic-block index of
    the executing section, [cycle] the 0-based cycle within it. *)
type error =
  | Crf_out_of_range of { tile : int; block : int; cycle : int; index : int; pool : int }
  | Rf_out_of_range of { tile : int; block : int; cycle : int; reg : int; rf_words : int }
  | Bad_tile of { tile : int; block : int; cycle : int; target : int; tiles : int }
  | Non_neighbour_read of
      { tile : int; block : int; cycle : int; from_tile : int; distance : int }
  | Mem_out_of_bounds of { tile : int; block : int; cycle : int; addr : int; words : int }
  | Bad_arity of
      { tile : int; block : int; cycle : int; opcode : Cgra_ir.Opcode.t; args : int }
  | Store_with_dst of { tile : int; block : int; cycle : int }
  | Cond_without_result of { tile : int; block : int; cycle : int }
  | Write_conflict of { tile : int; reg : int; block : int; cycle : int }
  | Missing_condition of { block : int }
  | Unexecuted_instructions of { tile : int; block : int; left : int }
  | Runaway of { max_blocks : int }

val error_to_string : error -> string

exception Sim_error of error
(** Also registered with [Printexc.register_printer], so an uncaught
    [Sim_error] still prints a readable message. *)

type rf_fault = {
  at_cycle : int;   (** global cycle (stalls and transitions included) *)
  fault_tile : int;
  fault_reg : int;
  xor_mask : int;   (** XORed into the register when the counter crosses *)
}
(** A register-file bit-upset for the fault-injection campaigns: when the
    global cycle counter crosses [at_cycle], [xor_mask] is XORed into
    [fault_reg] of [fault_tile]. *)

val run :
  ?mem_ports:int ->
  ?max_blocks:int ->
  ?rf_faults:rf_fault list ->
  Cgra_asm.Assemble.program ->
  mem:int array ->
  result
(** [run program ~mem] executes from the entry block until [Return],
    mutating [mem].  Symbol RF slots start at zero, matching the
    reference interpreter.  Defaults: [mem_ports = 8],
    [max_blocks = 1_000_000], [rf_faults = []].  Raises {!Sim_error} on a
    malformed program (missing condition, out-of-range memory access,
    write conflict, runaway loop); raises [Invalid_argument] if an
    [rf_fault] names a tile or register outside the fabric. *)

val total_activity : result -> activity
