(** Cycle-level simulator of the CGRA executing an assembled program.

    Tiles run lock-step through the context section of the current basic
    block; the global controller sequences blocks using the condition bit
    broadcast by [set_cond] instructions (Fig 1's control bits), adding
    one transition cycle per block.  Loads and stores reach the shared
    data memory through the logarithmic interconnect, modelled as
    [mem_ports] concurrent accesses per cycle — excess accesses stall the
    whole array (the paper's global stall signal).

    Register-file semantics: writes land at the end of a cycle, reads see
    the start-of-cycle state, matching the assembler's assumptions.  Two
    same-cycle writes to one (tile, register) have no defined winner in
    hardware; the simulator detects the conflict during the commit phase
    and raises {!Sim_error} ([Write_conflict]) instead of letting the
    pending-list order decide.

    Every structural check raises a typed {!error} carrying (tile, block,
    cycle) coordinates, so callers — in particular the fault-injection
    campaigns of [Cgra_verify] — can classify failures without parsing
    strings.  The simulator is fully defensive: a corrupted context word
    (out-of-range register, tile or CRF index) produces a typed error,
    never an [Invalid_argument] from an array access.

    The simulator also gathers the per-tile activity counters the energy
    model integrates. *)

type activity = {
  alu_ops : int;        (** non-memory operations executed *)
  mul_ops : int;        (** of which multiplies (costlier) *)
  mem_ops : int;        (** loads + stores issued *)
  moves : int;          (** routing moves and local copies *)
  fetches : int;        (** context words fetched (instructions + pnops) *)
  awake_cycles : int;   (** cycles not clock-gated (executing, not pnop) *)
}

(** Context-memory protection counters, present only on protected runs.
    [detected] counts every non-clean ECC verdict (corrections included);
    [corrected] the subset repaired in place, whether on the fetch path
    or by the scrubber.  [scrub_cycles] are background cycles (one word
    read each) that do not extend execution; [scrub_reads] and [written]
    are per tile, feeding the energy model's scrub-traffic and
    encode-on-write terms. *)
type ecc = {
  detected : int;
  corrected : int;
  scrub_cycles : int;
  scrub_reads : int array;   (** per tile *)
  written : int array;       (** per tile: context words encoded at load *)
}

type result = {
  cycles : int;            (** total, including stalls and transitions *)
  stall_cycles : int;
  blocks_executed : int;
  instructions : int;      (** instructions executed (pnops excluded) *)
  activity : activity array;  (** per tile *)
  ecc : ecc option;        (** [None] unless [run] was given [?protect] *)
}

(** Structured simulation errors.  [block] is the basic-block index of
    the executing section, [cycle] the 0-based cycle within it. *)
type error =
  | Crf_out_of_range of { tile : int; block : int; cycle : int; index : int; pool : int }
  | Rf_out_of_range of { tile : int; block : int; cycle : int; reg : int; rf_words : int }
  | Bad_tile of { tile : int; block : int; cycle : int; target : int; tiles : int }
  | Non_neighbour_read of
      { tile : int; block : int; cycle : int; from_tile : int; distance : int }
  | Mem_out_of_bounds of { tile : int; block : int; cycle : int; addr : int; words : int }
  | Bad_arity of
      { tile : int; block : int; cycle : int; opcode : Cgra_ir.Opcode.t; args : int }
  | Store_with_dst of { tile : int; block : int; cycle : int }
  | Cond_without_result of { tile : int; block : int; cycle : int }
  | Write_conflict of { tile : int; reg : int; block : int; cycle : int }
  | Missing_condition of { block : int }
  | Unexecuted_instructions of { tile : int; block : int; left : int }
  | Runaway of { max_blocks : int }
  | Uncorrectable_cm of { tile : int; word : int; block : int; cycle : int }
      (** ECC detected an uncorrectable context-memory error (double-bit
          under SECDED, any odd flip under parity) — the machine check *)
  | Undecodable_cm of { tile : int; word : int; block : int; cycle : int }
      (** a context word that escaped (or lacked) protection no longer
          decodes to any instruction *)

val error_to_string : error -> string

exception Sim_error of error
(** Also registered with [Printexc.register_printer], so an uncaught
    [Sim_error] still prints a readable message. *)

type rf_fault = {
  at_cycle : int;   (** global cycle (stalls and transitions included) *)
  fault_tile : int;
  fault_reg : int;
  xor_mask : int;   (** XORed into the register when the counter crosses *)
}
(** A register-file bit-upset for the fault-injection campaigns: when the
    global cycle counter crosses [at_cycle], [xor_mask] is XORed into
    [fault_reg] of [fault_tile]. *)

type upset = {
  up_tile : int;
  up_word : int;   (** index into the tile's context image *)
  up_bit : int;    (** 0..63: data bits only, so injection sites are
                       identical at every protection level *)
}
(** A context-memory bit-upset, applied to the stored image before
    execution starts (a configuration-time soft error). *)

type protect = {
  profile : Cgra_arch.Protection.profile;
  upsets : upset list;
  scrub_interval : int;
      (** global cycles between background scrub passes; [<= 0] disables
          scrubbing ({!Cgra_arch.Protection.default_scrub_interval} is
          the conventional value) *)
}
(** Context-memory protection for a run.  Every fetch goes through the
    ECC decoder against check bits computed from the pristine image
    (encode-on-write); single-bit errors are corrected in place under
    SECDED, uncorrectable ones raise {!Sim_error} [Uncorrectable_cm].
    The scrubber additionally sweeps all protected words every
    [scrub_interval] cycles in the background. *)

val run :
  ?mem_ports:int ->
  ?max_blocks:int ->
  ?rf_faults:rf_fault list ->
  ?protect:protect ->
  Cgra_asm.Assemble.program ->
  mem:int array ->
  result
(** [run program ~mem] executes from the entry block until [Return],
    mutating [mem].  Symbol RF slots start at zero, matching the
    reference interpreter.  Defaults: [mem_ports = 8],
    [max_blocks = 1_000_000], [rf_faults = []], no protection.  Raises
    {!Sim_error} on a malformed program (missing condition, out-of-range
    memory access, write conflict, runaway loop) and on uncorrectable or
    undecodable context words under [?protect]; raises
    [Invalid_argument] if an [rf_fault] or [upset] names a site outside
    the fabric.  Without [?protect] the simulation is bit-for-bit the
    pre-existing unprotected path ([result.ecc = None]). *)

val total_activity : result -> activity
