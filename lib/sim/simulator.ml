module Isa = Cgra_arch.Isa
module Cgra = Cgra_arch.Cgra
module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode
module Asm = Cgra_asm.Assemble

type activity = {
  alu_ops : int;
  mul_ops : int;
  mem_ops : int;
  moves : int;
  fetches : int;
  awake_cycles : int;
}

let zero_activity =
  { alu_ops = 0; mul_ops = 0; mem_ops = 0; moves = 0; fetches = 0; awake_cycles = 0 }

(* Context-memory protection counters (protected runs only).  [detected]
   counts every non-clean ECC verdict, corrections included; [corrected]
   the subset repaired in place (fetch path and scrub alike);
   [scrub_cycles] the background cycles the scrubber spent scanning
   (one word read each); [scrub_reads] and [written] are per tile, for
   the energy model's scrub-traffic and encode-on-write terms. *)
type ecc = {
  detected : int;
  corrected : int;
  scrub_cycles : int;
  scrub_reads : int array;
  written : int array;
}

type result = {
  cycles : int;
  stall_cycles : int;
  blocks_executed : int;
  instructions : int;
  activity : activity array;
  ecc : ecc option;
}

type error =
  | Crf_out_of_range of { tile : int; block : int; cycle : int; index : int; pool : int }
  | Rf_out_of_range of { tile : int; block : int; cycle : int; reg : int; rf_words : int }
  | Bad_tile of { tile : int; block : int; cycle : int; target : int; tiles : int }
  | Non_neighbour_read of
      { tile : int; block : int; cycle : int; from_tile : int; distance : int }
  | Mem_out_of_bounds of { tile : int; block : int; cycle : int; addr : int; words : int }
  | Bad_arity of { tile : int; block : int; cycle : int; opcode : Opcode.t; args : int }
  | Store_with_dst of { tile : int; block : int; cycle : int }
  | Cond_without_result of { tile : int; block : int; cycle : int }
  | Write_conflict of { tile : int; reg : int; block : int; cycle : int }
  | Missing_condition of { block : int }
  | Unexecuted_instructions of { tile : int; block : int; left : int }
  | Runaway of { max_blocks : int }
  | Uncorrectable_cm of { tile : int; word : int; block : int; cycle : int }
  | Undecodable_cm of { tile : int; word : int; block : int; cycle : int }

let error_to_string = function
  | Crf_out_of_range { tile; block; cycle; index; pool } ->
    Printf.sprintf "tile %d b%d@%d: CRF index %d out of range (pool %d)" tile block
      cycle index pool
  | Rf_out_of_range { tile; block; cycle; reg; rf_words } ->
    Printf.sprintf "tile %d b%d@%d: RF slot %d out of range (rf_words %d)" tile block
      cycle reg rf_words
  | Bad_tile { tile; block; cycle; target; tiles } ->
    Printf.sprintf "tile %d b%d@%d: references tile %d outside the array (%d tiles)"
      tile block cycle target tiles
  | Non_neighbour_read { tile; block; cycle; from_tile; distance } ->
    Printf.sprintf "tile %d b%d@%d: reads non-neighbour tile %d (distance %d)" tile
      block cycle from_tile distance
  | Mem_out_of_bounds { tile; block; cycle; addr; words } ->
    Printf.sprintf "tile %d b%d@%d: memory access out of bounds: %d (mem %d words)"
      tile block cycle addr words
  | Bad_arity { tile; block; cycle; opcode; args } ->
    Printf.sprintf "tile %d b%d@%d: %s with wrong arity (%d args)" tile block cycle
      (Opcode.to_string opcode) args
  | Store_with_dst { tile; block; cycle } ->
    Printf.sprintf "tile %d b%d@%d: store with a destination" tile block cycle
  | Cond_without_result { tile; block; cycle } ->
    Printf.sprintf "tile %d b%d@%d: set_cond on an instruction without result" tile
      block cycle
  | Write_conflict { tile; reg; block; cycle } ->
    Printf.sprintf "tile %d b%d@%d: two same-cycle writes to RF slot %d" tile block
      cycle reg
  | Missing_condition { block } ->
    Printf.sprintf "block %d: branch executed but no condition was set" block
  | Unexecuted_instructions { tile; block; left } ->
    Printf.sprintf "tile %d section b%d: %d unexecuted instructions" tile block left
  | Runaway { max_blocks } ->
    Printf.sprintf "runaway execution (max_blocks = %d)" max_blocks
  | Uncorrectable_cm { tile; word; block; cycle } ->
    Printf.sprintf
      "tile %d b%d@%d: uncorrectable context-memory error at word %d" tile
      block cycle word
  | Undecodable_cm { tile; word; block; cycle } ->
    Printf.sprintf "tile %d b%d@%d: undecodable context word %d" tile block
      cycle word

exception Sim_error of error

let () =
  Printexc.register_printer (function
    | Sim_error e -> Some (Printf.sprintf "Sim_error (%s)" (error_to_string e))
    | _ -> None)

let fail e = raise (Sim_error e)

type rf_fault = { at_cycle : int; fault_tile : int; fault_reg : int; xor_mask : int }

type upset = { up_tile : int; up_word : int; up_bit : int }

type protect = {
  profile : Cgra_arch.Protection.profile;
  upsets : upset list;
  scrub_interval : int;
}

module P = Cgra_arch.Protection
module Ecc = Cgra_asm.Ecc

(* Per-tile execution cursor within a section: remaining pnop cycles and
   the instruction stream. *)
type cursor = { mutable stream : Isa.instr list; mutable sleep : int }

(* Word-indexed cursor for protected runs, which fetch from the (possibly
   upset) stored context image instead of the pristine instruction list. *)
type wcursor = { mutable widx : int; wlimit : int; mutable wsleep : int }

(* Protection-path state.  [stored] is the context image after upsets,
   repaired in place by fetch-path correction and scrubbing; [checks] are
   the write-time check bits from the pristine image. *)
type pstate = {
  kindof : P.kind array;
  checks : int array array;
  stored : int64 array array;
  bases : int array array;  (* word offset of each section, per tile *)
  mutable p_detected : int;
  mutable p_corrected : int;
  mutable p_scrub_cycles : int;
  p_scrub_reads : int array;
  p_written : int array;
  interval : int;
  mutable next_scrub : int;
}

type tstate = {
  rf : int array;
  mutable act : activity;
}

let run ?(mem_ports = 8) ?(max_blocks = 1_000_000) ?(rf_faults = []) ?protect
    (p : Asm.program) ~mem =
  let m = p.Asm.mapping in
  let cgra = m.Cgra_core.Mapping.cgra in
  let cdfg = m.Cgra_core.Mapping.cdfg in
  let nt = Cgra.tile_count cgra in
  List.iter
    (fun f ->
      if f.fault_tile < 0 || f.fault_tile >= nt then
        invalid_arg "Simulator.run: rf_fault tile out of range";
      if f.fault_reg < 0 || f.fault_reg >= cgra.Cgra.rf_words then
        invalid_arg "Simulator.run: rf_fault register out of range")
    rf_faults;
  (* Protected runs fetch through the ECC decoder from a stored image that
     upsets may have corrupted; unprotected runs take the pre-existing
     path untouched. *)
  let prot =
    match protect with
    | None -> None
    | Some pr ->
      let kindof =
        Array.init nt (fun t ->
            P.for_cm pr.profile ~cm_words:(Cgra.base_cm cgra t))
      in
      let images = Array.init nt (fun t -> Asm.encode_tile p.Asm.tiles.(t)) in
      let checks =
        Array.init nt (fun t ->
            Array.map (Ecc.check_bits kindof.(t)) images.(t))
      in
      let stored = Array.map Array.copy images in
      List.iter
        (fun u ->
          if u.up_tile < 0 || u.up_tile >= nt then
            invalid_arg "Simulator.run: upset tile out of range";
          if u.up_word < 0 || u.up_word >= Array.length stored.(u.up_tile) then
            invalid_arg "Simulator.run: upset word out of range";
          if u.up_bit < 0 || u.up_bit > 63 then
            invalid_arg "Simulator.run: upset bit out of range";
          stored.(u.up_tile).(u.up_word) <-
            Int64.logxor
              stored.(u.up_tile).(u.up_word)
              (Int64.shift_left 1L u.up_bit))
        pr.upsets;
      let bases =
        Array.init nt (fun t ->
            let secs = p.Asm.tiles.(t).Asm.sections in
            let b = Array.make (Array.length secs) 0 in
            let acc = ref 0 in
            Array.iteri
              (fun i sec ->
                b.(i) <- !acc;
                acc := !acc + List.length sec)
              secs;
            b)
      in
      Some
        {
          kindof;
          checks;
          stored;
          bases;
          p_detected = 0;
          p_corrected = 0;
          p_scrub_cycles = 0;
          p_scrub_reads = Array.make nt 0;
          p_written = Array.map Array.length images;
          interval = pr.scrub_interval;
          next_scrub =
            (if pr.scrub_interval > 0 then pr.scrub_interval else max_int);
        }
  in
  let tstates =
    Array.init nt (fun _ ->
        { rf = Array.make cgra.Cgra.rf_words 0; act = zero_activity })
  in
  let cycles = ref 0 and stalls = ref 0 and blocks = ref 0 and instrs = ref 0 in
  (* The fault-injection hook: when the global cycle counter crosses a
     fault's [at_cycle] (stall and transition cycles included), XOR the
     mask into the target register.  Deterministic and order-independent:
     faults are applied in list order once per crossing. *)
  let apply_faults lo hi =
    List.iter
      (fun f ->
        if f.at_cycle >= lo && f.at_cycle < hi then
          let rf = tstates.(f.fault_tile).rf in
          rf.(f.fault_reg) <- Opcode.wrap32 (rf.(f.fault_reg) lxor f.xor_mask))
      rf_faults
  in
  let check_tile t ~block ~cycle target =
    if target < 0 || target >= nt then
      fail (Bad_tile { tile = t; block; cycle; target; tiles = nt })
  in
  let check_reg t ~block ~cycle r =
    if r < 0 || r >= cgra.Cgra.rf_words then
      fail (Rf_out_of_range { tile = t; block; cycle; reg = r; rf_words = cgra.Cgra.rf_words })
  in
  let src_value t ~block ~cycle = function
    | Isa.Rf r ->
      check_reg t ~block ~cycle r;
      tstates.(t).rf.(r)
    | Isa.Crf c ->
      let crf = p.Asm.tiles.(t).Asm.crf in
      if c < 0 || c >= Array.length crf then
        fail (Crf_out_of_range { tile = t; block; cycle; index = c; pool = Array.length crf })
      else crf.(c)
    | Isa.Nbr (t', r) ->
      (* neighbour-mux read: start-of-cycle RF state of an adjacent tile *)
      check_tile t ~block ~cycle t';
      let d = Cgra.distance cgra t t' in
      if d > 1 then
        fail (Non_neighbour_read { tile = t; block; cycle; from_tile = t'; distance = d });
      check_reg t ~block ~cycle r;
      tstates.(t').rf.(r)
  in
  let cond = ref None in
  (* Pending register writes applied at end of cycle (two-phase update). *)
  let pending : (int * int * int) list ref = ref [] in
  let write tile reg v = pending := (tile, reg, v) :: !pending in
  let commit ~block ~cycle =
    (* Same-cycle writes to one (tile, reg) have no defined winner in the
       hardware; surface the conflict instead of letting list order pick. *)
    let rec go committed = function
      | [] -> ()
      | (t, r, v) :: rest ->
        if List.exists (fun (t', r') -> t = t' && r = r') committed then
          fail (Write_conflict { tile = t; reg = r; block; cycle });
        tstates.(t).rf.(r) <- Opcode.wrap32 v;
        go ((t, r) :: committed) rest
    in
    go [] !pending;
    pending := []
  in
  let mem_check t ~block ~cycle addr =
    if addr < 0 || addr >= Array.length mem then
      fail (Mem_out_of_bounds { tile = t; block; cycle; addr; words = Array.length mem })
  in
  let bump t f = tstates.(t).act <- f tstates.(t).act in
  let exec_instr t ~block ~cycle instr =
    incr instrs;
    bump t (fun a -> { a with fetches = a.fetches + 1; awake_cycles = a.awake_cycles + 1 });
    match instr with
    | Isa.Ipnop _ -> assert false
    | Isa.Iop { opcode; srcs; dst; set_cond } ->
      let args = List.map (src_value t ~block ~cycle) srcs in
      let result =
        match opcode, args with
        | Opcode.Load, [ addr ] ->
          mem_check t ~block ~cycle addr;
          bump t (fun a -> { a with mem_ops = a.mem_ops + 1 });
          Some mem.(addr)
        | Opcode.Store, [ addr; v ] ->
          mem_check t ~block ~cycle addr;
          bump t (fun a -> { a with mem_ops = a.mem_ops + 1 });
          mem.(addr) <- v;
          None
        | (Opcode.Load | Opcode.Store), args ->
          fail (Bad_arity { tile = t; block; cycle; opcode; args = List.length args })
        | op, args ->
          if List.length args <> Opcode.arity op then
            fail (Bad_arity { tile = t; block; cycle; opcode = op; args = List.length args });
          bump t (fun a ->
              { a with
                alu_ops = a.alu_ops + 1;
                mul_ops = (a.mul_ops + if op = Opcode.Mul then 1 else 0) });
          Some (Opcode.eval op args)
      in
      (match result, dst with
       | Some v, Some d -> check_reg t ~block ~cycle d; write t d v
       | Some _, None -> ()
       | None, Some _ -> fail (Store_with_dst { tile = t; block; cycle })
       | None, None -> ());
      if set_cond then (
        match result with
        | Some v -> cond := Some (v <> 0)
        | None -> fail (Cond_without_result { tile = t; block; cycle }))
    | Isa.Imov { from_tile; from_slot; dst } ->
      bump t (fun a -> { a with moves = a.moves + 1 });
      check_tile t ~block ~cycle from_tile;
      let d = Cgra.distance cgra t from_tile in
      if d > 1 then
        fail (Non_neighbour_read { tile = t; block; cycle; from_tile; distance = d });
      check_reg t ~block ~cycle from_slot;
      check_reg t ~block ~cycle dst;
      let v = tstates.(from_tile).rf.(from_slot) in
      write t dst v
    | Isa.Icopy { src; dst; set_cond } ->
      bump t (fun a -> { a with moves = a.moves + 1 });
      let v = src_value t ~block ~cycle src in
      check_reg t ~block ~cycle dst;
      write t dst v;
      if set_cond then cond := Some (v <> 0)
  in
  let run_section bi =
    let len = p.Asm.section_length.(bi) in
    let cursors =
      Array.init nt (fun t ->
          { stream = p.Asm.tiles.(t).Asm.sections.(bi); sleep = 0 })
    in
    cond := None;
    for cycle = 0 to len - 1 do
      (* Phase 1: execute this cycle's instruction on every tile. *)
      let mem_ops_before =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      Array.iteri
        (fun t cur ->
          if cur.sleep > 0 then cur.sleep <- cur.sleep - 1
          else
            match cur.stream with
            | [] -> () (* trailing sleep: clock-gated until section end *)
            | Isa.Ipnop n :: rest ->
              (* fetching the pnop word costs one access, then the tile
                 sleeps *)
              bump t (fun a -> { a with fetches = a.fetches + 1 });
              cur.sleep <- n - 1;
              cur.stream <- rest
            | instr :: rest ->
              exec_instr t ~block:bi ~cycle instr;
              cur.stream <- rest)
        cursors;
      (* Phase 2: commit register writes. *)
      commit ~block:bi ~cycle;
      (* Logarithmic-interconnect arbitration: accesses beyond the port
         count this cycle stall the whole array. *)
      let mem_ops_now =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      let this_cycle = mem_ops_now - mem_ops_before in
      let extra = if this_cycle = 0 then 0 else ((this_cycle - 1) / mem_ports) in
      stalls := !stalls + extra;
      let before = !cycles in
      cycles := before + 1 + extra;
      apply_faults before !cycles
    done;
    Array.iteri
      (fun t cur ->
        if cur.stream <> [] then
          fail (Unexecuted_instructions { tile = t; block = bi; left = List.length cur.stream }))
      cursors
  in
  (* Fetch one stored context word through the ECC decoder.  Corrections
     write back; uncorrectable verdicts abort the run with a typed error
     (the hardware's machine-check).  A clean-but-corrupted word (parity
     escape, even flip count) decodes and executes as whatever it now
     encodes — or fails typed if no longer decodable. *)
  let fetch_ps ps t w ~block ~cycle =
    let decode word =
      match Isa.decode word with
      | Ok i -> i
      | Error _ -> fail (Undecodable_cm { tile = t; word = w; block; cycle })
    in
    match ps.kindof.(t) with
    | P.Unprotected -> decode ps.stored.(t).(w)
    | k -> (
      match Ecc.decode k ~data:ps.stored.(t).(w) ~check:ps.checks.(t).(w) with
      | Ecc.Clean -> decode ps.stored.(t).(w)
      | Ecc.Corrected d ->
        ps.p_detected <- ps.p_detected + 1;
        ps.p_corrected <- ps.p_corrected + 1;
        ps.stored.(t).(w) <- d;
        decode d
      | Ecc.Detected ->
        ps.p_detected <- ps.p_detected + 1;
        fail (Uncorrectable_cm { tile = t; word = w; block; cycle }))
  in
  (* One scrubber pass: read every protected word, correct correctable
     errors in place, abort on detected-uncorrectable ones.  Scrub reads
     happen in the background (no execution cycles), but are counted for
     the energy model. *)
  let scrub_pass ps ~block ~cycle =
    Array.iteri
      (fun t words ->
        match ps.kindof.(t) with
        | P.Unprotected -> ()
        | k ->
          Array.iteri
            (fun w data ->
              ps.p_scrub_reads.(t) <- ps.p_scrub_reads.(t) + 1;
              ps.p_scrub_cycles <- ps.p_scrub_cycles + 1;
              match Ecc.decode k ~data ~check:ps.checks.(t).(w) with
              | Ecc.Clean -> ()
              | Ecc.Corrected d ->
                ps.p_detected <- ps.p_detected + 1;
                ps.p_corrected <- ps.p_corrected + 1;
                ps.stored.(t).(w) <- d
              | Ecc.Detected ->
                ps.p_detected <- ps.p_detected + 1;
                fail (Uncorrectable_cm { tile = t; word = w; block; cycle }))
            words)
      ps.stored
  in
  let maybe_scrub ~block ~cycle =
    match prot with
    | None -> ()
    | Some ps ->
      while !cycles >= ps.next_scrub do
        scrub_pass ps ~block ~cycle;
        ps.next_scrub <- ps.next_scrub + ps.interval
      done
  in
  (* The protected twin of [run_section]: same lock-step walk, but
     instructions come from [fetch_ps] over the stored image, so every
     fetch pays an ECC check and sees upsets that escaped correction. *)
  let run_section_protected ps bi =
    let len = p.Asm.section_length.(bi) in
    let cursors =
      Array.init nt (fun t ->
          let base = ps.bases.(t).(bi) in
          {
            widx = base;
            wlimit = base + List.length p.Asm.tiles.(t).Asm.sections.(bi);
            wsleep = 0;
          })
    in
    cond := None;
    for cycle = 0 to len - 1 do
      let mem_ops_before =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      Array.iteri
        (fun t cur ->
          if cur.wsleep > 0 then cur.wsleep <- cur.wsleep - 1
          else if cur.widx >= cur.wlimit then ()
          else
            match fetch_ps ps t cur.widx ~block:bi ~cycle with
            | Isa.Ipnop n ->
              bump t (fun a -> { a with fetches = a.fetches + 1 });
              cur.wsleep <- n - 1;
              cur.widx <- cur.widx + 1
            | instr ->
              exec_instr t ~block:bi ~cycle instr;
              cur.widx <- cur.widx + 1)
        cursors;
      commit ~block:bi ~cycle;
      let mem_ops_now =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      let this_cycle = mem_ops_now - mem_ops_before in
      let extra = if this_cycle = 0 then 0 else ((this_cycle - 1) / mem_ports) in
      stalls := !stalls + extra;
      let before = !cycles in
      cycles := before + 1 + extra;
      apply_faults before !cycles;
      maybe_scrub ~block:bi ~cycle
    done;
    Array.iteri
      (fun t cur ->
        if cur.widx < cur.wlimit then
          fail
            (Unexecuted_instructions
               { tile = t; block = bi; left = cur.wlimit - cur.widx }))
      cursors
  in
  let rec go bi =
    if !blocks >= max_blocks then fail (Runaway { max_blocks });
    incr blocks;
    (match prot with
     | None -> run_section bi
     | Some ps -> run_section_protected ps bi);
    (* Global controller: one transition cycle per block. *)
    let before = !cycles in
    incr cycles;
    apply_faults before !cycles;
    maybe_scrub ~block:bi ~cycle:0;
    match cdfg.Cdfg.blocks.(bi).Cdfg.terminator with
    | Cdfg.Jump next -> go next
    | Cdfg.Branch (_, bt, be) -> (
      match !cond with
      | None -> fail (Missing_condition { block = bi })
      | Some c -> go (if c then bt else be))
    | Cdfg.Return -> ()
  in
  go cdfg.Cdfg.entry;
  {
    cycles = !cycles;
    stall_cycles = !stalls;
    blocks_executed = !blocks;
    instructions = !instrs;
    activity = Array.map (fun ts -> ts.act) tstates;
    ecc =
      (match prot with
       | None -> None
       | Some ps ->
         Some
           {
             detected = ps.p_detected;
             corrected = ps.p_corrected;
             scrub_cycles = ps.p_scrub_cycles;
             scrub_reads = ps.p_scrub_reads;
             written = ps.p_written;
           });
  }

let total_activity r =
  Array.fold_left
    (fun acc a ->
      {
        alu_ops = acc.alu_ops + a.alu_ops;
        mul_ops = acc.mul_ops + a.mul_ops;
        mem_ops = acc.mem_ops + a.mem_ops;
        moves = acc.moves + a.moves;
        fetches = acc.fetches + a.fetches;
        awake_cycles = acc.awake_cycles + a.awake_cycles;
      })
    zero_activity r.activity
