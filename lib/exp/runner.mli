(** Shared machinery of the experiment harness: runs (kernel x
    configuration x flow) cells through the full tool-chain — mapping,
    assembly, cycle-level simulation with functional check against the
    golden model — and memoizes the results so every figure reuses them.

    The memo cache is thread-safe: {!run_of} and {!cpu_of} may be called
    from any number of domains concurrently (e.g. via {!warm}), and each
    cell is computed exactly once — concurrent requests for an in-flight
    cell block until the producing domain publishes it.

    Determinism: every cell's stochastic search runs on its own split of
    the SplitMix64 stream, keyed by (kernel, configuration, flow), so cell
    results are independent of evaluation order and of the number of
    domains — all artifacts are byte-identical at any [--jobs] value. *)

exception Golden_mismatch of { kernel : string; target : string }
(** A produced mapping simulated to a memory image different from the
    golden model ([target] is ["<config>/<flow>"] or ["cpu"]) — a tool
    bug; the harness refuses to report numbers from it.  Registered with
    [Printexc.register_printer]. *)

exception
  Invalid_artifact of { kernel : string; target : string; violations : string list }
(** The independent [Cgra_verify] validator found violations in a
    memoised artifact — likewise a tool bug, likewise cached and
    re-raised to every consumer. *)

(** Thread-safe single-flight memoisation, the machinery under {!run_of}
    and {!cpu_of}.  Exposed so the exception-safety contract is testable
    in isolation. *)
module Memo : sig
  type ('k, 'v) t

  val create : int -> ('k, 'v) t
  (** [create n] is an empty memo with initial capacity [n]. *)

  val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** [get m key compute] returns the cached value for [key], computing it
      at most once no matter how many domains ask concurrently (waiters
      block until the claiming domain publishes).  A [compute] that raises
      publishes a cached failure: the exception is re-raised — with its
      original backtrace — to the computing caller and to {e every}
      past-and-future waiter of the key.  The claim is exception-safe
      ([Fun.protect]): an exception that cannot be cached (asynchronous
      interrupt between claim and publish) clears the slot instead of
      leaving a stale [Computing] marker, so the key recomputes rather
      than poisoning every later lookup. *)

  val computed : ('k, 'v) t -> int
  (** Computations claimed (not served from cache) since creation or the
      last {!reset} — failed computes included. *)

  val forget : ('k, 'v) t -> 'k -> unit
  (** Drop the cached value (or cached failure) for one key, so the next
      {!get} recomputes it.  An in-flight [Computing] slot is left
      untouched — removing it would strand the producer's publish and
      its waiters.  The seam the daemon uses to keep deadline-shaped
      outcomes ([Timed_out]) out of the permanent single-flight cache. *)

  val reset : ('k, 'v) t -> unit
  (** Drop all entries and zero {!computed}.  Safe to call while computes
      are in flight: the reset bumps an internal generation counter, so a
      pre-reset compute that later publishes (a value, a cached failure,
      or the async-exception slot clear) is discarded instead of reviving
      a stale — possibly poisoned — entry in the cleared table, and
      waiters blocked on pre-reset in-flight slots are released to
      re-claim their keys fresh. *)
end

type flow_kind = Basic | With_acmap | With_ecmap | Full

val flow_kinds : flow_kind list
val flow_label : flow_kind -> string
val flow_config : flow_kind -> Cgra_core.Flow_config.t

type opt_mode =
  | Default    (** the seed behaviour: inline-optimized lowering *)
  | Raw        (** naive lowering, no optimization at all *)
  | Optimized  (** naive lowering + the [cgra_opt] pipeline *)
(** Which CDFG a cell maps.  [Raw] and [Optimized] cells carry their mode
    in the cache key and in the RNG cell key, so they coexist with
    (and never perturb) the byte-identical [Default] artifacts. *)

val opt_mode_label : opt_mode -> string
(** [""], ["+RAW"], ["+OPT"]. *)

val set_opt_mode : opt_mode -> unit
(** Set the process-wide default mode used when {!run_of} is called
    without [?opt] — how the bench [--opt] flag switches whole artifacts
    to optimized kernels.  Call before any cells are computed. *)

val opt_mode : unit -> opt_mode

val cell_flow_config :
  ?opt:opt_mode ->
  string ->
  Cgra_arch.Config.name ->
  flow_kind ->
  Cgra_core.Flow_config.t
(** [cell_flow_config slug config flow] is {!flow_config} with the seed
    replaced by the cell-keyed split described above (and, for
    [~opt:Optimized], the [optimize] knob set).  Exposed so tests can
    reproduce a single cell outside the cache. *)

type run = {
  mapping : Cgra_core.Mapping.t;
  sim : Cgra_sim.Simulator.result;
  cycles : int;
  energy : Cgra_power.Energy.breakdown;
  compile_seconds : float;
      (** wall-clock mapping time, monotonic clock; host-dependent *)
  compile_work : int;
      (** deterministic search effort (binding attempts) — use this, not
          [compile_seconds], for anything that must reproduce exactly *)
  retries_used : int;
      (** re-seeded flow retries consumed before the mapping succeeded *)
  search : Cgra_core.Search.block_stats list;
      (** per-block search telemetry of the successful attempt, traversal
          order; deterministic except for the [wall_seconds] field *)
  opt_stats : Cgra_opt.Pipeline.report option;
      (** pass statistics when the cell ran in [Optimized] mode *)
}

type cell =
  | Mapped of run
  | Unmappable of {
      reason : string;
      compile_seconds : float;
      compile_work : int;
    }

val run_of :
  ?opt:opt_mode ->
  Cgra_kernels.Kernel_def.t ->
  Cgra_arch.Config.name ->
  flow_kind ->
  cell
(** Memoized; safe to call concurrently.  [opt] defaults to the
    process-wide mode ({!set_opt_mode}).  Every computed artifact is
    re-checked by the independent [Cgra_verify] validator (raising
    {!Invalid_artifact} on a violation) and simulated against the golden
    model (raising {!Golden_mismatch} on disagreement) — either failure
    is cached and re-raised to every consumer.  [Optimized] cells are
    verified three ways: differentially inside the pipeline, by the
    validator, and end-to-end here. *)

type cpu_run = {
  cpu_sim : Cgra_cpu.Cpu_sim.result;
  cpu_energy : Cgra_power.Energy.breakdown;
}

val cpu_of : Cgra_kernels.Kernel_def.t -> cpu_run
(** Memoized; also checked against the golden model. *)

val compile_seconds_of : cell -> float
val compile_work_of : cell -> int
val kernels : Cgra_kernels.Kernel_def.t list

val warm : ?jobs:int -> unit -> unit
(** Evaluate the whole grid — every (kernel, configuration, flow) cell
    plus the CPU baselines — with up to [jobs] domains (default
    {!Cgra_util.Pool.default_jobs}), filling the cache so subsequent
    figure rendering is pure table lookup.  Byte-identical artifacts at
    any [jobs]. *)

val compute_count : unit -> int
(** Number of cells actually computed (not served from cache) since the
    last {!clear_caches} (or process start), across both caches.  For
    tests: a concurrent storm of [run_of] calls on one key must raise
    this by exactly 1. *)

val clear_caches : unit -> unit
(** Drop both caches and reset {!compute_count} to 0 — the code path the
    daemon's [clear] admin request shares.  Safe under concurrent
    computes: in-flight cells publish into the {e old} generation and are
    discarded (see {!Memo.reset}), so a cleared cache never revives a
    poisoned computation. *)

type artifact_backend =
  opt_mode ->
  Cgra_kernels.Kernel_def.t ->
  Cgra_arch.Config.name ->
  flow_kind ->
  run ->
  unit
(** A pluggable artifact store: called once per {e computed} (never
    cache-served) [Mapped] cell, after validation and the golden check.
    [Cgra_serve] installs a backend that serializes the cell to
    deterministic artifact bytes and writes them into the daemon's
    content-addressed on-disk store, so the bench harness and [cgra_mapd]
    share one cache.  Backend exceptions are reported to stderr and
    swallowed — publishing is best-effort and must never fail the
    harness. *)

val set_artifact_backend : artifact_backend option -> unit
(** Install (or with [None] remove) the backend.  Thread-safe. *)
