(** Regeneration of every table and figure of the paper's evaluation.

    Each function runs (or reuses) the needed tool-chain cells and renders
    a plain-text artifact shaped like the paper's: same rows, same series,
    same normalisations.  [run_all] concatenates everything in paper
    order. *)

val table1 : unit -> string
(** Table I — the four context-memory configurations. *)

val fig2 : unit -> string
(** Fig 2 — the motivation: per-tile context-word usage of the basic
    (context-unaware) mapping of matrix multiplication on HOM64, showing
    the hot load-store tiles and the waste elsewhere. *)

val fig5 : unit -> string
(** Fig 5 — per-basic-block pnop and move counts of the FFT kernel under
    the weighted traversal, normalised to the forward traversal. *)

val fig6 : unit -> string
(** Fig 6 — latency per kernel and configuration, basic + ACMAP,
    normalised to the basic mapping on HOM64; 0 marks "no mapping". *)

val fig7 : unit -> string
(** Fig 7 — same with basic + ACMAP + ECMAP. *)

val fig8 : unit -> string
(** Fig 8 — same with the full flow (+ CAB). *)

val fig9 : unit -> string
(** Fig 9 — average compilation time after each added step, normalised to
    the basic flow. *)

val fig10 : unit -> string
(** Fig 10 — execution cycles of basic@HOM64 and context-aware@HET1/HET2
    normalised to the CPU, with the speed-up summary. *)

val fig11 : unit -> string
(** Fig 11 — area breakdown of HOM64/HET1/HET2 against the CPU system. *)

val table2 : unit -> string
(** Table II — energy in uJ for CPU / basic@HOM64 / aware@HET1 /
    aware@HET2 with gain factors and the summary statistics the abstract
    quotes. *)

val opt_report : unit -> string
(** Not in the paper: what the [cgra_opt] pipeline recovers from the
    naive lowering, per kernel — per-pass node statistics, then context
    usage / latency / binding attempts / energy of the raw vs optimized
    CDFG under the basic flow on all four configurations ("-" marks
    configurations the raw kernel does not even fit). *)

val search_report : unit -> string
(** Not in the paper: per-block beam-search telemetry of the full
    context-aware flow on HET2 — rounds, binding attempts, children
    generated, routing failures, ACMAP/ECMAP kills, stochastic-pruning
    survivors, finalisation failures, re-computations and population
    peak, plus per-kernel work and retry totals.  Deterministic effort
    counts only (no wall-clock), so it reproduces byte-for-byte on any
    host at any [--jobs]. *)

exception Artifact_error of { artifact : string; reason : string }
(** An artifact's precondition does not hold (e.g. a kernel the paper maps
    refuses to map) — a harness bug.  Registered with
    [Printexc.register_printer]. *)

val set_fault_trials : int -> unit
(** Trials per kernel used by {!fault_report} (default 120; clamped to
    >= 1) — how the bench [--trials] flag sizes the campaigns.  Call
    before rendering. *)

val set_protection : Cgra_arch.Protection.profile -> unit
(** Context-memory protection profile used by {!fault_report} (default
    {!Cgra_arch.Protection.none}) — the bench [--protect] flag.  Call
    before rendering; with the default, every artifact is byte-identical
    to the unprotected tool. *)

val fault_report : unit -> string
(** Not in the paper: per-kernel single-bit fault-injection campaigns
    ([Cgra_verify.Fault]) over the full context-aware flow on HET2 —
    injection counts per target (context memory, constant pool, register
    file) and outcome counts (masked / wrong-output / crash / hang).
    Under {!set_protection}, campaigns run through the ECC fetch path and
    the table gains detected / corrected columns; with protection off the
    output is byte-identical to the historical report.
    Deterministic: per-trial keyed RNG splits make the table byte-identical
    at any [--jobs] value and across reruns with the same seed. *)

val protection_report : unit -> string
(** Not in the paper: the pay-for-protection grid.  Per (kernel, Table-I
    configuration) cell of the full context-aware flow, one CM-only
    single-bit injection campaign per protection level (none / parity /
    secded) over the {e same} upset sites, tabulating masked / detected /
    corrected / escaped counts and the fault-free energy overhead of each
    level vs the unprotected run.  Uses {!set_fault_trials} for the
    per-cell trial count.  Deterministic at any [--jobs] value. *)

val set_repair_trials : int -> unit
(** Trials per (kernel, configuration) cell used by {!repair_report}
    (default 30; clamped to >= 1) — the bench [--trials] flag. *)

val set_repair_faults : int -> unit
(** Random permanent faults injected per trial (default 2; clamped to
    >= 1) — the bench [--faults] flag. *)

val set_repair_mode : Cgra_verify.Repair.mode -> unit
(** Remap strategy used by {!repair_report} (default
    [Cgra_verify.Repair.Full]) — the bench [--mode full|incremental]
    flag. *)

val repair_report : unit -> string
(** Not in the paper: permanent-fault survivability table over the
    [Cgra_verify.Repair] detect → diagnose → remap loop, per kernel and
    Table-I configuration under the full context-aware flow — counts of
    unaffected / repaired (with the incremental-remap subset in the
    [inc] column) / gave-up trials, the survivability fraction, and the
    mean cycle/energy overhead of the repaired mappings vs the pristine
    ones, plus one example repair trace.  Deterministic at any [--jobs]
    value; per-cell campaign wall-clock (host-dependent) is printed to
    stderr, never into the returned report. *)

val set_optimality_quick : bool -> unit
(** Shrink the {!optimality_report} grid to two kernels (FIR, FFT) on
    HOM64/HOM32 — the bench [--quick] flag, sized for CI smoke runs.
    Call before rendering. *)

val optimality_report : unit -> string
(** Not in the paper: the exact SAT backend ([Cgra_core.Exact]) re-maps
    every (kernel, configuration) cell of the full context-aware flow
    and the table lays its total context words, simulated cycles and
    energy next to the beam search's.  Cells the exact backend proves
    infeasible read "UNSAT under encoding" — a proof that no move-free
    mapping exists at any schedule length (DESIGN.md §5g), which the
    beam may still beat with move chains.  Every exact mapping is
    re-checked by the validator and against the golden model before it
    is tabulated.  Deterministic at any [--jobs] value. *)

val run_all : unit -> string
(** The paper set ({!artifacts}), concatenated in paper order. *)

val artifacts : (string * (unit -> string)) list
(** Name-to-renderer table of the paper artifacts, in {!run_all} order —
    the single source of truth for the drivers' artifact lookup. *)

val extra_artifacts : (string * (unit -> string)) list
(** Beyond-the-paper artifacts ({!opt_report}, {!search_report},
    {!fault_report}, {!protection_report}, {!repair_report},
    {!optimality_report}); not part of [run_all] so the seed output stays
    byte-identical. *)

val all_artifacts : (string * (unit -> string)) list
val artifact_names : string list
