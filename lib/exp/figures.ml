module K = Cgra_kernels.Kernel_def
module Config = Cgra_arch.Config
module M = Cgra_core.Mapping
module T = Cgra_util.Text_table

let configs = Config.all

(* An artifact whose preconditions do not hold (e.g. a kernel the paper
   maps refuses to map) — a harness bug, reported as a typed error. *)
exception Artifact_error of { artifact : string; reason : string }

let () =
  Printexc.register_printer (function
    | Artifact_error { artifact; reason } ->
      Some (Printf.sprintf "Figures.Artifact_error (%s: %s)" artifact reason)
    | _ -> None)

let artifact_error artifact fmt =
  Printf.ksprintf (fun reason -> raise (Artifact_error { artifact; reason })) fmt

let table1 () =
  "Table I: context-memory configurations\n"
  ^ T.render
      ~header:
        [ "Config"; "Load-store tiles"; "Tiles CM64"; "Tiles CM32";
          "Tiles CM16"; "Total" ]
      ~rows:(Config.table1_rows ())

(* ---- Fig 2: context usage of the context-unaware mapping ------------ *)

let fig2 () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "matm") in
  match Runner.run_of k Config.HOM64 Runner.Basic with
  | Runner.Unmappable u -> artifact_error "fig2" "basic matm must map: %s" u.reason
  | Runner.Mapped r ->
    let usage = M.tile_usage r.Runner.mapping in
    let series =
      Array.to_list
        (Array.mapi
           (fun t u ->
             let cap =
               (Config.cgra Config.HOM64).Cgra_arch.Cgra.tiles.(t).cm_words
             in
             ( Printf.sprintf "T%02d%s" t (if t < 8 then "*" else " "),
               100.0 *. float_of_int (M.usage_total u) /. float_of_int cap ))
           usage)
    in
    let used =
      Array.fold_left (fun acc u -> acc + M.usage_total u) 0 usage
    in
    "Fig 2: context-memory usage (%) of the basic mapping, MatM on HOM64\n"
    ^ T.bar_chart ~title:"per-tile usage (* = load-store tile)" series
    ^ Printf.sprintf
        "total: %d of 1024 words used — the distribution, not the total,\n\
         is what forces oversized context memories.\n"
        used

(* ---- Fig 5: traversal study on FFT ---------------------------------- *)

let per_block_moves_pnops (m : M.t) =
  Array.mapi
    (fun bi _ ->
      let usage = M.block_tile_usage m bi in
      Array.fold_left
        (fun (mv, pn) u -> (mv + u.M.moves, pn + u.M.pnops))
        (0, 0) usage)
    m.M.bbs

let fig5 () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fft") in
  let cdfg = K.cdfg k in
  let cgra = Config.cgra Config.HOM64 in
  let forward_cfg = Cgra_core.Flow_config.basic in
  let weighted_cfg =
    { forward_cfg with Cgra_core.Flow_config.traversal = Cgra_core.Flow_config.Weighted }
  in
  let map_with cfg =
    match Cgra_core.Flow.run ~config:cfg cgra cdfg with
    | Ok (m, _) -> m
    | Error f ->
      artifact_error "fig5" "FFT should map on HOM64: %s" f.Cgra_core.Flow.reason
  in
  let fwd = per_block_moves_pnops (map_with forward_cfg) in
  let wt = per_block_moves_pnops (map_with weighted_cfg) in
  let rows =
    List.init (Array.length fwd) (fun bi ->
        let mf, pf = fwd.(bi) and mw, pw = wt.(bi) in
        let ratio a b = if b = 0 then (if a = 0 then "1.00" else "-") else T.float_cell (float_of_int a /. float_of_int b) in
        [ cdfg.Cgra_ir.Cdfg.blocks.(bi).Cgra_ir.Cdfg.name;
          string_of_int mw; string_of_int mf; ratio mw mf;
          string_of_int pw; string_of_int pf; ratio pw pf ])
  in
  let total f arr = Array.fold_left (fun acc x -> acc + f x) 0 arr in
  let mv_w = total fst wt and mv_f = total fst fwd in
  let pn_w = total snd wt and pn_f = total snd fwd in
  let pct a b = 100.0 *. (1.0 -. (float_of_int a /. float_of_int (max 1 b))) in
  "Fig 5: FFT per-block moves and pnops, weighted traversal vs forward\n"
  ^ T.render
      ~header:
        [ "Block"; "moves(WT)"; "moves(fwd)"; "ratio"; "pnops(WT)";
          "pnops(fwd)"; "ratio" ]
      ~rows
  ^ Printf.sprintf
      "totals: moves %d vs %d (%.0f%% reduction), pnops %d vs %d (%.0f%% reduction)\n"
      mv_w mv_f (pct mv_w mv_f) pn_w pn_f (pct pn_w pn_f)

(* ---- Figs 6-8: latency sweeps --------------------------------------- *)

let baseline_cycles k =
  match Runner.run_of k Config.HOM64 Runner.Basic with
  | Runner.Mapped r -> r.Runner.cycles
  | Runner.Unmappable u ->
    artifact_error "fig6-8" "basic mapping must fit HOM64 for %s: %s" k.K.name
      u.reason

let latency_figure ~title ~flow () =
  let rows =
    List.map
      (fun k ->
        let base = float_of_int (baseline_cycles k) in
        let values =
          List.map
            (fun config ->
              match Runner.run_of k config flow with
              | Runner.Mapped r -> float_of_int r.Runner.cycles /. base
              | Runner.Unmappable _ -> 0.0)
            configs
        in
        (k.K.name, values))
      Runner.kernels
  in
  title ^ " (latency normalised to basic@HOM64; 0 = no mapping found)\n"
  ^ T.grouped_chart ~title:(Runner.flow_label flow)
      ~group_labels:(List.map Config.to_string configs)
      rows

let fig6 = latency_figure ~title:"Fig 6" ~flow:Runner.With_acmap
let fig7 = latency_figure ~title:"Fig 7" ~flow:Runner.With_ecmap
let fig8 = latency_figure ~title:"Fig 8" ~flow:Runner.Full

(* ---- Fig 9: compilation time ---------------------------------------- *)

(* Reported in deterministic search-effort units (binding attempts), not
   wall-clock seconds: effort is what the flow actually spends compile
   time on, and unlike seconds it is identical across hosts, system load
   and [--jobs] values — which keeps this artifact byte-reproducible.
   Measured wall-clock times are recorded in EXPERIMENTS.md. *)
let fig9 () =
  let mean_work flow =
    let samples =
      List.concat_map
        (fun k ->
          List.map
            (fun config ->
              float_of_int (Runner.compile_work_of (Runner.run_of k config flow)))
            configs)
        Runner.kernels
    in
    List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)
  in
  let base = mean_work Runner.Basic in
  let series =
    List.map
      (fun flow -> (Runner.flow_label flow, mean_work flow /. base))
      Runner.flow_kinds
  in
  Printf.sprintf
    "Fig 9: average compilation effort normalised to the basic flow\n%s(basic flow mean: %.0f binding attempts per kernel-configuration;\n effort is deterministic, so this figure reproduces byte-for-byte)\n"
    (T.bar_chart ~title:"compile-effort ratio" series)
    base

(* ---- Fig 10: execution time vs CPU ---------------------------------- *)

let fig10 () =
  let header =
    [ "Kernel"; "CPU cyc"; "HOM64 basic"; "norm"; "HET1 aware"; "norm";
      "HET2 aware"; "norm" ]
  in
  let speedups = ref [] in
  let rows =
    List.map
      (fun k ->
        let cpu = (Runner.cpu_of k).Runner.cpu_sim.Cgra_cpu.Cpu_sim.cycles in
        let cell config flow =
          match Runner.run_of k config flow with
          | Runner.Mapped r ->
            let norm = float_of_int r.Runner.cycles /. float_of_int cpu in
            if flow = Runner.Full then speedups := (1.0 /. norm) :: !speedups;
            (string_of_int r.Runner.cycles, T.float_cell norm)
          | Runner.Unmappable _ -> ("-", "-")
        in
        let b, bn = cell Config.HOM64 Runner.Basic in
        let h1, h1n = cell Config.HET1 Runner.Full in
        let h2, h2n = cell Config.HET2 Runner.Full in
        [ k.K.name; string_of_int cpu; b; bn; h1; h1n; h2; h2n ])
      Runner.kernels
  in
  let sp = !speedups in
  let avg = List.fold_left ( +. ) 0.0 sp /. float_of_int (List.length sp) in
  let mx = List.fold_left Float.max 0.0 sp in
  let mn = List.fold_left Float.min infinity sp in
  "Fig 10: execution time normalised to the or1k-class CPU\n"
  ^ T.render ~header ~rows
  ^ Printf.sprintf
      "context-aware speed-up vs CPU: average %.1fx, max %.1fx, min %.1fx\n"
      avg mx mn

(* ---- Fig 11: area ---------------------------------------------------- *)

let fig11 () =
  let module A = Cgra_power.Area in
  let cpu = A.cpu_breakdown () in
  let cpu_total = A.total cpu in
  let render_system name components =
    let rows =
      List.map
        (fun c -> [ c.A.label; Printf.sprintf "%.0f" c.A.um2 ])
        components
      @ [ [ "TOTAL";
            Printf.sprintf "%.0f (%.2fx CPU)" (A.total components)
              (A.total components /. cpu_total) ] ]
    in
    name ^ "\n" ^ T.render ~header:[ "Component"; "um^2" ] ~rows
  in
  "Fig 11: area comparison with the CPU system\n"
  ^ render_system "CPU system" cpu
  ^ String.concat ""
      (List.filter_map
         (fun cfg ->
           match cfg with
           | Config.HOM32 -> None (* as in the paper's figure *)
           | Config.HOM64 | Config.HET1 | Config.HET2 ->
             Some
               (render_system
                  ("CGRA " ^ Config.to_string cfg)
                  (A.cgra_breakdown (Config.cgra cfg))))
         configs)

(* ---- Table II: energy ------------------------------------------------ *)

let table2 () =
  let module E = Cgra_power.Energy in
  let gains_vs_basic = ref [] and gains_vs_cpu = ref [] in
  let rows =
    List.map
      (fun k ->
        let cpu_uj = E.to_uj (Runner.cpu_of k).Runner.cpu_energy.E.total_pj in
        let cgra config flow =
          match Runner.run_of k config flow with
          | Runner.Mapped r -> Some (E.to_uj r.Runner.energy.E.total_pj)
          | Runner.Unmappable _ -> None
        in
        let basic = cgra Config.HOM64 Runner.Basic in
        let het1 = cgra Config.HET1 Runner.Full in
        let het2 = cgra Config.HET2 Runner.Full in
        let cell v =
          match v with
          | None -> [ "-"; "-" ]
          | Some uj ->
            [ T.float_cell uj; Printf.sprintf "%.0fx" (cpu_uj /. uj) ]
        in
        (match basic, het1 with
         | Some b, Some h ->
           gains_vs_basic := (b /. h) :: !gains_vs_basic;
           gains_vs_cpu := (cpu_uj /. h) :: !gains_vs_cpu
         | _, _ -> ());
        (match basic, het2 with
         | Some b, Some h -> gains_vs_basic := (b /. h) :: !gains_vs_basic
         | _, _ -> ());
        [ k.K.name; T.float_cell cpu_uj ] @ cell basic @ cell het1 @ cell het2)
      Runner.kernels
  in
  let stats l =
    let n = float_of_int (List.length l) in
    ( List.fold_left ( +. ) 0.0 l /. n,
      List.fold_left Float.max 0.0 l,
      List.fold_left Float.min infinity l )
  in
  let avg_b, max_b, min_b = stats !gains_vs_basic in
  let avg_c, max_c, min_c = stats !gains_vs_cpu in
  "Table II: energy in uJ (gain factors vs the CPU)\n"
  ^ T.render
      ~header:
        [ "Kernel"; "CPU"; "HOM64 basic"; "gain"; "HET1 aware"; "gain";
          "HET2 aware"; "gain" ]
      ~rows
  ^ Printf.sprintf
      "context-aware vs basic mapping: average %.1fx (max %.1fx, min %.1fx)\n"
      avg_b max_b min_b
  ^ Printf.sprintf
      "context-aware vs CPU:           average %.0fx (max %.0fx, min %.0fx)\n"
      avg_c max_c min_c

(* ---- Opt report: the cgra_opt pipeline, statically and end-to-end ---- *)

(* Not part of the paper (the original flow compiled at -O3, so its
   mapper never saw unoptimized DFGs); this artifact quantifies what the
   [cgra_opt] pipeline recovers from the naive lowering.  Uses the basic
   mapping flow so the numbers isolate the optimizer, not the search. *)
let opt_report () =
  let module P = Cgra_opt.Pipeline in
  let module E = Cgra_power.Energy in
  (* static: pipeline on the naive lowering, per-pass statistics *)
  let static =
    List.map
      (fun k ->
        let raw = K.cdfg_raw k in
        let _, rep =
          P.run ~verify:(P.verifier_of_mems [ K.fresh_mem k ]) raw
        in
        (k, rep))
      Runner.kernels
  in
  let pass_names =
    List.map
      (fun (p : Cgra_opt.Passes.pass) -> p.Cgra_opt.Passes.name)
      Cgra_opt.Passes.all
  in
  let static_rows =
    List.map
      (fun (k, (rep : P.report)) ->
        let cut =
          100.0
          *. float_of_int (rep.P.nodes_before - rep.P.nodes_after)
          /. float_of_int (max 1 rep.P.nodes_before)
        in
        [ k.K.name;
          string_of_int rep.P.nodes_before;
          string_of_int rep.P.nodes_after;
          Printf.sprintf "-%.0f%%" cut;
          string_of_int rep.P.rounds ]
        @ List.map
            (fun (s : P.pass_stat) ->
              Printf.sprintf "%d+%d" s.P.removed s.P.rewritten)
            rep.P.per_pass)
      static
  in
  (* end-to-end: map the raw and the optimized CDFG with the basic flow *)
  let flow = Runner.Basic in
  let usage_of r =
    let usage = M.tile_usage r.Runner.mapping in
    let total = Array.fold_left (fun a u -> a + M.usage_total u) 0 usage in
    let peak = Array.fold_left (fun a u -> max a (M.usage_total u)) 0 usage in
    (total, peak)
  in
  let node_wins = ref 0 and ctx_wins = ref 0 in
  List.iter
    (fun (_, (rep : P.report)) ->
      if rep.P.nodes_after < rep.P.nodes_before then incr node_wins)
    static;
  let mapping_rows =
    List.concat_map
      (fun k ->
        let ctx_better = ref false in
        let rows =
          List.map
            (fun config ->
              let raw = Runner.run_of ~opt:Runner.Raw k config flow in
              let opt = Runner.run_of ~opt:Runner.Optimized k config flow in
              let pair f =
                match raw, opt with
                | Runner.Mapped r, Runner.Mapped o ->
                  let fr, fo = (f r, f o) in
                  [ fr; fo ]
                | Runner.Mapped r, Runner.Unmappable _ -> [ f r; "-" ]
                | Runner.Unmappable _, Runner.Mapped o -> [ "-"; f o ]
                | Runner.Unmappable _, Runner.Unmappable _ -> [ "-"; "-" ]
              in
              (match raw, opt with
               | Runner.Mapped r, Runner.Mapped o ->
                 if fst (usage_of o) < fst (usage_of r) then ctx_better := true
               | _, Runner.Mapped _ ->
                 (* raw does not even fit: the optimizer turned an
                    unmappable kernel into a mappable one *)
                 ctx_better := true
               | _, _ -> ());
              [ k.K.name; Config.to_string config ]
              @ pair (fun r -> string_of_int (fst (usage_of r)))
              @ pair (fun r -> string_of_int (snd (usage_of r)))
              @ pair (fun r -> string_of_int r.Runner.cycles)
              @ [ string_of_int (Runner.compile_work_of raw);
                  string_of_int (Runner.compile_work_of opt) ]
              @ pair (fun r -> T.float_cell (E.to_uj r.Runner.energy.E.total_pj)))
            configs
        in
        if !ctx_better then incr ctx_wins;
        rows)
      Runner.kernels
  in
  "Opt report: the cgra_opt pipeline on the naive lowering\n"
  ^ "per-pass statistics (removed+rewritten nodes, all rounds):\n"
  ^ T.render
      ~header:([ "Kernel"; "raw"; "opt"; "cut"; "rounds" ] @ pass_names)
      ~rows:static_rows
  ^ "\nend-to-end with the basic flow (raw vs optimized; - = no mapping):\n"
  ^ T.render
      ~header:
        [ "Kernel"; "Config"; "ctx"; "ctx'"; "peak"; "peak'"; "cyc"; "cyc'";
          "attempts"; "attempts'"; "uJ"; "uJ'" ]
      ~rows:mapping_rows
  ^ Printf.sprintf
      "node count reduced on %d/7 kernels; total context usage reduced on \
       %d/7 kernels\n\
       (every optimized mapping above passed the simulator-vs-interpreter \
       output check)\n"
      !node_wins !ctx_wins

(* ---- Search report: per-block telemetry of the mapper's beam search -- *)

(* Not part of the paper: an observability artifact over the full
   context-aware flow on HET2 (the headline configuration).  Every number
   is a deterministic search-effort count — identical across hosts, load
   and [--jobs] — so this report reproduces byte-for-byte; per-block
   wall-clock times are deliberately excluded (the [--trace] option of
   [cgra_map map] dumps them as JSONL for profiling). *)
let search_report () =
  let module S = Cgra_core.Search in
  let config = Config.HET2 and flow = Runner.Full in
  let num = string_of_int in
  let block_rows = ref [] and summary_rows = ref [] in
  List.iter
    (fun k ->
      match Runner.run_of k config flow with
      | Runner.Unmappable u ->
        summary_rows := [ k.K.name; "-"; "-"; "unmappable: " ^ u.reason ]
                        :: !summary_rows
      | Runner.Mapped r ->
        List.iteri
          (fun i (bs : S.block_stats) ->
            block_rows :=
              [ (if i = 0 then k.K.name else "");
                bs.S.block_name; num bs.S.rounds; num bs.S.attempts;
                num bs.S.children; num bs.S.route_failures;
                num bs.S.acmap_kills; num bs.S.ecmap_kills;
                num bs.S.prune_survivors; num bs.S.finalize_failures;
                num bs.S.recomputes; num bs.S.population_peak ]
              :: !block_rows)
          r.Runner.search;
        summary_rows :=
          [ k.K.name; num r.Runner.compile_work;
            num r.Runner.retries_used;
            num (List.length r.Runner.search) ]
          :: !summary_rows)
    Runner.kernels;
  let align = [ `L; `L; `R; `R; `R; `R; `R; `R; `R; `R; `R; `R ] in
  "Search report: beam-search telemetry, "
  ^ Runner.flow_label flow ^ " on " ^ Config.to_string config ^ "\n"
  ^ "per block (deterministic effort counts; reproduces byte-for-byte):\n"
  ^ T.render_aligned ~align
      ~header:
        [ "Kernel"; "Block"; "rounds"; "attempts"; "children"; "noroute";
          "acmap-"; "ecmap-"; "kept"; "fin-"; "recomp"; "peak" ]
      ~rows:(List.rev !block_rows)
  ^ "\nper kernel (work = binding attempts over all attempts incl. retries):\n"
  ^ T.render_aligned ~align:[ `L; `R; `R; `R ]
      ~header:[ "Kernel"; "work"; "retries"; "blocks" ]
      ~rows:(List.rev !summary_rows)
  ^ "columns: children = partial mappings generated by expansion; noroute = \
     binding\n\
     attempts with no usable operand route; acmap-/ecmap- = states removed \
     by the\n\
     approximate/exact context-memory filter; kept = population after \
     stochastic\n\
     pruning (summed over rounds); fin- = live-out placement failures; \
     peak =\n\
     widest child population of any round.\n"

(* ---- Fault report: single-bit injection campaigns -------------------- *)

(* Not part of the paper: the fault-tolerance experiment the [cgra_verify]
   layer enables.  Per kernel, [fault_trials] single-bit upsets are
   injected into the context memory image, the constant pools or live RF
   state of the full-flow HET2 mapping, and each outcome classified.
   Campaign trials draw from per-trial keyed RNG splits, so the table is
   byte-identical at any [--jobs] value and across reruns. *)
let fault_trials = Atomic.make 120
let set_fault_trials n = Atomic.set fault_trials (max 1 n)
let fault_seed = 7

(* Context-memory protection profile applied by {!fault_report} and the
   fault-free runs of {!protection_report}'s overhead column — the bench
   [--protect] flag.  With the default [Protection.none], every renderer
   below takes its pre-existing path, byte-identically. *)
let protection : Cgra_arch.Protection.profile Atomic.t =
  Atomic.make Cgra_arch.Protection.none

let set_protection p = Atomic.set protection p

let fault_report () =
  let module F = Cgra_verify.Fault in
  let config = Config.HET2 and flow = Runner.Full in
  let trials = Atomic.get fault_trials in
  let prot = Atomic.get protection in
  (* The detected/corrected columns exist only on protected campaigns, so
     the protection-off table stays byte-identical to the historical
     fault_report. *)
  let protected_ = not (Cgra_arch.Protection.is_none prot) in
  let num = string_of_int in
  let rows =
    List.map
      (fun k ->
        match Runner.run_of k config flow with
        | Runner.Unmappable u ->
          [ k.K.name; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
          @ (if protected_ then [ "-"; "-" ] else [])
          @ [ "-"; "unmappable: " ^ u.reason ]
        | Runner.Mapped r ->
          let program = Cgra_asm.Assemble.assemble r.Runner.mapping in
          let key =
            k.K.slug ^ "/" ^ Config.to_string config ^ "/"
            ^ Runner.flow_label flow ^ "/fault"
          in
          let c =
            F.run_campaign ~protect:prot ~seed:fault_seed ~trials ~key
              ~fresh_mem:(fun () -> K.fresh_mem k)
              program
          in
          let by_class p =
            List.length
              (List.filter (fun (t : F.trial) -> p t.F.injection) c.F.runs)
          in
          let cm = by_class (function F.Context_bit _ -> true | _ -> false) in
          let crf = by_class (function F.Crf_bit _ -> true | _ -> false) in
          let rf = by_class (function F.Rf_bit _ -> true | _ -> false) in
          let s = c.F.summary in
          [ k.K.name; num cm; num crf; num rf; num s.F.masked;
            num s.F.wrong_output; num s.F.crash; num s.F.hang ]
          @ (if protected_ then [ num s.F.detected; num s.F.corrected ]
             else [])
          @ [ Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int s.F.masked /. float_of_int s.F.trials);
              num c.F.golden_cycles ])
      Runner.kernels
  in
  Printf.sprintf
    "Fault report: single-bit injection campaigns, %s on %s\n\
     %d trials per kernel, seed %d; injections: CM = context-memory image \
     bit,\n\
     CRF = constant-pool bit, RF = live register bit at a random cycle.\n\
     Outcomes: masked = golden memory image reproduced; wrong = completed \
     with a\n\
     different image; crash = undecodable word or typed Sim_error; hang = \
     past 4x\n\
     the fault-free block count.  Deterministic at any --jobs value.\n"
    (Runner.flow_label flow) (Config.to_string config) trials fault_seed
  ^ (if protected_ then
       Printf.sprintf
         "Context-memory protection: %s (scrub every %d cycles).  detected \
          =\n\
          uncorrectable error caught by ECC (halted, not silent); \
          corrected =\n\
          completed correctly after in-place ECC correction.\n"
         (Cgra_arch.Protection.profile_to_string prot)
         Cgra_arch.Protection.default_scrub_interval
     else "")
  ^ T.render_aligned
      ~align:
        ([ `L; `R; `R; `R; `R; `R; `R; `R ]
        @ (if protected_ then [ `R; `R ] else [])
        @ [ `R; `R ])
      ~header:
        ([ "Kernel"; "CM"; "CRF"; "RF"; "masked"; "wrong"; "crash"; "hang" ]
        @ (if protected_ then [ "detected"; "corrected" ] else [])
        @ [ "masked%"; "cycles" ])
      ~rows

(* ---- Protection report: pay-for-protection grid ---------------------- *)

(* Not part of the paper: the ECC cost/benefit experiment the protection
   subsystem enables.  Per (kernel, Table-I configuration) cell of the
   full context-aware flow, one context-memory-only injection campaign
   runs at each protection level over the *same* upset sites (the
   campaign key is shared and sampling never consults the profile), and
   the fault-free run is re-simulated under protection for the energy
   overhead column.  Per-trial keyed RNG splits keep the grid
   byte-identical at any [--jobs] value. *)
let protection_seed = 13

let protection_report () =
  let module F = Cgra_verify.Fault in
  let module E = Cgra_power.Energy in
  let module P = Cgra_arch.Protection in
  let flow = Runner.Full in
  let trials = Atomic.get fault_trials in
  let num = string_of_int in
  let esc_totals = ref [] (* (level label, escaped, trials) *) in
  let ovh_totals = ref [] (* (level label, +E%) *) in
  let note lbl esc n = esc_totals := (lbl, esc, n) :: !esc_totals in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun config ->
            match Runner.run_of k config flow with
            | Runner.Unmappable _ ->
              [ k.K.name; Config.to_string config; "-"; "-"; "-"; "-"; "-";
                "-"; "-"; "-" ]
            | Runner.Mapped r ->
              let program = Cgra_asm.Assemble.assemble r.Runner.mapping in
              let key =
                k.K.slug ^ "/" ^ Config.to_string config ^ "/"
                ^ Runner.flow_label flow ^ "/protect"
              in
              let campaign level =
                F.run_campaign ~protect:level ~cm_only:true
                  ~seed:protection_seed ~trials ~key
                  ~fresh_mem:(fun () -> K.fresh_mem k)
                  program
              in
              let escaped (s : F.summary) =
                s.F.wrong_output + s.F.crash + s.F.hang
              in
              let overhead level lbl =
                let protect =
                  {
                    Cgra_sim.Simulator.profile = level;
                    upsets = [];
                    scrub_interval = P.default_scrub_interval;
                  }
                in
                let mem = K.fresh_mem k in
                let sim =
                  Cgra_sim.Simulator.run ~protect program ~mem
                in
                let e =
                  E.cgra ~protect:level (Config.cgra config) sim
                in
                let pct =
                  100.0
                  *. ((e.E.total_pj /. r.Runner.energy.E.total_pj) -. 1.0)
                in
                ovh_totals := (lbl, pct) :: !ovh_totals;
                Printf.sprintf "%+.1f%%" pct
              in
              let n = campaign P.none in
              let pa = campaign P.parity in
              let se = campaign P.secded in
              note "none" (escaped n.F.summary) trials;
              note "parity" (escaped pa.F.summary) trials;
              note "secded" (escaped se.F.summary) trials;
              [ k.K.name; Config.to_string config;
                num n.F.summary.F.masked; num (escaped n.F.summary);
                num pa.F.summary.F.detected; num (escaped pa.F.summary);
                overhead P.parity "parity";
                num se.F.summary.F.corrected; num (escaped se.F.summary);
                overhead P.secded "secded" ])
          configs)
      Runner.kernels
  in
  let level_escapes lbl =
    List.fold_left
      (fun (e, n) (l, esc, t) -> if l = lbl then (e + esc, n + t) else (e, n))
      (0, 0) !esc_totals
  in
  let mean_ovh lbl =
    let vs = List.filter_map (fun (l, v) -> if l = lbl then Some v else None) !ovh_totals in
    List.fold_left ( +. ) 0.0 vs /. float_of_int (max 1 (List.length vs))
  in
  let e0, n0 = level_escapes "none" in
  let e1, _ = level_escapes "parity" in
  let e2, _ = level_escapes "secded" in
  Printf.sprintf
    "Protection report: context-memory upsets vs ECC, %s flow\n\
     %d CM-only single-bit trials per cell and protection level, seed %d; \
     the\n\
     same upset sites are replayed at none / parity / secded (the \
     campaign key\n\
     is shared and injection sampling never consults the profile).\n\
     esc = escaped upsets (wrong-output + crash + hang); det = halted by \
     a\n\
     parity machine-check; corr = corrected in place and completed; +E = \
     fault-\n\
     free energy overhead vs the unprotected run (check-on-fetch, \
     encode-on-\n\
     write, scrub traffic every %d cycles, check-bit leakage).\n\
     Deterministic at any --jobs value.\n"
    (Runner.flow_label flow) trials protection_seed P.default_scrub_interval
  ^ T.render_aligned
      ~align:[ `L; `L; `R; `R; `R; `R; `R; `R; `R; `R ]
      ~header:
        [ "Kernel"; "Config"; "mask0"; "esc0"; "det-p"; "esc-p"; "+E-p";
          "corr-s"; "esc-s"; "+E-s" ]
      ~rows
  ^ Printf.sprintf
      "(columns suffixed 0 / -p / -s: unprotected, parity, secded)\n\
       escaped upsets: none %d/%d, parity %d, secded %d; mean energy \
       overhead:\n\
       parity %+.1f%%, secded %+.1f%% — SECDED buys zero escapes at a \
       bounded,\n\
       reported price.\n"
      e0 n0 e1 e2 (mean_ovh "parity") (mean_ovh "secded")

(* Not part of the paper: permanent-fault survivability through the
   [Cgra_verify.Repair] detect -> diagnose -> remap loop.  Per kernel and
   Table-I configuration, [repair_trials] random [repair_faults]-fault
   maps are injected under the full context-aware mapping; each trial
   either leaves the mapping untouched (faults on unused resources),
   repairs it by remapping on the diagnosed degraded array, or gives up.
   Per-trial keyed RNG splits keep the table byte-identical at any
   [--jobs] value. *)
let repair_trials = Atomic.make 30
let set_repair_trials n = Atomic.set repair_trials (max 1 n)
let repair_faults = Atomic.make 2
let set_repair_faults n = Atomic.set repair_faults (max 1 n)
let repair_seed = 11

let repair_mode : Cgra_verify.Repair.mode Atomic.t =
  Atomic.make Cgra_verify.Repair.Full

let set_repair_mode m = Atomic.set repair_mode m

let repair_report () =
  let module R = Cgra_verify.Repair in
  let flow = Runner.Full in
  let trials = Atomic.get repair_trials in
  let faults = Atomic.get repair_faults in
  let mode = Atomic.get repair_mode in
  let mode_label =
    match mode with R.Full -> "full" | R.Incremental -> "incremental"
  in
  let num = string_of_int in
  let pct a b = Printf.sprintf "%.1f%%" (100.0 *. float_of_int a /. float_of_int (max 1 b)) in
  let example = ref None in
  (* Per-cell campaign wall-clock, for the stderr timing table below: the
     numbers are host-dependent, so they must stay out of the (byte-
     reproducible) report itself. *)
  let timings = ref [] in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun config ->
            match Runner.run_of k config flow with
            | Runner.Unmappable u ->
              [ k.K.name; Config.to_string config; "-"; "-"; "-"; "-"; "-";
                "-"; "-"; "unmappable: " ^ u.reason ]
            | Runner.Mapped r ->
              let key =
                k.K.slug ^ "/" ^ Config.to_string config ^ "/"
                ^ Runner.flow_label flow ^ "/repair"
              in
              let config_flow =
                { (Runner.cell_flow_config k.K.slug config flow) with
                  Cgra_core.Flow_config.degrade = true }
              in
              let t0 = Cgra_util.Clock.now () in
              let c =
                R.run_campaign ~seed:repair_seed ~trials ~faults ~key ~mode
                  ~config:config_flow
                  ~fresh_mem:(fun () -> K.fresh_mem k)
                  r.Runner.mapping
              in
              timings :=
                (k.K.name, Config.to_string config,
                 Cgra_util.Clock.elapsed_s t0)
                :: !timings;
              (if !example = None then
                 match
                   List.find_opt
                     (fun (t : R.trial) ->
                       match t.R.trace.R.status with
                       | R.Repaired _ -> true
                       | _ -> false)
                     c.R.runs
                 with
                 | Some t ->
                   example :=
                     Some
                       (Printf.sprintf "%s on %s, trial %d:\n%s" k.K.name
                          (Config.to_string config) t.R.index
                          (R.trace_to_string t.R.trace))
                 | None -> ());
              let s = c.R.summary in
              [ k.K.name; Config.to_string config; num s.R.unaffected;
                num s.R.repaired; num s.R.partial_repairs; num s.R.gave_up;
                pct (s.R.unaffected + s.R.repaired) s.R.trials;
                (if s.R.repaired = 0 then "-"
                 else Printf.sprintf "%+.1f%%" (100.0 *. s.R.mean_cycle_overhead));
                (if s.R.repaired = 0 then "-"
                 else Printf.sprintf "%+.1f%%" (100.0 *. s.R.mean_energy_overhead));
                num c.R.pristine_cycles ])
          configs)
      Runner.kernels
  in
  (* Host-dependent timing goes to stderr so stdout stays byte-identical
     at any --jobs value (and across hosts). *)
  if !timings <> [] then begin
    let trows =
      List.rev_map
        (fun (kn, cn, s) -> [ kn; cn; Printf.sprintf "%.2f" s ])
        !timings
    in
    prerr_string
      (Printf.sprintf
         "repair_report campaign wall-clock (%s mode, host-dependent):\n"
         mode_label
      ^ T.render_aligned ~align:[ `L; `L; `R ]
          ~header:[ "Kernel"; "Config"; "seconds" ]
          ~rows:trows)
  end;
  Printf.sprintf
    "Repair report: permanent-fault survivability, %s flow, %s remap\n\
     %d trials per cell, %d random permanent fault(s) per trial, seed %d.\n\
     Each trial degrades the array under the pristine mapping; violated\n\
     invariants are detected (validator), diagnosed back to a fault map \
     and\n\
     remapped on the degraded array (detect -> diagnose -> remap).\n\
     unaffected = pristine mapping still valid; repaired = remap clean on \
     the\n\
     true degraded array and golden-equal in simulation; survive%% = \
     both.\n\
     inc = repaired trials whose final remap re-searched only the dirty\n\
     blocks (always 0 in full mode).\n\
     Overheads are means over repaired trials vs the pristine mapping.\n\
     Deterministic at any --jobs value.\n"
    (Runner.flow_label flow) mode_label trials faults repair_seed
  ^ T.render_aligned
      ~align:[ `L; `L; `R; `R; `R; `R; `R; `R; `R; `R ]
      ~header:
        [ "Kernel"; "Config"; "unaff"; "repaired"; "inc"; "gave-up";
          "survive%"; "cycle-ovh"; "energy-ovh"; "cycles0" ]
      ~rows
  ^
  match !example with
  | None -> "\nNo successful repair in this campaign.\n"
  | Some e -> "\nExample repair trace — " ^ e ^ "\n"

(* ---- Optimality report: beam search vs the exact SAT backend --------- *)

(* Not part of the paper: the exact backend re-maps every (kernel,
   configuration) cell of the full context-aware flow and the table puts
   its context words, cycles and energy next to the beam's.  The exact
   flow is move-free, so "UNSAT" always reads "under the exact encoding"
   (DESIGN.md §5g): the beam may still map the same cell with move
   chains.  Both sides are deterministic, so the report reproduces
   byte-for-byte at any [--jobs] value.  [set_optimality_quick] shrinks
   the grid for CI smoke runs. *)
let optimality_quick = Atomic.make false
let set_optimality_quick b = Atomic.set optimality_quick b

let optimality_report () =
  let module E = Cgra_power.Energy in
  let module FC = Cgra_core.Flow_config in
  let quick = Atomic.get optimality_quick in
  let kernels =
    if quick then
      List.filter
        (fun k -> List.mem k.K.slug [ "fir"; "fft" ])
        Runner.kernels
    else Runner.kernels
  in
  let configs = if quick then [ Config.HOM64; Config.HOM32 ] else configs in
  let words_of mapping =
    Array.fold_left
      (fun acc u -> acc + M.usage_total u)
      0 (M.tile_usage mapping)
  in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let exact_cell k config =
    let cdfg = K.cdfg k in
    let cgra = Config.cgra config in
    let fc =
      { (Runner.cell_flow_config k.K.slug config Runner.Full) with
        FC.backend = FC.Exact;
        retries = 0 }
    in
    match Cgra_core.Flow.run ~config:fc cgra cdfg with
    | Error f -> `Unmapped f.Cgra_core.Flow.reason
    | Ok (mapping, _) -> (
      match Cgra_asm.Assemble.assemble mapping with
      | exception Cgra_asm.Assemble.Assembly_error e ->
        `Unmapped ("assembly: " ^ e)
      | program ->
        (match Cgra_verify.Validator.check program with
         | [] -> ()
         | vs ->
           artifact_error "optimality_report"
             "exact mapping of %s on %s fails validation: %s" k.K.name
             (Config.to_string config)
             (String.concat "; "
                (List.map Cgra_verify.Validator.to_string vs)));
        let mem = K.fresh_mem k in
        let sim = Cgra_sim.Simulator.run program ~mem in
        if mem <> K.run_golden k then
          artifact_error "optimality_report"
            "exact mapping of %s on %s disagrees with the golden model"
            k.K.name (Config.to_string config);
        `Mapped (mapping, sim, E.cgra cgra sim))
  in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun config ->
            let beam =
              match Runner.run_of k config Runner.Full with
              | Runner.Mapped r ->
                [ string_of_int (words_of r.Runner.mapping);
                  string_of_int r.Runner.cycles;
                  T.float_cell (E.to_uj r.Runner.energy.E.total_pj) ]
              | Runner.Unmappable _ -> [ "-"; "-"; "-" ]
            in
            let exact, note =
              match exact_cell k config with
              | `Mapped (mapping, sim, energy) ->
                ( [ string_of_int (words_of mapping);
                    string_of_int sim.Cgra_sim.Simulator.cycles;
                    T.float_cell (E.to_uj energy.E.total_pj) ],
                  "" )
              | `Unmapped reason ->
                ( [ "-"; "-"; "-" ],
                  if has_sub reason "proved UNSAT" then
                    "UNSAT under encoding"
                  else if has_sub reason "conflict budget" then
                    "budget exhausted"
                  else "no mapping" )
            in
            [ k.K.name; Config.to_string config ] @ beam @ exact @ [ note ])
          configs)
      kernels
  in
  Printf.sprintf
    "Optimality report: context-aware beam search vs the exact SAT backend%s\n\
     Per cell: total committed context words, simulated cycles and energy \
     of the\n\
     beam flow (%s) next to the exact backend's (same flow, --backend \
     exact).\n\
     The exact encoding is move-free, so \"UNSAT under encoding\" proves \
     no\n\
     move-free mapping exists at any schedule length (DESIGN.md 5g) — \
     the beam\n\
     may still map that cell with move chains.  Deterministic at any \
     --jobs value.\n"
    (if quick then " (quick grid)" else "")
    (Runner.flow_label Runner.Full)
  ^ T.render_aligned
      ~align:[ `L; `L; `R; `R; `R; `R; `R; `R; `L ]
      ~header:
        [ "Kernel"; "Config"; "beam wd"; "beam cyc"; "beam uJ";
          "exact wd"; "exact cyc"; "exact uJ"; "exact note" ]
      ~rows

let run_all () =
  String.concat "\n"
    [ table1 (); fig2 (); fig5 (); fig6 (); fig7 (); fig8 (); fig9 ();
      fig10 (); fig11 (); table2 () ]

(* ---- the artifact name table, shared by bench/main and cgra_map ------- *)

let artifacts =
  [ ("table1", table1); ("fig2", fig2); ("fig5", fig5); ("fig6", fig6);
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("fig10", fig10);
    ("fig11", fig11); ("table2", table2) ]

let extra_artifacts =
  [ ("opt_report", opt_report); ("search_report", search_report);
    ("fault_report", fault_report); ("protection_report", protection_report);
    ("repair_report", repair_report);
    ("optimality_report", optimality_report) ]
let all_artifacts = artifacts @ extra_artifacts
let artifact_names = List.map fst all_artifacts
