module FC = Cgra_core.Flow_config
module K = Cgra_kernels.Kernel_def
module Clock = Cgra_util.Clock
module Pool = Cgra_util.Pool
module Rng = Cgra_util.Rng

(* A mapped program whose simulation disagrees with the kernel's golden
   model, or whose artifact fails the independent validator — both are
   tool bugs, and the harness refuses to report numbers from them. *)
exception Golden_mismatch of { kernel : string; target : string }

exception
  Invalid_artifact of { kernel : string; target : string; violations : string list }

let () =
  Printexc.register_printer (function
    | Golden_mismatch { kernel; target } ->
      Some
        (Printf.sprintf
           "Runner.Golden_mismatch (%s on %s: simulated memory image disagrees \
            with the golden model)"
           kernel target)
    | Invalid_artifact { kernel; target; violations } ->
      Some
        (Printf.sprintf "Runner.Invalid_artifact (%s on %s: %s)" kernel target
           (String.concat "; " violations))
    | _ -> None)

(* Make [Flow_config.validate] usable everywhere the harness is linked. *)
let () = Cgra_verify.Validator.install ()

type flow_kind = Basic | With_acmap | With_ecmap | Full

let flow_kinds = [ Basic; With_acmap; With_ecmap; Full ]

let flow_label = function
  | Basic -> "basic"
  | With_acmap -> "basic+ACMAP"
  | With_ecmap -> "basic+ACMAP+ECMAP"
  | Full -> "basic+ACMAP+ECMAP+CAB"

let flow_config = function
  | Basic -> FC.basic
  | With_acmap -> FC.with_acmap
  | With_ecmap -> FC.with_acmap_ecmap
  | Full -> FC.context_aware

(* Which CDFG a cell maps: the seed default (inline-optimized lowering),
   the naive lowering, or the naive lowering put through the [cgra_opt]
   pipeline inside [Flow.run]. *)
type opt_mode = Default | Raw | Optimized

let opt_mode_label = function Default -> "" | Raw -> "+RAW" | Optimized -> "+OPT"

(* Global mode driven by the bench [--opt] flag; [Default] keeps every
   seed artifact byte-identical. *)
let global_opt_mode = Atomic.make Default
let set_opt_mode m = Atomic.set global_opt_mode m
let opt_mode () = Atomic.get global_opt_mode

(* Every grid cell runs on its own split of the SplitMix64 stream, keyed by
   the cell's identity.  The cell's results therefore do not depend on how
   many other cells ran before it, in which order, or on how many domains —
   which is what makes every artifact byte-identical at any [--jobs].
   [Default] mode contributes an empty suffix, so its keys (and seeds) are
   exactly the seed harness's. *)
let cell_key ?(opt = Default) slug config flow =
  slug ^ "/" ^ Cgra_arch.Config.to_string config ^ "/" ^ flow_label flow
  ^ opt_mode_label opt

let cell_flow_config ?(opt = Default) slug config flow =
  let fc = flow_config flow in
  let fc =
    match opt with
    | Default | Raw -> fc
    | Optimized -> { fc with FC.optimize = true }
  in
  { fc with
    FC.seed = Rng.seed_of ~base:fc.FC.seed (cell_key ~opt slug config flow) }

type run = {
  mapping : Cgra_core.Mapping.t;
  sim : Cgra_sim.Simulator.result;
  cycles : int;
  energy : Cgra_power.Energy.breakdown;
  compile_seconds : float;
  compile_work : int;
  retries_used : int;
  search : Cgra_core.Search.block_stats list;
  opt_stats : Cgra_opt.Pipeline.report option;
}

type cell =
  | Mapped of run
  | Unmappable of {
      reason : string;
      compile_seconds : float;
      compile_work : int;
    }

(* ---- thread-safe memoisation ---------------------------------------- *)

(* The run cache is shared by every figure and by the parallel warm-up.
   Each key holds either a finished value or a [Computing] marker placed by
   the domain that claimed it; other domains block on the condition
   variable until the producer publishes, so a cell is *computed exactly
   once* no matter how many domains ask for it concurrently.  Exceptions
   (e.g. the golden-model check failing — a harness bug) are cached and
   re-raised to every consumer rather than recomputed.

   Exception safety is load-bearing: the claiming domain MUST publish
   something, or every waiter blocks forever and every later lookup finds
   a stale [Computing] marker (which used to die on [assert false],
   permanently poisoning the key).  [get] therefore runs the compute under
   [Fun.protect]: a value publishes [Ready], a caught exception publishes
   [Failed] (cached, re-raised to all consumers with its original
   backtrace), and anything that escapes both — an asynchronous interrupt
   landing between the claim and the publish — clears the slot in the
   [finally], so the key merely recomputes on the next call. *)
module Memo = struct
  type 'a slot =
    | Computing
    | Ready of 'a
    | Failed of exn * Printexc.raw_backtrace

  type ('k, 'v) t = {
    table : ('k, 'v slot) Hashtbl.t;
    mutex : Mutex.t;
    cond : Condition.t;
    computes : int Atomic.t;
    mutable generation : int;  (* bumped by [reset]; guarded by [mutex] *)
  }

  let create n =
    {
      table = Hashtbl.create n;
      mutex = Mutex.create ();
      cond = Condition.create ();
      computes = Atomic.make 0;
      generation = 0;
    }

  let computed m = Atomic.get m.computes

  (* A reset must not only drop the table: computes claimed *before* the
     reset may still be in flight, and their eventual publish (a value, a
     cached failure, or the async-exception slot clear) would land in the
     freshly cleared table — reviving a poisoned or stale computation
     under a key that may since have been re-claimed by a new producer.
     The generation counter makes those late publishes no-ops, and the
     broadcast releases waiters blocked on pre-reset [Computing] markers
     so they re-claim against the new generation. *)
  let reset m =
    Mutex.lock m.mutex;
    Hashtbl.reset m.table;
    Atomic.set m.computes 0;
    m.generation <- m.generation + 1;
    Condition.broadcast m.cond;
    Mutex.unlock m.mutex

  (* Forget one key — the seam the daemon needs for timed-out computes:
     a [Timed_out] outcome is a fact about the deadline, not the spec,
     so leaving it [Ready] would serve stale give-ups to patient future
     requests.  A [Computing] slot is left alone: removing it would
     orphan the in-flight producer's publish and strand its waiters. *)
  let forget m key =
    Mutex.lock m.mutex;
    (match Hashtbl.find_opt m.table key with
    | Some Computing | None -> ()
    | Some (Ready _ | Failed _) -> Hashtbl.remove m.table key);
    Condition.broadcast m.cond;
    Mutex.unlock m.mutex

  let get m key compute =
    Mutex.lock m.mutex;
    let rec claim () =
      match Hashtbl.find_opt m.table key with
      | None ->
        Hashtbl.replace m.table key Computing;
        `Compute m.generation
      | Some (Ready v) -> `Value v
      | Some (Failed (e, bt)) -> `Reraise (e, bt)
      | Some Computing ->
        Condition.wait m.cond m.mutex;
        claim ()
    in
    let decision = claim () in
    Mutex.unlock m.mutex;
    match decision with
    | `Value v -> v
    | `Reraise (e, bt) -> Printexc.raise_with_backtrace e bt
    | `Compute gen ->
      Atomic.incr m.computes;
      let published = ref false in
      let publish outcome =
        Mutex.lock m.mutex;
        (if m.generation = gen then
           match outcome with
           | Some o -> Hashtbl.replace m.table key o
           | None -> Hashtbl.remove m.table key);
        published := true;
        Condition.broadcast m.cond;
        Mutex.unlock m.mutex
      in
      Fun.protect
        ~finally:(fun () -> if not !published then publish None)
        (fun () ->
          match compute () with
          | v ->
            publish (Some (Ready v));
            v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            publish (Some (Failed (e, bt)));
            Printexc.raise_with_backtrace e bt)
end

let cache :
    (string * Cgra_arch.Config.name * flow_kind * opt_mode, cell) Memo.t =
  Memo.create 64

(* ---- pluggable artifact-store backend -------------------------------- *)

(* The serve subsystem (lib/serve) installs a hook here so every cell the
   harness computes is also published — as deterministic artifact bytes
   under its content-addressed key — into the same on-disk store the
   [cgra_mapd] daemon serves from.  The hook runs once per *computed*
   (not cache-served) Mapped cell; a failing backend must never fail the
   harness, so errors are reported to stderr and swallowed. *)
type artifact_backend =
  opt_mode -> K.t -> Cgra_arch.Config.name -> flow_kind -> run -> unit

let artifact_backend : artifact_backend option Atomic.t = Atomic.make None
let set_artifact_backend b = Atomic.set artifact_backend b

let publish_artifact opt k config flow r =
  match Atomic.get artifact_backend with
  | None -> ()
  | Some f -> (
    try f opt k config flow r
    with e ->
      Printf.eprintf "Runner: artifact backend failed on %s: %s\n%!"
        (cell_key ~opt k.K.slug config flow)
        (Printexc.to_string e))

let run_of ?opt k config flow =
  let opt = match opt with Some m -> m | None -> Atomic.get global_opt_mode in
  Memo.get cache (k.K.slug, config, flow, opt) (fun () ->
      let cdfg =
        match opt with Default -> K.cdfg k | Raw | Optimized -> K.cdfg_raw k
      in
      let cgra = Cgra_arch.Config.cgra config in
      let fc = cell_flow_config ~opt k.K.slug config flow in
      (* Verify the pipeline on the kernel's own input image (plus the
         pipeline's deterministic defaults would add nothing here: the
         kernel image is the one the golden check below uses). *)
      let opt_verify =
        match opt with
        | Optimized ->
          Some (Cgra_opt.Pipeline.verifier_of_mems [ K.fresh_mem k ])
        | Default | Raw -> None
      in
      let t0 = Clock.now () in
      match Cgra_core.Flow.run ~config:fc ?opt_verify cgra cdfg with
      | Error f ->
        Unmappable
          { reason = f.Cgra_core.Flow.reason;
            compile_seconds = Clock.elapsed_s t0;
            compile_work = f.Cgra_core.Flow.work }
      | Ok (mapping, stats) -> (
        let compile_seconds = Clock.elapsed_s t0 in
        let compile_work = stats.Cgra_core.Flow.work in
        match Cgra_asm.Assemble.assemble mapping with
        | exception Cgra_asm.Assemble.Assembly_error e ->
          (* register-file pressure the search does not model; report as
             unmappable rather than crash the harness *)
          Unmappable
            { reason = "assembly: " ^ e; compile_seconds; compile_work }
        | program ->
          let target =
            Cgra_arch.Config.to_string config ^ "/" ^ flow_label flow
          in
          (* Every memoised artifact goes through the independent validator
             exactly once; a violation is a mapper/assembler bug. *)
          (match Cgra_verify.Validator.check program with
           | [] -> ()
           | vs ->
             raise
               (Invalid_artifact
                  { kernel = k.K.name;
                    target;
                    violations = List.map Cgra_verify.Validator.to_string vs }));
          let mem = K.fresh_mem k in
          let sim = Cgra_sim.Simulator.run program ~mem in
          if mem <> K.run_golden k then
            raise (Golden_mismatch { kernel = k.K.name; target });
          let energy = Cgra_power.Energy.cgra cgra sim in
          let r =
            { mapping; sim; cycles = sim.Cgra_sim.Simulator.cycles; energy;
              compile_seconds; compile_work;
              retries_used = stats.Cgra_core.Flow.retries_used;
              search = stats.Cgra_core.Flow.search;
              opt_stats = stats.Cgra_core.Flow.opt }
          in
          publish_artifact opt k config flow r;
          Mapped r))

type cpu_run = {
  cpu_sim : Cgra_cpu.Cpu_sim.result;
  cpu_energy : Cgra_power.Energy.breakdown;
}

let cpu_cache : (string, cpu_run) Memo.t = Memo.create 8

let cpu_of k =
  Memo.get cpu_cache k.K.slug (fun () ->
      let prog = Cgra_cpu.Codegen.compile (K.cdfg k) in
      let mem = K.fresh_mem k in
      let cpu_sim = Cgra_cpu.Cpu_sim.run prog ~mem in
      if mem <> K.run_golden k then
        raise (Golden_mismatch { kernel = k.K.name; target = "cpu" });
      { cpu_sim; cpu_energy = Cgra_power.Energy.cpu cpu_sim })

let compile_seconds_of = function
  | Mapped r -> r.compile_seconds
  | Unmappable u -> u.compile_seconds

let compile_work_of = function
  | Mapped r -> r.compile_work
  | Unmappable u -> u.compile_work

let kernels = Cgra_kernels.Kernels.all

(* ---- parallel warm-up ------------------------------------------------ *)

let grid () =
  List.concat_map
    (fun k ->
      List.concat_map
        (fun config -> List.map (fun flow -> `Cell (k, config, flow)) flow_kinds)
        Cgra_arch.Config.all
      @ [ `Cpu k ])
    kernels

let warm ?jobs () =
  Pool.iter ?jobs
    (function
      | `Cell (k, config, flow) -> ignore (run_of k config flow)
      | `Cpu k -> ignore (cpu_of k))
    (grid ())

let compute_count () = Memo.computed cache + Memo.computed cpu_cache

(* Reset the compute counters together with the caches: they count
   computations *since the last clear*, and tests that clear the cache
   and then assert "computed exactly once" would otherwise see the
   residue of every cell computed before the clear. *)
let clear_caches () =
  Memo.reset cache;
  Memo.reset cpu_cache
