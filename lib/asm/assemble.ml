module M = Cgra_core.Mapping
module Isa = Cgra_arch.Isa
module Cgra = Cgra_arch.Cgra
module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode

type section = Isa.instr list

type tile_program = {
  sections : section array;
  crf : int array;
  words : int;
}

type program = {
  mapping : M.t;
  tiles : tile_program array;
  sym_slot : int array;
  section_length : int array;
}

exception Assembly_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Assembly_error s)) fmt

(* A definition of a value on one tile within one block. *)
type def = {
  d_cycle : int;
  d_value : M.value;
  d_sym : int option;       (* destination is this symbol's home slot *)
  mutable d_last_use : int;
  mutable d_reg : int;      (* temp RF slot; -1 until allocated *)
}

(* Per-(tile, block) register state. *)
type talloc = { defs : def list (* ascending cycle *) }

let slot_defines (sl : M.slot) (nodes : Cdfg.node array) =
  match sl.M.action with
  | M.Aop { node = j; _ } ->
    if Opcode.has_result nodes.(j).Cdfg.opcode then Some (M.Vnode j) else None
  | M.Amove { value; _ } -> Some value
  | M.Acopy value -> Some value

(* Readers of values *on tile t* at given cycles — including operations on
   other tiles reading [t]'s RF through the neighbour mux. *)
let readers_on_tile slots t (nodes : Cdfg.node array) =
  List.concat_map
    (fun (sl : M.slot) ->
      match sl.M.action with
      | M.Aop { node = j; operand_tiles } ->
        List.map2
          (fun operand srct -> (operand, srct))
          nodes.(j).Cdfg.operands operand_tiles
        |> List.filter_map (fun (operand, srct) ->
               if srct <> t then None
               else
                 match operand with
                 | Cdfg.Node i -> Some (M.Vnode i, sl.M.cycle)
                 | Cdfg.Sym s -> Some (M.Vsym s, sl.M.cycle)
                 | Cdfg.Imm _ -> None)
      | M.Acopy (M.Vimm _) -> []
      | M.Acopy v when sl.M.tile = t -> [ (v, sl.M.cycle) ]
      | M.Amove { value; from_tile } when from_tile = t -> [ (value, sl.M.cycle) ]
      | M.Acopy _ | M.Amove _ -> [])
    slots

let build_talloc ~homes ~nsyms ~rf_words slots t nodes =
  let here =
    List.filter (fun (sl : M.slot) -> sl.M.tile = t) slots
    |> List.sort (fun a b -> compare a.M.cycle b.M.cycle)
  in
  let defs =
    List.filter_map
      (fun (sl : M.slot) ->
        match slot_defines sl nodes with
        | None -> None
        | Some v ->
          Some
            { d_cycle = sl.M.cycle;
              d_value = v;
              d_sym = sl.M.writes_sym;
              d_last_use = sl.M.cycle;
              d_reg = -1 })
      here
  in
  (* Attribute each read to the latest def strictly before it; reads with no
     def fall back to the symbol's home slot (live-in), which needs no
     temp. *)
  let def_for value cycle =
    List.fold_left
      (fun best d ->
        if d.d_value = value && d.d_cycle < cycle then
          match best with
          | Some b when b.d_cycle >= d.d_cycle -> best
          | Some _ | None -> Some d
        else best)
      None defs
  in
  List.iter
    (fun (value, cycle) ->
      match def_for value cycle with
      | Some d -> if cycle > d.d_last_use then d.d_last_use <- cycle
      | None -> (
        match value with
        | M.Vsym s when homes.(s) = t -> () (* live-in home slot *)
        | M.Vsym s -> error "read of symbol %d on tile %d with no def" s t
        | M.Vnode i -> error "read of node %d value on tile %d with no def" i t
        | M.Vimm _ -> ()))
    (readers_on_tile slots t nodes);
  (* Linear-scan temp allocation over [nsyms, rf_words). *)
  let free = Queue.create () in
  for r = nsyms to rf_words - 1 do
    Queue.add r free
  done;
  let active = ref [] in
  List.iter
    (fun d ->
      if d.d_sym = None then begin
        let still, done_ =
          List.partition (fun a -> a.d_last_use > d.d_cycle) !active
        in
        List.iter (fun a -> Queue.add a.d_reg free) done_;
        active := still;
        (match Queue.take_opt free with
         | Some r -> d.d_reg <- r
         | None ->
           error "register pressure on tile %d: no free temp at cycle %d" t
             d.d_cycle);
        active := d :: !active
      end)
    defs;
  ({ defs } : talloc)

let reg_of ~homes ~sym_slot alloc t value cycle =
  let best =
    List.fold_left
      (fun best d ->
        if d.d_value = value && d.d_cycle < cycle then
          match best with
          | Some b when b.d_cycle >= d.d_cycle -> best
          | Some _ | None -> Some d
        else best)
      None alloc.defs
  in
  match best with
  | Some d -> ( match d.d_sym with Some s -> sym_slot.(s) | None -> d.d_reg )
  | None -> (
    match value with
    | M.Vsym s when homes.(s) = t -> sym_slot.(s)
    | M.Vsym s -> error "unresolved symbol %d read on tile %d" s t
    | M.Vnode i -> error "unresolved node %d read on tile %d" i t
    | M.Vimm _ -> error "immediate has no register")

(* The def created *by* this slot (distinct from reads at the same cycle,
   which see strictly earlier defs). *)
let own_def alloc (sl : M.slot) nodes ~sym_slot =
  match slot_defines sl nodes with
  | None -> None
  | Some v -> (
    match sl.M.writes_sym with
    | Some s -> Some sym_slot.(s)
    | None -> (
      match
        List.find_opt
          (fun d -> d.d_cycle = sl.M.cycle && d.d_value = v && d.d_sym = None)
          alloc.defs
      with
      | Some d -> Some d.d_reg
      | None -> error "assembler lost its own def at tile %d cycle %d" sl.M.tile sl.M.cycle))

let assemble (m : M.t) =
  let cdfg = m.M.cdfg and cgra = m.M.cgra in
  let nt = Cgra.tile_count cgra in
  let nsyms = cdfg.Cdfg.sym_count in
  let rf_words = cgra.Cgra.rf_words in
  if nsyms > rf_words then error "too many symbol variables for the RF";
  let sym_slot = Array.init (max 1 nsyms) Fun.id in
  let homes = m.M.homes in
  let nblocks = Array.length cdfg.Cdfg.blocks in
  (* Constant pools. *)
  let crf_pool = Array.init nt (fun _ -> ref []) in
  let crf_index t k =
    let pool = crf_pool.(t) in
    match List.assoc_opt k !pool with
    | Some i -> i
    | None ->
      let i = List.length !pool in
      if i >= cgra.Cgra.crf_words then
        error "constant register file overflow on tile %d" t;
      pool := (k, i) :: !pool;
      i
  in
  let sections = Array.init nt (fun _ -> Array.make nblocks []) in
  let section_length =
    Array.map (fun bm -> bm.M.length) m.M.bbs
  in
  Array.iter
    (fun (bm : M.bb_mapping) ->
      let nodes = cdfg.Cdfg.blocks.(bm.M.bb).Cdfg.nodes in
      let allocs =
        Array.init nt (fun t ->
            build_talloc ~homes ~nsyms ~rf_words bm.M.slots t nodes)
      in
      let src_of t value cycle =
        match value with
        | M.Vimm k -> Isa.Crf (crf_index t k)
        | M.Vnode _ | M.Vsym _ ->
          Isa.Rf (reg_of ~homes ~sym_slot allocs.(t) t value cycle)
      in
      (* Resolve an operand read by tile [t] from tile [srct] (equal for
         local reads, a neighbour otherwise). *)
      let operand_src t srct cycle operand =
        match operand with
        | Cdfg.Imm k -> Isa.Crf (crf_index t k)
        | Cdfg.Node _ | Cdfg.Sym _ ->
          let value =
            match operand with
            | Cdfg.Node i -> M.Vnode i
            | Cdfg.Sym s -> M.Vsym s
            | Cdfg.Imm _ -> assert false
          in
          let slot = reg_of ~homes ~sym_slot allocs.(srct) srct value cycle in
          if srct = t then Isa.Rf slot else Isa.Nbr (srct, slot)
      in
      for t = 0 to nt - 1 do
        let here =
          List.filter (fun (sl : M.slot) -> sl.M.tile = t) bm.M.slots
          |> List.sort (fun a b -> compare a.M.cycle b.M.cycle)
        in
        let buf = ref [] in
        let cursor = ref 0 in
        List.iter
          (fun (sl : M.slot) ->
            if sl.M.cycle > !cursor then
              buf := Isa.Ipnop (sl.M.cycle - !cursor) :: !buf;
            let dst = own_def allocs.(t) sl nodes ~sym_slot in
            let instr =
              match sl.M.action with
              | M.Aop { node = j; operand_tiles } ->
                let node = nodes.(j) in
                Isa.Iop
                  {
                    opcode = node.Cdfg.opcode;
                    srcs =
                      List.map2
                        (fun operand srct -> operand_src t srct sl.M.cycle operand)
                        node.Cdfg.operands operand_tiles;
                    dst;
                    set_cond = sl.M.set_cond;
                  }
              | M.Amove { value; from_tile } ->
                let from_slot =
                  reg_of ~homes ~sym_slot allocs.(from_tile) from_tile value
                    sl.M.cycle
                in
                (match dst with
                 | Some d -> Isa.Imov { from_tile; from_slot; dst = d }
                 | None -> error "move without destination on tile %d" t)
              | M.Acopy value ->
                (match dst with
                 | Some d ->
                   Isa.Icopy
                     { src = src_of t value sl.M.cycle; dst = d;
                       set_cond = sl.M.set_cond }
                 | None -> error "copy without destination on tile %d" t)
            in
            buf := instr :: !buf;
            cursor := sl.M.cycle + 1)
          here;
        sections.(t).(bm.M.bb) <- List.rev !buf
      done)
    m.M.bbs;
  let tiles =
    Array.init nt (fun t ->
        let words =
          Array.fold_left (fun acc sec -> acc + List.length sec) 0 sections.(t)
        in
        let cap = cgra.Cgra.tiles.(t).cm_words in
        if words > cap then
          error "tile %d context overflows after assembly: %d > %d" t words cap;
        let pool = !(crf_pool.(t)) in
        let crf = Array.make (List.length pool) 0 in
        List.iter (fun (k, i) -> crf.(i) <- k) pool;
        { sections = sections.(t); crf; words })
  in
  { mapping = m; tiles; sym_slot; section_length }

let context_words p = Array.map (fun t -> t.words) p.tiles

let encode_tile tp =
  Array.to_list tp.sections
  |> List.concat_map (fun sec -> List.map Isa.encode sec)
  |> Array.of_list

(* Check bits stored alongside the context words (encode-on-write): one
   entry per word of [encode_tile tp], computed from the pristine image —
   the words themselves are never perturbed, so protection-off images
   stay byte-identical. *)
let check_words kind tp = Array.map (Ecc.check_bits kind) (encode_tile tp)

let pp_tile fmt (t, tp) =
  Format.fprintf fmt "@[<v>tile T%02d (%d words)@," t tp.words;
  Array.iteri
    (fun bi sec ->
      if sec <> [] then begin
        Format.fprintf fmt "  section b%d:@," bi;
        List.iter
          (fun i -> Format.fprintf fmt "    %s@," (Isa.to_string i))
          sec
      end)
    tp.sections;
  if Array.length tp.crf > 0 then begin
    Format.fprintf fmt "  crf:";
    Array.iteri (fun i k -> Format.fprintf fmt " c%d=%d" i k) tp.crf;
    Format.fprintf fmt "@,"
  end;
  Format.fprintf fmt "@]"
