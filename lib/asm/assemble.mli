(** Assembler: {!Cgra_core.Mapping.t} to per-tile context programs.

    Performs the back-end work the compiler of [1] does after binding:
    per-tile register allocation (symbol variables live in fixed RF slots
    on their home tile; block-local values get linear-scan temporaries),
    constant-register-file pooling of immediates, compression of idle
    runs into pnops, and emission of the {!Cgra_arch.Isa} instructions
    that the cycle-level simulator executes and the binary encoder
    packs. *)

type section = Cgra_arch.Isa.instr list
(** One basic block's context slice on one tile.  Empty when the tile
    sleeps through the block.  Instruction durations sum to at most the
    block's schedule length (trailing idle cycles are slept through for
    free). *)

type tile_program = {
  sections : section array;  (** indexed by block id *)
  crf : int array;           (** constant pool, indexed by [Crf] operands *)
  words : int;               (** context-memory words used *)
}

type program = {
  mapping : Cgra_core.Mapping.t;
  tiles : tile_program array;
  sym_slot : int array;      (** symbol -> RF slot on its home tile *)
  section_length : int array;(** per block, cycles *)
}

exception Assembly_error of string

val assemble : Cgra_core.Mapping.t -> program
(** Raises {!Assembly_error} on register-file or constant-register-file
    pressure, or on an internally inconsistent mapping (both indicate a
    mapper bug; the test suite checks they never fire on flow output). *)

val context_words : program -> int array
(** Per-tile context words — must agree with
    {!Cgra_core.Mapping.tile_usage}; the test suite asserts it. *)

val encode_tile : tile_program -> int64 array
(** Binary image of one tile's context memory ({!Cgra_arch.Isa.encode}
    applied section by section). *)

val check_words : Cgra_arch.Protection.kind -> tile_program -> int array
(** Per-word ECC/parity check bits of {!encode_tile}'s image
    ({!Ecc.check_bits} on each pristine word — the encode-on-write side
    of context-memory protection).  The image itself is unchanged. *)

val pp_tile : Format.formatter -> int * tile_program -> unit
(** Assembly listing of one tile. *)
