(** SECDED / parity check-bit codec for 64-bit context words.

    Check bits are computed from the stored word and kept {e alongside}
    it, never inside it: context images ({!Assemble.encode_tile}) are
    unchanged by protection, so all protection-off artifacts stay
    byte-identical.

    - [Parity]: one bit; any odd number of flips is {!Detected} (never
      corrected), even flip counts escape as {!Clean}.
    - [Secded]: Hamming(71,64) plus an overall parity bit (8 check bits);
      any single flip is {!Corrected}, any double flip {!Detected}. *)

type verdict =
  | Clean  (** check bits match; the word is served as stored *)
  | Corrected of int64  (** single-bit error; the repaired word *)
  | Detected  (** uncorrectable — the fetch must not be consumed *)

val parity64 : int64 -> int
(** XOR of the 64 bits (0 or 1). *)

val check_bits : Cgra_arch.Protection.kind -> int64 -> int
(** Check bits of a word under the given protection kind (0 for
    [Unprotected], 1 bit for [Parity], 8 bits for [Secded]). *)

val decode : Cgra_arch.Protection.kind -> data:int64 -> check:int -> verdict
(** Verdict on a possibly corrupted [data] word against check bits
    computed at write time.  [Unprotected] words are always [Clean]. *)
