(* SECDED / parity check-bit codec for 64-bit context words.

   The data word is never re-encoded: check bits live in a separate
   per-word field computed from the stored word, so protection-off images
   are bit-for-bit the unprotected ones.

   SECDED is the standard Hamming(71,64) extended with an overall parity
   bit.  Data bits occupy codeword positions 1..71 skipping the powers of
   two; the seven Hamming check bits c0..c6 sit at positions 1,2,4,...,64
   and each covers the data positions with that bit set, so the recomputed
   syndrome of a single-bit error is the error's position.  The overall
   parity bit distinguishes single (correctable) from double (detected,
   uncorrectable) errors. *)

module P = Cgra_arch.Protection

type verdict = Clean | Corrected of int64 | Detected

let parity64 (w : int64) =
  let x = Int64.logxor w (Int64.shift_right_logical w 32) in
  let x = Int64.logxor x (Int64.shift_right_logical x 16) in
  let x = Int64.logxor x (Int64.shift_right_logical x 8) in
  let x = Int64.logxor x (Int64.shift_right_logical x 4) in
  let x = Int64.logxor x (Int64.shift_right_logical x 2) in
  let x = Int64.logxor x (Int64.shift_right_logical x 1) in
  Int64.to_int (Int64.logand x 1L)

let parity_int x =
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let is_pow2 n = n land (n - 1) = 0

(* Codeword position of each data bit (64 entries, values in 3..71), and
   the inverse map position -> data bit (-1 at check positions). *)
let pos_of_data, data_of_pos =
  let pos = Array.make 64 0 and inv = Array.make 72 (-1) in
  let d = ref 0 in
  let p = ref 1 in
  while !d < 64 do
    if not (is_pow2 !p) then begin
      pos.(!d) <- !p;
      inv.(!p) <- !d;
      incr d
    end;
    incr p
  done;
  (pos, inv)

let bit w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L

(* Seven Hamming check bits of a data word, packed as an int (c_i at bit
   i, i.e. the syndrome value directly). *)
let hamming7 (w : int64) =
  let c = ref 0 in
  for d = 0 to 63 do
    if bit w d then c := !c lxor pos_of_data.(d)
  done;
  !c

let secded_bits (w : int64) =
  let h = hamming7 w in
  (* Overall parity covers the data and the seven Hamming bits. *)
  let p = parity64 w lxor parity_int h in
  h lor (p lsl 7)

let check_bits kind (w : int64) =
  match kind with
  | P.Unprotected -> 0
  | P.Parity -> parity64 w
  | P.Secded -> secded_bits w

let decode kind ~(data : int64) ~check =
  match kind with
  | P.Unprotected -> Clean
  | P.Parity -> if parity64 data = check then Clean else Detected
  | P.Secded ->
    let stored_h = check land 0x7f and stored_p = (check lsr 7) land 1 in
    let syndrome = stored_h lxor hamming7 data in
    let total =
      stored_p lxor parity64 data lxor parity_int stored_h
    in
    if syndrome = 0 then
      (* total = 1 would mean the overall parity bit itself flipped —
         the data is intact either way. *)
      Clean
    else if total = 1 then
      if syndrome < 72 && data_of_pos.(syndrome) >= 0 then
        Corrected
          (Int64.logxor data (Int64.shift_left 1L data_of_pos.(syndrome)))
      else
        (* A check-bit position (or an out-of-range syndrome from a
           multi-bit pattern): the data word is intact. *)
        Corrected data
    else Detected
