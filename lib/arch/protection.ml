(* Context-memory protection profiles.  A profile assigns a protection
   kind per CM size class (the Table-I bank sizes), so heterogeneous
   configurations can pay for ECC only on the large banks where most
   context bits live. *)

type kind = Unprotected | Parity | Secded

type profile = { cm64 : kind; cm32 : kind; cm16 : kind }

let none = { cm64 = Unprotected; cm32 = Unprotected; cm16 = Unprotected }
let uniform k = { cm64 = k; cm32 = k; cm16 = k }
let parity = uniform Parity
let secded = uniform Secded
let is_none p = p = none

let for_cm p ~cm_words =
  if cm_words >= 64 then p.cm64 else if cm_words >= 32 then p.cm32 else p.cm16

(* Check bits stored alongside each 64-bit context word: a single parity
   bit, or Hamming(71,64) + overall parity for SECDED. *)
let check_bits_of_kind = function Unprotected -> 0 | Parity -> 1 | Secded -> 8

(* Background scrub cadence (global cycles between full passes over every
   protected context memory).  See DESIGN.md section 5i. *)
let default_scrub_interval = 1024

let kind_to_string = function
  | Unprotected -> "none"
  | Parity -> "parity"
  | Secded -> "secded"

let kind_of_string = function
  | "none" -> Some Unprotected
  | "parity" -> Some Parity
  | "secded" -> Some Secded
  | _ -> None

let profile_to_string p =
  if p = uniform p.cm64 then kind_to_string p.cm64
  else
    Printf.sprintf "cm64=%s,cm32=%s,cm16=%s" (kind_to_string p.cm64)
      (kind_to_string p.cm32) (kind_to_string p.cm16)

(* Accepts a uniform kind name, or a comma-separated per-class assignment
   such as "cm64=secded,cm32=parity,cm16=none" (every class named exactly
   once, any order). *)
let profile_of_string s =
  match kind_of_string s with
  | Some k -> Some (uniform k)
  | None ->
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Some acc
      | part :: rest -> (
        match String.index_opt part '=' with
        | None -> None
        | Some i -> (
          let cls = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match (cls, kind_of_string v) with
          | "cm64", Some k -> go { acc with cm64 = k } rest
          | "cm32", Some k -> go { acc with cm32 = k } rest
          | "cm16", Some k -> go { acc with cm16 = k } rest
          | _, _ -> None))
    in
    if List.length parts = 3 then go none parts else None

let valid_values = "none|parity|secded or cm64=K,cm32=K,cm16=K"
