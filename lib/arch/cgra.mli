(** Model of the target CGRA (Fig 1 of the paper).

    A grid of tiles (PEs) interconnected through a 2D-mesh torus.  Every
    tile has an ALU, a register file (RF), a constant register file (CRF)
    and its own context memory (CM), decoder and controller; tiles in the
    first [lsu_rows] rows additionally contain a load/store unit connected
    to the shared data memory through a logarithmic interconnect.  The
    evaluation uses a 4x4 array whose first two rows (tiles 1..8 in the
    paper's numbering, ids 0..7 here) are load-store tiles.

    The model also carries a typed {e permanent-fault map}: [degrade]
    yields a well-formed reduced array on which [neighbors], [route] and
    [distance] respect dead tiles and severed links.  A pristine array
    (empty fault list) behaves byte-identically to the fault-free model. *)

type tile = {
  id : int;           (** dense id, row-major from 0 *)
  row : int;
  col : int;
  has_lsu : bool;
  cm_words : int;     (** context-memory capacity in instruction words *)
}

type direction = North | South | West | East

type fault =
  | Dead_tile of { tile : int }
      (** The whole PE is unusable: CM reads as size 0, no LSU, and every
          link into the tile is severed. *)
  | Cm_rows_stuck of { tile : int; rows : int }
      (** [rows] context-memory rows are stuck: effective [cm_words]
          shrinks by [rows] (clamped at 0).  Distinct row counts on the
          same tile accumulate. *)
  | Dead_link of { tile : int; dir : direction }
      (** The mesh link leaving [tile] towards [dir] is severed in both
          directions (neighbour reads are bidirectional wires). *)
  | No_lsu of { tile : int }
      (** The load-store unit is broken; the tile still computes. *)

exception Unroutable of { src : int; dst : int }
(** Raised by [route] when faults partition the array between the two
    tiles. *)

type t = {
  rows : int;
  cols : int;
  tiles : tile array;  (** effective tiles (degraded capacities) *)
  rf_words : int;      (** regular register file: 32 x 8-bit in the paper *)
  crf_words : int;     (** constant register file: 32 x 16-bit *)
  faults : fault list; (** normalised (sorted, deduplicated) fault map *)
  pristine_tiles : tile array;  (** the fabric as built *)
  dead : bool array;   (** per-tile death; [[||]] on pristine arrays *)
  severed : (int * int) list;   (** dead links, both orientations, sorted *)
  apsp : int array option;
      (** flattened all-pairs BFS distances; [None] on pristine arrays *)
}

val make :
  ?rows:int -> ?cols:int -> ?lsu_rows:int -> ?rf_words:int -> ?crf_words:int ->
  cm_of_tile:(int -> int) -> unit -> t
(** Defaults give the paper's 4x4 array with 8 load-store tiles, 32-word RF
    and CRF.  [cm_of_tile id] sets each tile's CM capacity. *)

val tile_count : t -> int

val pristine : t -> bool
(** [true] iff the fault map is empty. *)

val faults : t -> fault list

val alive : t -> int -> bool
(** [false] only for tiles marked [Dead_tile] in the fault map. *)

val base_cm : t -> int -> int
(** The tile's CM capacity before degradation. *)

val link_severed : t -> int -> int -> bool
(** Whether the direct mesh link between two (pristine-)adjacent tiles is
    dead.  Always [false] on pristine arrays. *)

val lsu_tiles : t -> int list
(** Ids of tiles able to execute loads and stores. *)

val can_execute : t -> int -> Cgra_ir.Opcode.t -> bool
(** Whether the opcode may be placed on the tile (LSU restriction; always
    [false] on a dead tile). *)

val dir_neighbor : t -> int -> direction -> int
(** Pristine-geometry torus neighbour in the given direction (ignores
    faults; may equal the tile itself on 1-wide dimensions). *)

val dir_between : t -> int -> int -> direction option
(** Inverse of [dir_neighbor]: the direction from the first tile to the
    second when they are (pristine-)adjacent. *)

val neighbors : t -> int -> int list
(** Torus neighbours in ascending id order; on degraded arrays dead tiles
    have no neighbours and dead links / dead endpoints are filtered out. *)

val unreachable : t -> int
(** Sentinel distance for partitioned tile pairs: [tile_count], strictly
    larger than any simple path. *)

val distance : t -> int -> int -> int
(** Torus Manhattan distance in hops on pristine arrays; BFS hop count on
    degraded arrays ([unreachable c] when no path exists). *)

val route : t -> src:int -> dst:int -> int list
(** Deterministic shortest path, row direction first: the successive tiles
    {e after} [src], ending with [dst].  [route ~src ~dst:src] is [].
    On degraded arrays the geometric path is kept when intact, otherwise a
    deterministic BFS detour is taken; raises [Unroutable] when the fault
    map partitions the pair. *)

val route_opt : t -> src:int -> dst:int -> int list option
(** [route] without the exception. *)

val route_geometric : t -> src:int -> dst:int -> int list
(** The pristine-geometry row-first path, ignoring faults. *)

val path_ok : t -> src:int -> int list -> bool
(** Whether a path (as returned by [route]) avoids every dead tile and
    severed link.  Always [true] on pristine arrays. *)

val degrade : t -> fault list -> t
(** [degrade c fs] applies [fs] on top of [c]'s existing fault map and
    rebuilds the effective array from the pristine fabric.  The combined
    map is normalised (sorted, deduplicated), so [degrade] is idempotent
    and order-insensitive.  Raises [Invalid_argument] for out-of-range
    tile ids or negative row counts. *)

val direction_to_string : direction -> string
val direction_of_string : string -> direction option

val fault_to_string : fault -> string
(** S-expression form, e.g. [(cm_rows_stuck 3 8)] — the same syntax
    {!Fault_map} parses. *)

val pp_grid : Format.formatter -> t -> unit
(** Small ASCII rendering of the grid with CM sizes and LSU markers. *)
