type tile = {
  id : int;
  row : int;
  col : int;
  has_lsu : bool;
  cm_words : int;
}

type direction = North | South | West | East

type fault =
  | Dead_tile of { tile : int }
  | Cm_rows_stuck of { tile : int; rows : int }
  | Dead_link of { tile : int; dir : direction }
  | No_lsu of { tile : int }

exception Unroutable of { src : int; dst : int }

type t = {
  rows : int;
  cols : int;
  tiles : tile array;
  rf_words : int;
  crf_words : int;
  faults : fault list;
  pristine_tiles : tile array;
  dead : bool array;
  severed : (int * int) list;
  apsp : int array option;
}

let make ?(rows = 4) ?(cols = 4) ?(lsu_rows = 2) ?(rf_words = 32)
    ?(crf_words = 32) ~cm_of_tile () =
  if rows <= 0 || cols <= 0 then invalid_arg "Cgra.make: empty grid";
  let tile id =
    let row = id / cols and col = id mod cols in
    { id; row; col; has_lsu = row < lsu_rows; cm_words = cm_of_tile id }
  in
  let tiles = Array.init (rows * cols) tile in
  { rows; cols; tiles; rf_words; crf_words; faults = [];
    pristine_tiles = tiles; dead = [||]; severed = []; apsp = None }

let tile_count c = Array.length c.tiles

let pristine c = c.faults = []
let faults c = c.faults
let alive c id = pristine c || not c.dead.(id)
let base_cm c id = c.pristine_tiles.(id).cm_words
let link_severed c a b = List.mem (a, b) c.severed

let lsu_tiles c =
  Array.to_list c.tiles
  |> List.filter_map (fun t -> if t.has_lsu then Some t.id else None)

let can_execute c id op =
  alive c id
  && (if Cgra_ir.Opcode.needs_lsu op then c.tiles.(id).has_lsu else true)

let id_of c ~row ~col =
  let row = ((row mod c.rows) + c.rows) mod c.rows in
  let col = ((col mod c.cols) + c.cols) mod c.cols in
  (row * c.cols) + col

let dir_neighbor c id dir =
  let t = c.tiles.(id) in
  match dir with
  | North -> id_of c ~row:(t.row - 1) ~col:t.col
  | South -> id_of c ~row:(t.row + 1) ~col:t.col
  | West -> id_of c ~row:t.row ~col:(t.col - 1)
  | East -> id_of c ~row:t.row ~col:(t.col + 1)

let dir_between c a b =
  List.find_opt (fun d -> dir_neighbor c a d = b) [ North; South; West; East ]

let neighbors c id =
  let t = c.tiles.(id) in
  let cand =
    [ id_of c ~row:(t.row - 1) ~col:t.col;
      id_of c ~row:(t.row + 1) ~col:t.col;
      id_of c ~row:t.row ~col:(t.col - 1);
      id_of c ~row:t.row ~col:(t.col + 1) ]
  in
  let base = List.filter (fun n -> n <> id) (List.sort_uniq compare cand) in
  if pristine c then base
  else if not (alive c id) then []
  else List.filter (fun n -> alive c n && not (link_severed c id n)) base

(* Signed wrap-around delta with the smallest magnitude; ties (exactly half
   the ring) resolve to the positive direction so routes are deterministic. *)
let ring_delta size a b =
  let d = ((b - a) mod size + size) mod size in
  if d * 2 > size then d - size else d

let unreachable c = Array.length c.tiles

let torus_distance c a b =
  let ta = c.tiles.(a) and tb = c.tiles.(b) in
  abs (ring_delta c.rows ta.row tb.row) + abs (ring_delta c.cols ta.col tb.col)

let distance c a b =
  match c.apsp with
  | None -> torus_distance c a b
  | Some d ->
      let n = Array.length c.tiles in
      let v = d.((a * n) + b) in
      if v < 0 then unreachable c else v

let route_geometric c ~src ~dst =
  let td = c.tiles.(dst) in
  let rec go row col acc =
    let dr = ring_delta c.rows row td.row in
    let dc = ring_delta c.cols col td.col in
    if dr = 0 && dc = 0 then List.rev acc
    else if dr <> 0 then
      let row = ((row + compare dr 0) mod c.rows + c.rows) mod c.rows in
      go row col (id_of c ~row ~col :: acc)
    else
      let col = ((col + compare dc 0) mod c.cols + c.cols) mod c.cols in
      go row col (id_of c ~row ~col :: acc)
  in
  let ts = c.tiles.(src) in
  go ts.row ts.col []

let path_ok c ~src path =
  pristine c
  || (alive c src
     &&
     let rec go prev = function
       | [] -> true
       | hop :: rest ->
           alive c hop && not (link_severed c prev hop) && go hop rest
     in
     go src path)

let bfs_route c ~src ~dst =
  if src = dst then Some []
  else
    let n = Array.length c.tiles in
    let parent = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if (not !found) && not visited.(v) then begin
            visited.(v) <- true;
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end)
        (neighbors c u)
    done;
    if not !found then None
    else
      let rec build v acc =
        if v = src then acc else build parent.(v) (v :: acc)
      in
      Some (build dst [])

let route_opt c ~src ~dst =
  if pristine c then Some (route_geometric c ~src ~dst)
  else if src = dst then Some []
  else if not (alive c src && alive c dst) then None
  else
    let g = route_geometric c ~src ~dst in
    if path_ok c ~src g then Some g else bfs_route c ~src ~dst

let route c ~src ~dst =
  match route_opt c ~src ~dst with
  | Some p -> p
  | None -> raise (Unroutable { src; dst })

let compute_apsp c =
  let n = Array.length c.tiles in
  let d = Array.make (n * n) (-1) in
  for src = 0 to n - 1 do
    d.((src * n) + src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      let du = d.((src * n) + u) in
      List.iter
        (fun v ->
          if d.((src * n) + v) < 0 then begin
            d.((src * n) + v) <- du + 1;
            Queue.add v q
          end)
        (neighbors c u)
    done
  done;
  d

let degrade c fs =
  let n = Array.length c.pristine_tiles in
  let check_tile ctx tile =
    if tile < 0 || tile >= n then
      invalid_arg
        (Printf.sprintf "Cgra.degrade: %s names tile %d outside 0..%d" ctx tile
           (n - 1))
  in
  List.iter
    (function
      | Dead_tile { tile } -> check_tile "dead_tile" tile
      | Cm_rows_stuck { tile; rows } ->
          check_tile "cm_rows_stuck" tile;
          if rows < 0 then
            invalid_arg "Cgra.degrade: cm_rows_stuck with negative rows"
      | Dead_link { tile; _ } -> check_tile "dead_link" tile
      | No_lsu { tile } -> check_tile "no_lsu" tile)
    fs;
  let faults = List.sort_uniq compare (c.faults @ fs) in
  if faults = c.faults then c
  else begin
    let dead = Array.make n false in
    let cm_cut = Array.make n 0 in
    let no_lsu = Array.make n false in
    let severed = ref [] in
    List.iter
      (function
        | Dead_tile { tile } -> dead.(tile) <- true
        | Cm_rows_stuck { tile; rows } -> cm_cut.(tile) <- cm_cut.(tile) + rows
        | No_lsu { tile } -> no_lsu.(tile) <- true
        | Dead_link { tile; dir } ->
            let nb = dir_neighbor c tile dir in
            if nb <> tile then severed := (tile, nb) :: (nb, tile) :: !severed)
      faults;
    let tiles =
      Array.map
        (fun t ->
          if dead.(t.id) then { t with has_lsu = false; cm_words = 0 }
          else
            { t with
              has_lsu = t.has_lsu && not no_lsu.(t.id);
              cm_words = max 0 (t.cm_words - cm_cut.(t.id)) })
        c.pristine_tiles
    in
    let c' =
      { c with
        tiles;
        faults;
        dead;
        severed = List.sort_uniq compare !severed;
        apsp = None }
    in
    { c' with apsp = Some (compute_apsp c') }
  end

let direction_to_string = function
  | North -> "north"
  | South -> "south"
  | West -> "west"
  | East -> "east"

let direction_of_string s =
  match String.lowercase_ascii s with
  | "north" | "n" -> Some North
  | "south" | "s" -> Some South
  | "west" | "w" -> Some West
  | "east" | "e" -> Some East
  | _ -> None

let fault_to_string = function
  | Dead_tile { tile } -> Printf.sprintf "(dead_tile %d)" tile
  | Cm_rows_stuck { tile; rows } ->
      Printf.sprintf "(cm_rows_stuck %d %d)" tile rows
  | Dead_link { tile; dir } ->
      Printf.sprintf "(dead_link %d %s)" tile (direction_to_string dir)
  | No_lsu { tile } -> Printf.sprintf "(no_lsu %d)" tile

let pp_grid fmt c =
  Format.fprintf fmt "@[<v>";
  for r = 0 to c.rows - 1 do
    for col = 0 to c.cols - 1 do
      let t = c.tiles.((r * c.cols) + col) in
      let mark =
        if not (alive c t.id) then "x" else if t.has_lsu then "*" else " "
      in
      Format.fprintf fmt "[T%02d%s cm=%-3d] " t.id mark t.cm_words
    done;
    Format.fprintf fmt "@,"
  done;
  if pristine c then Format.fprintf fmt "(* = load-store tile)@]"
  else Format.fprintf fmt "(* = load-store tile, x = dead tile)@]"
