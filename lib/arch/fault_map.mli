(** On-disk format for permanent-fault maps.

    One s-expression per line, [;] starts a comment:

    {v
    ; two stuck CM rows on tile 3, tile 5 dead, east link of 2 severed
    (cm_rows_stuck 3 2)
    (dead_tile 5)
    (dead_link 2 east)
    (no_lsu 1)
    v}

    [of_string] accepts exactly what [to_string] prints. *)

val to_string : Cgra.fault list -> string
(** One fault per line, with a trailing newline per fault. *)

val of_string : string -> (Cgra.fault list, string) result
(** Parse a fault map; the error names the offending line. *)

val load : string -> (Cgra.fault list, string) result
(** Read and parse a file; I/O errors are returned as [Error]. *)
