let to_string faults =
  String.concat "" (List.map (fun f -> Cgra.fault_to_string f ^ "\n") faults)

let strip_comment line =
  match String.index_opt line ';' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokens_of_line line =
  let buf = Buffer.create 16 in
  String.iter
    (fun ch ->
      match ch with
      | '(' | ')' -> Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c)
    (strip_comment line);
  String.split_on_char ' ' (Buffer.contents buf)
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some s)

let parse_line ~lineno line =
  let err msg =
    Error (Printf.sprintf "fault map line %d: %s" lineno msg)
  in
  let int_of what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Result.Error (Printf.sprintf "%s is not an integer: %S" what s)
  in
  match tokens_of_line line with
  | [] -> Ok None
  | [ kw; t ] when String.lowercase_ascii kw = "dead_tile" -> (
      match int_of "tile" t with
      | Ok tile -> Ok (Some (Cgra.Dead_tile { tile }))
      | Error m -> err m)
  | [ kw; t; r ] when String.lowercase_ascii kw = "cm_rows_stuck" -> (
      match (int_of "tile" t, int_of "rows" r) with
      | Ok tile, Ok rows when rows >= 0 ->
          Ok (Some (Cgra.Cm_rows_stuck { tile; rows }))
      | Ok _, Ok _ -> err "cm_rows_stuck needs a non-negative row count"
      | Error m, _ | _, Error m -> err m)
  | [ kw; t; d ] when String.lowercase_ascii kw = "dead_link" -> (
      match (int_of "tile" t, Cgra.direction_of_string d) with
      | Ok tile, Some dir -> Ok (Some (Cgra.Dead_link { tile; dir }))
      | Error m, _ -> err m
      | _, None ->
          err
            (Printf.sprintf "unknown direction %S (north|south|west|east)" d))
  | [ kw; t ] when String.lowercase_ascii kw = "no_lsu" -> (
      match int_of "tile" t with
      | Ok tile -> Ok (Some (Cgra.No_lsu { tile }))
      | Error m -> err m)
  | kw :: _ ->
      err
        (Printf.sprintf
           "unknown fault %S (expected dead_tile | cm_rows_stuck | dead_link \
            | no_lsu)"
           kw)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line ~lineno line with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some f) -> go (lineno + 1) (f :: acc) rest
        | Error _ as e -> e)
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> ( match of_string s with Ok fs -> Ok fs | Error m -> Error m)
  | exception Sys_error m -> Error m
