type src = Rf of int | Crf of int | Nbr of int * int

type instr =
  | Iop of {
      opcode : Cgra_ir.Opcode.t;
      srcs : src list;
      dst : int option;
      set_cond : bool;
    }
  | Imov of { from_tile : int; from_slot : int; dst : int }
  | Icopy of { src : src; dst : int; set_cond : bool }
  | Ipnop of int

let duration = function Ipnop n -> n | Iop _ | Imov _ | Icopy _ -> 1

let is_pnop = function Ipnop _ -> true | Iop _ | Imov _ | Icopy _ -> false

let words _ = 1

let src_to_string = function
  | Rf i -> Printf.sprintf "r%d" i
  | Crf i -> Printf.sprintf "c%d" i
  | Nbr (t, i) -> Printf.sprintf "T%02d.r%d" t i

let to_string = function
  | Iop { opcode; srcs; dst; set_cond } ->
    let dst_s = match dst with Some d -> Printf.sprintf "r%d" d | None -> "-" in
    Printf.sprintf "%s%s %s, %s"
      (Cgra_ir.Opcode.to_string opcode)
      (if set_cond then ".c" else "")
      dst_s
      (String.concat ", " (List.map src_to_string srcs))
  | Imov { from_tile; from_slot; dst } ->
    Printf.sprintf "mov r%d, T%02d.r%d" dst from_tile from_slot
  | Icopy { src; dst; set_cond } ->
    Printf.sprintf "copy%s r%d, %s" (if set_cond then ".c" else "") dst
      (src_to_string src)
  | Ipnop n -> Printf.sprintf "pnop %d" n

(* 64-bit word layout (from bit 63 down):
   [63:62] kind: 0 op, 1 mov, 2 copy, 3 pnop
   op:   [61:56] opcode index  [55] set_cond  [54] has_dst  [53:46] dst
         [45:44] nsrcs  then 3 x 14-bit srcs at [43:30] [29:16] [15:2]
   mov:  [61:54] from_tile  [53:46] from_slot  [45:38] dst
   copy: [61:48] src  [47:40] dst  [39] set_cond
   pnop: [31:0] length
   src (14 bits): [13:12] kind (0 RF, 1 CRF, 2 neighbour),
                  [11:5] neighbour tile (up to 128 tiles), [4:0] slot *)

let opcode_index op =
  (* Total: an opcode missing from [Opcode.all] encodes as the
     reserved index 63, which [decode] rejects as a bad opcode — a
     typed error instead of an [Assert_failure] inside a fault
     campaign. *)
  let rec find i = function
    | [] -> 0x3F
    | o :: tl -> if o = op then i else find (i + 1) tl
  in
  find 0 Cgra_ir.Opcode.all

let opcode_of_index i = List.nth_opt Cgra_ir.Opcode.all i

let src_bits = function
  | Rf i -> i land 0x1F
  | Crf i -> 0x1000 lor (i land 0x1F)
  | Nbr (t, i) -> 0x2000 lor ((t land 0x7F) lsl 5) lor (i land 0x1F)

let src_of_bits b =
  match (b lsr 12) land 0x3 with
  | 0 -> Rf (b land 0x1F)
  | 1 -> Crf (b land 0x1F)
  | _ -> Nbr ((b lsr 5) land 0x7F, b land 0x1F)

let ( <<< ) v n = Int64.shift_left (Int64.of_int v) n
let field w pos width = Int64.to_int (Int64.logand (Int64.shift_right_logical w pos) (Int64.of_int ((1 lsl width) - 1)))

let encode = function
  | Iop { opcode; srcs; dst; set_cond } ->
    let base =
      Int64.logor (0 <<< 62)
        (Int64.logor (opcode_index opcode <<< 56)
           (Int64.logor ((if set_cond then 1 else 0) <<< 55)
              (match dst with
               | Some d -> Int64.logor (1 <<< 54) (d land 0xFF <<< 46)
               | None -> 0L)))
    in
    let n = List.length srcs in
    let with_srcs =
      List.fold_left
        (fun (acc, pos) s -> (Int64.logor acc (src_bits s <<< pos), pos - 14))
        (Int64.logor base (n <<< 44), 30)
        srcs
      |> fst
    in
    with_srcs
  | Imov { from_tile; from_slot; dst } ->
    Int64.logor (1 <<< 62)
      (Int64.logor (from_tile land 0xFF <<< 54)
         (Int64.logor (from_slot land 0xFF <<< 46) (dst land 0xFF <<< 38)))
  | Icopy { src; dst; set_cond } ->
    Int64.logor (2 <<< 62)
      (Int64.logor (src_bits src <<< 48)
         (Int64.logor (dst land 0xFF <<< 40) ((if set_cond then 1 else 0) <<< 39)))
  | Ipnop n -> Int64.logor (3 <<< 62) (Int64.of_int (n land 0xFFFFFFFF))

let decode w =
  match field w 62 2 with
  | 0 ->
    (match opcode_of_index (field w 56 6) with
     | None -> Error "Isa.decode: bad opcode index"
     | Some opcode ->
       let set_cond = field w 55 1 = 1 in
       let dst = if field w 54 1 = 1 then Some (field w 46 8) else None in
       let n = field w 44 2 in
       let srcs =
         List.init n (fun i -> src_of_bits (field w (30 - (14 * i)) 14))
       in
       Ok (Iop { opcode; srcs; dst; set_cond }))
  | 1 ->
    Ok (Imov { from_tile = field w 54 8; from_slot = field w 46 8; dst = field w 38 8 })
  | 2 ->
    Ok
      (Icopy
         { src = src_of_bits (field w 48 14); dst = field w 40 8;
           set_cond = field w 39 1 = 1 })
  | _ ->
    (* kind = 3 — the two-bit field admits nothing else, so this arm
       is the total catch-all rather than an [assert false] a stray
       bit pattern could ever reach. *)
    let n = field w 0 32 in
    if n < 1 then Error "Isa.decode: pnop length < 1" else Ok (Ipnop n)
