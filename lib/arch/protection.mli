(** Context-memory protection profiles.

    Soft errors in the per-tile context memories are the array's dominant
    upset target (they hold the most state and are latch arrays, not
    hardened SRAM).  A {!profile} assigns a {!kind} of protection per CM
    {e size class} — the Table-I bank sizes 64/32/16 — so heterogeneous
    configurations can protect only the large banks.

    The protection choice is purely semantic for the mapper (placement is
    unchanged); it changes simulation (detection, correction, scrubbing —
    {!Cgra_sim.Simulator}), energy ({!Cgra_power.Energy}, the
    pay-for-protection price) and therefore artifact bytes, which is why
    it is part of the serve-store content address
    ({!Cgra_core.Flow_config.t.protection}). *)

type kind =
  | Unprotected
  | Parity  (** 1 check bit: single-bit upsets detected, never corrected *)
  | Secded
      (** Hamming(71,64) + overall parity (8 check bits): single-bit
          upsets corrected in place, double-bit upsets detected *)

type profile = { cm64 : kind; cm32 : kind; cm16 : kind }
(** Protection kind per CM size class: [cm64] covers banks of >= 64
    words, [cm32] banks of >= 32, [cm16] the rest. *)

val none : profile
val uniform : kind -> profile
val parity : profile
val secded : profile

val is_none : profile -> bool
(** [true] iff every class is [Unprotected] — the byte-identical default. *)

val for_cm : profile -> cm_words:int -> kind
(** The kind protecting a bank of [cm_words] (physical capacity). *)

val check_bits_of_kind : kind -> int
(** Check bits stored alongside each 64-bit context word (0, 1 or 8). *)

val default_scrub_interval : int
(** Global cycles between background scrub passes (1024). *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val profile_to_string : profile -> string
(** Canonical spelling: a uniform kind name ("none", "parity", "secded")
    or "cm64=K,cm32=K,cm16=K" — the serve-key knob value. *)

val profile_of_string : string -> profile option
(** Inverse of {!profile_to_string}; also accepts per-class assignments
    in any order. *)

val valid_values : string
(** Human-readable list of accepted spellings, for CLI error messages. *)
