(* Per-event energies in pJ at 0.6 V, 28nm-class, and area-proportional
   leakage at a near-sensor clock — see EXPERIMENTS.md for the calibration
   against the paper's reported ratios.  The context memories are latch
   arrays: their read energy grows superlinearly with depth (read mux plus
   clock loading of all words), which is what makes small CMs pay off. *)

type breakdown = {
  fetch_pj : float;
  compute_pj : float;
  moves_pj : float;
  memory_pj : float;
  leakage_pj : float;
  protect_pj : float;
  total_pj : float;
}

let clock_mhz = 20.0

(* CGRA side *)
let e_fetch_base = 0.08
let e_fetch_per_word = 0.0055
let e_fetch_per_word2 = 0.00077
let e_instr_base = 0.15 (* decode + RF read/write *)
let e_alu = 0.30
let e_mul_extra = 0.60
let e_move = 0.20
let e_lsu = 0.35
let e_dmem = 2.0

(* Leakage: latch-array context memories leak denser than logic/SRAM. *)
let cm_leak_uw_per_um2 = 0.002
let leak_uw_per_um2 = 0.0004

(* Context-memory protection: per-word check/encode event energies.  The
   parity tree is a 64-bit XOR reduction; SECDED adds the seven Hamming
   trees plus the correction mux, so checks cost roughly the ratio of
   their XOR-tree sizes.  Encode (at configuration load) pays slightly
   more than check for the write of the check bits themselves. *)
let e_parity_check = 0.012
let e_parity_encode = 0.015
let e_secded_check = 0.05
let e_secded_encode = 0.065

let e_check = function
  | Cgra_arch.Protection.Unprotected -> 0.0
  | Cgra_arch.Protection.Parity -> e_parity_check
  | Cgra_arch.Protection.Secded -> e_secded_check

let e_encode = function
  | Cgra_arch.Protection.Unprotected -> 0.0
  | Cgra_arch.Protection.Parity -> e_parity_encode
  | Cgra_arch.Protection.Secded -> e_secded_encode

(* CPU side: instruction-cache fetch + decode + forwarding-network RF per
   retired instruction, plus an ungated clock-tree/pipeline background
   cost every cycle — the single-issue core cannot clock-gate the way the
   CGRA's pnop/section mechanism does. *)
let e_cpu_instr = 25.0
let e_cpu_cycle = 12.0
let e_cpu_mul_extra = 0.9
let e_cpu_dmem = 2.0

let leak_pj_of ~uw ~cycles =
  (* E = P * t; pJ = uW * us; one cycle at [clock_mhz] lasts 1/clock us. *)
  uw *. (float_of_int cycles /. clock_mhz)

let e_fetch cm_words =
  let w = float_of_int cm_words in
  e_fetch_base +. (e_fetch_per_word *. w) +. (e_fetch_per_word2 *. w *. w)

let cgra ?protect (c : Cgra_arch.Cgra.t) (r : Cgra_sim.Simulator.result) =
  let fetch = ref 0.0
  and compute = ref 0.0
  and moves = ref 0.0
  and memory = ref 0.0 in
  Array.iteri
    (fun t (a : Cgra_sim.Simulator.activity) ->
      let tile = c.Cgra_arch.Cgra.tiles.(t) in
      fetch := !fetch +. (float_of_int a.fetches *. e_fetch tile.cm_words);
      let instr = a.alu_ops + a.mem_ops + a.moves in
      compute :=
        !compute
        +. (float_of_int instr *. e_instr_base)
        +. (float_of_int a.alu_ops *. e_alu)
        +. (float_of_int a.mul_ops *. e_mul_extra);
      moves := !moves +. (float_of_int a.moves *. e_move);
      memory := !memory +. (float_of_int a.mem_ops *. (e_lsu +. e_dmem)))
    r.Cgra_sim.Simulator.activity;
  (* Pay-for-protection terms: check-on-fetch, encode-on-write at
     configuration load, scrub traffic (a CM read + check per scrubbed
     word), and the leakage of the extra check-bit columns (check_bits/64
     of the protected CM area, at CM leakage density).  All four are 0.0
     when protection is off, leaving every float below bit-identical. *)
  let protect_ev = ref 0.0 and protect_extra_uw = ref 0.0 in
  (match protect, r.Cgra_sim.Simulator.ecc with
   | Some profile, Some e ->
     Array.iteri
       (fun t (a : Cgra_sim.Simulator.activity) ->
         let tile = c.Cgra_arch.Cgra.tiles.(t) in
         let k =
           Cgra_arch.Protection.for_cm profile
             ~cm_words:(Cgra_arch.Cgra.base_cm c t)
         in
         if k <> Cgra_arch.Protection.Unprotected then begin
           protect_ev :=
             !protect_ev
             +. (float_of_int a.fetches *. e_check k)
             +. (float_of_int e.Cgra_sim.Simulator.written.(t) *. e_encode k)
             +. (float_of_int e.Cgra_sim.Simulator.scrub_reads.(t)
                 *. (e_fetch tile.cm_words +. e_check k));
           protect_extra_uw :=
             !protect_extra_uw
             +. (float_of_int tile.cm_words *. Area.cm_word_um2
                 *. (float_of_int (Cgra_arch.Protection.check_bits_of_kind k)
                     /. 64.0)
                 *. cm_leak_uw_per_um2)
         end)
       r.Cgra_sim.Simulator.activity
   | _, _ -> ());
  let cm_um2 =
    Array.fold_left
      (fun acc t -> acc +. (float_of_int t.Cgra_arch.Cgra.cm_words *. Area.cm_word_um2))
      0.0 c.Cgra_arch.Cgra.tiles
  in
  let logic_um2 = Area.total (Area.cgra_breakdown c) -. cm_um2 in
  let system_uw =
    (cm_um2 *. cm_leak_uw_per_um2) +. (logic_um2 *. leak_uw_per_um2)
  in
  let leakage = leak_pj_of ~uw:system_uw ~cycles:r.cycles in
  let protect_pj =
    !protect_ev +. leak_pj_of ~uw:!protect_extra_uw ~cycles:r.cycles
  in
  let total = !fetch +. !compute +. !moves +. !memory +. leakage +. protect_pj in
  {
    fetch_pj = !fetch;
    compute_pj = !compute;
    moves_pj = !moves;
    memory_pj = !memory;
    leakage_pj = leakage;
    protect_pj;
    total_pj = total;
  }

let cpu (r : Cgra_cpu.Cpu_sim.result) =
  let fetch =
    (float_of_int r.Cgra_cpu.Cpu_sim.instructions *. e_cpu_instr)
    +. (float_of_int r.cycles *. e_cpu_cycle)
  in
  let compute = float_of_int r.muls *. e_cpu_mul_extra in
  let memory = float_of_int (r.loads + r.stores) *. e_cpu_dmem in
  let system_uw = Area.total (Area.cpu_breakdown ()) *. leak_uw_per_um2 in
  let leakage = leak_pj_of ~uw:system_uw ~cycles:r.cycles in
  {
    fetch_pj = fetch;
    compute_pj = compute;
    moves_pj = 0.0;
    memory_pj = memory;
    leakage_pj = leakage;
    protect_pj = 0.0;
    total_pj = fetch +. compute +. memory +. leakage;
  }

let to_uj pj = pj /. 1.0e6
