(** Analytical energy model (Table II).

    Substitutes PrimePower analysis at 0.6 V / 28nm with per-event energy
    constants integrated over the simulators' activity counters.  The
    context-memory fetch energy and leakage scale with the CM size — the
    mechanism behind the paper's energy gains for the heterogeneous
    configurations — and the array runs at the near-sensor clock the
    paper's platform class uses (tens of MHz), where leakage is a visible
    share.  Constants are calibrated (see EXPERIMENTS.md) so that the
    paper's *ratios* hold: context-aware HET mappings gain 1.4-3.1x over
    HOM64, and the CGRA gains 5-23x over the CPU. *)

type breakdown = {
  fetch_pj : float;    (** context-memory instruction fetches *)
  compute_pj : float;  (** ALU, multiplier, per-instruction base *)
  moves_pj : float;    (** routing moves, copies, neighbour reads *)
  memory_pj : float;   (** LSU + data-memory accesses *)
  leakage_pj : float;  (** area-proportional static energy over runtime *)
  protect_pj : float;  (** ECC check-on-fetch, encode-on-write, scrub
                           traffic, and check-bit column leakage; 0.0
                           when protection is off *)
  total_pj : float;
}

val clock_mhz : float
(** Common clock of CGRA and CPU (default 50 MHz). *)

val cgra :
  ?protect:Cgra_arch.Protection.profile ->
  Cgra_arch.Cgra.t ->
  Cgra_sim.Simulator.result ->
  breakdown
(** Integrates the per-tile activity of a simulation run.  With
    [?protect] (and a result carrying ECC counters), adds the
    pay-for-protection terms into [protect_pj] and the total; without
    it every field is bit-identical to the unprotected model. *)

val cpu : Cgra_cpu.Cpu_sim.result -> breakdown
(** CPU-side model: per-instruction fetch/decode/RF energy, data-memory
    accesses, core + memory leakage. *)

val to_uj : float -> float
(** Picojoules to microjoules (Table II's unit). *)
