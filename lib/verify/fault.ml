module Asm = Cgra_asm.Assemble
module Sim = Cgra_sim.Simulator
module Isa = Cgra_arch.Isa
module Cgra = Cgra_arch.Cgra
module Opcode = Cgra_ir.Opcode
module Rng = Cgra_util.Rng
module Pool = Cgra_util.Pool

type injection =
  | Context_bit of { tile : int; word : int; bit : int }
  | Crf_bit of { tile : int; index : int; bit : int }
  | Rf_bit of { cycle : int; tile : int; reg : int; bit : int }

type outcome =
  | Masked
  | Wrong_output
  | Crash of string
  | Hang
  | Detected
  | Corrected

type trial = { index : int; injection : injection; outcome : outcome }

type summary = {
  trials : int;
  masked : int;
  wrong_output : int;
  crash : int;
  hang : int;
  detected : int;
  corrected : int;
}

type campaign = {
  summary : summary;
  runs : trial list;  (** in trial-index order, independent of [jobs] *)
  golden_cycles : int;
}

let injection_to_string = function
  | Context_bit { tile; word; bit } ->
    Printf.sprintf "CM   tile %2d word %3d bit %2d" tile word bit
  | Crf_bit { tile; index; bit } ->
    Printf.sprintf "CRF  tile %2d slot %3d bit %2d" tile index bit
  | Rf_bit { cycle; tile; reg; bit } ->
    Printf.sprintf "RF   tile %2d reg  %3d bit %2d @cycle %d" tile reg bit cycle

let outcome_to_string = function
  | Masked -> "masked"
  | Wrong_output -> "wrong-output"
  | Crash e -> "crash: " ^ e
  | Hang -> "hang"
  | Detected -> "detected"
  | Corrected -> "corrected"

let summarize runs =
  List.fold_left
    (fun s t ->
      match t.outcome with
      | Masked -> { s with masked = s.masked + 1 }
      | Wrong_output -> { s with wrong_output = s.wrong_output + 1 }
      | Crash _ -> { s with crash = s.crash + 1 }
      | Hang -> { s with hang = s.hang + 1 }
      | Detected -> { s with detected = s.detected + 1 }
      | Corrected -> { s with corrected = s.corrected + 1 })
    {
      trials = List.length runs;
      masked = 0;
      wrong_output = 0;
      crash = 0;
      hang = 0;
      detected = 0;
      corrected = 0;
    }
    runs

(* Rebuild one tile's program from its bit-flipped binary image.  The
   per-section instruction counts of the original program give the section
   boundaries back (every instruction, pnops included, is one word). *)
let reassemble_tile (tp : Asm.tile_program) (words : int64 array) =
  let decoded = Array.map Isa.decode words in
  let bad = ref None in
  Array.iter
    (fun d -> match d with Error e when !bad = None -> bad := Some e | _ -> ())
    decoded;
  match !bad with
  | Some e -> Error e
  | None ->
    let cursor = ref 0 in
    let sections =
      Array.map
        (fun sec ->
          List.map
            (fun _ ->
              let d = decoded.(!cursor) in
              incr cursor;
              match d with Ok i -> i | Error _ -> assert false)
            sec)
        tp.Asm.sections
    in
    Ok { tp with Asm.sections }

let run_trial ~key ~seed ~mem_ports ~max_blocks ~(program : Asm.program)
    ~ctx_words ~ctx_sites ~crf_sites ~golden_cycles ~fresh_mem ~golden ~protect
    ~cm_only index =
  let rng = Rng.create (Rng.seed_of ~base:seed (key ^ "#" ^ string_of_int index)) in
  let cgra = program.Asm.mapping.Cgra_core.Mapping.cgra in
  let nt = Cgra.tile_count cgra in
  (* RF injections must land on live resources: a trial targeting a dead
     tile of an actively degraded array ([--faults]) exercises nothing and
     would count as a spurious mask.  Context and CRF sites are already
     live by construction — the site walk below enumerates the assembled
     program, which places no words on dead tiles and none beyond a
     stuck-row-reduced capacity.  On a pristine array [live] is the
     identity, so the draw below is byte-identical to [Rng.int rng nt]. *)
  let live =
    Array.of_list (List.filter (Cgra.alive cgra) (List.init nt Fun.id))
  in
  (* Class mix: context memory is the paper's dominant structure, so it
     takes half the injections; the rest split between the constant pools
     (when any exist) and live RF state.  [cm_only] campaigns (the
     protection report) draw nothing for the class, so sites coincide at
     every protection level. *)
  let kind =
    if cm_only then `Ctx
    else
      let r = Rng.int rng 100 in
      if r < 50 && ctx_sites > 0 then `Ctx
      else if r < 75 && crf_sites > 0 then `Crf
      else if ctx_sites > 0 && Rng.bool rng then `Ctx
      else `Rf
  in
  let injection =
    match kind with
    | `Ctx ->
      let site = Rng.int rng ctx_sites in
      (* Walk the per-tile word counts to the owning tile. *)
      let tile = ref 0 and off = ref site in
      while !off >= Array.length ctx_words.(!tile) do
        off := !off - Array.length ctx_words.(!tile);
        incr tile
      done;
      Context_bit { tile = !tile; word = !off; bit = Rng.int rng 64 }
    | `Crf ->
      let site = Rng.int rng crf_sites in
      let tile = ref 0 and off = ref site in
      while !off >= Array.length program.Asm.tiles.(!tile).Asm.crf do
        off := !off - Array.length program.Asm.tiles.(!tile).Asm.crf;
        incr tile
      done;
      Crf_bit { tile = !tile; index = !off; bit = Rng.int rng 32 }
    | `Rf ->
      Rf_bit
        {
          cycle = Rng.int rng (max 1 golden_cycles);
          tile = live.(Rng.int rng (Array.length live));
          reg = Rng.int rng cgra.Cgra.rf_words;
          bit = Rng.int rng 32;
        }
  in
  (* Under protection, a context upset is handed to the simulator as a
     stored-image [upset] so the ECC fetch path sees it; unprotected
     campaigns keep the pre-existing reassembly route.  [faulted] carries
     the program, the RF fault list and the upset list. *)
  let faulted, rf_faults, upsets =
    match injection with
    | Context_bit { tile; word; bit } when protect <> None ->
      (Ok program, [], [ { Sim.up_tile = tile; up_word = word; up_bit = bit } ])
    | Context_bit { tile; word; bit } ->
      let words = Array.copy ctx_words.(tile) in
      words.(word) <- Int64.logxor words.(word) (Int64.shift_left 1L bit);
      (match reassemble_tile program.Asm.tiles.(tile) words with
       | Error e -> (Error ("undecodable context word: " ^ e), [], [])
       | Ok tp ->
         ( Ok
             {
               program with
               Asm.tiles =
                 Array.mapi
                   (fun i t -> if i = tile then tp else t)
                   program.Asm.tiles;
             },
           [],
           [] ))
    | Crf_bit { tile; index; bit } ->
      let tp = program.Asm.tiles.(tile) in
      let crf = Array.copy tp.Asm.crf in
      crf.(index) <- Opcode.wrap32 (crf.(index) lxor (1 lsl bit));
      ( Ok
          {
            program with
            Asm.tiles =
              Array.mapi
                (fun i t -> if i = tile then { tp with Asm.crf } else t)
                program.Asm.tiles;
          },
        [],
        [] )
    | Rf_bit { cycle; tile; reg; bit } ->
      ( Ok program,
        [
          {
            Sim.at_cycle = cycle;
            fault_tile = tile;
            fault_reg = reg;
            xor_mask = 1 lsl bit;
          };
        ],
        [] )
  in
  let outcome =
    match faulted with
    | Error e -> Crash e
    | Ok p -> (
      let mem = fresh_mem () in
      match protect with
      | None -> (
        match Sim.run ~mem_ports ~max_blocks ~rf_faults p ~mem with
        | exception Sim.Sim_error (Sim.Runaway _) -> Hang
        | exception Sim.Sim_error e -> Crash (Sim.error_to_string e)
        | _ -> if mem = golden then Masked else Wrong_output)
      | Some pr -> (
        let pr = { pr with Sim.upsets } in
        match Sim.run ~mem_ports ~max_blocks ~rf_faults ~protect:pr p ~mem with
        | exception Sim.Sim_error (Sim.Runaway _) -> Hang
        | exception Sim.Sim_error (Sim.Uncorrectable_cm _) -> Detected
        | exception Sim.Sim_error e -> Crash (Sim.error_to_string e)
        | r ->
          if mem = golden then
            match r.Sim.ecc with
            | Some e when e.Sim.corrected > 0 -> Corrected
            | _ -> Masked
          else Wrong_output))
  in
  { index; injection; outcome }

let run_campaign ?jobs ?(mem_ports = 8) ?protect ?(cm_only = false) ~seed
    ~trials ~key ~fresh_mem (program : Asm.program) =
  (* An all-Unprotected profile is the same campaign as no profile at all;
     normalise so the unprotected path stays the pre-existing one. *)
  let protect =
    match protect with
    | Some p when not (Cgra_arch.Protection.is_none p) ->
      Some
        {
          Sim.profile = p;
          upsets = [];
          scrub_interval = Cgra_arch.Protection.default_scrub_interval;
        }
    | Some _ | None -> None
  in
  let golden = fresh_mem () in
  let baseline = Sim.run ~mem_ports ?protect program ~mem:golden in
  (* Corrupted control flow must terminate quickly: anything running past a
     generous multiple of the fault-free block count is a hang. *)
  let max_blocks = (baseline.Sim.blocks_executed * 4) + 64 in
  let ctx_words = Array.map Asm.encode_tile program.Asm.tiles in
  let ctx_sites = Array.fold_left (fun a w -> a + Array.length w) 0 ctx_words in
  let crf_sites =
    Array.fold_left (fun a t -> a + Array.length t.Asm.crf) 0 program.Asm.tiles
  in
  let runs =
    Pool.map ?jobs
      (run_trial ~key ~seed ~mem_ports ~max_blocks ~program ~ctx_words ~ctx_sites
         ~crf_sites ~golden_cycles:baseline.Sim.cycles ~fresh_mem ~golden
         ~protect ~cm_only)
      (List.init trials Fun.id)
  in
  { summary = summarize runs; runs; golden_cycles = baseline.Sim.cycles }

(* ------------------------------------------------------------------ *)
(* Permanent faults: random silicon-degradation maps for the self-repair
   campaigns (Repair).  Class mix mirrors what ages first in a
   CM-dominated fabric: stuck context-memory rows take the largest share,
   then severed mesh links, whole-PE death and broken load-store units. *)

let sample_permanent rng (cgra : Cgra.t) =
  let tile = Rng.int rng (Cgra.tile_count cgra) in
  let r = Rng.int rng 100 in
  if r < 20 then Cgra.Dead_tile { tile }
  else if r < 60 then
    let cm = Cgra.base_cm cgra tile in
    Cgra.Cm_rows_stuck { tile; rows = 1 + Rng.int rng (max 1 cm) }
  else if r < 85 then
    let dir =
      match Rng.int rng 4 with
      | 0 -> Cgra.North
      | 1 -> Cgra.South
      | 2 -> Cgra.West
      | _ -> Cgra.East
    in
    Cgra.Dead_link { tile; dir }
  else Cgra.No_lsu { tile }

(* Tiles whose resources a permanent fault sits on: the owning tile, plus
   the far endpoint of a severed link — either side may have placed a read
   across it. *)
let tiles cgra = function
  | Cgra.Dead_tile { tile } | Cgra.Cm_rows_stuck { tile; _ } | Cgra.No_lsu { tile }
    ->
    [ tile ]
  | Cgra.Dead_link { tile; dir } -> [ tile; Cgra.dir_neighbor cgra tile dir ]

let sample_fault_map rng cgra ~faults =
  let rec go k acc =
    if k <= 0 then List.rev acc
    else go (k - 1) (sample_permanent rng cgra :: acc)
  in
  go faults []
