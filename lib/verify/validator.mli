(** Independent mapping validator.

    A from-scratch re-check of every architectural invariant of a finished
    mapping and its assembled program — written against the fabric model
    only, sharing no accounting code with the mapper or the assembler, so
    a bug in either shows up as a typed {!violation} instead of a silently
    wrong artifact (the "independent validation" layer the CGRA toolchain
    literature asks for).

    Checks performed:
    - per-tile context words (independently recounted from the slots and
      from the assembled sections) within the tile's CM capacity;
    - every neighbour read — operand tiles, [Amove] sources, [Nbr]/[Imov]
      operands — at torus distance <= 1;
    - schedule legality per block: every value read on a tile was defined
      there strictly earlier (writes land end-of-cycle), or is a symbol
      live-in on its home tile, or an immediate;
    - CRF indices within the tile's constant pool, pools within the CRF
      capacity, RF slots and tile ids within the fabric;
    - section lengths consistent between mapping and program, instruction
      durations within each section, one instruction per (tile, cycle);
    - the binary context image round-trips through {!Cgra_arch.Isa.decode}. *)

type coord = { tile : int; block : int; cycle : int }

type violation =
  | Cm_overflow of { tile : int; words : int; capacity : int }
  | Usage_mismatch of { tile : int; mapping_words : int; program_words : int }
  | Non_neighbour_read of { at : coord; from_tile : int; distance : int }
  | Operand_not_ready of { at : coord; value : string }
  | Bad_crf_index of { at : coord; index : int; pool : int }
  | Crf_pool_overflow of { tile : int; pool : int; capacity : int }
  | Bad_rf_slot of { at : coord; reg : int; rf_words : int }
  | Bad_tile_ref of { at : coord; target : int; tiles : int }
  | Double_issue of { at : coord }
  | Slot_out_of_section of { at : coord; length : int }
  | Section_length_mismatch of
      { block : int; mapping_cycles : int; program_cycles : int }
  | Section_overrun of { tile : int; block : int; duration : int; length : int }
  | Operand_arity of { at : coord; node : int; operands : int; tiles : int }
  | Bad_node_ref of { at : coord; node : int; nodes : int }
  | Bad_home of { sym : int; home : int; tiles : int }
  | Block_index_mismatch of { block : int; bb : int }
  | Encoding_mismatch of { tile : int; word : int; detail : string }
  | Lsu_required of { at : coord; node : int }
      (** an operation needing the load-store unit sits on a tile that has
          none — on degraded arrays also raised for any operation placed on
          a dead tile ({!Cgra_arch.Cgra.can_execute}) *)

val to_string : violation -> string

val check_mapping : Cgra_core.Mapping.t -> violation list
(** Schedule-level invariants re-derived from the slots alone (no
    assembler involved): CM capacity, neighbour distances, operand
    readiness, double issue, section bounds, home sanity. *)

val check_program : Cgra_asm.Assemble.program -> violation list
(** Artifact-level invariants of the assembled per-tile programs: CM
    capacity recounted from the sections, CRF/RF/tile index ranges,
    section lengths and durations, encode/decode round-trip, and the
    cross-check of the mapper's word accounting against the artifact. *)

val check : Cgra_asm.Assemble.program -> violation list
(** {!check_mapping} on the embedded mapping followed by
    {!check_program}; [[]] means the artifact is clean. *)

val validate_mapping : Cgra_core.Mapping.t -> string list
(** Assembles the mapping (reporting {!Cgra_asm.Assemble.Assembly_error}
    as a violation rather than raising) and renders {!check}'s result as
    strings — the shape {!Cgra_core.Flow.set_validator} expects. *)

val install : unit -> unit
(** Registers {!validate_mapping} with {!Cgra_core.Flow.set_validator} so
    [Flow_config.validate] can reach it.  Idempotent. *)
