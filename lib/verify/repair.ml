module M = Cgra_core.Mapping
module Cdfg = Cgra_ir.Cdfg
module Flow = Cgra_core.Flow
module Flow_config = Cgra_core.Flow_config
module Asm = Cgra_asm.Assemble
module Sim = Cgra_sim.Simulator
module Energy = Cgra_power.Energy
module Cgra = Cgra_arch.Cgra
module Rng = Cgra_util.Rng
module Pool = Cgra_util.Pool

type mode = Full | Incremental

type remap_kind = Full_remap | Partial of { dirty : int; total : int }

type status =
  | Unaffected
  | Repaired of {
      mapping : M.t;
      rounds : int;
      escalations : int;
      cycles : int;
      energy_pj : float;
      remap : remap_kind;
    }
  | Gave_up of { reason : string; rounds : int }

type trace = {
  injected : Cgra.fault list;
  detected : Validator.violation list;
  diagnosed : Cgra.fault list;
  status : status;
}

(* Drop faults subsumed by a Dead_tile on the same tile, then normalise
   like [Cgra.degrade] does, so the diagnosed map reads minimally. *)
let normalize_faults fs =
  let dead =
    List.filter_map
      (function Cgra.Dead_tile { tile } -> Some tile | _ -> None)
      fs
  in
  List.sort_uniq compare fs
  |> List.filter (function
       | Cgra.Cm_rows_stuck { tile; _ } | Cgra.No_lsu { tile } ->
           not (List.mem tile dead)
       | _ -> true)

let detect ~truth (m : M.t) = Validator.check_mapping { m with M.cgra = truth }

let diagnose ~pristine vs =
  List.concat_map
    (fun v ->
      match (v : Validator.violation) with
      | Validator.Cm_overflow { tile; capacity; _ } ->
          if capacity = 0 then [ Cgra.Dead_tile { tile } ]
          else
            let rows = Cgra.base_cm pristine tile - capacity in
            if rows > 0 then [ Cgra.Cm_rows_stuck { tile; rows } ] else []
      | Validator.Non_neighbour_read { at; from_tile; _ } -> (
          (* A read that was one hop on the pristine torus now is not:
             the direct link must be gone.  (When the far endpoint is in
             fact dead, the remap on the link-only map re-violates and the
             next round upgrades the diagnosis.) *)
          match Cgra.dir_between pristine at.Validator.tile from_tile with
          | Some dir -> [ Cgra.Dead_link { tile = at.Validator.tile; dir } ]
          | None -> [])
      | Validator.Lsu_required { at; _ } ->
          [ Cgra.No_lsu { tile = at.Validator.tile } ]
      | _ -> [])
    vs
  |> normalize_faults

(* Incremental remap, step 1: which blocks does the diagnosed fault map
   actually touch?  A block must be re-searched iff its placement uses a
   faulted resource: an executing tile, an operand/move source tile, or
   the home tile of a symbol it reads or writes (home references are
   collected from both the placement — [writes_sym], [Vsym] move/copy
   values — and the CDFG — [Sym] operands, live-out assignments, branch
   conditions; over-approximating only re-searches more, never less).
   Returns the per-block dirty flags plus the kept-homes array: the home
   tile per symbol, [-1] when the home sat on a faulted tile.  Freed
   symbols are safe to re-pin because the home-reference rule already
   marked every block that touches them dirty. *)
let dirty_blocks (m : M.t) faults =
  let cgra = m.M.cgra in
  let nt = Cgra.tile_count cgra in
  let bad = Array.make nt false in
  List.iter
    (fun f ->
      List.iter
        (fun t -> if t >= 0 && t < nt then bad.(t) <- true)
        (Fault.tiles cgra f))
    faults;
  let bad_tile t = t >= 0 && t < nt && bad.(t) in
  let bad_home s = bad_tile m.M.homes.(s) in
  let value_refs = function M.Vsym s -> bad_home s | M.Vnode _ | M.Vimm _ -> false in
  let dirty =
    Array.mapi
      (fun bi (bm : M.bb_mapping) ->
        let block = m.M.cdfg.Cdfg.blocks.(bi) in
        let nodes = block.Cdfg.nodes in
        let slot_dirty (sl : M.slot) =
          bad_tile sl.M.tile
          || (match sl.M.writes_sym with Some s -> bad_home s | None -> false)
          ||
          match sl.M.action with
          | M.Aop { node = j; operand_tiles } ->
            List.exists bad_tile operand_tiles
            || j >= 0
               && j < Array.length nodes
               && List.exists
                    (function Cdfg.Sym s -> bad_home s | _ -> false)
                    nodes.(j).Cdfg.operands
          | M.Amove { value; from_tile } ->
            bad_tile from_tile || value_refs value
          | M.Acopy value -> value_refs value
        in
        let block_sym_dirty =
          List.exists
            (fun (s, op) ->
              bad_home s
              || match op with Cdfg.Sym s' -> bad_home s' | _ -> false)
            block.Cdfg.live_out
          ||
          match block.Cdfg.terminator with
          | Cdfg.Branch (Cdfg.Sym s, _, _) -> bad_home s
          | _ -> false
        in
        block_sym_dirty || List.exists slot_dirty bm.M.slots)
      m.M.bbs
  in
  let kept = Array.map (fun h -> if bad_tile h then -1 else h) m.M.homes in
  (dirty, kept)

let repair ?(max_rounds = 4) ?(mem_ports = 8) ?(mode = Full) ~config ~injected
    ~fresh_mem ~golden (pristine_m : M.t) =
  let pristine = pristine_m.M.cgra in
  let truth = Cgra.degrade pristine injected in
  let detected = detect ~truth pristine_m in
  if detected = [] then { injected; detected; diagnosed = []; status = Unaffected }
  else
    (* One remap attempt on the accumulated fault map.  Incremental mode
       re-searches only the dirty blocks with the survivors' placements
       pre-committed, falling back to a full remap when every block is
       dirty or the partial search dead-ends. *)
    let remap cfg faults' =
      let full () =
        (Flow.run ~config:cfg pristine pristine_m.M.cdfg, Full_remap)
      in
      match mode with
      | Full -> full ()
      | Incremental -> (
        let dirty, kept = dirty_blocks pristine_m faults' in
        let ndirty = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dirty in
        let total = Array.length dirty in
        if ndirty >= total then full ()
        else
          match
            Flow.run_partial ~config:cfg ~base:pristine_m ~dirty ~homes:kept
              pristine
          with
          | Ok _ as ok -> (ok, Partial { dirty = ndirty; total })
          | Error _ -> full ())
    in
    let rec go round faults vs =
      let faults' = normalize_faults (faults @ diagnose ~pristine vs) in
      if faults' = faults then
        ( faults,
          Gave_up { reason = "violations not attributable to a fault"; rounds = round } )
      else if round > max_rounds then
        (faults', Gave_up { reason = "diagnosis did not converge"; rounds = round })
      else
        let cfg = { config with Flow_config.faults = faults' } in
        match remap cfg faults' with
        | Error f, _ ->
            ( faults',
              Gave_up
                { reason = "remap failed: " ^ f.Flow.reason; rounds = round } )
        | Ok (m, stats), remap_kind -> (
            match detect ~truth m with
            | [] -> (
                (* The remap satisfies every invariant on the true degraded
                   array; final word goes to the simulator. *)
                match Asm.assemble m with
                | exception Asm.Assembly_error e ->
                    ( faults',
                      Gave_up
                        { reason = "assembly failed after repair: " ^ e;
                          rounds = round } )
                | p -> (
                    let mem = fresh_mem () in
                    match Sim.run ~mem_ports p ~mem with
                    | exception Sim.Sim_error e ->
                        ( faults',
                          Gave_up
                            { reason =
                                "simulation failed after repair: "
                                ^ Sim.error_to_string e;
                              rounds = round } )
                    | res ->
                        if mem <> golden then
                          ( faults',
                            Gave_up
                              { reason = "wrong output after repair";
                                rounds = round } )
                        else
                          ( faults',
                            Repaired
                              {
                                mapping = m;
                                rounds = round;
                                escalations =
                                  List.length stats.Flow.escalations;
                                cycles = res.Sim.cycles;
                                energy_pj = (Energy.cgra truth res).Energy.total_pj;
                                remap = remap_kind;
                              } )))
            | vs' -> go (round + 1) faults' vs')
    in
    let diagnosed, status = go 1 [] detected in
    { injected; detected; diagnosed; status }

let status_to_string = function
  | Unaffected -> "unaffected"
  | Repaired { rounds; escalations; cycles; remap; _ } ->
      (* Full-remap wording is byte-identical to the pre-incremental tool,
         so full-mode reports stay stable artifacts. *)
      Printf.sprintf "remapped (%d diagnosis round%s, %d escalation%s, %d cycles%s)"
        rounds
        (if rounds = 1 then "" else "s")
        escalations
        (if escalations = 1 then "" else "s")
        cycles
        (match remap with
         | Full_remap -> ""
         | Partial { dirty; total } ->
             Printf.sprintf ", partial %d/%d blocks" dirty total)
  | Gave_up { reason; rounds } ->
      Printf.sprintf "gave up after %d round%s: %s" rounds
        (if rounds = 1 then "" else "s")
        reason

let trace_to_string t =
  let faults fs =
    if fs = [] then "(none)"
    else String.concat " " (List.map Cgra.fault_to_string fs)
  in
  let detected =
    match t.detected with
    | [] -> "no invariant violated"
    | vs ->
        Printf.sprintf "%d violation%s, first: %s" (List.length vs)
          (if List.length vs = 1 then "" else "s")
          (Validator.to_string (List.hd vs))
  in
  Printf.sprintf
    "injected:  %s\ndetected:  %s\ndiagnosed: %s\nresult:    %s"
    (faults t.injected) detected (faults t.diagnosed)
    (status_to_string t.status)

(* ------------------------------------------------------------------ *)
(* Survivability campaigns. *)

type trial = { index : int; trace : trace }

type summary = {
  trials : int;
  unaffected : int;
  repaired : int;
  partial_repairs : int;
  gave_up : int;
  mean_cycle_overhead : float;
  mean_energy_overhead : float;
}

type campaign = {
  runs : trial list;
  summary : summary;
  pristine_cycles : int;
  pristine_energy_pj : float;
}

let summarize ~pristine_cycles ~pristine_energy_pj runs =
  let z =
    { trials = List.length runs; unaffected = 0; repaired = 0;
      partial_repairs = 0; gave_up = 0;
      mean_cycle_overhead = 0.0; mean_energy_overhead = 0.0 }
  in
  let s, covh, eovh =
    List.fold_left
      (fun (s, covh, eovh) t ->
        match t.trace.status with
        | Unaffected -> ({ s with unaffected = s.unaffected + 1 }, covh, eovh)
        | Gave_up _ -> ({ s with gave_up = s.gave_up + 1 }, covh, eovh)
        | Repaired { cycles; energy_pj; remap; _ } ->
            ( { s with
                repaired = s.repaired + 1;
                partial_repairs =
                  (s.partial_repairs
                  + match remap with Partial _ -> 1 | Full_remap -> 0) },
              covh
              +. ((float_of_int cycles -. float_of_int pristine_cycles)
                 /. float_of_int (max 1 pristine_cycles)),
              eovh +. ((energy_pj -. pristine_energy_pj) /. pristine_energy_pj) ))
      (z, 0.0, 0.0) runs
  in
  if s.repaired = 0 then s
  else
    { s with
      mean_cycle_overhead = covh /. float_of_int s.repaired;
      mean_energy_overhead = eovh /. float_of_int s.repaired }

let run_campaign ?jobs ?(mem_ports = 8) ?(max_rounds = 4) ?(mode = Full) ~seed
    ~trials ~faults ~key ~config ~fresh_mem (pristine_m : M.t) =
  let pristine = pristine_m.M.cgra in
  let program = Asm.assemble pristine_m in
  let golden = fresh_mem () in
  let baseline = Sim.run ~mem_ports program ~mem:golden in
  let pristine_energy_pj = (Energy.cgra pristine baseline).Energy.total_pj in
  let run_trial index =
    let rng =
      Rng.create (Rng.seed_of ~base:seed (key ^ "#" ^ string_of_int index))
    in
    let injected = Fault.sample_fault_map rng pristine ~faults in
    (* Per-trial remap seed: trials stay independent of each other and of
       the evaluation order, so the campaign is [--jobs]-deterministic. *)
    let config =
      { config with
        Flow_config.seed =
          Rng.seed_of ~base:config.Flow_config.seed
            (key ^ "#remap#" ^ string_of_int index) }
    in
    { index;
      trace =
        repair ~max_rounds ~mem_ports ~mode ~config ~injected ~fresh_mem
          ~golden pristine_m }
  in
  let runs = Pool.map ?jobs run_trial (List.init trials Fun.id) in
  {
    runs;
    summary =
      summarize ~pristine_cycles:baseline.Sim.cycles ~pristine_energy_pj runs;
    pristine_cycles = baseline.Sim.cycles;
    pristine_energy_pj;
  }
