(** Self-repair: detect → diagnose → remap around permanent faults.

    The repair loop models a field scenario: a kernel was mapped on the
    pristine array, the silicon then degraded (the {e injected} fault map
    — ground truth the tool never reads directly), and the runtime only
    observes that architectural invariants now fail.  {!Validator}
    {e detects} the violations on the true degraded array, {!diagnose}
    attributes them back to a candidate fault map:

    - [Cm_overflow] with capacity 0 → [Dead_tile];
    - [Cm_overflow] with reduced capacity → [Cm_rows_stuck] of the
      missing rows (pristine capacity minus observed);
    - [Non_neighbour_read] between pristine-adjacent tiles → [Dead_link];
    - [Lsu_required] → [No_lsu].

    The mapper then {e remaps} on [Cgra.degrade pristine diagnosed]
    through the ordinary flow (the graceful-degradation ladder included
    when [config.degrade] is set).  Diagnosis may under-approximate —
    faults on resources the pristine mapping never used are invisible —
    so the loop iterates detect → diagnose → remap, accumulating faults,
    until the remap is violation-free on the true array (then confirmed
    against the golden memory image in the simulator) or a bounded number
    of rounds is exhausted. *)

type mode =
  | Full         (** every remap re-searches the whole kernel (PR-5 loop) *)
  | Incremental
      (** remaps reuse every block whose placement does not touch the
          diagnosed faults ({!dirty_blocks}) and re-search only the dirty
          ones via {!Cgra_core.Flow.run_partial}, falling back to a full
          remap when the dirty set is everything or the partial search
          fails *)

type remap_kind =
  | Full_remap  (** whole-kernel search (always the case in [Full] mode) *)
  | Partial of { dirty : int; total : int }
      (** incremental remap that re-searched [dirty] of [total] blocks *)

type status =
  | Unaffected
      (** the pristine mapping satisfies every invariant on the degraded
          array: the faults hit unused resources, nothing to repair *)
  | Repaired of {
      mapping : Cgra_core.Mapping.t;  (** remapped on the diagnosed array *)
      rounds : int;                   (** diagnosis rounds spent *)
      escalations : int;  (** degrade-ladder attempts of the final remap *)
      cycles : int;                   (** simulated cycles after repair *)
      energy_pj : float;  (** energy on the degraded array after repair *)
      remap : remap_kind;  (** how the final successful remap was run *)
    }
  | Gave_up of { reason : string; rounds : int }

type trace = {
  injected : Cgra_arch.Cgra.fault list;   (** ground truth *)
  detected : Validator.violation list;    (** first detection pass *)
  diagnosed : Cgra_arch.Cgra.fault list;  (** accumulated diagnosis *)
  status : status;
}

val detect :
  truth:Cgra_arch.Cgra.t -> Cgra_core.Mapping.t -> Validator.violation list
(** The mapping's invariants re-checked against the (degraded) [truth]
    array — {!Validator.check_mapping} with the fabric swapped. *)

val diagnose :
  pristine:Cgra_arch.Cgra.t ->
  Validator.violation list ->
  Cgra_arch.Cgra.fault list
(** Attribute violations to a normalised candidate fault map (sorted,
    deduplicated, [Dead_tile] subsuming same-tile CM/LSU faults). *)

val dirty_blocks :
  Cgra_core.Mapping.t ->
  Cgra_arch.Cgra.fault list ->
  bool array * int array
(** [dirty_blocks m faults] = [(dirty, kept_homes)]: [dirty.(b)] is true
    iff block [b]'s placement touches a fault — an executing tile, an
    operand/move source tile, or the home tile of a symbol the block
    reads or writes is in {!Fault.tiles} of some fault.  [kept_homes.(s)]
    is the symbol's home tile, or [-1] when that home sat on a faulted
    tile (freed for re-pinning; every block referencing such a symbol is
    dirty, so no surviving placement depends on the stale home).
    Soundness contract, qcheck-tested: no surviving ([not dirty.(b)])
    block touches any faulted tile. *)

val repair :
  ?max_rounds:int ->
  ?mem_ports:int ->
  ?mode:mode ->
  config:Cgra_core.Flow_config.t ->
  injected:Cgra_arch.Cgra.fault list ->
  fresh_mem:(unit -> int array) ->
  golden:int array ->
  Cgra_core.Mapping.t ->
  trace
(** Run the full loop for one injected fault map against the pristine
    mapping.  [golden] is the fault-free memory image the repaired
    program must reproduce; [max_rounds] bounds the diagnosis iterations
    (default 4); [mode] (default [Full]) selects whole-kernel or
    incremental remaps — both must converge to a golden-PASS repair,
    incremental just spends less search on it. *)

val status_to_string : status -> string
val trace_to_string : trace -> string
(** Four-line rendering: injected / detected / diagnosed / result. *)

type trial = { index : int; trace : trace }

type summary = {
  trials : int;
  unaffected : int;
  repaired : int;
  partial_repairs : int;
      (** repaired trials whose final remap was {!Partial} — always 0 in
          [Full] mode *)
  gave_up : int;
  mean_cycle_overhead : float;
      (** mean of (repaired - pristine) / pristine cycles over the
          repaired trials; 0 when none *)
  mean_energy_overhead : float;  (** same for total energy *)
}

type campaign = {
  runs : trial list;  (** in trial-index order, independent of [jobs] *)
  summary : summary;
  pristine_cycles : int;
  pristine_energy_pj : float;
}

val run_campaign :
  ?jobs:int ->
  ?mem_ports:int ->
  ?max_rounds:int ->
  ?mode:mode ->
  seed:int ->
  trials:int ->
  faults:int ->
  key:string ->
  config:Cgra_core.Flow_config.t ->
  fresh_mem:(unit -> int array) ->
  Cgra_core.Mapping.t ->
  campaign
(** [trials] independent repair trials against the pristine mapping, each
    injecting [faults] random permanent faults
    ({!Fault.sample_fault_map}).  Trial [i] draws from the keyed split
    [Rng.seed_of ~base:seed (key ^ "#" ^ i)] and remaps with a seed split
    from [config.seed] the same way, so the campaign is byte-identical at
    any [jobs] value — in either [mode]. *)
