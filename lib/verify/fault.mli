(** Deterministic fault-injection campaigns.

    Each trial flips one bit in the program's state — a context-memory
    word of the binary image ({!Cgra_asm.Assemble.encode_tile}), a
    constant-register-file entry, or a live register-file bit at a chosen
    cycle — re-runs the cycle-level simulator, and classifies the result:

    - {e masked}: the final data memory equals the fault-free image;
    - {e wrong-output}: simulation completed but the memory differs;
    - {e crash}: an undecodable context word, or a typed
      {!Cgra_sim.Simulator.Sim_error};
    - {e hang}: execution past 4x the fault-free block count
      ([max_blocks], surfacing as [Runaway]);
    - {e detected} (protected campaigns only): ECC flagged an
      uncorrectable context error and halted the run — a machine check,
      not a silent escape;
    - {e corrected} (protected campaigns only): the run completed with
      the right memory after at least one in-place ECC correction.

    Determinism: trial [i] of a campaign draws from its own keyed split
    [Rng.seed_of ~base:seed (key ^ "#" ^ i)], so the classification — and
    the whole per-trial list — is byte-identical at any [jobs] value and
    across reruns with the same seed. *)

type injection =
  | Context_bit of { tile : int; word : int; bit : int }
  | Crf_bit of { tile : int; index : int; bit : int }
  | Rf_bit of { cycle : int; tile : int; reg : int; bit : int }

type outcome =
  | Masked
  | Wrong_output
  | Crash of string
  | Hang
  | Detected   (** uncorrectable context error caught by ECC *)
  | Corrected  (** completed correctly after in-place ECC correction *)

type trial = { index : int; injection : injection; outcome : outcome }

type summary = {
  trials : int;
  masked : int;
  wrong_output : int;
  crash : int;
  hang : int;
  detected : int;   (** 0 on unprotected campaigns *)
  corrected : int;  (** 0 on unprotected campaigns *)
}

type campaign = {
  summary : summary;
  runs : trial list;  (** in trial-index order, independent of [jobs] *)
  golden_cycles : int;  (** fault-free execution cycles *)
}

val injection_to_string : injection -> string
val outcome_to_string : outcome -> string

val run_campaign :
  ?jobs:int ->
  ?mem_ports:int ->
  ?protect:Cgra_arch.Protection.profile ->
  ?cm_only:bool ->
  seed:int ->
  trials:int ->
  key:string ->
  fresh_mem:(unit -> int array) ->
  Cgra_asm.Assemble.program ->
  campaign
(** [run_campaign ~seed ~trials ~key ~fresh_mem program] first runs the
    fault-free program on [fresh_mem ()] to obtain the golden memory
    image, then executes [trials] independent single-fault trials
    (parallelised over [jobs] domains; default
    {!Cgra_util.Pool.default_jobs}).  [key] names the campaign — use a
    distinct key per (kernel, config, flow) point so campaigns draw
    independent streams.  The input [program] is never mutated.

    RF injections target only live tiles of the (possibly degraded)
    array; context and CRF sites are live by construction, since the
    assembled program places no words on dead tiles and none beyond a
    stuck-row-reduced capacity.

    With [?protect] (a non-[none] profile), trials run through the ECC
    fetch path with the default scrub cadence: context upsets are planted
    in the stored image instead of reassembled, uncorrectable errors
    classify as [Detected], corrected-then-completed runs as
    [Corrected].  Injection sampling never consults the profile, so trial
    [i] of a given [key]/[seed] flips the same bit at every protection
    level.  [?cm_only] restricts every trial to context-memory upsets
    (the protection report's mode); default [false].  Omitting both
    keeps the campaign byte-identical to the pre-existing one. *)

val sample_permanent : Cgra_util.Rng.t -> Cgra_arch.Cgra.t -> Cgra_arch.Cgra.fault
(** One random permanent fault on the (pristine) array: 20% dead tile,
    40% stuck CM rows (1..cm of the tile), 25% dead link, 15% broken LSU.
    Draws a bounded number of values from [rng], so sampling is
    deterministic for a given stream position. *)

val sample_fault_map :
  Cgra_util.Rng.t -> Cgra_arch.Cgra.t -> faults:int -> Cgra_arch.Cgra.fault list
(** [faults] independent draws of {!sample_permanent}, in draw order. *)

val tiles : Cgra_arch.Cgra.t -> Cgra_arch.Cgra.fault -> int list
(** Tiles the fault touches: the owning tile for [Dead_tile],
    [Cm_rows_stuck] and [No_lsu]; both endpoints (via
    [Cgra.dir_neighbor] on the torus) for [Dead_link].  The
    incremental-repair dirty-set rule ({!Repair.dirty_blocks}) marks a
    block dirty iff its placement touches one of these tiles. *)
