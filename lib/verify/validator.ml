module M = Cgra_core.Mapping
module Flow = Cgra_core.Flow
module Asm = Cgra_asm.Assemble
module Isa = Cgra_arch.Isa
module Cgra = Cgra_arch.Cgra
module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode

type coord = { tile : int; block : int; cycle : int }

type violation =
  | Cm_overflow of { tile : int; words : int; capacity : int }
  | Usage_mismatch of { tile : int; mapping_words : int; program_words : int }
  | Non_neighbour_read of { at : coord; from_tile : int; distance : int }
  | Operand_not_ready of { at : coord; value : string }
  | Bad_crf_index of { at : coord; index : int; pool : int }
  | Crf_pool_overflow of { tile : int; pool : int; capacity : int }
  | Bad_rf_slot of { at : coord; reg : int; rf_words : int }
  | Bad_tile_ref of { at : coord; target : int; tiles : int }
  | Double_issue of { at : coord }
  | Slot_out_of_section of { at : coord; length : int }
  | Section_length_mismatch of
      { block : int; mapping_cycles : int; program_cycles : int }
  | Section_overrun of { tile : int; block : int; duration : int; length : int }
  | Operand_arity of { at : coord; node : int; operands : int; tiles : int }
  | Bad_node_ref of { at : coord; node : int; nodes : int }
  | Bad_home of { sym : int; home : int; tiles : int }
  | Block_index_mismatch of { block : int; bb : int }
  | Encoding_mismatch of { tile : int; word : int; detail : string }
  | Lsu_required of { at : coord; node : int }

let pp_coord c = Printf.sprintf "tile %d b%d@%d" c.tile c.block c.cycle

let to_string = function
  | Cm_overflow { tile; words; capacity } ->
    Printf.sprintf "tile %d: context memory overflow: %d words > %d" tile words
      capacity
  | Usage_mismatch { tile; mapping_words; program_words } ->
    Printf.sprintf
      "tile %d: mapper accounts %d context words, assembled program has %d" tile
      mapping_words program_words
  | Non_neighbour_read { at; from_tile; distance } ->
    Printf.sprintf "%s: reads tile %d at torus distance %d (> 1)" (pp_coord at)
      from_tile distance
  | Operand_not_ready { at; value } ->
    Printf.sprintf "%s: %s is not available before this cycle" (pp_coord at) value
  | Bad_crf_index { at; index; pool } ->
    Printf.sprintf "%s: CRF index %d out of range (pool %d)" (pp_coord at) index pool
  | Crf_pool_overflow { tile; pool; capacity } ->
    Printf.sprintf "tile %d: constant pool has %d entries, CRF holds %d" tile pool
      capacity
  | Bad_rf_slot { at; reg; rf_words } ->
    Printf.sprintf "%s: RF slot %d out of range (rf_words %d)" (pp_coord at) reg
      rf_words
  | Bad_tile_ref { at; target; tiles } ->
    Printf.sprintf "%s: references tile %d outside the %d-tile array" (pp_coord at)
      target tiles
  | Double_issue { at } ->
    Printf.sprintf "%s: two instructions issued on one tile in one cycle"
      (pp_coord at)
  | Slot_out_of_section { at; length } ->
    Printf.sprintf "%s: slot outside the block's %d-cycle section" (pp_coord at)
      length
  | Section_length_mismatch { block; mapping_cycles; program_cycles } ->
    Printf.sprintf "block %d: mapping schedules %d cycles, program section has %d"
      block mapping_cycles program_cycles
  | Section_overrun { tile; block; duration; length } ->
    Printf.sprintf "tile %d section b%d: instructions span %d cycles > length %d"
      tile block duration length
  | Operand_arity { at; node; operands; tiles } ->
    Printf.sprintf "%s: node %d has %d operands but %d operand tiles" (pp_coord at)
      node operands tiles
  | Bad_node_ref { at; node; nodes } ->
    Printf.sprintf "%s: references node %d outside the block's %d nodes"
      (pp_coord at) node nodes
  | Bad_home { sym; home; tiles } ->
    Printf.sprintf "symbol s%d: home tile %d outside the %d-tile array" sym home
      tiles
  | Block_index_mismatch { block; bb } ->
    Printf.sprintf "bbs.(%d) carries block id %d" block bb
  | Encoding_mismatch { tile; word; detail } ->
    Printf.sprintf "tile %d context word %d: encode/decode mismatch: %s" tile word
      detail
  | Lsu_required { at; node } ->
    Printf.sprintf "%s: tile cannot execute node %d (no load-store unit)"
      (pp_coord at) node

let value_to_string = function
  | M.Vnode i -> Printf.sprintf "node %d" i
  | M.Vsym s -> Printf.sprintf "symbol s%d" s
  | M.Vimm k -> Printf.sprintf "imm %d" k

(* ------------------------------------------------------------------ *)
(* Mapping-level checks: schedule legality re-derived from the slots,
   independent of the mapper's own accounting. *)

(* Values a slot makes available on its tile from the next cycle on
   (mirrors the assembler's definition, re-stated here on purpose). *)
let slot_defines (nodes : Cdfg.node array) (sl : M.slot) =
  match sl.M.action with
  | M.Aop { node = j; _ } ->
    if j >= 0 && j < Array.length nodes
       && Opcode.has_result nodes.(j).Cdfg.opcode
    then Some (M.Vnode j)
    else None
  | M.Amove { value; _ } -> Some value
  | M.Acopy value -> Some value

let check_block ~(cgra : Cgra.t) ~homes ~nodes (bm : M.bb_mapping) =
  let nt = Cgra.tile_count cgra in
  let bi = bm.M.bb in
  let out = ref [] in
  let emit v = out := v :: !out in
  let coord (sl : M.slot) = { tile = sl.M.tile; block = bi; cycle = sl.M.cycle } in
  (* Availability: [value] can be read on [t] at the start of [cycle] iff a
     slot on [t] defined it strictly earlier, or it is a symbol live-in on
     its home tile, or an immediate (CRF-resident). *)
  let defined_before t value cycle =
    List.exists
      (fun (sl : M.slot) ->
        sl.M.tile = t && sl.M.cycle < cycle
        && slot_defines nodes sl = Some value)
      bm.M.slots
  in
  let available t value cycle =
    match value with
    | M.Vimm _ -> true
    | M.Vnode _ -> defined_before t value cycle
    | M.Vsym s ->
      (s >= 0 && s < Array.length homes && homes.(s) = t)
      || defined_before t value cycle
  in
  let check_read at t value =
    if not (available t value at.cycle) then
      emit
        (Operand_not_ready
           { at; value = Printf.sprintf "%s on tile %d" (value_to_string value) t })
  in
  let check_neighbour at target =
    if target < 0 || target >= nt then
      emit (Bad_tile_ref { at; target; tiles = nt })
    else
      let d = Cgra.distance cgra at.tile target in
      if d > 1 then emit (Non_neighbour_read { at; from_tile = target; distance = d })
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (sl : M.slot) ->
      let at = coord sl in
      if sl.M.tile < 0 || sl.M.tile >= nt then
        emit (Bad_tile_ref { at; target = sl.M.tile; tiles = nt })
      else begin
        if sl.M.cycle < 0 || sl.M.cycle >= bm.M.length then
          emit (Slot_out_of_section { at; length = bm.M.length });
        (if Hashtbl.mem seen (sl.M.tile, sl.M.cycle) then emit (Double_issue { at })
         else Hashtbl.add seen (sl.M.tile, sl.M.cycle) ());
        match sl.M.action with
        | M.Aop { node = j; operand_tiles } ->
          if j < 0 || j >= Array.length nodes then
            emit (Bad_node_ref { at; node = j; nodes = Array.length nodes })
          else begin
            if not (Cgra.can_execute cgra sl.M.tile nodes.(j).Cdfg.opcode) then
              emit (Lsu_required { at; node = j });
            let operands = nodes.(j).Cdfg.operands in
            if List.length operands <> List.length operand_tiles then
              emit
                (Operand_arity
                   {
                     at;
                     node = j;
                     operands = List.length operands;
                     tiles = List.length operand_tiles;
                   })
            else
              List.iter2
                (fun operand srct ->
                  match operand with
                  | Cdfg.Imm _ -> ()
                  | Cdfg.Node i ->
                    check_neighbour at srct;
                    check_read at srct (M.Vnode i)
                  | Cdfg.Sym s ->
                    check_neighbour at srct;
                    check_read at srct (M.Vsym s))
                operands operand_tiles
          end
        | M.Amove { value; from_tile } ->
          check_neighbour at from_tile;
          if from_tile >= 0 && from_tile < nt then check_read at from_tile value
        | M.Acopy value -> check_read at sl.M.tile value
      end)
    bm.M.slots;
  List.rev !out

(* Independent per-tile context-word recount: instructions plus the pnop
   words needed to cover the idle gaps before each instruction (trailing
   idle cycles sleep for free). *)
let tile_words_of_block (bm : M.bb_mapping) nt =
  let words = Array.make nt 0 in
  let by_tile = Array.make nt [] in
  List.iter
    (fun (sl : M.slot) ->
      if sl.M.tile >= 0 && sl.M.tile < nt then
        by_tile.(sl.M.tile) <- sl.M.cycle :: by_tile.(sl.M.tile))
    bm.M.slots;
  Array.iteri
    (fun t cycles ->
      let cycles = List.sort compare cycles in
      let cursor = ref 0 in
      List.iter
        (fun c ->
          if c > !cursor then words.(t) <- words.(t) + 1 (* pnop *);
          words.(t) <- words.(t) + 1;
          cursor := c + 1)
        cycles)
    by_tile;
  words

let check_mapping (m : M.t) =
  let cgra = m.M.cgra in
  let nt = Cgra.tile_count cgra in
  let out = ref [] in
  let emit v = out := v :: !out in
  Array.iteri
    (fun s home ->
      if home < 0 || home >= nt then emit (Bad_home { sym = s; home; tiles = nt }))
    m.M.homes;
  let words = Array.make nt 0 in
  Array.iteri
    (fun i (bm : M.bb_mapping) ->
      if bm.M.bb <> i then emit (Block_index_mismatch { block = i; bb = bm.M.bb });
      let nodes = m.M.cdfg.Cdfg.blocks.(i).Cdfg.nodes in
      List.iter emit (check_block ~cgra ~homes:m.M.homes ~nodes bm);
      let bw = tile_words_of_block bm nt in
      Array.iteri (fun t w -> words.(t) <- words.(t) + w) bw)
    m.M.bbs;
  Array.iteri
    (fun t w ->
      let cap = cgra.Cgra.tiles.(t).Cgra.cm_words in
      if w > cap then emit (Cm_overflow { tile = t; words = w; capacity = cap }))
    words;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Program-level checks: the assembled artifact against the fabric. *)

let check_src ~(cgra : Cgra.t) ~crf at out = function
  | Isa.Rf r ->
    if r < 0 || r >= cgra.Cgra.rf_words then
      out (Bad_rf_slot { at; reg = r; rf_words = cgra.Cgra.rf_words })
  | Isa.Crf c ->
    if c < 0 || c >= Array.length crf then
      out (Bad_crf_index { at; index = c; pool = Array.length crf })
  | Isa.Nbr (t', r) ->
    let nt = Cgra.tile_count cgra in
    if t' < 0 || t' >= nt then out (Bad_tile_ref { at; target = t'; tiles = nt })
    else begin
      let d = Cgra.distance cgra at.tile t' in
      if d > 1 then out (Non_neighbour_read { at; from_tile = t'; distance = d })
    end;
    if r < 0 || r >= cgra.Cgra.rf_words then
      out (Bad_rf_slot { at; reg = r; rf_words = cgra.Cgra.rf_words })

let check_program (p : Asm.program) =
  let m = p.Asm.mapping in
  let cgra = m.M.cgra in
  let nt = Cgra.tile_count cgra in
  let acc = ref [] in
  let out v = acc := v :: !acc in
  let nblocks = Array.length m.M.bbs in
  (* Section lengths consistent between mapping and program. *)
  for bi = 0 to min nblocks (Array.length p.Asm.section_length) - 1 do
    if p.Asm.section_length.(bi) <> m.M.bbs.(bi).M.length then
      out
        (Section_length_mismatch
           {
             block = bi;
             mapping_cycles = m.M.bbs.(bi).M.length;
             program_cycles = p.Asm.section_length.(bi);
           })
  done;
  Array.iteri
    (fun t (tp : Asm.tile_program) ->
      if Array.length tp.Asm.crf > cgra.Cgra.crf_words then
        out
          (Crf_pool_overflow
             { tile = t; pool = Array.length tp.Asm.crf; capacity = cgra.Cgra.crf_words });
      (* Independent word recount against the CM capacity. *)
      let words =
        Array.fold_left (fun a sec -> a + List.length sec) 0 tp.Asm.sections
      in
      let cap = cgra.Cgra.tiles.(t).Cgra.cm_words in
      if words > cap then out (Cm_overflow { tile = t; words; capacity = cap });
      Array.iteri
        (fun bi sec ->
          let duration =
            List.fold_left (fun a i -> a + Isa.duration i) 0 sec
          in
          if bi < Array.length p.Asm.section_length
             && duration > p.Asm.section_length.(bi)
          then
            out
              (Section_overrun
                 { tile = t; block = bi; duration; length = p.Asm.section_length.(bi) });
          let cycle = ref 0 in
          List.iter
            (fun instr ->
              let at = { tile = t; block = bi; cycle = !cycle } in
              (match instr with
               | Isa.Ipnop _ -> ()
               | Isa.Iop { srcs; dst; _ } ->
                 List.iter (check_src ~cgra ~crf:tp.Asm.crf at out) srcs;
                 (match dst with
                  | Some d ->
                    if d < 0 || d >= cgra.Cgra.rf_words then
                      out (Bad_rf_slot { at; reg = d; rf_words = cgra.Cgra.rf_words })
                  | None -> ())
               | Isa.Imov { from_tile; from_slot; dst } ->
                 if from_tile < 0 || from_tile >= nt then
                   out (Bad_tile_ref { at; target = from_tile; tiles = nt })
                 else begin
                   let d = Cgra.distance cgra t from_tile in
                   if d > 1 then
                     out (Non_neighbour_read { at; from_tile; distance = d })
                 end;
                 List.iter
                   (fun r ->
                     if r < 0 || r >= cgra.Cgra.rf_words then
                       out (Bad_rf_slot { at; reg = r; rf_words = cgra.Cgra.rf_words }))
                   [ from_slot; dst ]
               | Isa.Icopy { src; dst; _ } ->
                 check_src ~cgra ~crf:tp.Asm.crf at out src;
                 if dst < 0 || dst >= cgra.Cgra.rf_words then
                   out (Bad_rf_slot { at; reg = dst; rf_words = cgra.Cgra.rf_words }));
              cycle := !cycle + Isa.duration instr)
            sec)
        tp.Asm.sections;
      (* The binary image must round-trip: what the loader writes is what
         the decoder reads back. *)
      Array.iteri
        (fun w word ->
          match Isa.decode word with
          | Error e -> out (Encoding_mismatch { tile = t; word = w; detail = e })
          | Ok _ -> ())
        (Asm.encode_tile tp))
    p.Asm.tiles;
  (* Cross-check the mapper's accounting against the assembled artifact. *)
  let usage = M.tile_usage m in
  Array.iteri
    (fun t (tp : Asm.tile_program) ->
      let mw = M.usage_total usage.(t) in
      let pw =
        Array.fold_left (fun a sec -> a + List.length sec) 0 tp.Asm.sections
      in
      if mw <> pw then
        out (Usage_mismatch { tile = t; mapping_words = mw; program_words = pw }))
    p.Asm.tiles;
  List.rev !acc

let check (p : Asm.program) = check_mapping p.Asm.mapping @ check_program p

let validate_mapping (m : M.t) =
  match Asm.assemble m with
  | exception Asm.Assembly_error e ->
    [ "assembly failed: " ^ e ]
  | p -> List.map to_string (check p)

let install () = Flow.set_validator validate_mapping
