(** Top-level mapping flow (Fig 4 of the paper).

    Traverses the CDFG basic blocks — forward control-flow order in the
    basic flow, descending weight order Wbb in the context-aware flow —
    maps each block with {!Search.map_block}, commits the best per-block
    mapping (fixing symbol homes and accumulating per-tile context usage),
    and finally validates the context-memory inequality of Section III-C.
    Flows without exact pruning can produce over-full mappings; those are
    reported as failures here, which is what yields the "no mapping found"
    zeros of Fig 6. *)

type escalation = {
  e_attempt : int;           (** 0 = the configuration as given *)
  e_seed : int;              (** stochastic-pruning seed of this attempt *)
  e_beam_width : int;
  e_expand_per_state : int;
  e_keep_prob : float;
  e_prune_slack : float;
  e_reason : string;         (** why this attempt failed *)
  e_at_block : int option;
}
(** One failed attempt of the graceful-degradation ladder
    ([Flow_config.degrade]): the search knobs it ran with and the failure
    it hit. *)

val escalation_to_string : escalation -> string

type failure = {
  reason : string;
  at_block : int option;  (** block where the search died, if any *)
  work : int;  (** binding attempts spent before giving up (all retries) *)
  gave_up : escalation list;
      (** with [Flow_config.degrade]: the full escalation trace, one entry
          per exhausted attempt ([Gave_up] diagnostics); [[]] otherwise *)
  timed_out : string option;
      (** [Some where] iff the run was cut short by an expired
          {!Cgra_util.Deadline.t}: [where] names the boundary that
          observed expiry (search round, exact probe, flow block loop).
          A timed-out failure is {e not} a verdict about the kernel —
          callers must never cache or report it as "unmappable", and the
          retry/escalation ladders never retry one.  [None] for every
          ordinary dead-end. *)
}

type stats = {
  recomputes : int;
  population_peak : int;
  traversal_order : int list;
  work : int;
      (** total binding attempts — the deterministic compile-effort
          counter used by Fig 9, identical across hosts and [--jobs]
          values (wall-clock time is not) *)
  retries_used : int;
      (** re-seeded retries consumed before the successful attempt; 0 when
          the first attempt mapped *)
  search : Search.block_stats list;
      (** per-block search telemetry of the {e successful} attempt, in
          traversal order.  Every counter except
          [Search.block_stats.wall_seconds] is deterministic; when
          [retries_used = 0] the per-block [attempts] sum to [work]. *)
  opt : Cgra_opt.Pipeline.report option;
      (** per-pass statistics of the pre-mapping optimization, when
          [config.optimize] was set *)
  escalations : escalation list;
      (** with [Flow_config.degrade]: the failed attempts that preceded
          this success, in order; [[]] when the first attempt mapped or
          degradation was off *)
}

type result = (Mapping.t * stats, failure) Stdlib.result

val commit_homes :
  homes:int array ->
  at_block:int ->
  work:int ->
  (int * int) list ->
  (unit, failure) Stdlib.result
(** [commit_homes ~homes ~at_block ~work pins] applies the [(sym, tile)]
    home pins a block's mapping fixed, mutating [homes].  A pin that
    conflicts with an already-committed home returns a typed [Error]
    (naming the symbol and both tiles) instead of crashing — the condition
    is a mapper invariant violation, unreachable through {!run} with
    validated CDFGs, and this seam exists so the defence is testable.
    Entries preceding a conflicting pin stay committed; the flow aborts on
    [Error], so the array is never reused after one. *)

val traversal_order : Flow_config.traversal -> Cgra_ir.Cdfg.t -> int list
(** Forward: weak topological order of the CFG from the entry.  Weighted:
    descending block weight Wbb, forward order breaking ties. *)

val set_validator : (Mapping.t -> string list) -> unit
(** Installs the independent mapping validator consulted when
    [Flow_config.validate] is set.  The validator returns human-readable
    violation descriptions ([[]] = clean); a non-empty list turns the run
    into a typed {!failure}.  [Cgra_core] cannot depend on the checker
    (it lives above the assembler), hence this hook —
    [Cgra_verify.Validator.install] is the canonical caller. *)

val run :
  ?config:Flow_config.t ->
  ?deadline:Cgra_util.Deadline.t ->
  ?opt_verify:Cgra_opt.Pipeline.verifier ->
  Cgra_arch.Cgra.t ->
  Cgra_ir.Cdfg.t ->
  result
(** Maps the kernel.  Deterministic for a fixed [config.seed].

    [deadline] arms cooperative cancellation: the flow polls it at every
    block boundary, the beam search at every round and expansion
    boundary, the exact backend before every probe and inside the
    solver.  Expiry aborts the in-flight attempt in bounded time and
    returns a {!failure} with [timed_out = Some where]; retries and the
    escalation ladder never resume after one, and a portfolio race with
    either side cut short is reported as timed out as a whole (keeping
    the winner would make the bytes depend on where the deadline
    landed).  An armed deadline that never fires leaves the result
    byte-identical to an un-deadlined run — the token is an observer,
    never an input.

    With [config.degrade] set, a failed attempt escalates through a
    bounded retry ladder (reseeded pruning, wider beam, relaxed
    thresholds; at most [config.max_attempts] attempts), recording each
    step — see {!stats.escalations} and {!failure.gave_up}.  With
    [config.validate] set, a successful mapping is additionally re-checked
    by the installed {!set_validator} hook before being reported.

    When [config.optimize] is set, the CDFG first goes through the
    [cgra_opt] pipeline, differentially verified against [opt_verify]
    (callers with kernel-specific inputs should pass them; default:
    {!Cgra_opt.Pipeline.default_verifier}).  A pipeline bug raises
    {!Cgra_opt.Pipeline.Verification_failed} rather than mapping a
    wrong program. *)

val run_partial :
  ?config:Flow_config.t ->
  ?deadline:Cgra_util.Deadline.t ->
  base:Mapping.t ->
  dirty:bool array ->
  homes:int array ->
  Cgra_arch.Cgra.t ->
  result
(** [run_partial ~config ~base ~dirty ~homes cgra] remaps only the dirty
    blocks of [base] onto [cgra] (degraded by [config.faults]), reusing
    every block [b] with [dirty.(b) = false] verbatim: its placement is
    kept, its exact context words are pre-committed before the search
    starts, and the home pins in [homes] ([homes.(s)] = kept tile of
    symbol [s], [-1] = free to re-pin) are pre-applied.  The result merges
    the surviving and freshly-searched blocks into one mapping over
    [base.cdfg] — the optimization pipeline never reruns, because the
    surviving placements reference the already-optimized CDFG's node ids.

    The caller owns the dirty-set contract: every block whose placed
    tiles, routes, or referenced symbol homes touch a fault must be dirty,
    and [homes] must not keep a symbol on a faulted tile
    ([Cgra_verify.Repair] computes both from the diagnosis).  Reused
    placements are {e not} re-validated here beyond the final context-fit
    check — run with [config.validate] (as the repair loop does) to
    re-check the merged mapping independently.

    Retries, the graceful-degradation ladder, and validation behave as in
    {!run}; determinism for a fixed [config.seed] is preserved. *)
