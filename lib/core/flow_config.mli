(** Mapping-flow configuration.

    The paper's Fig 4 flow is the basic mapping approach of reference [1]
    plus four optional steps; each step is an independent switch here so
    the experiments can profile every increment (Figs 6-9):

    - {e weighted traversal} of the CDFG (Section III-D-1),
    - {e ACMAP}, approximate context-memory-aware pruning (III-D-2),
    - {e ECMAP}, exact context-memory-aware pruning (III-D-3),
    - {e CAB}, constraint-aware binding with blacklisted tiles (III-D-4). *)

type traversal = Forward | Weighted

type backend =
  | Beam  (** the stochastic beam search of Section III (the default) *)
  | Exact
      (** the CDCL SAT backend ([Cgra_core.Exact]): per-block CNF of
          placement, neighbour routing, operand timing and CM capacity,
          solved to a provably minimal schedule length — or to a proof
          that no mapping exists under the encoding *)
  | Portfolio
      (** race [Beam] and [Exact] on the domain pool and keep the
          better-by-cost feasible result (ties favour [Beam], so the
          portfolio never regresses the fast path) *)

type t = {
  traversal : traversal;
  acmap : bool;
  ecmap : bool;
  cab : bool;
  beam_width : int;
      (** partial mappings surviving stochastic pruning each round *)
  expand_per_state : int;
      (** binding alternatives kept per partial mapping per operation *)
  prune_slack : float;
      (** threshold function slack: children within
          [(1 + prune_slack) * best_cost] survive deterministically *)
  keep_prob : float;
      (** probability of keeping an over-threshold child (stochastic part) *)
  recompute_budget : int;
      (** re-computation graph transformations allowed per basic block *)
  home_reserve : int;
      (** context words kept free, during binding, on tiles that host a
          symbol home — headroom for the mandatory live-out writes (aware
          flows only) *)
  move_weight : int;
      (** weight of routing moves against schedule length in the
          partial-mapping cost *)
  energy_bias_nodes : int;
      (** kernels with at most this many operation nodes afford the
          energy bias of the aware flows: candidate tiles are enumerated
          smallest context memory first, so placement ties settle on the
          cheapest tile; larger kernels keep the neutral order because
          capacity, not energy, decides for them *)
  retries : int;
      (** extra attempts with reseeded stochastic pruning before giving up
          — only the context-aware flows retry *)
  seed : int;
  optimize : bool;
      (** run the [cgra_opt] differential-verified pass pipeline on the
          CDFG before mapping (default false, so the seed artifacts stay
          byte-identical).  Orthogonal to the mapping steps: any flow can
          map either the raw or the optimized CDFG. *)
  expand_jobs : int;
      (** domains used to expand the partial-mapping population each
          search round (default 1 = sequential).  Expansion is RNG-free —
          only the stochastic pruning consumes the random stream — so the
          mapping, the search telemetry and the deterministic [work]
          counter are byte-identical at any value; only wall-clock time
          changes. *)
  validate : bool;
      (** independently re-check every architectural invariant of a
          successful mapping with the [cgra_verify] validator before
          reporting it (default false, so the seed artifacts stay
          byte-identical).  Requires a validator to be installed — see
          {!Flow.set_validator} / [Cgra_verify.Validator.install]; a
          violation turns the result into a typed {!Flow.failure}. *)
  degrade : bool;
      (** graceful degradation: when an attempt fails, escalate through a
          bounded retry ladder — wider beam, reseeded stochastic pruning,
          relaxed pruning thresholds — instead of giving up after the
          fixed [retries] (default false).  Every escalation step is
          recorded in {!Flow.stats.escalations} (on success) or
          {!Flow.failure.gave_up} (on exhaustion). *)
  max_attempts : int;
      (** total mapping attempts (the base attempt included) the
          degradation ladder may spend per kernel (default 6); only read
          when [degrade] is set. *)
  faults : Cgra_arch.Cgra.fault list;
      (** permanent-fault map applied to the target array before mapping
          ({!Cgra_arch.Cgra.degrade}): home selection, the ACMAP/ECMAP
          capacity checks and the precomputed route table all see the
          reduced CM capacities and severed links (default [[]] — the
          pristine array, byte-identical to the fault-free flow).  The
          route table is interned once per flow run on the degraded
          array and shared by every attempt of the retry/degradation
          ladder — and by the partial searches of
          {!Flow.run_partial}, which reuses the whole configuration
          (this field included) for the dirty-block re-search. *)
  backend : backend;
      (** which mapper produces each block's placement (default
          [Beam]).  Semantic: the choice changes the artifact bytes,
          so it is part of the serve-store content address. *)
  protection : Cgra_arch.Protection.profile;
      (** context-memory protection applied at simulation and energy
          accounting time (default {!Cgra_arch.Protection.none}).
          Mapping itself is unaffected — check bits live beside the
          context words — but cycles/energy in the artifact change, so
          the profile is part of the serve-store content address. *)
}

val default : t
(** Basic flow of [1]: forward traversal, no memory awareness, beam 24. *)

val basic : t
val with_acmap : t
val with_acmap_ecmap : t
val context_aware : t
(** The full proposed flow: weighted traversal + ACMAP + ECMAP + CAB. *)

val steps_of : t -> string
(** Short label such as ["basic+ACMAP+ECMAP"] used in reports; the
    non-default backends append ["+SAT"] / ["+PORT"]. *)

val backend_to_string : backend -> string
(** ["beam"] / ["exact"] / ["portfolio"] — the spelling used by the
    [--backend] CLI flag and the serve-key knob. *)

val backend_of_string : string -> backend option
