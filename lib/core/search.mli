(** Population-based mapping of one basic block.

    Implements the inner loop of the paper's Fig 4: for each operation in
    the list-scheduling order, every surviving partial mapping is expanded
    with the feasible (tile, cycle, route) bindings — an incremental
    sub-graph match where operands are made tile-local by inserting move
    instructions along torus shortest paths — then the partial-mapping
    population is pruned: the approximate context-memory filter (ACMAP),
    the stochastic threshold pruning of the basic flow, and the exact
    context-memory filter (ECMAP).  With constraint-aware binding (CAB)
    enabled, context-memory-full tiles are blacklisted before binding.

    When an operation cannot be bound in any partial mapping the binder
    applies the graph transformations of Section III-B: re-routing is
    inherent (the alternative row-first / column-first paths), and
    re-computation duplicates a producer node on the destination tile. *)

type outcome = {
  bb_mapping : Mapping.bb_mapping;
  new_homes : (int * int) list;  (** symbol homes fixed while mapping this
                                     block, [(sym, tile)] *)
  recomputes : int;              (** re-computation transformations used *)
  population_peak : int;         (** diagnostic: widest population seen *)
}

val map_block :
  config:Flow_config.t ->
  cgra:Cgra_arch.Cgra.t ->
  committed:int array ->
  homes:int array ->
  rng:Cgra_util.Rng.t ->
  work:int ref ->
  Cgra_ir.Cdfg.t ->
  int ->
  (outcome, string) result
(** [map_block ~config ~cgra ~committed ~homes ~rng ~work cdfg bi] maps
    block [bi].  [committed.(t)] is the exact context-word usage of tile
    [t] by already-committed blocks; [homes.(s)] is the home tile of
    symbol [s] or [-1] when not yet fixed.  Neither array is mutated.
    [work] is incremented once per binding attempt — a deterministic
    search-effort counter (unlike wall-clock time it is identical across
    hosts, load and parallelism, so figures derived from it are
    reproducible byte-for-byte). *)
