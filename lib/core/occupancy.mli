(** Per-tile cycle occupancy within one basic block's schedule.

    The context-memory inequality of Section III-C needs, per tile, the
    number of mapped instructions plus the number of {e pnops} — one pnop
    per maximal run of idle cycles that the tile must actively wait
    through.  The global controller broadcasts section starts and
    clock-gates idle tiles (Fig 1), so a tile entirely idle during a block
    contributes no context words, and trailing idle cycles after a tile's
    last instruction are slept through for free; only {e leading} and
    {e interior} idle runs consume a pnop word.  This module owns that
    accounting so ACMAP (optimistic estimate), ECMAP (exact count) and the
    final assembler all agree on it.

    The busy and pnop counts are maintained {e incrementally} on
    {!occupy}, so {!pnops}, {!pnops_optimistic} and {!busy_count} are
    O(1) — they sit on the mapper's hot path (every ACMAP/ECMAP filter
    and cost evaluation) and must not rescan the cycle buffer. *)

type t
(** Occupancy of one tile.  Cheap to copy. *)

val create : unit -> t

val copy : t -> t

val occupy : t -> int -> unit
(** Marks a cycle busy.  Raises [Invalid_argument] if already busy or
    negative. *)

val is_free : t -> int -> bool

val first_free_at_or_after : t -> int -> int
(** Earliest free cycle [>= c]. *)

val last_busy : t -> int
(** Highest busy cycle, or [-1] when idle. *)

val busy_count : t -> int

val pnops : t -> int
(** Exact pnop count: maximal idle runs in [\[0, last_busy\]] — leading
    and interior gaps.  0 for an idle tile.  This is the count ECMAP
    (Section III-D-3) filters on and the assembler materialises. *)

val pnops_optimistic : t -> int
(** ACMAP's approximate count (Section III-D-2): interior idle runs only —
    the leading gap is assumed absorbable by later bindings.  Always
    [<= pnops]. *)

val busy_cycles : t -> int list
(** Ascending busy cycles; used by the assembler. *)

(** The occupancies of a whole tile array flattened into one byte buffer
    plus per-tile counter arrays.  Behaviourally identical to a [t array]
    indexed by tile, but copying is O(1) allocations instead of
    O(tiles) — the search duplicates its occupancy state on every binding
    attempt, so the copy cost dominates the mapper's allocation rate. *)
module Flat : sig
  type grid

  val create : int -> grid
  (** [create nt] is an all-free grid for [nt] tiles. *)

  val copy : grid -> grid

  val occupy : grid -> int -> int -> unit
  (** [occupy g t c] marks cycle [c] of tile [t] busy.  Raises
      [Invalid_argument] if already busy or negative. *)

  val is_free : grid -> int -> int -> bool
  val first_free_at_or_after : grid -> int -> int -> int
  val last_busy : grid -> int -> int
  val busy_count : grid -> int -> int

  val pnops : grid -> int -> int
  (** Exact pnop count of the tile, as {!val:pnops}. *)

  val pnops_optimistic : grid -> int -> int
  (** ACMAP's approximate count of the tile, as
      {!val:pnops_optimistic}. *)
end
