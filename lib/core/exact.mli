(** Exact per-block mapping through the CDCL SAT solver.

    The CM-aware mapping problem of one basic block — node -> (tile,
    cycle) placement, torus-neighbour operand routing, operand-before-
    use timing, live-out symbol writes, condition export, occupancy
    exclusivity and the exact per-tile context-word capacity (busy
    words plus compressed pnop words) under the already-committed
    usage of earlier blocks — is encoded to CNF and solved for the
    smallest feasible schedule length (DESIGN.md §5g documents the
    variable layout and constraint groups).

    The backend is deterministic end to end: the encoding enumerates
    items, tiles and cycles in a fixed order and the solver is
    restart-reproducible, so the decoded mapping is a pure function of
    (CDFG, CGRA, committed usage, homes) — byte-identical at any
    [--jobs] value, like the beam search. *)

val conflict_budget : int
(** Conflicts each solver invocation may spend before the backend
    gives up with a typed budget-exhausted failure (deterministic, so
    a budget failure is reproducible too). *)

val map_block :
  ?budget:int array ->
  ?future:int array ->
  ?deadline:Cgra_util.Deadline.t ->
  config:Flow_config.t ->
  cgra:Cgra_arch.Cgra.t ->
  committed:int array ->
  homes:int array ->
  work:int ref ->
  Cgra_ir.Cdfg.t ->
  int ->
  (Search.outcome, string) result
(** Drop-in counterpart of {!Search.map_block} (no RNG, no route
    table: the encoding enumerates the neighbour reads itself).
    [committed.(t)] context words are subtracted from tile [t]'s
    capacity; [budget], when given, additionally caps the words this
    block may itself place on each tile; [future.(s)], when given,
    counts the still-unmapped blocks that write symbol [s] — one
    context word per writer is reserved on [s]'s home tile, whether
    the home is already pinned or chosen by this very model.  Both are
    the flow's spread-retry heuristics; the isolation probe behind the
    UNSAT proof never applies them.  [homes.(s) >= 0] pins symbol
    [s]'s home.  On success the
    outcome carries the decoded [bb_mapping] at the provably minimal
    schedule length, the homes newly pinned by the model, and search
    telemetry whose [attempts] field counts solver conflicts ([work]
    is advanced by the same amount).  On failure the error string
    distinguishes a proof that the block is unmappable under the
    encoding even in isolation (zero committed words, all homes free)
    from a dead-end caused by the committed context, from a conflict-
    budget exhaustion.

    [deadline] is polled before every schedule-length probe and inside
    the solver (restart boundaries, every 256 conflicts); expiry
    raises {!Search.Timed_out} naming the probe it interrupted.  An
    armed deadline that never fires leaves the result byte-identical
    to a run without one. *)
