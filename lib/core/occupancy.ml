(* Occupancy is a growable byte buffer: 0 = free, 1 = busy.  Schedules are a
   few hundred cycles at most, so linear scans are cheap — but the pnop and
   busy counts sit on the mapper's hot path (every ACMAP/ECMAP filter and
   every partial-mapping cost evaluation reads them), so they are maintained
   incrementally on [occupy] instead of rescanning [bytes] on each query. *)

type t = {
  mutable bytes : Bytes.t;
  mutable last : int;
  mutable busy : int; (* busy cycles in [0, last] *)
  mutable runs : int; (* maximal free runs in [0, last] (pnops) *)
}

let create () = { bytes = Bytes.make 32 '\000'; last = -1; busy = 0; runs = 0 }

let copy t = { bytes = Bytes.copy t.bytes; last = t.last; busy = t.busy; runs = t.runs }

let ensure t c =
  let cap = Bytes.length t.bytes in
  if c >= cap then begin
    let ncap = max (c + 1) (2 * cap) in
    let nb = Bytes.make ncap '\000' in
    Bytes.blit t.bytes 0 nb 0 cap;
    t.bytes <- nb
  end

let is_free t c =
  c >= 0 && (c >= Bytes.length t.bytes || Bytes.get t.bytes c = '\000')

let occupy t c =
  if c < 0 then invalid_arg "Occupancy.occupy: negative cycle";
  ensure t c;
  if Bytes.get t.bytes c <> '\000' then
    invalid_arg (Printf.sprintf "Occupancy.occupy: cycle %d already busy" c);
  (* Run delta before flipping the byte: a busy cycle beyond [last] appends
     one free run iff it leaves a gap; a busy cycle inside [0, last] splits
     the free run it lands in (+1), consumes it entirely (-1, run of length
     one), or merely shortens it (0). *)
  if c > t.last then begin
    if c > t.last + 1 then t.runs <- t.runs + 1;
    t.last <- c
  end
  else begin
    let left_free = c > 0 && Bytes.get t.bytes (c - 1) = '\000' in
    let right_free = Bytes.get t.bytes (c + 1) = '\000' in
    (* c < last here (last is busy), so c+1 <= last is in range *)
    if left_free && right_free then t.runs <- t.runs + 1
    else if (not left_free) && not right_free then t.runs <- t.runs - 1
  end;
  Bytes.set t.bytes c '\001';
  t.busy <- t.busy + 1

let first_free_at_or_after t c =
  let c = max 0 c in
  let rec go i = if is_free t i then i else go (i + 1) in
  go c

let last_busy t = t.last

let busy_count t = t.busy

let pnops t = t.runs
(* runs in [0, last): the last cycle itself is busy, trailing is free. *)

let pnops_optimistic t =
  if t.last < 0 then 0
  else if
    (* a free cycle 0 means the first run is the leading gap: drop it *)
    is_free t 0
  then max 0 (t.runs - 1)
  else t.runs

let busy_cycles t =
  let acc = ref [] in
  for c = t.last downto 0 do
    if not (is_free t c) then acc := c :: !acc
  done;
  !acc

(* A whole array's worth of per-tile occupancies flattened into one byte
   buffer (tile-major) plus per-tile counter arrays.  Semantically
   identical to an [t array], but a copy is 4 small allocations instead of
   2 x tiles — and the search copies its state on every binding attempt,
   so this sits squarely on the mapper's hot path. *)
module Flat = struct
  type grid = {
    nt : int;
    mutable cap : int; (* cycle capacity per tile *)
    mutable bytes : Bytes.t; (* nt * cap, row [t * cap .. t * cap + cap) *)
    last : int array;
    busy : int array;
    runs : int array;
  }

  let create nt =
    {
      nt;
      cap = 32;
      bytes = Bytes.make (nt * 32) '\000';
      last = Array.make nt (-1);
      busy = Array.make nt 0;
      runs = Array.make nt 0;
    }

  let copy g =
    {
      g with
      bytes = Bytes.copy g.bytes;
      last = Array.copy g.last;
      busy = Array.copy g.busy;
      runs = Array.copy g.runs;
    }

  let ensure g c =
    if c >= g.cap then begin
      let ncap = max (c + 1) (2 * g.cap) in
      let nb = Bytes.make (g.nt * ncap) '\000' in
      for t = 0 to g.nt - 1 do
        Bytes.blit g.bytes (t * g.cap) nb (t * ncap) g.cap
      done;
      g.bytes <- nb;
      g.cap <- ncap
    end

  let is_free g t c =
    c >= 0 && (c >= g.cap || Bytes.get g.bytes ((t * g.cap) + c) = '\000')

  (* Same run accounting as the scalar [occupy] above, per tile row. *)
  let occupy g t c =
    if c < 0 then invalid_arg "Occupancy.Flat.occupy: negative cycle";
    ensure g c;
    let base = t * g.cap in
    if Bytes.get g.bytes (base + c) <> '\000' then
      invalid_arg
        (Printf.sprintf "Occupancy.Flat.occupy: tile %d cycle %d already busy"
           t c);
    if c > g.last.(t) then begin
      if c > g.last.(t) + 1 then g.runs.(t) <- g.runs.(t) + 1;
      g.last.(t) <- c
    end
    else begin
      let left_free = c > 0 && Bytes.get g.bytes (base + c - 1) = '\000' in
      let right_free = Bytes.get g.bytes (base + c + 1) = '\000' in
      (* c < last.(t) here (last is busy), so c+1 <= last.(t) is in range *)
      if left_free && right_free then g.runs.(t) <- g.runs.(t) + 1
      else if (not left_free) && not right_free then g.runs.(t) <- g.runs.(t) - 1
    end;
    Bytes.set g.bytes (base + c) '\001';
    g.busy.(t) <- g.busy.(t) + 1

  let first_free_at_or_after g t c =
    let c = max 0 c in
    if c >= g.cap then c
    else begin
      let base = t * g.cap in
      let rec go i =
        if i >= g.cap || Bytes.get g.bytes (base + i) = '\000' then i
        else go (i + 1)
      in
      go c
    end

  let last_busy g t = g.last.(t)
  let busy_count g t = g.busy.(t)
  let pnops g t = g.runs.(t)

  let pnops_optimistic g t =
    if g.last.(t) < 0 then 0
    else if Bytes.get g.bytes (t * g.cap) = '\000' then max 0 (g.runs.(t) - 1)
    else g.runs.(t)
end
