module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode
module Cgra = Cgra_arch.Cgra
module Rng = Cgra_util.Rng
module Pool = Cgra_util.Pool

type block_stats = {
  block : int;
  block_name : string;
  rounds : int;
  attempts : int;
  children : int;
  route_failures : int;
  acmap_kills : int;
  ecmap_kills : int;
  prune_survivors : int;
  finalize_failures : int;
  recomputes : int;
  population_peak : int;
  wall_seconds : float;
  alloc_words : float;
}

type outcome = {
  bb_mapping : Mapping.bb_mapping;
  new_homes : (int * int) list;
  stats : block_stats;
}

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

(* Per-expansion effort counters.  Each parallel expansion task mutates its
   own private tally; the driver folds them into the block tally (and the
   flow's [work] ref) on the main domain, so the totals are race-free and
   identical at any [expand_jobs]. *)
type tally = { mutable attempts : int; mutable route_failures : int }

let fresh_tally () = { attempts = 0; route_failures = 0 }

let merge_tally ~into t =
  into.attempts <- into.attempts + t.attempts;
  into.route_failures <- into.route_failures + t.route_failures

(* A partial mapping.  [avail.(v)] lists the (tile, ready-cycle) pairs where
   value [v] can be read; value ids are node ids, then [nnodes + sym].
   Copies share the immutable lists, so duplicating a state is cheap: the
   occupancy of all tiles lives in one flat grid ([Occupancy.Flat]), so the
   whole copy is a handful of flat-array allocations, not one per tile. *)
type pstate = {
  occ : Occupancy.Flat.grid;
  instr : int array;
  avail : (int * int) list array;
  place_cycle : int array; (* node -> latest cycle it executes at, -1 unplaced *)
  slots : Mapping.slot list; (* reversed *)
  homes_new : (int * int) list;
  sym_read : (int * int) list; (* sym -> latest read cycle of its home slot *)
  n_moves : int;
  horizon : int;
  mutable cost_memo : int;
      (* [cost] of this state, or -1 when not yet evaluated.  States are
         mutated only between their creation ([copy_pstate] resets the
         memo) and their first cost query (sorting/pruning), so the first
         computed value stays valid for the state's lifetime. *)
}

exception Timed_out of { at_block : int; where : string }

type ctx = {
  config : Flow_config.t;
  cgra : Cgra.t;
  cdfg : Cdfg.t;
  bi : int;
  deadline : Cgra_util.Deadline.t;
  block : Cdfg.block;
  nnodes : int;
  committed : int array;
  homes : int array;
  home_mask : int; (* bit t set when tile t hosts a committed symbol home *)
  tally : tally; (* binding attempts — the deterministic effort counter *)
  routes : int list list array;
      (* (row-first, column-first) path per (src, dst), flattened
         [src * ntiles + dst]: routing is queried for the same few pairs on
         every binding attempt of the block, so the paths are interned once
         per flow run ([Flow] precomputes the table and hands it to every
         block) instead of per block or per probe *)
  able : int list array;
      (* per node, the tiles able to execute its opcode, in id order (the
         re-computation transformation enumerates in this neutral order) *)
  able_sorted : int list array;
      (* the same tiles pre-sorted by context-memory size when the energy
         bias applies (physically [able] otherwise).  Candidate enumeration
         runs once per expansion, so the able-filter and the sort (both
         pstate-independent) are hoisted out of the hot loop. *)
}

let ntiles ctx = Cgra.tile_count ctx.cgra

let cm_of ctx t = ctx.cgra.Cgra.tiles.(t).cm_words

(* Capacity seen during binding: tiles hosting a symbol home keep
   [home_reserve] words free for the mandatory live-out writes of this and
   later blocks. *)
let binding_cm ctx p t =
  let hosts_home =
    ctx.home_mask land (1 lsl t) <> 0
    || List.exists (fun (_, h) -> h = t) p.homes_new
  in
  if hosts_home then cm_of ctx t - ctx.config.Flow_config.home_reserve
  else cm_of ctx t

let initial_pstate ctx =
  let nt = ntiles ctx in
  let nvals = ctx.nnodes + ctx.cdfg.Cdfg.sym_count in
  {
    occ = Occupancy.Flat.create nt;
    instr = Array.make nt 0;
    avail = Array.make (max 1 nvals) [];
    place_cycle = Array.make (max 1 ctx.nnodes) (-1);
    slots = [];
    homes_new = [];
    sym_read = [];
    n_moves = 0;
    horizon = 0;
    cost_memo = -1;
  }

let copy_pstate p =
  {
    p with
    occ = Occupancy.Flat.copy p.occ;
    instr = Array.copy p.instr;
    avail = Array.copy p.avail;
    place_cycle = Array.copy p.place_cycle;
    cost_memo = -1;
  }

let home_of ctx p s =
  match List.assoc_opt s p.homes_new with
  | Some h -> Some h
  | None -> if ctx.homes.(s) >= 0 then Some ctx.homes.(s) else None

let sym_read_cycle p s =
  match List.assoc_opt s p.sym_read with Some c -> c | None -> -1

let note_sym_read p s cycle =
  if cycle > sym_read_cycle p s then
    { p with sym_read = (s, cycle) :: List.remove_assoc s p.sym_read }
  else p

(* Locations where a value can currently be read, lazily seeding symbol
   values at their home tile (available since block entry, cycle 0). *)
let locations ctx p = function
  | Mapping.Vimm _ -> []
  | Mapping.Vnode i -> p.avail.(i)
  | Mapping.Vsym s ->
    let base = match home_of ctx p s with Some h -> [ (h, 0) ] | None -> [] in
    base @ p.avail.(ctx.nnodes + s)

let vid ctx = function
  | Mapping.Vnode i -> i
  | Mapping.Vsym s -> ctx.nnodes + s
  | Mapping.Vimm _ -> invalid_arg "Search.vid: immediates have no id"

let add_avail ctx p value tile cycle =
  let id = vid ctx value in
  p.avail.(id) <- (tile, cycle) :: p.avail.(id)

let bump_horizon p c = if c + 1 > p.horizon then { p with horizon = c + 1 } else p

(* Current exact context estimate of a tile inside this block (used by CAB
   and ECMAP): committed words + instructions so far + pnops of the current
   occupancy over the current horizon. *)
let words_now ctx p t =
  ctx.committed.(t) + p.instr.(t)
  + Occupancy.Flat.pnops p.occ t

let blacklisted ctx p t =
  ctx.config.Flow_config.cab && words_now ctx p t + 1 > binding_cm ctx p t

(* ACMAP (Section III-D-2): the approximate, cheap estimate — instruction
   count plus at most one pnop (a single gap indicator).  Deliberately
   crude: it keeps partial mappings whose real pnop count will overflow
   (they die at the final validation — the paper's "abundance of invalid
   mappings" for ACMAP-only) and can drop fitting ones whose gaps would
   have been filled. *)
let acmap_ok ctx p =
  let ok = ref true in
  for t = 0 to ntiles ctx - 1 do
    let gap = min 1 (Occupancy.Flat.pnops_optimistic p.occ t) in
    let est = ctx.committed.(t) + p.instr.(t) + gap in
    if est > binding_cm ctx p t then ok := false
  done;
  !ok

(* ECMAP (Section III-D-3): exact pnop count over the cycles mapped so
   far.  During binding rounds the home-tile reserve applies; the final
   check after live-out placement uses the true capacity. *)
let ecmap_ok ?(reserve = true) ctx p =
  let ok = ref true in
  for t = 0 to ntiles ctx - 1 do
    let cap = if reserve then binding_cm ctx p t else cm_of ctx t in
    if words_now ctx p t > cap then ok := false
  done;
  !ok

(* ---- routing ------------------------------------------------------- *)

(* Probe a path without mutating the state: the arrival cycle of the value
   at the end of [path] when each hop's move goes in the earliest free slot
   of that hop tile.  Hop tiles are never rejected: CAB blacklists tiles
   for the *binding* of operations only; routing moves may still cross a
   full tile — the memory-aware filters judge the resulting usage. *)
let probe_path p ~ready path =
  let rec go ready = function
    | [] -> ready
    | hop :: rest ->
      let c = Occupancy.Flat.first_free_at_or_after p.occ hop ready in
      go (c + 1) rest
  in
  go ready path

(* Materialise the chosen path: mutates [p]'s arrays in place (caller owns a
   fresh copy) and returns the functional fields threaded through. *)
let apply_path ctx p ~value ~src ~ready path =
  let rec go p prev ready = function
    | [] -> (p, ready)
    | hop :: rest ->
      let c = Occupancy.Flat.first_free_at_or_after p.occ hop ready in
      Occupancy.Flat.occupy p.occ hop c;
      p.instr.(hop) <- p.instr.(hop) + 1;
      add_avail ctx p value hop (c + 1);
      let slot =
        {
          Mapping.tile = hop;
          cycle = c;
          action = Mapping.Amove { value; from_tile = prev };
          writes_sym = None;
          set_cond = false;
        }
      in
      let p = { p with slots = slot :: p.slots; n_moves = p.n_moves + 1 } in
      let p = bump_horizon p c in
      let p =
        match value with
        | Mapping.Vsym s when Some prev = home_of ctx p s -> note_sym_read p s c
        | Mapping.Vsym _ | Mapping.Vnode _ | Mapping.Vimm _ -> p
      in
      go p hop (c + 1) rest
  in
  go p src ready path

(* Column-first variant of Cgra.route_geometric (which is row-first):
   route on the transposed problem by chaining the two half-routes. *)
let route_col_first cgra ~src ~dst =
  let ts = cgra.Cgra.tiles.(src) and td = cgra.Cgra.tiles.(dst) in
  let corner_id =
    (ts.Cgra.row * cgra.Cgra.cols) + td.Cgra.col
  in
  if corner_id = src then Cgra.route_geometric cgra ~src ~dst
  else if corner_id = dst then Cgra.route_geometric cgra ~src ~dst
  else
    Cgra.route_geometric cgra ~src ~dst:corner_id
    @ Cgra.route_geometric cgra ~src:corner_id ~dst

(* Candidate paths per (src, dst) pair.  Pristine arrays keep exactly the
   two deterministic shapes (row-first, column-first).  On degraded arrays
   each shape survives only if it avoids dead tiles and severed links; when
   both are broken the deterministic BFS detour is the sole candidate, and
   a partitioned pair has no candidates at all — the binding that needs it
   then fails routing, which the beam search treats like any other
   infeasible placement. *)
let build_routes cgra =
  let nt = Cgra.tile_count cgra in
  Array.init (nt * nt) (fun i ->
      let src = i / nt and dst = i mod nt in
      let row = Cgra.route_geometric cgra ~src ~dst
      and col = route_col_first cgra ~src ~dst in
      if Cgra.pristine cgra then [ row; col ]
      else
        match
          List.filter (Cgra.path_ok cgra ~src)
            (if row = col then [ row ] else [ row; col ])
        with
        | [] -> (
          match Cgra.route_opt cgra ~src ~dst with
          | Some p -> [ p ]
          | None -> [])
        | ps -> ps)

let paths_of ctx ~src ~dst = ctx.routes.((src * ntiles ctx) + dst)

(* Land [value] in [dst]'s own register file: Some (state, ready cycle).
   Used for the mandatory live-out writes, whose destination is a fixed RF
   slot.  Chooses, over the value's current locations and the two
   deterministic path shapes, the option with the earliest arrival, fewest
   hops. *)
let route_into ctx p ~value ~dst =
  match value with
  | Mapping.Vimm _ -> Some (p, 0)
  | Mapping.Vnode _ | Mapping.Vsym _ -> (
    let locs = locations ctx p value in
    match List.filter (fun (t, _) -> t = dst) locs with
    | (_, ready) :: more ->
      let ready = List.fold_left (fun acc (_, r) -> min acc r) ready more in
      Some (p, ready)
    | [] ->
      let options =
        List.concat_map
          (fun (src, ready) ->
            List.map
              (fun path ->
                let arrival = probe_path p ~ready path in
                (arrival, List.length path, src, ready, path))
              (paths_of ctx ~src ~dst))
          locs
      in
      (match List.sort compare options with
       | [] -> None
       | (_, _, src, ready, path) :: _ ->
         let p, arrival = apply_path ctx p ~value ~src ~ready path in
         Some (p, arrival)))

(* Make [value] readable by an operation on [dst]: the PE input muxes read
   the local RF or any torus neighbour's RF directly (Fig 1), so only
   routes longer than one hop insert moves — and those stop at a neighbour
   of [dst].  Some (state, ready cycle, source tile). *)
let route_usable ctx p ~value ~dst =
  match value with
  | Mapping.Vimm _ -> Some (p, 0, dst)
  | Mapping.Vnode _ | Mapping.Vsym _ -> (
    let locs = locations ctx p value in
    let direct =
      List.filter_map
        (fun (t, ready) ->
          if t = dst then Some (ready, 0, t)
          else if Cgra.distance ctx.cgra t dst = 1 then Some (ready, 1, t)
          else None)
        locs
    in
    match List.sort compare direct with
    | (ready, _, t) :: _ -> Some (p, ready, t)
    | [] ->
      let options =
        List.concat_map
          (fun (src, ready) ->
            List.filter_map
              (fun path ->
                (* stop one hop short: the op reads the neighbour's RF *)
                match List.rev path with
                | [] | [ _ ] -> None
                | _last :: rev_prefix ->
                  let prefix = List.rev rev_prefix in
                  let arrival = probe_path p ~ready prefix in
                  Some (arrival, List.length prefix, src, ready, prefix))
              (paths_of ctx ~src ~dst))
          locs
      in
      (match List.sort compare options with
       | [] -> None
       | (_, _, src, ready, path) :: _ ->
         let p, arrival = apply_path ctx p ~value ~src ~ready path in
         let land_tile =
           match List.rev path with t :: _ -> t | [] -> assert false
         in
         Some (p, arrival, land_tile)))

(* ---- binding one operation ----------------------------------------- *)

let operand_value = function
  | Cdfg.Node j -> Mapping.Vnode j
  | Cdfg.Sym s -> Mapping.Vsym s
  | Cdfg.Imm k -> Mapping.Vimm k

(* Place DFG node [node_id] on [tile]: routes every operand, fixes pending
   symbol homes, books the cycle.  Returns None when routing fails (CAB
   blocked every path). *)
let place_node ctx p ~node_id ~tile =
  ctx.tally.attempts <- ctx.tally.attempts + 1;
  let node = ctx.block.Cdfg.nodes.(node_id) in
  let p = copy_pstate p in
  (* [acc] collects (ready, source tile) per operand, reversed. *)
  let rec bring p acc = function
    | [] -> Some (p, List.rev acc)
    | operand :: rest -> (
      match operand with
      | Cdfg.Imm _ -> bring p ((0, tile) :: acc) rest
      | Cdfg.Sym s when home_of ctx p s = None ->
        (* First touch of an undefined symbol: pin its home here — the
           location-constraint choice that distinguishes partial
           mappings. *)
        let p = { p with homes_new = (s, tile) :: p.homes_new } in
        bring p ((0, tile) :: acc) rest
      | Cdfg.Sym _ | Cdfg.Node _ -> (
        match route_usable ctx p ~value:(operand_value operand) ~dst:tile with
        | None -> None
        | Some (p, ready, src) -> bring p ((ready, src) :: acc) rest))
  in
  match bring p [] node.Cdfg.operands with
  | None ->
    ctx.tally.route_failures <- ctx.tally.route_failures + 1;
    None
  | Some (p, operand_info) ->
    (* Memory-dependence edges order this node after its predecessors'
       execution cycles, wherever they were placed. *)
    let dep_ready =
      List.fold_left
        (fun acc j -> max acc (p.place_cycle.(j) + 1))
        0 node.Cdfg.mem_dep
    in
    let earliest =
      List.fold_left (fun acc (r, _) -> max acc r) dep_ready operand_info
    in
    let c = Occupancy.Flat.first_free_at_or_after p.occ tile earliest in
    Occupancy.Flat.occupy p.occ tile c;
    p.instr.(tile) <- p.instr.(tile) + 1;
    let operand_tiles = List.map snd operand_info in
    let slot =
      {
        Mapping.tile;
        cycle = c;
        action = Mapping.Aop { node = node_id; operand_tiles };
        writes_sym = None;
        set_cond = false;
      }
    in
    let p = { p with slots = slot :: p.slots } in
    let p = bump_horizon p c in
    (* A symbol operand read out of its home RF slot — locally or through
       the neighbour mux — constrains the slot's overwrite cycle. *)
    let p =
      List.fold_left2
        (fun p operand (_, srct) ->
          match operand with
          | Cdfg.Sym s when home_of ctx p s = Some srct -> note_sym_read p s c
          | Cdfg.Sym _ | Cdfg.Node _ | Cdfg.Imm _ -> p)
        p node.Cdfg.operands operand_info
    in
    if Opcode.has_result node.Cdfg.opcode then
      add_avail ctx p (Mapping.Vnode node_id) tile (c + 1);
    if c > p.place_cycle.(node_id) then p.place_cycle.(node_id) <- c;
    Some (p, c)

(* Keep the non-blacklisted candidates, or everything when CAB blocks them
   all: binding somewhere beats dying here — the exact pruning and final
   validation will judge the overflow.  The able-tile enumeration (and the
   energy-bias sort of the context-aware flows) is pstate-independent, so
   it is precomputed per node in [ctx.able_sorted]; only this cheap filter
   runs per expansion. *)
let candidate_tiles ctx p tiles =
  match List.filter (fun t -> not (blacklisted ctx p t)) tiles with
  | [] -> tiles
  | unblocked -> unblocked

(* Expand one partial mapping with the feasible bindings of [node_id],
   keeping the [expand_per_state] locally-best children. *)
let expand_state ctx p node_id =
  let children =
    List.filter_map
      (fun tile ->
        match place_node ctx p ~node_id ~tile with
        | Some (p', cycle) -> Some ((cycle, p'.n_moves - p.n_moves), p')
        | None -> None)
      (candidate_tiles ctx p ctx.able_sorted.(node_id))
  in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) children in
  List.map snd (take ctx.config.Flow_config.expand_per_state sorted)

(* Expand the whole population for one round.  Expansion is RNG-free (only
   the stochastic pruning consumes the random stream) and every task works
   on its own copies, so fanning the states out over [expand_jobs] domains
   returns the exact sequential result; the per-task tallies are merged on
   the main domain afterwards. *)
let expand_population ctx pop node_id =
  (* Expansion boundary: the last poll before the all-OCaml hot path. *)
  if Cgra_util.Deadline.expired ctx.deadline then
    raise
      (Timed_out
         { at_block = ctx.bi; where = "search expansion " ^ ctx.block.Cdfg.name });
  let jobs = ctx.config.Flow_config.expand_jobs in
  let small = match pop with [] | [ _ ] -> true | _ :: _ :: _ -> false in
  if jobs <= 1 || small then
    List.concat_map (fun p -> expand_state ctx p node_id) pop
  else begin
    let tasks = List.map (fun p -> (p, fresh_tally ())) pop in
    let results =
      Pool.map ~jobs
        (fun (p, tally) -> expand_state { ctx with tally } p node_id)
        tasks
    in
    List.iter (fun (_, t) -> merge_tally ~into:ctx.tally t) tasks;
    List.concat results
  end

(* Re-computation graph transformation: duplicate one already-placed
   producer of [node_id] onto a candidate tile, then retry the binding
   there.  Used only when regular expansion yields nothing. *)
let expand_with_recompute ctx p node_id =
  let node = ctx.block.Cdfg.nodes.(node_id) in
  let producers =
    List.filter_map
      (function Cdfg.Node j -> Some j | Cdfg.Sym _ | Cdfg.Imm _ -> None)
      node.Cdfg.operands
  in
  let try_tile tile =
    List.find_map
      (fun j ->
        if not (Cgra.can_execute ctx.cgra tile ctx.block.Cdfg.nodes.(j).Cdfg.opcode)
        then None
        else
          match place_node ctx p ~node_id:j ~tile with
          | None -> None
          | Some (p1, _) -> (
            match place_node ctx p1 ~node_id ~tile with
            | None -> None
            | Some (p2, _) -> Some p2))
      producers
  in
  List.find_map try_tile (candidate_tiles ctx p ctx.able.(node_id))

(* ---- pruning -------------------------------------------------------- *)

(* Quadratic penalty once a tile's context memory fills beyond 3/4 — the
   exploration bias of the context-aware flow: among latency-equivalent
   partial mappings, prefer those that keep headroom on small-CM tiles for
   the blocks still to come.  The basic flow of [1] is not memory-aware, so
   the term is active only when one of the aware steps is enabled. *)
let memory_pressure ctx p =
  let total = ref 0 in
  for t = 0 to ntiles ctx - 1 do
    let cm = cm_of ctx t in
    let over = (4 * words_now ctx p t) - (3 * cm) in
    if over > 0 then total := !total + (over * over)
  done;
  !total

(* Memoized per state: the sort comparators and prune filters below query
   the cost of the same state many times, and each evaluation is O(tiles).
   Valid because states are immutable from their first cost query onwards
   (see [cost_memo]) and always costed under the same config. *)
let cost ctx p =
  if p.cost_memo >= 0 then p.cost_memo
  else begin
    let base =
      (p.horizon * 256) + (ctx.config.Flow_config.move_weight * p.n_moves)
    in
    let c =
      if ctx.config.Flow_config.ecmap || ctx.config.Flow_config.cab then
        base + memory_pressure ctx p
      else base
    in
    p.cost_memo <- c;
    c
  end

(* Stochastic threshold pruning of the basic flow: children within the
   slack of the best cost survive; the rest survive with [keep_prob]; the
   population is finally capped at [beam_width]. *)
let stochastic_prune ctx rng pop =
  let sorted = List.sort (fun a b -> compare (cost ctx a) (cost ctx b)) pop in
  match sorted with
  | [] -> []
  | best :: _ ->
    let threshold =
      int_of_float
        (float_of_int (cost ctx best) *. (1.0 +. ctx.config.Flow_config.prune_slack))
    in
    let survivors =
      List.filter
        (fun p ->
          cost ctx p <= threshold
          || Rng.float rng < ctx.config.Flow_config.keep_prob)
        sorted
    in
    (match take ctx.config.Flow_config.beam_width survivors with
     | [] -> [ best ]
     | kept -> kept)

(* ---- block finalisation (live-outs, condition export) --------------- *)

exception Finalize_failed of string

(* Fallback home for a live-out with no natural location (e.g. an
   immediate initialiser): the tile with the most remaining context-memory
   headroom, current load breaking ties.  Ranking by raw load alone would
   pin homes onto small-CM tiles of heterogeneous fabrics — exactly the
   tiles the context-aware flow tries to keep free — because an empty
   4-word tile looks "less loaded" than a lightly-used 192-word one. *)
let least_loaded_tile ctx p =
  let best = ref (-1) and best_headroom = ref min_int and best_load = ref max_int in
  for t = 0 to ntiles ctx - 1 do
    if Cgra.alive ctx.cgra t then begin
      let load = ctx.committed.(t) + p.instr.(t) in
      let headroom = cm_of ctx t - load in
      if headroom > !best_headroom
         || (headroom = !best_headroom && load < !best_load)
      then begin
        best := t;
        best_headroom := headroom;
        best_load := load
      end
    end
  done;
  if !best < 0 then raise (Finalize_failed "no live tile for a fallback home");
  !best

(* Mark the slot at (tile, cycle) — unique — as writing symbol [s] and/or
   setting the condition bit. *)
let mark_slot p ~tile ~cycle ?sym ?(set_cond = false) () =
  let updated = ref false in
  let slots =
    List.map
      (fun sl ->
        if sl.Mapping.tile = tile && sl.Mapping.cycle = cycle then begin
          updated := true;
          {
            sl with
            Mapping.writes_sym =
              (match sym with Some s -> Some s | None -> sl.Mapping.writes_sym);
            set_cond = sl.Mapping.set_cond || set_cond;
          }
        end
        else sl)
      p.slots
  in
  if not !updated then raise (Finalize_failed "mark_slot: slot not found");
  { p with slots }

(* A slot at [home] that already produces [value] and can absorb the symbol
   write for free (its destination becomes the symbol's RF slot). *)
let free_writer_slot p ~home ~value ~min_cycle =
  let defines sl =
    sl.Mapping.tile = home
    && sl.Mapping.writes_sym = None
    && sl.Mapping.cycle >= min_cycle
    &&
    match sl.Mapping.action, value with
    | Mapping.Aop { node = j; _ }, Mapping.Vnode j' -> j = j'
    | Mapping.Amove { value = v; _ }, _ -> v = value
    | Mapping.Acopy v, _ -> v = value
    | Mapping.Aop _, (Mapping.Vsym _ | Mapping.Vimm _) -> false
  in
  List.filter defines p.slots
  |> List.sort (fun a b -> compare b.Mapping.cycle a.Mapping.cycle)
  |> function
  | [] -> None
  | sl :: _ -> Some sl

let add_copy ctx p ~tile ~value ~min_cycle ?sym ?(set_cond = false) () =
  let ready =
    match value with
    | Mapping.Vimm _ -> 0
    | Mapping.Vnode _ | Mapping.Vsym _ -> (
      match List.filter (fun (t, _) -> t = tile) (locations ctx p value) with
      | [] -> raise (Finalize_failed "add_copy: value not local")
      | locs -> List.fold_left (fun acc (_, r) -> min acc r) max_int locs)
  in
  let c = Occupancy.Flat.first_free_at_or_after p.occ tile (max ready min_cycle) in
  Occupancy.Flat.occupy p.occ tile c;
  p.instr.(tile) <- p.instr.(tile) + 1;
  let slot =
    {
      Mapping.tile;
      cycle = c;
      action = Mapping.Acopy value;
      writes_sym = sym;
      set_cond;
    }
  in
  let p = { p with slots = slot :: p.slots; n_moves = p.n_moves + 1 } in
  let p = bump_horizon p c in
  let p =
    match value with
    | Mapping.Vsym s when home_of ctx p s = Some tile -> note_sym_read p s c
    | Mapping.Vsym _ | Mapping.Vnode _ | Mapping.Vimm _ -> p
  in
  (p, c)

(* Order live-out items so that an item reading symbol [s'] is processed
   before the item writing [s'] (read-before-write on the home RF slot).
   A dependency cycle (a swap) has no valid order; it is rejected — the
   frontend never emits one. *)
let order_live_outs items =
  (* [other_reader_of s item] holds when [item] reads symbol [s]'s old value
     (a self-assignment [s := s] constrains nothing). *)
  let other_reader_of s (s_written, operand) =
    match operand with
    | Cdfg.Sym s' -> s' = s && s_written <> s
    | Cdfg.Node _ | Cdfg.Imm _ -> false
  in
  let rec go acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      (* An item may be emitted once no remaining item still needs to read
         the symbol it writes. *)
      let ready, blocked =
        List.partition
          (fun (s, _) -> not (List.exists (other_reader_of s) remaining))
          remaining
      in
      (match ready with
       | [] ->
         raise
           (Finalize_failed
              "live-out dependency cycle (symbol swap) is not supported")
       | _ -> go (List.rev_append ready acc) blocked)
  in
  go [] items

let finalize ctx p =
  try
    let p = copy_pstate p in
    let items = order_live_outs ctx.block.Cdfg.live_out in
    let write_cycle = Hashtbl.create 4 in
    let p =
      List.fold_left
        (fun p (s, operand) ->
          let value = operand_value operand in
          let p, home =
            match home_of ctx p s with
            | Some h -> (p, h)
            | None ->
              let h =
                match value with
                | Mapping.Vnode _ | Mapping.Vsym _ -> (
                  match locations ctx p value with
                  | (t, _) :: _ -> t
                  | [] -> least_loaded_tile ctx p)
                | Mapping.Vimm _ -> least_loaded_tile ctx p
              in
              ({ p with homes_new = (s, h) :: p.homes_new }, h)
          in
          let min_cycle = max 0 (sym_read_cycle p s) in
          let p, cw =
            match value with
            | Mapping.Vimm _ ->
              add_copy ctx p ~tile:home ~value ~min_cycle ~sym:s ()
            | Mapping.Vnode _ | Mapping.Vsym _ -> (
              (* Self-assignment to the same slot is a no-op. *)
              match value with
              | Mapping.Vsym s' when s' = s ->
                (p, max 0 (sym_read_cycle p s))
              | _ ->
                let p =
                  if List.exists (fun (t, _) -> t = home) (locations ctx p value)
                  then p
                  else
                    match route_into ctx p ~value ~dst:home with
                    | Some (p, _) -> p
                    | None ->
                      raise (Finalize_failed "live-out routing blocked")
                in
                (match free_writer_slot p ~home ~value ~min_cycle with
                 | Some sl ->
                   ( mark_slot p ~tile:sl.Mapping.tile ~cycle:sl.Mapping.cycle
                       ~sym:s (),
                     sl.Mapping.cycle )
                 | None -> add_copy ctx p ~tile:home ~value ~min_cycle ~sym:s ()))
          in
          Hashtbl.replace write_cycle s cw;
          p)
        p items
    in
    (* Condition export for conditional terminators. *)
    let p =
      match ctx.block.Cdfg.terminator with
      | Cdfg.Jump _ | Cdfg.Return -> p
      | Cdfg.Branch (cond, _, _) -> (
        match cond with
        | Cdfg.Node j ->
          let op_slot =
            List.find
              (fun sl ->
                match sl.Mapping.action with
                | Mapping.Aop { node; _ } -> node = j
                | Mapping.Amove _ | Mapping.Acopy _ -> false)
              p.slots
          in
          mark_slot p ~tile:op_slot.Mapping.tile ~cycle:op_slot.Mapping.cycle
            ~set_cond:true ()
        | Cdfg.Sym s ->
          let home =
            match home_of ctx p s with
            | Some h -> h
            | None -> raise (Finalize_failed "branch on undefined symbol")
          in
          let min_cycle =
            match Hashtbl.find_opt write_cycle s with
            | Some cw -> cw + 1 (* read the freshly written value *)
            | None -> 0
          in
          let value = Mapping.Vsym s in
          fst (add_copy ctx p ~tile:home ~value ~min_cycle ~set_cond:true ())
        | Cdfg.Imm k ->
          let tile = least_loaded_tile ctx p in
          fst
            (add_copy ctx p ~tile ~value:(Mapping.Vimm k) ~min_cycle:0
               ~set_cond:true ()))
    in
    Some p
  with Finalize_failed _ -> None

(* ---- driver ---------------------------------------------------------- *)

let map_block ?routes ?(deadline = Cgra_util.Deadline.never) ~config ~cgra
    ~committed ~homes ~rng ~work cdfg bi =
  let t_start = Cgra_util.Clock.now () in
  let alloc_start = Gc.allocated_bytes () in
  let block = cdfg.Cdfg.blocks.(bi) in
  let home_mask =
    Array.fold_left (fun m h -> if h >= 0 then m lor (1 lsl h) else m) 0 homes
  in
  let nt = Cgra.tile_count cgra in
  let all_tiles = List.init nt Fun.id in
  let able =
    Array.map
      (fun n ->
        List.filter (fun t -> Cgra.can_execute cgra t n.Cdfg.opcode) all_tiles)
      block.Cdfg.nodes
  in
  (* For kernels that use only a small fraction of the aggregate context
     capacity, the context-aware flows enumerate candidates smallest
     context memory first, so exact (cycle, moves) ties settle on the tile
     that is cheaper to fetch from and to leak — a gentle energy bias.
     Capacity-bound kernels keep the neutral order: for them feasibility,
     not placement cost, decides. *)
  let aware =
    (config.Flow_config.acmap || config.Flow_config.ecmap
     || config.Flow_config.cab)
    && Cdfg.node_count cdfg <= config.Flow_config.energy_bias_nodes
  in
  let able_sorted =
    if aware then
      let cm t = cgra.Cgra.tiles.(t).cm_words in
      Array.map
        (fun tiles ->
          List.stable_sort (fun a b -> compare (cm a) (cm b)) tiles)
        able
    else able
  in
  let ctx =
    {
      config;
      cgra;
      cdfg;
      bi;
      deadline;
      block;
      nnodes = Array.length block.Cdfg.nodes;
      committed;
      homes;
      home_mask;
      tally = fresh_tally ();
      routes = (match routes with Some r -> r | None -> build_routes cgra);
      able;
      able_sorted;
    }
  in
  let info = Sched.analyse cdfg bi in
  let recomputes = ref 0 in
  let peak = ref 1 in
  let rounds_done = ref 0 in
  let children_total = ref 0 in
  let acmap_kills = ref 0 in
  let ecmap_kills = ref 0 in
  let prune_survivors = ref 0 in
  let finalize_failures = ref 0 in
  let budget = ref config.Flow_config.recompute_budget in
  let stats () =
    {
      block = bi;
      block_name = block.Cdfg.name;
      rounds = !rounds_done;
      attempts = ctx.tally.attempts;
      children = !children_total;
      route_failures = ctx.tally.route_failures;
      acmap_kills = !acmap_kills;
      ecmap_kills = !ecmap_kills;
      prune_survivors = !prune_survivors;
      finalize_failures = !finalize_failures;
      recomputes = !recomputes;
      population_peak = !peak;
      wall_seconds = Cgra_util.Clock.elapsed_s t_start;
      alloc_words =
        (Gc.allocated_bytes () -. alloc_start)
        /. float_of_int (Sys.word_size / 8);
    }
  in
  let acmap_filter children =
    if config.Flow_config.acmap then begin
      let kept = List.filter (acmap_ok ctx) children in
      acmap_kills := !acmap_kills + List.length children - List.length kept;
      kept
    end
    else children
  in
  let rec rounds pop = function
    | [] -> Ok pop
    | node_id :: rest ->
      (* Round boundary: filters and pruning behind us, state consistent. *)
      if Cgra_util.Deadline.expired ctx.deadline then
        raise
          (Timed_out
             { at_block = bi; where = "search round " ^ block.Cdfg.name });
      incr rounds_done;
      let children = expand_population ctx pop node_id in
      children_total := !children_total + List.length children;
      let children = acmap_filter children in
      let children =
        if children <> [] then children
        else begin
          (* Graph transformation: re-computation. *)
          let rec_children =
            if !budget <= 0 then []
            else
              List.filter_map
                (fun p ->
                  match expand_with_recompute ctx p node_id with
                  | Some p' ->
                    decr budget;
                    incr recomputes;
                    Some p'
                  | None -> None)
                pop
          in
          children_total := !children_total + List.length rec_children;
          acmap_filter rec_children
        end
      in
      if children = [] then
        Error
          (Printf.sprintf "block %s: no feasible binding for node %d (%s)"
             block.Cdfg.name node_id
             (Opcode.to_string block.Cdfg.nodes.(node_id).Cdfg.opcode))
      else begin
        peak := max !peak (List.length children);
        let pop = stochastic_prune ctx rng children in
        prune_survivors := !prune_survivors + List.length pop;
        let pop =
          if config.Flow_config.ecmap then begin
            let kept = List.filter (ecmap_ok ctx) pop in
            ecmap_kills := !ecmap_kills + List.length pop - List.length kept;
            kept
          end
          else pop
        in
        if pop = [] then
          Error
            (Printf.sprintf
               "block %s: exact context-memory pruning emptied the population \
                at node %d"
               block.Cdfg.name node_id)
        else rounds pop rest
      end
  in
  let result =
    match rounds [ initial_pstate ctx ] info.Sched.order with
    | Error _ as e -> e
    | Ok pop ->
      (* Live-out writes and condition export are mandatory: they must not be
         blocked by CAB blacklisting (CAB constrains the *binding* step only),
         so finalisation routes with the blacklist disabled and the exact
         filter below judges the result. *)
      let fctx =
        { ctx with config = { config with Flow_config.cab = false } }
      in
      let finalized = List.filter_map (finalize fctx) pop in
      finalize_failures := List.length pop - List.length finalized;
      let finalized =
        if config.Flow_config.ecmap then begin
          let kept = List.filter (ecmap_ok ~reserve:false ctx) finalized in
          ecmap_kills := !ecmap_kills + List.length finalized - List.length kept;
          kept
        end
        else finalized
      in
      (match
         List.sort (fun a b -> compare (cost ctx a) (cost ctx b)) finalized
       with
       | [] ->
         Error
           (Printf.sprintf "block %s: no partial mapping survived finalisation"
              block.Cdfg.name)
       | best :: _ ->
         let length =
           (* at least one cycle so the controller has a section to run *)
           max best.horizon 1
         in
         Ok
           {
             bb_mapping =
               { Mapping.bb = bi; length; slots = List.rev best.slots };
             new_homes = best.homes_new;
             stats = stats ();
           })
  in
  work := !work + ctx.tally.attempts;
  match result with Error _ as e -> e | Ok _ as ok -> ok
