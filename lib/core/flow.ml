module Cdfg = Cgra_ir.Cdfg
module Cgra = Cgra_arch.Cgra
module Rng = Cgra_util.Rng

type failure = { reason : string; at_block : int option; work : int }

type stats = {
  recomputes : int;
  population_peak : int;
  traversal_order : int list;
  work : int;
  retries_used : int;
  search : Search.block_stats list;
  opt : Cgra_opt.Pipeline.report option;
}

type result = (Mapping.t * stats, failure) Stdlib.result

(* Commit the symbol homes a block's mapping pinned.  A conflicting pin —
   the block wants a symbol on a different tile than an earlier block
   already fixed — is a mapper invariant violation ([Search.map_block]
   consults [homes] through its context, so it can only propose compatible
   pins); it used to die as [Assert_failure], taking the whole harness
   down.  Now it surfaces as a typed failure like every other mapping
   error.  Homes preceding the conflicting entry stay committed: the flow
   aborts on [Error], so the partially-updated array is never reused. *)
let commit_homes ~homes ~at_block ~work new_homes =
  let rec go = function
    | [] -> Ok ()
    | (s, h) :: rest ->
      if homes.(s) >= 0 && homes.(s) <> h then
        Error
          {
            reason =
              Printf.sprintf
                "block %d: home conflict for symbol s%d: pinned to tile %d \
                 by an earlier block, this block's mapping wants tile %d"
                at_block s homes.(s) h;
            at_block = Some at_block;
            work;
          }
      else begin
        homes.(s) <- h;
        go rest
      end
  in
  go new_homes

let traversal_order traversal cdfg =
  let forward =
    let g = Cdfg.cfg cdfg in
    let order = Cgra_graph.Digraph.topo_sort_weak g in
    (* Ensure the entry leads even on exotic CFGs. *)
    cdfg.Cdfg.entry :: List.filter (fun b -> b <> cdfg.Cdfg.entry) order
  in
  match traversal with
  | Flow_config.Forward -> forward
  | Flow_config.Weighted ->
    let pos = Array.make (Array.length cdfg.Cdfg.blocks) 0 in
    List.iteri (fun i b -> pos.(b) <- i) forward;
    let weight = Array.init (Array.length cdfg.Cdfg.blocks) (Cdfg.block_weight cdfg) in
    List.sort
      (fun a b ->
        if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
        else compare pos.(a) pos.(b))
      forward

(* Exact per-tile context words of one committed block mapping. *)
let block_words cgra (bm : Mapping.bb_mapping) =
  let nt = Cgra.tile_count cgra in
  let occ = Array.init nt (fun _ -> Occupancy.create ()) in
  let instr = Array.make nt 0 in
  List.iter
    (fun sl ->
      Occupancy.occupy occ.(sl.Mapping.tile) sl.Mapping.cycle;
      instr.(sl.Mapping.tile) <- instr.(sl.Mapping.tile) + 1)
    bm.Mapping.slots;
  Array.init nt (fun t ->
      instr.(t) + Occupancy.pnops occ.(t))

let run_once ~t0 ~work ~retries_used ~config ~opt_report cgra cdfg =
  match Cdfg.validate cdfg with
  | Error msg ->
    Error { reason = "invalid CDFG: " ^ msg; at_block = None; work = !work }
  | Ok () ->
    if cdfg.Cdfg.sym_count > cgra.Cgra.rf_words then
      Error
        {
          reason =
            Printf.sprintf
              "kernel needs %d symbol-variable RF slots, tile RF has %d"
              cdfg.Cdfg.sym_count cgra.Cgra.rf_words;
          at_block = None;
          work = !work;
        }
    else begin
      let order = traversal_order config.Flow_config.traversal cdfg in
      let nt = Cgra.tile_count cgra in
      let committed = Array.make nt 0 in
      let homes = Array.make (max 1 cdfg.Cdfg.sym_count) (-1) in
      let rng = Rng.create config.Flow_config.seed in
      let recomputes = ref 0 in
      let peak = ref 1 in
      let block_stats = ref [] in
      let rec map_blocks acc = function
        | [] -> Ok (List.rev acc)
        | bi :: rest -> (
          match
            Search.map_block ~config ~cgra ~committed ~homes ~rng ~work cdfg bi
          with
          | exception Cgra_graph.Digraph.Cycle ids ->
            (* A cyclic per-block DFG that slipped past validation (e.g. a
               hand-built CDFG mutated after [Builder.finish]) must not
               crash the harness: surface it as an ordinary mapping
               failure. *)
            Error
              {
                reason =
                  Printf.sprintf "block %d: cyclic DFG through nodes %s" bi
                    (String.concat ", " (List.map string_of_int ids));
                at_block = Some bi;
                work = !work;
              }
          | Error reason -> Error { reason; at_block = Some bi; work = !work }
          | Ok outcome -> (
            match
              commit_homes ~homes ~at_block:bi ~work:!work
                outcome.Search.new_homes
            with
            | Error _ as e -> e
            | Ok () ->
              let words = block_words cgra outcome.Search.bb_mapping in
              Array.iteri (fun t w -> committed.(t) <- committed.(t) + w) words;
              let bs = outcome.Search.stats in
              block_stats := bs :: !block_stats;
              recomputes := !recomputes + bs.Search.recomputes;
              peak := max !peak bs.Search.population_peak;
              map_blocks (outcome.Search.bb_mapping :: acc) rest))
      in
      match map_blocks [] order with
      | Error f -> Error f
      | Ok bbs_in_order ->
        let bbs = Array.make (Array.length cdfg.Cdfg.blocks) None in
        List.iter
          (fun bm -> bbs.(bm.Mapping.bb) <- Some bm)
          bbs_in_order;
        let bbs =
          Array.map
            (function
              | Some bm -> bm
              | None -> assert false (* every block is in the traversal *))
            bbs
        in
        (* Symbols never touched keep home -1; pin them anywhere so the
           assembler has a slot (they are dead). *)
        let homes = Array.map (fun h -> if h < 0 then 0 else h) homes in
        let mapping =
          {
            Mapping.cdfg;
            cgra;
            bbs;
            homes;
            flow_label = Flow_config.steps_of config;
            compile_seconds = Cgra_util.Clock.elapsed_s t0;
          }
        in
        if Mapping.fits mapping then
          Ok
            ( mapping,
              {
                recomputes = !recomputes;
                population_peak = !peak;
                traversal_order = order;
                work = !work;
                retries_used;
                search = List.rev !block_stats;
                opt = opt_report;
              } )
        else
          let culprits =
            Mapping.overflowing_tiles mapping
            |> List.map (fun (t, used, cap) ->
                   Printf.sprintf "T%02d %d/%d" t used cap)
            |> String.concat ", "
          in
          Error
            {
              reason = "context memory overflow: " ^ culprits;
              at_block = None;
              work = !work;
            }
    end

let run ?(config = Flow_config.default) ?opt_verify cgra cdfg =
  let t0 = Cgra_util.Clock.now () in
  let work = ref 0 in
  (* Optimize before mapping when asked.  An invalid CDFG skips the
     pipeline and falls through to [run_once], whose validation reports
     it as an ordinary mapping failure. *)
  let cdfg, opt_report =
    if config.Flow_config.optimize && Cdfg.validate cdfg = Ok () then begin
      let verify =
        match opt_verify with
        | Some v -> v
        | None -> Cgra_opt.Pipeline.default_verifier ()
      in
      let cdfg', report = Cgra_opt.Pipeline.run ~verify cdfg in
      (cdfg', Some report)
    end
    else (cdfg, None)
  in
  (* The stochastic pruning can dead-end; the context-aware flows re-seed
     and retry a couple of times before declaring the configuration
     unmappable.  [compile_seconds] and [work] cover all attempts. *)
  let rec attempt k =
    let seeded =
      { config with Flow_config.seed = config.Flow_config.seed + (1000 * k) }
    in
    match run_once ~t0 ~work ~retries_used:k ~config:seeded ~opt_report cgra cdfg with
    | Ok _ as ok -> ok
    | Error _ as e ->
      if k >= config.Flow_config.retries then e else attempt (k + 1)
  in
  attempt 0
