module Cdfg = Cgra_ir.Cdfg
module Cgra = Cgra_arch.Cgra
module Rng = Cgra_util.Rng

type escalation = {
  e_attempt : int;
  e_seed : int;
  e_beam_width : int;
  e_expand_per_state : int;
  e_keep_prob : float;
  e_prune_slack : float;
  e_reason : string;
  e_at_block : int option;
}

type failure = {
  reason : string;
  at_block : int option;
  work : int;
  gave_up : escalation list;
  timed_out : string option;
}

(* Most failures are ordinary dead-ends; only the deadline paths fill
   [timed_out], so the plain constructor keeps the sites readable. *)
let fail ?at_block ?(gave_up = []) ~work reason =
  { reason; at_block; work; gave_up; timed_out = None }

type stats = {
  recomputes : int;
  population_peak : int;
  traversal_order : int list;
  work : int;
  retries_used : int;
  search : Search.block_stats list;
  opt : Cgra_opt.Pipeline.report option;
  escalations : escalation list;
}

type result = (Mapping.t * stats, failure) Stdlib.result

let escalation_to_string e =
  Printf.sprintf
    "attempt %d: seed=%d beam=%d expand=%d keep_prob=%.3f slack=%.3f -> %s%s"
    e.e_attempt e.e_seed e.e_beam_width e.e_expand_per_state e.e_keep_prob
    e.e_prune_slack e.e_reason
    (match e.e_at_block with
     | None -> ""
     | Some b -> Printf.sprintf " (at block %d)" b)

(* The independent mapping validator lives in [cgra_verify], which depends
   on this library (it re-checks assembled programs too), so [Flow] reaches
   it through an installed hook rather than a direct call.
   [Cgra_verify.Validator.install] registers it; [Flow_config.validate]
   turns it on per run. *)
let validator : (Mapping.t -> string list) option ref = ref None
let set_validator f = validator := Some f

(* Commit the symbol homes a block's mapping pinned.  A conflicting pin —
   the block wants a symbol on a different tile than an earlier block
   already fixed — is a mapper invariant violation ([Search.map_block]
   consults [homes] through its context, so it can only propose compatible
   pins); it used to die as [Assert_failure], taking the whole harness
   down.  Now it surfaces as a typed failure like every other mapping
   error.  Homes preceding the conflicting entry stay committed: the flow
   aborts on [Error], so the partially-updated array is never reused. *)
let commit_homes ~homes ~at_block ~work new_homes =
  let rec go = function
    | [] -> Ok ()
    | (s, h) :: rest ->
      if homes.(s) >= 0 && homes.(s) <> h then
        Error
          (fail ~at_block ~work
             (Printf.sprintf
                "block %d: home conflict for symbol s%d: pinned to tile %d \
                 by an earlier block, this block's mapping wants tile %d"
                at_block s homes.(s) h))
      else begin
        homes.(s) <- h;
        go rest
      end
  in
  go new_homes

let traversal_order traversal cdfg =
  let forward =
    let g = Cdfg.cfg cdfg in
    let order = Cgra_graph.Digraph.topo_sort_weak g in
    (* Ensure the entry leads even on exotic CFGs. *)
    cdfg.Cdfg.entry :: List.filter (fun b -> b <> cdfg.Cdfg.entry) order
  in
  match traversal with
  | Flow_config.Forward -> forward
  | Flow_config.Weighted ->
    let pos = Array.make (Array.length cdfg.Cdfg.blocks) 0 in
    List.iteri (fun i b -> pos.(b) <- i) forward;
    let weight = Array.init (Array.length cdfg.Cdfg.blocks) (Cdfg.block_weight cdfg) in
    List.sort
      (fun a b ->
        if weight.(a) <> weight.(b) then compare weight.(b) weight.(a)
        else compare pos.(a) pos.(b))
      forward

(* Exact per-tile context words of one committed block mapping. *)
let block_words cgra (bm : Mapping.bb_mapping) =
  let nt = Cgra.tile_count cgra in
  let occ = Array.init nt (fun _ -> Occupancy.create ()) in
  let instr = Array.make nt 0 in
  List.iter
    (fun sl ->
      Occupancy.occupy occ.(sl.Mapping.tile) sl.Mapping.cycle;
      instr.(sl.Mapping.tile) <- instr.(sl.Mapping.tile) + 1)
    bm.Mapping.slots;
  Array.init nt (fun t ->
      instr.(t) + Occupancy.pnops occ.(t))

(* [base = Some (m, dirty, kept_homes)] switches one mapping attempt into
   partial mode: blocks with [dirty.(b) = false] reuse [m]'s placements
   verbatim — their exact context words are pre-committed and their home
   pins pre-applied — and only dirty blocks are searched, in the usual
   traversal order.  [None] is the ordinary full flow. *)
let run_once ~t0 ~work ~retries_used ~config ~opt_report ~routes ~deadline
    ?base cgra cdfg =
  match Cdfg.validate cdfg with
  | Error msg -> Error (fail ~work:!work ("invalid CDFG: " ^ msg))
  | Ok () ->
    if cdfg.Cdfg.sym_count > cgra.Cgra.rf_words then
      Error
        (fail ~work:!work
           (Printf.sprintf
              "kernel needs %d symbol-variable RF slots, tile RF has %d"
              cdfg.Cdfg.sym_count cgra.Cgra.rf_words))
    else begin
      let order = traversal_order config.Flow_config.traversal cdfg in
      let order =
        match base with
        | None -> order
        | Some (_, dirty, _) -> List.filter (fun b -> dirty.(b)) order
      in
      let nt = Cgra.tile_count cgra in
      let committed = Array.make nt 0 in
      let homes =
        match base with
        | Some (_, _, kept) -> Array.copy kept
        | None -> Array.make (max 1 cdfg.Cdfg.sym_count) (-1)
      in
      (match base with
      | None -> ()
      | Some (m, dirty, _) ->
        (* Surviving blocks keep their placements: charge their exact
           context words up front so the dirty-block search sees the same
           CM pressure a full flow would have accumulated. *)
        Array.iteri
          (fun bi bm ->
            if not dirty.(bi) then begin
              let words = block_words cgra bm in
              Array.iteri (fun t w -> committed.(t) <- committed.(t) + w) words
            end)
          m.Mapping.bbs);
      let rng = Rng.create config.Flow_config.seed in
      let recomputes = ref 0 in
      let peak = ref 1 in
      let block_stats = ref [] in
      (* Spread-retry budgets (exact backend, second pass only): cap the
         block's own context words per tile at its proportional share of
         the remaining free capacity, so early blocks leave headroom
         instead of clustering on the solver's favourite tiles.  The
         share is a heuristic — when a block genuinely needs more than
         its share the budgeted solve fails and the block retries
         unbudgeted (greedy), exactly like the first pass. *)
      let spread_budget bi rest =
        let weight b =
          Array.length cdfg.Cdfg.blocks.(b).Cdfg.nodes + 1
        in
        let w = weight bi in
        let rest_w = List.fold_left (fun a b -> a + weight b) 0 rest in
        if rest_w = 0 then None
        else
          Some
            (Array.init nt (fun t ->
                 let free =
                   cgra.Cgra.tiles.(t).Cgra.cm_words - committed.(t)
                 in
                 if free <= 0 then 0
                 else ((free * w) + w + rest_w - 1) / (w + rest_w)))
      in
      (* Future-write counts for the spread pass: how many of the
         still-unmapped blocks write each symbol — the exact backend
         reserves that many context words on the symbol's home tile. *)
      let future_writes rest =
        let fw = Array.make (Array.length homes) 0 in
        List.iter
          (fun b ->
            List.iter
              (fun (s, _) -> fw.(s) <- fw.(s) + 1)
              cdfg.Cdfg.blocks.(b).Cdfg.live_out)
          rest;
        fw
      in
      let rec map_blocks ~spread acc = function
        | [] -> Ok (List.rev acc)
        | bi :: rest -> (
          (* Per-block boundary of the drive loop: committed words and
             home pins are consistent here, so aborting between blocks
             never leaves a torn intermediate state behind. *)
          if Cgra_util.Deadline.expired deadline then
            raise
              (Search.Timed_out
                 { at_block = bi; where = "flow block loop" });
          match
            match config.Flow_config.backend with
            | Flow_config.Exact -> (
              if not spread then
                Exact.map_block ~deadline ~config ~cgra ~committed ~homes
                  ~work cdfg bi
              else
                let future = future_writes rest in
                match spread_budget bi rest with
                | None ->
                  Exact.map_block ~future ~deadline ~config ~cgra ~committed
                    ~homes ~work cdfg bi
                | Some budget -> (
                  match
                    Exact.map_block ~budget ~future ~deadline ~config ~cgra
                      ~committed ~homes ~work cdfg bi
                  with
                  | Ok _ as ok -> ok
                  | Error _ ->
                    (* The share was too tight for this block: fall back
                       to its full remaining capacity (reserves kept)
                       and keep going. *)
                    Exact.map_block ~future ~deadline ~config ~cgra
                      ~committed ~homes ~work cdfg bi))
            | Flow_config.Beam | Flow_config.Portfolio ->
              (* [Portfolio] is resolved in [drive]; a portfolio config
                 reaching a single run maps with the beam. *)
              Search.map_block ~routes ~deadline ~config ~cgra ~committed
                ~homes ~rng ~work cdfg bi
          with
          | exception Cgra_graph.Digraph.Cycle ids ->
            (* A cyclic per-block DFG that slipped past validation (e.g. a
               hand-built CDFG mutated after [Builder.finish]) must not
               crash the harness: surface it as an ordinary mapping
               failure. *)
            Error
              (fail ~at_block:bi ~work:!work
                 (Printf.sprintf "block %d: cyclic DFG through nodes %s" bi
                    (String.concat ", " (List.map string_of_int ids))))
          | Error reason -> Error (fail ~at_block:bi ~work:!work reason)
          | Ok outcome -> (
            match
              commit_homes ~homes ~at_block:bi ~work:!work
                outcome.Search.new_homes
            with
            | Error _ as e -> e
            | Ok () ->
              let words = block_words cgra outcome.Search.bb_mapping in
              Array.iteri (fun t w -> committed.(t) <- committed.(t) + w) words;
              let bs = outcome.Search.stats in
              block_stats := bs :: !block_stats;
              recomputes := !recomputes + bs.Search.recomputes;
              peak := max !peak bs.Search.population_peak;
              map_blocks ~spread (outcome.Search.bb_mapping :: acc) rest))
      in
      let committed0 = Array.copy committed in
      let homes0 = Array.copy homes in
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      let mapped =
        match map_blocks ~spread:false [] order with
        | Ok _ as ok -> ok
        | Error f
          when config.Flow_config.backend = Flow_config.Exact
               && not (has_sub f.reason "proved UNSAT") -> (
          (* Greedy pass dead-ended on the committed context (not a
             kernel-level UNSAT proof, which no retry can beat): one
             deterministic second pass with spread budgets. *)
          Array.blit committed0 0 committed 0 (Array.length committed);
          Array.blit homes0 0 homes 0 (Array.length homes);
          block_stats := [];
          recomputes := 0;
          peak := 1;
          match map_blocks ~spread:true [] order with
          | Ok _ as ok -> ok
          | Error _ -> Error f (* the first failure stays canonical *))
        | Error _ as e -> e
      in
      match mapped with
      | Error f -> Error f
      | Ok bbs_in_order ->
        let bbs =
          match base with
          | None -> Array.make (Array.length cdfg.Cdfg.blocks) None
          | Some (m, dirty, _) ->
            Array.mapi
              (fun bi bm -> if dirty.(bi) then None else Some bm)
              m.Mapping.bbs
        in
        List.iter
          (fun bm -> bbs.(bm.Mapping.bb) <- Some bm)
          bbs_in_order;
        let bbs =
          Array.map
            (function
              | Some bm -> bm
              | None -> assert false (* every block is mapped or reused *))
            bbs
        in
        (* Symbols never touched keep home -1; pin them anywhere so the
           assembler has a slot (they are dead). *)
        let homes = Array.map (fun h -> if h < 0 then 0 else h) homes in
        let mapping =
          {
            Mapping.cdfg;
            cgra;
            bbs;
            homes;
            flow_label = Flow_config.steps_of config;
            compile_seconds = Cgra_util.Clock.elapsed_s t0;
          }
        in
        if Mapping.fits mapping then
          Ok
            ( mapping,
              {
                recomputes = !recomputes;
                population_peak = !peak;
                traversal_order = order;
                work = !work;
                retries_used;
                search = List.rev !block_stats;
                opt = opt_report;
                escalations = [];
              } )
        else
          let culprits =
            Mapping.overflowing_tiles mapping
            |> List.map (fun (t, used, cap) ->
                   Printf.sprintf "T%02d %d/%d" t used cap)
            |> String.concat ", "
          in
          Error (fail ~work:!work ("context memory overflow: " ^ culprits))
    end

let escalation_of ~attempt (c : Flow_config.t) (f : failure) =
  {
    e_attempt = attempt;
    e_seed = c.Flow_config.seed;
    e_beam_width = c.Flow_config.beam_width;
    e_expand_per_state = c.Flow_config.expand_per_state;
    e_keep_prob = c.Flow_config.keep_prob;
    e_prune_slack = c.Flow_config.prune_slack;
    e_reason = f.reason;
    e_at_block = f.at_block;
  }

(* Independent re-validation of a successful mapping (the tentpole's
   third eye): a violation is a mapper bug, not a stochastic dead-end,
   so it is never retried. *)
let validated ~config ~work = function
  | Error _ as e -> e
  | Ok (mapping, _stats) as ok ->
    if not config.Flow_config.validate then ok
    else (
      match !validator with
      | None ->
        Error
          (fail ~work:!work
             "validate requested but no validator is installed \
              (call Cgra_verify.Validator.install ())")
      | Some check -> (
        match check mapping with
        | [] -> ok
        | violations ->
          Error
            (fail ~work:!work
               (Printf.sprintf "validation failed: %s"
                  (String.concat "; " violations)))))

(* Shared retry / graceful-degradation driver over [run_once].  The route
   table depends only on the (already degraded) array, so it is interned
   here once and reused by every attempt and every block. *)
let drive_single ~t0 ~work ~config ~opt_report ~deadline ?base cgra cdfg =
  let routes = Search.build_routes cgra in
  let result =
    (* A fired deadline unwinds as [Search.Timed_out] from whatever
       boundary observed it; converting it here — outside the retry and
       escalation ladders — guarantees a timed-out attempt is never
       retried: the ladders only ever see ordinary [Error] values. *)
    match
    if not config.Flow_config.degrade then
      (* The stochastic pruning can dead-end; the context-aware flows
         re-seed and retry a couple of times before declaring the
         configuration unmappable.  [compile_seconds] and [work] cover all
         attempts. *)
      let rec attempt k =
        let seeded =
          { config with Flow_config.seed = config.Flow_config.seed + (1000 * k) }
        in
        match
          run_once ~t0 ~work ~retries_used:k ~config:seeded ~opt_report
            ~routes ~deadline ?base cgra cdfg
        with
        | Ok _ as ok -> ok
        | Error _ as e ->
          if k >= config.Flow_config.retries then e else attempt (k + 1)
      in
      attempt 0
    else begin
      (* Graceful degradation: a bounded escalation ladder.  Attempt 0 is
         the configuration as given; each further attempt reseeds the
         stochastic pruning from a split of the base RNG and relaxes the
         search — wider beam, more children per state, higher keep
         probability, more threshold slack — so near-miss configurations
         degrade into "mapped after N attempts" instead of "unmappable".
         Every failed attempt is recorded as a typed escalation step. *)
      let esc_rng = Rng.create (Rng.seed_of ~base:config.Flow_config.seed "degrade") in
      let escalate k =
        if k = 0 then config
        else
          let seed = Rng.int (Rng.split esc_rng) 0x3FFFFFFF in
          let widen v = min 128 (v * (1 lsl min k 3)) in
          {
            config with
            Flow_config.seed;
            beam_width = widen config.Flow_config.beam_width;
            expand_per_state = min 8 (config.Flow_config.expand_per_state + k);
            keep_prob = min 0.9 (config.Flow_config.keep_prob *. (1.5 ** float_of_int k));
            prune_slack =
              config.Flow_config.prune_slack *. (1.0 +. (0.5 *. float_of_int k));
          }
      in
      let budget = max 1 config.Flow_config.max_attempts in
      let rec attempt k trace =
        let cfg_k = escalate k in
        match
          run_once ~t0 ~work ~retries_used:k ~config:cfg_k ~opt_report ~routes
            ~deadline ?base cgra cdfg
        with
        | Ok (m, s) -> Ok (m, { s with escalations = List.rev trace })
        | Error f ->
          let trace = escalation_of ~attempt:k cfg_k f :: trace in
          if k + 1 >= budget then Error { f with gave_up = List.rev trace }
          else attempt (k + 1) trace
      in
      attempt 0 []
    end
    with
    | exception Search.Timed_out { at_block; where } ->
      Error
        {
          reason = Printf.sprintf "timed out (%s)" where;
          at_block = Some at_block;
          work = !work;
          gave_up = [];
          timed_out = Some where;
        }
    | r -> r
  in
  validated ~config ~work result

(* The portfolio race: run the beam flow (ladder and all) and the
   exact flow over the same inputs on the domain pool and keep the
   better-by-cost feasible result.  Both sides always run to
   completion — cancelling the loser early would make the winner (and
   the deterministic [work] total) depend on relative machine speed,
   breaking byte-identical artifacts — and the cost comparison uses
   the beam's own objective (schedule length weighted at 256 per
   block, plus [move_weight] per routing move), with ties to the
   beam, so a portfolio artifact is never worse than the beam's. *)
let drive ~t0 ~work ~config ~opt_report ~deadline ?base cgra cdfg =
  match config.Flow_config.backend with
  | Flow_config.Beam | Flow_config.Exact ->
    drive_single ~t0 ~work ~config ~opt_report ~deadline ?base cgra cdfg
  | Flow_config.Portfolio -> (
    let beam_cfg = { config with Flow_config.backend = Flow_config.Beam } in
    (* The exact side is deterministic: reseeded retries and the
       escalation ladder cannot change its outcome, so it runs once. *)
    let exact_cfg =
      {
        config with
        Flow_config.backend = Flow_config.Exact;
        retries = 0;
        degrade = false;
      }
    in
    let results =
      Cgra_util.Pool.map ~jobs:2
        (fun cfg ->
          let w = ref 0 in
          let r =
            drive_single ~t0 ~work:w ~config:cfg ~opt_report ~deadline ?base
              cgra cdfg
          in
          (r, !w))
        [ beam_cfg; exact_cfg ]
    in
    match results with
    | [ (beam_r, beam_w); (exact_r, exact_w) ] -> (
      work := !work + beam_w + exact_w;
      let cost (m, _stats) =
        Array.fold_left
          (fun acc bm -> acc + (256 * bm.Mapping.length))
          0 m.Mapping.bbs
        + (config.Flow_config.move_weight * Mapping.total_moves m)
      in
      let finish (m, s) =
        (* Relabel with the portfolio's own step label and fold both
           branches' effort into the telemetry. *)
        Ok
          ( { m with Mapping.flow_label = Flow_config.steps_of config },
            { s with work = !work } )
      in
      let timeout_of = function
        | Error f when f.timed_out <> None -> Some f
        | Ok _ | Error _ -> None
      in
      match (timeout_of beam_r, timeout_of exact_r) with
      | Some f, _ | None, Some f ->
        (* If either side was cut short the race is void: picking the
           survivor would make the artifact depend on which side the
           deadline happened to hit first — a byte-level race.  The
           whole portfolio result is a timeout (and is never cached). *)
        Error { f with reason = "portfolio: " ^ f.reason; work = !work }
      | None, None -> (
      match (beam_r, exact_r) with
      | Ok b, Ok e -> if cost e < cost b then finish e else finish b
      | Ok b, Error _ -> finish b
      | Error _, Ok e -> finish e
      | Error bf, Error ef ->
        Error
          {
            bf with
            reason =
              Printf.sprintf "portfolio: both backends failed — beam: %s | exact: %s"
                bf.reason ef.reason;
            work = !work;
          }))
    | _ -> assert false)

let run ?(config = Flow_config.default)
    ?(deadline = Cgra_util.Deadline.never) ?opt_verify cgra cdfg =
  let t0 = Cgra_util.Clock.now () in
  let work = ref 0 in
  (* Map onto the degraded fabric when a permanent-fault map is given.
     [degrade] with an empty list returns the array physically unchanged,
     so the pristine flow is a strict no-op. *)
  let cgra = Cgra.degrade cgra config.Flow_config.faults in
  (* Optimize before mapping when asked.  An invalid CDFG skips the
     pipeline and falls through to [run_once], whose validation reports
     it as an ordinary mapping failure. *)
  let cdfg, opt_report =
    if config.Flow_config.optimize && Cdfg.validate cdfg = Ok () then begin
      let verify =
        match opt_verify with
        | Some v -> v
        | None -> Cgra_opt.Pipeline.default_verifier ()
      in
      let cdfg', report = Cgra_opt.Pipeline.run ~verify cdfg in
      (cdfg', Some report)
    end
    else (cdfg, None)
  in
  drive ~t0 ~work ~config ~opt_report ~deadline cgra cdfg

let run_partial ?(config = Flow_config.default)
    ?(deadline = Cgra_util.Deadline.never) ~base ~dirty ~homes cgra =
  let t0 = Cgra_util.Clock.now () in
  let work = ref 0 in
  let cgra = Cgra.degrade cgra config.Flow_config.faults in
  (* [base.cdfg] is the CDFG that was actually mapped (post-optimization
     when the original flow optimized), so the pipeline must not run
     again: the surviving placements reference its node ids. *)
  drive ~t0 ~work ~config ~opt_report:None ~deadline
    ~base:(base, dirty, homes) cgra base.Mapping.cdfg
