type traversal = Forward | Weighted
type backend = Beam | Exact | Portfolio

type t = {
  traversal : traversal;
  acmap : bool;
  ecmap : bool;
  cab : bool;
  beam_width : int;
  expand_per_state : int;
  prune_slack : float;
  keep_prob : float;
  recompute_budget : int;
  home_reserve : int;
  move_weight : int;
  energy_bias_nodes : int;
  retries : int;
  seed : int;
  optimize : bool;
  expand_jobs : int;
  validate : bool;
  degrade : bool;
  max_attempts : int;
  faults : Cgra_arch.Cgra.fault list;
  backend : backend;
  protection : Cgra_arch.Protection.profile;
}

let default =
  {
    traversal = Forward;
    acmap = false;
    ecmap = false;
    cab = false;
    beam_width = 24;
    expand_per_state = 4;
    prune_slack = 0.15;
    keep_prob = 0.25;
    recompute_budget = 32;
    home_reserve = 0;
    move_weight = 1;
    energy_bias_nodes = 64;
    retries = 0;
    seed = 42;
    optimize = false;
    expand_jobs = 1;
    validate = false;
    degrade = false;
    max_attempts = 6;
    faults = [];
    backend = Beam;
    protection = Cgra_arch.Protection.none;
  }

let basic = default

(* The aware steps pay compilation time for design-space exploration
   (Fig 9: ~1.3x / ~1.6x / ~1.8x the basic flow), so they also widen the
   search. *)
(* ACMAP keeps a narrow population: the approximate filter lets
   memory-violating but cheap partial mappings crowd out compliant ones
   (the paper's "abundance of invalid mappings" for this step). *)
let with_acmap =
  { default with traversal = Weighted; acmap = true; beam_width = 12;
    expand_per_state = 4; retries = 1; move_weight = 128 }

(* The exact flows additionally reserve a couple of context words on
   symbol-home tiles for the mandatory live-out writes of later blocks. *)

let with_acmap_ecmap =
  { with_acmap with ecmap = true; beam_width = 40; expand_per_state = 5;
    home_reserve = 2 }

let context_aware =
  { with_acmap_ecmap with cab = true; beam_width = 48; expand_per_state = 6;
    retries = 2 }

let steps_of t =
  let base =
    match t.traversal with
    | Forward -> "basic"
    | Weighted -> "basic+WT"
  in
  let add cond label acc = if cond then acc ^ "+" ^ label else acc in
  base |> add t.acmap "ACMAP" |> add t.ecmap "ECMAP" |> add t.cab "CAB"
  |> add t.optimize "OPT"
  |> add (t.backend = Exact) "SAT"
  |> add (t.backend = Portfolio) "PORT"

let backend_to_string = function
  | Beam -> "beam"
  | Exact -> "exact"
  | Portfolio -> "portfolio"

let backend_of_string = function
  | "beam" -> Some Beam
  | "exact" -> Some Exact
  | "portfolio" -> Some Portfolio
  | _ -> None
