(* Exact SAT backend: encode one basic block's CM-aware mapping
   problem to CNF, search for the minimal feasible schedule length,
   decode the model back to a [Mapping.bb_mapping].

   The encoding is move-free: an operand is read either from the
   executing tile or straight from a torus neighbour's RF through the
   PE input mux, so feasibility requires producer and consumer within
   distance one.  That is the same read primitive the beam search
   uses; the beam additionally inserts move chains for longer hauls,
   which the CNF deliberately leaves out — "UNSAT" therefore always
   means "under the current encoding" (see DESIGN.md §5g).

   Variable groups, per schedule-length hypothesis [h]:

   - x(i,t,c)   item [i] executes on tile [t] at cycle [c]
   - y(j,t,c)   node [j]'s result sits in tile [t]'s RF before [c]
                (i.e. [j] executed there at some cycle < c)
   - z(i,c)     item [i] executed somewhere at some cycle < c
   - hv(s,t)    free symbol [s] is homed on tile [t]
   - busy(t,c)  some item occupies (t,c)
   - after(t,c) some item occupies (t,c') with c' >= c
   - ps(t,c)    cycle [c] starts a compressed idle run on [t] that is
                followed by an instruction — exactly the runs the pnop
                compression charges one context word for
   - Sinz counter registers for tiles whose remaining capacity is
     below [h] (busy + ps words per cycle never exceed one, so wider
     capacities cannot overflow and need no counter)

   Items are the block's operation nodes, one write-copy per live-out
   that is not absorbed into its producer's slot, and one
   condition-export copy for a [Branch] on a symbol or immediate. *)

module Cdfg = Cgra_ir.Cdfg
module Cgra = Cgra_arch.Cgra
module Clock = Cgra_util.Clock
module Deadline = Cgra_util.Deadline
module S = Cgra_sat.Solver
module Cnf = Cgra_sat.Cnf

let conflict_budget = 20_000

(* Set CGRA_EXACT_DEBUG=1 to trace per-attempt instance sizes and
   verdicts on stderr (diagnostics only; never touches stdout, so
   artifact bytes stay clean). *)
let debug =
  match Sys.getenv_opt "CGRA_EXACT_DEBUG" with
  | Some ("1" | "true") -> true
  | _ -> false

type item =
  | Op of int
  | Wcopy of { sym : int; value : Mapping.value }
  | Ccopy of { value : Mapping.value }

let value_of_operand = function
  | Cdfg.Node j -> Mapping.Vnode j
  | Cdfg.Sym s -> Mapping.Vsym s
  | Cdfg.Imm k -> Mapping.Vimm k

(* A literal that may be constantly true or false: home tiles of
   pinned symbols and out-of-window placements fold to constants
   instead of allocating variables. *)
type plit = T | F | L of int

(* [x -> OR lits], dropping false disjuncts; a [T] disjunct makes the
   clause vacuous.  An all-false right-hand side forces [not x]. *)
let add_imp solver x lits =
  let rec go acc = function
    | [] -> Some acc
    | T :: _ -> None
    | F :: rest -> go acc rest
    | L v :: rest -> go (v :: acc) rest
  in
  match go [] lits with
  | None -> ()
  | Some ls -> S.add_clause solver (-x :: ls)

type model = {
  m_place : (int * int) array; (* item -> (tile, cycle) *)
  m_homes : (int * int) list; (* newly pinned (sym, tile) *)
}

(* A kernel-wide home-adjacency group: some alive tile [t] (able to
   execute [g_exec] when restricted) must satisfy [home s = t] for
   every anchor and [home s] in [t]'s closed neighbourhood for every
   near symbol.  These are necessary conditions on symbol homes that
   EVERY move-free mapping of the whole kernel imposes — adding them
   to every per-block solve keeps a home pinned by an early block
   consistent with some assignment for the blocks still to come. *)
type group = {
  g_exec : Cgra_ir.Opcode.t option;
  g_anchors : int list; (* homes that must equal the executing tile *)
  g_near : int list; (* homes on the tile itself or a torus neighbour *)
}

type block_ctx = {
  bi : int;
  blk : Cdfg.block;
  n_nodes : int;
  items : item array;
  absorbed : int option array; (* node -> live-out sym written in place *)
  cond_node : int option; (* Branch on Node j: set_cond on j's slot *)
  writers : (int * int) list; (* (sym, writer item) *)
  syms : int list; (* symbols needing a home, ascending *)
  groups : group list; (* kernel-wide home-adjacency conditions *)
  lb : int array; (* per-item earliest cycle *)
  db : int array; (* per-item depth below: longest strict chain under it *)
  h_lb : int;
  h_cap : int;
}

(* Extract the groups from every block of the kernel.  Per node: its
   absorbed live-out symbol and the symbols whose write copies pull the
   node's result (both execute on the symbol's home) anchor the node's
   tile; its [Sym] operands must home within reach.  A write copy of a
   symbol's value into another symbol reads it from the home RF itself:
   both homes coincide. *)
let home_groups cdfg =
  let groups = ref [] in
  Array.iter
    (fun blk ->
      let n_nodes = Array.length blk.Cdfg.nodes in
      let node_anchor = Array.make (max 1 n_nodes) [] in
      let absorbed = Array.make (max 1 n_nodes) false in
      List.iter
        (fun (s, operand) ->
          match operand with
          | Cdfg.Node j when not absorbed.(j) ->
            absorbed.(j) <- true;
            node_anchor.(j) <- s :: node_anchor.(j)
          | Cdfg.Node j -> node_anchor.(j) <- s :: node_anchor.(j)
          | Cdfg.Sym s' when s' <> s ->
            groups :=
              { g_exec = None; g_anchors = [ s; s' ]; g_near = [] }
              :: !groups
          | Cdfg.Sym _ | Cdfg.Imm _ -> ())
        blk.Cdfg.live_out;
      Array.iteri
        (fun n nd ->
          let near =
            List.sort_uniq compare
              (List.filter_map
                 (function Cdfg.Sym s -> Some s | _ -> None)
                 nd.Cdfg.operands)
          in
          let anchors = List.sort_uniq compare node_anchor.(n) in
          if anchors <> [] || List.length near >= 2 then
            groups :=
              { g_exec = Some nd.Cdfg.opcode;
                g_anchors = anchors;
                g_near = near }
              :: !groups)
        blk.Cdfg.nodes)
    cdfg.Cdfg.blocks;
  List.sort_uniq compare !groups

let build_ctx cdfg bi =
  let blk = cdfg.Cdfg.blocks.(bi) in
  let n_nodes = Array.length blk.Cdfg.nodes in
  let absorbed = Array.make (max 1 n_nodes) None in
  let wcopies = ref [] in
  List.iter
    (fun (s, operand) ->
      match operand with
      | Cdfg.Node j when absorbed.(j) = None -> absorbed.(j) <- Some s
      | _ -> wcopies := (s, value_of_operand operand) :: !wcopies)
    blk.Cdfg.live_out;
  let wcopies = List.rev !wcopies in
  let cond_node, ccopy =
    match blk.Cdfg.terminator with
    | Cdfg.Branch (Cdfg.Node j, _, _) -> (Some j, None)
    | Cdfg.Branch (operand, _, _) ->
      (None, Some (Ccopy { value = value_of_operand operand }))
    | Cdfg.Jump _ | Cdfg.Return -> (None, None)
  in
  let items =
    Array.of_list
      (List.init n_nodes (fun n -> Op n)
      @ List.map (fun (sym, value) -> Wcopy { sym; value }) wcopies
      @ match ccopy with None -> [] | Some c -> [ c ])
  in
  let writers =
    List.concat
      [
        List.concat
          (List.init n_nodes (fun j ->
               match absorbed.(j) with None -> [] | Some s -> [ (s, j) ]));
        List.mapi (fun k (s, _) -> (s, n_nodes + k)) wcopies;
      ]
  in
  let syms =
    let tbl = Hashtbl.create 8 in
    let touch s = Hashtbl.replace tbl s () in
    List.iter (fun (s, _) -> touch s) blk.Cdfg.live_out;
    Array.iter
      (fun nd ->
        List.iter
          (function Cdfg.Sym s -> touch s | Cdfg.Node _ | Cdfg.Imm _ -> ())
          nd.Cdfg.operands)
      blk.Cdfg.nodes;
    Array.iter
      (function
        | Wcopy { value = Mapping.Vsym s; _ } | Ccopy { value = Mapping.Vsym s }
          ->
          touch s
        | Op _ | Wcopy _ | Ccopy _ -> ())
      items;
    Hashtbl.fold (fun s () acc -> s :: acc) tbl [] |> List.sort compare
  in
  let info = if n_nodes = 0 then None else Some (Sched.analyse cdfg bi) in
  let asap n =
    match info with None -> 0 | Some i -> i.Sched.asap.(n)
  in
  let lb =
    Array.map
      (function
        | Op n -> asap n
        | Wcopy { value = Mapping.Vnode j; _ } -> asap j + 1
        | Wcopy _ | Ccopy _ -> 0)
      items
  in
  let n_items = Array.length items in
  (* Depth below each item: the longest chain of strictly-later items
     hanging under it.  Item [i] can then never sit later than cycle
     [h - 1 - db.(i)], which both prunes the placement windows and
     sharpens the schedule-length lower bound to the critical path
     [max (lb + db + 1)].  Strict edges mirror the CNF's sequencing
     constraints: operand-before-use, memory ordering, write-copy
     after its producer, condition export after the symbol write. *)
  let db = Array.make (max 1 n_items) 0 in
  let succ = Array.make (max 1 n_items) [] in
  Array.iteri
    (fun m nd ->
      List.iter
        (function Cdfg.Node j -> succ.(j) <- m :: succ.(j) | _ -> ())
        nd.Cdfg.operands;
      List.iter (fun d -> succ.(d) <- m :: succ.(d)) nd.Cdfg.mem_dep)
    blk.Cdfg.nodes;
  Array.iteri
    (fun i item ->
      match item with
      | Wcopy { value = Mapping.Vnode j; _ } -> succ.(j) <- i :: succ.(j)
      | Ccopy { value = Mapping.Vsym s } -> (
        match List.assoc_opt s writers with
        | Some w -> succ.(w) <- i :: succ.(w)
        | None -> ())
      | Op _ | Wcopy _ | Ccopy _ -> ())
    items;
  (* Relax to a fixpoint; edges point from lower to higher item index,
     so one descending pass converges, but iterating keeps the bound
     correct even if that invariant ever shifts. *)
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes <= n_items do
    changed := false;
    incr passes;
    for i = n_items - 1 downto 0 do
      List.iter
        (fun d ->
          if db.(d) + 1 > db.(i) then begin
            db.(i) <- db.(d) + 1;
            changed := true
          end)
        succ.(i)
    done
  done;
  let h_lb = ref 1 in
  Array.iteri
    (fun i l -> h_lb := max !h_lb (l + db.(i) + 1))
    lb;
  let h_lb = !h_lb in
  let h_cap = max h_lb n_items in
  {
    bi;
    blk;
    n_nodes;
    items;
    absorbed;
    cond_node;
    writers;
    syms;
    groups = home_groups cdfg;
    lb;
    db;
    h_lb;
    h_cap;
  }

(* One solver invocation at schedule-length hypothesis [h].  Everything
   is enumerated in a fixed order (items ascending, tiles ascending,
   cycles ascending), so variable numbering — and with it the solver
   trace and the model — is deterministic. *)
let attempt ~cgra ~committed ~budget ~future ~homes ~ctx ~deadline h =
  let solver = S.create () in
  let nt = Cgra.tile_count cgra in
  (* Future-write reserves (spread-retry pass only; [future] is all
     zeros otherwise): every remaining block that writes symbol [s]
     must later place at least one context word on [s]'s home tile, so
     that many words are held back from pinned homes up front — and,
     below, charged against in-flight home choices through hv padding. *)
  let reserve = Array.make nt 0 in
  Array.iteri
    (fun s fw ->
      if fw > 0 && homes.(s) >= 0 && homes.(s) < nt then
        reserve.(homes.(s)) <- reserve.(homes.(s)) + fw)
    future;
  let cap =
    Array.init nt (fun t ->
        cgra.Cgra.tiles.(t).Cgra.cm_words - committed.(t) - reserve.(t))
  in
  let usable t = Cgra.alive cgra t && cap.(t) > 0 in
  let alive_tiles =
    List.filter (Cgra.alive cgra) (List.init nt (fun t -> t))
  in
  let usable_tiles = List.filter usable alive_tiles in
  let nbr1 t = t :: Cgra.neighbors cgra t in
  let { blk; n_nodes; items; absorbed; cond_node = _; writers; syms; groups; lb; db; _ }
      =
    ctx
  in
  let n_items = Array.length items in
  (* Per-item placement window: ALAP bound from the depth below. *)
  let ub i = h - 1 - db.(i) in
  (* Symbol homes: pinned syms fold to constants, free syms get hv
     variables over the alive tiles (a home needs no context word, so
     capacity-full tiles still qualify). *)
  (* hv variables for EVERY still-free symbol, not just the block's
     own: the kernel-wide adjacency groups below range over all of
     them, so a home this block pins stays consistent with some
     assignment for the symbols it never touches — lookahead without
     commitment (only the block's own symbols are extracted into
     [m_homes]). *)
  let block_free_syms = List.filter (fun s -> homes.(s) < 0) syms in
  let free_syms =
    List.filter
      (fun s -> homes.(s) < 0)
      (List.init (Array.length homes) (fun s -> s))
  in
  let hv = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let vars = List.map (fun t -> (t, S.new_var solver)) alive_tiles in
      List.iter (fun (t, v) -> Hashtbl.replace hv (s, t) v) vars;
      Cnf.exactly_one solver (List.map snd vars))
    free_syms;
  let home_lit s t =
    if homes.(s) >= 0 then if homes.(s) = t then T else F
    else match Hashtbl.find_opt hv (s, t) with Some v -> L v | None -> F
  in
  (* Kernel-wide home-adjacency groups: each needs some candidate tile
     hosting its anchors with every near symbol's home within reach.
     Tiles contradicting an already-pinned home are filtered out here;
     a group whose symbols are all pinned was honoured by the block
     that pinned them, so only groups touching a free symbol encode. *)
  List.iter
    (fun g ->
      if List.exists (fun s -> homes.(s) < 0) (g.g_anchors @ g.g_near)
      then begin
        let candidates =
          List.filter
            (fun t ->
              (match g.g_exec with
              | Some op -> Cgra.can_execute cgra t op
              | None -> true)
              && List.for_all
                   (fun a -> homes.(a) < 0 || homes.(a) = t)
                   g.g_anchors
              && List.for_all
                   (fun s -> homes.(s) < 0 || List.mem homes.(s) (nbr1 t))
                   g.g_near)
            alive_tiles
        in
        match candidates with
        | [] ->
          (* No tile can ever host this group: honest immediate UNSAT. *)
          S.add_clause solver []
        | _ ->
          let sels =
            List.map
              (fun t ->
                let sel = S.new_var solver in
                List.iter
                  (fun a ->
                    if homes.(a) < 0 then add_imp solver sel [ home_lit a t ])
                  g.g_anchors;
                List.iter
                  (fun s ->
                    if homes.(s) < 0 then
                      add_imp solver sel (List.map (home_lit s) (nbr1 t)))
                  g.g_near;
                sel)
              candidates
          in
          S.add_clause solver sels
      end)
    groups;
  (* Placement domains and x variables. *)
  let dom =
    Array.map
      (fun item ->
        let tiles =
          match item with
          | Op n ->
            List.filter
              (fun t -> Cgra.can_execute cgra t blk.Cdfg.nodes.(n).Cdfg.opcode)
              usable_tiles
          | Wcopy { sym; _ } ->
            if homes.(sym) >= 0 then
              List.filter (fun t -> t = homes.(sym)) usable_tiles
            else usable_tiles
          | Ccopy { value = Mapping.Vsym s } ->
            if homes.(s) >= 0 then
              List.filter (fun t -> t = homes.(s)) usable_tiles
            else usable_tiles
          | Ccopy _ -> usable_tiles
        in
        tiles)
      items
  in
  let x = Array.init n_items (fun _ -> Array.make (nt * h) 0) in
  Array.iteri
    (fun i tiles ->
      List.iter
        (fun t ->
          for c = lb.(i) to ub i do
            x.(i).((t * h) + c) <- S.new_var solver
          done)
        tiles)
    dom;
  let xl i t c =
    if c < 0 || c >= h then F
    else
      let v = x.(i).((t * h) + c) in
      if v = 0 then F else L v
  in
  (* Exactly-one placement per item (an empty domain is an immediate,
     honest UNSAT: no tile can host the item at any cycle). *)
  Array.iteri
    (fun i _ ->
      let vars = ref [] in
      List.iter
        (fun t ->
          for c = ub i downto lb.(i) do
            let v = x.(i).((t * h) + c) in
            if v <> 0 then vars := v :: !vars
          done)
        dom.(i);
      Cnf.exactly_one solver !vars)
    items;
  (* y(j,t,c): node j executed on t strictly before c.  Only for nodes
     whose result is read as a [Vnode]. *)
  let node_read = Array.make (max 1 n_nodes) false in
  Array.iter
    (fun nd ->
      List.iter
        (function Cdfg.Node j -> node_read.(j) <- true | _ -> ())
        nd.Cdfg.operands)
    blk.Cdfg.nodes;
  Array.iter
    (function
      | Wcopy { value = Mapping.Vnode j; _ } -> node_read.(j) <- true
      | Op _ | Wcopy _ | Ccopy _ -> ())
    items;
  let y = Array.init (max 1 n_nodes) (fun _ -> [||]) in
  for j = 0 to n_nodes - 1 do
    if node_read.(j) then begin
      let a = Array.make (nt * h) 0 in
      y.(j) <- a;
      let first = lb.(j) + 1 in
      List.iter
        (fun t ->
          for c = first to h - 1 do
            a.((t * h) + c) <- S.new_var solver
          done;
          for c = first to h - 1 do
            let yc = a.((t * h) + c) in
            let prev = if c = first then F else L a.((t * h) + c - 1) in
            let xc = xl j t (c - 1) in
            (* yc <-> prev \/ x(j,t,c-1) *)
            add_imp solver yc [ prev; xc ];
            (match prev with L p -> S.add_clause solver [ -p; yc ] | _ -> ());
            (match xc with L v -> S.add_clause solver [ -v; yc ] | _ -> ())
          done)
        dom.(j)
    end
  done;
  let yl j t c =
    if c < 1 || c >= h then F
    else
      let a = y.(j) in
      if Array.length a = 0 then F
      else
        let v = a.((t * h) + c) in
        if v = 0 then F else L v
  in
  (* z(i,c): item i executed anywhere strictly before c.  Needed for
     memory-ordering edges and for symbol write/read sequencing. *)
  let z_needed = Array.make n_items false in
  Array.iter
    (fun nd -> List.iter (fun m -> z_needed.(m) <- true) nd.Cdfg.mem_dep)
    blk.Cdfg.nodes;
  List.iter (fun (_, w) -> z_needed.(w) <- true) writers;
  let z = Array.init n_items (fun _ -> [||]) in
  for i = 0 to n_items - 1 do
    if z_needed.(i) then begin
      let a = Array.make h 0 in
      z.(i) <- a;
      for c = 1 to h - 1 do
        a.(c) <- S.new_var solver
      done;
      for c = 1 to h - 1 do
        let zc = a.(c) in
        let prev = if c = 1 then F else L a.(c - 1) in
        let row = List.map (fun t -> xl i t (c - 1)) dom.(i) in
        add_imp solver zc (prev :: row);
        (match prev with L p -> S.add_clause solver [ -p; zc ] | _ -> ());
        List.iter
          (function L v -> S.add_clause solver [ -v; zc ] | _ -> ())
          row
      done
    end
  done;
  let zl i c =
    if c < 1 then F
    else if c >= h then T
    else
      let a = z.(i) in
      if Array.length a = 0 then F else L a.(c)
  in
  (* Operand, ordering and symbol-home constraints per placement. *)
  let for_each_x i f =
    List.iter
      (fun t ->
        for c = lb.(i) to ub i do
          let v = x.(i).((t * h) + c) in
          if v <> 0 then f t c v
        done)
      dom.(i)
  in
  Array.iteri
    (fun i item ->
      match item with
      | Op n ->
        let nd = blk.Cdfg.nodes.(n) in
        for_each_x i (fun t c v ->
            List.iter
              (function
                | Cdfg.Imm _ -> ()
                | Cdfg.Node m ->
                  add_imp solver v (List.map (fun t' -> yl m t' c) (nbr1 t))
                | Cdfg.Sym s ->
                  add_imp solver v (List.map (home_lit s) (nbr1 t)))
              nd.Cdfg.operands;
            List.iter (fun m -> add_imp solver v [ zl m c ]) nd.Cdfg.mem_dep;
            match absorbed.(n) with
            | Some s -> add_imp solver v [ home_lit s t ]
            | None -> ())
      | Wcopy { sym; value } ->
        for_each_x i (fun t c v ->
            add_imp solver v [ home_lit sym t ];
            match value with
            | Mapping.Vnode j -> add_imp solver v [ yl j t c ]
            | Mapping.Vsym s' -> add_imp solver v [ home_lit s' t ]
            | Mapping.Vimm _ -> ())
      | Ccopy { value } -> (
        for_each_x i (fun t c v ->
            ignore c;
            match value with
            | Mapping.Vsym s -> add_imp solver v [ home_lit s t ]
            | Mapping.Vnode _ | Mapping.Vimm _ -> ());
        (* A branch on a written symbol tests the new value: the export
           copy must run strictly after the write. *)
        match value with
        | Mapping.Vsym s -> (
          match List.assoc_opt s writers with
          | Some w -> for_each_x i (fun _ c v -> add_imp solver v [ zl w c ])
          | None -> ())
        | Mapping.Vnode _ | Mapping.Vimm _ -> ()))
    items;
  (* Writer-after-readers: overwriting a symbol's home slot must wait
     for every reader of the old value. [not z(w,c)] says the writer
     has not run before cycle c, i.e. runs at c or later. *)
  List.iter
    (fun (s, w) ->
      let readers = ref [] in
      Array.iteri
        (fun n nd ->
          if
            List.exists
              (function Cdfg.Sym s' -> s' = s | _ -> false)
              nd.Cdfg.operands
          then readers := n :: !readers)
        blk.Cdfg.nodes;
      Array.iteri
        (fun i item ->
          match item with
          | Wcopy { value = Mapping.Vsym s'; _ } when s' = s && i <> w ->
            readers := i :: !readers
          | _ -> ())
        items;
      List.iter
        (fun r ->
          if r <> w then
            for_each_x r (fun _ c v ->
                match zl w c with
                | L zv -> S.add_clause solver [ -v; -zv ]
                | T -> S.add_clause solver [ -v ]
                | F -> ()))
        !readers)
    writers;
  (* Occupancy exclusivity, busy/after/pnop-start chains and the exact
     capacity counter per tile. *)
  let busy = Array.make (nt * h) 0 in
  let after = Array.make (nt * h) 0 in
  let ps = Array.make (nt * h) 0 in
  List.iter
    (fun t ->
      for c = 0 to h - 1 do
        busy.((t * h) + c) <- S.new_var solver;
        after.((t * h) + c) <- S.new_var solver;
        ps.((t * h) + c) <- S.new_var solver
      done;
      for c = 0 to h - 1 do
        let b = busy.((t * h) + c) in
        let occupants = ref [] in
        for i = n_items - 1 downto 0 do
          let v = x.(i).((t * h) + c) in
          if v <> 0 then occupants := v :: !occupants
        done;
        Cnf.at_most_one solver !occupants;
        add_imp solver b (List.map (fun v -> L v) !occupants);
        List.iter (fun v -> S.add_clause solver [ -v; b ]) !occupants;
        let a = after.((t * h) + c) in
        let nxt = if c = h - 1 then F else L after.((t * h) + c + 1) in
        add_imp solver a [ L b; nxt ];
        S.add_clause solver [ -b; a ];
        (match nxt with L n -> S.add_clause solver [ -n; a ] | _ -> ());
        let p = ps.((t * h) + c) in
        S.add_clause solver [ -p; -b ];
        S.add_clause solver [ -p; a ];
        if c > 0 then begin
          let pb = busy.((t * h) + c - 1) in
          S.add_clause solver [ -p; pb ];
          S.add_clause solver [ b; -a; -pb; p ]
        end
        else S.add_clause solver [ b; -a; p ]
      done;
      (* busy and ps are disjoint per cycle, so at most [h] words can
         accrue: tiles with cap >= h cannot overflow.  A spread budget
         (flow retry pass) tightens the bound below the remaining
         capacity to leave headroom for later blocks; a free symbol
         homing here with future writers pads the counter with that
         many copies of its hv literal, charging the reserve the
         moment the model picks the home. *)
      let bound =
        match budget with
        | None -> cap.(t)
        | Some b -> min cap.(t) b.(t)
      in
      let pad = ref [] in
      List.iter
        (fun s ->
          let fw = future.(s) in
          if fw > 0 then
            match Hashtbl.find_opt hv (s, t) with
            | Some v ->
              for _ = 1 to fw do
                pad := v :: !pad
              done
            | None -> ())
        free_syms;
      if bound < h + List.length !pad then begin
        let words = ref !pad in
        for c = h - 1 downto 0 do
          words := busy.((t * h) + c) :: ps.((t * h) + c) :: !words
        done;
        Cnf.at_most_k solver !words bound
      end)
    usable_tiles;
  (* A free symbol with future writers cannot home on a tile without
     room for them: tiles outside the usable set place no words and so
     never meet the padded counter above — forbid the home directly. *)
  List.iter
    (fun t ->
      if not (usable t) then
        List.iter
          (fun s ->
            if future.(s) > max 0 cap.(t) then
              match Hashtbl.find_opt hv (s, t) with
              | Some v -> S.add_clause solver [ -v ]
              | None -> ())
          free_syms)
    alive_tiles;
  (* Solve and extract. *)
  if debug then
    Printf.eprintf "exact: block %s h=%d items=%d vars=%d clauses=%d...\n%!"
      blk.Cdfg.name h n_items (S.nvars solver) (S.stats_clauses solver);
  let verdict = S.solve ~conflict_budget ~deadline solver in
  if debug then
    Printf.eprintf "exact: block %s h=%d -> %s (%d conflicts)\n%!"
      blk.Cdfg.name h
      (match verdict with
      | S.Sat -> "SAT"
      | S.Unsat -> "UNSAT"
      | S.Unknown -> "unknown")
      (S.stats_conflicts solver);
  match verdict with
  | S.Unsat -> (`Unsat, S.stats_conflicts solver)
  | S.Unknown when Deadline.expired deadline ->
    (* A deadline-induced [Unknown] must not masquerade as budget
       exhaustion: the grow/refine loop would keep probing other
       schedule lengths and "bounded-time abort" would become
       "one more 20k-conflict probe per length". *)
    raise
      (Search.Timed_out
         { at_block = ctx.bi; where = "exact solve " ^ ctx.blk.Cdfg.name })
  | S.Unknown -> (`Unknown, S.stats_conflicts solver)
  | S.Sat ->
    let place =
      Array.mapi
        (fun i _ ->
          let found = ref (-1, -1) in
          List.iter
            (fun t ->
              for c = lb.(i) to h - 1 do
                let v = x.(i).((t * h) + c) in
                if v <> 0 && S.value solver v then found := (t, c)
              done)
            dom.(i);
          !found)
        items
    in
    let new_homes =
      List.map
        (fun s ->
          let t =
            List.find (fun t -> S.value solver (Hashtbl.find hv (s, t)))
              alive_tiles
          in
          (s, t))
        block_free_syms
    in
    (`Sat { m_place = place; m_homes = new_homes }, S.stats_conflicts solver)

(* Doubling then binary refinement over the schedule length: SAT(h) is
   monotone in h (trailing idle cycles are free), the item count caps
   any compacted feasible schedule, so UNSAT at the cap is a proof.
   A budget-exhausted [Unknown] during growth just moves on to the
   next length (larger instances are usually easier to satisfy) but
   taints any terminal UNSAT — a proof needs every length refuted for
   real.  During refinement [Unknown] conservatively keeps the best
   known model. *)
let solve_block ~cgra ~committed ~budget ~future ~homes ~ctx ~deadline =
  let conflicts = ref 0 in
  let solves = ref 0 in
  let attempt h =
    (* Probe boundary: checked before building the next CNF instance,
       so an expired deadline costs at most one solver tail (≤ 256
       conflicts) plus one encoding, never a full extra probe. *)
    if Deadline.expired deadline then
      raise
        (Search.Timed_out
           { at_block = ctx.bi; where = "exact probe " ^ ctx.blk.Cdfg.name });
    incr solves;
    let r, c = attempt ~cgra ~committed ~budget ~future ~homes ~ctx ~deadline h in
    conflicts := !conflicts + c;
    r
  in
  let unknown_seen = ref false in
  let rec grow h last_bad =
    match attempt h with
    | `Sat m -> `Found (last_bad, h, m)
    | (`Unknown | `Unsat) as r ->
      if r = `Unknown then unknown_seen := true;
      if h >= ctx.h_cap then if !unknown_seen then `Budget else `Unsat
      else grow (min ctx.h_cap (2 * h)) h
  in
  let result =
    match grow ctx.h_lb (ctx.h_lb - 1) with
    | `Unsat -> `Unsat
    | `Budget -> `Budget
    | `Found (lo, hi, m) ->
      let rec refine lo hi m =
        if hi - lo <= 1 then (hi, m)
        else
          let mid = (lo + hi) / 2 in
          match attempt mid with
          | `Sat m' -> refine lo mid m'
          | `Unsat | `Unknown -> refine mid hi m
      in
      let h, m = refine lo hi m in
      `Mapped (h, m)
  in
  (result, !conflicts, !solves)

let decode ~ctx ~homes (model : model) =
  let { blk; items; absorbed; cond_node; _ } = ctx in
  let home_of s =
    if homes.(s) >= 0 then homes.(s) else List.assoc s model.m_homes
  in
  let tile_of_node j = fst model.m_place.(j) in
  let slots =
    Array.to_list
      (Array.mapi
         (fun i item ->
           let tile, cycle = model.m_place.(i) in
           match item with
           | Op n ->
             let nd = blk.Cdfg.nodes.(n) in
             let operand_tiles =
               List.map
                 (function
                   | Cdfg.Imm _ -> tile
                   | Cdfg.Sym s -> home_of s
                   | Cdfg.Node m -> tile_of_node m)
                 nd.Cdfg.operands
             in
             {
               Mapping.tile;
               cycle;
               action = Mapping.Aop { node = n; operand_tiles };
               writes_sym = absorbed.(n);
               set_cond = cond_node = Some n;
             }
           | Wcopy { sym; value } ->
             {
               Mapping.tile;
               cycle;
               action = Mapping.Acopy value;
               writes_sym = Some sym;
               set_cond = false;
             }
           | Ccopy { value } ->
             {
               Mapping.tile;
               cycle;
               action = Mapping.Acopy value;
               writes_sym = None;
               set_cond = true;
             })
         items)
  in
  let slots =
    List.sort
      (fun a b ->
        if a.Mapping.cycle <> b.Mapping.cycle then
          compare a.Mapping.cycle b.Mapping.cycle
        else compare a.Mapping.tile b.Mapping.tile)
      slots
  in
  let length =
    List.fold_left (fun acc sl -> max acc (sl.Mapping.cycle + 1)) 1 slots
  in
  (slots, length)

let map_block ?budget ?future ?(deadline = Deadline.never) ~config:_ ~cgra
    ~committed ~homes ~work cdfg bi =
  let t0 = Clock.now () in
  let ctx = build_ctx cdfg bi in
  let stats ~rounds ~attempts =
    {
      Search.block = bi;
      block_name = ctx.blk.Cdfg.name;
      rounds;
      attempts;
      children = 0;
      route_failures = 0;
      acmap_kills = 0;
      ecmap_kills = 0;
      prune_survivors = 0;
      finalize_failures = 0;
      recomputes = 0;
      population_peak = 1;
      wall_seconds = Clock.elapsed_s t0;
      alloc_words = 0.0;
    }
  in
  if Array.length ctx.items = 0 then
    Ok
      {
        Search.bb_mapping = { Mapping.bb = bi; length = 1; slots = [] };
        new_homes = [];
        stats = stats ~rounds:0 ~attempts:0;
      }
  else begin
    let future =
      match future with
      | Some f -> f
      | None -> Array.make (Array.length homes) 0
    in
    let result, conflicts, solves =
      solve_block ~cgra ~committed ~budget ~future ~homes ~ctx ~deadline
    in
    work := !work + conflicts;
    match result with
    | `Mapped (_h, model) ->
      let slots, length = decode ~ctx ~homes model in
      Ok
        {
          Search.bb_mapping = { Mapping.bb = bi; length; slots };
          new_homes = model.m_homes;
          stats = stats ~rounds:solves ~attempts:conflicts;
        }
    | `Budget ->
      Error
        (Printf.sprintf
           "block %d (%s): exact backend exhausted its conflict budget \
            (%d conflicts over %d solves)"
           bi ctx.blk.Cdfg.name conflicts solves)
    | `Unsat ->
      (* Distinguish "blocked by what earlier blocks committed" from a
         kernel-level infeasibility: re-solve in isolation (no
         committed words, every home free).  Any full mapping of the
         kernel restricts to an isolated solution of this block, so
         isolated-UNSAT at the cap proves the whole kernel unmappable
         under the encoding. *)
      let zero = Array.make (Cgra.tile_count cgra) 0 in
      let free = Array.make (Array.length homes) (-1) in
      (* The isolation probe must stay a true feasibility check: no
         spread budget, no reserves, full capacity. *)
      let iso, iso_conflicts, iso_solves =
        solve_block ~cgra ~committed:zero ~budget:None
          ~future:(Array.make (Array.length homes) 0)
          ~homes:free ~ctx ~deadline
      in
      work := !work + iso_conflicts;
      ignore iso_solves;
      Error
        (match iso with
        | `Unsat ->
          Printf.sprintf
            "block %d (%s): proved UNSAT under the exact encoding (no \
             placement at any schedule length <= %d, even in isolation)"
            bi ctx.blk.Cdfg.name ctx.h_cap
        | `Mapped _ ->
          Printf.sprintf
            "block %d (%s): exact backend found no mapping under the \
             committed context (the block is feasible in isolation)"
            bi ctx.blk.Cdfg.name
        | `Budget ->
          Printf.sprintf
            "block %d (%s): exact backend found no mapping under the \
             committed context (isolation probe hit the conflict budget)"
            bi ctx.blk.Cdfg.name)
  end
