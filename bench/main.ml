(* Benchmark and reproduction harness.

   Usage:
     main.exe [--jobs N] [--opt]    regenerate every artifact, then run the
                                    Bechamel micro-benchmarks and ablations
     main.exe [--jobs N] [--opt] <artifact>
                                    an artifact name (see: main.exe list),
                                    or all, micro, ablation, list

   --jobs N (also -j N, --jobs=N) evaluates the experiment grid with N
   domains before rendering; default is the machine's recommended domain
   count.  Artifact output is byte-identical at any N.

   --opt regenerates the artifacts from the cgra_opt-optimized kernels
   (naive lowering + differential-verified pass pipeline) instead of the
   default inline-optimized lowering.  Without it, output is byte-identical
   to the seed harness.  The opt_report artifact compares raw vs optimized
   directly and ignores the flag.

   --trials N sizes the fault_report injection campaigns (default 120 per
   kernel) and the repair_report survivability campaigns (default 30 per
   kernel x configuration cell); must be positive.  The tables are
   deterministic for a given N at any --jobs.

   --faults N sets how many random permanent faults each repair_report
   trial injects (default 2); must be positive.

   --protect none|parity|secded (or a per-size-class csv, e.g.
   cm64=secded,cm32=parity,cm16=none) runs fault_report campaigns through
   the context-memory ECC fetch path and adds detected/corrected columns.
   The protection_report artifact always sweeps all three uniform levels
   and ignores the flag.  With the default (none), every artifact is
   byte-identical to the unprotected harness.

   --quick shrinks the optimality_report grid (two kernels, HOM64 and
   HOM32) so CI can smoke the exact SAT backend without paying for the
   full kernel x configuration sweep.  Quick and full tables are each
   deterministic, but differ from each other.

   --mode full|incremental selects the repair_report remap strategy:
   full re-searches the whole kernel on every repair (default);
   incremental reuses every block the diagnosed faults do not touch and
   re-searches only the dirty ones.  Either mode is deterministic at any
   --jobs; per-cell campaign wall-clock goes to stderr.

   alloc_check (a command, not an artifact) maps FIR on HOM64 with the
   basic flow and fails if the allocated words per binding attempt
   regress past the recorded budget — the smoke guard for the flattened
   search inner loop.

   Artifact regeneration prints the same rows/series as the paper's
   evaluation section (see EXPERIMENTS.md for the paper-vs-measured
   record). *)

open Bechamel
open Toolkit

module Runner_kernels = struct
  let kernels = Cgra_kernels.Kernels.all
end

(* The paper set, used by [all] and the micro benches; [list] and name
   lookup also see the extras (opt_report, search_report). *)
let artifacts = Cgra_exp.Figures.artifacts

let list_artifacts () =
  List.iter print_endline Cgra_exp.Figures.artifact_names

let print_artifact name =
  match List.assoc_opt name Cgra_exp.Figures.all_artifacts with
  | Some f ->
    print_endline (f ());
    print_newline ()
  | None ->
    Printf.eprintf "unknown artifact %s (try: main.exe list)\n" name;
    exit 1

let run_all_artifacts () = List.iter (fun (n, _) -> print_artifact n) artifacts

(* ---- Bechamel micro-benchmarks --------------------------------------- *)

let fir = Option.get (Cgra_kernels.Kernels.by_slug "fir")
let fir_cdfg = Cgra_kernels.Kernel_def.cdfg fir

let map_fir config flow =
  match Cgra_core.Flow.run ~config:flow (Cgra_arch.Config.cgra config) fir_cdfg with
  | Ok (m, _) -> m
  | Error f -> failwith f.Cgra_core.Flow.reason

let fir_mapping = lazy (map_fir Cgra_arch.Config.HOM64 Cgra_core.Flow_config.basic)
let fir_program = lazy (Cgra_asm.Assemble.assemble (Lazy.force fir_mapping))
let fir_cpu = lazy (Cgra_cpu.Codegen.compile fir_cdfg)

(* One Test.make per paper table/figure: each measures regenerating that
   artifact with a warm run cache (the mapping work itself is benchmarked
   separately below). *)
let artifact_tests =
  List.map
    (fun (name, f) -> Test.make ~name:("artifact/" ^ name) (Staged.stage f))
    artifacts

let pipeline_tests =
  [ Test.make ~name:"frontend/compile-fir"
      (Staged.stage (fun () ->
           Cgra_lang.Compile.compile_exn fir.Cgra_kernels.Kernel_def.source));
    Test.make ~name:"mapper/basic-fir-hom64"
      (Staged.stage (fun () ->
           map_fir Cgra_arch.Config.HOM64 Cgra_core.Flow_config.basic));
    Test.make ~name:"mapper/aware-fir-het2"
      (Staged.stage (fun () ->
           map_fir Cgra_arch.Config.HET2 Cgra_core.Flow_config.context_aware));
    Test.make ~name:"assembler/fir"
      (Staged.stage (fun () -> Cgra_asm.Assemble.assemble (Lazy.force fir_mapping)));
    Test.make ~name:"simulator/fir"
      (Staged.stage (fun () ->
           let mem = Cgra_kernels.Kernel_def.fresh_mem fir in
           Cgra_sim.Simulator.run (Lazy.force fir_program) ~mem));
    Test.make ~name:"cpu-sim/fir"
      (Staged.stage (fun () ->
           let mem = Cgra_kernels.Kernel_def.fresh_mem fir in
           Cgra_cpu.Cpu_sim.run (Lazy.force fir_cpu) ~mem));
    Test.make ~name:"interp/fir"
      (Staged.stage (fun () ->
           let mem = Cgra_kernels.Kernel_def.fresh_mem fir in
           Cgra_ir.Interp.run fir_cdfg ~mem)) ]

let run_micro () =
  (* Warm the experiment cache so artifact benches measure rendering, not
     first-run mapping. *)
  List.iter (fun (_, f) -> ignore (f ())) artifacts;
  let tests = artifact_tests @ pipeline_tests in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  print_endline "Bechamel micro-benchmarks (ns per run):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns\n%!" name ns
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests

(* ---- Ablations (DESIGN.md section 6) --------------------------------- *)

let ablation_beam () =
  print_endline "Ablation: beam width of the full flow (FFT @ HET2)";
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fft") in
  let cdfg = Cgra_kernels.Kernel_def.cdfg k in
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HET2 in
  List.iter
    (fun beam ->
      let config =
        { Cgra_core.Flow_config.context_aware with beam_width = beam }
      in
      let t0 = Cgra_util.Clock.now () in
      (match Cgra_core.Flow.run ~config cgra cdfg with
       | Ok (m, _) ->
         let prog = Cgra_asm.Assemble.assemble m in
         let mem = Cgra_kernels.Kernel_def.fresh_mem k in
         let r = Cgra_sim.Simulator.run prog ~mem in
         Printf.printf "  beam %3d: mapped, %d cycles, %d moves, %.2fs\n%!"
           beam r.Cgra_sim.Simulator.cycles (Cgra_core.Mapping.total_moves m)
           (Cgra_util.Clock.elapsed_s t0)
       | Error f ->
         Printf.printf "  beam %3d: FAILED (%s), %.2fs\n%!" beam
           f.Cgra_core.Flow.reason
           (Cgra_util.Clock.elapsed_s t0)))
    [ 4; 8; 16; 32; 48 ]

let ablation_seeds () =
  print_endline "Ablation: stochastic-pruning seed (MatM @ HET1, full flow)";
  let k = Option.get (Cgra_kernels.Kernels.by_slug "matm") in
  let cdfg = Cgra_kernels.Kernel_def.cdfg k in
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HET1 in
  List.iter
    (fun seed ->
      let config = { Cgra_core.Flow_config.context_aware with seed } in
      match Cgra_core.Flow.run ~config cgra cdfg with
      | Ok (m, _) ->
        let prog = Cgra_asm.Assemble.assemble m in
        let mem = Cgra_kernels.Kernel_def.fresh_mem k in
        let r = Cgra_sim.Simulator.run prog ~mem in
        Printf.printf "  seed %4d: mapped, %d cycles, %d context words max\n%!"
          seed r.Cgra_sim.Simulator.cycles
          (Array.fold_left
             (fun acc u -> max acc (Cgra_core.Mapping.usage_total u))
             0
             (Cgra_core.Mapping.tile_usage m))
      | Error f -> Printf.printf "  seed %4d: FAILED (%s)\n%!" seed f.Cgra_core.Flow.reason)
    [ 42; 7; 1234 ]

let ablation_ports () =
  print_endline "Ablation: data-memory ports (Convolution @ HOM64, basic flow)";
  let k = Option.get (Cgra_kernels.Kernels.by_slug "convolution") in
  let cdfg = Cgra_kernels.Kernel_def.cdfg k in
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HOM64 in
  match Cgra_core.Flow.run cgra cdfg with
  | Error f -> Printf.printf "  mapping failed: %s\n" f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    let prog = Cgra_asm.Assemble.assemble m in
    List.iter
      (fun ports ->
        let mem = Cgra_kernels.Kernel_def.fresh_mem k in
        let r = Cgra_sim.Simulator.run ~mem_ports:ports prog ~mem in
        Printf.printf "  %2d ports: %d cycles (%d stalls)\n%!" ports
          r.Cgra_sim.Simulator.cycles r.Cgra_sim.Simulator.stall_cycles)
      [ 1; 2; 4; 8 ]

let ablation_cfg_simplification () =
  print_endline
    "Ablation: trivial-block elimination (controller transition cycles)";
  List.iter
    (fun k ->
      let plain = Cgra_kernels.Kernel_def.cdfg k in
      let simple = Cgra_ir.Opt.simplify_cfg plain in
      let run cdfg =
        match
          Cgra_core.Flow.run ~config:Cgra_core.Flow_config.basic
            (Cgra_arch.Config.cgra Cgra_arch.Config.HOM64) cdfg
        with
        | Error _ -> None
        | Ok (m, _) ->
          let prog = Cgra_asm.Assemble.assemble m in
          let mem = Cgra_kernels.Kernel_def.fresh_mem k in
          Some (Cgra_sim.Simulator.run prog ~mem).Cgra_sim.Simulator.cycles
      in
      match run plain, run simple with
      | Some a, Some b ->
        Printf.printf "  %-14s %5d -> %5d cycles (%d blocks -> %d)\n%!"
          k.Cgra_kernels.Kernel_def.name a b
          (Cgra_ir.Cdfg.block_count plain)
          (Cgra_ir.Cdfg.block_count simple)
      | _, _ -> Printf.printf "  %-14s (mapping failed)\n%!" k.Cgra_kernels.Kernel_def.name)
    Runner_kernels.kernels;
  print_endline
    "  (the lowering attaches live-outs to join blocks, so this suite has\n\
    \   no trivial blocks; the pass pays off on if/else-heavy kernels)"

let ablation_if_conversion () =
  print_endline "Ablation: if-conversion (predication via select)";
  let src =
    {|kernel threshold { arr x @ 0; arr o @ 32; var i, v, r;
      for (i = 0; i < 24; i = i + 1) {
        v = x[i];
        r = 0;
        if (v > 8) { r = v * 3 + 1; } else { r = 0 - v; }
        o[i] = r;
      } }|}
  in
  let cdfg = Cgra_lang.Compile.compile_exn src in
  let conv = Cgra_ir.Opt.simplify_cfg (Cgra_ir.Opt.if_convert cdfg) in
  let run label c =
    match
      Cgra_core.Flow.run ~config:Cgra_core.Flow_config.basic
        (Cgra_arch.Config.cgra Cgra_arch.Config.HOM64) c
    with
    | Error f -> Printf.printf "  %-14s mapping failed: %s\n%!" label f.Cgra_core.Flow.reason
    | Ok (m, _) ->
      let prog = Cgra_asm.Assemble.assemble m in
      let mem = Array.make 64 0 in
      for k = 0 to 23 do
        mem.(k) <- (k * 7) mod 17
      done;
      let golden = Array.copy mem in
      ignore (Cgra_ir.Interp.run c ~mem:golden);
      let r = Cgra_sim.Simulator.run prog ~mem in
      assert (mem = golden);
      Printf.printf "  %-14s %5d cycles over %2d blocks\n%!" label
        r.Cgra_sim.Simulator.cycles (Cgra_ir.Cdfg.block_count c)
  in
  run "branchy" cdfg;
  run "if-converted" conv

let run_ablations () =
  ablation_beam ();
  ablation_seeds ();
  ablation_ports ();
  ablation_cfg_simplification ();
  ablation_if_conversion ()

(* ---- allocation-budget smoke check ----------------------------------- *)

(* Budget for the flattened search inner loop, in allocated words per
   binding attempt (FIR @ HOM64, basic flow, expand_jobs = 1).  The
   measured figure is stable for a fixed build but not byte-portable
   across compiler versions, so this is a regression bound with headroom
   (~1.5x the measured value at the time of recording, 608.8), not an
   exact expectation. *)
let alloc_budget_words_per_attempt = 900.0

let run_alloc_check () =
  match
    Cgra_core.Flow.run ~config:Cgra_core.Flow_config.basic
      (Cgra_arch.Config.cgra Cgra_arch.Config.HOM64)
      fir_cdfg
  with
  | Error f ->
    Printf.eprintf "alloc_check: FIR must map on HOM64: %s\n"
      f.Cgra_core.Flow.reason;
    exit 1
  | Ok (_, stats) ->
    let words, attempts =
      List.fold_left
        (fun (w, a) (b : Cgra_core.Search.block_stats) ->
          (w +. b.Cgra_core.Search.alloc_words, a + b.Cgra_core.Search.attempts))
        (0.0, 0) stats.Cgra_core.Flow.search
    in
    let per = words /. float_of_int (max 1 attempts) in
    Printf.printf
      "alloc_check: %.0f words over %d binding attempts = %.1f words/attempt \
       (budget %.1f)\n"
      words attempts per alloc_budget_words_per_attempt;
    if per > alloc_budget_words_per_attempt then begin
      Printf.eprintf
        "alloc_check: FAIL — per-attempt allocation regressed past the \
         recorded budget\n";
      exit 1
    end
    else print_endline "alloc_check: OK"

(* ---- serve_report ------------------------------------------------------ *)

(* Latency profile of the cgra_mapd daemon (a command, not an artifact:
   wall-clock numbers are machine-dependent and must not leak into the
   deterministic artifact set).  An in-process server on a private
   socket/store is measured per kernel: cold-miss latency (compute +
   store write), store-hit latency, and the hit/miss ratio the daemon
   exists to deliver.  Finally a 4-client hammer measures warm
   throughput over concurrent connections. *)
let run_serve_report () =
  let module Serve = Cgra_serve in
  let tmp tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cgra-serve-report-%d-%s" (Unix.getpid ()) tag)
  in
  let socket_path = tmp "sock" in
  let server =
    Serve.Server.start
      {
        Serve.Server.socket_path;
        tcp_port = None;
        store_root = Some (tmp "store");
        jobs = None;
        verbose = false;
        deadline_ms = None;
        queue_limit = None;
        io_timeout_s = None;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop server;
      Serve.Server.wait server;
      Cgra_exp.Runner.set_artifact_backend None;
      ignore (Serve.Store.clear (Serve.Server.store server)))
    (fun () ->
      let ep = Serve.Client.Unix_socket socket_path in
      let request_bytes spec =
        match Serve.Client.map ~fallback:false ep spec with
        | Ok (Serve.Client.Artifact { bytes; _ }) -> Some bytes
        | Ok (Serve.Client.Unmappable _) -> None
        | Ok (Serve.Client.Timed_out { where }) ->
          Printf.eprintf "serve_report: unexpected timeout (%s)\n" where;
          exit 1
        | Error e ->
          Printf.eprintf "serve_report: %s\n"
            (Serve.Client.map_error_to_string e);
          exit 1
      in
      let time f =
        let t0 = Cgra_util.Clock.now () in
        let r = f () in
        (r, Cgra_util.Clock.elapsed_s t0)
      in
      let hit_samples = 25 in
      let rows =
        List.filter_map
          (fun k ->
            let slug = k.Cgra_kernels.Kernel_def.slug in
            match
              Serve.Key.spec_of_bundled ~slug ~config:Cgra_arch.Config.HET2
                ~flow:Cgra_core.Flow_config.context_aware ~opt:Serve.Key.Default
                ~faults:[]
            with
            | Error e ->
              Printf.eprintf "serve_report: %s\n" e;
              exit 1
            | Ok spec -> (
              match time (fun () -> request_bytes spec) with
              | None, _ -> None (* unmappable: nothing to serve *)
              | Some bytes, miss_s ->
                (* median of repeated hits, robust to scheduler noise *)
                let hits =
                  List.init hit_samples (fun _ ->
                      snd (time (fun () -> ignore (request_bytes spec))))
                  |> List.sort compare
                in
                let hit_s = List.nth hits (hit_samples / 2) in
                Some
                  [
                    slug;
                    string_of_int (String.length bytes);
                    Printf.sprintf "%.1f" (miss_s *. 1e3);
                    Printf.sprintf "%.1f" (hit_s *. 1e6);
                    Printf.sprintf "%.0fx" (miss_s /. hit_s);
                  ]))
          Cgra_kernels.Kernels.all
      in
      print_string
        (Cgra_util.Text_table.render_aligned
           ~header:
             [ "kernel"; "artifact B"; "miss ms"; "hit us"; "miss/hit" ]
           ~align:[ `L; `R; `R; `R; `R ] ~rows);
      (* warm throughput: 4 clients, every request a store hit *)
      let clients = 4 and per_client = 50 in
      let spec =
        match
          Serve.Key.spec_of_bundled ~slug:"fir" ~config:Cgra_arch.Config.HET2
            ~flow:Cgra_core.Flow_config.context_aware ~opt:Serve.Key.Default
            ~faults:[]
        with
        | Ok s -> s
        | Error e ->
          Printf.eprintf "serve_report: %s\n" e;
          exit 1
      in
      let (), wall =
        time (fun () ->
            List.init clients (fun _ ->
                Domain.spawn (fun () ->
                    for _ = 1 to per_client do
                      ignore (request_bytes spec)
                    done))
            |> List.iter Domain.join)
      in
      Printf.printf
        "\nthroughput: %d clients x %d warm requests in %.2f s = %.0f req/s\n"
        clients per_client wall
        (float_of_int (clients * per_client) /. wall))

(* ---- resilience_report ------------------------------------------------- *)

(* Behaviour of the supervision layer under induced failure (a command,
   not an artifact: wall-clock numbers are machine-dependent).  Three
   sections: a deadline sweep on a deliberately hard request (the SAT
   backend on matm@HOM32 — tens of seconds uncancelled), typed
   backpressure under an overloaded compute queue, and crash recovery —
   store debris swept at restart, warm hits byte-identical across the
   "crash".  [--quick] trims the sweep for CI smoke. *)
let run_resilience_report ~quick () =
  let module Serve = Cgra_serve in
  let module FC = Cgra_core.Flow_config in
  let tmp tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cgra-resilience-%d-%s" (Unix.getpid ()) tag)
  in
  let time f =
    let t0 = Cgra_util.Clock.now () in
    let r = f () in
    (r, Cgra_util.Clock.elapsed_s t0)
  in
  let spec_exn ~slug ~config ~flow =
    match
      Serve.Key.spec_of_bundled ~slug ~config ~flow ~opt:Serve.Key.Default
        ~faults:[]
    with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "resilience_report: %s\n" e;
      exit 1
  in
  let slow_spec ~seed =
    spec_exn ~slug:"matm" ~config:Cgra_arch.Config.HOM32
      ~flow:{ FC.context_aware with FC.backend = FC.Exact; seed }
  in
  let fast_spec = spec_exn ~slug:"fir" ~config:Cgra_arch.Config.HET2
      ~flow:FC.context_aware
  in
  let with_server ?deadline_ms ?queue_limit ~tag ~jobs f =
    let socket_path = tmp (tag ^ ".sock") in
    let server =
      Serve.Server.start
        {
          Serve.Server.socket_path;
          tcp_port = None;
          store_root = Some (tmp (tag ^ ".store"));
          jobs = Some jobs;
          verbose = false;
          deadline_ms;
          queue_limit;
          io_timeout_s = Some 5.0;
        }
    in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.request_stop server;
        Serve.Server.wait server;
        Cgra_exp.Runner.set_artifact_backend None)
      (fun () -> f server (Serve.Client.Unix_socket socket_path))
  in
  let outcome_of = function
    | Ok (Serve.Client.Artifact { bytes; _ }) ->
      Printf.sprintf "artifact (%d B)" (String.length bytes)
    | Ok (Serve.Client.Unmappable _) -> "unmappable"
    | Ok (Serve.Client.Timed_out { where }) -> "timed out @ " ^ where
    | Error e -> "error: " ^ Serve.Client.map_error_to_string e
  in
  (* 1. deadline sweep: the request must come back typed, promptly, and
     never be cached — each probe recomputes *)
  let sweep = if quick then [ 200 ] else [ 100; 300; 1000 ] in
  let rows =
    List.map
      (fun deadline_ms ->
        with_server ~tag:(Printf.sprintf "dl%d" deadline_ms) ~jobs:2
          (fun _server ep ->
            let r, s =
              time (fun () ->
                  Serve.Client.map ~fallback:false ~deadline_ms ep
                    (slow_spec ~seed:0))
            in
            [
              string_of_int deadline_ms;
              Printf.sprintf "%.0f" (s *. 1e3);
              outcome_of r;
            ]))
      sweep
  in
  print_string
    (Cgra_util.Text_table.render_aligned
       ~header:[ "deadline ms"; "response ms"; "outcome (matm@HOM32 exact)" ]
       ~align:[ `R; `R; `L ] ~rows);
  (* 2. overload: distinct slow cache-missing keys against one worker;
     everything past the queue limit must shed, typed, immediately *)
  let clients = if quick then 4 else 6 in
  with_server ~tag:"shed" ~jobs:1 ~queue_limit:2 ~deadline_ms:1000
    (fun _server ep ->
      let results = Array.make clients (Error "unset") in
      let (), wall =
        time (fun () ->
            let threads =
              List.init clients (fun i ->
                  Thread.create
                    (fun () ->
                      results.(i) <-
                        (match
                           Serve.Client.map ~fallback:false ep
                             (slow_spec ~seed:(i + 1))
                         with
                        | Ok (Serve.Client.Timed_out _) -> Ok "timed out"
                        | Ok _ -> Ok "served"
                        | Error (Serve.Client.Rejected _) -> Ok "shed"
                        | Error (Serve.Client.Unreachable _) ->
                          Error "unreachable"))
                    ())
            in
            List.iter Thread.join threads)
      in
      let count tag =
        Array.to_list results
        |> List.filter (( = ) (Ok tag))
        |> List.length
      in
      print_string
        (Cgra_util.Text_table.render_aligned
           ~header:
             [ "clients"; "queue limit"; "timed out"; "shed"; "wall s" ]
           ~align:[ `R; `R; `R; `R; `R ]
           ~rows:
             [
               [
                 string_of_int clients;
                 "2";
                 string_of_int (count "timed out");
                 string_of_int (count "shed");
                 Printf.sprintf "%.2f" wall;
               ];
             ]));
  (* 3. crash recovery: compute, plant the debris a SIGKILLed writer
     leaves, restart on the same store, and check the sweep plus a
     byte-identical warm hit *)
  let root = tmp "crash.store" in
  let socket_path = tmp "crash.sock" in
  let config =
    {
      Serve.Server.socket_path;
      tcp_port = None;
      store_root = Some root;
      jobs = Some 2;
      verbose = false;
      deadline_ms = None;
      queue_limit = None;
      io_timeout_s = None;
    }
  in
  let first = Serve.Server.start config in
  let md5_before, cold_ms =
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.request_stop first;
        Serve.Server.wait first;
        Cgra_exp.Runner.set_artifact_backend None)
      (fun () ->
        let r, s =
          time (fun () ->
              Serve.Client.map ~fallback:false
                (Serve.Client.Unix_socket socket_path) fast_spec)
        in
        match r with
        | Ok (Serve.Client.Artifact { bytes; _ }) ->
          (Digest.to_hex (Digest.string bytes), s *. 1e3)
        | other ->
          Printf.eprintf "resilience_report: fir did not map (%s)\n"
            (outcome_of other);
          exit 1)
  in
  (* the debris a writer killed mid-store-write would leave *)
  Out_channel.with_open_bin (Filename.concat root "tmp.1.0.0") (fun oc ->
      Out_channel.output_string oc "torn");
  let swept = Serve.Store.scan (Serve.Store.open_ ~root ()) in
  let second = Serve.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop second;
      Serve.Server.wait second;
      Cgra_exp.Runner.set_artifact_backend None;
      ignore (Serve.Store.clear (Serve.Server.store second)))
    (fun () ->
      let r, s =
        time (fun () ->
            Serve.Client.map ~fallback:false
              (Serve.Client.Unix_socket socket_path) fast_spec)
      in
      let identical, cached =
        match r with
        | Ok
            (Serve.Client.Artifact
               { bytes; source = Serve.Client.Daemon { cached }; _ }) ->
          (Digest.to_hex (Digest.string bytes) = md5_before, cached)
        | _ -> (false, false)
      in
      print_string
        (Cgra_util.Text_table.render_aligned
           ~header:
             [
               "cold ms";
               "orphans swept";
               "warm ms";
               "warm cached";
               "bytes identical";
             ]
           ~align:[ `R; `R; `R; `R; `R ]
           ~rows:
             [
               [
                 Printf.sprintf "%.0f" cold_ms;
                 string_of_int swept.Serve.Store.orphans;
                 Printf.sprintf "%.1f" (s *. 1e3);
                 string_of_bool cached;
                 string_of_bool identical;
               ];
             ]);
      if not identical then begin
        Printf.eprintf
          "resilience_report: artifact changed across the restart\n";
        exit 1
      end)

(* --jobs N / -j N / --jobs=N and --opt anywhere on the command line. *)
let parse_flags args =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let bad flag n =
    Printf.eprintf "invalid %s value %S\n" flag n;
    exit 1
  in
  let parse flag n =
    match int_of_string_opt n with Some j -> j | None -> bad flag n
  in
  (* Campaign-sizing flags must be positive: a zero or negative count
     would silently render an empty table. *)
  let positive flag n =
    let v = parse flag n in
    if v <= 0 then begin
      Printf.eprintf "%s must be positive (got %d)\n" flag v;
      exit 1
    end;
    v
  in
  let repair_mode flag = function
    | "full" -> Cgra_verify.Repair.Full
    | "incremental" -> Cgra_verify.Repair.Incremental
    | n ->
      Printf.eprintf "invalid %s value %S (expected full|incremental)\n" flag n;
      exit 1
  in
  let protection flag n =
    match Cgra_arch.Protection.profile_of_string n with
    | Some p -> p
    | None ->
      Printf.eprintf "invalid %s value %S (expected %s)\n" flag n
        Cgra_arch.Protection.valid_values;
      exit 1
  in
  let rec go jobs opt trials faults mode quick protect acc = function
    | [] -> (jobs, opt, trials, faults, mode, quick, protect, List.rev acc)
    | ("--jobs" | "-j") :: n :: rest ->
      go (Some (parse "--jobs" n)) opt trials faults mode quick protect acc rest
    | [ ("--jobs" | "-j") ] -> bad "--jobs" "<missing>"
    | arg :: rest when starts_with "--jobs=" arg ->
      let n = String.sub arg 7 (String.length arg - 7) in
      go (Some (parse "--jobs" n)) opt trials faults mode quick protect acc rest
    | "--trials" :: n :: rest ->
      go jobs opt (Some (positive "--trials" n)) faults mode quick protect acc
        rest
    | [ "--trials" ] -> bad "--trials" "<missing>"
    | arg :: rest when starts_with "--trials=" arg ->
      let n = String.sub arg 9 (String.length arg - 9) in
      go jobs opt (Some (positive "--trials" n)) faults mode quick protect acc
        rest
    | "--faults" :: n :: rest ->
      go jobs opt trials (Some (positive "--faults" n)) mode quick protect acc
        rest
    | [ "--faults" ] -> bad "--faults" "<missing>"
    | arg :: rest when starts_with "--faults=" arg ->
      let n = String.sub arg 9 (String.length arg - 9) in
      go jobs opt trials (Some (positive "--faults" n)) mode quick protect acc
        rest
    | "--mode" :: n :: rest ->
      go jobs opt trials faults (Some (repair_mode "--mode" n)) quick protect
        acc rest
    | [ "--mode" ] -> bad "--mode" "<missing>"
    | arg :: rest when starts_with "--mode=" arg ->
      let n = String.sub arg 7 (String.length arg - 7) in
      go jobs opt trials faults (Some (repair_mode "--mode" n)) quick protect
        acc rest
    | "--protect" :: n :: rest ->
      go jobs opt trials faults mode quick
        (Some (protection "--protect" n))
        acc rest
    | [ "--protect" ] -> bad "--protect" "<missing>"
    | arg :: rest when starts_with "--protect=" arg ->
      let n = String.sub arg 10 (String.length arg - 10) in
      go jobs opt trials faults mode quick
        (Some (protection "--protect" n))
        acc rest
    | "--opt" :: rest -> go jobs true trials faults mode quick protect acc rest
    | "--quick" :: rest -> go jobs opt trials faults mode true protect acc rest
    | arg :: rest ->
      go jobs opt trials faults mode quick protect (arg :: acc) rest
  in
  go None false None None None false None [] args

let () =
  let jobs, opt, trials, faults, mode, quick, protect, rest =
    parse_flags (List.tl (Array.to_list Sys.argv))
  in
  if opt then Cgra_exp.Runner.set_opt_mode Cgra_exp.Runner.Optimized;
  Option.iter Cgra_exp.Figures.set_fault_trials trials;
  Option.iter Cgra_exp.Figures.set_repair_trials trials;
  Option.iter Cgra_exp.Figures.set_repair_faults faults;
  Option.iter Cgra_exp.Figures.set_repair_mode mode;
  Option.iter Cgra_exp.Figures.set_protection protect;
  if quick then Cgra_exp.Figures.set_optimality_quick true;
  let warm () = Cgra_exp.Runner.warm ?jobs () in
  match rest with
  | [] ->
    warm ();
    run_all_artifacts ();
    run_micro ();
    run_ablations ()
  | [ "all" ] ->
    warm ();
    run_all_artifacts ()
  | [ "micro" ] -> run_micro ()
  | [ "ablation" ] -> run_ablations ()
  | [ "alloc_check" ] -> run_alloc_check ()
  | [ "serve_report" ] -> run_serve_report ()
  | [ "resilience_report" ] -> run_resilience_report ~quick ()
  | [ "list" ] -> list_artifacts ()
  | [ name ] ->
    (* a single artifact only needs its own cells; fan out only when the
       user explicitly asked for domains *)
    if jobs <> None then warm ();
    print_artifact name
  | _ ->
    prerr_endline
      "usage: main.exe [--jobs N] [--opt] [--trials N] [--faults N] \
       [--mode full|incremental] [--protect none|parity|secded] \
       [<artifact>|all|micro|ablation|alloc_check|serve_report|resilience_report|list]   \
       (artifact names: main.exe list)";
    exit 1
