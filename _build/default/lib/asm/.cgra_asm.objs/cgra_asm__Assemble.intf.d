lib/asm/assemble.mli: Cgra_arch Cgra_core Format
