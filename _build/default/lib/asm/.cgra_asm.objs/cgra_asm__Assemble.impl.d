lib/asm/assemble.ml: Array Cgra_arch Cgra_core Cgra_ir Format Fun List Printf Queue
