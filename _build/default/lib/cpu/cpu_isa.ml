type reg = int

type instr =
  | Alu of Cgra_ir.Opcode.t * reg * reg * reg
  | Alui of Cgra_ir.Opcode.t * reg * reg * int
  | Movi of reg * int
  | Mov of reg * reg
  | Cmov of reg * reg * reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Bnz of reg * int
  | Jmp of int
  | Ret

let reg_count = 32

let cost instr ~taken =
  match instr with
  | Alu (Cgra_ir.Opcode.Mul, _, _, _) | Alui (Cgra_ir.Opcode.Mul, _, _, _) -> 3
  | Alu _ | Alui _ | Movi _ | Mov _ | Cmov _ -> 1
  | Load _ -> 2
  | Store _ -> 1
  | Bnz _ -> if taken then 3 else 1
  | Jmp _ -> 3
  | Ret -> 1

let to_string = function
  | Alu (op, d, a, b) ->
    Printf.sprintf "%s r%d, r%d, r%d" (Cgra_ir.Opcode.to_string op) d a b
  | Alui (op, d, a, k) ->
    Printf.sprintf "%si r%d, r%d, %d" (Cgra_ir.Opcode.to_string op) d a k
  | Movi (d, k) -> Printf.sprintf "movi r%d, %d" d k
  | Mov (d, a) -> Printf.sprintf "mov r%d, r%d" d a
  | Cmov (d, c, a, b) -> Printf.sprintf "cmov r%d, r%d ? r%d : r%d" d c a b
  | Load (d, a, off) -> Printf.sprintf "load r%d, %d(r%d)" d off a
  | Store (a, b, off) -> Printf.sprintf "store %d(r%d), r%d" off a b
  | Bnz (r, b) -> Printf.sprintf "bnz r%d, b%d" r b
  | Jmp b -> Printf.sprintf "jmp b%d" b
  | Ret -> "ret"
