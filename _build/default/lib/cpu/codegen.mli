(** Naive-but-credible code generator from {!Cgra_ir.Cdfg.t} to the
    or1k-like ISA — the "compiled with -O3" baseline of Section IV.

    Per basic block: symbol variables live in dedicated registers, node
    results get linear-scan temporaries, address adds with constant
    offsets fold into load/store addressing modes, [Select]/[Min]/[Max]
    expand to compare + conditional move, and immediates fold into
    register-immediate forms where the ISA allows.  When the temporary
    pool runs dry the allocator spills to a scratch region placed after
    the kernel's data (furthest-next-use victim; reloads go through
    reserved scratch registers). *)

type program = {
  cdfg : Cgra_ir.Cdfg.t;
  blocks : Cpu_isa.instr list array;  (** indexed by block id *)
  spill_words : int;  (** scratch memory appended after the data image *)
}

exception Codegen_error of string

val spill_base_reg : int
(** Register the simulator initialises with the spill-area base address. *)

val compile : Cgra_ir.Cdfg.t -> program

val instruction_count : program -> int
(** Static instructions over all blocks. *)

val pp : Format.formatter -> program -> unit
