module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode

type program = {
  cdfg : Cgra_ir.Cdfg.t;
  blocks : Cpu_isa.instr list array;
  spill_words : int;
}

exception Codegen_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* Register map: r0 = 0; r1..r_nsyms = symbol variables; r28 = spill base
   pointer (set up by the simulator); r29..r31 = scratch for immediates and
   spill reloads; the rest are allocatable temporaries. *)
let spill_base_reg = 28
let scratch = [| 29; 30; 31 |]

let sym_reg s = 1 + s

type loc = Lreg of int | Lslot of int

let imm_foldable = function
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Shl | Opcode.Shrl
  | Opcode.Shra | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Lt | Opcode.Le
  | Opcode.Eq | Opcode.Ne | Opcode.Gt | Opcode.Ge -> true
  | Opcode.Min | Opcode.Max | Opcode.Select | Opcode.Load | Opcode.Store ->
    false

(* Addressing-mode selection: a single-use [Add (x, Imm k)] feeding a
   memory operation folds into register+offset form. *)
type fold = { base : Cdfg.operand; offset : int }

let fold_info (b : Cdfg.block) =
  let n = Array.length b.Cdfg.nodes in
  let skip = Array.make n false in
  let fold_of = Array.make n None in
  let addr_fold j =
    match b.Cdfg.nodes.(j) with
    | { Cdfg.opcode = Opcode.Add; operands = [ x; Cdfg.Imm k ]; _ }
    | { Cdfg.opcode = Opcode.Add; operands = [ Cdfg.Imm k; x ]; _ }
      when Cdfg.uses_of_node b j = 1 ->
      Some (j, { base = x; offset = k })
    | _ -> None
  in
  Array.iteri
    (fun i nd ->
      match nd.Cdfg.opcode, nd.Cdfg.operands with
      | Opcode.Load, [ Cdfg.Node j ] -> (
        match addr_fold j with
        | Some (j, f) ->
          skip.(j) <- true;
          fold_of.(i) <- Some f
        | None -> ())
      | Opcode.Store, [ Cdfg.Node j; _ ] -> (
        match addr_fold j with
        | Some (j, f) ->
          skip.(j) <- true;
          fold_of.(i) <- Some f
        | None -> ())
      | _, _ -> ())
    b.Cdfg.nodes;
  (skip, fold_of)

(* Last use index of each node: by later nodes (through folds), by
   live-outs and the branch condition (index [n]). *)
let last_uses (b : Cdfg.block) skip fold_of =
  let n = Array.length b.Cdfg.nodes in
  let last = Array.make n (-1) in
  let use at = function
    | Cdfg.Node j -> if at > last.(j) then last.(j) <- at
    | Cdfg.Sym _ | Cdfg.Imm _ -> ()
  in
  Array.iteri
    (fun i nd ->
      if not skip.(i) then begin
        (match fold_of.(i), nd.Cdfg.opcode, nd.Cdfg.operands with
         | Some f, Opcode.Load, _ -> use i f.base
         | Some f, Opcode.Store, [ _; v ] ->
           use i f.base;
           use i v
         | Some _, _, _ -> error "fold on a non-memory node"
         | None, _, _ -> List.iter (use i) nd.Cdfg.operands)
      end)
    b.Cdfg.nodes;
  List.iter (fun (_, op) -> use n op) b.Cdfg.live_out;
  (match b.Cdfg.terminator with
   | Cdfg.Branch (cond, _, _) -> use n cond
   | Cdfg.Jump _ | Cdfg.Return -> ());
  last

(* Same reader-before-writer ordering as the mapper's finaliser. *)
let order_live_outs items =
  let other_reader_of s (s_written, operand) =
    match operand with
    | Cdfg.Sym s' -> s' = s && s_written <> s
    | Cdfg.Node _ | Cdfg.Imm _ -> false
  in
  let rec go acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let ready, blocked =
        List.partition
          (fun (s, _) -> not (List.exists (other_reader_of s) remaining))
          remaining
      in
      (match ready with
       | [] -> error "live-out dependency cycle (symbol swap) is not supported"
       | _ -> go (List.rev_append ready acc) blocked)
  in
  go [] items

type balloc = {
  mutable code : Cpu_isa.instr list; (* reversed *)
  mutable free : int list;
  mutable active : (int * int) list; (* node, reg *)
  loc : loc option array;
  last : int array;
  mutable next_slot : int;
  mutable max_slot : int;
  mutable scratch_turn : int;
}

let emit a i = a.code <- i :: a.code

let take_scratch a =
  let r = scratch.(a.scratch_turn) in
  a.scratch_turn <- (a.scratch_turn + 1) mod Array.length scratch;
  r

(* Register holding node [j]'s value right now, reloading from the spill
   area if necessary. *)
let node_reg a j =
  match a.loc.(j) with
  | Some (Lreg r) -> r
  | Some (Lslot k) ->
    let r = take_scratch a in
    emit a (Cpu_isa.Load (r, spill_base_reg, k));
    r
  | None -> error "use of node %d before definition" j

let operand_reg a = function
  | Cdfg.Imm 0 -> 0
  | Cdfg.Imm k ->
    let r = take_scratch a in
    emit a (Cpu_isa.Movi (r, k));
    r
  | Cdfg.Sym s -> sym_reg s
  | Cdfg.Node j -> node_reg a j

let spill_slot a =
  let k = a.next_slot in
  a.next_slot <- k + 1;
  if a.next_slot > a.max_slot then a.max_slot <- a.next_slot;
  k

(* Allocate a destination register for node [i], spilling the active value
   with the furthest last use when the pool is dry. *)
let alloc_temp a i =
  let r =
    match a.free with
    | r :: rest ->
      a.free <- rest;
      r
    | [] -> (
      match
        List.sort (fun (x, _) (y, _) -> compare a.last.(y) a.last.(x)) a.active
      with
      | [] -> error "no temporaries and nothing to spill"
      | (victim, r) :: _ ->
        let k = spill_slot a in
        emit a (Cpu_isa.Store (spill_base_reg, r, k));
        a.loc.(victim) <- Some (Lslot k);
        a.active <- List.remove_assoc victim a.active;
        r)
  in
  a.loc.(i) <- Some (Lreg r);
  a.active <- (i, r) :: a.active;
  r

let release_dead a i =
  let dead, alive = List.partition (fun (j, _) -> a.last.(j) <= i) a.active in
  List.iter (fun (_, r) -> a.free <- r :: a.free) dead;
  a.active <- alive

let compile_block (cdfg : Cdfg.t) bi =
  let b = cdfg.Cdfg.blocks.(bi) in
  let nsyms = cdfg.Cdfg.sym_count in
  let first_temp = 1 + nsyms in
  if first_temp >= spill_base_reg then
    error "too many symbol variables for the CPU register file";
  let skip, fold_of = fold_info b in
  let last = last_uses b skip fold_of in
  let a =
    {
      code = [];
      free = List.init (spill_base_reg - first_temp) (fun i -> first_temp + i);
      active = [];
      loc = Array.make (max 1 (Array.length b.Cdfg.nodes)) None;
      last;
      next_slot = 0;
      max_slot = 0;
      scratch_turn = 0;
    }
  in
  let mem_addr i = function
    | [ addr ] | [ addr; _ ] -> (
      match fold_of.(i), addr with
      | Some f, _ -> (operand_reg a f.base, f.offset)
      | None, Cdfg.Imm k -> (0, k)
      | None, (Cdfg.Sym _ | Cdfg.Node _) -> (operand_reg a addr, 0))
    | _ -> error "memory node with wrong arity"
  in
  Array.iteri
    (fun i nd ->
      if not skip.(i) then begin
        a.scratch_turn <- 0;
        (match nd.Cdfg.opcode, nd.Cdfg.operands with
         | Opcode.Load, ops ->
           let base, off = mem_addr i ops in
           let rd = alloc_temp a i in
           emit a (Cpu_isa.Load (rd, base, off))
         | Opcode.Store, ([ _; v ] as ops) ->
           let rv = operand_reg a v in
           let base, off = mem_addr i ops in
           emit a (Cpu_isa.Store (base, rv, off))
         | Opcode.Store, _ -> error "store arity"
         | Opcode.Select, [ c; x; y ] ->
           let rc = operand_reg a c in
           let rx = operand_reg a x in
           let ry = operand_reg a y in
           let rd = alloc_temp a i in
           emit a (Cpu_isa.Cmov (rd, rc, rx, ry))
         | Opcode.Select, _ -> error "select arity"
         | (Opcode.Min | Opcode.Max), [ x; y ] ->
           let rx = operand_reg a x in
           let ry = operand_reg a y in
           let rc = take_scratch a in
           emit a (Cpu_isa.Alu (Opcode.Lt, rc, rx, ry));
           let rd = alloc_temp a i in
           if nd.Cdfg.opcode = Opcode.Min then
             emit a (Cpu_isa.Cmov (rd, rc, rx, ry))
           else emit a (Cpu_isa.Cmov (rd, rc, ry, rx))
         | (Opcode.Min | Opcode.Max), _ -> error "min/max arity"
         | op, [ x; Cdfg.Imm k ] when imm_foldable op ->
           let rx = operand_reg a x in
           let rd = alloc_temp a i in
           emit a (Cpu_isa.Alui (op, rd, rx, k))
         | op, [ Cdfg.Imm k; y ] when imm_foldable op && Opcode.is_commutative op
           ->
           let ry = operand_reg a y in
           let rd = alloc_temp a i in
           emit a (Cpu_isa.Alui (op, rd, ry, k))
         | op, [ x; y ] ->
           let rx = operand_reg a x in
           let ry = operand_reg a y in
           let rd = alloc_temp a i in
           emit a (Cpu_isa.Alu (op, rd, rx, ry))
         | _, _ -> error "unexpected node shape (%s)" (Opcode.to_string nd.Cdfg.opcode));
        release_dead a i
      end)
    b.Cdfg.nodes;
  (* live-outs, reader-before-writer *)
  a.scratch_turn <- 0;
  List.iter
    (fun (s, operand) ->
      match operand with
      | Cdfg.Sym s' when s' = s -> ()
      | Cdfg.Imm k -> emit a (Cpu_isa.Movi (sym_reg s, k))
      | Cdfg.Sym s' -> emit a (Cpu_isa.Mov (sym_reg s, sym_reg s'))
      | Cdfg.Node j -> emit a (Cpu_isa.Mov (sym_reg s, node_reg a j)))
    (order_live_outs b.Cdfg.live_out);
  (match b.Cdfg.terminator with
   | Cdfg.Jump t -> emit a (Cpu_isa.Jmp t)
   | Cdfg.Return -> emit a Cpu_isa.Ret
   | Cdfg.Branch (cond, t, e) ->
     let rc = operand_reg a cond in
     emit a (Cpu_isa.Bnz (rc, t));
     emit a (Cpu_isa.Jmp e));
  (List.rev a.code, a.max_slot)

let compile cdfg =
  (match Cdfg.validate cdfg with
   | Ok () -> ()
   | Error e -> error "invalid CDFG: %s" e);
  let spill = ref 0 in
  let blocks =
    Array.init (Array.length cdfg.Cdfg.blocks) (fun bi ->
        let code, slots = compile_block cdfg bi in
        if slots > !spill then spill := slots;
        code)
  in
  { cdfg; blocks; spill_words = !spill }

let instruction_count p =
  Array.fold_left (fun acc code -> acc + List.length code) 0 p.blocks

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun bi code ->
      Format.fprintf fmt "b%d (%s):@," bi p.cdfg.Cdfg.blocks.(bi).Cdfg.name;
      List.iter
        (fun i -> Format.fprintf fmt "  %s@," (Cpu_isa.to_string i))
        code)
    p.blocks;
  Format.fprintf fmt "spill words: %d@]" p.spill_words
