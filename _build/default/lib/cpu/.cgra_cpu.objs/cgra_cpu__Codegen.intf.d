lib/cpu/codegen.mli: Cgra_ir Cpu_isa Format
