lib/cpu/cpu_sim.mli: Codegen
