lib/cpu/cpu_sim.ml: Array Cgra_ir Codegen Cpu_isa Printf
