lib/cpu/codegen.ml: Array Cgra_ir Cpu_isa Format List Printf
