lib/cpu/cpu_isa.mli: Cgra_ir
