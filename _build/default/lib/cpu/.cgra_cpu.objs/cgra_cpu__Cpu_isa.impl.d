lib/cpu/cpu_isa.ml: Cgra_ir Printf
