(** Functional + cycle-cost simulator for the CPU baseline. *)

type result = {
  cycles : int;
  instructions : int;
  loads : int;
  stores : int;
  muls : int;
  branches : int;
  blocks_executed : int;
}

exception Cpu_error of string

val run : ?max_blocks:int -> Codegen.program -> mem:int array -> result
(** Executes from the entry block until [Ret], mutating [mem].  A spill
    scratch region of [program.spill_words] words is appended internally
    (register [r28] points at it) and discarded afterwards.  Registers
    start at zero, matching the CGRA and the reference interpreter.
    Raises {!Cpu_error} on out-of-bounds accesses or runaway loops. *)
