(** or1k-like scalar RISC target used as the CPU baseline (Section IV).

    A single-issue, in-order 32-bit core: 32 registers with [r0 = 0],
    register-immediate ALU forms, register+offset addressing, a
    conditional move (or1k's [l.cmov]), and compare-and-branch via a
    register truth value.  Branch targets are basic-block ids of the
    source CDFG.

    The cycle costs model a small in-order pipeline at the same clock as
    the CGRA: single-cycle ALU, 3-cycle multiply, 2-cycle load, 3-cycle
    taken branch (refill), 1-cycle fall-through. *)

type reg = int

type instr =
  | Alu of Cgra_ir.Opcode.t * reg * reg * reg  (** rd <- ra op rb *)
  | Alui of Cgra_ir.Opcode.t * reg * reg * int (** rd <- ra op imm *)
  | Movi of reg * int
  | Mov of reg * reg
  | Cmov of reg * reg * reg * reg              (** rd <- rc <> 0 ? ra : rb *)
  | Load of reg * reg * int                    (** rd <- mem\[ra + off\] *)
  | Store of reg * reg * int                   (** mem\[ra + off\] <- rb *)
  | Bnz of reg * int                           (** branch to block if rd <> 0 *)
  | Jmp of int
  | Ret

val cost : instr -> taken:bool -> int
(** Cycles consumed; [taken] matters only for [Bnz]. *)

val to_string : instr -> string

val reg_count : int
(** 32, with register 0 hardwired to zero. *)
