module Opcode = Cgra_ir.Opcode

type result = {
  cycles : int;
  instructions : int;
  loads : int;
  stores : int;
  muls : int;
  branches : int;
  blocks_executed : int;
}

exception Cpu_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Cpu_error s)) fmt

let run ?(max_blocks = 1_000_000) (p : Codegen.program) ~mem =
  let data_words = Array.length mem in
  let full = Array.append mem (Array.make p.Codegen.spill_words 0) in
  let regs = Array.make Cpu_isa.reg_count 0 in
  regs.(Codegen.spill_base_reg) <- data_words;
  let cycles = ref 0
  and instrs = ref 0
  and loads = ref 0
  and stores = ref 0
  and muls = ref 0
  and branches = ref 0
  and blocks = ref 0 in
  let set r v = if r <> 0 then regs.(r) <- Opcode.wrap32 v in
  let mem_check addr =
    if addr < 0 || addr >= Array.length full then
      error "memory access out of bounds: %d" addr
  in
  (* Executes one block; returns the successor or None for Ret. *)
  let exec_block code =
    let rec go = function
      | [] -> error "block fell through without terminator"
      | instr :: rest ->
        incr instrs;
        let taken = ref false in
        let next =
          match instr with
          | Cpu_isa.Alu (op, d, a, b) ->
            if op = Opcode.Mul then incr muls;
            set d (Opcode.eval op [ regs.(a); regs.(b) ]);
            None
          | Cpu_isa.Alui (op, d, a, k) ->
            if op = Opcode.Mul then incr muls;
            set d (Opcode.eval op [ regs.(a); k ]);
            None
          | Cpu_isa.Movi (d, k) ->
            set d k;
            None
          | Cpu_isa.Mov (d, a) ->
            set d regs.(a);
            None
          | Cpu_isa.Cmov (d, c, a, b) ->
            set d (if regs.(c) <> 0 then regs.(a) else regs.(b));
            None
          | Cpu_isa.Load (d, a, off) ->
            incr loads;
            let addr = regs.(a) + off in
            mem_check addr;
            set d full.(addr);
            None
          | Cpu_isa.Store (a, b, off) ->
            incr stores;
            let addr = regs.(a) + off in
            mem_check addr;
            full.(addr) <- regs.(b);
            None
          | Cpu_isa.Bnz (r, target) ->
            incr branches;
            if regs.(r) <> 0 then begin
              taken := true;
              Some (`Goto target)
            end
            else None
          | Cpu_isa.Jmp target ->
            incr branches;
            taken := true;
            Some (`Goto target)
          | Cpu_isa.Ret -> Some `Ret
        in
        cycles := !cycles + Cpu_isa.cost instr ~taken:!taken;
        (match next with
         | None -> go rest
         | Some dest -> dest)
    in
    go code
  in
  let rec run_from bi =
    if !blocks >= max_blocks then error "runaway execution (max_blocks)";
    incr blocks;
    match exec_block p.Codegen.blocks.(bi) with
    | `Goto next -> run_from next
    | `Ret -> ()
  in
  run_from p.Codegen.cdfg.Cgra_ir.Cdfg.entry;
  Array.blit full 0 mem 0 data_words;
  {
    cycles = !cycles;
    instructions = !instrs;
    loads = !loads;
    stores = !stores;
    muls = !muls;
    branches = !branches;
    blocks_executed = !blocks;
  }
