(** Abstract syntax of the kernel language.

    A deliberately small C-like language in which the paper's seven
    signal-processing kernels are written: 32-bit integer scalars (which
    lower to symbol variables), flat arrays in the shared data memory,
    [while] loops, [if]/[else], and a compile-time [unroll] loop that the
    lowering expands — standing in for the loop unrolling the original
    LLVM-based flow performs. *)

type binop =
  | Badd | Bsub | Bmul
  | Bshl | Bshrl | Bshra
  | Band | Bor | Bxor
  | Blt | Ble | Beq | Bne | Bgt | Bge

type expr =
  | Int of int
  | Var of string
  | Index of string * expr          (** array element read *)
  | Bin of binop * expr * expr
  | Call of string * expr list      (** intrinsics: min, max, select, abs *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr   (** array[index] = value *)
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
      (** [For (init, cond, step, body)]: C-style sugar the lowering
          desugars to [init; while (cond) { body; step; }] *)
  | If of expr * stmt list * stmt list
  | Unroll of string * int * int * stmt list
      (** [Unroll (v, lo, hi, body)]: body repeated for v = lo .. hi-1 with
          [v] bound as a compile-time constant *)

type decl =
  | Dvar of string list             (** scalar symbol variables *)
  | Darr of string * int            (** array name @ base address *)
  | Dconst of string * expr         (** compile-time constant *)

type kernel = { name : string; decls : decl list; body : stmt list }

type pos = { line : int; col : int }

exception Syntax_error of pos * string

val binop_to_string : binop -> string
