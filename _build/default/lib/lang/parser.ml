let error lx msg = raise (Ast.Syntax_error (Lexer.pos lx, msg))

let expect_punct lx p =
  match Lexer.next lx with
  | Lexer.Tpunct q when q = p -> ()
  | tok ->
    error lx
      (Printf.sprintf "expected %S, got %s" p
         (match tok with
          | Lexer.Tint n -> string_of_int n
          | Lexer.Tident s | Lexer.Tkw s -> s
          | Lexer.Tpunct s -> Printf.sprintf "%S" s
          | Lexer.Teof -> "end of input"))

let expect_kw lx k =
  match Lexer.next lx with
  | Lexer.Tkw q when q = k -> ()
  | _ -> error lx (Printf.sprintf "expected keyword %S" k)

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.Tident s -> s
  | _ -> error lx "expected identifier"

let expect_int lx =
  match Lexer.next lx with
  | Lexer.Tint n -> n
  | _ -> error lx "expected integer literal"

let binop_of_punct = function
  | "+" -> Some Ast.Badd
  | "-" -> Some Ast.Bsub
  | "*" -> Some Ast.Bmul
  | "<<" -> Some Ast.Bshl
  | ">>>" -> Some Ast.Bshrl
  | ">>" -> Some Ast.Bshra
  | "&" -> Some Ast.Band
  | "|" -> Some Ast.Bor
  | "^" -> Some Ast.Bxor
  | "<" -> Some Ast.Blt
  | "<=" -> Some Ast.Ble
  | "==" -> Some Ast.Beq
  | "!=" -> Some Ast.Bne
  | ">" -> Some Ast.Bgt
  | ">=" -> Some Ast.Bge
  | _ -> None

(* Larger binds tighter. *)
let precedence = function
  | Ast.Bmul -> 7
  | Ast.Badd | Ast.Bsub -> 6
  | Ast.Bshl | Ast.Bshrl | Ast.Bshra -> 5
  | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge -> 4
  | Ast.Beq | Ast.Bne -> 3
  | Ast.Band -> 2
  | Ast.Bxor -> 1
  | Ast.Bor -> 0

let rec parse_primary lx =
  match Lexer.next lx with
  | Lexer.Tint n -> Ast.Int n
  | Lexer.Tpunct "(" ->
    let e = parse_expr lx in
    expect_punct lx ")";
    e
  | Lexer.Tpunct "-" ->
    let e = parse_primary lx in
    Ast.Bin (Ast.Bsub, Ast.Int 0, e)
  | Lexer.Tident name -> (
    match Lexer.peek lx with
    | Lexer.Tpunct "[" ->
      ignore (Lexer.next lx);
      let idx = parse_expr lx in
      expect_punct lx "]";
      Ast.Index (name, idx)
    | Lexer.Tpunct "(" ->
      ignore (Lexer.next lx);
      let rec args acc =
        let e = parse_expr lx in
        match Lexer.next lx with
        | Lexer.Tpunct "," -> args (e :: acc)
        | Lexer.Tpunct ")" -> List.rev (e :: acc)
        | _ -> error lx "expected ',' or ')' in call"
      in
      Ast.Call (name, args [])
    | _ -> Ast.Var name)
  | _ -> error lx "expected expression"

and parse_expr ?(min_prec = 0) lx =
  let lhs = parse_primary lx in
  let rec loop lhs =
    match Lexer.peek lx with
    | Lexer.Tpunct p -> (
      match binop_of_punct p with
      | Some op when precedence op >= min_prec ->
        ignore (Lexer.next lx);
        let rhs = parse_expr ~min_prec:(precedence op + 1) lx in
        loop (Ast.Bin (op, lhs, rhs))
      | Some _ | None -> lhs)
    | Lexer.Tint _ | Lexer.Tident _ | Lexer.Tkw _ | Lexer.Teof -> lhs
  in
  loop lhs

let rec parse_stmt lx =
  match Lexer.peek lx with
  | Lexer.Tkw "while" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr lx in
    expect_punct lx ")";
    let body = parse_block lx in
    Ast.While (cond, body)
  | Lexer.Tkw "if" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr lx in
    expect_punct lx ")";
    let then_ = parse_block lx in
    let else_ =
      match Lexer.peek lx with
      | Lexer.Tkw "else" ->
        ignore (Lexer.next lx);
        parse_block lx
      | _ -> []
    in
    Ast.If (cond, then_, else_)
  | Lexer.Tkw "for" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let init_name = expect_ident lx in
    expect_punct lx "=";
    let init_e = parse_expr lx in
    expect_punct lx ";";
    let cond = parse_expr lx in
    expect_punct lx ";";
    let step_name = expect_ident lx in
    expect_punct lx "=";
    let step_e = parse_expr lx in
    expect_punct lx ")";
    let body = parse_block lx in
    Ast.For
      (Ast.Assign (init_name, init_e), cond, Ast.Assign (step_name, step_e), body)
  | Lexer.Tkw "unroll" ->
    ignore (Lexer.next lx);
    let v = expect_ident lx in
    expect_punct lx "=";
    let lo = expect_int lx in
    expect_kw lx "to";
    let hi = expect_int lx in
    let body = parse_block lx in
    Ast.Unroll (v, lo, hi, body)
  | _ ->
    let name = expect_ident lx in
    (match Lexer.next lx with
     | Lexer.Tpunct "=" ->
       let e = parse_expr lx in
       expect_punct lx ";";
       Ast.Assign (name, e)
     | Lexer.Tpunct "[" ->
       let idx = parse_expr lx in
       expect_punct lx "]";
       expect_punct lx "=";
       let e = parse_expr lx in
       expect_punct lx ";";
       Ast.Store (name, idx, e)
     | _ -> error lx "expected '=' or '[' after identifier")

and parse_block lx =
  expect_punct lx "{";
  let rec stmts acc =
    match Lexer.peek lx with
    | Lexer.Tpunct "}" ->
      ignore (Lexer.next lx);
      List.rev acc
    | _ -> stmts (parse_stmt lx :: acc)
  in
  stmts []

let parse_decl lx =
  match Lexer.next lx with
  | Lexer.Tkw "var" ->
    let rec names acc =
      let n = expect_ident lx in
      match Lexer.next lx with
      | Lexer.Tpunct "," -> names (n :: acc)
      | Lexer.Tpunct ";" -> List.rev (n :: acc)
      | _ -> error lx "expected ',' or ';' in var declaration"
    in
    Ast.Dvar (names [])
  | Lexer.Tkw "arr" ->
    let n = expect_ident lx in
    expect_punct lx "@";
    let base = expect_int lx in
    expect_punct lx ";";
    Ast.Darr (n, base)
  | Lexer.Tkw "const" ->
    let n = expect_ident lx in
    expect_punct lx "=";
    let e = parse_expr lx in
    expect_punct lx ";";
    Ast.Dconst (n, e)
  | _ -> error lx "expected declaration"

let parse src =
  let lx = Lexer.of_string src in
  expect_kw lx "kernel";
  let name = expect_ident lx in
  expect_punct lx "{";
  let rec decls acc =
    match Lexer.peek lx with
    | Lexer.Tkw ("var" | "arr" | "const") -> decls (parse_decl lx :: acc)
    | _ -> List.rev acc
  in
  let decls = decls [] in
  let rec stmts acc =
    match Lexer.peek lx with
    | Lexer.Tpunct "}" ->
      ignore (Lexer.next lx);
      List.rev acc
    | _ -> stmts (parse_stmt lx :: acc)
  in
  let body = stmts [] in
  (match Lexer.next lx with
   | Lexer.Teof -> ()
   | _ -> error lx "trailing input after kernel body");
  { Ast.name; decls; body }

let parse_result src =
  match parse src with
  | k -> Ok k
  | exception Ast.Syntax_error (p, msg) ->
    Error (Printf.sprintf "line %d, col %d: %s" p.Ast.line p.Ast.col msg)
