(** Recursive-descent parser for the kernel language.

    Grammar (C-like precedence, tightest first: [*] ; [+ -] ;
    [<< >> >>>] ; [< <= > >=] ; [== !=] ; [&] ; [^] ; [|]):

    {v
    kernel   ::= "kernel" ident "{" decl* stmt* "}"
    decl     ::= "var" ident ("," ident)* ";"
               | "arr" ident "@" int ";"
               | "const" ident "=" expr ";"
    stmt     ::= ident "=" expr ";"
               | ident "[" expr "]" "=" expr ";"
               | "while" "(" expr ")" block
               | "for" "(" ident "=" expr ";" expr ";" ident "=" expr ")" block
               | "if" "(" expr ")" block ("else" block)?
               | "unroll" ident "=" expr "to" expr block
    block    ::= "{" stmt* "}"
    primary  ::= int | ident | ident "[" expr "]"
               | ident "(" expr ("," expr)* ")" | "(" expr ")" | "-" primary
    v}

    [unroll] bounds must fold to constants at parse time only if literal;
    otherwise they are checked during lowering. *)

val parse : string -> Ast.kernel
(** Raises {!Ast.Syntax_error} with position on malformed input. *)

val parse_result : string -> (Ast.kernel, string) result
(** [parse] with the error rendered as ["line L, col C: message"]. *)
