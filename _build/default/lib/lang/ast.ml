type binop =
  | Badd | Bsub | Bmul
  | Bshl | Bshrl | Bshra
  | Band | Bor | Bxor
  | Blt | Ble | Beq | Bne | Bgt | Bge

type expr =
  | Int of int
  | Var of string
  | Index of string * expr
  | Bin of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | If of expr * stmt list * stmt list
  | Unroll of string * int * int * stmt list

type decl =
  | Dvar of string list
  | Darr of string * int
  | Dconst of string * expr

type kernel = { name : string; decls : decl list; body : stmt list }

type pos = { line : int; col : int }

exception Syntax_error of pos * string

let binop_to_string = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bshl -> "<<"
  | Bshrl -> ">>>"
  | Bshra -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Blt -> "<"
  | Ble -> "<="
  | Beq -> "=="
  | Bne -> "!="
  | Bgt -> ">"
  | Bge -> ">="
