(** One-call frontend: kernel-language source to validated CDFG. *)

val compile : ?simplify_cfg:bool -> string -> (Cgra_ir.Cdfg.t, string) result
(** Parse, lower, clean up and validate.  [simplify_cfg] (default false)
    additionally short-circuits trivial forwarding blocks — each block
    costs a controller transition cycle on the CGRA.  The error string
    carries the source position for syntax errors and a description for
    semantic errors. *)

val compile_exn : string -> Cgra_ir.Cdfg.t
(** Like {!compile} but raises [Failure]. *)
