(** Hand-written lexer for the kernel language. *)

type token =
  | Tint of int
  | Tident of string
  | Tkw of string      (** kernel, var, arr, const, while, for, if, else, unroll, to *)
  | Tpunct of string   (** one of ( ) { } [ ] ; , @ = and the binary operators *)
  | Teof

type t
(** Token stream with one-token lookahead. *)

val of_string : string -> t

val peek : t -> token
val pos : t -> Ast.pos
(** Position of the {e next} token, for error reporting. *)

val next : t -> token
(** Consumes and returns the next token.  Raises {!Ast.Syntax_error} on an
    invalid character or a malformed literal. *)

val keywords : string list
