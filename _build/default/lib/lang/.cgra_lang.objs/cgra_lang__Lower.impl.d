lib/lang/lower.ml: Ast Cgra_ir Hashtbl List Printf
