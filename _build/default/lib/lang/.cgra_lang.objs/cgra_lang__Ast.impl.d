lib/lang/ast.ml:
