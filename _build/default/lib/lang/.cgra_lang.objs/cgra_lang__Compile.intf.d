lib/lang/compile.mli: Cgra_ir
