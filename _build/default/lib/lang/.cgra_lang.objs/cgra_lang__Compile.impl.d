lib/lang/compile.ml: Cgra_ir Lower Parser
