lib/lang/lower.mli: Ast Cgra_ir
