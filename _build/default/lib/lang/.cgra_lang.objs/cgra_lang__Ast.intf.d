lib/lang/ast.mli:
