let compile ?(simplify_cfg = false) src =
  match Parser.parse_result src with
  | Error e -> Error ("syntax error: " ^ e)
  | Ok ast -> (
    match Lower.lower ast with
    | cdfg -> (
      let cdfg = Cgra_ir.Opt.optimize cdfg in
      let cdfg = if simplify_cfg then Cgra_ir.Opt.simplify_cfg cdfg else cdfg in
      match Cgra_ir.Cdfg.validate cdfg with
      | Ok () -> Ok cdfg
      | Error e -> Error ("lowering produced an invalid CDFG: " ^ e))
    | exception Lower.Lower_error e -> Error ("semantic error: " ^ e))

let compile_exn src =
  match compile src with Ok c -> c | Error e -> failwith e
