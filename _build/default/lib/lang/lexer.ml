type token =
  | Tint of int
  | Tident of string
  | Tkw of string
  | Tpunct of string
  | Teof

let keywords = [ "kernel"; "var"; "arr"; "const"; "while"; "for"; "if"; "else"; "unroll"; "to" ]

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
  mutable ahead : (token * Ast.pos) option;
}

let of_string src = { src; off = 0; line = 1; col = 1; ahead = None }

let error t msg = raise (Ast.Syntax_error ({ Ast.line = t.line; col = t.col }, msg))

let at_end t = t.off >= String.length t.src

let cur t = t.src.[t.off]

let advance t =
  if cur t = '\n' then begin
    t.line <- t.line + 1;
    t.col <- 1
  end
  else t.col <- t.col + 1;
  t.off <- t.off + 1

let rec skip_space t =
  if at_end t then ()
  else
    match cur t with
    | ' ' | '\t' | '\r' | '\n' ->
      advance t;
      skip_space t
    | '#' ->
      while (not (at_end t)) && cur t <> '\n' do
        advance t
      done;
      skip_space t
    | _ -> ()

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let lex_number t =
  let start = t.off in
  while (not (at_end t)) && is_digit (cur t) do
    advance t
  done;
  let s = String.sub t.src start (t.off - start) in
  match int_of_string_opt s with
  | Some n -> Tint n
  | None -> error t ("invalid integer literal " ^ s)

let lex_word t =
  let start = t.off in
  while (not (at_end t)) && (is_alpha (cur t) || is_digit (cur t)) do
    advance t
  done;
  let s = String.sub t.src start (t.off - start) in
  if List.mem s keywords then Tkw s else Tident s

(* Multi-character operators, longest first. *)
let puncts =
  [ ">>>"; "<<"; ">>"; "<="; ">="; "=="; "!=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "@"; "=";
    "+"; "-"; "*"; "&"; "|"; "^"; "<"; ">" ]

let lex_punct t =
  let rest = String.length t.src - t.off in
  let matches p =
    let n = String.length p in
    n <= rest && String.sub t.src t.off n = p
  in
  match List.find_opt matches puncts with
  | Some p ->
    String.iter (fun _ -> advance t) p;
    Tpunct p
  | None -> error t (Printf.sprintf "unexpected character %C" (cur t))

let raw_next t =
  skip_space t;
  let pos = { Ast.line = t.line; col = t.col } in
  let tok =
    if at_end t then Teof
    else if is_digit (cur t) then lex_number t
    else if is_alpha (cur t) then lex_word t
    else lex_punct t
  in
  (tok, pos)

let fill t = if t.ahead = None then t.ahead <- Some (raw_next t)

let peek t =
  fill t;
  match t.ahead with Some (tok, _) -> tok | None -> assert false

let pos t =
  fill t;
  match t.ahead with Some (_, p) -> p | None -> assert false

let next t =
  fill t;
  match t.ahead with
  | Some (tok, _) ->
    t.ahead <- None;
    tok
  | None -> assert false
