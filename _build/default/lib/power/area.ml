(* Constants in um^2, 28nm-class.  Calibrated (see EXPERIMENTS.md) so that
   area(HOM64 system) / area(CPU system) ~ 2.0 and HET1/HET2 ~ 1.5-1.6,
   matching Fig 11's reported ratios. *)

type component = { label : string; um2 : float }

let alu_um2 = 900.0
let rf_um2 = 700.0
let crf_um2 = 500.0
let decode_ctrl_um2 = 600.0
let lsu_um2 = 350.0
let cm_word_um2 = 80.0

let data_memory_um2 = 52_000.0 (* 32 kB *)
let interconnect_um2 = 6_000.0
let global_ctrl_um2 = 2_500.0
let global_cm_um2 = 4_300.0

let cpu_core_um2 = 34_000.0
let cpu_imem_um2 = 7_360.0 (* 4 kB *)
let cpu_icache_um2 = 2_600.0

let tile_um2 (t : Cgra_arch.Cgra.tile) =
  alu_um2 +. rf_um2 +. crf_um2 +. decode_ctrl_um2
  +. (if t.Cgra_arch.Cgra.has_lsu then lsu_um2 else 0.0)
  +. (float_of_int t.cm_words *. cm_word_um2)

let cgra_breakdown (c : Cgra_arch.Cgra.t) =
  let tiles = Array.to_list c.Cgra_arch.Cgra.tiles in
  let n = float_of_int (List.length tiles) in
  let lsus = List.length (List.filter (fun t -> t.Cgra_arch.Cgra.has_lsu) tiles) in
  let cm_words =
    List.fold_left (fun acc t -> acc + t.Cgra_arch.Cgra.cm_words) 0 tiles
  in
  [ { label = "PE logic (ALU+RF+CRF+ctrl)";
      um2 = n *. (alu_um2 +. rf_um2 +. crf_um2 +. decode_ctrl_um2) };
    { label = "Load-store units"; um2 = float_of_int lsus *. lsu_um2 };
    { label = "Context memories"; um2 = float_of_int cm_words *. cm_word_um2 };
    { label = "Interconnect + controller";
      um2 = interconnect_um2 +. global_ctrl_um2 +. global_cm_um2 };
    { label = "Data memory"; um2 = data_memory_um2 } ]

let cpu_breakdown () =
  [ { label = "Core"; um2 = cpu_core_um2 };
    { label = "Instruction cache"; um2 = cpu_icache_um2 };
    { label = "Context/instruction memory"; um2 = cpu_imem_um2 };
    { label = "Data memory"; um2 = data_memory_um2 } ]

let total components = List.fold_left (fun acc c -> acc +. c.um2) 0.0 components
