lib/power/area.ml: Array Cgra_arch List
