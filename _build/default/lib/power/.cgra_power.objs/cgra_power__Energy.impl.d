lib/power/energy.ml: Area Array Cgra_arch Cgra_cpu Cgra_sim
