lib/power/area.mli: Cgra_arch
