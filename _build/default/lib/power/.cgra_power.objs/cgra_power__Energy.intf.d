lib/power/energy.mli: Cgra_arch Cgra_cpu Cgra_sim
