(** Analytical area model (Fig 11).

    The paper synthesised the designs with Synopsys DC on ST 28nm UTBB
    FD-SOI; without a silicon flow this module substitutes per-component
    area constants (in um^2) calibrated so the paper's reported *ratios*
    hold: a HOM64 CGRA system is about twice the CPU system's area and the
    heterogeneous configurations about 1.5x, with the context memories the
    dominant reconfigurable-fabric cost.  Both systems include the same
    32 kB data memory, as in the paper's comparison setup. *)

type component = { label : string; um2 : float }

val cgra_breakdown : Cgra_arch.Cgra.t -> component list
(** PE logic, load-store units, context memories, interconnect + global
    controller, data memory. *)

val cpu_breakdown : unit -> component list
(** Core, instruction cache, context/instruction memory, data memory —
    the equivalence set of Section IV-C. *)

val total : component list -> float

val tile_um2 : Cgra_arch.Cgra.tile -> float
(** Area of one tile including its context memory — the leakage model
    scales with it. *)

val cm_word_um2 : float
(** Context-memory area per instruction word. *)
