lib/kernels/non_sep_filter.ml: Array Inputs Kernel_def
