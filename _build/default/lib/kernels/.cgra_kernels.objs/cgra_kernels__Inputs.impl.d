lib/kernels/inputs.ml: Array Cgra_util
