lib/kernels/fir.mli: Kernel_def
