lib/kernels/convolution.mli: Kernel_def
