lib/kernels/matm.mli: Kernel_def
