lib/kernels/fft.mli: Kernel_def
