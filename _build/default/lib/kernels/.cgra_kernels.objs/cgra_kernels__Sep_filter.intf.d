lib/kernels/sep_filter.mli: Kernel_def
