lib/kernels/kernels.mli: Kernel_def
