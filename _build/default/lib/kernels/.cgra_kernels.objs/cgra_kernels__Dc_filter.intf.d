lib/kernels/dc_filter.mli: Kernel_def
