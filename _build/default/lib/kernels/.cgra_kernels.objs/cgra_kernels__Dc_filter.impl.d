lib/kernels/dc_filter.ml: Array Inputs Kernel_def
