lib/kernels/fir.ml: Array Inputs Kernel_def
