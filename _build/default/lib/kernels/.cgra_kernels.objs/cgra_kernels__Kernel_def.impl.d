lib/kernels/kernel_def.ml: Array Cgra_ir Cgra_lang Hashtbl
