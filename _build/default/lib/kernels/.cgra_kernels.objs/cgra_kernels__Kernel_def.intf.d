lib/kernels/kernel_def.mli: Cgra_ir
