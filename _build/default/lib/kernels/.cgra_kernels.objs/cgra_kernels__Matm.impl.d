lib/kernels/matm.ml: Array Inputs Kernel_def
