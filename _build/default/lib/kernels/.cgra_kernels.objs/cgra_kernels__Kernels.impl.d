lib/kernels/kernels.ml: Convolution Dc_filter Fft Fir Kernel_def List Matm Non_sep_filter Sep_filter
