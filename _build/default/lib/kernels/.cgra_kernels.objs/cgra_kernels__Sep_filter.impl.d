lib/kernels/sep_filter.ml: Array Inputs Kernel_def
