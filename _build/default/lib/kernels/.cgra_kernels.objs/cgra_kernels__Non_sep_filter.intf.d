lib/kernels/non_sep_filter.mli: Kernel_def
