lib/kernels/convolution.ml: Array Inputs Kernel_def
