lib/kernels/inputs.mli:
