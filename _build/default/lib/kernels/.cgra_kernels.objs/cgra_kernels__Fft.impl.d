lib/kernels/fft.ml: Array Float Inputs Kernel_def
