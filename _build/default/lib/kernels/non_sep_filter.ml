(* Layout: img @ 0 (13x12 = 156), coef @ 156 (25), out @ 184 (8x8 = 64).
   Two output rows per iteration over a shared six-row window, columns
   pairwise unrolled — the unrolling depth the original flow would pick.
   The resulting per-block instruction load is what keeps this kernel out
   of the small context-memory configurations for the non-aware flows
   (its behaviour in the paper's Figs 6-7). *)

let source =
  {|
kernel non_sep_filter {
  const w = 12;
  const ow = 8;
  arr img @ 0;
  arr coef @ 156;
  arr out @ 184;
  var i, j, p, acc;
  i = 0;
  while (i < ow) {
    j = 0;
    while (j < ow) {
      p = i * w + j;
      unroll di2 = 0 to 2 {
        unroll dj = 0 to 2 {
          acc = 0;
          unroll di = 0 to 5 {
            acc = acc + ((coef[5 * di] * img[p + w * (di + di2) + dj]
                        + coef[5 * di + 1] * img[p + w * (di + di2) + dj + 1])
                       + (coef[5 * di + 2] * img[p + w * (di + di2) + dj + 2]
                        + coef[5 * di + 3] * img[p + w * (di + di2) + dj + 3])
                       + coef[5 * di + 4] * img[p + w * (di + di2) + dj + 4]);
          }
          out[(i + di2) * ow + j + dj] = acc >> 5;
        }
      }
      j = j + 2;
    }
    i = i + 2;
  }
}
|}

let init_mem mem =
  Inputs.fill_pos mem ~off:0 ~len:156 ~seed:501 ~range:255;
  Inputs.fill mem ~off:156 ~len:25 ~seed:502 ~range:7

let golden mem0 =
  let mem = Array.copy mem0 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      let acc = ref 0 in
      for di = 0 to 4 do
        for dj = 0 to 4 do
          acc := !acc + (mem.(156 + (5 * di) + dj) * mem.(((i + di) * 12) + j + dj))
        done
      done;
      mem.(184 + (i * 8) + j) <- !acc asr 5
    done
  done;
  mem

let kernel =
  {
    Kernel_def.name = "NonSepFilter";
    slug = "non_sep_filter";
    description =
      "non-separable 5x5 filter, 12-wide image, 2x2 output tile per iteration";
    source;
    mem_words = 248;
    init_mem;
    golden;
  }
