let all =
  [ Fir.kernel;
    Matm.kernel;
    Convolution.kernel;
    Sep_filter.kernel;
    Non_sep_filter.kernel;
    Fft.kernel;
    Dc_filter.kernel ]

let by_slug slug = List.find_opt (fun k -> k.Kernel_def.slug = slug) all

let by_name name = List.find_opt (fun k -> k.Kernel_def.name = name) all

let slugs = List.map (fun k -> k.Kernel_def.slug) all
