(** Registry of the seven paper kernels (Section IV, Table II order). *)

val all : Kernel_def.t list
(** FIR, MatM, Convolution, SepFilter, NonSepFilter, FFT, DC Filter. *)

val by_slug : string -> Kernel_def.t option
val by_name : string -> Kernel_def.t option
val slugs : string list
