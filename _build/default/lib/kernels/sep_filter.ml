(* Layout: img @ 0 (16x16 = 256), coef @ 256 (5), tmp @ 272 (16x12 = 192),
   out @ 464 (12x12 = 144).  Horizontal pass then vertical pass, as a
   separable filter is actually computed. *)

let source =
  {|
kernel sep_filter {
  const w = 16;
  const ow = 12;
  arr img @ 0;
  arr coef @ 256;
  arr tmp @ 272;
  arr out @ 464;
  var r, c, p;
  r = 0;
  while (r < w) {
    c = 0;
    while (c < ow) {
      p = r * w + c;
      tmp[r * ow + c] =
        ((coef[0] * img[p] + coef[1] * img[p + 1])
       + (coef[2] * img[p + 2] + coef[3] * img[p + 3])
       + coef[4] * img[p + 4]) >> 4;
      c = c + 1;
    }
    r = r + 1;
  }
  r = 0;
  while (r < ow) {
    c = 0;
    while (c < ow) {
      p = r * ow + c;
      out[p] =
        ((coef[0] * tmp[p] + coef[1] * tmp[p + ow])
       + (coef[2] * tmp[p + 2 * ow] + coef[3] * tmp[p + 3 * ow])
       + coef[4] * tmp[p + 4 * ow]) >> 4;
      c = c + 1;
    }
    r = r + 1;
  }
}
|}

let init_mem mem =
  Inputs.fill_pos mem ~off:0 ~len:256 ~seed:401 ~range:255;
  Inputs.fill mem ~off:256 ~len:5 ~seed:402 ~range:15

let golden mem0 =
  let mem = Array.copy mem0 in
  let coef t = mem.(256 + t) in
  for r = 0 to 15 do
    for c = 0 to 11 do
      let acc = ref 0 in
      for t = 0 to 4 do
        acc := !acc + (coef t * mem.((r * 16) + c + t))
      done;
      mem.(272 + (r * 12) + c) <- !acc asr 4
    done
  done;
  for r = 0 to 11 do
    for c = 0 to 11 do
      let acc = ref 0 in
      for t = 0 to 4 do
        acc := !acc + (coef t * mem.(272 + ((r + t) * 12) + c))
      done;
      mem.(464 + (r * 12) + c) <- !acc asr 4
    done
  done;
  mem

let kernel =
  {
    Kernel_def.name = "SepFilter";
    slug = "sep_filter";
    description = "separable 5-tap filter, 16x16 image, two passes";
    source;
    mem_words = 640;
    init_mem;
    golden;
  }
