let fill mem ~off ~len ~seed ~range =
  let rng = Cgra_util.Rng.create seed in
  for i = off to off + len - 1 do
    mem.(i) <- Cgra_util.Rng.int rng ((2 * range) + 1) - range
  done

let fill_pos mem ~off ~len ~seed ~range =
  let rng = Cgra_util.Rng.create seed in
  for i = off to off + len - 1 do
    mem.(i) <- Cgra_util.Rng.int rng (range + 1)
  done
