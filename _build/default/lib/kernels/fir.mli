(** 8-tap FIR filter over 32 samples (tree-reassociated accumulation). *)

val kernel : Kernel_def.t
