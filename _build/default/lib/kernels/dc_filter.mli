(** DC-blocking IIR filter over 64 samples. *)

val kernel : Kernel_def.t
