(* Layout: x @ 0 (32 + 8 samples), h @ 64 (8 taps), y @ 96 (32 outputs). *)

let source =
  {|
kernel fir {
  const n = 32;
  arr x @ 0;
  arr h @ 64;
  arr y @ 96;
  var i;
  i = 0;
  while (i < n) {
    y[i] = (((h[0] * x[i]     + h[1] * x[i + 1])
           + (h[2] * x[i + 2] + h[3] * x[i + 3]))
          + ((h[4] * x[i + 4] + h[5] * x[i + 5])
           + (h[6] * x[i + 6] + h[7] * x[i + 7]))) >> 4;
    i = i + 1;
  }
}
|}

let init_mem mem =
  Inputs.fill mem ~off:0 ~len:40 ~seed:101 ~range:127;
  Inputs.fill mem ~off:64 ~len:8 ~seed:102 ~range:15

let golden mem0 =
  let mem = Array.copy mem0 in
  for i = 0 to 31 do
    let acc = ref 0 in
    for t = 0 to 7 do
      acc := !acc + (mem.(64 + t) * mem.(i + t))
    done;
    mem.(96 + i) <- !acc asr 4
  done;
  mem

let kernel =
  {
    Kernel_def.name = "FIR";
    slug = "fir";
    description = "8-tap FIR filter, 32 samples, tree accumulation";
    source;
    mem_words = 160;
    init_mem;
    golden;
  }
