(** Separable 5-tap 2D filter on a 16x16 image (two passes). *)

val kernel : Kernel_def.t
