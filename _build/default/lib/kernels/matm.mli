(** 8x8 integer matrix multiplication, inner product fully unrolled. *)

val kernel : Kernel_def.t
