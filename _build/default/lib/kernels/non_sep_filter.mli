(** Non-separable 5x5 filter on a 12x12 image — the largest kernel body. *)

val kernel : Kernel_def.t
