(** 3x3 convolution over a 12x12 image (10x10 valid output). *)

val kernel : Kernel_def.t
