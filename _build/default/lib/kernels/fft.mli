(** 16-point radix-2 decimation-in-time FFT, Q8 fixed point. *)

val kernel : Kernel_def.t
