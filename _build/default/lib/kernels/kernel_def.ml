type t = {
  name : string;
  slug : string;
  description : string;
  source : string;
  mem_words : int;
  init_mem : int array -> unit;
  golden : int array -> int array;
}

let cache : (string, Cgra_ir.Cdfg.t) Hashtbl.t = Hashtbl.create 8

let cdfg k =
  match Hashtbl.find_opt cache k.slug with
  | Some c -> c
  | None ->
    let c = Cgra_lang.Compile.compile_exn k.source in
    Hashtbl.add cache k.slug c;
    c

let fresh_mem k =
  let mem = Array.make k.mem_words 0 in
  k.init_mem mem;
  mem

let run_golden k = k.golden (fresh_mem k)
