(* Layout: a @ 0 (81), b @ 81 (81), c @ 162 (81); row-major 9x9.
   The inner product and the column loop are fully unrolled (one output row
   per block iteration), as the original flow's unrolling produces — this
   loads the load-store tiles heavily enough that the kernel cannot fit
   32-word context memories (its behaviour in the paper's Figs 6-7) while
   the basic mapping still fits HOM64. *)

let n = 9

let source =
  {|
kernel matm {
  const n = 9;
  arr a @ 0;
  arr b @ 81;
  arr c @ 162;
  var i, row;
  i = 0;
  while (i < n) {
    row = i * 9;
    unroll j = 0 to 9 {
      c[row + j] = (((a[row] * b[j]          + a[row + 1] * b[j + 9])
                   + (a[row + 2] * b[j + 18] + a[row + 3] * b[j + 27]))
                  + ((a[row + 4] * b[j + 36] + a[row + 5] * b[j + 45])
                   + (a[row + 6] * b[j + 54] + a[row + 7] * b[j + 63])))
                 + a[row + 8] * b[j + 72];
    }
    i = i + 1;
  }
}
|}

let init_mem mem =
  Inputs.fill mem ~off:0 ~len:(n * n) ~seed:201 ~range:63;
  Inputs.fill mem ~off:(n * n) ~len:(n * n) ~seed:202 ~range:63

let golden mem0 =
  let mem = Array.copy mem0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (mem.((i * n) + k) * mem.((n * n) + (k * n) + j))
      done;
      mem.((2 * n * n) + (i * n) + j) <- !acc
    done
  done;
  mem

let kernel =
  {
    Kernel_def.name = "MatM";
    slug = "matm";
    description = "9x9 matrix multiplication, one fully-unrolled row per iteration";
    source;
    mem_words = 3 * n * n;
    init_mem;
    golden;
  }
