(* Layout: x @ 0 (64), y @ 64 (64).
   y[n] = x[n] - x[n-1] + alpha * y[n-1] (alpha = 230/256 ~ 0.9, Q8). *)

let source =
  {|
kernel dc_filter {
  const n = 64;
  const alpha = 230;
  arr x @ 0;
  arr y @ 64;
  var i, xp, yp;
  i = 0;
  xp = 0;
  yp = 0;
  while (i < n) {
    yp = x[i] - xp + ((alpha * yp) >> 8);
    xp = x[i];
    y[i] = yp;
    i = i + 1;
  }
}
|}

let init_mem mem = Inputs.fill mem ~off:0 ~len:64 ~seed:701 ~range:127

let golden mem0 =
  let mem = Array.copy mem0 in
  let xp = ref 0 and yp = ref 0 in
  for i = 0 to 63 do
    yp := mem.(i) - !xp + ((230 * !yp) asr 8);
    xp := mem.(i);
    mem.(64 + i) <- !yp
  done;
  mem

let kernel =
  {
    Kernel_def.name = "DC Filter";
    slug = "dc_filter";
    description = "DC-blocking IIR filter, 64 samples, Q8 alpha";
    source;
    mem_words = 128;
    init_mem;
    golden;
  }
