(** Deterministic input generation shared by the kernels. *)

val fill : int array -> off:int -> len:int -> seed:int -> range:int -> unit
(** Writes [len] pseudo-random values in [\[-range, range\]] starting at
    [off], reproducibly from [seed]. *)

val fill_pos : int array -> off:int -> len:int -> seed:int -> range:int -> unit
(** Same but values in [\[0, range\]]. *)
