(* Layout: xr @ 0 (16), xi @ 16 (16), wr @ 32 (8), wi @ 40 (8),
   rev @ 48 (16), yr @ 64 (16), yi @ 80 (16).
   Twiddles are Q8: wr[t] = round(256 cos(2 pi t / 16)),
   wi[t] = round(-256 sin(2 pi t / 16)).  The butterfly truncates products
   with an arithmetic shift, exactly as the kernel source does.
   As a real FFT implementation would, the first stage (twiddle W^0 = 1)
   is specialised to a multiplication-free loop, which lets the general
   stages process two butterflies per iteration.  The many small
   nested-loop basic blocks make this the kernel used for the traversal
   study of Fig 5. *)

let n = 16

let source =
  {|
kernel fft {
  const n = 16;
  arr xr @ 0;
  arr xi @ 16;
  arr wr @ 32;
  arr wi @ 40;
  arr rev @ 48;
  arr yr @ 64;
  arr yi @ 80;
  var i, le, half, step, k, m, t, a, b, tr, ti;
  i = 0;
  while (i < n) {
    yr[i] = xr[rev[i]];
    yi[i] = xi[rev[i]];
    yr[i + 1] = xr[rev[i + 1]];
    yi[i + 1] = xi[rev[i + 1]];
    yr[i + 2] = xr[rev[i + 2]];
    yi[i + 2] = xi[rev[i + 2]];
    yr[i + 3] = xr[rev[i + 3]];
    yi[i + 3] = xi[rev[i + 3]];
    i = i + 4;
  }
  # first stage: le = 2, twiddle W^0 = 1 -> multiplication-free butterflies
  k = 0;
  while (k < n) {
    tr = yr[k + 1];
    ti = yi[k + 1];
    yr[k + 1] = yr[k] - tr;
    yi[k + 1] = yi[k] - ti;
    yr[k] = yr[k] + tr;
    yi[k] = yi[k] + ti;
    k = k + 2;
  }
  # general stages: two butterflies per iteration (half is even)
  le = 4;
  step = 4;
  while (le <= n) {
    half = le >> 1;
    k = 0;
    while (k < n) {
      m = 0;
      while (m < half) {
        unroll u = 0 to 2 {
          t = (m + u) * step;
          a = k + m + u;
          b = a + half;
          tr = (wr[t] * yr[b] - wi[t] * yi[b]) >> 8;
          ti = (wr[t] * yi[b] + wi[t] * yr[b]) >> 8;
          yr[b] = yr[a] - tr;
          yi[b] = yi[a] - ti;
          yr[a] = yr[a] + tr;
          yi[a] = yi[a] + ti;
        }
        m = m + 2;
      }
      k = k + le;
    }
    le = le << 1;
    step = step >> 1;
  }
}
|}

let bit_reverse4 i =
  ((i land 1) lsl 3) lor ((i land 2) lsl 1) lor ((i land 4) lsr 1)
  lor ((i land 8) lsr 3)

let init_mem mem =
  Inputs.fill mem ~off:0 ~len:32 ~seed:601 ~range:127;
  for t = 0 to 7 do
    let angle = 2.0 *. Float.pi *. float_of_int t /. 16.0 in
    mem.(32 + t) <- int_of_float (Float.round (256.0 *. cos angle));
    mem.(40 + t) <- int_of_float (Float.round (-256.0 *. sin angle))
  done;
  for i = 0 to 15 do
    mem.(48 + i) <- bit_reverse4 i
  done

let golden mem0 =
  let mem = Array.copy mem0 in
  for i = 0 to n - 1 do
    mem.(64 + i) <- mem.(mem.(48 + i));
    mem.(80 + i) <- mem.(16 + mem.(48 + i))
  done;
  let butterfly t a b =
    let tr = ((mem.(32 + t) * mem.(64 + b)) - (mem.(40 + t) * mem.(80 + b))) asr 8 in
    let ti = ((mem.(32 + t) * mem.(80 + b)) + (mem.(40 + t) * mem.(64 + b))) asr 8 in
    mem.(64 + b) <- mem.(64 + a) - tr;
    mem.(80 + b) <- mem.(80 + a) - ti;
    mem.(64 + a) <- mem.(64 + a) + tr;
    mem.(80 + a) <- mem.(80 + a) + ti
  in
  let le = ref 2 and step = ref 8 in
  while !le <= n do
    let half = !le asr 1 in
    let k = ref 0 in
    while !k < n do
      for m = 0 to half - 1 do
        butterfly (m * !step) (!k + m) (!k + m + half)
      done;
      k := !k + !le
    done;
    le := !le lsl 1;
    step := !step asr 1
  done;
  mem

let kernel =
  {
    Kernel_def.name = "FFT";
    slug = "fft";
    description = "16-point radix-2 DIT FFT, Q8 twiddles, 2-way unrolled stages";
    source;
    mem_words = 96;
    init_mem;
    golden;
  }
