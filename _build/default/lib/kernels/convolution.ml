(* Layout: img @ 0 (12x12 = 144), coef @ 144 (9), out @ 160 (10x10 = 100). *)

let source =
  {|
kernel convolution {
  const w = 12;
  const ow = 10;
  arr img @ 0;
  arr coef @ 144;
  arr out @ 160;
  var i, j, p;
  i = 0;
  while (i < ow) {
    j = 0;
    while (j < ow) {
      p = i * w + j;
      out[i * ow + j] =
        ((coef[0] * img[p]          + coef[1] * img[p + 1])
       + (coef[2] * img[p + 2]      + coef[3] * img[p + w]))
      + ((coef[4] * img[p + w + 1]  + coef[5] * img[p + w + 2])
       + (coef[6] * img[p + 2 * w]  + coef[7] * img[p + 2 * w + 1])
       + coef[8] * img[p + 2 * w + 2]) >> 3;
      j = j + 1;
    }
    i = i + 1;
  }
}
|}

let init_mem mem =
  Inputs.fill_pos mem ~off:0 ~len:144 ~seed:301 ~range:255;
  Inputs.fill mem ~off:144 ~len:9 ~seed:302 ~range:7

let golden mem0 =
  let mem = Array.copy mem0 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      let acc = ref 0 in
      for di = 0 to 2 do
        for dj = 0 to 2 do
          acc := !acc + (mem.(144 + (di * 3) + dj) * mem.(((i + di) * 12) + j + dj))
        done
      done;
      mem.(160 + (i * 10) + j) <- !acc asr 3
    done
  done;
  mem

let kernel =
  {
    Kernel_def.name = "Convolution";
    slug = "convolution";
    description = "3x3 convolution, 12x12 image, 10x10 valid output";
    source;
    mem_words = 272;
    init_mem;
    golden;
  }
