(** List-scheduling order for one basic block's DFG.

    Following Section III-B, schedulable operations are prioritised by
    {e mobility} (ALAP minus ASAP level, computed by a backward traversal
    of the DFG) and {e number of fan-outs}; the binder then places one
    operation at a time in this order. *)

type info = {
  asap : int array;
  alap : int array;
  mobility : int array;
  fanout : int array;
  order : int list;  (** binding order: every node exactly once, producers
                         before consumers *)
}

val analyse : Cgra_ir.Cdfg.t -> int -> info
(** [analyse cdfg bi] computes levels and the binding order of block [bi].
    Fan-out counts uses by other nodes, by [live_out] and by the
    terminator (see {!Cgra_ir.Cdfg.uses_of_node}). *)

val critical_path : info -> int
(** Length (in operations) of the longest dependency chain — a lower bound
    on the block's schedule length. *)
