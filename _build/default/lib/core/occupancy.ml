(* Occupancy is a growable byte buffer: 0 = free, 1 = busy.  Schedules are a
   few hundred cycles at most, so linear scans are cheap and the copies made
   on every partial-mapping expansion stay small. *)

type t = { mutable bytes : Bytes.t; mutable last : int }

let create () = { bytes = Bytes.make 32 '\000'; last = -1 }

let copy t = { bytes = Bytes.copy t.bytes; last = t.last }

let ensure t c =
  let cap = Bytes.length t.bytes in
  if c >= cap then begin
    let ncap = max (c + 1) (2 * cap) in
    let nb = Bytes.make ncap '\000' in
    Bytes.blit t.bytes 0 nb 0 cap;
    t.bytes <- nb
  end

let occupy t c =
  if c < 0 then invalid_arg "Occupancy.occupy: negative cycle";
  ensure t c;
  if Bytes.get t.bytes c <> '\000' then
    invalid_arg (Printf.sprintf "Occupancy.occupy: cycle %d already busy" c);
  Bytes.set t.bytes c '\001';
  if c > t.last then t.last <- c

let is_free t c =
  c >= 0 && (c >= Bytes.length t.bytes || Bytes.get t.bytes c = '\000')

let first_free_at_or_after t c =
  let c = max 0 c in
  let rec go i = if is_free t i then i else go (i + 1) in
  go c

let last_busy t = t.last

let busy_count t =
  let n = ref 0 in
  for i = 0 to t.last do
    if Bytes.get t.bytes i <> '\000' then incr n
  done;
  !n

let runs_until t limit =
  let runs = ref 0 and in_run = ref false in
  for c = 0 to limit - 1 do
    let free = is_free t c in
    if free && not !in_run then incr runs;
    in_run := free
  done;
  !runs

let pnops t = if t.last < 0 then 0 else runs_until t t.last
(* runs in [0, last): the last cycle itself is busy, trailing is free. *)

let pnops_optimistic t =
  if t.last < 0 then 0
  else
    let runs = runs_until t t.last in
    (* a free cycle 0 means the first run is the leading gap: drop it *)
    if is_free t 0 then max 0 (runs - 1) else runs

let busy_cycles t =
  let acc = ref [] in
  for c = t.last downto 0 do
    if not (is_free t c) then acc := c :: !acc
  done;
  !acc
