type info = {
  asap : int array;
  alap : int array;
  mobility : int array;
  fanout : int array;
  order : int list;
}

let analyse cdfg bi =
  let b = cdfg.Cgra_ir.Cdfg.blocks.(bi) in
  let g = Cgra_ir.Cdfg.dfg_graph b in
  let n = Array.length b.nodes in
  if n = 0 then
    { asap = [||]; alap = [||]; mobility = [||]; fanout = [||]; order = [] }
  else begin
    let asap = Cgra_graph.Digraph.longest_path_from_sources g in
    let to_sinks = Cgra_graph.Digraph.longest_path_to_sinks g in
    let depth = Array.fold_left max 0 asap in
    let alap = Array.map (fun d -> depth - d) to_sinks in
    let mobility = Array.init n (fun i -> alap.(i) - asap.(i)) in
    let fanout = Array.init n (fun i -> Cgra_ir.Cdfg.uses_of_node b i) in
    (* List scheduling: repeatedly bind the ready node (all node-operand
       producers already bound) with the smallest mobility, breaking ties
       towards larger fan-out, then smaller id. *)
    let bound = Array.make n false in
    (* Readiness counts every DFG edge — data operands and the
       ordering-only memory dependencies alike. *)
    let pending =
      Array.init n (fun i -> Cgra_graph.Digraph.in_degree g i)
    in
    let better a b =
      if mobility.(a) <> mobility.(b) then mobility.(a) < mobility.(b)
      else if fanout.(a) <> fanout.(b) then fanout.(a) > fanout.(b)
      else a < b
    in
    let pick () =
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if (not bound.(i)) && pending.(i) = 0 then
          if !best = -1 || better i !best then best := i
      done;
      !best
    in
    let rec build acc k =
      if k = n then List.rev acc
      else begin
        let i = pick () in
        assert (i >= 0);
        bound.(i) <- true;
        List.iter
          (fun j -> pending.(j) <- pending.(j) - 1)
          (Cgra_graph.Digraph.succs g i);
        build (i :: acc) (k + 1)
      end
    in
    { asap; alap; mobility; fanout; order = build [] 0 }
  end

let critical_path info =
  if Array.length info.asap = 0 then 0
  else Array.fold_left max 0 info.asap + 1
