(** Result of mapping a CDFG onto a CGRA.

    A mapping fixes, per basic block, the (tile, cycle) of every operation
    node, of every routing move and of every symbol-initialisation copy;
    it also fixes the {e home} tile of every symbol variable.  Context
    usage (Section III-C: operations + transformed operations + pnops per
    tile) is derived here and is what the memory constraint is checked
    against. *)

type value =
  | Vnode of int  (** result of the block's DFG node *)
  | Vsym of int   (** current value of a symbol variable *)
  | Vimm of int   (** constant (CRF-resident) *)

type action =
  | Aop of { node : int; operand_tiles : int list }
      (** execute a DFG node; [operand_tiles], aligned with the node's
          operands, names the tile whose RF each operand is read from —
          either the executing tile or a torus neighbour (the PE input
          muxes of Fig 1; immediates record the executing tile) *)
  | Amove of { value : value; from_tile : int }
      (** routing move: pull [value] from the RF of neighbouring
          [from_tile] *)
  | Acopy of value
      (** local copy (symbol initialisation from Imm/Sym, condition
          export) *)

type slot = {
  tile : int;
  cycle : int;
  action : action;
  writes_sym : int option;
      (** result additionally lands in this symbol's home RF slot *)
  set_cond : bool;
}

type bb_mapping = {
  bb : int;
  length : int;  (** schedule length in cycles (>= 1 for non-empty work) *)
  slots : slot list;
}

type usage = { ops : int; moves : int; pnops : int }
(** Per-tile context words: [ops] are DFG operations, [moves] are
    transformed operations (routing moves and copies), [pnops] the
    compressed idle runs. *)

val usage_total : usage -> int

type t = {
  cdfg : Cgra_ir.Cdfg.t;
  cgra : Cgra_arch.Cgra.t;
  bbs : bb_mapping array;    (** indexed by block id *)
  homes : int array;         (** symbol -> home tile *)
  flow_label : string;
  compile_seconds : float;
}

val tile_usage : t -> usage array
(** Per-tile context usage summed over all basic blocks. *)

val block_tile_usage : t -> int -> usage array
(** Per-tile usage of one block. *)

val fits : t -> bool
(** The inequality of Section III-C: every tile's total usage is within
    its context-memory capacity. *)

val overflowing_tiles : t -> (int * int * int) list
(** [(tile, used, capacity)] for each over-full tile. *)

val total_ops : t -> int
val total_moves : t -> int
val total_pnops : t -> int

val static_cycles : t -> Cgra_ir.Interp.trace -> int
(** Kernel latency implied by the schedule: sum over the dynamic block
    trace of the block's schedule length, plus one transition cycle per
    executed block (global-controller jump).  The cycle-level simulator
    reproduces this number (plus memory-port stalls). *)

val pp_summary : Format.formatter -> t -> unit

val pp_schedule : Format.formatter -> t * int -> unit
(** [pp_schedule fmt (m, bi)] renders block [bi]'s schedule as a tile x
    cycle grid: [o] an operation, [m] a move, [c] a copy, [.] an idle
    cycle — the visual counterpart of the context-usage accounting. *)
