lib/core/sched.mli: Cgra_ir
