lib/core/flow_config.ml:
