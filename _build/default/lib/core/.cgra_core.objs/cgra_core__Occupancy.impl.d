lib/core/occupancy.ml: Bytes Printf
