lib/core/sched.ml: Array Cgra_graph Cgra_ir List
