lib/core/flow.mli: Cgra_arch Cgra_ir Flow_config Mapping Stdlib
