lib/core/flow.ml: Array Cgra_arch Cgra_graph Cgra_ir Cgra_util Flow_config List Mapping Occupancy Printf Search Stdlib String Unix
