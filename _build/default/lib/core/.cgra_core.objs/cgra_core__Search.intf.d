lib/core/search.mli: Cgra_arch Cgra_ir Cgra_util Flow_config Mapping
