lib/core/flow_config.mli:
