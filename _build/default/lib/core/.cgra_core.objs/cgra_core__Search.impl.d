lib/core/search.ml: Array Cgra_arch Cgra_ir Cgra_util Flow_config Fun Hashtbl List Mapping Occupancy Printf Sched
