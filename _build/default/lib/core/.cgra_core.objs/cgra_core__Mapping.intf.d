lib/core/mapping.mli: Cgra_arch Cgra_ir Format
