lib/core/occupancy.mli:
