lib/core/mapping.ml: Array Cgra_arch Cgra_ir Format List Occupancy String
