type value = Vnode of int | Vsym of int | Vimm of int

type action =
  | Aop of { node : int; operand_tiles : int list }
  | Amove of { value : value; from_tile : int }
  | Acopy of value

type slot = {
  tile : int;
  cycle : int;
  action : action;
  writes_sym : int option;
  set_cond : bool;
}

type bb_mapping = { bb : int; length : int; slots : slot list }

type usage = { ops : int; moves : int; pnops : int }

let usage_total u = u.ops + u.moves + u.pnops

type t = {
  cdfg : Cgra_ir.Cdfg.t;
  cgra : Cgra_arch.Cgra.t;
  bbs : bb_mapping array;
  homes : int array;
  flow_label : string;
  compile_seconds : float;
}

let zero = { ops = 0; moves = 0; pnops = 0 }

let block_tile_usage m bi =
  let ntiles = Cgra_arch.Cgra.tile_count m.cgra in
  let occ = Array.init ntiles (fun _ -> Occupancy.create ()) in
  let counts = Array.make ntiles zero in
  let bm = m.bbs.(bi) in
  List.iter
    (fun s ->
      Occupancy.occupy occ.(s.tile) s.cycle;
      let u = counts.(s.tile) in
      counts.(s.tile) <-
        (match s.action with
         | Aop _ -> { u with ops = u.ops + 1 }
         | Amove _ | Acopy _ -> { u with moves = u.moves + 1 }))
    bm.slots;
  Array.mapi
    (fun t u ->
      { u with pnops = Occupancy.pnops occ.(t) })
    counts

let tile_usage m =
  let ntiles = Cgra_arch.Cgra.tile_count m.cgra in
  let total = Array.make ntiles zero in
  Array.iteri
    (fun bi _ ->
      let per = block_tile_usage m bi in
      Array.iteri
        (fun t u ->
          total.(t) <-
            { ops = total.(t).ops + u.ops;
              moves = total.(t).moves + u.moves;
              pnops = total.(t).pnops + u.pnops })
        per)
    m.bbs;
  total

let overflowing_tiles m =
  let usage = tile_usage m in
  let acc = ref [] in
  Array.iteri
    (fun t u ->
      let cap = m.cgra.Cgra_arch.Cgra.tiles.(t).cm_words in
      let used = usage_total u in
      if used > cap then acc := (t, used, cap) :: !acc)
    usage;
  List.rev !acc

let fits m = overflowing_tiles m = []

let sum_usage m f =
  Array.fold_left (fun acc u -> acc + f u) 0 (tile_usage m)

let total_ops m = sum_usage m (fun u -> u.ops)
let total_moves m = sum_usage m (fun u -> u.moves)
let total_pnops m = sum_usage m (fun u -> u.pnops)

let static_cycles m (trace : Cgra_ir.Interp.trace) =
  let total = ref 0 in
  Array.iteri
    (fun bi count -> total := !total + (count * (m.bbs.(bi).length + 1)))
    trace.block_counts;
  !total

let pp_summary fmt m =
  let usage = tile_usage m in
  Format.fprintf fmt "@[<v>mapping of %s via %s (%.3fs)@,"
    m.cdfg.Cgra_ir.Cdfg.kernel_name m.flow_label m.compile_seconds;
  Format.fprintf fmt "ops=%d moves=%d pnops=%d fits=%b@," (total_ops m)
    (total_moves m) (total_pnops m) (fits m);
  Array.iteri
    (fun t u ->
      Format.fprintf fmt "T%02d: %3d/%3d (ops %d, moves %d, pnops %d)@," t
        (usage_total u)
        m.cgra.Cgra_arch.Cgra.tiles.(t).cm_words u.ops u.moves u.pnops)
    usage;
  Format.fprintf fmt "@]"

let pp_schedule fmt ((m : t), bi) =
  let bm = m.bbs.(bi) in
  let nt = Cgra_arch.Cgra.tile_count m.cgra in
  let grid = Array.make_matrix nt (max 1 bm.length) '.' in
  List.iter
    (fun s ->
      grid.(s.tile).(s.cycle) <-
        (match s.action with Aop _ -> 'o' | Amove _ -> 'm' | Acopy _ -> 'c'))
    bm.slots;
  Format.fprintf fmt "@[<v>block %s (%d cycles):@,"
    m.cdfg.Cgra_ir.Cdfg.blocks.(bi).Cgra_ir.Cdfg.name bm.length;
  Array.iteri
    (fun t row ->
      Format.fprintf fmt "T%02d %s@," t (String.init bm.length (Array.get row)))
    grid;
  Format.fprintf fmt "(o = operation, m = move, c = copy, . = idle)@]"
