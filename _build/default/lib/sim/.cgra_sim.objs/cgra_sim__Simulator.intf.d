lib/sim/simulator.mli: Cgra_asm
