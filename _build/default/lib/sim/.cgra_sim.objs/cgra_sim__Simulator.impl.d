lib/sim/simulator.ml: Array Cgra_arch Cgra_asm Cgra_core Cgra_ir List Printf
