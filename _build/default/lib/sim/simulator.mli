(** Cycle-level simulator of the CGRA executing an assembled program.

    Tiles run lock-step through the context section of the current basic
    block; the global controller sequences blocks using the condition bit
    broadcast by [set_cond] instructions (Fig 1's control bits), adding
    one transition cycle per block.  Loads and stores reach the shared
    data memory through the logarithmic interconnect, modelled as
    [mem_ports] concurrent accesses per cycle — excess accesses stall the
    whole array (the paper's global stall signal).

    Register-file semantics: writes land at the end of a cycle, reads see
    the start-of-cycle state, matching the assembler's assumptions.

    The simulator also gathers the per-tile activity counters the energy
    model integrates. *)

type activity = {
  alu_ops : int;        (** non-memory operations executed *)
  mul_ops : int;        (** of which multiplies (costlier) *)
  mem_ops : int;        (** loads + stores issued *)
  moves : int;          (** routing moves and local copies *)
  fetches : int;        (** context words fetched (instructions + pnops) *)
  awake_cycles : int;   (** cycles not clock-gated (executing, not pnop) *)
}

type result = {
  cycles : int;            (** total, including stalls and transitions *)
  stall_cycles : int;
  blocks_executed : int;
  instructions : int;      (** instructions executed (pnops excluded) *)
  activity : activity array;  (** per tile *)
}

exception Sim_error of string

val run :
  ?mem_ports:int ->
  ?max_blocks:int ->
  Cgra_asm.Assemble.program ->
  mem:int array ->
  result
(** [run program ~mem] executes from the entry block until [Return],
    mutating [mem].  Symbol RF slots start at zero, matching the
    reference interpreter.  Defaults: [mem_ports = 8],
    [max_blocks = 1_000_000].  Raises {!Sim_error} on a malformed program
    (missing condition, out-of-range memory access, runaway loop). *)

val total_activity : result -> activity
