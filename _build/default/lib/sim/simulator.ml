module Isa = Cgra_arch.Isa
module Cgra = Cgra_arch.Cgra
module Cdfg = Cgra_ir.Cdfg
module Opcode = Cgra_ir.Opcode
module Asm = Cgra_asm.Assemble

type activity = {
  alu_ops : int;
  mul_ops : int;
  mem_ops : int;
  moves : int;
  fetches : int;
  awake_cycles : int;
}

let zero_activity =
  { alu_ops = 0; mul_ops = 0; mem_ops = 0; moves = 0; fetches = 0; awake_cycles = 0 }

type result = {
  cycles : int;
  stall_cycles : int;
  blocks_executed : int;
  instructions : int;
  activity : activity array;
}

exception Sim_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

(* Per-tile execution cursor within a section: remaining pnop cycles and
   the instruction stream. *)
type cursor = { mutable stream : Isa.instr list; mutable sleep : int }

type tstate = {
  rf : int array;
  mutable act : activity;
}



let run ?(mem_ports = 8) ?(max_blocks = 1_000_000) (p : Asm.program) ~mem =
  let m = p.Asm.mapping in
  let cgra = m.Cgra_core.Mapping.cgra in
  let cdfg = m.Cgra_core.Mapping.cdfg in
  let nt = Cgra.tile_count cgra in
  let tstates =
    Array.init nt (fun _ ->
        { rf = Array.make cgra.Cgra.rf_words 0; act = zero_activity })
  in
  let cycles = ref 0 and stalls = ref 0 and blocks = ref 0 and instrs = ref 0 in
  let src_value t = function
    | Isa.Rf r -> tstates.(t).rf.(r)
    | Isa.Crf c ->
      let crf = p.Asm.tiles.(t).Asm.crf in
      if c >= Array.length crf then error "CRF index %d out of range" c
      else crf.(c)
    | Isa.Nbr (t', r) ->
      (* neighbour-mux read: start-of-cycle RF state of an adjacent tile *)
      if Cgra.distance cgra t t' > 1 then
        error "tile %d reads non-neighbour tile %d" t t';
      tstates.(t').rf.(r)
  in
  let cond = ref None in
  (* Pending register writes applied at end of cycle (two-phase update). *)
  let pending : (int * int * int) list ref = ref [] in
  let write tile reg v = pending := (tile, reg, v) :: !pending in
  let mem_check addr =
    if addr < 0 || addr >= Array.length mem then
      error "memory access out of bounds: %d" addr
  in
  let bump t f = tstates.(t).act <- f tstates.(t).act in
  let exec_instr t instr =
    incr instrs;
    bump t (fun a -> { a with fetches = a.fetches + 1; awake_cycles = a.awake_cycles + 1 });
    match instr with
    | Isa.Ipnop _ -> assert false
    | Isa.Iop { opcode; srcs; dst; set_cond } ->
      let args = List.map (src_value t) srcs in
      let result =
        match opcode, args with
        | Opcode.Load, [ addr ] ->
          mem_check addr;
          bump t (fun a -> { a with mem_ops = a.mem_ops + 1 });
          Some mem.(addr)
        | Opcode.Store, [ addr; v ] ->
          mem_check addr;
          bump t (fun a -> { a with mem_ops = a.mem_ops + 1 });
          mem.(addr) <- v;
          None
        | Opcode.Load, _ | Opcode.Store, _ ->
          error "memory opcode with wrong arity"
        | op, args ->
          bump t (fun a ->
              { a with
                alu_ops = a.alu_ops + 1;
                mul_ops = (a.mul_ops + if op = Opcode.Mul then 1 else 0) });
          Some (Opcode.eval op args)
      in
      (match result, dst with
       | Some v, Some d -> write t d v
       | Some _, None -> ()
       | None, Some _ -> error "store with a destination"
       | None, None -> ());
      if set_cond then (
        match result with
        | Some v -> cond := Some (v <> 0)
        | None -> error "set_cond on an instruction without result")
    | Isa.Imov { from_tile; from_slot; dst } ->
      bump t (fun a -> { a with moves = a.moves + 1 });
      let v = tstates.(from_tile).rf.(from_slot) in
      write t dst v
    | Isa.Icopy { src; dst; set_cond } ->
      bump t (fun a -> { a with moves = a.moves + 1 });
      let v = src_value t src in
      write t dst v;
      if set_cond then cond := Some (v <> 0)
  in
  let run_section bi =
    let len = p.Asm.section_length.(bi) in
    let cursors =
      Array.init nt (fun t ->
          { stream = p.Asm.tiles.(t).Asm.sections.(bi); sleep = 0 })
    in
    cond := None;
    for _cycle = 0 to len - 1 do
      (* Phase 1: execute this cycle's instruction on every tile. *)
      let mem_ops_before =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      Array.iteri
        (fun t cur ->
          if cur.sleep > 0 then cur.sleep <- cur.sleep - 1
          else
            match cur.stream with
            | [] -> () (* trailing sleep: clock-gated until section end *)
            | Isa.Ipnop n :: rest ->
              (* fetching the pnop word costs one access, then the tile
                 sleeps *)
              bump t (fun a -> { a with fetches = a.fetches + 1 });
              cur.sleep <- n - 1;
              cur.stream <- rest
            | instr :: rest ->
              exec_instr t instr;
              cur.stream <- rest)
        cursors;
      (* Phase 2: commit register writes. *)
      List.iter (fun (t, r, v) -> tstates.(t).rf.(r) <- Opcode.wrap32 v) !pending;
      pending := [];
      (* Logarithmic-interconnect arbitration: accesses beyond the port
         count this cycle stall the whole array. *)
      let mem_ops_now =
        Array.fold_left (fun acc ts -> acc + ts.act.mem_ops) 0 tstates
      in
      let this_cycle = mem_ops_now - mem_ops_before in
      let extra = if this_cycle = 0 then 0 else ((this_cycle - 1) / mem_ports) in
      stalls := !stalls + extra;
      cycles := !cycles + 1 + extra
    done;
    Array.iter
      (fun cur ->
        if cur.stream <> [] then error "section b%d: unexecuted instructions" bi)
      cursors
  in
  let rec go bi =
    if !blocks >= max_blocks then error "runaway execution (max_blocks)";
    incr blocks;
    run_section bi;
    (* Global controller: one transition cycle per block. *)
    incr cycles;
    match cdfg.Cdfg.blocks.(bi).Cdfg.terminator with
    | Cdfg.Jump next -> go next
    | Cdfg.Branch (_, bt, be) -> (
      match !cond with
      | None -> error "block %d: branch executed but no condition was set" bi
      | Some c -> go (if c then bt else be))
    | Cdfg.Return -> ()
  in
  go cdfg.Cdfg.entry;
  {
    cycles = !cycles;
    stall_cycles = !stalls;
    blocks_executed = !blocks;
    instructions = !instrs;
    activity = Array.map (fun ts -> ts.act) tstates;
  }

let total_activity r =
  Array.fold_left
    (fun acc a ->
      {
        alu_ops = acc.alu_ops + a.alu_ops;
        mul_ops = acc.mul_ops + a.mul_ops;
        mem_ops = acc.mem_ops + a.mem_ops;
        moves = acc.moves + a.moves;
        fetches = acc.fetches + a.fetches;
        awake_cycles = acc.awake_cycles + a.awake_cycles;
      })
    zero_activity r.activity
