lib/arch/cgra.mli: Cgra_ir Format
