lib/arch/isa.mli: Cgra_ir
