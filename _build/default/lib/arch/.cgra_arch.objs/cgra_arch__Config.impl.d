lib/arch/config.ml: Cgra Fun List String
