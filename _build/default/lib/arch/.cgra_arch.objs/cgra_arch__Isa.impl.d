lib/arch/isa.ml: Cgra_ir Int64 List Printf String
