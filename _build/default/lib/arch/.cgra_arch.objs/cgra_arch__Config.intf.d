lib/arch/config.mli: Cgra
