lib/arch/cgra.ml: Array Cgra_ir Format List
