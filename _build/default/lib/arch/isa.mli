(** Context-memory instruction set of a tile.

    Per Section II, a context word holds one of three kinds of
    instructions: an {e operation} (including control), a {e move}, or a
    {e nop} — with consecutive nops compressed into one {e programmable nop}
    (pnop).  This module defines the symbolic form stored in each tile's
    context memory plus the 64-bit binary encoding used by the global
    loader. *)

type src =
  | Rf of int          (** local register-file slot *)
  | Crf of int         (** constant-register-file slot *)
  | Nbr of int * int   (** neighbouring tile's RF slot, read through the
                           PE input mux (Fig 1) without a move *)

type instr =
  | Iop of {
      opcode : Cgra_ir.Opcode.t;
      srcs : src list;
      dst : int option;     (** RF slot receiving the result, if any *)
      set_cond : bool;      (** drive the global condition bit (branches) *)
    }
  | Imov of {
      from_tile : int;      (** neighbouring tile whose RF is read *)
      from_slot : int;
      dst : int;
    }  (** the routing/move instructions the mapper inserts *)
  | Icopy of {
      src : src;
      dst : int;
      set_cond : bool;
    }  (** local RF/CRF copy: symbol initialisation, condition export *)
  | Ipnop of int  (** sleep for [n >= 1] cycles, clock-gated *)

val duration : instr -> int
(** Cycles the instruction occupies (1, or [n] for [Ipnop n]). *)

val is_pnop : instr -> bool

val words : instr -> int
(** Context-memory words consumed — always 1; pnops encode their length in
    the word, which is the whole point of the compression. *)

val to_string : instr -> string
(** Assembly-like rendering, e.g. ["add r3, r1, c0"], ["mov r2, T05.r7"],
    ["pnop 12"]. *)

val encode : instr -> int64
(** Pack into one 64-bit context word. *)

val decode : int64 -> (instr, string) result
(** Inverse of {!encode}. *)
