type tile = {
  id : int;
  row : int;
  col : int;
  has_lsu : bool;
  cm_words : int;
}

type t = {
  rows : int;
  cols : int;
  tiles : tile array;
  rf_words : int;
  crf_words : int;
}

let make ?(rows = 4) ?(cols = 4) ?(lsu_rows = 2) ?(rf_words = 32)
    ?(crf_words = 32) ~cm_of_tile () =
  if rows <= 0 || cols <= 0 then invalid_arg "Cgra.make: empty grid";
  let tile id =
    let row = id / cols and col = id mod cols in
    { id; row; col; has_lsu = row < lsu_rows; cm_words = cm_of_tile id }
  in
  { rows; cols; tiles = Array.init (rows * cols) tile; rf_words; crf_words }

let tile_count c = Array.length c.tiles

let lsu_tiles c =
  Array.to_list c.tiles
  |> List.filter_map (fun t -> if t.has_lsu then Some t.id else None)

let can_execute c id op =
  if Cgra_ir.Opcode.needs_lsu op then c.tiles.(id).has_lsu else true

let id_of c ~row ~col =
  let row = ((row mod c.rows) + c.rows) mod c.rows in
  let col = ((col mod c.cols) + c.cols) mod c.cols in
  (row * c.cols) + col

let neighbors c id =
  let t = c.tiles.(id) in
  let cand =
    [ id_of c ~row:(t.row - 1) ~col:t.col;
      id_of c ~row:(t.row + 1) ~col:t.col;
      id_of c ~row:t.row ~col:(t.col - 1);
      id_of c ~row:t.row ~col:(t.col + 1) ]
  in
  List.filter (fun n -> n <> id) (List.sort_uniq compare cand)

(* Signed wrap-around delta with the smallest magnitude; ties (exactly half
   the ring) resolve to the positive direction so routes are deterministic. *)
let ring_delta size a b =
  let d = ((b - a) mod size + size) mod size in
  if d * 2 > size then d - size else d

let distance c a b =
  let ta = c.tiles.(a) and tb = c.tiles.(b) in
  abs (ring_delta c.rows ta.row tb.row) + abs (ring_delta c.cols ta.col tb.col)

let route c ~src ~dst =
  let td = c.tiles.(dst) in
  let rec go row col acc =
    let dr = ring_delta c.rows row td.row in
    let dc = ring_delta c.cols col td.col in
    if dr = 0 && dc = 0 then List.rev acc
    else if dr <> 0 then
      let row = ((row + compare dr 0) mod c.rows + c.rows) mod c.rows in
      go row col (id_of c ~row ~col :: acc)
    else
      let col = ((col + compare dc 0) mod c.cols + c.cols) mod c.cols in
      go row col (id_of c ~row ~col :: acc)
  in
  let ts = c.tiles.(src) in
  go ts.row ts.col []

let pp_grid fmt c =
  Format.fprintf fmt "@[<v>";
  for r = 0 to c.rows - 1 do
    for col = 0 to c.cols - 1 do
      let t = c.tiles.((r * c.cols) + col) in
      Format.fprintf fmt "[T%02d%s cm=%-3d] " t.id (if t.has_lsu then "*" else " ")
        t.cm_words
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "(* = load-store tile)@]"
