(** The four context-memory configurations of Table I.

    Tile numbering follows the paper (tiles 1..16 row-major; tiles 1..8 are
    the load-store tiles); ids here are 0-based, so paper tile [k] is id
    [k-1].

    - HOM64: every tile has a 64-word CM (total 1024).
    - HOM32: every tile has a 32-word CM (total 512).
    - HET1:  tiles 1-4 have CM 64; tiles 5-8 and 13-16 have CM 32;
             tiles 9-12 have CM 16 (total 576).
    - HET2:  tiles 1-4 have CM 64; tiles 5-8 have CM 32; tiles 9-16 have
             CM 16 (total 512). *)

type name = HOM64 | HOM32 | HET1 | HET2

val all : name list
(** In Table I order. *)

val to_string : name -> string
val of_string : string -> name option

val cm_of_tile : name -> int -> int
(** Per-tile CM capacity (0-based tile id on the 4x4 grid). *)

val total_cm : name -> int
(** Sum over the 16 tiles — the "Total" column of Table I. *)

val cgra : name -> Cgra.t
(** The 4x4 paper CGRA under this configuration. *)

val table1_rows : unit -> string list list
(** The rows of Table I as rendered by the experiment harness. *)
