(** Model of the target CGRA (Fig 1 of the paper).

    A grid of tiles (PEs) interconnected through a 2D-mesh torus.  Every
    tile has an ALU, a register file (RF), a constant register file (CRF)
    and its own context memory (CM), decoder and controller; tiles in the
    first [lsu_rows] rows additionally contain a load/store unit connected
    to the shared data memory through a logarithmic interconnect.  The
    evaluation uses a 4x4 array whose first two rows (tiles 1..8 in the
    paper's numbering, ids 0..7 here) are load-store tiles. *)

type tile = {
  id : int;           (** dense id, row-major from 0 *)
  row : int;
  col : int;
  has_lsu : bool;
  cm_words : int;     (** context-memory capacity in instruction words *)
}

type t = {
  rows : int;
  cols : int;
  tiles : tile array;
  rf_words : int;     (** regular register file: 32 x 8-bit in the paper *)
  crf_words : int;    (** constant register file: 32 x 16-bit *)
}

val make :
  ?rows:int -> ?cols:int -> ?lsu_rows:int -> ?rf_words:int -> ?crf_words:int ->
  cm_of_tile:(int -> int) -> unit -> t
(** Defaults give the paper's 4x4 array with 8 load-store tiles, 32-word RF
    and CRF.  [cm_of_tile id] sets each tile's CM capacity. *)

val tile_count : t -> int

val lsu_tiles : t -> int list
(** Ids of tiles able to execute loads and stores. *)

val can_execute : t -> int -> Cgra_ir.Opcode.t -> bool
(** Whether the opcode may be placed on the tile (LSU restriction). *)

val neighbors : t -> int -> int list
(** Torus neighbours in N, S, W, E order; always 4 distinct tiles on grids
    of at least 3x3 (on smaller grids wrap-around duplicates are removed). *)

val distance : t -> int -> int -> int
(** Torus Manhattan distance in hops. *)

val route : t -> src:int -> dst:int -> int list
(** Deterministic shortest path, row direction first: the successive tiles
    {e after} [src], ending with [dst].  [route ~src ~dst:src] is []. *)

val pp_grid : Format.formatter -> t -> unit
(** Small ASCII rendering of the grid with CM sizes and LSU markers. *)
