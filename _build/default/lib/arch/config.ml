type name = HOM64 | HOM32 | HET1 | HET2

let all = [ HOM64; HOM32; HET1; HET2 ]

let to_string = function
  | HOM64 -> "HOM64"
  | HOM32 -> "HOM32"
  | HET1 -> "HET1"
  | HET2 -> "HET2"

let of_string s =
  List.find_opt (fun n -> String.lowercase_ascii (to_string n) = String.lowercase_ascii s) all

(* Paper tile k (1-based) is id k-1.  HET1: tiles 1-4 -> 64; 5-8 and
   13-16 -> 32; 9-12 -> 16.  HET2: 1-4 -> 64; 5-8 -> 32; 9-16 -> 16. *)
let cm_of_tile name id =
  let tile = id + 1 in
  match name with
  | HOM64 -> 64
  | HOM32 -> 32
  | HET1 -> if tile <= 4 then 64 else if tile <= 8 || tile >= 13 then 32 else 16
  | HET2 -> if tile <= 4 then 64 else if tile <= 8 then 32 else 16

let total_cm name =
  let sum = ref 0 in
  for id = 0 to 15 do
    sum := !sum + cm_of_tile name id
  done;
  !sum

let cgra name = Cgra.make ~cm_of_tile:(cm_of_tile name) ()

let table1_rows () =
  let tiles_with name words =
    List.filter (fun id -> cm_of_tile name id = words) (List.init 16 Fun.id)
    |> List.map (fun id -> string_of_int (id + 1))
    |> function
    | [] -> "-"
    | l -> String.concat "," l
  in
  let row name =
    [ to_string name;
      "1-8";
      tiles_with name 64;
      tiles_with name 32;
      tiles_with name 16;
      string_of_int (total_cm name) ]
  in
  List.map row all
