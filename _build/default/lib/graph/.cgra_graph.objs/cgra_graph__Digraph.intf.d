lib/graph/digraph.mli:
