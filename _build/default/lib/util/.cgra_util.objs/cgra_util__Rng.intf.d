lib/util/rng.mli:
