lib/util/text_table.ml: Array Float List Printf String
