(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Chosen because it is trivially splittable,
   which lets every partial mapping carry an independent stream. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = int64 g in
  { state = seed }

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the conversion to a 63-bit OCaml int stays
     non-negative *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  v mod n

let float g =
  let v = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (int64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int g (List.length l))
