type proto_block = {
  pname : string;
  mutable pnodes : Cdfg.node list; (* reversed *)
  mutable pcount : int;
  mutable plive_out : (Cdfg.sym * Cdfg.operand) list; (* reversed, latest first *)
  mutable pterm : Cdfg.terminator option;
}

type t = {
  kname : string;
  mutable pblocks : proto_block list; (* reversed *)
  mutable nblocks : int;
  mutable syms : string list; (* reversed *)
  mutable nsyms : int;
}

type block_handle = { bid : int; proto : proto_block }

let create kname = { kname; pblocks = []; nblocks = 0; syms = []; nsyms = 0 }

let fresh_sym b name =
  let id = b.nsyms in
  b.nsyms <- id + 1;
  b.syms <- name :: b.syms;
  id

let add_block b pname =
  let proto = { pname; pnodes = []; pcount = 0; plive_out = []; pterm = None } in
  let bid = b.nblocks in
  b.nblocks <- bid + 1;
  b.pblocks <- proto :: b.pblocks;
  { bid; proto }

let block_id h = h.bid

let add_node ?(mem_dep = []) _b h opcode operands =
  if List.length operands <> Opcode.arity opcode then
    invalid_arg
      (Printf.sprintf "Builder.add_node: %s expects %d operands"
         (Opcode.to_string opcode) (Opcode.arity opcode));
  let id = h.proto.pcount in
  h.proto.pcount <- id + 1;
  h.proto.pnodes <- { Cdfg.opcode; operands; mem_dep } :: h.proto.pnodes;
  Cdfg.Node id

let set_live_out _b h sym op =
  h.proto.plive_out <- (sym, op) :: List.remove_assoc sym h.proto.plive_out

let set_terminator _b h term = h.proto.pterm <- Some term

let finish b =
  let freeze proto =
    match proto.pterm with
    | None -> failwith (Printf.sprintf "Builder.finish: block %s has no terminator" proto.pname)
    | Some terminator ->
      { Cdfg.name = proto.pname;
        nodes = Array.of_list (List.rev proto.pnodes);
        live_out = List.rev proto.plive_out;
        terminator }
  in
  let blocks = List.rev_map freeze b.pblocks |> Array.of_list in
  let c =
    { Cdfg.kernel_name = b.kname;
      blocks;
      entry = 0;
      sym_count = b.nsyms;
      sym_names = Array.of_list (List.rev b.syms) }
  in
  match Cdfg.validate c with
  | Ok () -> c
  | Error msg -> failwith ("Builder.finish: invalid CDFG: " ^ msg)
