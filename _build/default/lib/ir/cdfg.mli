(** Control-Data-Flow Graph — the mapper's input representation.

    Following Section III-A of the paper, a CDFG is a set of basic blocks
    [V(C)] connected by control-flow edges [E(C)]; each basic block is a
    data-flow graph of operation nodes.  Values that live across basic
    blocks are {e symbol variables}: they are pinned to a register-file
    location on one tile (their {e home}) by the mapper, which is what
    creates the location constraints discussed in the paper. *)

type sym = int
(** Symbol-variable id, dense from 0 within one CDFG. *)

type operand =
  | Node of int  (** result of the DFG node with that index in the same block;
                     must reference a strictly earlier node *)
  | Sym of sym   (** value of a symbol variable at block entry *)
  | Imm of int   (** constant, materialised in the constant register file *)

type node = {
  opcode : Opcode.t;
  operands : operand list;
  mem_dep : int list;
      (** ordering-only dependencies on earlier nodes of the same block:
          a load lists the previous store to the same array; a store lists
          the previous store and the loads issued since (anti-dependence).
          The scheduler and binder honour them like data edges. *)
}
(** One DFG operation node. *)

type terminator =
  | Jump of int                       (** unconditional successor block *)
  | Branch of operand * int * int     (** condition, then-block, else-block;
                                          taken when the condition is non-zero *)
  | Return

type block = {
  name : string;
  nodes : node array;                 (** in topological order: operands only
                                          reference earlier nodes *)
  live_out : (sym * operand) list;    (** symbol assignments at block exit *)
  terminator : terminator;
}

type t = {
  kernel_name : string;
  blocks : block array;
  entry : int;
  sym_count : int;
  sym_names : string array;
}

val validate : t -> (unit, string) result
(** Structural well-formedness: operand indices in range and strictly
    decreasing, opcode arities respected, terminator targets in range,
    symbol ids below [sym_count], every block reachable from the entry. *)

val block_count : t -> int
val node_count : t -> int
(** Total operation nodes over all blocks. *)

val cfg : t -> Cgra_graph.Digraph.t
(** The control-flow graph (one digraph node per block, in block order). *)

val dfg_graph : block -> Cgra_graph.Digraph.t
(** The data-dependency digraph of a block (one node per operation;
    edges producer -> consumer).  [Sym] and [Imm] operands contribute no
    edges. *)

val syms_in_block : t -> int -> (sym * int) list
(** [(s, fanout)] for every symbol variable appearing in the block, where
    fanout counts its uses as node operand, in [live_out] right-hand sides
    and in the terminator condition.  A symbol only {e defined} (assigned in
    [live_out]) has fanout 0 but is still listed: it is "present" in the
    sense of Section III-D-1. *)

val block_weight : t -> int -> int
(** Wbb = n(s) + sum of fan-outs of each symbol variable (Section
    III-D-1). *)

val uses_of_node : block -> int -> int
(** Fan-out of a node: uses by later nodes, by [live_out] and by the
    terminator condition. *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing of the whole CDFG. *)
