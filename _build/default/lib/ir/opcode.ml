type t =
  | Add
  | Sub
  | Mul
  | Shl
  | Shrl
  | Shra
  | And
  | Or
  | Xor
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge
  | Min
  | Max
  | Select
  | Load
  | Store

let arity = function
  | Load -> 1
  | Select -> 3
  | Store -> 2
  | Add | Sub | Mul | Shl | Shrl | Shra | And | Or | Xor
  | Lt | Le | Eq | Ne | Gt | Ge | Min | Max -> 2

let has_result = function Store -> false | _ -> true

let needs_lsu = function Load | Store -> true | _ -> false

let is_commutative = function
  | Add | Mul | And | Or | Xor | Eq | Ne | Min | Max -> true
  | Sub | Shl | Shrl | Shra | Lt | Le | Gt | Ge | Select | Load | Store -> false

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Shl -> "shl"
  | Shrl -> "shrl"
  | Shra -> "shra"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"
  | Gt -> "gt"
  | Ge -> "ge"
  | Min -> "min"
  | Max -> "max"
  | Select -> "select"
  | Load -> "load"
  | Store -> "store"

let all =
  [ Add; Sub; Mul; Shl; Shrl; Shra; And; Or; Xor; Lt; Le; Eq; Ne; Gt; Ge;
    Min; Max; Select; Load; Store ]

let of_string s = List.find_opt (fun op -> to_string op = s) all

let wrap32 v =
  let m = v land 0xFFFFFFFF in
  if m land 0x80000000 <> 0 then m - 0x100000000 else m

let bool_int b = if b then 1 else 0

let eval op args =
  let bad () =
    invalid_arg
      (Printf.sprintf "Opcode.eval: %s expects %d operands, got %d"
         (to_string op) (arity op) (List.length args))
  in
  match op, args with
  | Add, [ a; b ] -> wrap32 (a + b)
  | Sub, [ a; b ] -> wrap32 (a - b)
  | Mul, [ a; b ] -> wrap32 (a * b)
  | Shl, [ a; b ] -> wrap32 (a lsl (b land 31))
  | Shrl, [ a; b ] -> wrap32 ((a land 0xFFFFFFFF) lsr (b land 31))
  | Shra, [ a; b ] -> wrap32 (a asr (b land 31))
  | And, [ a; b ] -> wrap32 (a land b)
  | Or, [ a; b ] -> wrap32 (a lor b)
  | Xor, [ a; b ] -> wrap32 (a lxor b)
  | Lt, [ a; b ] -> bool_int (a < b)
  | Le, [ a; b ] -> bool_int (a <= b)
  | Eq, [ a; b ] -> bool_int (a = b)
  | Ne, [ a; b ] -> bool_int (a <> b)
  | Gt, [ a; b ] -> bool_int (a > b)
  | Ge, [ a; b ] -> bool_int (a >= b)
  | Min, [ a; b ] -> min a b
  | Max, [ a; b ] -> max a b
  | Select, [ c; a; b ] -> if c <> 0 then a else b
  | Load, [ _ ] -> invalid_arg "Opcode.eval: Load is interpreted by the memory owner"
  | Store, [ _; _ ] -> invalid_arg "Opcode.eval: Store is interpreted by the memory owner"
  | (Add | Sub | Mul | Shl | Shrl | Shra | And | Or | Xor | Lt | Le | Eq | Ne
    | Gt | Ge | Min | Max | Select | Load | Store), _ -> bad ()
