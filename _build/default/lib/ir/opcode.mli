(** Operation set of the CGRA functional units.

    The paper's PEs are multi-operation FUs (Fig 1b): integer ALU, shifter,
    comparator, select, plus a load/store unit on memory tiles.  Constants
    are not operations — they live in the per-tile constant register file
    (CRF) and appear as immediate operands. *)

type t =
  | Add
  | Sub
  | Mul
  | Shl   (** logical shift left *)
  | Shrl  (** logical shift right *)
  | Shra  (** arithmetic shift right *)
  | And
  | Or
  | Xor
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge
  | Min
  | Max
  | Select  (** [Select c a b] is [a] when [c <> 0], else [b] *)
  | Load    (** one operand: address *)
  | Store   (** two operands: address, value; produces no result *)

val arity : t -> int
(** Number of operands the opcode consumes. *)

val has_result : t -> bool
(** [false] only for [Store]. *)

val needs_lsu : t -> bool
(** Load/store operations may only execute on tiles with a load-store
    unit. *)

val is_commutative : t -> bool

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}; used by the assembler's textual format. *)

val all : t list

val eval : t -> int list -> int
(** Reference semantics on 32-bit two's-complement values.  [eval Store]
    raises: stores are interpreted by the caller, which owns the memory.
    Raises [Invalid_argument] on an arity mismatch. *)

val wrap32 : int -> int
(** Truncate an OCaml int to signed 32-bit two's complement — the datapath
    width shared by the CGRA and the CPU baseline. *)
