let sym_uses_of_block (b : Cdfg.block) =
  let used = ref [] in
  let note = function Cdfg.Sym s -> used := s :: !used | Cdfg.Node _ | Cdfg.Imm _ -> () in
  Array.iter (fun n -> List.iter note n.Cdfg.operands) b.nodes;
  List.iter (fun (_, op) -> note op) b.live_out;
  (match b.terminator with
   | Cdfg.Branch (cond, _, _) -> note cond
   | Cdfg.Jump _ | Cdfg.Return -> ());
  !used

let successors (b : Cdfg.block) =
  match b.terminator with
  | Cdfg.Jump t -> [ t ]
  | Cdfg.Branch (_, t, e) -> [ t; e ]
  | Cdfg.Return -> []

let live_at_exit (c : Cdfg.t) =
  let nblocks = Array.length c.blocks in
  let nsyms = max 1 c.sym_count in
  let live_in = Array.init nblocks (fun _ -> Array.make nsyms false) in
  let live_out = Array.init nblocks (fun _ -> Array.make nsyms false) in
  let uses = Array.map sym_uses_of_block c.blocks in
  let defs =
    Array.map (fun b -> List.map fst b.Cdfg.live_out) c.blocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = nblocks - 1 downto 0 do
      let out = live_out.(bi) in
      List.iter
        (fun succ ->
          Array.iteri
            (fun s v ->
              if v && not out.(s) then begin
                out.(s) <- true;
                changed := true
              end)
            live_in.(succ))
        (successors c.blocks.(bi));
      let inb = live_in.(bi) in
      let update s v =
        if v && not inb.(s) then begin
          inb.(s) <- true;
          changed := true
        end
      in
      List.iter (fun s -> update s true) uses.(bi);
      Array.iteri
        (fun s v -> if not (List.mem s defs.(bi)) then update s v)
        out
    done
  done;
  live_out

let remove_dead_live_outs (c : Cdfg.t) =
  let live_out = live_at_exit c in
  let blocks =
    Array.mapi
      (fun bi b ->
        {
          b with
          Cdfg.live_out =
            List.filter (fun (s, _) -> live_out.(bi).(s)) b.Cdfg.live_out;
        })
      c.blocks
  in
  { c with blocks }

(* One round of dead-node elimination in a block; returns None when nothing
   was removed. *)
let dce_block (b : Cdfg.block) =
  let n = Array.length b.nodes in
  let used = Array.make n false in
  let note = function Cdfg.Node j -> used.(j) <- true | Cdfg.Sym _ | Cdfg.Imm _ -> () in
  Array.iter (fun nd -> List.iter note nd.Cdfg.operands) b.nodes;
  List.iter (fun (_, op) -> note op) b.live_out;
  (match b.terminator with
   | Cdfg.Branch (cond, _, _) -> note cond
   | Cdfg.Jump _ | Cdfg.Return -> ());
  let keep i = used.(i) || b.nodes.(i).Cdfg.opcode = Opcode.Store in
  if Array.for_all Fun.id (Array.init n keep) then None
  else begin
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if keep i then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let fix = function
      | Cdfg.Node j -> Cdfg.Node remap.(j)
      | (Cdfg.Sym _ | Cdfg.Imm _) as op -> op
    in
    let fix_dep deps =
      List.filter_map
        (fun j -> if remap.(j) >= 0 then Some remap.(j) else None)
        deps
    in
    let nodes =
      Array.of_list
        (List.filteri (fun i _ -> keep i) (Array.to_list b.nodes))
      |> Array.map (fun nd ->
             { nd with
               Cdfg.operands = List.map fix nd.Cdfg.operands;
               mem_dep = fix_dep nd.Cdfg.mem_dep })
    in
    Some
      {
        b with
        Cdfg.nodes;
        live_out = List.map (fun (s, op) -> (s, fix op)) b.live_out;
        terminator =
          (match b.terminator with
           | Cdfg.Branch (cond, t, e) -> Cdfg.Branch (fix cond, t, e)
           | (Cdfg.Jump _ | Cdfg.Return) as t -> t);
      }
  end

let remove_dead_nodes (c : Cdfg.t) =
  let rec fix b = match dce_block b with None -> b | Some b' -> fix b' in
  { c with blocks = Array.map fix c.blocks }

let optimize c =
  let rec go c n =
    if n = 0 then c
    else
      let c' = remove_dead_nodes (remove_dead_live_outs c) in
      if c' = c then c else go c' (n - 1)
  in
  go c 8

(* Resolve a block id through chains of trivial forwarding blocks.  A
   self-loop of trivial blocks cannot occur in validated CDFGs reachable
   from real code, but guard with a fuel counter anyway. *)
let simplify_cfg (c : Cdfg.t) =
  let nblocks = Array.length c.blocks in
  let trivial = Array.make nblocks None in
  Array.iteri
    (fun i b ->
      match b.Cdfg.nodes, b.Cdfg.live_out, b.Cdfg.terminator with
      | [||], [], Cdfg.Jump t when t <> i -> trivial.(i) <- Some t
      | _, _, _ -> ())
    c.blocks;
  let rec resolve fuel i =
    if fuel = 0 then i
    else match trivial.(i) with None -> i | Some t -> resolve (fuel - 1) t
  in
  let resolve i = resolve nblocks i in
  let entry = resolve c.entry in
  let blocks =
    Array.map
      (fun b ->
        { b with
          Cdfg.terminator =
            (match b.Cdfg.terminator with
             | Cdfg.Jump t -> Cdfg.Jump (resolve t)
             | Cdfg.Branch (cond, t, e) -> Cdfg.Branch (cond, resolve t, resolve e)
             | Cdfg.Return -> Cdfg.Return) })
      c.blocks
  in
  (* drop blocks no longer reachable and renumber *)
  let c' = { c with Cdfg.blocks; entry } in
  let g = Cdfg.cfg c' in
  let reach = Cgra_graph.Digraph.reachable_from g [ entry ] in
  let remap = Array.make nblocks (-1) in
  let next = ref 0 in
  Array.iteri
    (fun i r ->
      if r then begin
        remap.(i) <- !next;
        incr next
      end)
    reach;
  let kept =
    Array.of_list
      (List.filteri (fun i _ -> reach.(i)) (Array.to_list blocks))
  in
  let fix_term = function
    | Cdfg.Jump t -> Cdfg.Jump remap.(t)
    | Cdfg.Branch (cond, t, e) -> Cdfg.Branch (cond, remap.(t), remap.(e))
    | Cdfg.Return -> Cdfg.Return
  in
  {
    c with
    Cdfg.blocks =
      Array.map (fun b -> { b with Cdfg.terminator = fix_term b.Cdfg.terminator }) kept;
    entry = remap.(entry);
  }

(* ---- if-conversion --------------------------------------------------- *)

let shift_node offset (n : Cdfg.node) =
  let fix = function
    | Cdfg.Node j -> Cdfg.Node (j + offset)
    | (Cdfg.Sym _ | Cdfg.Imm _) as op -> op
  in
  {
    n with
    Cdfg.operands = List.map fix n.Cdfg.operands;
    mem_dep = List.map (fun j -> j + offset) n.Cdfg.mem_dep;
  }

(* Substitute symbol reads by the parent's live-out bindings: once an arm's
   code is inlined into the parent, reads of a symbol the parent assigns
   must see the assigned value, not the stale slot. *)
let subst_syms bindings (n : Cdfg.node) =
  let fix = function
    | Cdfg.Sym s as op ->
      (match List.assoc_opt s bindings with Some v -> v | None -> op)
    | (Cdfg.Node _ | Cdfg.Imm _) as op -> op
  in
  { n with Cdfg.operands = List.map fix n.Cdfg.operands }

let memory_free (b : Cdfg.block) =
  Array.for_all
    (fun n ->
      match n.Cdfg.opcode with
      | Opcode.Load | Opcode.Store -> false
      | _ -> true)
    b.Cdfg.nodes

let cfg_preds (c : Cdfg.t) =
  let preds = Array.make (Array.length c.blocks) 0 in
  Array.iter
    (fun b ->
      match b.Cdfg.terminator with
      | Cdfg.Jump t -> preds.(t) <- preds.(t) + 1
      | Cdfg.Branch (_, t, e) ->
        preds.(t) <- preds.(t) + 1;
        preds.(e) <- preds.(e) + 1
      | Cdfg.Return -> ())
    c.blocks;
  preds

let if_convert_once (c : Cdfg.t) =
  let g = cfg_preds c in
  let single_pred i = g.(i) = 1 in
  let changed = ref false in
  let blocks = Array.copy c.blocks in
  Array.iteri
    (fun pi p ->
      if not !changed then
        match p.Cdfg.terminator with
        | Cdfg.Branch (cond, ai, bi)
          when ai <> bi && ai <> pi && bi <> pi && single_pred ai
               && single_pred bi -> (
          let a = blocks.(ai) and b = blocks.(bi) in
          match a.Cdfg.terminator, b.Cdfg.terminator with
          | Cdfg.Jump ja, Cdfg.Jump jb
            when ja = jb && ja <> ai && ja <> bi && memory_free a
                 && memory_free b ->
            let np = Array.length p.Cdfg.nodes in
            let na = Array.length a.Cdfg.nodes in
            let bindings = p.Cdfg.live_out in
            (* the branch condition is evaluated after the parent's
               live-outs apply, so a symbol condition reads the assigned
               value *)
            let cond =
              match cond with
              | Cdfg.Sym s -> (
                match List.assoc_opt s bindings with
                | Some v -> v
                | None -> cond)
              | Cdfg.Node _ | Cdfg.Imm _ -> cond
            in
            let a_nodes =
              Array.map (fun n -> subst_syms bindings (shift_node np n)) a.Cdfg.nodes
            in
            let b_nodes =
              Array.map
                (fun n -> subst_syms bindings (shift_node (np + na) n))
                b.Cdfg.nodes
            in
            let fix_arm offset = function
              | Cdfg.Node j -> Cdfg.Node (j + offset)
              | Cdfg.Sym s as op ->
                (match List.assoc_opt s bindings with
                 | Some v -> v
                 | None -> op)
              | Cdfg.Imm _ as op -> op
            in
            let value_after arm_live offset s =
              match List.assoc_opt s arm_live with
              | Some v -> fix_arm offset v
              | None -> (
                match List.assoc_opt s bindings with
                | Some v -> v
                | None -> Cdfg.Sym s)
            in
            let syms_written =
              List.sort_uniq compare
                (List.map fst
                   (bindings @ a.Cdfg.live_out @ b.Cdfg.live_out))
            in
            let selects = ref [] in
            let next_node = ref (np + na + Array.length b.Cdfg.nodes) in
            let live_out =
              List.map
                (fun s ->
                  let va = value_after a.Cdfg.live_out np s in
                  let vb = value_after b.Cdfg.live_out (np + na) s in
                  if va = vb then (s, va)
                  else begin
                    let id = !next_node in
                    incr next_node;
                    selects :=
                      { Cdfg.opcode = Opcode.Select;
                        operands = [ cond; va; vb ];
                        mem_dep = [] }
                      :: !selects;
                    (s, Cdfg.Node id)
                  end)
                syms_written
            in
            blocks.(pi) <-
              {
                p with
                Cdfg.nodes =
                  Array.concat
                    [ p.Cdfg.nodes; a_nodes; b_nodes;
                      Array.of_list (List.rev !selects) ];
                live_out;
                terminator = Cdfg.Jump ja;
              };
            changed := true
          | _, _ -> ())
        | _ -> ())
    blocks;
  if !changed then Some { c with Cdfg.blocks } else None

let rec if_convert c =
  match if_convert_once c with
  | Some c' -> if_convert (simplify_cfg c')
  | None -> c
