(** Clean-up passes run between lowering and mapping.

    Mirrors what the original flow's LLVM frontend guarantees before the
    mapper sees the CDFG: no dead symbol assignments and no dead
    operations, so the instruction counts the context-memory constraint is
    checked against reflect useful work only. *)

val live_at_exit : Cdfg.t -> bool array array
(** [live_at_exit cdfg] is, per block, the set of symbols whose value may
    still be read after the block exits (classic backward may-liveness
    over the CFG). *)

val remove_dead_live_outs : Cdfg.t -> Cdfg.t
(** Drops [live_out] assignments to symbols that are dead at the block's
    exit. *)

val remove_dead_nodes : Cdfg.t -> Cdfg.t
(** Iteratively deletes operation nodes whose result is unused ([Store]
    nodes are always kept) and renumbers operands. *)

val optimize : Cdfg.t -> Cdfg.t
(** {!remove_dead_live_outs} then {!remove_dead_nodes}, to fixpoint. *)

val if_convert : Cdfg.t -> Cdfg.t
(** Classic CGRA if-conversion: a diamond [Branch (c, A, B)] whose arms
    have a single predecessor, contain no memory operations and join at
    the same block is flattened into straight-line code, with a [Select]
    per symbol the arms assign.  Both arms then execute unconditionally —
    profitable on a CGRA because every executed block costs a controller
    transition and its own context section.  Applied to fixpoint; opt-in
    like {!simplify_cfg}. *)

val simplify_cfg : Cdfg.t -> Cdfg.t
(** Skips trivial forwarding blocks — no operations, no live-outs, an
    unconditional [Jump] — by retargeting every edge through them.  Each
    block executed costs a controller transition cycle on the CGRA, so
    the lowering's join blocks are worth short-circuiting.  Unreachable
    blocks left behind are removed and the rest renumbered.  Not part of
    {!optimize}: callers opt in (the benchmark kernels keep their block
    structure so the paper's per-block figures stay comparable). *)
