lib/ir/opt.mli: Cdfg
