lib/ir/opcode.mli:
