lib/ir/cdfg.mli: Cgra_graph Format Opcode
