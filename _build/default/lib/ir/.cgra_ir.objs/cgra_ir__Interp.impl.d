lib/ir/interp.ml: Array Cdfg List Opcode
