lib/ir/builder.ml: Array Cdfg List Opcode Printf
