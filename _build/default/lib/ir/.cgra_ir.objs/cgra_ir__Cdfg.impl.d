lib/ir/cdfg.ml: Array Cgra_graph Format Hashtbl List Opcode Printf
