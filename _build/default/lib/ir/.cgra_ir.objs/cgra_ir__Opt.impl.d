lib/ir/opt.ml: Array Cdfg Cgra_graph Fun List Opcode
