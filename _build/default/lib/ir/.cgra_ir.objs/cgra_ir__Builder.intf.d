lib/ir/builder.mli: Cdfg Opcode
