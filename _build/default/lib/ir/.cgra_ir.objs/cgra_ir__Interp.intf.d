lib/ir/interp.mli: Cdfg
