lib/ir/opcode.ml: List Printf
