module FC = Cgra_core.Flow_config
module K = Cgra_kernels.Kernel_def

type flow_kind = Basic | With_acmap | With_ecmap | Full

let flow_kinds = [ Basic; With_acmap; With_ecmap; Full ]

let flow_label = function
  | Basic -> "basic"
  | With_acmap -> "basic+ACMAP"
  | With_ecmap -> "basic+ACMAP+ECMAP"
  | Full -> "basic+ACMAP+ECMAP+CAB"

let flow_config = function
  | Basic -> FC.basic
  | With_acmap -> FC.with_acmap
  | With_ecmap -> FC.with_acmap_ecmap
  | Full -> FC.context_aware

type run = {
  mapping : Cgra_core.Mapping.t;
  sim : Cgra_sim.Simulator.result;
  cycles : int;
  energy : Cgra_power.Energy.breakdown;
  compile_seconds : float;
}

type cell =
  | Mapped of run
  | Unmappable of { reason : string; compile_seconds : float }

let cache : (string * Cgra_arch.Config.name * flow_kind, cell) Hashtbl.t =
  Hashtbl.create 64

let run_of k config flow =
  let key = (k.K.slug, config, flow) in
  match Hashtbl.find_opt cache key with
  | Some cell -> cell
  | None ->
    let cdfg = K.cdfg k in
    let cgra = Cgra_arch.Config.cgra config in
    let t0 = Unix.gettimeofday () in
    let cell =
      match Cgra_core.Flow.run ~config:(flow_config flow) cgra cdfg with
      | Error f ->
        Unmappable
          { reason = f.Cgra_core.Flow.reason;
            compile_seconds = Unix.gettimeofday () -. t0 }
      | Ok (mapping, _) -> (
        let compile_seconds = Unix.gettimeofday () -. t0 in
        match Cgra_asm.Assemble.assemble mapping with
        | exception Cgra_asm.Assemble.Assembly_error e ->
          (* register-file pressure the search does not model; report as
             unmappable rather than crash the harness *)
          Unmappable { reason = "assembly: " ^ e; compile_seconds }
        | program ->
        let mem = K.fresh_mem k in
        let sim = Cgra_sim.Simulator.run program ~mem in
        if mem <> K.run_golden k then
          failwith
            (Printf.sprintf
               "harness: %s on %s (%s) simulated to a wrong memory image"
               k.K.name
               (Cgra_arch.Config.to_string config)
               (flow_label flow));
        let energy = Cgra_power.Energy.cgra cgra sim in
        Mapped
          { mapping; sim; cycles = sim.Cgra_sim.Simulator.cycles; energy;
            compile_seconds })
    in
    Hashtbl.add cache key cell;
    cell

type cpu_run = {
  cpu_sim : Cgra_cpu.Cpu_sim.result;
  cpu_energy : Cgra_power.Energy.breakdown;
}

let cpu_cache : (string, cpu_run) Hashtbl.t = Hashtbl.create 8

let cpu_of k =
  match Hashtbl.find_opt cpu_cache k.K.slug with
  | Some r -> r
  | None ->
    let prog = Cgra_cpu.Codegen.compile (K.cdfg k) in
    let mem = K.fresh_mem k in
    let cpu_sim = Cgra_cpu.Cpu_sim.run prog ~mem in
    if mem <> K.run_golden k then
      failwith (Printf.sprintf "harness: CPU run of %s is wrong" k.K.name);
    let r = { cpu_sim; cpu_energy = Cgra_power.Energy.cpu cpu_sim } in
    Hashtbl.add cpu_cache k.K.slug r;
    r

let compile_seconds_of = function
  | Mapped r -> r.compile_seconds
  | Unmappable u -> u.compile_seconds

let kernels = Cgra_kernels.Kernels.all
