lib/exp/figures.mli:
