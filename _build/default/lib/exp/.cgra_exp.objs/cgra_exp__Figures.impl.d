lib/exp/figures.ml: Array Cgra_arch Cgra_core Cgra_cpu Cgra_ir Cgra_kernels Cgra_power Cgra_util Float List Option Printf Runner String
