lib/exp/runner.ml: Cgra_arch Cgra_asm Cgra_core Cgra_cpu Cgra_kernels Cgra_power Cgra_sim Hashtbl Printf Unix
