lib/exp/runner.mli: Cgra_arch Cgra_core Cgra_cpu Cgra_kernels Cgra_power Cgra_sim
