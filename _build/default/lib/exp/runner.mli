(** Shared machinery of the experiment harness: runs (kernel x
    configuration x flow) cells through the full tool-chain — mapping,
    assembly, cycle-level simulation with functional check against the
    golden model — and memoizes the results so every figure reuses them. *)

type flow_kind = Basic | With_acmap | With_ecmap | Full

val flow_kinds : flow_kind list
val flow_label : flow_kind -> string
val flow_config : flow_kind -> Cgra_core.Flow_config.t

type run = {
  mapping : Cgra_core.Mapping.t;
  sim : Cgra_sim.Simulator.result;
  cycles : int;
  energy : Cgra_power.Energy.breakdown;
  compile_seconds : float;
}

type cell =
  | Mapped of run
  | Unmappable of { reason : string; compile_seconds : float }

val run_of : Cgra_kernels.Kernel_def.t -> Cgra_arch.Config.name -> flow_kind -> cell
(** Memoized.  Raises [Failure] if a produced mapping simulates to a
    memory image different from the golden model — that would be a bug,
    and the harness refuses to report numbers from it. *)

type cpu_run = {
  cpu_sim : Cgra_cpu.Cpu_sim.result;
  cpu_energy : Cgra_power.Energy.breakdown;
}

val cpu_of : Cgra_kernels.Kernel_def.t -> cpu_run
(** Memoized; also checked against the golden model. *)

val compile_seconds_of : cell -> float
val kernels : Cgra_kernels.Kernel_def.t list
