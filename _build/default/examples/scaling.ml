(* Scaling study: the tool-chain beyond the paper's 4x4 array.

     dune exec examples/scaling.exe

   The paper evaluates a 4x4 CGRA; the architecture model, the mapper and
   the simulator are size-generic, so this example maps the kernel suite
   onto 4x4, 4x8 and 8x8 tori (first two rows load-store, as in the
   paper) with 32-word context memories everywhere, and reports latency —
   showing where more tiles help (wide data-parallel kernels) and where
   they cannot (serial recurrences like the DC filter). *)

module K = Cgra_kernels.Kernel_def

let arrays =
  [ ("4x4/32", Cgra_arch.Cgra.make ~rows:4 ~cols:4 ~cm_of_tile:(fun _ -> 32) ());
    ("4x8/32", Cgra_arch.Cgra.make ~rows:4 ~cols:8 ~cm_of_tile:(fun _ -> 32) ());
    ("8x8/32", Cgra_arch.Cgra.make ~rows:8 ~cols:8 ~cm_of_tile:(fun _ -> 32) ()) ]

let () =
  Format.printf "%-14s %10s %10s %10s@." "kernel" "4x4/32" "4x8/32" "8x8/32";
  List.iter
    (fun k ->
      Format.printf "%-14s" k.K.name;
      List.iter
        (fun (_, cgra) ->
          match
            Cgra_core.Flow.run ~config:Cgra_core.Flow_config.context_aware
              cgra (K.cdfg k)
          with
          | Error _ -> Format.printf " %10s" "-"
          | Ok (m, _) ->
            let prog = Cgra_asm.Assemble.assemble m in
            let mem = K.fresh_mem k in
            let r = Cgra_sim.Simulator.run prog ~mem in
            assert (mem = K.run_golden k);
            Format.printf " %9dc" r.Cgra_sim.Simulator.cycles)
        arrays;
      Format.printf "@.")
    Cgra_kernels.Kernels.all;
  Format.printf
    "@.('-' = does not fit 32-word context memories, exactly as on HOM32.)@.";
  Format.printf
    "Only the kernel with spare instruction-level parallelism (MatM)@.";
  Format.printf
    "profits from more tiles; the memory-bound filters and the serial DC@.";
  Format.printf
    "recurrence do not — the paper's 4x4 array is well matched to this@.";
  Format.printf
    "kernel class.  Every mapping still verifies against the golden model.@."
