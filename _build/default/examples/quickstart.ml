(* Quickstart: write a kernel, map it onto a CGRA, run it.

     dune exec examples/quickstart.exe

   This walks the whole public API in one page: the kernel-language
   frontend, the context-memory aware mapping flow, the assembler and the
   cycle-level simulator. *)

let source =
  {|
kernel saxpy {
  const n = 16;
  arr x @ 0;
  arr y @ 16;
  arr out @ 32;
  var i;
  i = 0;
  while (i < n) {
    out[i] = 3 * x[i] + y[i];
    i = i + 1;
  }
}
|}

let () =
  (* 1. Compile the kernel to a CDFG (control-data-flow graph). *)
  let cdfg = Cgra_lang.Compile.compile_exn source in
  Format.printf "compiled %s: %d blocks, %d operations@."
    cdfg.Cgra_ir.Cdfg.kernel_name
    (Cgra_ir.Cdfg.block_count cdfg)
    (Cgra_ir.Cdfg.node_count cdfg);

  (* 2. Pick a CGRA: the paper's 4x4 array with the heterogeneous HET2
     context memories (half the memory of the homogeneous 64-word design). *)
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HET2 in

  (* 3. Map with the full context-memory aware flow (weighted traversal +
     ACMAP + ECMAP + CAB). *)
  let mapping =
    match
      Cgra_core.Flow.run ~config:Cgra_core.Flow_config.context_aware cgra cdfg
    with
    | Ok (m, _) -> m
    | Error f -> failwith ("mapping failed: " ^ f.Cgra_core.Flow.reason)
  in
  Format.printf "mapped: %d ops + %d moves + %d pnops, fits = %b@."
    (Cgra_core.Mapping.total_ops mapping)
    (Cgra_core.Mapping.total_moves mapping)
    (Cgra_core.Mapping.total_pnops mapping)
    (Cgra_core.Mapping.fits mapping);

  (* 4. Assemble into per-tile context programs and simulate. *)
  let program = Cgra_asm.Assemble.assemble mapping in
  let mem = Array.make 48 0 in
  for i = 0 to 15 do
    mem.(i) <- i;
    mem.(16 + i) <- 100 - i
  done;
  let expected = Array.init 16 (fun i -> (3 * mem.(i)) + mem.(16 + i)) in
  let result = Cgra_sim.Simulator.run program ~mem in
  Format.printf "simulated %d cycles (%d memory stalls)@."
    result.Cgra_sim.Simulator.cycles result.Cgra_sim.Simulator.stall_cycles;

  (* 5. Check the answer. *)
  let ok = Array.sub mem 32 16 = expected in
  Format.printf "out[0..3] = %d %d %d %d  -> %s@." mem.(32) mem.(33) mem.(34)
    mem.(35)
    (if ok then "CORRECT" else "WRONG");
  if not ok then exit 1
