(* Bring your own kernel: a clipping cross-correlator, end to end.

     dune exec examples/custom_kernel.exe

   Shows the workflow a user follows for a kernel that is not part of the
   paper's suite: write the source, build a golden model in plain OCaml,
   cross-check the reference interpreter, then compare the CGRA against
   the CPU baseline on both cycles and energy. *)

let n = 24
let taps = 4

let source =
  Printf.sprintf
    {|
kernel xcorr {
  const n = %d;
  arr sig @ 0;
  arr ref @ 64;
  arr out @ 96;
  var i, acc;
  i = 0;
  while (i < n) {
    acc = (sig[i] * ref[0] + sig[i + 1] * ref[1])
        + (sig[i + 2] * ref[2] + sig[i + 3] * ref[3]);
    # clip to a signed 12-bit range with min/max intrinsics
    out[i] = max(min(acc, 2047), 0 - 2048);
    i = i + 1;
  }
}
|}
    n

let golden mem =
  let mem = Array.copy mem in
  for i = 0 to n - 1 do
    let acc = ref 0 in
    for t = 0 to taps - 1 do
      acc := !acc + (mem.(i + t) * mem.(64 + t))
    done;
    mem.(96 + i) <- max (min !acc 2047) (-2048)
  done;
  mem

let init_mem () =
  let mem = Array.make 128 0 in
  Cgra_kernels.Inputs.fill mem ~off:0 ~len:(n + taps) ~seed:11 ~range:100;
  Cgra_kernels.Inputs.fill mem ~off:64 ~len:taps ~seed:12 ~range:31;
  mem

let () =
  let cdfg = Cgra_lang.Compile.compile_exn source in
  (* golden cross-check through the reference interpreter first *)
  let mem = init_mem () in
  ignore (Cgra_ir.Interp.run cdfg ~mem);
  assert (mem = golden (init_mem ()));
  Format.printf "interpreter matches the OCaml golden model@.";

  (* CGRA side *)
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HET1 in
  let mapping =
    match
      Cgra_core.Flow.run ~config:Cgra_core.Flow_config.context_aware cgra cdfg
    with
    | Ok (m, _) -> m
    | Error f -> failwith f.Cgra_core.Flow.reason
  in
  let program = Cgra_asm.Assemble.assemble mapping in
  let mem = init_mem () in
  let cgra_run = Cgra_sim.Simulator.run program ~mem in
  assert (mem = golden (init_mem ()));
  let cgra_energy = Cgra_power.Energy.cgra cgra cgra_run in

  (* CPU side *)
  let cpu_prog = Cgra_cpu.Codegen.compile cdfg in
  let mem = init_mem () in
  let cpu_run = Cgra_cpu.Cpu_sim.run cpu_prog ~mem in
  assert (mem = golden (init_mem ()));
  let cpu_energy = Cgra_power.Energy.cpu cpu_run in

  Format.printf "CGRA (HET1, aware flow): %5d cycles, %.3f uJ@."
    cgra_run.Cgra_sim.Simulator.cycles
    (Cgra_power.Energy.to_uj cgra_energy.Cgra_power.Energy.total_pj);
  Format.printf "CPU  (or1k-class):       %5d cycles, %.3f uJ@."
    cpu_run.Cgra_cpu.Cpu_sim.cycles
    (Cgra_power.Energy.to_uj cpu_energy.Cgra_power.Energy.total_pj);
  Format.printf "speed-up %.1fx, energy gain %.1fx@."
    (float_of_int cpu_run.Cgra_cpu.Cpu_sim.cycles
    /. float_of_int cgra_run.Cgra_sim.Simulator.cycles)
    (cpu_energy.Cgra_power.Energy.total_pj
    /. cgra_energy.Cgra_power.Energy.total_pj)
