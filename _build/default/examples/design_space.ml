(* Design-space exploration: minimise the context memory for a kernel set.

     dune exec examples/design_space.exe

   The paper's motivation: the context memory dominates PE area, so a
   designer wants the smallest configuration that still runs the target
   application domain.  This example sweeps the four Table I
   configurations (plus a deliberately undersized one) for every bundled
   kernel with the context-aware flow, and reports where the mapper finds
   solutions and at what latency/energy. *)

module Config = Cgra_arch.Config
module K = Cgra_kernels.Kernel_def

let tiny_cgra =
  (* an aggressive design point: 32-word CMs on the load-store rows,
     8-word CMs everywhere else (total 320) *)
  Cgra_arch.Cgra.make ~cm_of_tile:(fun id -> if id < 8 then 32 else 8) ()

let targets =
  List.map (fun c -> (Config.to_string c, Config.cgra c)) Config.all
  @ [ ("TINY", tiny_cgra) ]

let () =
  Format.printf "%-14s" "kernel";
  List.iter (fun (name, _) -> Format.printf " %12s" name) targets;
  Format.printf "@.";
  List.iter
    (fun k ->
      Format.printf "%-14s" k.K.name;
      List.iter
        (fun (_, cgra) ->
          match
            Cgra_core.Flow.run ~config:Cgra_core.Flow_config.context_aware
              cgra (K.cdfg k)
          with
          | Error _ -> Format.printf " %12s" "-"
          | Ok (m, _) ->
            let prog = Cgra_asm.Assemble.assemble m in
            let mem = K.fresh_mem k in
            let r = Cgra_sim.Simulator.run prog ~mem in
            assert (mem = K.run_golden k);
            let e = Cgra_power.Energy.cgra cgra r in
            Format.printf " %6dc/%3.0fnJ" r.Cgra_sim.Simulator.cycles
              (e.Cgra_power.Energy.total_pj /. 1000.0))
        targets;
      Format.printf "@.")
    Cgra_kernels.Kernels.all;
  Format.printf
    "@.('-' = the context-aware flow found no mapping for that design point)@.";
  Format.printf
    "Reading: HET2 halves HOM64's context memory yet still runs everything;@.";
  Format.printf
    "the TINY point shows where the application domain stops fitting.@."
