examples/energy_report.mli:
