examples/scaling.ml: Cgra_arch Cgra_asm Cgra_core Cgra_kernels Cgra_sim Format List
