examples/scaling.mli:
