examples/quickstart.mli:
