examples/design_space.ml: Cgra_arch Cgra_asm Cgra_core Cgra_kernels Cgra_power Cgra_sim Format List
