examples/custom_kernel.ml: Array Cgra_arch Cgra_asm Cgra_core Cgra_cpu Cgra_ir Cgra_kernels Cgra_lang Cgra_power Cgra_sim Format Printf
