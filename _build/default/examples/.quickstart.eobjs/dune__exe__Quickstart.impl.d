examples/quickstart.ml: Array Cgra_arch Cgra_asm Cgra_core Cgra_ir Cgra_lang Cgra_sim Format
