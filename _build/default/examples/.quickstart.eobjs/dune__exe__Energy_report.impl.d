examples/energy_report.ml: Array Cgra_arch Cgra_asm Cgra_core Cgra_cpu Cgra_kernels Cgra_power Cgra_sim Format String Sys
