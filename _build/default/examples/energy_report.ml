(* Energy anatomy of a mapping: where the picojoules go.

     dune exec examples/energy_report.exe [kernel-slug]

   Breaks a kernel's CGRA energy into context-memory fetches, compute,
   routing moves, data memory and leakage, for the basic mapping on HOM64
   against the context-aware mapping on HET1/HET2 — making the paper's
   mechanism visible: the heterogeneous configurations win on fetch and
   leakage while the compute and data-memory terms stay put. *)

module Config = Cgra_arch.Config
module E = Cgra_power.Energy
module K = Cgra_kernels.Kernel_def

let report k config flow label =
  let cgra = Config.cgra config in
  match Cgra_core.Flow.run ~config:flow cgra (K.cdfg k) with
  | Error f -> Format.printf "%-22s no mapping (%s)@." label f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    let prog = Cgra_asm.Assemble.assemble m in
    let mem = K.fresh_mem k in
    let r = Cgra_sim.Simulator.run prog ~mem in
    assert (mem = K.run_golden k);
    let e = E.cgra cgra r in
    Format.printf
      "%-22s %6d cycles | fetch %6.0f  compute %6.0f  moves %5.0f  dmem %6.0f  leak %6.0f | total %7.0f pJ@."
      label r.Cgra_sim.Simulator.cycles e.E.fetch_pj e.E.compute_pj e.E.moves_pj
      e.E.memory_pj e.E.leakage_pj e.E.total_pj

let () =
  let slug = if Array.length Sys.argv > 1 then Sys.argv.(1) else "convolution" in
  match Cgra_kernels.Kernels.by_slug slug with
  | None ->
    Format.printf "unknown kernel %s; available: %s@." slug
      (String.concat ", " Cgra_kernels.Kernels.slugs);
    exit 1
  | Some k ->
    Format.printf "energy anatomy of %s@." k.K.name;
    report k Config.HOM64 Cgra_core.Flow_config.basic "HOM64 / basic";
    report k Config.HOM64 Cgra_core.Flow_config.context_aware "HOM64 / aware";
    report k Config.HET1 Cgra_core.Flow_config.context_aware "HET1  / aware";
    report k Config.HET2 Cgra_core.Flow_config.context_aware "HET2  / aware";
    let cpu = Cgra_cpu.Cpu_sim.run (Cgra_cpu.Codegen.compile (K.cdfg k)) ~mem:(K.fresh_mem k) in
    let e = E.cpu cpu in
    Format.printf
      "%-22s %6d cycles | fetch %6.0f  compute %6.0f  moves %5s  dmem %6.0f  leak %6.0f | total %7.0f pJ@."
      "CPU   / -O3-class" cpu.Cgra_cpu.Cpu_sim.cycles e.E.fetch_pj e.E.compute_pj
      "-" e.E.memory_pj e.E.leakage_pj e.E.total_pj
