(* Tests for the CGRA model, Table I configurations and the ISA. *)

module Cgra = Cgra_arch.Cgra
module Config = Cgra_arch.Config
module Isa = Cgra_arch.Isa
module Op = Cgra_ir.Opcode

let grid = Config.cgra Config.HOM64

let test_table1_totals () =
  Alcotest.(check int) "HOM64" 1024 (Config.total_cm Config.HOM64);
  Alcotest.(check int) "HOM32" 512 (Config.total_cm Config.HOM32);
  Alcotest.(check int) "HET1" 576 (Config.total_cm Config.HET1);
  Alcotest.(check int) "HET2" 512 (Config.total_cm Config.HET2)

let test_het_layout () =
  (* paper tiles are 1-based: tiles 1-4 CM64; 5-8, 13-16 CM32; 9-12 CM16 *)
  Alcotest.(check int) "HET1 tile 1" 64 (Config.cm_of_tile Config.HET1 0);
  Alcotest.(check int) "HET1 tile 5" 32 (Config.cm_of_tile Config.HET1 4);
  Alcotest.(check int) "HET1 tile 9" 16 (Config.cm_of_tile Config.HET1 8);
  Alcotest.(check int) "HET1 tile 13" 32 (Config.cm_of_tile Config.HET1 12);
  Alcotest.(check int) "HET2 tile 13" 16 (Config.cm_of_tile Config.HET2 12)

let test_lsu_tiles () =
  Alcotest.(check (list int)) "first two rows" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Cgra.lsu_tiles grid);
  Alcotest.(check bool) "load on LSU tile" true (Cgra.can_execute grid 3 Op.Load);
  Alcotest.(check bool) "no store on ALU tile" false
    (Cgra.can_execute grid 12 Op.Store);
  Alcotest.(check bool) "alu anywhere" true (Cgra.can_execute grid 12 Op.Mul)

let test_neighbors_torus () =
  (* tile 0 is a corner: torus wrap gives 4 distinct neighbours on 4x4 *)
  Alcotest.(check int) "four neighbours" 4 (List.length (Cgra.neighbors grid 0));
  Alcotest.(check bool) "wraps to tile 12" true
    (List.mem 12 (Cgra.neighbors grid 0));
  Alcotest.(check bool) "wraps to tile 3" true (List.mem 3 (Cgra.neighbors grid 0))

let test_distance () =
  Alcotest.(check int) "self" 0 (Cgra.distance grid 5 5);
  Alcotest.(check int) "adjacent" 1 (Cgra.distance grid 0 1);
  Alcotest.(check int) "wrap column" 1 (Cgra.distance grid 0 3);
  Alcotest.(check int) "wrap row" 1 (Cgra.distance grid 0 12);
  Alcotest.(check int) "max on 4x4 torus" 4 (Cgra.distance grid 0 10)

let arb_tile_pair =
  QCheck.make QCheck.Gen.(pair (int_bound 15) (int_bound 15))

let prop_route_matches_distance =
  QCheck.Test.make ~name:"route length equals torus distance" ~count:300
    arb_tile_pair (fun (src, dst) ->
      let path = Cgra.route grid ~src ~dst in
      List.length path = Cgra.distance grid src dst)

let prop_route_adjacent_hops =
  QCheck.Test.make ~name:"route hops are adjacent and end at dst" ~count:300
    arb_tile_pair (fun (src, dst) ->
      let path = Cgra.route grid ~src ~dst in
      let rec ok prev = function
        | [] -> prev = dst
        | hop :: rest -> Cgra.distance grid prev hop = 1 && ok hop rest
      in
      ok src path)

let arb_instr =
  let open QCheck.Gen in
  let src =
    oneof
      [ map (fun i -> Isa.Rf i) (int_bound 31);
        map (fun i -> Isa.Crf i) (int_bound 31);
        map2 (fun t i -> Isa.Nbr (t, i)) (int_bound 15) (int_bound 31) ]
  in
  let opcode = oneofl Cgra_ir.Opcode.all in
  let iop =
    opcode >>= fun op ->
    list_size (int_range 0 3) src >>= fun srcs ->
    opt (int_bound 31) >>= fun dst ->
    bool >|= fun set_cond -> Isa.Iop { opcode = op; srcs; dst; set_cond }
  in
  let imov =
    map3
      (fun t s d -> Isa.Imov { from_tile = t; from_slot = s; dst = d })
      (int_bound 15) (int_bound 31) (int_bound 31)
  in
  let icopy =
    map3
      (fun s d c -> Isa.Icopy { src = s; dst = d; set_cond = c })
      src (int_bound 31) bool
  in
  let ipnop = map (fun n -> Isa.Ipnop (n + 1)) (int_bound 1000) in
  QCheck.make (oneof [ iop; imov; icopy; ipnop ])

let prop_encode_decode =
  QCheck.Test.make ~name:"ISA encode/decode roundtrip" ~count:500 arb_instr
    (fun instr -> Isa.decode (Isa.encode instr) = Ok instr)

let test_isa_durations () =
  Alcotest.(check int) "pnop duration" 9 (Isa.duration (Isa.Ipnop 9));
  Alcotest.(check int) "mov duration" 1
    (Isa.duration (Isa.Imov { from_tile = 0; from_slot = 1; dst = 2 }));
  Alcotest.(check bool) "is_pnop" true (Isa.is_pnop (Isa.Ipnop 1))

let test_isa_strings () =
  Alcotest.(check string) "op" "add r3, r1, c0"
    (Isa.to_string
       (Isa.Iop { opcode = Op.Add; srcs = [ Isa.Rf 1; Isa.Crf 0 ]; dst = Some 3; set_cond = false }));
  Alcotest.(check string) "mov" "mov r2, T05.r7"
    (Isa.to_string (Isa.Imov { from_tile = 5; from_slot = 7; dst = 2 }))

let test_decode_bad_pnop () =
  match Isa.decode (Isa.encode (Isa.Ipnop 1)) with
  | Ok (Isa.Ipnop 1) ->
    (* corrupt the length field to zero *)
    let w = Int64.logand (Isa.encode (Isa.Ipnop 1)) 0xC000000000000000L in
    (match Isa.decode w with
     | Error _ -> ()
     | Ok _ -> Alcotest.fail "zero-length pnop accepted")
  | _ -> Alcotest.fail "pnop roundtrip broken"

let test_custom_grid () =
  let c = Cgra.make ~rows:3 ~cols:5 ~lsu_rows:1 ~cm_of_tile:(fun _ -> 8) () in
  Alcotest.(check int) "15 tiles" 15 (Cgra.tile_count c);
  Alcotest.(check int) "5 LSU tiles" 5 (List.length (Cgra.lsu_tiles c));
  Alcotest.(check int) "torus distance" 1 (Cgra.distance c 0 10)

let suite =
  [ ( "arch",
      [ Alcotest.test_case "Table I totals" `Quick test_table1_totals;
        Alcotest.test_case "HET layouts" `Quick test_het_layout;
        Alcotest.test_case "LSU placement" `Quick test_lsu_tiles;
        Alcotest.test_case "torus neighbours" `Quick test_neighbors_torus;
        Alcotest.test_case "torus distance" `Quick test_distance;
        QCheck_alcotest.to_alcotest prop_route_matches_distance;
        QCheck_alcotest.to_alcotest prop_route_adjacent_hops;
        QCheck_alcotest.to_alcotest prop_encode_decode;
        Alcotest.test_case "ISA durations" `Quick test_isa_durations;
        Alcotest.test_case "ISA rendering" `Quick test_isa_strings;
        Alcotest.test_case "decode rejects bad pnop" `Quick test_decode_bad_pnop;
        Alcotest.test_case "custom grid" `Quick test_custom_grid ] ) ]
