(* Differential fuzzing of the whole tool-chain.

   Random loop kernels are built directly as CDFGs and executed three
   ways: the reference interpreter, the CGRA pipeline (map -> assemble ->
   cycle-level simulation) and the CPU baseline.  All three memory images
   must agree — any divergence is a bug in the mapper, the register
   allocator, the simulators or the cost bookkeeping.

   The generated programs: a loop over [iters] iterations whose body is a
   random DFG over the loop counter, loads from a read-only input region
   and earlier results, ending with stores to iteration-distinct
   addresses (so no in-block aliasing arises and scheduling freedom is
   maximal). *)

module B = Cgra_ir.Builder
module Cdfg = Cgra_ir.Cdfg
module Op = Cgra_ir.Opcode
module Config = Cgra_arch.Config

type spec = {
  seed : int;
  n_ops : int;  (* random ALU nodes in the body *)
  n_stores : int;
  iters : int;
}

let mem_words = 80
let input_words = 16 (* region [0, 16) is read-only input *)
let out_base = 16 (* stores land in [16, 16 + 8*iters) *)

let safe_ops =
  [| Op.Add; Op.Sub; Op.Mul; Op.Min; Op.Max; Op.And; Op.Or; Op.Xor; Op.Lt;
     Op.Ge |]

let build { seed; n_ops; n_stores; iters } =
  let rng = Cgra_util.Rng.create seed in
  let b = B.create (Printf.sprintf "fuzz%d" seed) in
  let i = B.fresh_sym b "i" in
  let acc = B.fresh_sym b "acc" in
  let pre = B.add_block b "pre" in
  let body = B.add_block b "body" in
  let exit_ = B.add_block b "exit" in
  B.set_live_out b pre i (Cdfg.Imm 0);
  B.set_live_out b pre acc (Cdfg.Imm 1);
  B.set_terminator b pre (Cdfg.Jump (B.block_id body));
  (* the body: a few loads from the input region, then random ALU nodes *)
  let values = ref [ Cdfg.Sym i; Cdfg.Sym acc ] in
  let pick_value () = Cgra_util.Rng.pick rng !values in
  for _ = 1 to 2 do
    let addr = Cgra_util.Rng.int rng input_words in
    let v = B.add_node b body Op.Load [ Cdfg.Imm addr ] in
    values := v :: !values
  done;
  for _ = 1 to n_ops do
    let op = safe_ops.(Cgra_util.Rng.int rng (Array.length safe_ops)) in
    let x = pick_value () and y = pick_value () in
    (* keep magnitudes bounded so multiplies do not overflow repeatedly *)
    let y = if op = Op.Mul then Cdfg.Imm (1 + Cgra_util.Rng.int rng 7) else y in
    let v = B.add_node b body op [ x; y ] in
    values := v :: !values
  done;
  (* stores to iteration-distinct addresses: out_base + 8*i + slot *)
  let i8 = B.add_node b body Op.Shl [ Cdfg.Sym i; Cdfg.Imm 3 ] in
  for s = 0 to n_stores - 1 do
    let addr = B.add_node b body Op.Add [ i8; Cdfg.Imm (out_base + s) ] in
    let _ = B.add_node b body Op.Store [ addr; pick_value () ] in
    ()
  done;
  let i1 = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 1 ] in
  let c = B.add_node b body Op.Lt [ i1; Cdfg.Imm iters ] in
  B.set_live_out b body i i1;
  B.set_live_out b body acc (pick_value ());
  B.set_terminator b body (Cdfg.Branch (c, B.block_id body, B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  B.finish b

let init_mem seed =
  let mem = Array.make mem_words 0 in
  let rng = Cgra_util.Rng.create (seed * 77) in
  for k = 0 to input_words - 1 do
    mem.(k) <- Cgra_util.Rng.int rng 200 - 100
  done;
  mem

let run_interp cdfg seed =
  let mem = init_mem seed in
  ignore (Cgra_ir.Interp.run cdfg ~mem);
  mem

let run_cgra cdfg seed config flow =
  match Cgra_core.Flow.run ~config:flow (Config.cgra config) cdfg with
  | Error f -> Error ("map: " ^ f.Cgra_core.Flow.reason)
  | Ok (m, _) -> (
    match Cgra_asm.Assemble.assemble m with
    | exception Cgra_asm.Assemble.Assembly_error e -> Error ("asm: " ^ e)
    | prog -> (
      let mem = init_mem seed in
      match Cgra_sim.Simulator.run prog ~mem with
      | exception Cgra_sim.Simulator.Sim_error e -> Error ("sim: " ^ e)
      | _ -> Ok mem))

let run_cpu cdfg seed =
  let prog = Cgra_cpu.Codegen.compile cdfg in
  let mem = init_mem seed in
  ignore (Cgra_cpu.Cpu_sim.run prog ~mem);
  mem

let arb_spec =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "seed=%d ops=%d stores=%d iters=%d" s.seed s.n_ops
        s.n_stores s.iters)
    QCheck.Gen.(
      map4
        (fun seed n_ops n_stores iters -> { seed; n_ops; n_stores; iters })
        (int_bound 100_000) (int_range 3 14) (int_range 1 4) (int_range 1 5))

let prop_interp_vs_cgra =
  QCheck.Test.make ~name:"random kernels: interp = CGRA (basic@HOM64)"
    ~count:20 arb_spec (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      let golden = run_interp cdfg spec.seed in
      match run_cgra cdfg spec.seed Config.HOM64 Cgra_core.Flow_config.basic with
      | Ok mem -> mem = golden
      | Error e -> QCheck.Test.fail_report e)

let prop_interp_vs_cgra_aware =
  QCheck.Test.make ~name:"random kernels: interp = CGRA (aware@HET2)"
    ~count:12 arb_spec (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      let golden = run_interp cdfg spec.seed in
      match
        run_cgra cdfg spec.seed Config.HET2 Cgra_core.Flow_config.context_aware
      with
      | Ok mem -> mem = golden
      | Error e -> QCheck.Test.fail_report e)

let prop_interp_vs_cpu =
  QCheck.Test.make ~name:"random kernels: interp = CPU" ~count:40 arb_spec
    (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      run_interp cdfg spec.seed = run_cpu cdfg spec.seed)

let prop_opt_preserves =
  QCheck.Test.make ~name:"random kernels: optimize preserves semantics"
    ~count:60 arb_spec (fun spec ->
      let raw = build spec in
      run_interp raw spec.seed = run_interp (Cgra_ir.Opt.optimize raw) spec.seed)

let suite =
  [ ( "fuzz",
      [ QCheck_alcotest.to_alcotest prop_interp_vs_cgra;
        QCheck_alcotest.to_alcotest prop_interp_vs_cgra_aware;
        QCheck_alcotest.to_alcotest prop_interp_vs_cpu;
        QCheck_alcotest.to_alcotest prop_opt_preserves ] ) ]
