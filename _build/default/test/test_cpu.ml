(* Tests for the or1k-like CPU baseline: code generation and simulation. *)

module CG = Cgra_cpu.Codegen
module CS = Cgra_cpu.Cpu_sim
module Isa = Cgra_cpu.Cpu_isa
module K = Cgra_kernels.Kernel_def
module Cdfg = Cgra_ir.Cdfg
module Op = Cgra_ir.Opcode

let test_all_kernels_golden () =
  List.iter
    (fun k ->
      let prog = CG.compile (K.cdfg k) in
      let mem = K.fresh_mem k in
      let r = CS.run prog ~mem in
      Alcotest.(check bool) (k.K.name ^ " golden") true (mem = K.run_golden k);
      Alcotest.(check bool) "cycles >= instructions" true
        (r.CS.cycles >= r.CS.instructions))
    Cgra_kernels.Kernels.all

let test_spill_exercised () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "non_sep_filter") in
  let prog = CG.compile (K.cdfg k) in
  Alcotest.(check bool) "spill area used" true (prog.CG.spill_words > 0)

let test_no_spill_small () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "dc_filter") in
  let prog = CG.compile (K.cdfg k) in
  Alcotest.(check int) "no spill" 0 prog.CG.spill_words

let test_addressing_fold () =
  (* a single-use add feeding a load folds into the offset field *)
  let cdfg =
    Cgra_lang.Compile.compile_exn
      "kernel k { arr a @ 8; var x, i; i = 2; x = a[i]; a[i + 1] = x; }"
  in
  let prog = CG.compile cdfg in
  let all = Array.to_list prog.CG.blocks |> List.concat in
  let has_offset_load =
    List.exists (function Isa.Load (_, _, off) -> off > 0 | _ -> false) all
  in
  Alcotest.(check bool) "register+offset addressing" true has_offset_load

let test_imm_folding () =
  let cdfg =
    Cgra_lang.Compile.compile_exn
      "kernel k { arr o @ 0; var x, i; i = o[1]; x = i + 7; o[0] = x; }"
  in
  let prog = CG.compile cdfg in
  let all = Array.to_list prog.CG.blocks |> List.concat in
  Alcotest.(check bool) "alui used" true
    (List.exists (function Isa.Alui (Op.Add, _, _, 7) -> true | _ -> false) all)

let test_min_expansion () =
  let cdfg =
    Cgra_lang.Compile.compile_exn
      "kernel k { arr o @ 0; var x, a, b; a = o[1]; b = o[2]; x = min(a, b); o[0] = x; }"
  in
  let prog = CG.compile cdfg in
  let all = Array.to_list prog.CG.blocks |> List.concat in
  Alcotest.(check bool) "cmov used for min" true
    (List.exists (function Isa.Cmov _ -> true | _ -> false) all);
  let mem = [| 0; 3; 9; 0 |] in
  ignore (CS.run prog ~mem);
  Alcotest.(check int) "min value" 3 mem.(0)

let test_cost_model () =
  Alcotest.(check int) "mul is 3 cycles" 3
    (Isa.cost (Isa.Alu (Op.Mul, 1, 2, 3)) ~taken:false);
  Alcotest.(check int) "load is 2 cycles" 2
    (Isa.cost (Isa.Load (1, 2, 0)) ~taken:false);
  Alcotest.(check int) "taken branch 3" 3 (Isa.cost (Isa.Bnz (1, 0)) ~taken:true);
  Alcotest.(check int) "untaken branch 1" 1 (Isa.cost (Isa.Bnz (1, 0)) ~taken:false)

let test_branch_counting () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "dc_filter") in
  let prog = CG.compile (K.cdfg k) in
  let mem = K.fresh_mem k in
  let r = CS.run prog ~mem in
  (* 64 loop iterations: 64 back-branches + 1 exit + entry jump *)
  Alcotest.(check bool) "branches counted" true (r.CS.branches >= 65)

let test_runaway_guard () =
  let b = Cgra_ir.Builder.create "spin" in
  let blk = Cgra_ir.Builder.add_block b "spin" in
  Cgra_ir.Builder.set_terminator b blk (Cdfg.Jump (Cgra_ir.Builder.block_id blk));
  let prog = CG.compile (Cgra_ir.Builder.finish b) in
  Alcotest.(check bool) "runaway guard fires" true
    (try
       ignore (CS.run ~max_blocks:10 prog ~mem:(Array.make 1 0));
       false
     with CS.Cpu_error _ -> true)

let test_oob_guard () =
  let cdfg =
    Cgra_lang.Compile.compile_exn "kernel k { arr a @ 0; a[100] = 1; }"
  in
  let prog = CG.compile cdfg in
  Alcotest.(check bool) "out of bounds caught" true
    (try
       ignore (CS.run prog ~mem:(Array.make 4 0));
       false
     with CS.Cpu_error _ -> true)

let suite =
  [ ( "cpu",
      [ Alcotest.test_case "all kernels golden" `Slow test_all_kernels_golden;
        Alcotest.test_case "spilling exercised" `Quick test_spill_exercised;
        Alcotest.test_case "no spill for small kernels" `Quick test_no_spill_small;
        Alcotest.test_case "addressing-mode folding" `Quick test_addressing_fold;
        Alcotest.test_case "immediate folding" `Quick test_imm_folding;
        Alcotest.test_case "min expands to cmov" `Quick test_min_expansion;
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "branch counting" `Quick test_branch_counting;
        Alcotest.test_case "runaway guard" `Quick test_runaway_guard;
        Alcotest.test_case "bounds guard" `Quick test_oob_guard ] ) ]
