(* Tests for the kernel-language frontend: lexer, parser, lowering. *)

module L = Cgra_lang.Lexer
module P = Cgra_lang.Parser
module Ast = Cgra_lang.Ast
module C = Cgra_lang.Compile
module Cdfg = Cgra_ir.Cdfg
module Op = Cgra_ir.Opcode

let test_lexer_tokens () =
  let lx = L.of_string "kernel k { x = a[3] >> 2; }" in
  let rec drain acc =
    match L.next lx with L.Teof -> List.rev acc | t -> drain (t :: acc)
  in
  Alcotest.(check int) "token count" 13 (List.length (drain []))

let test_lexer_comments_positions () =
  let lx = L.of_string "# comment line\n  foo" in
  let p = L.pos lx in
  Alcotest.(check int) "line 2" 2 p.Ast.line;
  Alcotest.(check int) "col 3" 3 p.Ast.col;
  (match L.next lx with
   | L.Tident "foo" -> ()
   | _ -> Alcotest.fail "expected ident foo")

let test_lexer_multichar_ops () =
  let lx = L.of_string ">>> >> << <= == !=" in
  let expected = [ ">>>"; ">>"; "<<"; "<="; "=="; "!=" ] in
  List.iter
    (fun e ->
      match L.next lx with
      | L.Tpunct p -> Alcotest.(check string) "punct" e p
      | _ -> Alcotest.fail "expected punct")
    expected

let test_lexer_bad_char () =
  let lx = L.of_string "$" in
  Alcotest.(check bool) "syntax error" true
    (try
       ignore (L.next lx);
       false
     with Ast.Syntax_error _ -> true)

let parse_expr_of s =
  let k = P.parse (Printf.sprintf "kernel k { var x; x = %s; }" s) in
  match k.Ast.body with
  | [ Ast.Assign (_, e) ] -> e
  | _ -> Alcotest.fail "expected single assignment"

let test_precedence () =
  (match parse_expr_of "1 + 2 * 3" with
   | Ast.Bin (Ast.Badd, Ast.Int 1, Ast.Bin (Ast.Bmul, Ast.Int 2, Ast.Int 3)) -> ()
   | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse_expr_of "1 + 2 >> 3" with
   | Ast.Bin (Ast.Bshra, Ast.Bin (Ast.Badd, _, _), Ast.Int 3) -> ()
   | _ -> Alcotest.fail "shift binds looser than add");
  (match parse_expr_of "1 < 2 & 3 == 4" with
   | Ast.Bin (Ast.Band, Ast.Bin (Ast.Blt, _, _), Ast.Bin (Ast.Beq, _, _)) -> ()
   | _ -> Alcotest.fail "and binds looser than comparisons")

let test_unary_minus () =
  match parse_expr_of "-x * 2" with
  | Ast.Bin (Ast.Bmul, Ast.Bin (Ast.Bsub, Ast.Int 0, Ast.Var "x"), Ast.Int 2) -> ()
  | _ -> Alcotest.fail "unary minus binds tightest"

let test_parse_errors () =
  List.iter
    (fun src ->
      match P.parse_result src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad program: " ^ src))
    [ "kernel { }";
      "kernel k { var x }";
      "kernel k { x = ; }";
      "kernel k { while x < 2 { } }";
      "kernel k { } trailing" ]

let compile_exn = C.compile_exn

let test_semantic_errors () =
  List.iter
    (fun src ->
      match C.compile src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad program: " ^ src))
    [ "kernel k { x = 1; }" (* undeclared *);
      "kernel k { const c = 1; c = 2; }" (* assign to const *);
      "kernel k { var x; x = foo(1); }" (* unknown intrinsic *);
      "kernel k { var x; x = a[0]; }" (* undeclared array *);
      "kernel k { var j; unroll j = 0 to 2 { } }" (* shadowing unroll *) ]

let run_program ?(mem_words = 32) src =
  let cdfg = compile_exn src in
  let mem = Array.make mem_words 0 in
  ignore (Cgra_ir.Interp.run cdfg ~mem);
  (cdfg, mem)

let test_compile_if_else () =
  let _, mem =
    run_program
      {|kernel k { arr o @ 0; var x; x = 3;
        if (x > 2) { o[0] = 10; } else { o[0] = 20; }
        if (x > 5) { o[1] = 1; } else { o[1] = 2; } }|}
  in
  Alcotest.(check int) "then taken" 10 mem.(0);
  Alcotest.(check int) "else taken" 2 mem.(1)

let test_compile_unroll_and_consts () =
  let cdfg, mem =
    run_program
      {|kernel k { const n = 4; arr o @ 0; var acc; acc = 0;
        unroll t = 0 to 4 { acc = acc + t * t; }
        o[n] = acc; }|}
  in
  Alcotest.(check int) "sum of squares" 14 mem.(4);
  Alcotest.(check int) "single block plus folds" 1 (Cdfg.block_count cdfg)

let test_compile_min_max_select_abs () =
  let _, mem =
    run_program
      {|kernel k { arr o @ 0; var x; x = 0 - 7;
        o[0] = min(x, 3); o[1] = max(x, 3); o[2] = abs(x);
        o[3] = select(x < 0, 11, 22); }|}
  in
  Alcotest.(check int) "min" (-7) mem.(0);
  Alcotest.(check int) "max" 3 mem.(1);
  Alcotest.(check int) "abs" 7 mem.(2);
  Alcotest.(check int) "select" 11 mem.(3)

let count_ops cdfg op =
  Array.fold_left
    (fun acc b ->
      acc
      + Array.fold_left
          (fun acc n -> if n.Cdfg.opcode = op then acc + 1 else acc)
          0 b.Cdfg.nodes)
    0 cdfg.Cdfg.blocks

let test_load_cse () =
  let cdfg =
    compile_exn
      {|kernel k { arr a @ 0; arr o @ 16; var x;
        x = a[0] + a[0] + a[0]; o[0] = x; }|}
  in
  Alcotest.(check int) "one load" 1 (count_ops cdfg Op.Load)

let test_load_cse_blocked_by_store () =
  let cdfg =
    compile_exn
      {|kernel k { arr a @ 0; var x, y;
        x = a[0]; a[0] = x + 1; y = a[0]; a[1] = y; }|}
  in
  Alcotest.(check int) "store invalidates" 2 (count_ops cdfg Op.Load)

let test_mem_dep_edges () =
  let cdfg =
    compile_exn
      {|kernel k { arr a @ 0; var x; x = a[0]; a[0] = x + 1; x = a[0]; a[1] = x; }|}
  in
  let b = cdfg.Cdfg.blocks.(0) in
  let has_dep = Array.exists (fun n -> n.Cdfg.mem_dep <> []) b.Cdfg.nodes in
  Alcotest.(check bool) "dependencies recorded" true has_dep;
  (* the second load must depend on the first store *)
  let ok = ref false in
  Array.iteri
    (fun i n ->
      if n.Cdfg.opcode = Op.Load && n.Cdfg.mem_dep <> [] then begin
        List.iter
          (fun j ->
            if b.Cdfg.nodes.(j).Cdfg.opcode = Op.Store && j < i then ok := true)
          n.Cdfg.mem_dep
      end)
    b.Cdfg.nodes;
  Alcotest.(check bool) "load after store ordered" true !ok

let test_algebraic_folds () =
  let cdfg =
    compile_exn
      {|kernel k { arr o @ 0; var x; x = 5;
        o[0] = x + 0; o[1] = x * 1; o[2] = (2 + 3) * 4; }|}
  in
  Alcotest.(check int) "adds folded away" 0 (count_ops cdfg Op.Mul)

let test_for_sugar () =
  let _, mem =
    run_program
      {|kernel k { arr o @ 0; var i, s; s = 0;
        for (i = 0; i < 5; i = i + 1) { s = s + i; }
        o[0] = s; o[1] = i; }|}
  in
  Alcotest.(check int) "sum 0..4" 10 mem.(0);
  Alcotest.(check int) "final counter" 5 mem.(1)

let test_for_equals_while () =
  let compile = Cgra_lang.Compile.compile_exn in
  let as_for =
    compile
      "kernel k { arr o @ 0; var i; for (i = 0; i < 4; i = i + 1) { o[i] = i * i; } }"
  in
  let as_while =
    compile
      "kernel k { arr o @ 0; var i; i = 0; while (i < 4) { o[i] = i * i; i = i + 1; } }"
  in
  let run cdfg =
    let mem = Array.make 8 0 in
    ignore (Cgra_ir.Interp.run cdfg ~mem);
    mem
  in
  Alcotest.(check bool) "identical behaviour" true (run as_for = run as_while)

let test_nested_while () =
  let _, mem =
    run_program
      {|kernel k { arr o @ 0; var i, j, c; c = 0; i = 0;
        while (i < 3) { j = 0; while (j < 4) { c = c + 1; j = j + 1; }
                        i = i + 1; }
        o[0] = c; }|}
  in
  Alcotest.(check int) "3*4 iterations" 12 mem.(0)

let suite =
  [ ( "lang",
      [ Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "lexer comments and positions" `Quick test_lexer_comments_positions;
        Alcotest.test_case "lexer multichar ops" `Quick test_lexer_multichar_ops;
        Alcotest.test_case "lexer bad char" `Quick test_lexer_bad_char;
        Alcotest.test_case "precedence" `Quick test_precedence;
        Alcotest.test_case "unary minus" `Quick test_unary_minus;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
        Alcotest.test_case "if/else" `Quick test_compile_if_else;
        Alcotest.test_case "unroll + consts" `Quick test_compile_unroll_and_consts;
        Alcotest.test_case "intrinsics" `Quick test_compile_min_max_select_abs;
        Alcotest.test_case "load CSE" `Quick test_load_cse;
        Alcotest.test_case "load CSE blocked by store" `Quick test_load_cse_blocked_by_store;
        Alcotest.test_case "memory dependence edges" `Quick test_mem_dep_edges;
        Alcotest.test_case "algebraic folds" `Quick test_algebraic_folds;
        Alcotest.test_case "for sugar" `Quick test_for_sugar;
        Alcotest.test_case "for = while" `Quick test_for_equals_while;
        Alcotest.test_case "nested while" `Quick test_nested_while ] ) ]
