test/test_ir.ml: Alcotest Array Cgra_arch Cgra_asm Cgra_core Cgra_ir Cgra_kernels Cgra_lang Cgra_sim List Option Printf
