test/test_power.ml: Alcotest Array Cgra_arch Cgra_cpu Cgra_power Cgra_sim Float
