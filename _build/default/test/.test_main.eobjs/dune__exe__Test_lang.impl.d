test/test_lang.ml: Alcotest Array Cgra_ir Cgra_lang List Printf
