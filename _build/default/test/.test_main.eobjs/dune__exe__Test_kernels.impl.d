test/test_kernels.ml: Alcotest Array Cgra_ir Cgra_kernels Float List Option Printf
