test/test_asm_sim.ml: Alcotest Array Cgra_arch Cgra_asm Cgra_core Cgra_ir Cgra_kernels Cgra_lang Cgra_sim List Option Printf
