test/test_cpu.ml: Alcotest Array Cgra_cpu Cgra_ir Cgra_kernels Cgra_lang List Option
