test/test_main.ml: Alcotest Test_arch Test_asm_sim Test_core Test_cpu Test_e2e Test_fuzz Test_graph Test_ir Test_kernels Test_lang Test_power Test_util
