test/test_graph.ml: Alcotest Array Cgra_graph List QCheck QCheck_alcotest String
