test/test_arch.ml: Alcotest Cgra_arch Cgra_ir Int64 List QCheck QCheck_alcotest
