test/test_fuzz.ml: Array Cgra_arch Cgra_asm Cgra_core Cgra_cpu Cgra_ir Cgra_sim Cgra_util Printf QCheck QCheck_alcotest
