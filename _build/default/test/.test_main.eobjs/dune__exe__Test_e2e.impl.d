test/test_e2e.ml: Alcotest Array Cgra_arch Cgra_core Cgra_cpu Cgra_exp Cgra_kernels Cgra_power List Option Printf String
