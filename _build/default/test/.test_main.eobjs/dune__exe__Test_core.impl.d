test/test_core.ml: Alcotest Array Cgra_arch Cgra_core Cgra_ir Format Gen List Printf QCheck QCheck_alcotest String
