test/test_util.ml: Alcotest Array Cgra_util Fun List QCheck QCheck_alcotest String
