(* Tests for the assembler and the cycle-level simulator, cross-validated
   against the mapper's accounting and the reference interpreter. *)

module Flow = Cgra_core.Flow
module FC = Cgra_core.Flow_config
module M = Cgra_core.Mapping
module Asm = Cgra_asm.Assemble
module Sim = Cgra_sim.Simulator
module Config = Cgra_arch.Config
module Isa = Cgra_arch.Isa
module K = Cgra_kernels.Kernel_def

let map_kernel slug config flow =
  let k = Option.get (Cgra_kernels.Kernels.by_slug slug) in
  let cdfg = K.cdfg k in
  match Flow.run ~config:flow (Config.cgra config) cdfg with
  | Ok (m, _) -> (k, m)
  | Error f -> Alcotest.fail (slug ^ ": " ^ f.Flow.reason)

let test_words_match_mapping () =
  List.iter
    (fun slug ->
      let _, m = map_kernel slug Config.HOM64 FC.basic in
      let prog = Asm.assemble m in
      let words = Asm.context_words prog in
      let usage = M.tile_usage m in
      Array.iteri
        (fun t w ->
          Alcotest.(check int)
            (Printf.sprintf "%s tile %d words" slug t)
            (M.usage_total usage.(t))
            w)
        words)
    [ "fir"; "fft"; "dc_filter" ]

let test_sections_fit_lengths () =
  let _, m = map_kernel "convolution" Config.HOM64 FC.basic in
  let prog = Asm.assemble m in
  Array.iter
    (fun tp ->
      Array.iteri
        (fun bi sec ->
          let dur = List.fold_left (fun acc i -> acc + Isa.duration i) 0 sec in
          Alcotest.(check bool) "section within block length" true
            (dur <= prog.Asm.section_length.(bi)))
        tp.Asm.sections)
    prog.Asm.tiles

let test_encode_tile_roundtrip () =
  let _, m = map_kernel "fir" Config.HOM64 FC.basic in
  let prog = Asm.assemble m in
  Array.iter
    (fun tp ->
      let words = Asm.encode_tile tp in
      let instrs = Array.to_list tp.Asm.sections |> List.concat in
      Alcotest.(check int) "word count" (List.length instrs) (Array.length words);
      List.iteri
        (fun i instr ->
          match Isa.decode words.(i) with
          | Ok d -> Alcotest.(check bool) "decoded equal" true (d = instr)
          | Error e -> Alcotest.fail e)
        instrs)
    prog.Asm.tiles

let run_and_check slug config flow =
  let k, m = map_kernel slug config flow in
  let prog = Asm.assemble m in
  let mem = K.fresh_mem k in
  let r = Sim.run prog ~mem in
  Alcotest.(check bool) (slug ^ " memory matches golden") true
    (mem = K.run_golden k);
  (k, m, r)

let test_sim_functional () =
  List.iter
    (fun slug -> ignore (run_and_check slug Config.HOM64 FC.basic))
    [ "fir"; "matm"; "dc_filter"; "fft" ]

let test_sim_functional_aware () =
  List.iter
    (fun slug -> ignore (run_and_check slug Config.HET2 FC.context_aware))
    [ "fir"; "convolution"; "dc_filter" ]

let test_sim_cycles_formula () =
  let k, m, r = run_and_check "dc_filter" Config.HOM64 FC.basic in
  let mem = K.fresh_mem k in
  let trace = Cgra_ir.Interp.run (K.cdfg k) ~mem in
  Alcotest.(check int) "cycles = static + stalls"
    (M.static_cycles m trace + r.Sim.stall_cycles)
    r.Sim.cycles

let test_sim_activity_consistency () =
  let _, m, r = run_and_check "fir" Config.HOM64 FC.basic in
  ignore m;
  let a = Sim.total_activity r in
  Alcotest.(check int) "instructions = alu + mem + moves"
    r.Sim.instructions
    (a.Sim.alu_ops + a.Sim.mem_ops + a.Sim.moves);
  Alcotest.(check bool) "fetches cover instructions" true
    (a.Sim.fetches >= r.Sim.instructions);
  Alcotest.(check bool) "muls subset of alu" true (a.Sim.mul_ops <= a.Sim.alu_ops)

let test_sim_mem_ports_stall () =
  (* fewer ports cannot make execution faster *)
  let k, m = map_kernel "matm" Config.HOM64 FC.basic in
  let prog = Asm.assemble m in
  let run ports =
    let mem = K.fresh_mem k in
    (Sim.run ~mem_ports:ports prog ~mem).Sim.cycles
  in
  Alcotest.(check bool) "1 port slower than 8" true (run 1 > run 8);
  Alcotest.(check bool) "16 ports no slower than 8" true (run 16 <= run 8)

let test_sim_deterministic () =
  let _, _, r1 = run_and_check "fft" Config.HOM64 FC.basic in
  let _, _, r2 = run_and_check "fft" Config.HOM64 FC.basic in
  Alcotest.(check int) "same cycle count" r1.Sim.cycles r2.Sim.cycles

let test_non_square_grid () =
  (* the tool-chain is size-generic: a 3x5 torus with 5 load-store tiles *)
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fir") in
  let cgra =
    Cgra_arch.Cgra.make ~rows:3 ~cols:5 ~lsu_rows:1 ~cm_of_tile:(fun _ -> 48) ()
  in
  match Flow.run ~config:FC.context_aware cgra (K.cdfg k) with
  | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    let prog = Asm.assemble m in
    let mem = K.fresh_mem k in
    ignore (Sim.run prog ~mem);
    Alcotest.(check bool) "golden on 3x5" true (mem = K.run_golden k)

(* end-to-end against the interpreter for hand-built CDFGs exercising the
   rarer terminator paths *)
let run_both cdfg mem_words init =
  let golden = Array.make mem_words 0 in
  init golden;
  let mem = Array.copy golden in
  ignore (Cgra_ir.Interp.run cdfg ~mem:golden);
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    let prog = Asm.assemble m in
    ignore (Sim.run prog ~mem);
    Alcotest.(check bool) "CGRA matches interp" true (mem = golden)

let test_branch_on_symbol () =
  (* Branch (Sym s) where s is rewritten in the same block: the condition
     export must read the freshly written value *)
  let module B = Cgra_ir.Builder in
  let module Cdfg = Cgra_ir.Cdfg in
  let module Op = Cgra_ir.Opcode in
  let b = B.create "symcond" in
  let s = B.fresh_sym b "s" in
  let pre = B.add_block b "pre" in
  let body = B.add_block b "body" in
  let exit_ = B.add_block b "exit" in
  B.set_live_out b pre s (Cdfg.Imm 3);
  B.set_terminator b pre (Cdfg.Jump (B.block_id body));
  let s1 = B.add_node b body Op.Sub [ Cdfg.Sym s; Cdfg.Imm 1 ] in
  let a = B.add_node b body Op.Add [ Cdfg.Sym s; Cdfg.Imm 8 ] in
  let _ = B.add_node b body Op.Store [ a; Cdfg.Sym s ] in
  B.set_live_out b body s s1;
  B.set_terminator b body (Cdfg.Branch (Cdfg.Sym s, B.block_id body, B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  run_both (B.finish b) 16 (fun _ -> ())

let test_branch_on_imm () =
  (* a constant branch condition still needs an exported condition bit *)
  let module B = Cgra_ir.Builder in
  let module Cdfg = Cgra_ir.Cdfg in
  let module Op = Cgra_ir.Opcode in
  let b = B.create "immcond" in
  let entry = B.add_block b "entry" in
  let yes = B.add_block b "yes" in
  let no = B.add_block b "no" in
  let exit_ = B.add_block b "exit" in
  B.set_terminator b entry (Cdfg.Branch (Cdfg.Imm 1, B.block_id yes, B.block_id no));
  let _ = B.add_node b yes Op.Store [ Cdfg.Imm 0; Cdfg.Imm 11 ] in
  B.set_terminator b yes (Cdfg.Jump (B.block_id exit_));
  let _ = B.add_node b no Op.Store [ Cdfg.Imm 0; Cdfg.Imm 22 ] in
  B.set_terminator b no (Cdfg.Jump (B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  run_both (B.finish b) 4 (fun _ -> ())

let test_use_before_def_traversal () =
  (* under the weighted traversal the heavy user block is mapped before
     the block that defines the symbol, pinning its home by use *)
  let cdfg =
    Cgra_lang.Compile.compile_exn
      {|kernel k { arr x @ 0; arr o @ 16; var i, scale;
        scale = 3;
        for (i = 0; i < 8; i = i + 1) {
          o[i] = (x[i] * scale + x[i]) * scale + i;
        } }|}
  in
  let golden = Array.init 32 (fun k -> if k < 8 then k + 1 else 0) in
  let mem = Array.copy golden in
  ignore (Cgra_ir.Interp.run cdfg ~mem:golden);
  match Flow.run ~config:FC.context_aware (Config.cgra Config.HET1) cdfg with
  | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    ignore (Sim.run (Asm.assemble m) ~mem);
    Alcotest.(check bool) "matches" true (mem = golden)

let test_crf_overflow () =
  (* a 1x1 grid concentrates every constant on one tile: the 32-entry
     constant register file must overflow *)
  let module B = Cgra_ir.Builder in
  let module Cdfg = Cgra_ir.Cdfg in
  let module Op = Cgra_ir.Opcode in
  let b = B.create "consts" in
  let blk = B.add_block b "only" in
  let acc = ref (Cdfg.Imm 0) in
  for k = 1 to 40 do
    acc := B.add_node b blk Op.Add [ !acc; Cdfg.Imm (1000 + k) ]
  done;
  let _ = B.add_node b blk Op.Store [ Cdfg.Imm 0; !acc ] in
  B.set_terminator b blk Cdfg.Return;
  let cdfg = B.finish b in
  let cgra = Cgra_arch.Cgra.make ~rows:1 ~cols:1 ~lsu_rows:1 ~cm_of_tile:(fun _ -> 64) () in
  match Flow.run cgra cdfg with
  | Error _ -> () (* also acceptable: the mapper itself refuses *)
  | Ok (m, _) ->
    Alcotest.(check bool) "CRF overflow reported" true
      (try
         ignore (Asm.assemble m);
         false
       with Asm.Assembly_error _ -> true)

let suite =
  [ ( "asm+sim",
      [ Alcotest.test_case "context words match mapping" `Quick test_words_match_mapping;
        Alcotest.test_case "sections fit block lengths" `Quick test_sections_fit_lengths;
        Alcotest.test_case "binary encode roundtrip" `Quick test_encode_tile_roundtrip;
        Alcotest.test_case "simulation matches golden" `Slow test_sim_functional;
        Alcotest.test_case "aware flow simulation" `Slow test_sim_functional_aware;
        Alcotest.test_case "cycles = static + stalls" `Quick test_sim_cycles_formula;
        Alcotest.test_case "activity counters" `Quick test_sim_activity_consistency;
        Alcotest.test_case "memory port arbitration" `Slow test_sim_mem_ports_stall;
        Alcotest.test_case "simulator deterministic" `Quick test_sim_deterministic;
        Alcotest.test_case "non-square grid end-to-end" `Slow test_non_square_grid;
        Alcotest.test_case "branch on symbol" `Quick test_branch_on_symbol;
        Alcotest.test_case "branch on immediate" `Quick test_branch_on_imm;
        Alcotest.test_case "use before def traversal" `Quick test_use_before_def_traversal;
        Alcotest.test_case "CRF overflow" `Quick test_crf_overflow ] ) ]
