(* Tests for the kernel suite: every kernel compiles, validates and its
   interpreter run matches the independent OCaml golden model. *)

module K = Cgra_kernels.Kernel_def
module Cdfg = Cgra_ir.Cdfg

let test_registry () =
  Alcotest.(check int) "seven kernels" 7 (List.length Cgra_kernels.Kernels.all);
  Alcotest.(check bool) "by_slug finds fir" true
    (Cgra_kernels.Kernels.by_slug "fir" <> None);
  Alcotest.(check bool) "by_name finds DC Filter" true
    (Cgra_kernels.Kernels.by_name "DC Filter" <> None);
  Alcotest.(check bool) "unknown slug" true
    (Cgra_kernels.Kernels.by_slug "nope" = None);
  Alcotest.(check int) "slugs align" 7 (List.length Cgra_kernels.Kernels.slugs)

let test_compile_and_validate () =
  List.iter
    (fun k ->
      let cdfg = K.cdfg k in
      match Cdfg.validate cdfg with
      | Ok () -> ()
      | Error e -> Alcotest.fail (k.K.name ^ ": " ^ e))
    Cgra_kernels.Kernels.all

let test_interp_matches_golden () =
  List.iter
    (fun k ->
      let mem = K.fresh_mem k in
      ignore (Cgra_ir.Interp.run (K.cdfg k) ~mem);
      Alcotest.(check bool) (k.K.name ^ " matches golden") true
        (mem = K.run_golden k))
    Cgra_kernels.Kernels.all

let test_golden_pure () =
  let k = List.hd Cgra_kernels.Kernels.all in
  let mem = K.fresh_mem k in
  let snapshot = Array.copy mem in
  ignore (k.K.golden mem);
  Alcotest.(check bool) "golden does not mutate input" true (mem = snapshot)

let test_fft_is_a_dft () =
  (* the fixed-point FFT must approximate a direct DFT of the same input *)
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fft") in
  let mem = K.run_golden k in
  let xr = Array.init 16 (fun i -> float_of_int mem.(i)) in
  let xi = Array.init 16 (fun i -> float_of_int mem.(16 + i)) in
  let worst = ref 0.0 in
  for kk = 0 to 15 do
    let sr = ref 0.0 and si = ref 0.0 in
    for n = 0 to 15 do
      let ang = -2.0 *. Float.pi *. float_of_int (kk * n) /. 16.0 in
      sr := !sr +. (xr.(n) *. cos ang) -. (xi.(n) *. sin ang);
      si := !si +. (xr.(n) *. sin ang) +. (xi.(n) *. cos ang)
    done;
    let dr = Float.abs (!sr -. float_of_int mem.(64 + kk)) in
    let di = Float.abs (!si -. float_of_int mem.(80 + kk)) in
    worst := Float.max !worst (Float.max dr di)
  done;
  (* Q8 truncation over 4 stages: allow a small absolute error *)
  Alcotest.(check bool)
    (Printf.sprintf "fixed-point FFT close to DFT (worst %.1f)" !worst)
    true (!worst < 24.0)

let test_kernel_shapes () =
  let shape slug =
    let k = Option.get (Cgra_kernels.Kernels.by_slug slug) in
    let cdfg = K.cdfg k in
    (Cdfg.block_count cdfg, Cdfg.node_count cdfg)
  in
  let blocks, _ = shape "fft" in
  Alcotest.(check bool) "FFT has many blocks (Fig 5 study)" true (blocks >= 10);
  let _, nodes = shape "non_sep_filter" in
  Alcotest.(check bool) "NonSep is the big one" true (nodes > 300);
  let _, dc = shape "dc_filter" in
  Alcotest.(check bool) "DC filter small" true (dc < 20)

let test_mem_bounds () =
  List.iter
    (fun k ->
      let mem = K.fresh_mem k in
      Alcotest.(check int) (k.K.name ^ " image size") k.K.mem_words
        (Array.length mem))
    Cgra_kernels.Kernels.all

let suite =
  [ ( "kernels",
      [ Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "compile and validate" `Quick test_compile_and_validate;
        Alcotest.test_case "interp matches golden" `Quick test_interp_matches_golden;
        Alcotest.test_case "golden is pure" `Quick test_golden_pure;
        Alcotest.test_case "FFT approximates a DFT" `Quick test_fft_is_a_dft;
        Alcotest.test_case "kernel shapes" `Quick test_kernel_shapes;
        Alcotest.test_case "memory image sizes" `Quick test_mem_bounds ] ) ]
