(* End-to-end tests of the paper's headline claims, through the full
   tool-chain (frontend -> mapper -> assembler -> simulator -> energy). *)

module R = Cgra_exp.Runner
module Config = Cgra_arch.Config
module M = Cgra_core.Mapping
module E = Cgra_power.Energy

let kernel slug = Option.get (Cgra_kernels.Kernels.by_slug slug)

let mapped_exn slug config flow =
  match R.run_of (kernel slug) config flow with
  | R.Mapped r -> r
  | R.Unmappable u ->
    Alcotest.fail (Printf.sprintf "%s should map: %s" slug u.reason)

let test_basic_fits_hom64 () =
  (* the premise of Section IV-B: the basic mapping fits HOM64 for the
     whole kernel set *)
  List.iter
    (fun k ->
      match R.run_of k Config.HOM64 R.Basic with
      | R.Mapped _ -> ()
      | R.Unmappable u -> Alcotest.fail (k.Cgra_kernels.Kernel_def.name ^ ": " ^ u.reason))
    R.kernels

let test_big_kernels_overflow_hom32_basic () =
  (* matmul, the non-separable filter and the FFT cannot fit 32-word
     contexts without memory awareness (Figs 6-7) *)
  List.iter
    (fun slug ->
      match R.run_of (kernel slug) Config.HOM32 R.Basic with
      | R.Unmappable _ -> ()
      | R.Mapped _ -> Alcotest.fail (slug ^ " should overflow HOM32"))
    [ "matm"; "non_sep_filter"; "fft" ]

let test_aware_maps_het () =
  (* the headline: the context-aware flow maps every kernel on both
     heterogeneous configurations, i.e. with roughly half the context
     memory of HOM64 *)
  List.iter
    (fun k ->
      List.iter
        (fun config ->
          match R.run_of k config R.Full with
          | R.Mapped _ -> ()
          | R.Unmappable u ->
            Alcotest.fail
              (Printf.sprintf "%s on %s: %s" k.Cgra_kernels.Kernel_def.name
                 (Config.to_string config) u.reason))
        [ Config.HET1; Config.HET2 ])
    R.kernels

let test_basic_fails_het_for_big_kernels () =
  (* ...while the memory-blind basic flow cannot use them *)
  List.iter
    (fun slug ->
      match R.run_of (kernel slug) Config.HET2 R.Basic with
      | R.Unmappable _ -> ()
      | R.Mapped _ -> Alcotest.fail (slug ^ " basic should fail HET2"))
    [ "matm"; "non_sep_filter" ]

let test_acmap_weaker_than_ecmap () =
  (* Fig 6 vs Fig 7: ACMAP alone finds no solution for the non-separable
     filter on the heterogeneous configurations; adding ECMAP does *)
  (match R.run_of (kernel "non_sep_filter") Config.HET1 R.With_acmap with
   | R.Unmappable _ -> ()
   | R.Mapped _ -> Alcotest.fail "ACMAP alone should fail NonSep on HET1");
  ignore (mapped_exn "non_sep_filter" Config.HET1 R.With_ecmap)

let test_aware_energy_gain () =
  (* Table II: the context-aware mapping on HET beats basic on HOM64 *)
  List.iter
    (fun k ->
      match R.run_of k Config.HOM64 R.Basic, R.run_of k Config.HET2 R.Full with
      | R.Mapped b, R.Mapped h ->
        let gain = b.R.energy.E.total_pj /. h.R.energy.E.total_pj in
        Alcotest.(check bool)
          (Printf.sprintf "%s gains energy (%.2fx)" k.Cgra_kernels.Kernel_def.name gain)
          true (gain > 1.0)
      | _, _ -> Alcotest.fail "both flows should map")
    R.kernels

let test_cgra_beats_cpu () =
  (* Fig 10 / Table II: the CGRA wins on both cycles and energy *)
  List.iter
    (fun k ->
      let cpu = R.cpu_of k in
      match R.run_of k Config.HET2 R.Full with
      | R.Mapped r ->
        Alcotest.(check bool) (k.Cgra_kernels.Kernel_def.name ^ " faster") true
          (r.R.cycles < cpu.R.cpu_sim.Cgra_cpu.Cpu_sim.cycles);
        Alcotest.(check bool) (k.Cgra_kernels.Kernel_def.name ^ " greener") true
          (r.R.energy.E.total_pj < cpu.R.cpu_energy.E.total_pj /. 2.0)
      | R.Unmappable u -> Alcotest.fail u.reason)
    R.kernels

let test_aware_uses_less_context () =
  (* the aware mapping on HET2 uses at most the 512 total words, half of
     HOM64's 1024 — and the per-tile usage respects every capacity *)
  List.iter
    (fun k ->
      match R.run_of k Config.HET2 R.Full with
      | R.Mapped r ->
        let usage = M.tile_usage r.R.mapping in
        let total = Array.fold_left (fun a u -> a + M.usage_total u) 0 usage in
        Alcotest.(check bool) "within half the HOM64 budget" true (total <= 512)
      | R.Unmappable u -> Alcotest.fail u.reason)
    R.kernels

let test_fig5_reductions () =
  (* Section III-D-1: the weighted traversal reduces moves and pnops *)
  let s = Cgra_exp.Figures.fig5 () in
  Alcotest.(check bool) "report generated" true (String.length s > 100)

let test_artifacts_render () =
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " renders") true (String.length (f ()) > 50))
    [ ("table1", Cgra_exp.Figures.table1);
      ("fig2", Cgra_exp.Figures.fig2);
      ("fig11", Cgra_exp.Figures.fig11) ]

let suite =
  [ ( "end-to-end",
      [ Alcotest.test_case "basic fits HOM64" `Slow test_basic_fits_hom64;
        Alcotest.test_case "big kernels overflow HOM32" `Slow
          test_big_kernels_overflow_hom32_basic;
        Alcotest.test_case "aware flow maps HET1/HET2" `Slow test_aware_maps_het;
        Alcotest.test_case "basic fails HET for big kernels" `Slow
          test_basic_fails_het_for_big_kernels;
        Alcotest.test_case "ACMAP weaker than ECMAP" `Slow
          test_acmap_weaker_than_ecmap;
        Alcotest.test_case "aware energy gain" `Slow test_aware_energy_gain;
        Alcotest.test_case "CGRA beats CPU" `Slow test_cgra_beats_cpu;
        Alcotest.test_case "half the context memory" `Slow
          test_aware_uses_less_context;
        Alcotest.test_case "Fig 5 renders" `Slow test_fig5_reductions;
        Alcotest.test_case "artifacts render" `Quick test_artifacts_render ] ) ]
