(* Command-line driver for the mapping tool-chain.

   cgra_map list
   cgra_map map -k <kernel> [-c <config>] [-f <flow>] [--opt] [--jobs N]
                [--trace FILE] [--dump-dfg before|after] [--asm] [--simulate]
                [--validate] [--degrade] [--max-attempts N] [--faults FILE]
                [--protect none|parity|secded]
   cgra_map fault -k <kernel> [-c <config>] [-f <flow>] [--seed N]
                  [--trials K] [--show M] [--protect none|parity|secded]
   cgra_map compile <file>        compile a kernel-language source file
   cgra_map artifacts <name|all>  regenerate paper tables/figures *)

open Cmdliner

(* FILE arguments fail as one-line typed errors (exit 1), never as raw
   Sys_error backtraces. *)
let read_file_or_die ~what file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error e ->
    Printf.eprintf "%s %s: %s\n" what file e;
    exit 1

let write_file_or_die ~what file contents =
  try
    let oc = open_out_bin file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents)
  with Sys_error e ->
    Printf.eprintf "%s %s: %s\n" what file e;
    exit 1

let config_names () =
  String.concat "|" (List.map Cgra_arch.Config.to_string Cgra_arch.Config.all)

let config_conv =
  let parse s =
    match Cgra_arch.Config.of_string s with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown configuration %s (valid: %s, case-insensitive)"
             s (config_names ())))
  in
  Arg.conv (parse, fun fmt c -> Format.fprintf fmt "%s" (Cgra_arch.Config.to_string c))

let flow_of_string = function
  | "basic" -> Some Cgra_core.Flow_config.basic
  | "acmap" -> Some Cgra_core.Flow_config.with_acmap
  | "ecmap" -> Some Cgra_core.Flow_config.with_acmap_ecmap
  | "full" | "cab" -> Some Cgra_core.Flow_config.context_aware
  | _ -> None

let flow_conv =
  let parse s =
    match flow_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg ("unknown flow " ^ s ^ " (basic|acmap|ecmap|full)"))
  in
  Arg.conv (parse, fun fmt f -> Format.fprintf fmt "%s" (Cgra_core.Flow_config.steps_of f))

(* Bad --protect values fail as one-line typed errors (exit 1) naming the
   valid forms, matching the daemon's knob diagnostics. *)
let protect_of_flag s =
  match Cgra_arch.Protection.profile_of_string s with
  | Some p -> p
  | None ->
    Printf.eprintf "--protect: unknown value %S (valid: %s)\n" s
      Cgra_arch.Protection.valid_values;
    exit 1

let protect_arg ~doc =
  Arg.(value & opt string "none" & info [ "protect" ] ~doc ~docv:"LEVEL")

(* The simulator-facing form of a protection profile: [None] when the
   profile is all-Unprotected so the unprotected code path runs. *)
let sim_protect_of profile =
  if Cgra_arch.Protection.is_none profile then None
  else
    Some
      {
        Cgra_sim.Simulator.profile;
        upsets = [];
        scrub_interval = Cgra_arch.Protection.default_scrub_interval;
      }

let list_cmd =
  let doc = "List the bundled kernels and CGRA configurations." in
  let run () =
    print_endline "kernels:";
    List.iter
      (fun k ->
        Printf.printf "  %-16s %s\n" k.Cgra_kernels.Kernel_def.slug
          k.Cgra_kernels.Kernel_def.description)
      Cgra_kernels.Kernels.all;
    print_endline "configurations:";
    List.iter
      (fun c ->
        Printf.printf "  %-6s total %4d context words\n"
          (Cgra_arch.Config.to_string c)
          (Cgra_arch.Config.total_cm c))
      Cgra_arch.Config.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let map_cmd =
  let doc = "Map a kernel onto a CGRA configuration and report the result." in
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel slug.")
  in
  let config =
    Arg.(value & opt config_conv Cgra_arch.Config.HET2 & info [ "c"; "config" ] ~doc:"CM configuration.")
  in
  let flow =
    Arg.(value & opt flow_conv Cgra_core.Flow_config.context_aware
         & info [ "f"; "flow" ] ~doc:"Mapping flow: basic, acmap, ecmap or full.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ]
             ~doc:"Expand the search population with $(docv) domains per \
                   round.  Expansion is RNG-free, so the mapping and every \
                   reported counter are byte-identical at any value; only \
                   wall-clock time changes."
             ~docv:"N")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
             ~doc:"Write per-block search telemetry to $(docv) as JSON \
                   lines: one object per basic block (rounds, binding \
                   attempts, children, filter kills, wall seconds, ...) \
                   plus a final summary object.  All counters are \
                   deterministic; only wall_seconds varies across runs."
             ~docv:"FILE")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Re-check the produced mapping with the independent \
                   cgra_verify validator (context-memory capacity, \
                   neighbour distances, operand readiness, encoding \
                   round-trip, ...) before reporting it.")
  in
  let degrade =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"On failure, retry with an escalation ladder (wider beam, \
                   more expansion, softer pruning, fresh seeds) instead of \
                   plain re-seeding, and print the escalation trace.")
  in
  let max_attempts =
    Arg.(value & opt int 6
         & info [ "max-attempts" ]
             ~doc:"Attempt budget of the --degrade ladder." ~docv:"N")
  in
  let faults_file =
    Arg.(value & opt (some string) None
         & info [ "faults" ]
             ~doc:"Map around the permanent faults listed in $(docv) (one \
                   s-expression per line: (dead_tile T), (cm_rows_stuck T \
                   ROWS), (dead_link T north|south|west|east), (no_lsu T); \
                   ';' starts a comment).  Home selection, the capacity \
                   checks and the route table all see the degraded array."
             ~docv:"FILE")
  in
  let emit =
    Arg.(value & opt (some string) None
         & info [ "emit" ]
             ~doc:"Serialize the mapped-and-simulated result as a \
                   deterministic artifact to $(docv) — the same bytes a \
                   cgra_mapd daemon would store and serve for this request \
                   key."
             ~docv:"FILE")
  in
  let backend =
    let backend_conv =
      Arg.enum
        [ ("beam", Cgra_core.Flow_config.Beam);
          ("exact", Cgra_core.Flow_config.Exact);
          ("portfolio", Cgra_core.Flow_config.Portfolio) ]
    in
    Arg.(value & opt backend_conv Cgra_core.Flow_config.Beam
         & info [ "backend" ]
             ~doc:"Mapping backend: $(b,beam) (the stochastic beam search), \
                   $(b,exact) (the CDCL SAT backend — provably minimal \
                   schedule length per block, or a proof the block is \
                   unmappable under the encoding), or $(b,portfolio) (race \
                   both and keep the better-by-cost result; ties favour the \
                   beam)."
             ~docv:"NAME")
  in
  let dump_asm = Arg.(value & flag & info [ "asm" ] ~doc:"Print the per-tile assembly.") in
  let schedule = Arg.(value & flag & info [ "schedule" ] ~doc:"Print per-block schedule grids.") in
  let simulate = Arg.(value & flag & info [ "simulate" ] ~doc:"Run the cycle-level simulator and verify.") in
  let opt =
    Arg.(value & flag
         & info [ "opt" ]
             ~doc:"Map the naive lowering through the cgra_opt pipeline \
                   (differentially verified) instead of the default \
                   inline-optimized lowering, and print per-pass statistics.")
  in
  let dump_dfg =
    Arg.(value
         & opt (some (enum [ ("before", `Before); ("after", `After) ])) None
         & info [ "dump-dfg" ]
             ~doc:"Dump each basic block's data-flow graph in DOT format, \
                   either $(b,before) optimization (the compiled CDFG as \
                   given to the flow) or $(b,after) it (the CDFG the mapping \
                   actually binds — identical to before unless --opt)."
             ~docv:"WHEN")
  in
  let dump_dfg_of cdfg =
    Array.iter
      (fun b ->
        let label i =
          Printf.sprintf "%d:%s" i
            (Cgra_ir.Opcode.to_string b.Cgra_ir.Cdfg.nodes.(i).Cgra_ir.Cdfg.opcode)
        in
        Printf.printf "// block %s\n%s" b.Cgra_ir.Cdfg.name
          (Cgra_graph.Digraph.to_dot ~label (Cgra_ir.Cdfg.dfg_graph b)))
      cdfg.Cgra_ir.Cdfg.blocks
  in
  let write_trace file slug config stats =
    let module S = Cgra_core.Search in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (bs : S.block_stats) ->
        Printf.bprintf buf
          "{\"kernel\":\"%s\",\"config\":\"%s\",\"block\":%d,\"name\":\"%s\",\
           \"rounds\":%d,\"attempts\":%d,\"children\":%d,\
           \"route_failures\":%d,\"acmap_kills\":%d,\"ecmap_kills\":%d,\
           \"prune_survivors\":%d,\"finalize_failures\":%d,\"recomputes\":%d,\
           \"population_peak\":%d,\"wall_seconds\":%.6f}\n"
          slug
          (Cgra_arch.Config.to_string config)
          bs.S.block bs.S.block_name bs.S.rounds bs.S.attempts bs.S.children
          bs.S.route_failures bs.S.acmap_kills bs.S.ecmap_kills
          bs.S.prune_survivors bs.S.finalize_failures bs.S.recomputes
          bs.S.population_peak bs.S.wall_seconds)
      stats.Cgra_core.Flow.search;
    Printf.bprintf buf
      "{\"kernel\":\"%s\",\"config\":\"%s\",\"summary\":true,\"work\":%d,\
       \"retries_used\":%d,\"recomputes\":%d,\"population_peak\":%d}\n"
      slug
      (Cgra_arch.Config.to_string config)
      stats.Cgra_core.Flow.work stats.Cgra_core.Flow.retries_used
      stats.Cgra_core.Flow.recomputes stats.Cgra_core.Flow.population_peak;
    write_file_or_die ~what:"--trace" file (Buffer.contents buf)
  in
  let protect =
    protect_arg
      ~doc:
        "Context-memory protection profile: $(b,none), $(b,parity), \
         $(b,secded), or a per-size-class csv (cm64=secded,cm32=parity,\
         cm16=none).  Part of the artifact key; --simulate and --emit run \
         through the ECC fetch path and account its energy."
  in
  let run slug config flow opt jobs validate degrade max_attempts faults_file
      trace dump_dfg emit dump_asm schedule simulate backend protect =
    let protection = protect_of_flag protect in
    match Cgra_kernels.Kernels.by_slug slug with
    | None ->
      Printf.eprintf "unknown kernel %s (try: cgra_map list)\n" slug;
      exit 1
    | Some k -> (
      let cdfg =
        if opt then Cgra_kernels.Kernel_def.cdfg_raw k
        else Cgra_kernels.Kernel_def.cdfg k
      in
      if validate then Cgra_verify.Validator.install ();
      let faults =
        match faults_file with
        | None -> []
        | Some file -> (
          match Cgra_arch.Fault_map.load file with
          | Ok fs -> fs
          | Error e ->
            Printf.eprintf "--faults %s: %s\n" file e;
            exit 1)
      in
      let flow =
        { flow with
          Cgra_core.Flow_config.optimize = opt; expand_jobs = max 1 jobs;
          validate; degrade; max_attempts = max 1 max_attempts; faults;
          backend; protection }
      in
      let sim_protect = sim_protect_of protection in
      let opt_verify =
        if opt then
          Some
            (Cgra_opt.Pipeline.verifier_of_mems
               [ Cgra_kernels.Kernel_def.fresh_mem k ])
        else None
      in
      let cgra = Cgra_arch.Config.cgra config in
      (if faults <> [] then
         (* Surface bad tile ids before mapping, and show what remains. *)
         match Cgra_arch.Cgra.degrade cgra faults with
         | exception Invalid_argument e ->
           Printf.eprintf "--faults %s: %s\n" (Option.get faults_file) e;
           exit 1
         | degraded ->
           Printf.printf "fault map: %s\n"
             (String.concat " "
                (List.map Cgra_arch.Cgra.fault_to_string
                   (Cgra_arch.Cgra.faults degraded)));
           Format.printf "%a@." Cgra_arch.Cgra.pp_grid degraded);
      if dump_dfg = Some `Before then dump_dfg_of cdfg;
      let print_escalations = function
        | [] -> ()
        | es ->
          List.iter
            (fun e ->
              Printf.printf "  escalation: %s\n"
                (Cgra_core.Flow.escalation_to_string e))
            es
      in
      match Cgra_core.Flow.run ~config:flow ?opt_verify cgra cdfg with
      | Error f ->
        Printf.printf "no mapping: %s\n" f.Cgra_core.Flow.reason;
        print_escalations f.Cgra_core.Flow.gave_up;
        exit 2
      | Ok (m, stats) ->
        print_escalations stats.Cgra_core.Flow.escalations;
        (match trace with
         | Some file ->
           write_trace file slug config stats;
           Printf.printf "search trace written to %s\n" file
         | None -> ());
        (match stats.Cgra_core.Flow.opt with
         | Some report -> print_string (Cgra_opt.Pipeline.render_report report)
         | None -> ());
        if dump_dfg = Some `After then dump_dfg_of m.Cgra_core.Mapping.cdfg;
        Format.printf "%a@." Cgra_core.Mapping.pp_summary m;
        Format.printf "recomputes: %d, population peak: %d@."
          stats.Cgra_core.Flow.recomputes stats.Cgra_core.Flow.population_peak;
        if schedule then
          Array.iteri
            (fun bi _ -> Format.printf "%a@." Cgra_core.Mapping.pp_schedule (m, bi))
            m.Cgra_core.Mapping.bbs;
        let prog = Cgra_asm.Assemble.assemble m in
        (match emit with
         | None -> ()
         | Some file ->
           let module Serve = Cgra_serve in
           let spec =
             match
               Serve.Key.spec_of_bundled ~slug ~config ~flow
                 ~opt:(if opt then Serve.Key.Optimized else Serve.Key.Default)
                 ~faults
             with
             | Ok s -> s
             | Error e ->
               Printf.eprintf "--emit: %s\n" e;
               exit 1
           in
           let mem = Cgra_kernels.Kernel_def.fresh_mem k in
           let r = Cgra_sim.Simulator.run ?protect:sim_protect prog ~mem in
           let e =
             match sim_protect with
             | None -> Cgra_power.Energy.cgra m.Cgra_core.Mapping.cgra r
             | Some _ ->
               Cgra_power.Energy.cgra ~protect:protection
                 m.Cgra_core.Mapping.cgra r
           in
           let bytes =
             Serve.Artifact.render ~key_digest:(Serve.Key.digest spec) ~spec
               prog r e
           in
           write_file_or_die ~what:"--emit" file bytes;
           Printf.printf "artifact %s written to %s (%d bytes)\n"
             (Serve.Artifact.digest bytes) file (String.length bytes));
        if dump_asm then
          Array.iteri
            (fun t tp -> Format.printf "%a@." Cgra_asm.Assemble.pp_tile (t, tp))
            prog.Cgra_asm.Assemble.tiles;
        if simulate then begin
          let mem = Cgra_kernels.Kernel_def.fresh_mem k in
          let r = Cgra_sim.Simulator.run ?protect:sim_protect prog ~mem in
          let ok = mem = Cgra_kernels.Kernel_def.run_golden k in
          let e =
            match sim_protect with
            | None -> Cgra_power.Energy.cgra m.Cgra_core.Mapping.cgra r
            | Some _ ->
              Cgra_power.Energy.cgra ~protect:protection
                m.Cgra_core.Mapping.cgra r
          in
          Format.printf
            "simulated: %d cycles (%d stalls), functional check %s, %.3f uJ@."
            r.Cgra_sim.Simulator.cycles r.Cgra_sim.Simulator.stall_cycles
            (if ok then "PASSED" else "FAILED")
            (Cgra_power.Energy.to_uj e.Cgra_power.Energy.total_pj);
          (match (r.Cgra_sim.Simulator.ecc, sim_protect) with
           | Some ecc, Some _ ->
             Format.printf
               "protection %s: %d detected, %d corrected, %d scrub cycles, \
                %.1f pJ ECC@."
               (Cgra_arch.Protection.profile_to_string protection)
               ecc.Cgra_sim.Simulator.detected ecc.Cgra_sim.Simulator.corrected
               ecc.Cgra_sim.Simulator.scrub_cycles
               e.Cgra_power.Energy.protect_pj
           | _ -> ());
          if not ok then exit 3
        end)
  in
  Cmd.v (Cmd.info "map" ~doc)
    Term.(const run $ kernel $ config $ flow $ opt $ jobs $ validate $ degrade
          $ max_attempts $ faults_file $ trace $ dump_dfg $ emit $ dump_asm
          $ schedule $ simulate $ backend $ protect)

let fault_cmd =
  let doc =
    "Run a deterministic single-bit fault-injection campaign on a mapped \
     kernel."
  in
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel slug.")
  in
  let config =
    Arg.(value & opt config_conv Cgra_arch.Config.HET2 & info [ "c"; "config" ] ~doc:"CM configuration.")
  in
  let flow =
    Arg.(value & opt flow_conv Cgra_core.Flow_config.context_aware
         & info [ "f"; "flow" ] ~doc:"Mapping flow: basic, acmap, ecmap or full.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Campaign RNG seed." ~docv:"N")
  in
  let trials =
    Arg.(value & opt int 120
         & info [ "trials" ] ~doc:"Number of single-fault trials." ~docv:"K")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ]
             ~doc:"Run trials on $(docv) domains (default: the machine's \
                   recommended count).  The report is byte-identical at any \
                   value."
             ~docv:"N")
  in
  let show =
    Arg.(value & opt int 10
         & info [ "show" ]
             ~doc:"Print the first $(docv) non-masked trials in full."
             ~docv:"M")
  in
  let protect =
    protect_arg
      ~doc:
        "Run the campaign through the context-memory ECC fetch path at this \
         protection profile ($(b,none), $(b,parity), $(b,secded), or a \
         per-size-class csv).  Injection sites are identical at every \
         level; the summary gains detected/corrected counts."
  in
  let run slug config flow seed trials jobs show protect =
    let protection = protect_of_flag protect in
    if trials <= 0 then begin
      Printf.eprintf "--trials must be positive (got %d)\n" trials;
      exit 1
    end;
    match Cgra_kernels.Kernels.by_slug slug with
    | None ->
      Printf.eprintf "unknown kernel %s (try: cgra_map list)\n" slug;
      exit 1
    | Some k -> (
      let cdfg = Cgra_kernels.Kernel_def.cdfg k in
      let cgra = Cgra_arch.Config.cgra config in
      match Cgra_core.Flow.run ~config:flow cgra cdfg with
      | Error f ->
        Printf.printf "no mapping: %s\n" f.Cgra_core.Flow.reason;
        exit 2
      | Ok (m, _) ->
        let module F = Cgra_verify.Fault in
        let program = Cgra_asm.Assemble.assemble m in
        let key =
          Printf.sprintf "%s/%s/%s/fault" slug
            (Cgra_arch.Config.to_string config)
            (Cgra_core.Flow_config.steps_of flow)
        in
        let c =
          F.run_campaign ?jobs ~protect:protection ~seed ~trials ~key
            ~fresh_mem:(fun () -> Cgra_kernels.Kernel_def.fresh_mem k)
            program
        in
        let s = c.F.summary in
        Printf.printf
          "campaign %s: %d trials, seed %d, fault-free %d cycles\n\
           masked %d, wrong-output %d, crash %d, hang %d  (%.1f%% masked)\n"
          key s.F.trials seed c.F.golden_cycles s.F.masked s.F.wrong_output
          s.F.crash s.F.hang
          (100.0 *. float_of_int s.F.masked /. float_of_int s.F.trials);
        if not (Cgra_arch.Protection.is_none protection) then
          Printf.printf "protection %s: detected %d, corrected %d\n"
            (Cgra_arch.Protection.profile_to_string protection)
            s.F.detected s.F.corrected;
        let interesting =
          List.filter (fun (t : F.trial) -> t.F.outcome <> F.Masked) c.F.runs
        in
        List.iteri
          (fun i (t : F.trial) ->
            if i < show then
              Printf.printf "  trial %3d: %s -> %s\n" t.F.index
                (F.injection_to_string t.F.injection)
                (F.outcome_to_string t.F.outcome))
          interesting)
  in
  Cmd.v (Cmd.info "fault" ~doc)
    Term.(const run $ kernel $ config $ flow $ seed $ trials $ jobs $ show
          $ protect)

let compile_cmd =
  let doc = "Compile a kernel-language source file and print its CDFG." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let src = read_file_or_die ~what:"compile" file in
    match Cgra_lang.Compile.compile src with
    | Ok cdfg -> Format.printf "%a@." Cgra_ir.Cdfg.pp cdfg
    | Error e ->
      Printf.eprintf "%s: %s\n" file (Cgra_lang.Compile.error_to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run $ file)

let stats_cmd =
  let doc = "Print static and dynamic statistics of a kernel's CDFG." in
  let kernel =
    Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc:"Kernel slug.")
  in
  let run slug =
    match Cgra_kernels.Kernels.by_slug slug with
    | None ->
      Printf.eprintf "unknown kernel %s\n" slug;
      exit 1
    | Some k ->
      let cdfg = Cgra_kernels.Kernel_def.cdfg k in
      let mem = Cgra_kernels.Kernel_def.fresh_mem k in
      let trace = Cgra_ir.Interp.run cdfg ~mem in
      Format.printf "kernel %s: %d blocks, %d operations, %d symbol variables@."
        cdfg.Cgra_ir.Cdfg.kernel_name
        (Cgra_ir.Cdfg.block_count cdfg)
        (Cgra_ir.Cdfg.node_count cdfg)
        cdfg.Cgra_ir.Cdfg.sym_count;
      Format.printf "%-12s %6s %6s %9s %9s@." "block" "ops" "Wbb" "executions"
        "dyn-ops";
      Array.iteri
        (fun bi b ->
          let n = Array.length b.Cgra_ir.Cdfg.nodes in
          let execs = trace.Cgra_ir.Interp.block_counts.(bi) in
          Format.printf "%-12s %6d %6d %9d %9d@." b.Cgra_ir.Cdfg.name n
            (Cgra_ir.Cdfg.block_weight cdfg bi)
            execs (n * execs))
        cdfg.Cgra_ir.Cdfg.blocks
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ kernel)

let remote_cmd =
  let module Serve = Cgra_serve in
  let doc =
    "Request a mapping from a running cgra_mapd daemon; compute locally \
     (identical bytes) when none is reachable."
  in
  let kernel =
    Arg.(value & opt (some string) None
         & info [ "k"; "kernel" ] ~doc:"Kernel slug.")
  in
  let config =
    Arg.(value & opt config_conv Cgra_arch.Config.HET2
         & info [ "c"; "config" ] ~doc:"CM configuration.")
  in
  let flow =
    Arg.(value & opt flow_conv Cgra_core.Flow_config.context_aware
         & info [ "f"; "flow" ] ~doc:"Mapping flow: basic, acmap, ecmap or full.")
  in
  let opt =
    Arg.(value & flag
         & info [ "opt" ]
             ~doc:"Map the naive lowering through the cgra_opt pipeline.")
  in
  let faults_file =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~doc:"Map around the fault map in $(docv)."
             ~docv:"FILE")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ]
             ~doc:"Daemon socket (default: cgra_mapd.sock inside the cache \
                   directory)."
             ~docv:"PATH")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ]
             ~doc:"Connect to a daemon on 127.0.0.1:$(docv) instead of the \
                   Unix socket."
             ~docv:"PORT")
  in
  let emit =
    Arg.(value & opt (some string) None
         & info [ "emit" ] ~doc:"Write the artifact bytes to $(docv)."
             ~docv:"FILE")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print daemon statistics.") in
  let clear =
    Arg.(value & flag
         & info [ "clear" ] ~doc:"Clear the daemon's caches and stored artifacts.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to shut down.")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Check the daemon is alive.") in
  let no_fallback =
    Arg.(value & flag
         & info [ "no-fallback" ]
             ~doc:"Fail (exit 4) instead of computing locally when the \
                   daemon is unreachable.")
  in
  let backend =
    let backend_conv =
      Arg.enum
        [ ("beam", Cgra_core.Flow_config.Beam);
          ("exact", Cgra_core.Flow_config.Exact);
          ("portfolio", Cgra_core.Flow_config.Portfolio) ]
    in
    Arg.(value & opt backend_conv Cgra_core.Flow_config.Beam
         & info [ "backend" ]
             ~doc:"Mapping backend: $(b,beam), $(b,exact) or \
                   $(b,portfolio) — the same semantic knob the $(b,map) \
                   command takes; part of the request key, so each \
                   backend has its own store entry."
             ~docv:"NAME")
  in
  let deadline =
    Arg.(value & opt (some int) None
         & info [ "deadline" ]
             ~doc:"Give up on the mapping after $(docv) milliseconds \
                   (exit 5).  Applies to daemon compute and local \
                   fallback alike; a cached artifact is returned \
                   regardless."
             ~docv:"MS")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ]
             ~doc:"Retry an unreachable or overloaded daemon up to \
                   $(docv) extra times with capped exponential backoff \
                   before giving up (or falling back locally)."
             ~docv:"N")
  in
  let protect =
    protect_arg
      ~doc:
        "Context-memory protection profile of the request ($(b,none), \
         $(b,parity), $(b,secded), or a per-size-class csv).  A serve-key \
         knob: each profile has its own content address and store entry."
  in
  let run kernel config flow opt faults_file socket tcp emit stats clear
      shutdown ping no_fallback deadline_ms retries backend protect =
    let protection = protect_of_flag protect in
    let endpoint =
      match tcp with
      | Some port -> Serve.Client.Tcp ("127.0.0.1", port)
      | None ->
        Serve.Client.Unix_socket
          (match socket with
           | Some p -> p
           | None ->
             Filename.concat (Serve.Store.default_root ()) "cgra_mapd.sock")
    in
    (* Control requests never fall back: they are about the daemon. *)
    let control req render =
      match
        Serve.Client.with_conn endpoint (fun c -> Serve.Client.request c req)
      with
      | Error e | Ok (Error e) ->
        Printf.eprintf "%s\n" e;
        exit 1
      | Ok (Ok resp) -> (
        match render resp with
        | Some line -> print_endline line
        | None ->
          Printf.eprintf "unexpected response\n";
          exit 1)
    in
    if ping then
      control Serve.Protocol.Ping (function
        | Serve.Protocol.Pong -> Some "pong"
        | _ -> None)
    else if stats then
      control Serve.Protocol.Stats (function
        | Serve.Protocol.Stats_r s ->
          let avg total n = if n = 0 then 0.0 else total /. float_of_int n in
          Some
            (Printf.sprintf
               "(hits %d) (misses %d) (unmappable %d) (errors %d) (timeouts \
                %d) (shed %d) (inflight %d)\n\
                store: %d entries, %d bytes\n\
                latency: hit avg %.1f us, miss avg %.1f ms\n\
                uptime: %.1f s"
               s.Serve.Protocol.hits s.Serve.Protocol.misses
               s.Serve.Protocol.unmappable s.Serve.Protocol.errors
               s.Serve.Protocol.timeouts s.Serve.Protocol.shed
               s.Serve.Protocol.inflight s.Serve.Protocol.stored_entries
               s.Serve.Protocol.stored_bytes
               (avg s.Serve.Protocol.hit_us_total s.Serve.Protocol.hits)
               (avg s.Serve.Protocol.miss_us_total s.Serve.Protocol.misses
                /. 1e3)
               s.Serve.Protocol.uptime_s)
        | _ -> None)
    else if clear then
      control Serve.Protocol.Clear (function
        | Serve.Protocol.Cleared { evicted } ->
          Some (Printf.sprintf "cleared (%d artifacts evicted)" evicted)
        | _ -> None)
    else if shutdown then
      control Serve.Protocol.Shutdown (function
        | Serve.Protocol.Shutting_down -> Some "shutting down"
        | _ -> None)
    else begin
      let slug =
        match kernel with
        | Some s -> s
        | None ->
          Printf.eprintf
            "remote: -k KERNEL required (or one of --ping --stats --clear \
             --shutdown)\n";
          exit 1
      in
      let faults =
        match faults_file with
        | None -> []
        | Some file -> (
          match Cgra_arch.Fault_map.load file with
          | Ok fs -> fs
          | Error e ->
            Printf.eprintf "--faults %s: %s\n" file e;
            exit 1)
      in
      let flow =
        { flow with
          Cgra_core.Flow_config.optimize = opt; faults; backend; protection }
      in
      let spec =
        match
          Serve.Key.spec_of_bundled ~slug ~config ~flow
            ~opt:(if opt then Serve.Key.Optimized else Serve.Key.Default)
            ~faults
        with
        | Ok s -> s
        | Error e ->
          Printf.eprintf "%s (try: cgra_map list)\n" e;
          exit 1
      in
      match
        Serve.Client.map ~fallback:(not no_fallback) ?deadline_ms ~retries
          endpoint spec
      with
      | Error (Serve.Client.Unreachable { reason; _ }) ->
        (* typed one-liner, own exit code: scripts can tell "no daemon"
           from "daemon said no" *)
        Printf.eprintf "remote: daemon unreachable: %s\n" reason;
        exit 4
      | Error (Serve.Client.Rejected e) ->
        Printf.eprintf "%s\n" e;
        exit 1
      | Ok (Serve.Client.Timed_out { where }) ->
        Printf.eprintf "remote: timed out (%s)\n" where;
        exit 5
      | Ok (Serve.Client.Unmappable { reason }) ->
        Printf.printf "no mapping: %s\n" reason;
        exit 2
      | Ok (Serve.Client.Artifact { bytes; digest; source }) ->
        (* write the artifact before any chatter: a closed stdout pipe
           must not lose the file *)
        (match emit with
         | None -> ()
         | Some file -> write_file_or_die ~what:"--emit" file bytes);
        Printf.printf "artifact %s (%d bytes) via %s\n" digest
          (String.length bytes)
          (match source with
           | Serve.Client.Daemon { cached = true } -> "daemon (cache hit)"
           | Serve.Client.Daemon { cached = false } -> "daemon (computed)"
           | Serve.Client.Local -> "local fallback");
        (* echo the summary header lines up to the tile images *)
        String.split_on_char '\n' bytes
        |> List.to_seq
        |> Seq.take_while (fun l ->
               not (String.length l >= 5 && String.sub l 0 5 = "tiles"))
        |> Seq.iter print_endline;
        (match emit with
         | None -> ()
         | Some file -> Printf.printf "written to %s\n" file)
    end
  in
  Cmd.v (Cmd.info "remote" ~doc)
    Term.(const run $ kernel $ config $ flow $ opt $ faults_file $ socket $ tcp
          $ emit $ stats $ clear $ shutdown $ ping $ no_fallback $ deadline
          $ retries $ backend $ protect)

let artifacts_cmd =
  let doc = "Regenerate the paper's tables and figures." in
  let which = Arg.(value & pos 0 string "all" & info [] ~docv:"ARTIFACT") in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ]
             ~doc:"Evaluate the experiment grid with $(docv) domains before \
                   rendering (default: the machine's recommended domain \
                   count).  Output is byte-identical at any value."
             ~docv:"N")
  in
  let run jobs which =
    (match which with
     | "all" -> Cgra_exp.Runner.warm ?jobs ()
     | _ -> if jobs <> None then Cgra_exp.Runner.warm ?jobs ());
    match which with
    | "all" -> print_string (Cgra_exp.Figures.run_all ())
    | other -> (
      match List.assoc_opt other Cgra_exp.Figures.all_artifacts with
      | Some render -> print_string (render ())
      | None ->
        Printf.eprintf "unknown artifact %s (valid: all %s)\n" other
          (String.concat " " Cgra_exp.Figures.artifact_names);
        exit 1)
  in
  Cmd.v (Cmd.info "artifacts" ~doc) Term.(const run $ jobs $ which)

let () =
  let doc = "context-memory aware mapping tool-chain for CGRAs" in
  let info = Cmd.info "cgra_map" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; map_cmd; fault_cmd; compile_cmd; stats_cmd; remote_cmd;
            artifacts_cmd ]))
