(* The mapping daemon.

   cgra_mapd [--socket PATH] [--tcp PORT] [--cache DIR] [--jobs N] [-v]

   Listens on a Unix-domain socket (and optionally loopback TCP) for
   length-prefixed s-expression requests, serves mapping artifacts out
   of a content-addressed on-disk store, and computes misses on a
   persistent domain pool with fair per-client queueing.  SIGTERM or a
   [shutdown] request drains in-flight work and exits cleanly. *)

open Cmdliner
module Serve = Cgra_serve

let default_socket () =
  Filename.concat (Serve.Store.default_root ()) "cgra_mapd.sock"

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket" ]
           ~doc:"Unix-domain socket to listen on (default: \
                 cgra_mapd.sock inside the cache directory)."
           ~docv:"PATH")

let tcp =
  Arg.(value & opt (some int) None
       & info [ "tcp" ]
           ~doc:"Also listen on 127.0.0.1:$(docv)." ~docv:"PORT")

let cache =
  Arg.(value & opt (some string) None
       & info [ "cache" ]
           ~doc:"Artifact store root (default: \\$CGRA_MAPD_CACHE, then \
                 \\$XDG_CACHE_HOME/cgra_mapd, then ~/.cache/cgra_mapd)."
           ~docv:"DIR")

let jobs =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Compute worker domains (default: the machine's \
                 recommended count)."
           ~docv:"N")

let verbose =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log each request to stderr.")

let run socket tcp_port store_root jobs verbose =
  let socket_path =
    match socket with Some p -> p | None -> default_socket ()
  in
  match
    Serve.Server.serve
      { Serve.Server.socket_path; tcp_port; store_root; jobs; verbose }
  with
  | () -> ()
  | exception Serve.Server.Address_in_use { path } ->
    Printf.eprintf
      "cgra_mapd: %s: address in use (a live daemon answered on this \
       socket; stop it or pick another --socket)\n"
      path;
    exit 1
  | exception Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "cgra_mapd: %s %s: %s\n" fn arg (Unix.error_message err);
    exit 1
  | exception Sys_error e ->
    Printf.eprintf "cgra_mapd: %s\n" e;
    exit 1

let () =
  let doc = "persistent CGRA mapping service with a content-addressed store" in
  let info = Cmd.info "cgra_mapd" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info Term.(const run $ socket $ tcp $ cache $ jobs $ verbose)))
