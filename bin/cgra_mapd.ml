(* The mapping daemon.

   cgra_mapd [--socket PATH] [--tcp PORT] [--cache DIR] [--jobs N] [-v]

   Listens on a Unix-domain socket (and optionally loopback TCP) for
   length-prefixed s-expression requests, serves mapping artifacts out
   of a content-addressed on-disk store, and computes misses on a
   persistent domain pool with fair per-client queueing.  SIGTERM or a
   [shutdown] request drains in-flight work and exits cleanly. *)

open Cmdliner
module Serve = Cgra_serve

let default_socket () =
  Filename.concat (Serve.Store.default_root ()) "cgra_mapd.sock"

let socket =
  Arg.(value & opt (some string) None
       & info [ "socket" ]
           ~doc:"Unix-domain socket to listen on (default: \
                 cgra_mapd.sock inside the cache directory)."
           ~docv:"PATH")

let tcp =
  Arg.(value & opt (some int) None
       & info [ "tcp" ]
           ~doc:"Also listen on 127.0.0.1:$(docv)." ~docv:"PORT")

let cache =
  Arg.(value & opt (some string) None
       & info [ "cache" ]
           ~doc:"Artifact store root (default: \\$CGRA_MAPD_CACHE, then \
                 \\$XDG_CACHE_HOME/cgra_mapd, then ~/.cache/cgra_mapd)."
           ~docv:"DIR")

let jobs =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Compute worker domains (default: the machine's \
                 recommended count)."
           ~docv:"N")

let verbose =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log each request to stderr.")

let deadline =
  Arg.(value & opt (some int) None
       & info [ "deadline" ]
           ~doc:"Default compute deadline per map request, in \
                 milliseconds.  A request's own deadline can only \
                 tighten it.  Unlimited when absent."
           ~docv:"MS")

let queue_limit =
  Arg.(value & opt (some int) None
       & info [ "queue-limit" ]
           ~doc:"Shed cache-miss map requests (typed overloaded \
                 response) once the compute queue reaches $(docv) \
                 entries; portfolio requests degrade to beam at half \
                 that depth.  Cache hits are always served.  Never \
                 sheds when absent."
           ~docv:"N")

let io_timeout =
  Arg.(value & opt (some float) None
       & info [ "io-timeout" ]
           ~doc:"Drop a client connection whose read or write stalls \
                 for $(docv) seconds, freeing its handler thread.  \
                 Blocks forever when absent."
           ~docv:"SECONDS")

let run socket tcp_port store_root jobs verbose deadline_ms queue_limit
    io_timeout_s =
  let socket_path =
    match socket with Some p -> p | None -> default_socket ()
  in
  (match deadline_ms with
   | Some ms when ms <= 0 ->
     Printf.eprintf "cgra_mapd: --deadline must be positive (got %d)\n" ms;
     exit 1
   | _ -> ());
  (match queue_limit with
   | Some n when n <= 0 ->
     Printf.eprintf "cgra_mapd: --queue-limit must be positive (got %d)\n" n;
     exit 1
   | _ -> ());
  (match io_timeout_s with
   | Some s when s <= 0.0 ->
     Printf.eprintf "cgra_mapd: --io-timeout must be positive (got %g)\n" s;
     exit 1
   | _ -> ());
  match
    Serve.Server.serve
      { Serve.Server.socket_path; tcp_port; store_root; jobs; verbose;
        deadline_ms; queue_limit; io_timeout_s }
  with
  | () -> ()
  | exception Serve.Server.Address_in_use { path } ->
    Printf.eprintf
      "cgra_mapd: %s: address in use (a live daemon answered on this \
       socket; stop it or pick another --socket)\n"
      path;
    exit 1
  | exception Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "cgra_mapd: %s %s: %s\n" fn arg (Unix.error_message err);
    exit 1
  | exception Sys_error e ->
    Printf.eprintf "cgra_mapd: %s\n" e;
    exit 1

let () =
  let doc = "persistent CGRA mapping service with a content-addressed store" in
  let info = Cmd.info "cgra_mapd" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ socket $ tcp $ cache $ jobs $ verbose $ deadline
            $ queue_limit $ io_timeout)))
