(* Tests for the area and energy models. *)

module A = Cgra_power.Area
module E = Cgra_power.Energy
module Config = Cgra_arch.Config

let cpu_total = A.total (A.cpu_breakdown ())

let ratio config = A.total (A.cgra_breakdown (Config.cgra config)) /. cpu_total

let test_area_ratios () =
  (* the paper's Fig 11: HOM64 about 2x the CPU, HET about 1.5x *)
  Alcotest.(check bool) "HOM64 ~2x" true
    (ratio Config.HOM64 > 1.85 && ratio Config.HOM64 < 2.15);
  Alcotest.(check bool) "HET1 ~1.5-1.7x" true
    (ratio Config.HET1 > 1.45 && ratio Config.HET1 < 1.75);
  Alcotest.(check bool) "HET2 below HET1" true
    (ratio Config.HET2 < ratio Config.HET1)

let test_area_monotone_in_cm () =
  Alcotest.(check bool) "HOM64 > HOM32" true
    (ratio Config.HOM64 > ratio Config.HOM32)

let test_tile_area () =
  let hom = Config.cgra Config.HOM64 and het = Config.cgra Config.HET2 in
  Alcotest.(check bool) "CM64 tile bigger than CM16 tile" true
    (A.tile_um2 hom.Cgra_arch.Cgra.tiles.(12)
     > A.tile_um2 het.Cgra_arch.Cgra.tiles.(12));
  Alcotest.(check bool) "LSU adds area" true
    (A.tile_um2 hom.Cgra_arch.Cgra.tiles.(0)
     > A.tile_um2 hom.Cgra_arch.Cgra.tiles.(12))

(* A synthetic simulator result with fixed activity on every tile. *)
let synthetic_result ~cycles ~per_tile =
  {
    Cgra_sim.Simulator.cycles;
    stall_cycles = 0;
    blocks_executed = 1;
    instructions = 16 * (per_tile.Cgra_sim.Simulator.alu_ops + per_tile.mem_ops + per_tile.moves);
    activity = Array.make 16 per_tile;
    ecc = None;
  }

let activity =
  {
    Cgra_sim.Simulator.alu_ops = 10;
    mul_ops = 2;
    mem_ops = 3;
    moves = 4;
    fetches = 20;
    awake_cycles = 17;
  }

let test_energy_scales_with_cm () =
  let r = synthetic_result ~cycles:100 ~per_tile:activity in
  let e64 = E.cgra (Config.cgra Config.HOM64) r in
  let e32 = E.cgra (Config.cgra Config.HOM32) r in
  let e16 =
    E.cgra (Cgra_arch.Cgra.make ~cm_of_tile:(fun _ -> 16) ()) r
  in
  Alcotest.(check bool) "fetch energy decreases with CM size" true
    (e64.E.fetch_pj > e32.E.fetch_pj && e32.E.fetch_pj > e16.E.fetch_pj);
  Alcotest.(check bool) "leakage decreases with CM size" true
    (e64.E.leakage_pj > e32.E.leakage_pj);
  Alcotest.(check bool) "total decreases" true (e64.E.total_pj > e16.E.total_pj)

let test_energy_breakdown_sums () =
  let r = synthetic_result ~cycles:50 ~per_tile:activity in
  let e = E.cgra (Config.cgra Config.HET1) r in
  let sum =
    e.E.fetch_pj +. e.E.compute_pj +. e.E.moves_pj +. e.E.memory_pj
    +. e.E.leakage_pj
  in
  Alcotest.(check bool) "components sum to total" true
    (Float.abs (sum -. e.E.total_pj) < 1e-9)

let test_cpu_energy_positive_parts () =
  let r =
    {
      Cgra_cpu.Cpu_sim.cycles = 1000;
      instructions = 500;
      loads = 100;
      stores = 50;
      muls = 20;
      branches = 60;
      blocks_executed = 61;
    }
  in
  let e = E.cpu r in
  Alcotest.(check bool) "all parts positive" true
    (e.E.fetch_pj > 0.0 && e.E.memory_pj > 0.0 && e.E.leakage_pj > 0.0);
  Alcotest.(check bool) "leakage grows with runtime" true
    ((E.cpu { r with Cgra_cpu.Cpu_sim.cycles = 2000 }).E.leakage_pj
     > e.E.leakage_pj)

let test_to_uj () =
  Alcotest.(check (float 1e-12)) "unit conversion" 1.5 (E.to_uj 1.5e6)

let suite =
  [ ( "power",
      [ Alcotest.test_case "area ratios match Fig 11" `Quick test_area_ratios;
        Alcotest.test_case "area monotone in CM" `Quick test_area_monotone_in_cm;
        Alcotest.test_case "tile area" `Quick test_tile_area;
        Alcotest.test_case "energy scales with CM" `Quick test_energy_scales_with_cm;
        Alcotest.test_case "breakdown sums" `Quick test_energy_breakdown_sums;
        Alcotest.test_case "cpu energy parts" `Quick test_cpu_energy_positive_parts;
        Alcotest.test_case "pJ to uJ" `Quick test_to_uj ] ) ]
