(* The daemon stack, bottom-up: wire codec and framing, request keys,
   the content-addressed store (including corruption and a concurrent
   writer storm), the shared compute path, the protocol codecs, and an
   end-to-end socket test against a live in-process server. *)

module Serve = Cgra_serve
module Wire = Serve.Wire
module Key = Serve.Key
module Store = Serve.Store
module Compute = Serve.Compute
module Protocol = Serve.Protocol

let fail_on_error = function Ok v -> v | Error e -> Alcotest.fail e

let fail_on_map_error = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Cgra_serve.Client.map_error_to_string e)

(* ---- wire codec ------------------------------------------------------- *)

let rec sexp_equal a b =
  match (a, b) with
  | Wire.Atom x, Wire.Atom y -> String.equal x y
  | Wire.List xs, Wire.List ys ->
    List.length xs = List.length ys && List.for_all2 sexp_equal xs ys
  | _ -> false

let gen_sexp =
  let open QCheck.Gen in
  let atom = map (fun s -> Wire.Atom s) (string_size (int_bound 12)) in
  sized
    (fix (fun self n ->
         if n <= 0 then atom
         else
           frequency
             [
               (2, atom);
               ( 1,
                 map
                   (fun l -> Wire.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
             ]))

let arb_sexp = QCheck.make ~print:Wire.to_string gen_sexp

let test_codec_roundtrip () =
  let prop s =
    match Wire.parse (Wire.to_string s) with
    | Ok s' -> sexp_equal s s'
    | Error _ -> false
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"sexp codec round-trip" arb_sexp prop)

let test_codec_binary_atoms () =
  (* every byte value survives quoting *)
  let all = String.init 256 Char.chr in
  let s = Wire.List [ Wire.Atom "bytes"; Wire.Atom all ] in
  match Wire.parse (Wire.to_string s) with
  | Ok s' -> Alcotest.(check bool) "binary round-trip" true (sexp_equal s s')
  | Error e -> Alcotest.fail e

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Wire.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "parsed garbage %S" s))
    [ "("; ")"; "(a"; "\"unterminated"; "a b"; ""; "(a) trailing" ]

(* ---- framing ---------------------------------------------------------- *)

let with_pipe f =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let test_frame_roundtrip () =
  with_pipe (fun r w ->
      write_all w (Wire.frame_bytes "hello");
      write_all w (Wire.frame_bytes "");
      Unix.close w;
      (match Wire.read_frame r with
       | Ok p -> Alcotest.(check string) "payload" "hello" p
       | Error e -> Alcotest.fail (Wire.read_error_to_string e));
      (match Wire.read_frame r with
       | Ok p -> Alcotest.(check string) "zero-length payload" "" p
       | Error e -> Alcotest.fail (Wire.read_error_to_string e));
      match Wire.read_frame r with
      | Error Wire.Eof -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected clean EOF")

let test_frame_truncated () =
  with_pipe (fun r w ->
      (* half a length prefix *)
      write_all w "\x00\x00";
      Unix.close w;
      match Wire.read_frame r with
      | Error (Wire.Truncated _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Truncated (prefix)");
  with_pipe (fun r w ->
      (* prefix promises 10 bytes, payload delivers 4 *)
      write_all w "\x00\x00\x00\x0aabcd";
      Unix.close w;
      match Wire.read_frame r with
      | Error (Wire.Truncated { wanted = 10; got = 4 }) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Truncated {10;4}")

let test_frame_oversized () =
  with_pipe (fun r w ->
      let n = Wire.max_frame + 1 in
      let prefix =
        String.init 4 (fun i ->
            Char.chr ((n lsr (8 * (3 - i))) land 0xff))
      in
      write_all w prefix;
      Unix.close w;
      match Wire.read_frame r with
      | Error (Wire.Oversized { length; limit }) ->
        Alcotest.(check int) "length" n length;
        Alcotest.(check int) "limit" Wire.max_frame limit
      | Ok _ | Error _ -> Alcotest.fail "expected Oversized")

(* ---- keys ------------------------------------------------------------- *)

let fir_spec ?(flow = Cgra_core.Flow_config.basic) ?(faults = []) () =
  fail_on_error
    (Key.spec_of_bundled ~slug:"fir" ~config:Cgra_arch.Config.HOM64 ~flow
       ~opt:Key.Default ~faults)

let test_key_order_insensitive () =
  let spec = fir_spec () in
  let rev = { spec with Key.knobs = List.rev spec.Key.knobs } in
  Alcotest.(check string) "knob order does not change the digest"
    (Key.digest spec) (Key.digest rev)

let test_key_sensitivity () =
  let base = Key.digest (fir_spec ()) in
  let differs what spec =
    if String.equal base (Key.digest spec) then
      Alcotest.fail (what ^ " must change the digest")
  in
  differs "a knob value"
    (let s = fir_spec () in
     {
       s with
       Key.knobs =
         List.map
           (fun (n, v) -> if n = "seed" then (n, "12345") else (n, v))
           s.Key.knobs;
     });
  differs "the configuration"
    { (fir_spec ()) with Key.config = Cgra_arch.Config.HET2 };
  differs "the opt mode" { (fir_spec ()) with Key.opt = Key.Optimized };
  differs "the fault map"
    (fir_spec () |> fun s ->
     { s with Key.faults = [ Cgra_arch.Cgra.Dead_tile { tile = 3 } ] });
  differs "the kernel source"
    {
      (fir_spec ()) with
      Key.kernel = Key.Inline { source = "x"; mem_words = 64 };
    }

let test_key_excluded_knobs () =
  (* expand_jobs and validate are bytes-neutral and must not appear *)
  let flow =
    { Cgra_core.Flow_config.basic with expand_jobs = 7; validate = true }
  in
  Alcotest.(check string) "bytes-neutral fields are not keyed"
    (Key.digest (fir_spec ()))
    (Key.digest (fir_spec ~flow ()))

let test_key_knobs_roundtrip () =
  let knobs = Key.knobs_of_config Cgra_core.Flow_config.context_aware in
  let fc = fail_on_error (Key.config_of_knobs knobs) in
  Alcotest.(check (list (pair string string)))
    "knobs -> config -> knobs round-trip" knobs (Key.knobs_of_config fc);
  (match Key.config_of_knobs [ ("no_such_knob", "1") ] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown knob accepted");
  match Key.config_of_knobs [ ("beam_width", "bogus") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparsable knob value accepted"

(* ---- store ------------------------------------------------------------ *)

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)

let with_store f =
  let root = fresh_dir "cgra-store-test" in
  let store = Store.open_ ~root () in
  Fun.protect ~finally:(fun () -> ignore (Store.clear store)) (fun () -> f store)

let key_a = String.make 32 'a'

let test_store_roundtrip () =
  with_store (fun store ->
      Alcotest.(check bool) "miss before put" true
        (match Store.find store key_a with Store.Miss -> true | _ -> false);
      let payload = "artifact bytes \x00\xff with binary\n" in
      Store.put store key_a payload;
      (match Store.find store key_a with
       | Store.Hit bytes ->
         Alcotest.(check string) "byte-identical round-trip" payload bytes
       | Store.Miss | Store.Evicted_corrupt _ -> Alcotest.fail "expected hit");
      Alcotest.(check int) "one entry" 1 (Store.entries store);
      (* put is first-writer-wins: a second put must not change the bytes *)
      Store.put store key_a "different";
      match Store.find store key_a with
      | Store.Hit bytes -> Alcotest.(check string) "immutable" payload bytes
      | _ -> Alcotest.fail "expected hit")

let test_store_corruption () =
  with_store (fun store ->
      Store.put store key_a "good payload";
      (* flip bytes in the stored file *)
      let dir = Filename.concat (Store.root store) (String.sub key_a 0 2) in
      let file =
        Filename.concat dir (String.sub key_a 2 (String.length key_a - 2) ^ ".art")
      in
      let oc = open_out_bin file in
      output_string oc "cgra-store v1 0123 12\ncorrupted!!";
      close_out oc;
      (match Store.find store key_a with
       | Store.Evicted_corrupt _ -> ()
       | Store.Hit _ -> Alcotest.fail "served corrupt bytes"
       | Store.Miss -> Alcotest.fail "corrupt entry should be evicted loudly");
      Alcotest.(check bool) "evicted from disk" false (Sys.file_exists file);
      match Store.find store key_a with
      | Store.Miss -> ()
      | _ -> Alcotest.fail "expected miss after eviction")

let test_store_concurrent_writers () =
  with_store (fun store ->
      let payload = String.concat "-" (List.init 64 string_of_int) in
      Cgra_util.Pool.iter ~jobs:8
        (fun _ -> Store.put store key_a payload)
        (List.init 32 Fun.id);
      Alcotest.(check int) "storm leaves exactly one entry" 1
        (Store.entries store);
      match Store.find store key_a with
      | Store.Hit bytes -> Alcotest.(check string) "intact" payload bytes
      | _ -> Alcotest.fail "expected hit after storm")

(* ---- compute ---------------------------------------------------------- *)

let test_compute_deterministic () =
  let spec = fir_spec () in
  match (Compute.run spec, Compute.run spec) with
  | ( Ok (Compute.Artifact { bytes = b1; digest = d1 }),
      Ok (Compute.Artifact { bytes = b2; digest = _ }) ) ->
    Alcotest.(check string) "byte-identical artifacts" b1 b2;
    Alcotest.(check string) "digest is MD5 of the bytes"
      (Digest.to_hex (Digest.string b1))
      d1;
    (* the artifact names its own request key *)
    let key_line = "key " ^ Key.digest spec in
    Alcotest.(check bool) "key digest embedded" true
      (List.mem key_line (String.split_on_char '\n' b1))
  | Ok (Compute.Unmappable { reason }), _ | _, Ok (Compute.Unmappable { reason })
    ->
    Alcotest.fail ("fir should map: " ^ reason)
  | Ok (Compute.Timed_out { where }), _ | _, Ok (Compute.Timed_out { where }) ->
    Alcotest.fail ("no deadline was armed, yet timed out at " ^ where)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_compute_unmappable () =
  let spec =
    fail_on_error
      (Key.spec_of_bundled ~slug:"fft" ~config:Cgra_arch.Config.HOM32
         ~flow:Cgra_core.Flow_config.basic ~opt:Key.Default ~faults:[])
  in
  match Compute.run spec with
  | Ok (Compute.Unmappable _) -> ()
  | Ok (Compute.Artifact _) -> Alcotest.fail "fft should overflow HOM32"
  | Ok (Compute.Timed_out _) -> Alcotest.fail "no deadline was armed"
  | Error e -> Alcotest.fail e

let test_compute_bad_request () =
  let spec =
    {
      Key.kernel = Key.Inline { source = "this does not compile"; mem_words = 64 };
      config = Cgra_arch.Config.HOM64;
      knobs = [];
      opt = Key.Default;
      faults = [];
    }
  in
  match Compute.run spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense source should be a typed request error"

(* ---- protocol --------------------------------------------------------- *)

let roundtrip_request req =
  match Wire.parse (Wire.to_string (Protocol.request_to_sexp req)) with
  | Error e -> Alcotest.fail ("request did not re-parse: " ^ e)
  | Ok sexp -> fail_on_error (Protocol.request_of_sexp sexp)

let test_protocol_requests () =
  (match roundtrip_request Protocol.Ping with
   | Protocol.Ping -> ()
   | _ -> Alcotest.fail "ping");
  (match roundtrip_request Protocol.Stats with
   | Protocol.Stats -> ()
   | _ -> Alcotest.fail "stats");
  let spec =
    fir_spec ~flow:Cgra_core.Flow_config.context_aware
      ~faults:[ Cgra_arch.Cgra.Dead_tile { tile = 5 } ] ()
  in
  (match roundtrip_request (Protocol.Map { spec; deadline_ms = None }) with
   | Protocol.Map { spec = spec'; deadline_ms } ->
     Alcotest.(check string) "map request preserves the key" (Key.digest spec)
       (Key.digest spec');
     Alcotest.(check (option int)) "no deadline survives as none" None
       deadline_ms
   | _ -> Alcotest.fail "map");
  (match roundtrip_request (Protocol.Map { spec; deadline_ms = Some 1500 }) with
   | Protocol.Map { spec = spec'; deadline_ms } ->
     Alcotest.(check string) "deadline does not perturb the key"
       (Key.digest spec) (Key.digest spec');
     Alcotest.(check (option int)) "deadline_ms round-trips" (Some 1500)
       deadline_ms
   | _ -> Alcotest.fail "map with deadline");
  match
    Wire.parse "(map (kernel fir) (config HET2) (deadline_ms 0))"
  with
  | Error e -> Alcotest.fail ("test sexp invalid: " ^ e)
  | Ok sexp -> (
    match Protocol.request_of_sexp sexp with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "non-positive deadline should be rejected")

let test_protocol_map_validation () =
  let reject name text =
    match Wire.parse text with
    | Error e -> Alcotest.fail ("test sexp invalid: " ^ e)
    | Ok sexp -> (
      match Protocol.request_of_sexp sexp with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (name ^ " should be rejected"))
  in
  reject "unknown kernel" "(map (kernel no_such) (config HET2))";
  reject "missing kernel" "(map (config HET2))";
  reject "both kernel and source"
    "(map (kernel fir) (source \"x\") (config HET2))";
  reject "unknown config" "(map (kernel fir) (config NOPE))";
  reject "unknown knob"
    "(map (kernel fir) (config HET2) (knobs (warp_speed 9)))";
  reject "bad fault map" "(map (kernel fir) (config HET2) (faults \"(bogus)\"))"

let test_protocol_responses () =
  let roundtrip resp =
    match Wire.parse (Wire.to_string (Protocol.response_to_sexp resp)) with
    | Error e -> Alcotest.fail ("response did not re-parse: " ^ e)
    | Ok sexp -> fail_on_error (Protocol.response_of_sexp sexp)
  in
  let binary = String.init 256 Char.chr in
  (match
     roundtrip
       (Protocol.Artifact_r
          { digest = "d41d8cd9"; cached = true; bytes = binary })
   with
   | Protocol.Artifact_r { digest; cached; bytes } ->
     Alcotest.(check string) "digest" "d41d8cd9" digest;
     Alcotest.(check bool) "cached" true cached;
     Alcotest.(check string) "binary artifact bytes survive" binary bytes
   | _ -> Alcotest.fail "artifact response");
  (match
     roundtrip
       (Protocol.Stats_r
          {
            Protocol.hits = 3;
            misses = 1;
            unmappable = 0;
            errors = 2;
            timeouts = 5;
            shed = 7;
            inflight = 1;
            stored_entries = 4;
            stored_bytes = 6400;
            hit_us_total = 12.5;
            miss_us_total = 9.75e6;
            uptime_s = 3.25;
          })
   with
   | Protocol.Stats_r s ->
     Alcotest.(check int) "hits" 3 s.Protocol.hits;
     Alcotest.(check int) "timeouts" 5 s.Protocol.timeouts;
     Alcotest.(check int) "shed" 7 s.Protocol.shed;
     Alcotest.(check (float 0.0)) "floats exact" 9.75e6
       s.Protocol.miss_us_total
   | _ -> Alcotest.fail "stats response");
  (match roundtrip (Protocol.Timed_out_r { where = "exact solve b0" }) with
   | Protocol.Timed_out_r { where } ->
     Alcotest.(check string) "timed-out carries where" "exact solve b0" where
   | _ -> Alcotest.fail "timed-out response");
  match roundtrip (Protocol.Overloaded_r { queue_depth = 12 }) with
  | Protocol.Overloaded_r { queue_depth } ->
    Alcotest.(check int) "overloaded carries depth" 12 queue_depth
  | _ -> Alcotest.fail "overloaded response"

(* ---- end-to-end over a live socket ------------------------------------ *)

let test_e2e_daemon () =
  let root = fresh_dir "cgra-mapd-test" in
  let socket_path = fresh_dir "cgra-mapd-test" ^ ".sock" in
  let server =
    Serve.Server.start
      {
        Serve.Server.socket_path;
        tcp_port = None;
        store_root = Some root;
        jobs = Some 2;
        verbose = false;
        deadline_ms = None;
        queue_limit = None;
        io_timeout_s = None;
      }
  in
  let ep = Serve.Client.Unix_socket socket_path in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop server;
      Serve.Server.wait server;
      Cgra_exp.Runner.set_artifact_backend None;
      ignore (Store.clear (Serve.Server.store server)))
    (fun () ->
      let spec = fir_spec () in
      (* two clients race the same cold key: single-flight must hand both
         the same bytes, computed once *)
      let ask () =
        fail_on_map_error (Serve.Client.map ~fallback:false ep spec)
      in
      let d1 = Domain.spawn ask and d2 = Domain.spawn ask in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      let bytes_of = function
        | Serve.Client.Artifact { bytes; _ } -> bytes
        | Serve.Client.Unmappable { reason } -> Alcotest.fail reason
        | Serve.Client.Timed_out { where } ->
          Alcotest.fail ("no deadline was armed, yet timed out at " ^ where)
      in
      let b1 = bytes_of r1 and b2 = bytes_of r2 in
      Alcotest.(check string) "concurrent clients get identical bytes" b1 b2;
      (* identical to the local compute path *)
      (match Compute.run spec with
       | Ok (Compute.Artifact { bytes; _ }) ->
         Alcotest.(check string) "daemon bytes equal local bytes" bytes b1
       | Ok (Compute.Unmappable _ | Compute.Timed_out _) | Error _ ->
         Alcotest.fail "local compute failed");
      (* a third request is a store hit *)
      (match ask () with
       | Serve.Client.Artifact { source = Serve.Client.Daemon { cached }; bytes; _ }
         ->
         Alcotest.(check bool) "third request served from the store" true cached;
         Alcotest.(check string) "hit bytes identical" b1 bytes
       | _ -> Alcotest.fail "expected a daemon artifact");
      (* negative result flows through as a typed answer *)
      let fft =
        fail_on_error
          (Key.spec_of_bundled ~slug:"fft" ~config:Cgra_arch.Config.HOM32
             ~flow:Cgra_core.Flow_config.basic ~opt:Key.Default ~faults:[])
      in
      (match fail_on_map_error (Serve.Client.map ~fallback:false ep fft) with
       | Serve.Client.Unmappable _ -> ()
       | Serve.Client.Artifact _ -> Alcotest.fail "fft@HOM32 should not map"
       | Serve.Client.Timed_out _ -> Alcotest.fail "no deadline was armed");
      (* stats reflect the traffic on one persistent connection *)
      fail_on_error
        (Serve.Client.with_conn ep (fun c ->
             (match fail_on_error (Serve.Client.request c Protocol.Ping) with
              | Protocol.Pong -> ()
              | _ -> Alcotest.fail "expected pong");
             (match fail_on_error (Serve.Client.request c Protocol.Stats) with
              | Protocol.Stats_r s ->
                Alcotest.(check int) "one store hit" 1 s.Protocol.hits;
                Alcotest.(check bool) "misses counted" true
                  (s.Protocol.misses >= 2);
                Alcotest.(check int) "one artifact stored" 1
                  s.Protocol.stored_entries
              | _ -> Alcotest.fail "expected stats");
             match fail_on_error (Serve.Client.request c Protocol.Clear) with
             | Protocol.Cleared { evicted } ->
               Alcotest.(check int) "clear evicts the stored artifact" 1 evicted
             | _ -> Alcotest.fail "expected cleared")))

(* ---- socket-path collision handling ----------------------------------- *)

(* Two daemons on one socket path: the second must refuse with the
   typed [Address_in_use] while the first keeps serving; a stale socket
   file (no listener behind it) must be swept and reused. *)
let test_socket_collision () =
  let root = fresh_dir "cgra-mapd-collide" in
  let socket_path = fresh_dir "cgra-mapd-collide" ^ ".sock" in
  (* plant a stale socket file: bound once, listener long gone *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX socket_path);
  Unix.close stale;
  Alcotest.(check bool) "stale socket file exists" true
    (Sys.file_exists socket_path);
  let server =
    Serve.Server.start
      {
        Serve.Server.socket_path;
        tcp_port = None;
        store_root = Some root;
        jobs = Some 1;
        verbose = false;
        deadline_ms = None;
        queue_limit = None;
        io_timeout_s = None;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop server;
      Serve.Server.wait server;
      Cgra_exp.Runner.set_artifact_backend None;
      ignore (Store.clear (Serve.Server.store server)))
    (fun () ->
      (* a second daemon on the same, now live, socket must fail typed *)
      (match
         Serve.Server.start
           {
             Serve.Server.socket_path;
             tcp_port = None;
             store_root = Some (fresh_dir "cgra-mapd-collide2");
             jobs = Some 1;
             verbose = false;
             deadline_ms = None;
             queue_limit = None;
             io_timeout_s = None;
           }
       with
      | exception Serve.Server.Address_in_use { path } ->
        Alcotest.(check string) "typed collision names the socket"
          socket_path path
      | _server2 -> Alcotest.fail "second daemon must refuse a live socket");
      (* ...and the first daemon still answers *)
      let ep = Serve.Client.Unix_socket socket_path in
      fail_on_error
        (Serve.Client.with_conn ep (fun c ->
             match fail_on_error (Serve.Client.request c Protocol.Ping) with
             | Protocol.Pong -> ()
             | _ -> Alcotest.fail "expected pong")))

let suite =
  [ ( "serve",
      [ Alcotest.test_case "sexp codec round-trip" `Quick test_codec_roundtrip;
        Alcotest.test_case "binary atoms survive quoting" `Quick
          test_codec_binary_atoms;
        Alcotest.test_case "parse rejects garbage" `Quick
          test_parse_rejects_garbage;
        Alcotest.test_case "frame round-trip and EOF" `Quick
          test_frame_roundtrip;
        Alcotest.test_case "truncated frames are typed" `Quick
          test_frame_truncated;
        Alcotest.test_case "oversized frames are rejected" `Quick
          test_frame_oversized;
        Alcotest.test_case "key digest is knob-order-insensitive" `Quick
          test_key_order_insensitive;
        Alcotest.test_case "key digest tracks every semantic input" `Quick
          test_key_sensitivity;
        Alcotest.test_case "bytes-neutral knobs are excluded" `Quick
          test_key_excluded_knobs;
        Alcotest.test_case "knobs round-trip through a config" `Quick
          test_key_knobs_roundtrip;
        Alcotest.test_case "store round-trip, immutable entries" `Quick
          test_store_roundtrip;
        Alcotest.test_case "store evicts corrupt entries" `Quick
          test_store_corruption;
        Alcotest.test_case "store survives a writer storm" `Quick
          test_store_concurrent_writers;
        Alcotest.test_case "compute is byte-deterministic" `Quick
          test_compute_deterministic;
        Alcotest.test_case "compute reports unmappable" `Quick
          test_compute_unmappable;
        Alcotest.test_case "compute rejects bad requests" `Quick
          test_compute_bad_request;
        Alcotest.test_case "protocol request round-trips" `Quick
          test_protocol_requests;
        Alcotest.test_case "protocol validates map requests" `Quick
          test_protocol_map_validation;
        Alcotest.test_case "protocol response round-trips" `Quick
          test_protocol_responses;
        Alcotest.test_case "daemon end-to-end over a socket" `Quick
          test_e2e_daemon;
        Alcotest.test_case "socket collision: stale swept, live refused"
          `Quick test_socket_collision ] ) ]
