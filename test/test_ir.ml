(* Tests for the IR: opcodes, CDFG validation, builder, interpreter and
   the clean-up passes. *)

module Op = Cgra_ir.Opcode
module Cdfg = Cgra_ir.Cdfg
module B = Cgra_ir.Builder
module Interp = Cgra_ir.Interp
module Opt = Cgra_ir.Opt

let test_eval_basic () =
  Alcotest.(check int) "add" 5 (Op.eval Op.Add [ 2; 3 ]);
  Alcotest.(check int) "sub" (-1) (Op.eval Op.Sub [ 2; 3 ]);
  Alcotest.(check int) "mul" 6 (Op.eval Op.Mul [ 2; 3 ]);
  Alcotest.(check int) "lt true" 1 (Op.eval Op.Lt [ 2; 3 ]);
  Alcotest.(check int) "ge false" 0 (Op.eval Op.Ge [ 2; 3 ]);
  Alcotest.(check int) "min" 2 (Op.eval Op.Min [ 2; 3 ]);
  Alcotest.(check int) "select taken" 7 (Op.eval Op.Select [ 1; 7; 9 ]);
  Alcotest.(check int) "select not" 9 (Op.eval Op.Select [ 0; 7; 9 ])

let test_eval_wrap32 () =
  Alcotest.(check int) "overflow wraps" (-2147483648)
    (Op.eval Op.Add [ 2147483647; 1 ]);
  Alcotest.(check int) "mul wraps" 0 (Op.eval Op.Mul [ 65536; 65536 ]);
  Alcotest.(check int) "shra sign" (-1) (Op.eval Op.Shra [ -4; 2 ]);
  Alcotest.(check int) "shrl clears sign" 1073741823 (Op.eval Op.Shrl [ -4; 2 ])

let test_eval_shift_masking () =
  (* shift amounts are masked to 5 bits, as on a 32-bit datapath *)
  Alcotest.(check int) "shl by 33 = shl by 1" 4 (Op.eval Op.Shl [ 2; 33 ])

let test_eval_arity () =
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (Op.eval Op.Add [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_opcode_strings () =
  List.iter
    (fun op ->
      Alcotest.(check (option string))
        "roundtrip" (Some (Op.to_string op))
        (Option.map Op.to_string (Op.of_string (Op.to_string op))))
    Op.all

(* i := 0; while (i < 5) { mem[16+i] := i * i; i := i + 1 } *)
let square_cdfg () =
  let b = B.create "squares" in
  let i = B.fresh_sym b "i" in
  let pre = B.add_block b "pre" in
  let body = B.add_block b "body" in
  let exit_ = B.add_block b "exit" in
  B.set_live_out b pre i (Cdfg.Imm 0);
  B.set_terminator b pre (Cdfg.Jump (B.block_id body));
  let sq = B.add_node b body Op.Mul [ Cdfg.Sym i; Cdfg.Sym i ] in
  let addr = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 16 ] in
  let _ = B.add_node b body Op.Store [ addr; sq ] in
  let i1 = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 1 ] in
  let c = B.add_node b body Op.Lt [ i1; Cdfg.Imm 5 ] in
  B.set_live_out b body i i1;
  B.set_terminator b body (Cdfg.Branch (c, B.block_id body, B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  B.finish b

let test_interp_loop () =
  let cdfg = square_cdfg () in
  let mem = Array.make 32 0 in
  let trace = Interp.run cdfg ~mem in
  Alcotest.(check (array int)) "squares"
    [| 0; 1; 4; 9; 16 |] (Array.sub mem 16 5);
  Alcotest.(check int) "body ran 5 times" 5 trace.Interp.block_counts.(1);
  Alcotest.(check int) "blocks executed" 7 trace.Interp.steps

let test_interp_oob () =
  let cdfg = square_cdfg () in
  let mem = Array.make 4 0 in
  Alcotest.(check bool) "raises out of bounds" true
    (try
       ignore (Interp.run cdfg ~mem);
       false
     with Interp.Out_of_bounds _ -> true)

let test_interp_step_limit () =
  let b = B.create "forever" in
  let blk = B.add_block b "spin" in
  B.set_terminator b blk (Cdfg.Jump (B.block_id blk));
  let cdfg = B.finish b in
  Alcotest.(check bool) "raises step limit" true
    (try
       ignore (Interp.run ~max_steps:100 cdfg ~mem:(Array.make 1 0));
       false
     with Interp.Step_limit_exceeded -> true)

let test_interp_init_syms () =
  let b = B.create "init" in
  let x = B.fresh_sym b "x" in
  let blk = B.add_block b "only" in
  let _ = B.add_node b blk Op.Store [ Cdfg.Imm 0; Cdfg.Sym x ] in
  B.set_terminator b blk Cdfg.Return;
  let cdfg = B.finish b in
  let mem = Array.make 2 0 in
  ignore (Interp.run ~init_syms:[ (x, 42) ] cdfg ~mem);
  Alcotest.(check int) "init value stored" 42 mem.(0)

(* A malformed Load/Store that bypasses the builder (and so
   [Cdfg.validate]) must die with the typed [Bad_arity] diagnostics, not
   the bare [Failure "nth"] the old operand indexing raised. *)
let test_interp_bad_memory_arity () =
  let mk opcode operands =
    { Cdfg.kernel_name = "badmem";
      blocks =
        [| { Cdfg.name = "b";
             nodes = [| { Cdfg.opcode; operands; mem_dep = [] } |];
             live_out = [];
             terminator = Cdfg.Return } |];
      entry = 0;
      sym_count = 0;
      sym_names = [||] }
  in
  List.iter
    (fun (op, operands, expected, got) ->
      let cdfg = mk op operands in
      (match Cdfg.validate cdfg with
       | Error _ -> ()
       | Ok () -> Alcotest.fail "validate accepted the malformed node");
      match Interp.run cdfg ~mem:(Array.make 4 0) with
      | (_ : Interp.trace) -> Alcotest.fail "malformed memory node executed"
      | exception Interp.Bad_arity { block; node; opcode; expected = e; got = g }
        ->
        Alcotest.(check string) "block named" "b" block;
        Alcotest.(check int) "node named" 0 node;
        Alcotest.(check string) "opcode named" (Op.to_string op) opcode;
        Alcotest.(check int) "expected arity" expected e;
        Alcotest.(check int) "got arity" got g)
    [ (Op.Store, [ Cdfg.Imm 0 ], 2, 1);
      (Op.Store, [ Cdfg.Imm 0; Cdfg.Imm 1; Cdfg.Imm 2 ], 2, 3);
      (Op.Load, [], 1, 0);
      (Op.Load, [ Cdfg.Imm 0; Cdfg.Imm 1 ], 1, 2) ]

let test_validate_rejects () =
  let bad_operand =
    { Cdfg.kernel_name = "bad";
      blocks =
        [| { Cdfg.name = "b";
             nodes = [| { Cdfg.opcode = Op.Add; operands = [ Cdfg.Node 0; Cdfg.Imm 1 ]; mem_dep = [] } |];
             live_out = [];
             terminator = Cdfg.Return } |];
      entry = 0;
      sym_count = 0;
      sym_names = [||] }
  in
  (match Cdfg.validate bad_operand with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "self-referencing operand accepted");
  let bad_arity =
    { bad_operand with
      Cdfg.blocks =
        [| { Cdfg.name = "b";
             nodes = [| { Cdfg.opcode = Op.Add; operands = [ Cdfg.Imm 1 ]; mem_dep = [] } |];
             live_out = [];
             terminator = Cdfg.Return } |] }
  in
  (match Cdfg.validate bad_arity with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "bad arity accepted");
  let bad_dep =
    { bad_operand with
      Cdfg.blocks =
        [| { Cdfg.name = "b";
             nodes =
               [| { Cdfg.opcode = Op.Load; operands = [ Cdfg.Imm 0 ]; mem_dep = [ 3 ] } |];
             live_out = [];
             terminator = Cdfg.Return } |] }
  in
  (match Cdfg.validate bad_dep with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "forward mem_dep accepted")

let test_validate_unreachable () =
  let b = B.create "unreach" in
  let entry = B.add_block b "entry" in
  let orphan = B.add_block b "orphan" in
  B.set_terminator b entry Cdfg.Return;
  B.set_terminator b orphan Cdfg.Return;
  Alcotest.(check bool) "builder rejects unreachable block" true
    (try
       ignore (B.finish b);
       false
     with B.Build_error (B.Invalid_cdfg _) -> true)

let test_block_weight () =
  let cdfg = square_cdfg () in
  (* body uses i four times + defines it: n(s)=1, fanout=4 -> Wbb = 5 *)
  Alcotest.(check int) "body weight" 5 (Cdfg.block_weight cdfg 1);
  Alcotest.(check int) "pre weight" 1 (Cdfg.block_weight cdfg 0);
  Alcotest.(check int) "exit weight" 0 (Cdfg.block_weight cdfg 2)

let test_uses_of_node () =
  let cdfg = square_cdfg () in
  let body = cdfg.Cdfg.blocks.(1) in
  (* node 3 (i+1) is used by the compare and the live-out *)
  Alcotest.(check int) "i+1 fanout" 2 (Cdfg.uses_of_node body 3)

let test_opt_removes_dead () =
  let b = B.create "dead" in
  let x = B.fresh_sym b "x" in
  let blk = B.add_block b "only" in
  let v = B.add_node b blk Op.Add [ Cdfg.Imm 1; Cdfg.Imm 2 ] in
  let _dead = B.add_node b blk Op.Mul [ v; v ] in
  let _ = B.add_node b blk Op.Store [ Cdfg.Imm 0; v ] in
  B.set_live_out b blk x v;
  (* x is dead: never read afterwards *)
  B.set_terminator b blk Cdfg.Return;
  let cdfg = B.finish b in
  let opt = Opt.optimize cdfg in
  Alcotest.(check int) "dead live-out dropped" 0
    (List.length opt.Cdfg.blocks.(0).Cdfg.live_out);
  Alcotest.(check int) "dead mul dropped" 2
    (Array.length opt.Cdfg.blocks.(0).Cdfg.nodes)

let test_opt_preserves_semantics () =
  List.iter
    (fun k ->
      let cdfg = Cgra_kernels.Kernel_def.cdfg k in
      let opt = Opt.optimize cdfg in
      let m1 = Cgra_kernels.Kernel_def.fresh_mem k in
      let m2 = Cgra_kernels.Kernel_def.fresh_mem k in
      ignore (Interp.run cdfg ~mem:m1);
      ignore (Interp.run opt ~mem:m2);
      Alcotest.(check bool) (k.Cgra_kernels.Kernel_def.name ^ " preserved") true
        (m1 = m2))
    Cgra_kernels.Kernels.all

let test_simplify_cfg () =
  (* entry -> fwd -> fwd2 -> work; the two forwarding blocks disappear *)
  let b = B.create "fwd" in
  let entry = B.add_block b "entry" in
  let fwd = B.add_block b "fwd" in
  let fwd2 = B.add_block b "fwd2" in
  let work = B.add_block b "work" in
  B.set_terminator b entry (Cdfg.Jump (B.block_id fwd));
  B.set_terminator b fwd (Cdfg.Jump (B.block_id fwd2));
  B.set_terminator b fwd2 (Cdfg.Jump (B.block_id work));
  let _ = B.add_node b work Op.Store [ Cdfg.Imm 0; Cdfg.Imm 7 ] in
  B.set_terminator b work Cdfg.Return;
  let cdfg = B.finish b in
  let simple = Opt.simplify_cfg cdfg in
  Alcotest.(check bool) "valid" true (Cdfg.validate simple = Ok ());
  (* the empty entry is itself a forwarding block: only "work" remains *)
  Alcotest.(check int) "forwarding blocks gone" 1 (Cdfg.block_count simple);
  let m1 = Array.make 2 0 and m2 = Array.make 2 0 in
  let t1 = Interp.run cdfg ~mem:m1 in
  let t2 = Interp.run simple ~mem:m2 in
  Alcotest.(check bool) "same memory" true (m1 = m2);
  Alcotest.(check bool) "fewer dynamic blocks" true
    (t2.Interp.steps < t1.Interp.steps)

let test_simplify_cfg_on_kernels () =
  List.iter
    (fun k ->
      let cdfg = Cgra_kernels.Kernel_def.cdfg k in
      let simple = Opt.simplify_cfg cdfg in
      Alcotest.(check bool) "still valid" true (Cdfg.validate simple = Ok ());
      let m1 = Cgra_kernels.Kernel_def.fresh_mem k in
      let m2 = Cgra_kernels.Kernel_def.fresh_mem k in
      ignore (Interp.run cdfg ~mem:m1);
      ignore (Interp.run simple ~mem:m2);
      Alcotest.(check bool)
        (k.Cgra_kernels.Kernel_def.name ^ " semantics kept") true (m1 = m2))
    Cgra_kernels.Kernels.all

let if_else_source ~then_big =
  Printf.sprintf
    {|kernel k { arr x @ 0; arr o @ 8; var i, v, r;
      for (i = 0; i < 6; i = i + 1) {
        v = x[i];
        r = 0;
        if (v > %d) { r = v * 3 + 1; } else { r = 0 - v; }
        o[i] = r;
      } }|}
    then_big

let test_if_convert () =
  let cdfg = Cgra_lang.Compile.compile_exn (if_else_source ~then_big:2) in
  let conv = Opt.if_convert cdfg in
  Alcotest.(check bool) "valid" true (Cdfg.validate conv = Ok ());
  Alcotest.(check bool) "fewer blocks" true
    (Cdfg.block_count conv < Cdfg.block_count cdfg);
  (* no conditional branch into the diamond remains inside the loop body *)
  let run c =
    let mem = Array.make 16 0 in
    for k = 0 to 5 do
      mem.(k) <- k - 2
    done;
    ignore (Interp.run c ~mem);
    mem
  in
  Alcotest.(check bool) "same results" true (run cdfg = run conv);
  let m1 = run conv in
  Alcotest.(check int) "sample then" 10 m1.(8 + 5) (* v=3 -> 3*3+1 *);
  Alcotest.(check int) "sample else" 2 m1.(8 + 0) (* v=-2 -> 2 *)

let test_if_convert_skips_memory_arms () =
  (* arms with stores must not be speculated *)
  let src =
    {|kernel k { arr o @ 0; var i, v;
      for (i = 0; i < 4; i = i + 1) {
        v = i - 2;
        if (v > 0) { o[i] = v; } else { o[i + 8] = v; }
      } }|}
  in
  let cdfg = Cgra_lang.Compile.compile_exn src in
  let conv = Opt.if_convert cdfg in
  Alcotest.(check int) "unchanged" (Cdfg.block_count cdfg)
    (Cdfg.block_count conv)

let test_if_convert_on_kernels () =
  (* idempotent and semantics-preserving on the whole suite *)
  List.iter
    (fun k ->
      let cdfg = Cgra_kernels.Kernel_def.cdfg k in
      let conv = Opt.if_convert cdfg in
      Alcotest.(check bool) "valid" true (Cdfg.validate conv = Ok ());
      let m1 = Cgra_kernels.Kernel_def.fresh_mem k in
      let m2 = Cgra_kernels.Kernel_def.fresh_mem k in
      ignore (Interp.run cdfg ~mem:m1);
      ignore (Interp.run conv ~mem:m2);
      Alcotest.(check bool)
        (k.Cgra_kernels.Kernel_def.name ^ " semantics kept") true (m1 = m2))
    Cgra_kernels.Kernels.all

let test_if_convert_end_to_end () =
  (* the converted kernel still maps and simulates correctly *)
  let cdfg = Cgra_lang.Compile.compile_exn (if_else_source ~then_big:0) in
  let conv = Opt.simplify_cfg (Opt.if_convert cdfg) in
  match
    Cgra_core.Flow.run (Cgra_arch.Config.cgra Cgra_arch.Config.HOM64) conv
  with
  | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
  | Ok (m, _) ->
    let prog = Cgra_asm.Assemble.assemble m in
    let mem = Array.make 16 0 in
    for k = 0 to 5 do
      mem.(k) <- 5 - k
    done;
    let golden = Array.copy mem in
    ignore (Interp.run conv ~mem:golden);
    ignore (Cgra_sim.Simulator.run prog ~mem);
    Alcotest.(check bool) "CGRA matches interp" true (mem = golden)

let test_live_at_exit () =
  let cdfg = square_cdfg () in
  let live = Opt.live_at_exit cdfg in
  Alcotest.(check bool) "i live after pre" true live.(0).(0);
  Alcotest.(check bool) "i live after body (loop)" true live.(1).(0);
  Alcotest.(check bool) "i dead after exit" false live.(2).(0)

let suite =
  [ ( "ir",
      [ Alcotest.test_case "opcode eval" `Quick test_eval_basic;
        Alcotest.test_case "32-bit wrapping" `Quick test_eval_wrap32;
        Alcotest.test_case "shift masking" `Quick test_eval_shift_masking;
        Alcotest.test_case "arity errors" `Quick test_eval_arity;
        Alcotest.test_case "opcode string roundtrip" `Quick test_opcode_strings;
        Alcotest.test_case "interp loop" `Quick test_interp_loop;
        Alcotest.test_case "interp out of bounds" `Quick test_interp_oob;
        Alcotest.test_case "interp step limit" `Quick test_interp_step_limit;
        Alcotest.test_case "interp initial symbols" `Quick test_interp_init_syms;
        Alcotest.test_case "interp typed memory arity errors" `Quick
          test_interp_bad_memory_arity;
        Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
        Alcotest.test_case "validate unreachable" `Quick test_validate_unreachable;
        Alcotest.test_case "block weight Wbb" `Quick test_block_weight;
        Alcotest.test_case "node fanout" `Quick test_uses_of_node;
        Alcotest.test_case "opt removes dead code" `Quick test_opt_removes_dead;
        Alcotest.test_case "opt preserves semantics" `Quick test_opt_preserves_semantics;
        Alcotest.test_case "simplify cfg" `Quick test_simplify_cfg;
        Alcotest.test_case "if-conversion" `Quick test_if_convert;
        Alcotest.test_case "if-conversion skips memory arms" `Quick
          test_if_convert_skips_memory_arms;
        Alcotest.test_case "if-conversion on kernels" `Quick
          test_if_convert_on_kernels;
        Alcotest.test_case "if-conversion end to end" `Quick
          test_if_convert_end_to_end;
        Alcotest.test_case "simplify cfg on kernels" `Quick test_simplify_cfg_on_kernels;
        Alcotest.test_case "liveness" `Quick test_live_at_exit ] ) ]
