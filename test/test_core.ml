(* Tests for the mapper: occupancy accounting, scheduling, the flow and
   its context-memory awareness. *)

module Occ = Cgra_core.Occupancy
module Sched = Cgra_core.Sched
module Flow = Cgra_core.Flow
module FC = Cgra_core.Flow_config
module M = Cgra_core.Mapping
module Cdfg = Cgra_ir.Cdfg
module B = Cgra_ir.Builder
module Op = Cgra_ir.Opcode
module Config = Cgra_arch.Config

(* ---- occupancy ----------------------------------------------------- *)

let test_occupancy_basics () =
  let o = Occ.create () in
  Alcotest.(check int) "idle last" (-1) (Occ.last_busy o);
  Alcotest.(check int) "idle pnops" 0 (Occ.pnops o);
  Occ.occupy o 3;
  Occ.occupy o 5;
  Alcotest.(check bool) "3 busy" false (Occ.is_free o 3);
  Alcotest.(check int) "first free after 3" 4 (Occ.first_free_at_or_after o 3);
  Alcotest.(check int) "busy count" 2 (Occ.busy_count o);
  (* idle runs before the last busy cycle: [0-2] and [4] *)
  Alcotest.(check int) "pnops" 2 (Occ.pnops o);
  (* optimistic drops the leading run *)
  Alcotest.(check int) "optimistic" 1 (Occ.pnops_optimistic o);
  Alcotest.(check (list int)) "busy cycles" [ 3; 5 ] (Occ.busy_cycles o)

let test_occupancy_dense () =
  let o = Occ.create () in
  for c = 0 to 9 do
    Occ.occupy o c
  done;
  Alcotest.(check int) "no gaps" 0 (Occ.pnops o);
  Alcotest.(check int) "optimistic too" 0 (Occ.pnops_optimistic o)

let test_occupancy_double_book () =
  let o = Occ.create () in
  Occ.occupy o 2;
  Alcotest.(check bool) "double booking rejected" true
    (try
       Occ.occupy o 2;
       false
     with Invalid_argument _ -> true)

(* Reference implementation of the counters that [occupy] now maintains
   incrementally: rescan the busy-cycle list and count maximal gaps in
   [0, last_busy] the slow, obviously-correct way. *)
let reference_counts o =
  let cycles = Occ.busy_cycles o in
  let busy = List.length cycles in
  let runs =
    match cycles with
    | [] -> 0
    | first :: rest ->
      let lead = if first > 0 then 1 else 0 in
      let rec gaps prev = function
        | [] -> 0
        | c :: tl -> (if c > prev + 1 then 1 else 0) + gaps c tl
      in
      lead + gaps first rest
  in
  (busy, runs)

let prop_incremental_counts =
  QCheck.Test.make
    ~name:"incremental busy/pnop counts match a full rescan" ~count:500
    QCheck.(list_of_size Gen.(int_range 0 40) (int_bound 63))
    (fun cycles ->
      let o = Occ.create () in
      List.for_all
        (fun c ->
          if Occ.is_free o c then Occ.occupy o c;
          (* the invariant must hold after *every* occupy, not just at the
             end: interior splits, run merges and appends all occur mid-
             sequence *)
          let busy, runs = reference_counts o in
          Occ.busy_count o = busy && Occ.pnops o = runs)
        cycles)

let prop_optimistic_le_exact =
  QCheck.Test.make ~name:"optimistic pnops <= exact pnops" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 30) (int_bound 63))
    (fun cycles ->
      let o = Occ.create () in
      List.iter (fun c -> if Occ.is_free o c then Occ.occupy o c) cycles;
      Occ.pnops_optimistic o <= Occ.pnops o)

let prop_pnops_bounded_by_busy =
  QCheck.Test.make ~name:"pnop runs bounded by busy count" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 63))
    (fun cycles ->
      let o = Occ.create () in
      List.iter (fun c -> if Occ.is_free o c then Occ.occupy o c) cycles;
      (* every interior idle run is delimited by busy cycles *)
      Occ.pnops o <= Occ.busy_count o)

(* ---- scheduling ------------------------------------------------------ *)

let chain_cdfg () =
  (* n0 -> n1 -> n2 plus an independent n3, all stored *)
  let b = B.create "chain" in
  let blk = B.add_block b "only" in
  let n0 = B.add_node b blk Op.Add [ Cdfg.Imm 1; Cdfg.Imm 2 ] in
  let n1 = B.add_node b blk Op.Add [ n0; Cdfg.Imm 1 ] in
  let n2 = B.add_node b blk Op.Add [ n1; Cdfg.Imm 1 ] in
  let n3 = B.add_node b blk Op.Add [ Cdfg.Imm 5; Cdfg.Imm 6 ] in
  let _ = B.add_node b blk Op.Store [ Cdfg.Imm 0; n2 ] in
  let _ = B.add_node b blk Op.Store [ Cdfg.Imm 1; n3 ] in
  B.set_terminator b blk Cdfg.Return;
  B.finish b

let test_sched_levels () =
  let cdfg = chain_cdfg () in
  let info = Sched.analyse cdfg 0 in
  Alcotest.(check int) "asap n0" 0 info.Sched.asap.(0);
  Alcotest.(check int) "asap n2" 2 info.Sched.asap.(2);
  Alcotest.(check int) "chain is critical" 0 info.Sched.mobility.(0);
  Alcotest.(check bool) "independent node has slack" true
    (info.Sched.mobility.(3) > 0);
  Alcotest.(check int) "critical path" 4 (Sched.critical_path info)

let test_sched_order_topological () =
  let cdfg = chain_cdfg () in
  let info = Sched.analyse cdfg 0 in
  let pos = Array.make 6 0 in
  List.iteri (fun i n -> pos.(n) <- i) info.Sched.order;
  Alcotest.(check int) "all scheduled" 6 (List.length info.Sched.order);
  Alcotest.(check bool) "producer first" true (pos.(0) < pos.(1) && pos.(1) < pos.(2))

(* ---- flow ------------------------------------------------------------ *)

let loop_cdfg () =
  let b = B.create "loop" in
  let i = B.fresh_sym b "i" in
  let pre = B.add_block b "pre" in
  let body = B.add_block b "body" in
  let exit_ = B.add_block b "exit" in
  B.set_live_out b pre i (Cdfg.Imm 0);
  B.set_terminator b pre (Cdfg.Jump (B.block_id body));
  let x = B.add_node b body Op.Load [ Cdfg.Sym i ] in
  let y = B.add_node b body Op.Mul [ x; Cdfg.Imm 3 ] in
  let a = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 8 ] in
  let _ = B.add_node b body Op.Store [ a; y ] in
  let i1 = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 1 ] in
  let c = B.add_node b body Op.Lt [ i1; Cdfg.Imm 8 ] in
  B.set_live_out b body i i1;
  B.set_terminator b body (Cdfg.Branch (c, B.block_id body, B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  B.finish b

let test_flow_maps_and_fits () =
  let cdfg = loop_cdfg () in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, stats) ->
    Alcotest.(check bool) "fits" true (M.fits m);
    Alcotest.(check int) "all ops mapped once" 6 (M.total_ops m);
    Alcotest.(check bool) "homes assigned" true
      (Array.for_all (fun h -> h >= 0) m.M.homes);
    Alcotest.(check int) "traversal covers blocks" 3
      (List.length stats.Flow.traversal_order)

let test_flow_deterministic () =
  let cdfg = loop_cdfg () in
  let run () =
    match Flow.run (Config.cgra Config.HOM64) cdfg with
    | Ok (m, _) ->
      List.map (fun bm -> (bm.M.bb, bm.M.length, List.length bm.M.slots))
        (Array.to_list m.M.bbs)
    | Error f -> Alcotest.fail f.Flow.reason
  in
  Alcotest.(check bool) "same result" true (run () = run ())

let test_flow_respects_lsu () =
  let cdfg = loop_cdfg () in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    Array.iter
      (fun bm ->
        List.iter
          (fun sl ->
            match sl.M.action with
            | M.Aop { node; _ } ->
              let nodes = cdfg.Cdfg.blocks.(bm.M.bb).Cdfg.nodes in
              if Cgra_ir.Opcode.needs_lsu nodes.(node).Cdfg.opcode then
                Alcotest.(check bool) "memory op on LSU tile" true (sl.M.tile < 8)
            | M.Amove _ | M.Acopy _ -> ())
          bm.M.slots)
      m.M.bbs

let test_flow_fails_on_tiny_cm () =
  let cdfg = loop_cdfg () in
  let cgra = Cgra_arch.Cgra.make ~cm_of_tile:(fun _ -> 2) () in
  match Flow.run cgra cdfg with
  | Error _ -> ()
  | Ok (m, _) ->
    Alcotest.(check bool) "cannot fit 2-word CMs" false (M.fits m)

let test_flow_maps_around_faults () =
  let module Cgra = Cgra_arch.Cgra in
  let cdfg = loop_cdfg () in
  let faults =
    [ Cgra.Dead_tile { tile = 2 };
      Cgra.No_lsu { tile = 0 };
      Cgra.Dead_link { tile = 5; dir = Cgra.East } ]
  in
  let config = { FC.basic with FC.faults } in
  match Flow.run ~config (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    Alcotest.(check bool) "mapping carries the degraded fabric" true
      (m.M.cgra.Cgra.faults <> []);
    Array.iter
      (fun bm ->
        List.iter
          (fun sl ->
            Alcotest.(check bool) "no slot on the dead tile" true (sl.M.tile <> 2);
            match sl.M.action with
            | M.Aop { node; _ } ->
              let nodes = cdfg.Cdfg.blocks.(bm.M.bb).Cdfg.nodes in
              if Cgra_ir.Opcode.needs_lsu nodes.(node).Cdfg.opcode then
                Alcotest.(check bool) "memory op avoids the disabled LSU" true
                  (sl.M.tile <> 0)
            | M.Amove _ | M.Acopy _ -> ())
          bm.M.slots)
      m.M.bbs;
    Alcotest.(check bool) "fits the degraded capacities" true (M.fits m)

let test_flow_rejects_sym_overflow () =
  let b = B.create "many" in
  for i = 0 to 40 do
    ignore (B.fresh_sym b (Printf.sprintf "s%d" i))
  done;
  let blk = B.add_block b "only" in
  B.set_terminator b blk Cdfg.Return;
  let cdfg = B.finish b in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f ->
    Alcotest.(check bool) "mentions RF" true
      (String.length f.Flow.reason > 0)
  | Ok _ -> Alcotest.fail "accepted more symbols than RF slots"

let test_weighted_traversal_order () =
  let cdfg = loop_cdfg () in
  let fwd = Flow.traversal_order FC.Forward cdfg in
  let wt = Flow.traversal_order FC.Weighted cdfg in
  Alcotest.(check int) "forward starts at entry" 0 (List.hd fwd);
  (* body has the highest Wbb, so the weighted traversal maps it first *)
  Alcotest.(check int) "weighted starts at heaviest" 1 (List.hd wt);
  Alcotest.(check int) "same coverage" (List.length fwd) (List.length wt)

let test_mapping_usage_vs_capacity () =
  let cdfg = loop_cdfg () in
  match Flow.run ~config:FC.context_aware (Config.cgra Config.HET2) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    let usage = M.tile_usage m in
    Array.iteri
      (fun t u ->
        Alcotest.(check bool) "within capacity" true
          (M.usage_total u <= (Config.cgra Config.HET2).Cgra_arch.Cgra.tiles.(t).cm_words))
      usage

let test_static_cycles () =
  let cdfg = loop_cdfg () in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    let mem = Array.make 32 0 in
    let trace = Cgra_ir.Interp.run cdfg ~mem in
    let expected =
      Array.to_list m.M.bbs
      |> List.mapi (fun bi bm -> trace.Cgra_ir.Interp.block_counts.(bi) * (bm.M.length + 1))
      |> List.fold_left ( + ) 0
    in
    Alcotest.(check int) "static cycles formula" expected (M.static_cycles m trace)

let test_pp_schedule () =
  let cdfg = loop_cdfg () in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    let s = Format.asprintf "%a" M.pp_schedule (m, 1) in
    let lines = String.split_on_char '\n' s in
    (* header + 16 tile rows + legend *)
    Alcotest.(check int) "grid rows" 18 (List.length lines);
    Alcotest.(check bool) "has ops" true (String.contains s 'o')

(* Regression: a malformed CDFG whose block DFG is cyclic must come back
   from the flow as a typed [Error], never as an escaped exception (the
   digraph layer used to raise a bare [Failure] from deep inside the
   scheduler). *)
let test_flow_rejects_cyclic_dfg () =
  let cyclic : Cdfg.t =
    { Cdfg.kernel_name = "cyclic";
      blocks =
        [| { Cdfg.name = "b0";
             nodes =
               [| { Cdfg.opcode = Op.Add;
                    operands = [ Cdfg.Node 1; Cdfg.Imm 1 ];
                    mem_dep = [] };
                  { Cdfg.opcode = Op.Add;
                    operands = [ Cdfg.Node 0; Cdfg.Imm 1 ];
                    mem_dep = [] } |];
             live_out = [];
             terminator = Cdfg.Return } |];
      entry = 0;
      sym_count = 0;
      sym_names = [||] }
  in
  (* the raw data-flow digraph reports the offending nodes... *)
  (match Cgra_graph.Digraph.topo_sort (Cdfg.dfg_graph cyclic.Cdfg.blocks.(0)) with
   | Ok _ -> Alcotest.fail "dfg cycle not detected"
   | Error ids ->
     Alcotest.(check (list int)) "cycle nodes" [ 0; 1 ] (List.sort compare ids));
  (* ...and the flow turns the malformed input into a typed error *)
  match Flow.run ~config:FC.basic (Config.cgra Config.HOM64) cyclic with
  | Ok _ -> Alcotest.fail "cyclic CDFG must not map"
  | Error f ->
    Alcotest.(check bool) "reason mentions the offending node" true
      (String.length f.Flow.reason > 0)

(* Fallback home selection must rank by remaining context-memory headroom,
   not by raw load: on a fabric with one starved tile, pinning a symbol
   home there (just because it is empty) wastes exactly the capacity the
   context-aware flow tries to preserve.  Tile 0 here has 6 words; with
   load-based ranking it wins the tie at load 0 and hosts the home. *)
let test_least_loaded_headroom () =
  let cgra =
    Cgra_arch.Cgra.make ~cm_of_tile:(fun t -> if t = 0 then 6 else 64) ()
  in
  let cdfg = loop_cdfg () in
  match Flow.run cgra cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (m, _) ->
    Array.iter
      (fun h ->
        Alcotest.(check bool) "home avoids the starved tile" true (h <> 0))
      m.M.homes

(* A block mapping that pins a symbol home conflicting with an earlier
   block's pin is a mapper invariant violation; it must surface as a typed
   flow failure, not an [Assert_failure] crash. *)
let test_commit_homes_conflict () =
  let homes = [| 3; -1 |] in
  (match Flow.commit_homes ~homes ~at_block:7 ~work:42 [ (1, 2); (0, 5) ] with
   | Ok () -> Alcotest.fail "conflicting pin must be rejected"
   | Error f ->
     Alcotest.(check (option int)) "failure names the block" (Some 7)
       f.Flow.at_block;
     Alcotest.(check int) "failure reports the work spent" 42 f.Flow.work;
     Alcotest.(check bool) "reason names symbol and tiles" true
       (let has needle =
          let len = String.length needle in
          let n = String.length f.Flow.reason in
          let rec go i =
            i + len <= n && (String.sub f.Flow.reason i len = needle || go (i + 1))
          in
          go 0
        in
        has "s0" && has "tile 3" && has "tile 5"));
  Alcotest.(check int) "pins before the conflict stay committed" 2 homes.(1);
  let homes = [| 3; -1 |] in
  (match Flow.commit_homes ~homes ~at_block:0 ~work:0 [ (0, 3); (1, 9) ] with
   | Error f -> Alcotest.fail f.Flow.reason
   | Ok () ->
     Alcotest.(check int) "re-pin to the same tile is fine" 3 homes.(0);
     Alcotest.(check int) "fresh pin committed" 9 homes.(1))

let test_search_stats_consistency () =
  let module S = Cgra_core.Search in
  let cdfg = loop_cdfg () in
  match Flow.run (Config.cgra Config.HOM64) cdfg with
  | Error f -> Alcotest.fail f.Flow.reason
  | Ok (_, stats) ->
    Alcotest.(check int) "no retries needed" 0 stats.Flow.retries_used;
    Alcotest.(check int) "one telemetry record per block" 3
      (List.length stats.Flow.search);
    let sum =
      List.fold_left (fun a bs -> a + bs.S.attempts) 0 stats.Flow.search
    in
    Alcotest.(check int) "per-block attempts sum to the work counter"
      stats.Flow.work sum;
    Alcotest.(check int) "recomputes aggregate" stats.Flow.recomputes
      (List.fold_left (fun a bs -> a + bs.S.recomputes) 0 stats.Flow.search);
    List.iter
      (fun (bs : S.block_stats) ->
        Alcotest.(check bool) "children bounded by attempts" true
          (bs.S.children <= bs.S.attempts);
        Alcotest.(check bool) "peak positive" true (bs.S.population_peak >= 1);
        Alcotest.(check bool) "wall time non-negative" true
          (bs.S.wall_seconds >= 0.0))
      stats.Flow.search

let test_steps_labels () =
  Alcotest.(check string) "basic" "basic" (FC.steps_of FC.basic);
  Alcotest.(check string) "full" "basic+WT+ACMAP+ECMAP+CAB"
    (FC.steps_of FC.context_aware)

let suite =
  [ ( "core",
      [ Alcotest.test_case "occupancy basics" `Quick test_occupancy_basics;
        Alcotest.test_case "occupancy dense" `Quick test_occupancy_dense;
        Alcotest.test_case "occupancy double booking" `Quick test_occupancy_double_book;
        QCheck_alcotest.to_alcotest prop_incremental_counts;
        QCheck_alcotest.to_alcotest prop_optimistic_le_exact;
        QCheck_alcotest.to_alcotest prop_pnops_bounded_by_busy;
        Alcotest.test_case "sched levels" `Quick test_sched_levels;
        Alcotest.test_case "sched order" `Quick test_sched_order_topological;
        Alcotest.test_case "flow maps and fits" `Quick test_flow_maps_and_fits;
        Alcotest.test_case "flow deterministic" `Quick test_flow_deterministic;
        Alcotest.test_case "flow respects LSU" `Quick test_flow_respects_lsu;
        Alcotest.test_case "flow fails on tiny CM" `Quick test_flow_fails_on_tiny_cm;
        Alcotest.test_case "flow maps around faults" `Quick test_flow_maps_around_faults;
        Alcotest.test_case "flow rejects symbol overflow" `Quick test_flow_rejects_sym_overflow;
        Alcotest.test_case "weighted traversal" `Quick test_weighted_traversal_order;
        Alcotest.test_case "usage within capacity" `Quick test_mapping_usage_vs_capacity;
        Alcotest.test_case "static cycles" `Quick test_static_cycles;
        Alcotest.test_case "flow rejects cyclic DFG" `Quick
          test_flow_rejects_cyclic_dfg;
        Alcotest.test_case "schedule rendering" `Quick test_pp_schedule;
        Alcotest.test_case "home fallback ranks by CM headroom" `Quick
          test_least_loaded_headroom;
        Alcotest.test_case "home conflict is a typed error" `Quick
          test_commit_homes_conflict;
        Alcotest.test_case "search telemetry consistent" `Quick
          test_search_stats_consistency;
        Alcotest.test_case "flow labels" `Quick test_steps_labels ] ) ]
