(* Tests for the cgra_opt optimization pipeline: per-pass unit tests on
   hand-built CDFGs, the differential-verification safety net, and the
   end-to-end guarantee on the bundled kernels (strict shrink, golden
   output, fixpoint idempotence). *)

module B = Cgra_ir.Builder
module Cdfg = Cgra_ir.Cdfg
module Op = Cgra_ir.Opcode
module Passes = Cgra_opt.Passes
module P = Cgra_opt.Pipeline
module K = Cgra_kernels.Kernel_def

let idx = function
  | Cdfg.Node i -> i
  | _ -> Alcotest.fail "expected a node operand"

(* A one-block kernel: [f] appends the nodes, the block returns. *)
let single_block f =
  let b = B.create "t" in
  let blk = B.add_block b "entry" in
  f b blk;
  B.set_terminator b blk Cdfg.Return;
  B.finish b

let nodes c = c.Cdfg.blocks.(0).Cdfg.nodes

let test_const_fold () =
  let c =
    single_block (fun b blk ->
        let v = B.add_node b blk Op.Add [ Cdfg.Imm 2; Cdfg.Imm 3 ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 0; v ]))
  in
  let c', d = Passes.const_fold.Passes.transform c in
  Alcotest.(check int) "one node removed" 1 d.Passes.removed;
  match nodes c' with
  | [| { Cdfg.opcode = Op.Store; operands = [ Cdfg.Imm 0; Cdfg.Imm 5 ]; _ } |] ->
    ()
  | _ -> Alcotest.fail "expected a single store of the folded constant 5"

(* Regression: a mixed Imm/Sym operand list used to hit the pass's
   [assert false] arm; it must keep the node unfolded instead. *)
let test_const_fold_mixed_operands () =
  let c =
    single_block (fun b blk ->
        let s = B.fresh_sym b "x" in
        let v = B.add_node b blk Op.Add [ Cdfg.Imm 2; Cdfg.Sym s ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 0; v ]))
  in
  let c', d = Passes.const_fold.Passes.transform c in
  Alcotest.(check int) "nothing removed" 0 d.Passes.removed;
  Alcotest.(check int) "nothing rewritten" 0 d.Passes.rewritten;
  match nodes c' with
  | [| { Cdfg.opcode = Op.Add; operands = [ Cdfg.Imm 2; Cdfg.Sym 0 ]; _ }; _ |]
    ->
    ()
  | _ -> Alcotest.fail "mixed-operand node must survive unfolded"

let test_algebraic_strength_reduction () =
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let m = B.add_node b blk Op.Mul [ x; Cdfg.Imm 8 ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; m ] ~mem_dep:[ idx x ]))
  in
  let c', d = Passes.algebraic.Passes.transform c in
  Alcotest.(check int) "one node rewritten" 1 d.Passes.rewritten;
  match (nodes c').(1) with
  | { Cdfg.opcode = Op.Shl; operands = [ Cdfg.Node 0; Cdfg.Imm 3 ]; _ } -> ()
  | _ -> Alcotest.fail "expected x*8 to become x<<3"

let test_algebraic_identity () =
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let a = B.add_node b blk Op.Add [ x; Cdfg.Imm 0 ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; a ] ~mem_dep:[ idx x ]))
  in
  let c', d = Passes.algebraic.Passes.transform c in
  Alcotest.(check int) "x+0 removed" 1 d.Passes.removed;
  match (nodes c').(1) with
  | { Cdfg.opcode = Op.Store; operands = [ Cdfg.Imm 1; Cdfg.Node 0 ]; _ } -> ()
  | _ -> Alcotest.fail "expected the store to use the load directly"

let test_reassoc () =
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let a1 = B.add_node b blk Op.Add [ x; Cdfg.Imm 4 ] in
        let a2 = B.add_node b blk Op.Add [ a1; Cdfg.Imm 8 ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; a2 ] ~mem_dep:[ idx x ]))
  in
  let c', d = Passes.reassoc.Passes.transform c in
  Alcotest.(check int) "chain tail rewritten" 1 d.Passes.rewritten;
  match (nodes c').(2) with
  | { Cdfg.opcode = Op.Add; operands = [ Cdfg.Node 0; Cdfg.Imm 12 ]; _ } -> ()
  | _ -> Alcotest.fail "expected (x+4)+8 to become x+12"

let test_cse_commutative () =
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let a = B.add_node b blk Op.Add [ x; Cdfg.Imm 1 ] in
        let a' = B.add_node b blk Op.Add [ Cdfg.Imm 1; x ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; a ] ~mem_dep:[ idx x ]);
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 2; a' ] ~mem_dep:[ idx x ]))
  in
  let c', d = Passes.cse.Passes.transform c in
  Alcotest.(check int) "duplicate removed" 1 d.Passes.removed;
  Alcotest.(check int) "node count" 4 (Array.length (nodes c'));
  match ((nodes c').(2), (nodes c').(3)) with
  | ( { Cdfg.operands = [ _; Cdfg.Node 1 ]; _ },
      { Cdfg.operands = [ _; Cdfg.Node 1 ]; _ } ) ->
    ()
  | _ -> Alcotest.fail "both stores must use the surviving add"

let test_load_elim_merges () =
  let c =
    single_block (fun b blk ->
        let l1 = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let l2 = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        ignore
          (B.add_node b blk Op.Store [ Cdfg.Imm 1; l2 ]
             ~mem_dep:[ idx l1; idx l2 ]))
  in
  let c', d = Passes.load_elim.Passes.transform c in
  Alcotest.(check int) "one load removed" 1 d.Passes.removed;
  match nodes c' with
  | [| { Cdfg.opcode = Op.Load; _ };
       { Cdfg.opcode = Op.Store;
         operands = [ Cdfg.Imm 1; Cdfg.Node 0 ];
         mem_dep = [ 0 ] } |] ->
    (* the store's anti-dependence edge was retargeted to the survivor *)
    ()
  | _ -> Alcotest.fail "expected the loads merged and mem_dep retargeted"

let test_load_elim_blocked_by_store () =
  let c =
    single_block (fun b blk ->
        let l1 = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let s =
          B.add_node b blk Op.Store [ Cdfg.Imm 0; Cdfg.Imm 9 ]
            ~mem_dep:[ idx l1 ]
        in
        ignore s;
        let l2 = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] ~mem_dep:[ 1 ] in
        ignore
          (B.add_node b blk Op.Store [ Cdfg.Imm 1; l2 ]
             ~mem_dep:[ 1; idx l2 ]))
  in
  let c', d = Passes.load_elim.Passes.transform c in
  Alcotest.(check int) "nothing removed" 0 d.Passes.removed;
  Alcotest.(check int) "all four nodes kept" 4 (Array.length (nodes c'))

let test_dce_keeps_stores () =
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        ignore (B.add_node b blk Op.Add [ x; Cdfg.Imm 7 ]) (* dead *);
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; x ] ~mem_dep:[ idx x ]))
  in
  let c', d = Passes.dce.Passes.transform c in
  Alcotest.(check int) "dead add removed" 1 d.Passes.removed;
  Alcotest.(check bool) "store survives" true
    (Array.exists (fun nd -> nd.Cdfg.opcode = Op.Store) (nodes c'));
  Alcotest.(check int) "two nodes left" 2 (Array.length (nodes c'))

(* The safety net: a deliberately wrong pass must be caught by the
   differential verifier, never silently returned. *)
let test_verification_catches_broken_pass () =
  let broken =
    { Passes.name = "broken";
      descr = "rewrites Add to Sub (wrong on purpose)";
      transform =
        Passes.rewrite_blocks (fun _b ~index:_ nd ->
            match nd.Cdfg.opcode with
            | Op.Add -> Passes.Keep { nd with Cdfg.opcode = Op.Sub }
            | _ -> Passes.Keep nd) }
  in
  let c =
    single_block (fun b blk ->
        let x = B.add_node b blk Op.Load [ Cdfg.Imm 0 ] in
        let a = B.add_node b blk Op.Add [ x; Cdfg.Imm 2 ] in
        ignore (B.add_node b blk Op.Store [ Cdfg.Imm 1; a ] ~mem_dep:[ idx x ]))
  in
  let verify = P.verifier_of_mems [ [| 10; 0 |] ] in
  Alcotest.(check bool) "Verification_failed raised" true
    (try
       ignore (P.run ~passes:[ broken ] ~verify c);
       false
     with P.Verification_failed _ -> true)

(* End-to-end on the bundled kernels: the pipeline strictly shrinks every
   naive lowering, the optimized CDFG still computes the golden image, and
   a second run finds nothing more (the fixpoint is real). *)
let test_kernels_shrink_and_stay_correct () =
  List.iter
    (fun k ->
      let raw = K.cdfg_raw k in
      let verify = P.verifier_of_mems [ K.fresh_mem k ] in
      let c', r = P.run ~verify raw in
      Alcotest.(check bool)
        (k.K.slug ^ ": strictly fewer nodes")
        true
        (r.P.nodes_after < r.P.nodes_before);
      let mem = K.fresh_mem k in
      ignore (Cgra_ir.Interp.run c' ~mem);
      Alcotest.(check bool) (k.K.slug ^ ": golden image") true
        (mem = K.run_golden k);
      let _, r2 = P.run ~verify c' in
      Alcotest.(check int)
        (k.K.slug ^ ": idempotent")
        r2.P.nodes_before r2.P.nodes_after)
    Cgra_kernels.Kernels.all

let suite =
  [ ( "opt",
      [ Alcotest.test_case "const_fold" `Quick test_const_fold;
        Alcotest.test_case "const_fold keeps mixed operands" `Quick
          test_const_fold_mixed_operands;
        Alcotest.test_case "algebraic: mul -> shl" `Quick
          test_algebraic_strength_reduction;
        Alcotest.test_case "algebraic: x+0" `Quick test_algebraic_identity;
        Alcotest.test_case "reassoc" `Quick test_reassoc;
        Alcotest.test_case "cse (commutative)" `Quick test_cse_commutative;
        Alcotest.test_case "load_elim merges" `Quick test_load_elim_merges;
        Alcotest.test_case "load_elim blocked by store" `Quick
          test_load_elim_blocked_by_store;
        Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
        Alcotest.test_case "verifier catches a broken pass" `Quick
          test_verification_catches_broken_pass;
        Alcotest.test_case "kernels shrink, stay correct" `Slow
          test_kernels_shrink_and_stay_correct ] ) ]
