(* Tests for the cgra_verify layer: the independent mapping validator
   (clean artifacts pass; seeded corruptions are caught with the right
   violation class), the deterministic fault-injection engine (campaigns
   are byte-identical at any jobs value), and the graceful-degradation
   ladder in Flow. *)

module Flow = Cgra_core.Flow
module FC = Cgra_core.Flow_config
module M = Cgra_core.Mapping
module Asm = Cgra_asm.Assemble
module Sim = Cgra_sim.Simulator
module Config = Cgra_arch.Config
module Cgra = Cgra_arch.Cgra
module Isa = Cgra_arch.Isa
module V = Cgra_verify.Validator
module F = Cgra_verify.Fault
module K = Cgra_kernels.Kernel_def

let map_kernel slug config flow =
  let k = Option.get (Cgra_kernels.Kernels.by_slug slug) in
  let cdfg = K.cdfg k in
  match Flow.run ~config:flow (Config.cgra config) cdfg with
  | Ok (m, _) -> (k, m)
  | Error f -> Alcotest.fail (slug ^ ": " ^ f.Flow.reason)

(* One cheap base point and one context-aware one, mapped once. *)
let base_basic = lazy (map_kernel "fir" Config.HOM64 FC.basic)
let base_aware = lazy (map_kernel "fir" Config.HET2 FC.context_aware)

let violations_str vs = String.concat "; " (List.map V.to_string vs)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- clean artifacts pass --------------------------------------------- *)

let test_clean_artifacts () =
  List.iter
    (fun (slug, config, flow) ->
      let _, m = map_kernel slug config flow in
      let vs = V.check (Asm.assemble m) in
      Alcotest.(check string)
        (slug ^ " artifact is clean")
        "" (violations_str vs))
    [ ("fir", Config.HOM64, FC.basic);
      ("matm", Config.HOM64, FC.basic);
      ("fft", Config.HET2, FC.context_aware);
      ("dc_filter", Config.HET1, FC.context_aware) ]

(* ---- seeded corruptions are caught ------------------------------------ *)

(* A tile at torus distance >= 2 from [t] — always exists on the 4x4. *)
let far_tile cgra t =
  let nt = Cgra.tile_count cgra in
  let rec go i =
    if i >= nt then Alcotest.fail "no far tile on this fabric"
    else if Cgra.distance cgra t i >= 2 then i
    else go (i + 1)
  in
  go 0

let mutate_slot m bi j f =
  let bbs = Array.copy m.M.bbs in
  let b = bbs.(bi) in
  bbs.(bi) <-
    { b with M.slots = List.mapi (fun i s -> if i = j then f s else s) b.M.slots };
  { m with M.bbs = bbs }

(* All (block, slot-index, slot) triples of a mapping. *)
let all_slots m =
  Array.to_list m.M.bbs
  |> List.concat_map (fun b ->
         List.mapi (fun j s -> (b.M.bb, j, s)) b.M.slots)

let has_violation pred vs = List.exists pred vs

let test_catches_cm_overflow () =
  let _, m = Lazy.force base_basic in
  let starved = Cgra.make ~cm_of_tile:(fun _ -> 2) () in
  let vs = V.check_mapping { m with M.cgra = starved } in
  Alcotest.(check bool) "CM overflow detected" true
    (has_violation (function V.Cm_overflow _ -> true | _ -> false) vs)

(* Redirect a read to a tile two hops away: either a move's source or an
   operation's operand mux.  Immediate operands come from the CRF, not a
   neighbour RF, so only Node/Sym operand positions are redirected. *)
let non_neighbour_mutants m =
  List.filter_map
    (fun (bi, j, s) ->
      let far = far_tile m.M.cgra s.M.tile in
      match s.M.action with
      | M.Amove { value; from_tile = _ } ->
        Some (mutate_slot m bi j (fun s ->
            { s with M.action = M.Amove { value; from_tile = far } }))
      | M.Aop { node; operand_tiles } ->
        let operands =
          m.M.cdfg.Cgra_ir.Cdfg.blocks.(bi).Cgra_ir.Cdfg.nodes.(node)
            .Cgra_ir.Cdfg.operands
        in
        if List.length operands <> List.length operand_tiles then None
        else if
          not
            (List.exists
               (function Cgra_ir.Cdfg.Imm _ -> false | _ -> true)
               operands)
        then None
        else
          let mutated = ref false in
          let operand_tiles =
            List.map2
              (fun operand t ->
                match operand with
                | Cgra_ir.Cdfg.Imm _ -> t
                | _ ->
                  if !mutated then t
                  else begin
                    mutated := true;
                    far
                  end)
              operands operand_tiles
          in
          Some (mutate_slot m bi j (fun s ->
              { s with M.action = M.Aop { node; operand_tiles } }))
      | M.Acopy _ -> None)
    (all_slots m)

let test_catches_non_neighbour () =
  let _, m = Lazy.force base_aware in
  let mutants = non_neighbour_mutants m in
  Alcotest.(check bool) "mapping has redirectable reads" true (mutants <> []);
  List.iter
    (fun m' ->
      Alcotest.(check bool) "non-neighbour read detected" true
        (has_violation
           (function V.Non_neighbour_read _ -> true | _ -> false)
           (V.check_mapping m')))
    mutants

(* Hoist a consumer to cycle 0 so its operand is no longer defined
   strictly earlier.  Not every slot reads a block-local value, so the
   test asserts that at least one hoist is caught — and that no hoist
   crashes the validator. *)
let test_catches_operand_not_ready () =
  let _, m = Lazy.force base_aware in
  let caught =
    List.exists
      (fun (bi, j, s) ->
        s.M.cycle > 0
        && has_violation
             (function V.Operand_not_ready _ -> true | _ -> false)
             (V.check_mapping
                (mutate_slot m bi j (fun s -> { s with M.cycle = 0 }))))
      (all_slots m)
  in
  Alcotest.(check bool) "some hoisted slot reads a late operand" true caught

(* Point a constant operand one slot past the tile's pool. *)
let bad_crf_mutants (p : Asm.program) =
  let mutate_tile t bi idx instr' =
    let tiles = Array.copy p.Asm.tiles in
    let tp = tiles.(t) in
    let sections = Array.copy tp.Asm.sections in
    sections.(bi) <-
      List.mapi (fun i ins -> if i = idx then instr' else ins) sections.(bi);
    tiles.(t) <- { tp with Asm.sections };
    { p with Asm.tiles }
  in
  let mutants = ref [] in
  Array.iteri
    (fun t tp ->
      let pool = Array.length tp.Asm.crf in
      Array.iteri
        (fun bi sec ->
          List.iteri
            (fun idx ins ->
              match ins with
              | Isa.Iop { opcode; srcs; dst; set_cond }
                when List.exists (function Isa.Crf _ -> true | _ -> false) srcs
                ->
                let srcs =
                  List.map
                    (function Isa.Crf _ -> Isa.Crf pool | s -> s)
                    srcs
                in
                mutants :=
                  mutate_tile t bi idx (Isa.Iop { opcode; srcs; dst; set_cond })
                  :: !mutants
              | Isa.Icopy { src = Isa.Crf _; dst; set_cond } ->
                mutants :=
                  mutate_tile t bi idx
                    (Isa.Icopy { src = Isa.Crf pool; dst; set_cond })
                  :: !mutants
              | _ -> ())
            sec)
        tp.Asm.sections)
    p.Asm.tiles;
  !mutants

let test_catches_bad_crf_index () =
  let _, m = Lazy.force base_aware in
  let p = Asm.assemble m in
  let mutants = bad_crf_mutants p in
  Alcotest.(check bool) "program has constant reads" true (mutants <> []);
  List.iter
    (fun p' ->
      Alcotest.(check bool) "bad CRF index detected" true
        (has_violation
           (function V.Bad_crf_index _ -> true | _ -> false)
           (V.check_program p')))
    mutants

let test_catches_bad_home () =
  let _, m = Lazy.force base_basic in
  if Array.length m.M.homes = 0 then Alcotest.fail "fir has symbol variables";
  let vs =
    V.check_mapping { m with M.homes = Array.map (fun _ -> 99) m.M.homes }
  in
  Alcotest.(check bool) "bad home detected" true
    (has_violation (function V.Bad_home _ -> true | _ -> false) vs)

(* qcheck: every member of the mutation families above is caught, whatever
   random site the generator picks. *)
let prop_random_corruption_caught =
  let open QCheck in
  Test.make ~name:"validator catches random seeded corruptions" ~count:60
    (pair (int_bound 3) (int_bound 10_000))
    (fun (cls, site) ->
      let _, m = Lazy.force base_aware in
      let pick xs = List.nth xs (site mod List.length xs) in
      match cls with
      | 0 ->
        let starved = Cgra.make ~cm_of_tile:(fun _ -> 1 + (site mod 3)) () in
        V.check_mapping { m with M.cgra = starved }
        |> has_violation (function V.Cm_overflow _ -> true | _ -> false)
      | 1 ->
        V.check_mapping (pick (non_neighbour_mutants m))
        |> has_violation (function V.Non_neighbour_read _ -> true | _ -> false)
      | 2 ->
        V.check_program (pick (bad_crf_mutants (Asm.assemble m)))
        |> has_violation (function V.Bad_crf_index _ -> true | _ -> false)
      | _ ->
        let homes = Array.map (fun _ -> 16 + (site mod 100)) m.M.homes in
        V.check_mapping { m with M.homes }
        |> has_violation (function V.Bad_home _ -> true | _ -> false))

(* ---- typed simulator errors ------------------------------------------- *)

(* Corrupt one real instruction into a two-hop read and check the
   simulator refuses with the matching typed error (the classification
   the fault engine's "crash" bucket depends on). *)
let test_sim_non_neighbour_typed () =
  let k, m = Lazy.force base_aware in
  let p = Asm.assemble m in
  let mutated =
    let found = ref None in
    Array.iteri
      (fun t tp ->
        Array.iteri
          (fun bi sec ->
            List.iteri
              (fun idx ins ->
                if !found = None then
                  match ins with
                  | Isa.Imov { from_tile = _; from_slot; dst } ->
                    found :=
                      Some
                        (t, bi, idx,
                         Isa.Imov
                           { from_tile = far_tile m.M.cgra t; from_slot; dst })
                  | Isa.Iop { opcode; srcs; dst; set_cond }
                    when List.exists
                           (function Isa.Nbr _ -> true | _ -> false)
                           srcs ->
                    let srcs =
                      List.map
                        (function
                          | Isa.Nbr (_, r) -> Isa.Nbr (far_tile m.M.cgra t, r)
                          | s -> s)
                        srcs
                    in
                    found := Some (t, bi, idx, Isa.Iop { opcode; srcs; dst; set_cond })
                  | _ -> ())
              sec)
          tp.Asm.sections)
      p.Asm.tiles;
    match !found with
    | None -> Alcotest.fail "aware mapping has no neighbour reads"
    | Some (t, bi, idx, instr') ->
      let tiles = Array.copy p.Asm.tiles in
      let tp = tiles.(t) in
      let sections = Array.copy tp.Asm.sections in
      sections.(bi) <-
        List.mapi (fun i ins -> if i = idx then instr' else ins) sections.(bi);
      tiles.(t) <- { tp with Asm.sections };
      { p with Asm.tiles }
  in
  match Sim.run mutated ~mem:(K.fresh_mem k) with
  | _ -> Alcotest.fail "two-hop read must raise"
  | exception Sim.Sim_error (Sim.Non_neighbour_read _) -> ()

let test_sim_error_rendering () =
  let e = Sim.Write_conflict { tile = 3; reg = 7; block = 1; cycle = 12 } in
  let s = Sim.error_to_string e in
  Alcotest.(check bool) "mentions the tile" true (contains_sub ~sub:"3" s);
  let printed = Printexc.to_string (Sim.Sim_error e) in
  Alcotest.(check bool) "registered printer used" true
    (contains_sub ~sub:"Sim_error" printed)

let test_sim_rf_fault_masked_or_not () =
  (* An RF fault injected after the last cycle can never change anything. *)
  let k, m = Lazy.force base_basic in
  let p = Asm.assemble m in
  let mem = K.fresh_mem k in
  let r = Sim.run p ~mem in
  let mem2 = K.fresh_mem k in
  let _ =
    Sim.run p ~mem:mem2
      ~rf_faults:
        [ { Sim.at_cycle = r.Sim.cycles + 100; fault_tile = 0; fault_reg = 0;
            xor_mask = 1 } ]
  in
  Alcotest.(check bool) "late fault is masked" true (mem = mem2)

(* ---- fault campaigns --------------------------------------------------- *)

let campaign ?(trials = 24) ~jobs ~seed () =
  let k, m = Lazy.force base_aware in
  let p = Asm.assemble m in
  F.run_campaign ~jobs ~seed ~trials ~key:"test/fir/aware"
    ~fresh_mem:(fun () -> K.fresh_mem k)
    p

let test_campaign_deterministic_across_jobs () =
  let c1 = campaign ~jobs:1 ~seed:5 () in
  let c2 = campaign ~jobs:2 ~seed:5 () in
  let c8 = campaign ~jobs:8 ~seed:5 () in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (c1 = c2);
  Alcotest.(check bool) "jobs 1 = jobs 8" true (c1 = c8);
  let c1' = campaign ~jobs:1 ~seed:5 () in
  Alcotest.(check bool) "rerun identical" true (c1 = c1')

let test_campaign_counts_consistent () =
  let c = campaign ~jobs:2 ~seed:9 () in
  let s = c.F.summary in
  Alcotest.(check int) "trial count" s.F.trials (List.length c.F.runs);
  Alcotest.(check int) "classes sum to trials" s.F.trials
    (s.F.masked + s.F.wrong_output + s.F.crash + s.F.hang);
  List.iteri
    (fun i (t : F.trial) -> Alcotest.(check int) "index order" i t.F.index)
    c.F.runs;
  let c' = campaign ~jobs:2 ~seed:10 () in
  Alcotest.(check bool) "different seed, different campaign" true (c <> c')

(* ---- permanent faults: detect -> diagnose -> remap -------------------- *)

module R = Cgra_verify.Repair
module Op = Cgra_ir.Opcode

(* Remaps must be capacity-aware or a stuck-row fault is unrepairable:
   use the context-aware flow, as [repair_report] does. *)
let repair_config = { FC.context_aware with FC.degrade = true }

let run_repair ~injected (k, m) =
  R.repair ~config:repair_config ~injected
    ~fresh_mem:(fun () -> K.fresh_mem k)
    ~golden:(K.run_golden k) m

(* Context words the pristine mapping puts on [tile], read off the
   validator itself: killing the tile makes it report the exact count. *)
let words_on m tile =
  let truth = Cgra.degrade m.M.cgra [ Cgra.Dead_tile { tile } ] in
  List.find_map
    (function
      | V.Cm_overflow { tile = t; words; _ } when t = tile -> Some words
      | _ -> None)
    (R.detect ~truth m)

let busiest_tile m =
  let nt = Cgra.tile_count m.M.cgra in
  let best = ref (-1) and bw = ref 0 in
  for t = 0 to nt - 1 do
    match words_on m t with
    | Some w when w > !bw ->
      best := t;
      bw := w
    | _ -> ()
  done;
  if !best < 0 then Alcotest.fail "mapping uses no tile" else (!best, !bw)

let assert_repaired name m (tr : R.trace) =
  match tr.R.status with
  | R.Repaired { mapping; _ } ->
    let truth = Cgra.degrade m.M.cgra tr.R.injected in
    Alcotest.(check string) (name ^ ": repaired mapping clean") ""
      (violations_str (R.detect ~truth mapping))
  | R.Unaffected -> Alcotest.fail (name ^ ": expected a repair, got unaffected")
  | R.Gave_up { reason; _ } -> Alcotest.fail (name ^ ": gave up: " ^ reason)

let test_repair_dead_tile () =
  let (_, m) as base = Lazy.force base_aware in
  let tile, _ = busiest_tile m in
  let tr = run_repair ~injected:[ Cgra.Dead_tile { tile } ] base in
  Alcotest.(check bool) "violations detected" true (tr.R.detected <> []);
  Alcotest.(check bool) "dead tile diagnosed" true
    (List.mem (Cgra.Dead_tile { tile }) tr.R.diagnosed);
  assert_repaired "dead tile" m tr

let test_repair_cm_rows_stuck () =
  let (_, m) as base = Lazy.force base_aware in
  let tile, words = busiest_tile m in
  Alcotest.(check bool) "busiest tile holds >= 2 words" true (words >= 2);
  (* Leave one word fewer than the mapping needs: a partial-capacity
     overflow, which must diagnose to the exact stuck-row count. *)
  let rows = Cgra.base_cm m.M.cgra tile - words + 1 in
  let tr = run_repair ~injected:[ Cgra.Cm_rows_stuck { tile; rows } ] base in
  Alcotest.(check bool) "exact rows diagnosed" true
    (List.mem (Cgra.Cm_rows_stuck { tile; rows }) tr.R.diagnosed);
  assert_repaired "stuck rows" m tr

(* A slot reading a value from an adjacent tile's RF, as (reader, source). *)
let neighbour_read m =
  List.find_map
    (fun (_, _, s) ->
      let reads =
        match s.M.action with
        | M.Amove { from_tile; _ } -> [ from_tile ]
        | M.Aop { operand_tiles; _ } -> operand_tiles
        | _ -> []
      in
      List.find_map
        (fun src ->
          if src <> s.M.tile && Cgra.distance m.M.cgra s.M.tile src = 1 then
            Some (s.M.tile, src)
          else None)
        reads)
    (all_slots m)

let test_repair_dead_link () =
  let (_, m) as base = Lazy.force base_aware in
  match neighbour_read m with
  | None -> Alcotest.fail "mapping has no neighbour read to sever"
  | Some (reader, src) ->
    let dir = Option.get (Cgra.dir_between m.M.cgra reader src) in
    let tr = run_repair ~injected:[ Cgra.Dead_link { tile = reader; dir } ] base in
    Alcotest.(check bool) "non-neighbour read detected" true
      (has_violation
         (function V.Non_neighbour_read _ -> true | _ -> false)
         tr.R.detected);
    Alcotest.(check bool) "severed link diagnosed" true
      (List.mem (Cgra.Dead_link { tile = reader; dir }) tr.R.diagnosed);
    assert_repaired "dead link" m tr

(* A tile on which the mapping executes a load or store. *)
let lsu_tile m =
  List.find_map
    (fun (bi, _, s) ->
      match s.M.action with
      | M.Aop { node; _ } ->
        let op =
          m.M.cdfg.Cgra_ir.Cdfg.blocks.(bi).Cgra_ir.Cdfg.nodes.(node)
            .Cgra_ir.Cdfg.opcode
        in
        if Op.needs_lsu op then Some s.M.tile else None
      | _ -> None)
    (all_slots m)

let test_repair_no_lsu () =
  let (_, m) as base = Lazy.force base_aware in
  match lsu_tile m with
  | None -> Alcotest.fail "mapping executes no load/store"
  | Some tile ->
    let tr = run_repair ~injected:[ Cgra.No_lsu { tile } ] base in
    Alcotest.(check bool) "LSU violation detected" true
      (has_violation
         (function V.Lsu_required _ -> true | _ -> false)
         tr.R.detected);
    Alcotest.(check bool) "missing LSU diagnosed" true
      (List.mem (Cgra.No_lsu { tile }) tr.R.diagnosed);
    assert_repaired "no lsu" m tr

let test_repair_unaffected () =
  let (_, m) as base = Lazy.force base_aware in
  (* One stuck context row on a tile with at least one word of slack is
     invisible to every invariant: nothing to repair. *)
  let nt = Cgra.tile_count m.M.cgra in
  let rec slack t =
    if t >= nt then Alcotest.fail "every tile is packed to capacity"
    else
      let words = Option.value ~default:0 (words_on m t) in
      if words + 1 <= Cgra.base_cm m.M.cgra t then t else slack (t + 1)
  in
  let tile = slack 0 in
  let tr = run_repair ~injected:[ Cgra.Cm_rows_stuck { tile; rows = 1 } ] base in
  Alcotest.(check bool) "unaffected" true (tr.R.status = R.Unaffected);
  Alcotest.(check bool) "trace renders" true
    (contains_sub ~sub:"unaffected" (R.trace_to_string tr))

(* ---- incremental remap: equivalence with the full mode ---------------- *)

let run_repair_mode ~mode ~injected (k, m) =
  R.repair ~mode ~config:repair_config ~injected
    ~fresh_mem:(fun () -> K.fresh_mem k)
    ~golden:(K.run_golden k) m

(* The single-fault maps the full-mode round-trip tests above repair,
   rebuilt from the pristine mapping. *)
let equivalence_faults m =
  let dead = [ Cgra.Dead_tile { tile = fst (busiest_tile m) } ] in
  let lsu =
    match lsu_tile m with
    | Some tile -> [ [ Cgra.No_lsu { tile } ] ]
    | None -> []
  in
  let link =
    match neighbour_read m with
    | None -> []
    | Some (reader, src) ->
      let dir = Option.get (Cgra.dir_between m.M.cgra reader src) in
      [ [ Cgra.Dead_link { tile = reader; dir } ] ]
  in
  (dead :: lsu) @ link

let test_repair_incremental_equivalence () =
  let (_, m) as base = Lazy.force base_aware in
  let partials = ref 0 in
  List.iter
    (fun injected ->
      let tr_full = run_repair_mode ~mode:R.Full ~injected base in
      let tr_inc = run_repair_mode ~mode:R.Incremental ~injected base in
      (* both modes golden-PASS on every cell: [Repaired] means the
         remapped program reproduced the golden memory image, and
         [assert_repaired] re-checks the invariants on the true array *)
      assert_repaired "full" m tr_full;
      assert_repaired "incremental" m tr_inc;
      (match tr_full.R.status with
       | R.Repaired { remap; _ } ->
         Alcotest.(check bool) "full mode never reports partial" true
           (remap = R.Full_remap)
       | _ -> ());
      match tr_inc.R.status with
      | R.Repaired { mapping; remap = R.Partial { dirty; total }; _ } ->
        incr partials;
        Alcotest.(check bool) "partial re-searched a strict subset" true
          (dirty < total);
        let dirty_flags, kept = R.dirty_blocks m tr_inc.R.diagnosed in
        (* surviving blocks are reused verbatim... *)
        Array.iteri
          (fun bi d ->
            if not d then
              Alcotest.(check bool)
                (Printf.sprintf "block %d reused verbatim" bi)
                true
                (mapping.M.bbs.(bi) = m.M.bbs.(bi)))
          dirty_flags;
        (* ...and every kept home survives into the repaired mapping *)
        Array.iteri
          (fun s h ->
            if h >= 0 then
              Alcotest.(check int)
                (Printf.sprintf "home of symbol %d preserved" s)
                h mapping.M.homes.(s))
          kept
      | _ -> ())
    (equivalence_faults m);
  Alcotest.(check bool) "at least one repair was partial" true (!partials > 0)

(* Soundness of the dirty-set rule, with the touched-tile computation
   re-derived here rather than through [Fault.tiles]: no surviving block
   may execute on, read from, or keep a symbol home on a faulted tile. *)
let prop_dirty_set_sound =
  let open QCheck in
  Test.make ~name:"repair: dirty-block set is sound" ~count:60
    (pair (int_bound 100_000) (int_range 1 3))
    (fun (seed, nfaults) ->
      let _, m = Lazy.force base_aware in
      let cgra = m.M.cgra in
      let rng = Cgra_util.Rng.create seed in
      let faults = F.sample_fault_map rng cgra ~faults:nfaults in
      let dirty, kept = R.dirty_blocks m faults in
      let bad =
        List.concat_map
          (function
            | Cgra.Dead_tile { tile }
            | Cgra.Cm_rows_stuck { tile; _ }
            | Cgra.No_lsu { tile } -> [ tile ]
            | Cgra.Dead_link { tile; dir } ->
              [ tile; Cgra.dir_neighbor cgra tile dir ])
          faults
      in
      let is_bad t = List.mem t bad in
      let home_bad s = is_bad m.M.homes.(s) in
      let slot_clean (s : M.slot) =
        (not (is_bad s.M.tile))
        && (match s.M.writes_sym with
           | Some sym -> not (home_bad sym)
           | None -> true)
        && (match s.M.action with
           | M.Aop { operand_tiles; _ } ->
             List.for_all (fun t -> not (is_bad t)) operand_tiles
           | M.Amove { from_tile; value } ->
             (not (is_bad from_tile))
             && (match value with
                | M.Vsym sym -> not (home_bad sym)
                | _ -> true)
           | M.Acopy (M.Vsym sym) -> not (home_bad sym)
           | M.Acopy _ -> true)
      in
      let survivors_clean =
        Array.for_all
          (fun (b : M.bb_mapping) ->
            dirty.(b.M.bb) || List.for_all slot_clean b.M.slots)
          m.M.bbs
      in
      let kept_consistent =
        Array.for_all Fun.id
          (Array.mapi
             (fun s h ->
               if h < 0 then true else h = m.M.homes.(s) && not (is_bad h))
             kept)
      in
      survivors_clean && kept_consistent)

let repair_campaign ?mode ~jobs ~seed () =
  let k, m = Lazy.force base_aware in
  R.run_campaign ?mode ~jobs ~seed ~trials:5 ~faults:1 ~key:"test/fir/repair"
    ~config:repair_config
    ~fresh_mem:(fun () -> K.fresh_mem k)
    m

let test_repair_campaign_deterministic () =
  let c1 = repair_campaign ~jobs:1 ~seed:7 () in
  let c2 = repair_campaign ~jobs:2 ~seed:7 () in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (c1 = c2);
  let s = c1.R.summary in
  Alcotest.(check int) "classes sum to trials" s.R.trials
    (s.R.unaffected + s.R.repaired + s.R.gave_up);
  List.iteri
    (fun i (t : R.trial) -> Alcotest.(check int) "index order" i t.R.index)
    c1.R.runs;
  Alcotest.(check bool) "pristine baseline recorded" true (c1.R.pristine_cycles > 0)

let test_repair_campaign_incremental_deterministic () =
  let c1 = repair_campaign ~mode:R.Incremental ~jobs:1 ~seed:7 () in
  let c2 = repair_campaign ~mode:R.Incremental ~jobs:2 ~seed:7 () in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (c1 = c2);
  let s = c1.R.summary in
  Alcotest.(check bool) "partial repairs are a subset of repairs" true
    (s.R.partial_repairs <= s.R.repaired);
  (* the injected fault maps are drawn before the mode branches, so both
     modes face identical trials *)
  let full = repair_campaign ~jobs:1 ~seed:7 () in
  Alcotest.(check int) "full mode counts no partials" 0
    full.R.summary.R.partial_repairs;
  List.iter2
    (fun (a : R.trial) (b : R.trial) ->
      Alcotest.(check bool) "same injected faults per trial" true
        (a.R.trace.R.injected = b.R.trace.R.injected))
    c1.R.runs full.R.runs

(* ---- Flow integration: validate + degrade ----------------------------- *)

let test_flow_validate_passes () =
  Cgra_verify.Validator.install ();
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fir") in
  let config = { FC.basic with FC.validate = true } in
  match Flow.run ~config (Config.cgra Config.HOM64) (K.cdfg k) with
  | Ok _ -> ()
  | Error f -> Alcotest.fail ("validated flow failed: " ^ f.Flow.reason)

let test_degrade_noop_on_mappable () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fir") in
  let config = { FC.basic with FC.degrade = true } in
  match Flow.run ~config (Config.cgra Config.HOM64) (K.cdfg k) with
  | Ok (_, stats) ->
    Alcotest.(check int) "no escalations needed" 0
      (List.length stats.Flow.escalations)
  | Error f -> Alcotest.fail f.Flow.reason

let test_degrade_gave_up_trace () =
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fir") in
  (* Two context words per tile cannot hold any kernel: every attempt of
     the ladder must fail, leaving one typed escalation per attempt. *)
  let starved = Cgra.make ~cm_of_tile:(fun _ -> 2) () in
  let config = { FC.basic with FC.degrade = true; FC.max_attempts = 3 } in
  match Flow.run ~config starved (K.cdfg k) with
  | Ok _ -> Alcotest.fail "2-word tiles must be unmappable"
  | Error f ->
    Alcotest.(check int) "one escalation per attempt" 3 (List.length f.Flow.gave_up);
    List.iteri
      (fun i e -> Alcotest.(check int) "attempt numbering" i e.Flow.e_attempt)
      f.Flow.gave_up;
    (match f.Flow.gave_up with
     | e0 :: e1 :: e2 :: _ ->
       Alcotest.(check int) "attempt 0 is the base config"
         config.FC.beam_width e0.Flow.e_beam_width;
       Alcotest.(check int) "attempt 1 widens the beam"
         (min 128 (2 * config.FC.beam_width))
         e1.Flow.e_beam_width;
       Alcotest.(check bool) "fresh seeds per attempt" true
         (e1.Flow.e_seed <> e2.Flow.e_seed);
       Alcotest.(check bool) "escalation renders" true
         (String.length (Flow.escalation_to_string e1) > 0)
     | _ -> Alcotest.fail "expected 3 escalations")

let test_validate_without_validator_is_typed () =
  (* A fresh Flow in a process without [install] cannot be simulated here
     (install is process-global), but the error path for a validator that
     rejects everything is still reachable. *)
  Flow.set_validator (fun _ -> [ "synthetic violation" ]);
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fir") in
  let config = { FC.basic with FC.validate = true } in
  let r = Flow.run ~config (Config.cgra Config.HOM64) (K.cdfg k) in
  (* restore the real validator for any later test *)
  Cgra_verify.Validator.install ();
  match r with
  | Ok _ -> Alcotest.fail "rejecting validator must fail the flow"
  | Error f ->
    Alcotest.(check bool) "reason names the validation" true
      (contains_sub ~sub:"validation failed" f.Flow.reason)

let suite =
  [ ( "verify",
      [ Alcotest.test_case "clean artifacts pass" `Quick test_clean_artifacts;
        Alcotest.test_case "catches CM overflow" `Quick test_catches_cm_overflow;
        Alcotest.test_case "catches non-neighbour reads" `Quick
          test_catches_non_neighbour;
        Alcotest.test_case "catches operand-before-ready" `Quick
          test_catches_operand_not_ready;
        Alcotest.test_case "catches bad CRF index" `Quick
          test_catches_bad_crf_index;
        Alcotest.test_case "catches bad symbol home" `Quick
          test_catches_bad_home;
        QCheck_alcotest.to_alcotest prop_random_corruption_caught;
        Alcotest.test_case "simulator: typed non-neighbour error" `Quick
          test_sim_non_neighbour_typed;
        Alcotest.test_case "simulator: error rendering" `Quick
          test_sim_error_rendering;
        Alcotest.test_case "simulator: late RF fault is masked" `Quick
          test_sim_rf_fault_masked_or_not;
        Alcotest.test_case "fault campaign: jobs-independent" `Quick
          test_campaign_deterministic_across_jobs;
        Alcotest.test_case "fault campaign: counts consistent" `Quick
          test_campaign_counts_consistent;
        Alcotest.test_case "repair: dead tile round-trip" `Quick
          test_repair_dead_tile;
        Alcotest.test_case "repair: stuck CM rows round-trip" `Quick
          test_repair_cm_rows_stuck;
        Alcotest.test_case "repair: dead link round-trip" `Quick
          test_repair_dead_link;
        Alcotest.test_case "repair: missing LSU round-trip" `Quick
          test_repair_no_lsu;
        Alcotest.test_case "repair: unused fault is unaffected" `Quick
          test_repair_unaffected;
        Alcotest.test_case "repair: incremental = full on golden-PASS cells"
          `Quick test_repair_incremental_equivalence;
        QCheck_alcotest.to_alcotest prop_dirty_set_sound;
        Alcotest.test_case "repair campaign: jobs-independent" `Quick
          test_repair_campaign_deterministic;
        Alcotest.test_case "repair campaign: incremental jobs-independent"
          `Quick test_repair_campaign_incremental_deterministic;
        Alcotest.test_case "flow: validate passes on real mapping" `Quick
          test_flow_validate_passes;
        Alcotest.test_case "flow: degrade is a no-op when mappable" `Quick
          test_degrade_noop_on_mappable;
        Alcotest.test_case "flow: gave-up trace on starved fabric" `Quick
          test_degrade_gave_up_trace;
        Alcotest.test_case "flow: rejecting validator fails typed" `Quick
          test_validate_without_validator_is_typed ] ) ]
