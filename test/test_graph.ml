(* Tests for the digraph substrate. *)

module D = Cgra_graph.Digraph

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = D.create () in
  for _ = 1 to 4 do
    ignore (D.add_node g)
  done;
  D.add_edge g ~src:0 ~dst:1;
  D.add_edge g ~src:0 ~dst:2;
  D.add_edge g ~src:1 ~dst:3;
  D.add_edge g ~src:2 ~dst:3;
  g

let test_degrees () =
  let g = diamond () in
  Alcotest.(check int) "out 0" 2 (D.out_degree g 0);
  Alcotest.(check int) "in 3" 2 (D.in_degree g 3);
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (D.succs g 0);
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (List.sort compare (D.preds g 3))

let topo_exn g =
  match D.topo_sort g with
  | Ok order -> order
  | Error _ -> Alcotest.fail "expected acyclic graph"

let test_topo () =
  let g = diamond () in
  let order = topo_exn g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "0 before 3" true (pos.(0) < pos.(3));
  Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3))

let test_cycle_detect () =
  let g = D.create () in
  let a = D.add_node g and b = D.add_node g in
  D.add_edge g ~src:a ~dst:b;
  D.add_edge g ~src:b ~dst:a;
  Alcotest.(check bool) "cyclic" false (D.is_acyclic g);
  (match D.topo_sort g with
   | Ok _ -> Alcotest.fail "topo_sort must report the cycle"
   | Error ids ->
     Alcotest.(check (list int)) "offending nodes" [ a; b ]
       (List.sort compare ids));
  Alcotest.check_raises "topo_sort_exn raises typed Cycle"
    (D.Cycle [ a; b ]) (fun () -> ignore (D.topo_sort_exn g))

let test_cycle_excludes_dag_prefix () =
  (* a DAG prefix feeding a cycle: only the cycle members are reported *)
  let g = D.create () in
  let a = D.add_node g and b = D.add_node g and c = D.add_node g in
  D.add_edge g ~src:a ~dst:b;
  D.add_edge g ~src:b ~dst:c;
  D.add_edge g ~src:c ~dst:b;
  match D.topo_sort g with
  | Ok _ -> Alcotest.fail "graph has a cycle"
  | Error ids ->
    Alcotest.(check (list int)) "only cycle members" [ b; c ]
      (List.sort compare ids)

let test_topo_weak_on_cycle () =
  let g = D.create () in
  let a = D.add_node g and b = D.add_node g and c = D.add_node g in
  D.add_edge g ~src:a ~dst:b;
  D.add_edge g ~src:b ~dst:c;
  D.add_edge g ~src:c ~dst:b;
  (* loop *)
  let order = D.topo_sort_weak g in
  Alcotest.(check int) "all nodes" 3 (List.length order);
  Alcotest.(check bool) "a first" true (List.nth order 0 = a)

let test_longest_paths () =
  let g = diamond () in
  let from_src = D.longest_path_from_sources g in
  Alcotest.(check (array int)) "asap levels" [| 0; 1; 1; 2 |] from_src;
  let to_sink = D.longest_path_to_sinks g in
  Alcotest.(check (array int)) "alap depths" [| 2; 1; 1; 0 |] to_sink

let test_reachable () =
  let g = D.create () in
  let a = D.add_node g and b = D.add_node g and c = D.add_node g in
  D.add_edge g ~src:a ~dst:b;
  ignore c;
  let r = D.reachable_from g [ a ] in
  Alcotest.(check (array bool)) "a,b reachable" [| true; true; false |] r

let test_duplicate_edges () =
  let g = D.create () in
  let a = D.add_node g and b = D.add_node g in
  D.add_edge g ~src:a ~dst:b;
  D.add_edge g ~src:a ~dst:b;
  Alcotest.(check int) "kept" 2 (D.out_degree g a);
  Alcotest.(check int) "in too" 2 (D.in_degree g b)

let test_dot () =
  let g = diamond () in
  let s = D.to_dot g in
  Alcotest.(check bool) "mentions edge" true
    (String.length s > 0 && String.split_on_char '\n' s
     |> List.exists (fun l -> String.trim l = "n0 -> n1;"))

(* Random DAG: edges only from lower to higher ids. *)
let gen_dag =
  QCheck.Gen.(
    sized (fun n ->
        let n = max 2 (min 20 n) in
        list_size (int_bound (3 * n))
          (pair (int_bound (n - 1)) (int_bound (n - 1)))
        >|= fun edges -> (n, edges)))

let arb_dag = QCheck.make gen_dag

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo_sort respects DAG edges" ~count:200 arb_dag
    (fun (n, edges) ->
      let g = D.create () in
      for _ = 1 to n do
        ignore (D.add_node g)
      done;
      List.iter
        (fun (a, b) ->
          if a <> b then
            let src = min a b and dst = max a b in
            D.add_edge g ~src ~dst)
        edges;
      let order =
        match D.topo_sort g with
        | Ok order -> order
        | Error _ -> QCheck.Test.fail_report "DAG reported as cyclic"
      in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.length order = n
      && List.for_all
           (fun (a, b) -> a = b || pos.(min a b) < pos.(max a b))
           edges)

let suite =
  [ ( "graph",
      [ Alcotest.test_case "degrees" `Quick test_degrees;
        Alcotest.test_case "topological sort" `Quick test_topo;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detect;
        Alcotest.test_case "cycle excludes DAG prefix" `Quick
          test_cycle_excludes_dag_prefix;
        Alcotest.test_case "weak topo on cycle" `Quick test_topo_weak_on_cycle;
        Alcotest.test_case "longest paths" `Quick test_longest_paths;
        Alcotest.test_case "reachability" `Quick test_reachable;
        Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges;
        Alcotest.test_case "dot export" `Quick test_dot;
        QCheck_alcotest.to_alcotest prop_topo_respects_edges ] ) ]
