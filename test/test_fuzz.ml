(* Differential fuzzing of the whole tool-chain.

   Random loop kernels are built directly as CDFGs and executed three
   ways: the reference interpreter, the CGRA pipeline (map -> assemble ->
   cycle-level simulation) and the CPU baseline.  All three memory images
   must agree — any divergence is a bug in the mapper, the register
   allocator, the simulators or the cost bookkeeping.

   The generated programs: a loop over [iters] iterations whose body is a
   random DFG over the loop counter, loads from a read-only input region
   and earlier results, ending with stores to iteration-distinct
   addresses (so no in-block aliasing arises and scheduling freedom is
   maximal). *)

module B = Cgra_ir.Builder
module Cdfg = Cgra_ir.Cdfg
module Op = Cgra_ir.Opcode
module Config = Cgra_arch.Config

type spec = {
  seed : int;
  n_ops : int;  (* random ALU nodes in the body *)
  n_stores : int;
  iters : int;
}

let mem_words = 80
let input_words = 16 (* region [0, 16) is read-only input *)
let out_base = 16 (* stores land in [16, 16 + 8*iters) *)

let safe_ops =
  [| Op.Add; Op.Sub; Op.Mul; Op.Min; Op.Max; Op.And; Op.Or; Op.Xor; Op.Lt;
     Op.Ge |]

let build { seed; n_ops; n_stores; iters } =
  let rng = Cgra_util.Rng.create seed in
  let b = B.create (Printf.sprintf "fuzz%d" seed) in
  let i = B.fresh_sym b "i" in
  let acc = B.fresh_sym b "acc" in
  let pre = B.add_block b "pre" in
  let body = B.add_block b "body" in
  let exit_ = B.add_block b "exit" in
  B.set_live_out b pre i (Cdfg.Imm 0);
  B.set_live_out b pre acc (Cdfg.Imm 1);
  B.set_terminator b pre (Cdfg.Jump (B.block_id body));
  (* the body: a few loads from the input region, then random ALU nodes *)
  let values = ref [ Cdfg.Sym i; Cdfg.Sym acc ] in
  let pick_value () = Cgra_util.Rng.pick rng !values in
  for _ = 1 to 2 do
    let addr = Cgra_util.Rng.int rng input_words in
    let v = B.add_node b body Op.Load [ Cdfg.Imm addr ] in
    values := v :: !values
  done;
  for _ = 1 to n_ops do
    let op = safe_ops.(Cgra_util.Rng.int rng (Array.length safe_ops)) in
    let x = pick_value () and y = pick_value () in
    (* keep magnitudes bounded so multiplies do not overflow repeatedly *)
    let y = if op = Op.Mul then Cdfg.Imm (1 + Cgra_util.Rng.int rng 7) else y in
    let v = B.add_node b body op [ x; y ] in
    values := v :: !values
  done;
  (* stores to iteration-distinct addresses: out_base + 8*i + slot *)
  let i8 = B.add_node b body Op.Shl [ Cdfg.Sym i; Cdfg.Imm 3 ] in
  for s = 0 to n_stores - 1 do
    let addr = B.add_node b body Op.Add [ i8; Cdfg.Imm (out_base + s) ] in
    let _ = B.add_node b body Op.Store [ addr; pick_value () ] in
    ()
  done;
  let i1 = B.add_node b body Op.Add [ Cdfg.Sym i; Cdfg.Imm 1 ] in
  let c = B.add_node b body Op.Lt [ i1; Cdfg.Imm iters ] in
  B.set_live_out b body i i1;
  B.set_live_out b body acc (pick_value ());
  B.set_terminator b body (Cdfg.Branch (c, B.block_id body, B.block_id exit_));
  B.set_terminator b exit_ Cdfg.Return;
  B.finish b

let init_mem seed =
  let mem = Array.make mem_words 0 in
  let rng = Cgra_util.Rng.create (seed * 77) in
  for k = 0 to input_words - 1 do
    mem.(k) <- Cgra_util.Rng.int rng 200 - 100
  done;
  mem

let run_interp cdfg seed =
  let mem = init_mem seed in
  ignore (Cgra_ir.Interp.run cdfg ~mem);
  mem

let run_cgra cdfg seed config flow =
  match Cgra_core.Flow.run ~config:flow (Config.cgra config) cdfg with
  | Error f -> Error ("map: " ^ f.Cgra_core.Flow.reason)
  | Ok (m, _) -> (
    match Cgra_asm.Assemble.assemble m with
    | exception Cgra_asm.Assemble.Assembly_error e -> Error ("asm: " ^ e)
    | prog -> (
      let mem = init_mem seed in
      match Cgra_sim.Simulator.run prog ~mem with
      | exception Cgra_sim.Simulator.Sim_error e ->
        Error ("sim: " ^ Cgra_sim.Simulator.error_to_string e)
      | _ -> Ok mem))

let run_cpu cdfg seed =
  let prog = Cgra_cpu.Codegen.compile cdfg in
  let mem = init_mem seed in
  ignore (Cgra_cpu.Cpu_sim.run prog ~mem);
  mem

let arb_spec =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "seed=%d ops=%d stores=%d iters=%d" s.seed s.n_ops
        s.n_stores s.iters)
    QCheck.Gen.(
      map4
        (fun seed n_ops n_stores iters -> { seed; n_ops; n_stores; iters })
        (int_bound 100_000) (int_range 3 14) (int_range 1 4) (int_range 1 5))

let prop_interp_vs_cgra =
  QCheck.Test.make ~name:"random kernels: interp = CGRA (basic@HOM64)"
    ~count:20 arb_spec (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      let golden = run_interp cdfg spec.seed in
      match run_cgra cdfg spec.seed Config.HOM64 Cgra_core.Flow_config.basic with
      | Ok mem -> mem = golden
      | Error e -> QCheck.Test.fail_report e)

let prop_interp_vs_cgra_aware =
  QCheck.Test.make ~name:"random kernels: interp = CGRA (aware@HET2)"
    ~count:12 arb_spec (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      let golden = run_interp cdfg spec.seed in
      match
        run_cgra cdfg spec.seed Config.HET2 Cgra_core.Flow_config.context_aware
      with
      | Ok mem -> mem = golden
      | Error e -> QCheck.Test.fail_report e)

let prop_interp_vs_cpu =
  QCheck.Test.make ~name:"random kernels: interp = CPU" ~count:40 arb_spec
    (fun spec ->
      let cdfg = Cgra_ir.Opt.optimize (build spec) in
      run_interp cdfg spec.seed = run_cpu cdfg spec.seed)

let prop_opt_preserves =
  QCheck.Test.make ~name:"random kernels: optimize preserves semantics"
    ~count:60 arb_spec (fun spec ->
      let raw = build spec in
      run_interp raw spec.seed = run_interp (Cgra_ir.Opt.optimize raw) spec.seed)

(* ---- differential fuzzing of the cgra_opt pipeline ------------------- *)

(* Random straight-line kernel-language sources: arrays [a @ 0] (32 input
   words, indices masked with [& 31] so loads stay in bounds) and
   [o @ 32] (store targets), a chain of variable assignments over random
   expressions, then stores.  Compiled with the naive lowering and pushed
   through the cgra_opt pipeline under a *random* pass order and subset —
   every subset in every order must preserve the interpreter's memory
   image, the CDFG's validity and the store count. *)

let straight_src spec =
  let rng = Cgra_util.Rng.create (spec.seed lxor 0x51ab) in
  let n_vars = 2 + spec.n_ops in
  let b = Buffer.create 512 in
  Buffer.add_string b "kernel fz {\n  arr a @ 0;\n  arr o @ 32;\n";
  for v = 0 to n_vars - 1 do
    Buffer.add_string b (Printf.sprintf "  var v%d;\n" v)
  done;
  let binops =
    [| "+"; "-"; "*"; "&"; "|"; "^"; "<"; "<="; "=="; "!="; ">"; ">=" |]
  in
  let lit () =
    let k = Cgra_util.Rng.int rng 201 - 100 in
    if k < 0 then Printf.sprintf "(%d)" k else string_of_int k
  in
  let leaf avail =
    match Cgra_util.Rng.int rng 3 with
    | 1 when avail > 0 -> Printf.sprintf "v%d" (Cgra_util.Rng.int rng avail)
    | 0 -> lit ()
    | _ -> Printf.sprintf "a[%d]" (Cgra_util.Rng.int rng 32)
  in
  let rec expr depth avail =
    if depth = 0 then leaf avail
    else
      match Cgra_util.Rng.int rng 6 with
      | 0 -> leaf avail
      | 1 ->
        Printf.sprintf "(%s << %d)" (expr (depth - 1) avail)
          (Cgra_util.Rng.int rng 5)
      | 2 ->
        Printf.sprintf "(%s >> %d)" (expr (depth - 1) avail)
          (Cgra_util.Rng.int rng 5)
      | 3 -> Printf.sprintf "a[(%s) & 31]" (expr (depth - 1) avail)
      | _ ->
        let op = binops.(Cgra_util.Rng.int rng (Array.length binops)) in
        Printf.sprintf "(%s %s %s)" (expr (depth - 1) avail) op
          (expr (depth - 1) avail)
  in
  for v = 0 to n_vars - 1 do
    Buffer.add_string b (Printf.sprintf "  v%d = %s;\n" v (expr 3 v))
  done;
  for s = 0 to spec.n_stores - 1 do
    Buffer.add_string b (Printf.sprintf "  o[%d] = %s;\n" s (expr 2 n_vars))
  done;
  Buffer.add_string b "}\n";
  Buffer.contents b

let straight_mem seed =
  let mem = Array.make 64 0 in
  let rng = Cgra_util.Rng.create (seed * 131) in
  for k = 0 to 31 do
    mem.(k) <- Cgra_util.Rng.int rng 2001 - 1000
  done;
  mem

(* A random permutation of the passes, truncated to a random non-empty
   prefix: exercises both order-independence and subset-soundness. *)
let shuffled_passes seed =
  let rng = Cgra_util.Rng.create (seed + 13) in
  let arr = Array.of_list Cgra_opt.Passes.all in
  for i = Array.length arr - 1 downto 1 do
    let j = Cgra_util.Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let keep = 1 + Cgra_util.Rng.int rng (Array.length arr) in
  Array.to_list (Array.sub arr 0 keep)

let store_count cdfg =
  Array.fold_left
    (fun acc b ->
      acc
      + Array.fold_left
          (fun acc nd -> if nd.Cdfg.opcode = Op.Store then acc + 1 else acc)
          0 b.Cdfg.nodes)
    0 cdfg.Cdfg.blocks

let prop_opt_pipeline_differential =
  QCheck.Test.make
    ~name:"random sources: cgra_opt pipeline (random pass order) = interp"
    ~count:60 arb_spec (fun spec ->
      let src = straight_src spec in
      let cdfg = Cgra_lang.Compile.compile_exn ~raw:true src in
      let mem0 = straight_mem spec.seed in
      let passes = shuffled_passes spec.seed in
      let verify = Cgra_opt.Pipeline.verifier_of_mems [ Array.copy mem0 ] in
      (* the pipeline verifies after every pass; if a pass were unsound it
         raises here rather than returning *)
      let c', _report = Cgra_opt.Pipeline.run ~passes ~verify cdfg in
      (* ...and we re-check independently of the pipeline's own net *)
      Cdfg.validate c' = Ok ()
      && store_count c' = store_count cdfg
      &&
      let m1 = Array.copy mem0 and m2 = Array.copy mem0 in
      ignore (Cgra_ir.Interp.run cdfg ~mem:m1);
      ignore (Cgra_ir.Interp.run c' ~mem:m2);
      m1 = m2)

(* ---- fixed regression corpus ----------------------------------------- *)

(* Deterministic replay of specs that once exposed bugs — no QCheck
   sampling, so these exact programs run on every [dune runtest].  The
   generated sources mix literals with loads and variables in the same
   expression, which drives the const_fold mixed-operand path that used
   to die on an [assert false] instead of keeping the node unfolded. *)
let corpus_specs =
  [ { seed = 4242; n_ops = 8; n_stores = 2; iters = 3 };
    { seed = 1789; n_ops = 12; n_stores = 3; iters = 2 };
    { seed = 77; n_ops = 5; n_stores = 1; iters = 4 } ]

let test_corpus_replay () =
  List.iter
    (fun spec ->
      let src = straight_src spec in
      let cdfg = Cgra_lang.Compile.compile_exn ~raw:true src in
      let mem0 = straight_mem spec.seed in
      let verify = Cgra_opt.Pipeline.verifier_of_mems [ Array.copy mem0 ] in
      (* full pipeline, canonical pass order: const_fold included *)
      let c', _report = Cgra_opt.Pipeline.run ~verify cdfg in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: optimized CDFG valid" spec.seed)
        true
        (Cdfg.validate c' = Ok ());
      let m1 = Array.copy mem0 and m2 = Array.copy mem0 in
      ignore (Cgra_ir.Interp.run cdfg ~mem:m1);
      ignore (Cgra_ir.Interp.run c' ~mem:m2);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: memory image preserved" spec.seed)
        true (m1 = m2))
    corpus_specs

let suite =
  [ ( "fuzz",
      [ QCheck_alcotest.to_alcotest prop_interp_vs_cgra;
        QCheck_alcotest.to_alcotest prop_interp_vs_cgra_aware;
        QCheck_alcotest.to_alcotest prop_interp_vs_cpu;
        QCheck_alcotest.to_alcotest prop_opt_preserves;
        QCheck_alcotest.to_alcotest prop_opt_pipeline_differential;
        Alcotest.test_case "regression corpus replay" `Quick
          test_corpus_replay ] ) ]
