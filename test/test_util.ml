(* Unit and property tests for Cgra_util: the deterministic RNG and the
   text renderers. *)

module Rng = Cgra_util.Rng
module T = Cgra_util.Text_table

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let da = List.init 16 (fun _ -> Rng.int64 a) in
  let db = List.init 16 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "different seeds differ" true (da <> db)

let test_split_independent () =
  let g = Rng.create 42 in
  let child = Rng.split g in
  let after_split = List.init 8 (fun _ -> Rng.int64 g) in
  let child_draws = List.init 8 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "split stream differs" true (after_split <> child_draws)

let test_copy_replays () =
  let g = Rng.create 9 in
  ignore (Rng.int64 g);
  let c = Rng.copy g in
  Alcotest.(check int64) "copy replays" (Rng.int64 g) (Rng.int64 c)

let test_int_bounds_exn () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 0) 0))

let test_pick_empty () =
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick (Rng.create 0) []))

(* [pick] must behave exactly like [List.nth l (int g (length l))] —
   including consuming one bounded draw even for a singleton list — so
   the array-backed implementation cannot shift any downstream stream. *)
let test_pick_matches_nth () =
  let l = [ 10; 20; 30; 40; 50 ] in
  let a = Rng.create 5 and b = Rng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same element as the nth reference"
      (List.nth l (Rng.int b (List.length l)))
      (Rng.pick a l)
  done;
  Alcotest.(check int) "singleton picks its element" 7 (Rng.pick a [ 7 ]);
  ignore (Rng.int b 1);
  Alcotest.(check int64) "streams aligned after singleton pick" (Rng.int64 b)
    (Rng.int64 a)

let test_shuffle_permutation () =
  let g = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* Regression for the modulo-bias bug: with bound n = 3*2^60 the raw 62-bit
   draw is folded from a range only 4/3 the size of n, so plain [v mod n]
   lands below 2^60 with probability 1/2 instead of the uniform 1/3.
   Rejection sampling must bring the observed fraction back to ~1/3; the
   stream is seeded, so this test is fully deterministic. *)
let test_int_unbiased () =
  let g = Rng.create 2019 in
  let n = 3 * (1 lsl 60) in
  let threshold = 1 lsl 60 in
  let trials = 3000 in
  let low = ref 0 in
  for _ = 1 to trials do
    if Rng.int g n < threshold then incr low
  done;
  let frac = float_of_int !low /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "fraction below 2^60 is ~1/3 (got %.3f)" frac)
    true
    (frac > 0.30 && frac < 0.37)

let prop_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let prop_float_unit =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Rng.create seed in
      let v = Rng.float g in
      v >= 0.0 && v < 1.0)

let test_render_alignment () =
  let s =
    T.render ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has separator" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '-') lines);
  Alcotest.(check bool) "short row padded" true
    (List.exists (fun l -> String.trim l = "z") lines)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_bar_chart_zero () =
  let s = T.bar_chart ~title:"t" [ ("a", 0.0); ("b", 2.0) ] in
  Alcotest.(check bool) "zero renders (none)" true (contains s "(none)")

let test_float_cell () =
  Alcotest.(check string) "integral" "3" (T.float_cell 3.0);
  Alcotest.(check string) "small" "0.007" (T.float_cell 0.007);
  Alcotest.(check string) "mid" "1.43" (T.float_cell 1.434)

let suite =
  [ ( "util",
      [ Alcotest.test_case "rng determinism" `Quick test_determinism;
        Alcotest.test_case "rng seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "rng split independence" `Quick test_split_independent;
        Alcotest.test_case "rng copy replays" `Quick test_copy_replays;
        Alcotest.test_case "rng int bad bound" `Quick test_int_bounds_exn;
        Alcotest.test_case "rng pick empty" `Quick test_pick_empty;
        Alcotest.test_case "rng pick matches nth reference" `Quick
          test_pick_matches_nth;
        Alcotest.test_case "rng shuffle permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "rng int unbiased near max_int" `Quick
          test_int_unbiased;
        QCheck_alcotest.to_alcotest prop_int_in_range;
        QCheck_alcotest.to_alcotest prop_float_unit;
        Alcotest.test_case "table render" `Quick test_render_alignment;
        Alcotest.test_case "bar chart zero" `Quick test_bar_chart_zero;
        Alcotest.test_case "float cell" `Quick test_float_cell ] ) ]
