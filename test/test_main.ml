(* Aggregate test runner: one alcotest binary over all library suites. *)

let () =
  Alcotest.run "cgra-repro"
    (Test_util.suite @ Test_graph.suite @ Test_ir.suite @ Test_lang.suite
   @ Test_arch.suite @ Test_core.suite @ Test_asm_sim.suite @ Test_cpu.suite
   @ Test_power.suite @ Test_kernels.suite @ Test_opt.suite @ Test_fuzz.suite
   @ Test_parallel.suite @ Test_serve.suite @ Test_verify.suite
   @ Test_protect.suite @ Test_sat.suite @ Test_e2e.suite)
