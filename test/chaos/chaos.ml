(* Chaos harness for the cgra_mapd supervision layer.

   Each scenario forks a real daemon process (so SIGKILL is a real
   SIGKILL, and orphaned tmp files belong to a genuinely dead writer),
   injects one failure — kill -9 mid-compute, a torn store write, a
   half-closed socket, a stalled (slow-loris) peer, an oversized frame,
   an expiring deadline, an overloaded queue — and asserts the service
   degrades the way DESIGN.md §5h promises: typed errors, no stuck
   threads, and a restart that recovers byte-identical artifacts.

   Run directly: dune exec test/chaos/chaos.exe [-- --quick]
   Exit 0 = every scenario held; exit 1 = first broken invariant
   (with a one-line diagnosis). *)

module Serve = Cgra_serve
module Client = Serve.Client
module Store = Serve.Store
module Wire = Serve.Wire
module Protocol = Serve.Protocol

let quick = Array.exists (( = ) "--quick") Sys.argv

let failures = ref 0

let check name cond =
  if not cond then begin
    incr failures;
    Printf.printf "chaos: FAIL  %s\n%!" name
  end

let scenario name f =
  Printf.printf "chaos: ---- %s\n%!" name;
  let before = !failures in
  (try f ()
   with e ->
     incr failures;
     Printf.printf "chaos: FAIL  %s raised %s\n%!" name (Printexc.to_string e));
  if !failures = before then Printf.printf "chaos: OK    %s\n%!" name

(* ---- plumbing --------------------------------------------------------- *)

let tmp_counter = ref 0

let fresh_path prefix =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)

let rm_rf path =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote path)))

(* Fork a daemon child.  The parent has no domains and no extra threads
   at every fork site, so the fork is safe; the child never returns. *)
let fork_daemon ?deadline_ms ?queue_limit ?io_timeout_s ?(jobs = 2) ~root
    ~socket () =
  match Unix.fork () with
  | 0 ->
    (try
       Serve.Server.serve
         {
           Serve.Server.socket_path = socket;
           tcp_port = None;
           store_root = Some root;
           jobs = Some jobs;
           verbose = false;
           deadline_ms;
           queue_limit;
           io_timeout_s;
         }
     with _ -> ());
    Stdlib.exit 0
  | pid -> pid

let wait_ready ep =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Client.ping ep with
    | Ok _ -> true
    | Error _ ->
      if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

let sigkill pid =
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid)

let sigterm pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let spec_exn ~slug ~config ~flow =
  match
    Serve.Key.spec_of_bundled ~slug ~config ~flow ~opt:Serve.Key.Default
      ~faults:[]
  with
  | Ok s -> s
  | Error e -> failwith e

(* Fast to compute, the byte-identity witness. *)
let fir_spec () =
  spec_exn ~slug:"fir" ~config:Cgra_arch.Config.HET2
    ~flow:Cgra_core.Flow_config.context_aware

(* Slow to compute (tens of seconds): the SAT backend proving schedule
   lengths for matrix multiply on the context-starved HOM32 array.
   [seed] varies the key (it is a semantic knob), giving the overload
   scenario distinct cache-missing requests. *)
let slow_spec ?(seed = 0) () =
  spec_exn ~slug:"matm" ~config:Cgra_arch.Config.HOM32
    ~flow:
      {
        Cgra_core.Flow_config.context_aware with
        Cgra_core.Flow_config.backend = Cgra_core.Flow_config.Exact;
        seed;
      }

(* ---- scenario: torn store writes -------------------------------------- *)

(* No daemon involved: exercise the startup sweep directly.  Plant the
   two kinds of crash debris the write protocol can leave — an orphaned
   root-level tmp file and a truncated entry — and check the scan
   removes exactly them, idempotently, without harming intact data. *)
let torn_store () =
  let root = fresh_path "cgra-chaos-store" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let store = Store.open_ ~root () in
  let key_a = String.make 32 'a' and key_b = String.make 32 'b' in
  Store.put store key_a "payload-a";
  Store.put store key_b "payload-b";
  (* orphan: a writer died between temp-file creation and rename *)
  Out_channel.with_open_bin (Filename.concat root "tmp.99999.0.0") (fun oc ->
      Out_channel.output_string oc "half a frame");
  (* torn write: entry b loses its tail *)
  let entry_b = ref None in
  Array.iter
    (fun sub ->
      let dir = Filename.concat root sub in
      if String.length sub = 2 && Sys.is_directory dir then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".art" && sub = "bb" then
              entry_b := Some (Filename.concat dir f))
          (Sys.readdir dir))
    (Sys.readdir root);
  (match !entry_b with
  | None -> check "entry for key b exists on disk" false
  | Some path ->
    let full = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (String.sub full 0 (String.length full - 4))));
  let swept = Store.scan store in
  check "scan removes the orphaned tmp file" (swept.Store.orphans = 1);
  check "scan removes the truncated entry" (swept.Store.truncated = 1);
  let again = Store.scan store in
  check "second scan finds nothing"
    (again.Store.orphans = 0 && again.Store.truncated = 0);
  (match Store.find store key_a with
  | Store.Hit bytes -> check "intact entry survives" (bytes = "payload-a")
  | Store.Miss | Store.Evicted_corrupt _ ->
    check "intact entry survives" false);
  match Store.find store key_b with
  | Store.Miss -> ()
  | Store.Hit _ | Store.Evicted_corrupt _ ->
    check "truncated entry is gone (clean miss, no eviction noise)" false

(* ---- scenario: SIGKILL mid-compute, restart recovers ------------------ *)

let sigkill_recovery () =
  let root = fresh_path "cgra-chaos-kill" in
  let socket = fresh_path "cgra-chaos-kill" ^ ".sock" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let pid = fork_daemon ~root ~socket () in
  let ep = Client.Unix_socket socket in
  check "daemon came up" (wait_ready ep);
  (* compute and store the witness artifact *)
  let md5_before =
    match Client.map ~fallback:false ep (fir_spec ()) with
    | Ok (Client.Artifact { bytes; _ }) -> Digest.to_hex (Digest.string bytes)
    | _ ->
      check "fir mapped before the crash" false;
      ""
  in
  (* park a slow request in the daemon, then kill -9 mid-compute *)
  let slow_result = ref (Error "not started") in
  let th =
    Thread.create
      (fun () ->
        slow_result :=
          match Client.map ~fallback:false ep (slow_spec ()) with
          | Ok _ -> Error "slow request completed before the kill"
          | Error e -> Ok (Client.map_error_to_string e))
      ()
  in
  Thread.delay 1.0;
  sigkill pid;
  Thread.join th;
  (match !slow_result with
  | Ok reason ->
    check "killed daemon yields a typed client error"
      (String.length reason > 0)
  | Error e -> check ("typed error from killed daemon: " ^ e) false);
  (* simulate the debris a mid-write death leaves (the kill itself lands
     in compute far more often than in the store's microsecond write
     window, so plant it deterministically) *)
  Out_channel.with_open_bin (Filename.concat root "tmp.1.0.0") (fun oc ->
      Out_channel.output_string oc "torn");
  (* restart on the same store *)
  let pid2 = fork_daemon ~root ~socket () in
  Fun.protect ~finally:(fun () -> sigterm pid2) @@ fun () ->
  check "daemon restarted on the crashed store" (wait_ready ep);
  check "startup scan swept the orphan"
    (not (Sys.file_exists (Filename.concat root "tmp.1.0.0")));
  match Client.map ~fallback:false ep (fir_spec ()) with
  | Ok (Client.Artifact { bytes; source = Client.Daemon { cached }; _ }) ->
    check "witness artifact survived the crash as a cache hit" cached;
    check "bytes identical across the crash"
      (Digest.to_hex (Digest.string bytes) = md5_before)
  | _ -> check "witness artifact survived the crash" false

(* ---- scenario: half-closed and stalled (slow-loris) sockets ----------- *)

let starved_sockets () =
  let root = fresh_path "cgra-chaos-sock" in
  let socket = fresh_path "cgra-chaos-sock" ^ ".sock" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let pid = fork_daemon ~io_timeout_s:1.0 ~root ~socket () in
  Fun.protect ~finally:(fun () -> sigterm pid) @@ fun () ->
  let ep = Client.Unix_socket socket in
  check "daemon came up" (wait_ready ep);
  let raw_connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  in
  let eof_within s fd =
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
    match Unix.read fd (Bytes.create 64) 0 64 with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      false
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true
  in
  (* half-closed: two bytes of length prefix, then FIN *)
  let hc = raw_connect () in
  ignore (Unix.write_substring hc "\x00\x00" 0 2);
  Unix.shutdown hc Unix.SHUTDOWN_SEND;
  check "half-closed connection is dropped (typed truncated-frame path)"
    (eof_within 5.0 hc);
  Unix.close hc;
  (* slow-loris: two bytes of length prefix, then silence; SO_RCVTIMEO
     must fire and free the handler thread *)
  let loris = List.init 4 (fun _ -> raw_connect ()) in
  List.iter (fun fd -> ignore (Unix.write_substring fd "\x00\x00" 0 2)) loris;
  (* while the stalled peers hold their sockets, real traffic flows *)
  (match Client.ping ep with
  | Ok _ -> ()
  | Error e -> check ("daemon responsive despite stalled peers: " ^ e) false);
  check "stalled peers are dropped after the io timeout"
    (List.for_all (eof_within 5.0) loris);
  List.iter Unix.close loris

(* ---- scenario: oversized frame gets a typed answer -------------------- *)

let oversized_frame () =
  let root = fresh_path "cgra-chaos-big" in
  let socket = fresh_path "cgra-chaos-big" ^ ".sock" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let pid = fork_daemon ~root ~socket () in
  Fun.protect ~finally:(fun () -> sigterm pid) @@ fun () ->
  let ep = Client.Unix_socket socket in
  check "daemon came up" (wait_ready ep);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let length = Wire.max_frame + 1 in
  let prefix = Bytes.create 4 in
  Bytes.set_int32_be prefix 0 (Int32.of_int length);
  ignore (Unix.write fd prefix 0 4);
  (* the daemon must drain all of this so we can finish writing and
     read the typed error instead of catching a reset *)
  let chunk = Bytes.make 65536 'x' in
  let remaining = ref length in
  (try
     while !remaining > 0 do
       let n = Unix.write fd chunk 0 (min !remaining (Bytes.length chunk)) in
       remaining := !remaining - n
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  check "oversized payload was fully drained by the daemon" (!remaining = 0);
  (match Wire.read_frame fd with
  | Ok payload -> (
    match Wire.parse payload with
    | Ok sexp -> (
      match Protocol.response_of_sexp sexp with
      | Ok (Protocol.Error_r { reason }) ->
        let mentions_oversized =
          String.length reason >= 9 && String.sub reason 0 9 = "oversized"
        in
        check "typed oversized error names the cause" mentions_oversized
      | _ -> check "oversized frame answered with Error_r" false)
    | Error _ -> check "oversized answer parses" false)
  | Error _ -> check "typed answer before close on oversized frame" false);
  (* stream position is undefined past the bad frame: connection closes *)
  match Wire.read_frame fd with
  | Error Wire.Eof -> ()
  | _ -> check "connection closed after the oversized answer" false

(* ---- scenario: server-side deadline ----------------------------------- *)

let deadline_timeout () =
  let root = fresh_path "cgra-chaos-dl" in
  let socket = fresh_path "cgra-chaos-dl" ^ ".sock" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let pid = fork_daemon ~deadline_ms:300 ~root ~socket () in
  Fun.protect ~finally:(fun () -> sigterm pid) @@ fun () ->
  let ep = Client.Unix_socket socket in
  check "daemon came up" (wait_ready ep);
  let t0 = Unix.gettimeofday () in
  (match Client.map ~fallback:false ep (slow_spec ()) with
  | Ok (Client.Timed_out { where }) ->
    check "timeout names where the search stopped" (String.length where > 0)
  | _ -> check "slow request under a 300 ms daemon deadline times out" false);
  check "timeout returned promptly, not after the full compute"
    (Unix.gettimeofday () -. t0 < 10.0);
  (* a timed-out outcome must not be cached: the next request computes
     again (and times out again) rather than replaying a stale verdict
     or deadlocking on a stranded flight *)
  match Client.map ~fallback:false ep (slow_spec ()) with
  | Ok (Client.Timed_out _) -> ()
  | _ -> check "second request recomputes and times out again" false

(* ---- scenario: overload shedding -------------------------------------- *)

let overload_shed () =
  let root = fresh_path "cgra-chaos-shed" in
  let socket = fresh_path "cgra-chaos-shed" ^ ".sock" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let pid =
    fork_daemon ~jobs:1 ~queue_limit:1 ~deadline_ms:2000 ~root ~socket ()
  in
  Fun.protect ~finally:(fun () -> sigterm pid) @@ fun () ->
  let ep = Client.Unix_socket socket in
  check "daemon came up" (wait_ready ep);
  (* four distinct slow cache-missing keys against a single worker and a
     queue limit of one: all but the first-arriving miss must be shed
     with the typed overloaded response, not queued without bound *)
  let results = Array.make 4 (Ok (Client.Unmappable { reason = "unset" })) in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            results.(i) <- Client.map ~fallback:false ep (slow_spec ~seed:i ()))
          ())
  in
  List.iter Thread.join threads;
  let shed =
    Array.to_list results
    |> List.filter (function
         | Error (Client.Rejected reason) ->
           String.length reason >= 16
           && String.sub reason 0 16 = "daemon overloade"
         | _ -> false)
    |> List.length
  in
  check "concurrent misses past the queue limit are shed" (shed >= 1);
  (* the daemon survives the storm *)
  match Client.ping ep with
  | Ok _ -> ()
  | Error e -> check ("daemon alive after the storm: " ^ e) false

(* ---- main ------------------------------------------------------------- *)

let () =
  (* a peer closing mid-write must surface as EPIPE, not kill the harness *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  scenario "torn store writes are swept" torn_store;
  scenario "SIGKILL mid-compute; restart recovers byte-identical artifacts"
    sigkill_recovery;
  scenario "half-closed and slow-loris sockets are dropped" starved_sockets;
  scenario "oversized frames get a typed answer" oversized_frame;
  scenario "server-side deadline returns typed Timed_out" deadline_timeout;
  if not quick then scenario "overload sheds with typed backpressure" overload_shed;
  if !failures > 0 then begin
    Printf.printf "chaos: %d invariant(s) broken\n%!" !failures;
    Stdlib.exit 1
  end;
  Printf.printf "chaos: all scenarios held\n%!"
