(* The CDCL solver, the CNF helpers, and the exact SAT mapping
   backend: solver unit tests, beam/exact equivalence on the kernel
   suite, and portfolio determinism. *)

module S = Cgra_sat.Solver
module Cnf = Cgra_sat.Cnf

let fresh n =
  let s = S.create () in
  let vs = Array.init n (fun _ -> S.new_var s) in
  (s, vs)

(* -- solver units -------------------------------------------------- *)

let test_trivial_sat () =
  let s, v = fresh 2 in
  S.add_clause s [ v.(0); v.(1) ];
  S.add_clause s [ -v.(0); v.(1) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 true" true (S.value s v.(1))

let test_trivial_unsat () =
  let s, v = fresh 1 in
  S.add_clause s [ v.(0) ];
  S.add_clause s [ -v.(0) ];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_empty_clause_unsat () =
  let s, _ = fresh 3 in
  S.add_clause s [];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_no_clauses_sat () =
  let s, _ = fresh 5 in
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat)

(* Pigeonhole: n+1 pigeons into n holes is UNSAT and requires real
   clause learning to prove at n = 5 within a sane budget. *)
let pigeonhole n =
  let s = S.create () in
  let x = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> S.new_var s)) in
  for p = 0 to n do
    Cnf.exactly_one s (Array.to_list x.(p) |> List.map (fun v -> v))
  done;
  for h = 0 to n - 1 do
    Cnf.at_most_one s (Array.to_list (Array.map (fun row -> row.(h)) x))
  done;
  s

let test_pigeonhole_unsat () =
  let s = pigeonhole 5 in
  Alcotest.(check bool) "php(6,5) unsat" true (S.solve s = S.Unsat)

(* Graph colouring of C5 (odd cycle): 2 colours UNSAT, 3 colours SAT.
   Exercises exactly_one plus binary clauses. *)
let colour_cycle n_vertices n_colours =
  let s = S.create () in
  let c =
    Array.init n_vertices (fun _ ->
        Array.init n_colours (fun _ -> S.new_var s))
  in
  Array.iter (fun row -> Cnf.exactly_one s (Array.to_list row)) c;
  for v = 0 to n_vertices - 1 do
    let w = (v + 1) mod n_vertices in
    for k = 0 to n_colours - 1 do
      S.add_clause s [ -c.(v).(k); -c.(w).(k) ]
    done
  done;
  s

let test_colouring () =
  Alcotest.(check bool) "C5/2 unsat" true (S.solve (colour_cycle 5 2) = S.Unsat);
  Alcotest.(check bool) "C5/3 sat" true (S.solve (colour_cycle 5 3) = S.Sat)

let test_at_most_k () =
  (* sum of 6 literals <= 3, forced 4 true -> UNSAT *)
  let s, v = fresh 6 in
  Cnf.at_most_k s (Array.to_list v) 3;
  for i = 0 to 3 do
    S.add_clause s [ v.(i) ]
  done;
  Alcotest.(check bool) "4 > 3 unsat" true (S.solve s = S.Unsat);
  (* and <= 3 with exactly 3 forced true is SAT, others can be false *)
  let s, v = fresh 6 in
  Cnf.at_most_k s (Array.to_list v) 3;
  for i = 0 to 2 do
    S.add_clause s [ v.(i) ]
  done;
  Alcotest.(check bool) "3 <= 3 sat" true (S.solve s = S.Sat)

let test_budget_unknown () =
  let s = pigeonhole 7 in
  Alcotest.(check bool) "tiny budget gives Unknown" true
    (S.solve ~conflict_budget:5 s = S.Unknown)

let test_model_deterministic () =
  (* Same construction twice -> identical models, bit for bit. *)
  let build () =
    let s = S.create () in
    let v = Array.init 40 (fun _ -> S.new_var s) in
    for i = 0 to 38 do
      S.add_clause s [ v.(i); v.(i + 1) ];
      if i mod 3 = 0 then S.add_clause s [ -v.(i); v.((i + 7) mod 40) ]
    done;
    Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
    Array.map (fun var -> S.value s var) v
  in
  let m1 = build () and m2 = build () in
  Alcotest.(check bool) "identical models" true (m1 = m2)

(* -- cooperative cancellation -------------------------------------- *)

module Deadline = Cgra_util.Deadline

(* An expired deadline cancels mimicking budget exhaustion, so the
   solver state stays consistent: the same instance must be solvable to
   completion afterwards, with the same verdict and model a fresh
   solver produces. *)
let test_cancel_then_resume () =
  let expired = Deadline.after_ms 0 in
  (* UNSAT instance *)
  let s = pigeonhole 5 in
  Alcotest.(check bool) "expired deadline -> Unknown" true
    (S.solve ~deadline:expired s = S.Unknown);
  Alcotest.(check bool) "same solver finishes the proof afterwards" true
    (S.solve s = S.Unsat);
  (* SAT instance: the post-cancel model matches a fresh solver's *)
  let build () =
    let s = S.create () in
    let v = Array.init 40 (fun _ -> S.new_var s) in
    for i = 0 to 38 do
      S.add_clause s [ v.(i); v.(i + 1) ];
      if i mod 3 = 0 then S.add_clause s [ -v.(i); v.((i + 7) mod 40) ]
    done;
    (s, v)
  in
  let s1, v1 = build () in
  Alcotest.(check bool) "cancelled" true
    (S.solve ~deadline:expired s1 = S.Unknown);
  Alcotest.(check bool) "resumed to sat" true (S.solve s1 = S.Sat);
  let s2, v2 = build () in
  Alcotest.(check bool) "fresh sat" true (S.solve s2 = S.Sat);
  Alcotest.(check bool) "model identical to an uncancelled solver" true
    (Array.map (S.value s1) v1 = Array.map (S.value s2) v2)

(* qcheck: on random 3-CNF instances, an armed-but-never-fired deadline
   is an observer — verdict and model are those of a plain solve — and
   a cancelled solver re-solves to exactly the fresh solver's answer. *)
let arb_cnf =
  let open QCheck.Gen in
  let gen =
    int_range 3 12 >>= fun n_vars ->
    int_range 1 40 >>= fun n_clauses ->
    let lit = int_range 1 n_vars >>= fun v -> map (fun b -> if b then v else -v) bool in
    list_size (return n_clauses) (list_size (int_range 1 3) lit)
  in
  QCheck.make
    ~print:(fun cs ->
      String.concat "; "
        (List.map
           (fun c -> String.concat " " (List.map string_of_int c))
           cs))
    gen

let build_cnf clauses =
  let s = S.create () in
  let n = List.fold_left (List.fold_left (fun m l -> max m (abs l))) 0 clauses in
  let vars = Array.init n (fun _ -> S.new_var s) in
  List.iter
    (fun c ->
      S.add_clause s
        (List.map (fun l -> if l > 0 then vars.(l - 1) else -vars.(-l - 1)) c))
    clauses;
  (s, vars)

let model_of s vars verdict =
  match verdict with
  | S.Sat -> Some (Array.map (S.value s) vars)
  | S.Unsat | S.Unknown -> None

let prop_deadline_observer =
  QCheck.Test.make ~name:"unfired deadline leaves verdict and model alone"
    ~count:200 arb_cnf (fun clauses ->
      let s_plain, v_plain = build_cnf clauses in
      let plain = S.solve s_plain in
      let s_armed, v_armed = build_cnf clauses in
      let armed = S.solve ~deadline:(Deadline.after_ms 3_600_000) s_armed in
      plain = armed
      && model_of s_plain v_plain plain = model_of s_armed v_armed armed)

let prop_cancel_reusable =
  QCheck.Test.make ~name:"solver is reusable after a mid-solve cancel"
    ~count:200 arb_cnf (fun clauses ->
      let s_fresh, v_fresh = build_cnf clauses in
      let fresh_verdict = S.solve s_fresh in
      let s_cancel, v_cancel = build_cnf clauses in
      let cancelled = S.solve ~deadline:(Deadline.after_ms 0) s_cancel in
      let resumed = S.solve s_cancel in
      (* a contradiction provable at decision level 0 beats the deadline
         to the verdict — that is still deterministic, so allowed *)
      (cancelled = S.Unknown || cancelled = fresh_verdict)
      && resumed = fresh_verdict
      && model_of s_fresh v_fresh fresh_verdict
         = model_of s_cancel v_cancel resumed)

(* -- exact backend end-to-end -------------------------------------- *)

module FC = Cgra_core.Flow_config
module Flow = Cgra_core.Flow
module M = Cgra_core.Mapping
module Config = Cgra_arch.Config
module K = Cgra_kernels.Kernel_def
module R = Cgra_exp.Runner

let kernel slug = Option.get (Cgra_kernels.Kernels.by_slug slug)

(* The full context-aware flow for [slug]@[config] with the given
   backend — the same per-cell configuration the experiment runner
   uses, so these tests exercise exactly what the reports tabulate. *)
let cell_config slug config backend =
  { (R.cell_flow_config slug config R.Full) with FC.backend; retries = 0 }

let run_cell slug config backend =
  let k = kernel slug in
  Flow.run
    ~config:(cell_config slug config backend)
    (Config.cgra config) (K.cdfg k)

(* Every exact mapping must survive the independent validator and
   compute the kernel's golden memory image — cheap cells only, the
   full grid is the bench's optimality_report. *)
let test_exact_equivalence () =
  List.iter
    (fun (slug, config) ->
      let k = kernel slug in
      match run_cell slug config FC.Exact with
      | Error f ->
        Alcotest.failf "%s@%s: exact backend failed: %s" slug
          (Config.to_string config)
          f.Flow.reason
      | Ok (mapping, _) ->
        let program = Cgra_asm.Assemble.assemble mapping in
        (match Cgra_verify.Validator.check program with
        | [] -> ()
        | vs ->
          Alcotest.failf "%s@%s: validator: %s" slug
            (Config.to_string config)
            (String.concat "; "
               (List.map Cgra_verify.Validator.to_string vs)));
        let mem = K.fresh_mem k in
        ignore (Cgra_sim.Simulator.run program ~mem);
        Alcotest.(check bool)
          (Printf.sprintf "%s@%s: golden image" slug
             (Config.to_string config))
          true
          (mem = K.run_golden k))
    [ ("fir", Config.HOM64); ("fir", Config.HOM32);
      ("convolution", Config.HOM32) ]

(* The portfolio's contract: never worse than the beam under the
   flow's own cost (schedule length dominating, then routing moves);
   ties keep the beam result. *)
let mapping_cost config m =
  Array.fold_left (fun acc bm -> acc + (256 * bm.M.length)) 0 m.M.bbs
  + (config.FC.move_weight * M.total_moves m)

let test_portfolio_never_worse () =
  List.iter
    (fun slug ->
      let config = Config.HOM32 in
      let fc_beam = cell_config slug config FC.Beam in
      match (run_cell slug config FC.Beam, run_cell slug config FC.Portfolio)
      with
      | Ok (bm, _), Ok (pm, _) ->
        Alcotest.(check bool)
          (slug ^ ": portfolio cost <= beam cost")
          true
          (mapping_cost fc_beam pm <= mapping_cost fc_beam bm)
      | Error f, _ ->
        Alcotest.failf "%s: beam failed: %s" slug f.Flow.reason
      | _, Error f ->
        Alcotest.failf "%s: portfolio failed: %s" slug f.Flow.reason)
    [ "fir"; "convolution"; "sep_filter" ]

(* Determinism invariant: the racing layer must not leak scheduling
   noise into the artifact — the assembled program is byte-identical
   at any degree of expansion parallelism. *)
let test_portfolio_jobs_identical () =
  let digest_at jobs =
    let fc =
      { (cell_config "fir" Config.HOM32 FC.Portfolio) with
        FC.expand_jobs = jobs }
    in
    match Flow.run ~config:fc (Config.cgra Config.HOM32) (K.cdfg (kernel "fir")) with
    | Error f -> Alcotest.failf "fir portfolio jobs=%d failed: %s" jobs f.Flow.reason
    | Ok (mapping, _) ->
      (* [compile_seconds] is honest wall-clock; everything else must
         reproduce bit for bit, so zero it before hashing. *)
      let mapping = { mapping with M.compile_seconds = 0.0 } in
      Digest.string
        (Marshal.to_string (Cgra_asm.Assemble.assemble mapping) [])
  in
  let d1 = digest_at 1 in
  Alcotest.(check string) "jobs 1 = jobs 2" d1 (digest_at 2);
  Alcotest.(check string) "jobs 1 = jobs 8" d1 (digest_at 8)

(* The determinism contract of the deadline: armed but never fired, it
   is an observer — the assembled program is byte-identical to a run
   with no deadline at all, for every backend (beam search rounds,
   exact probes, and the portfolio race's combine rule). *)
let test_deadline_unfired_identical () =
  let digest_of ?deadline backend =
    let fc = cell_config "fir" Config.HOM32 backend in
    match
      Flow.run ~config:fc ?deadline (Config.cgra Config.HOM32)
        (K.cdfg (kernel "fir"))
    with
    | Error f ->
      Alcotest.failf "fir %s failed: %s" (FC.backend_to_string backend)
        f.Flow.reason
    | Ok (mapping, _) ->
      let mapping = { mapping with M.compile_seconds = 0.0 } in
      Digest.string (Marshal.to_string (Cgra_asm.Assemble.assemble mapping) [])
  in
  let armed = Cgra_util.Deadline.after_ms 3_600_000 in
  List.iter
    (fun backend ->
      Alcotest.(check string)
        (FC.backend_to_string backend ^ ": unfired deadline is bytes-neutral")
        (digest_of backend)
        (digest_of ~deadline:armed backend))
    [ FC.Beam; FC.Exact; FC.Portfolio ]

(* An expired deadline surfaces as the typed failure, never as an
   exception, and records where the search observed it. *)
let test_deadline_fired_typed () =
  let fc = cell_config "fir" Config.HOM32 FC.Beam in
  match
    Flow.run ~config:fc ~deadline:(Cgra_util.Deadline.after_ms 0)
      (Config.cgra Config.HOM32) (K.cdfg (kernel "fir"))
  with
  | Ok _ -> Alcotest.fail "expired deadline cannot produce a mapping"
  | Error f -> (
    match f.Flow.timed_out with
    | Some where ->
      Alcotest.(check bool) "where is recorded" true (String.length where > 0)
    | None -> Alcotest.failf "failure not typed as timeout: %s" f.Flow.reason)

let suite =
  [
    ( "sat.solver",
      [
        Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
        Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
        Alcotest.test_case "no clauses" `Quick test_no_clauses_sat;
        Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
        Alcotest.test_case "odd-cycle colouring" `Quick test_colouring;
        Alcotest.test_case "at_most_k" `Quick test_at_most_k;
        Alcotest.test_case "budget -> Unknown" `Quick test_budget_unknown;
        Alcotest.test_case "deterministic model" `Quick test_model_deterministic;
        Alcotest.test_case "cancel then resume" `Quick test_cancel_then_resume;
        QCheck_alcotest.to_alcotest prop_deadline_observer;
        QCheck_alcotest.to_alcotest prop_cancel_reusable;
      ] );
    ( "sat.exact",
      [
        Alcotest.test_case "exact mappings validate + golden" `Slow
          test_exact_equivalence;
        Alcotest.test_case "portfolio never worse than beam" `Slow
          test_portfolio_never_worse;
        Alcotest.test_case "portfolio byte-identical across jobs" `Slow
          test_portfolio_jobs_identical;
        Alcotest.test_case "unfired deadline is bytes-neutral" `Slow
          test_deadline_unfired_identical;
        Alcotest.test_case "fired deadline is a typed failure" `Quick
          test_deadline_fired_typed;
      ] );
  ]
