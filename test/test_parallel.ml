(* Tests for the parallel experiment harness: the domain pool, the
   thread-safe run cache, and the jobs-invariance of the artifacts. *)

module Pool = Cgra_util.Pool
module Runner = Cgra_exp.Runner

(* ---- Pool.map -------------------------------------------------------- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  let ys = Pool.map ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) ys

let test_pool_jobs_one () =
  let xs = List.init 10 Fun.id in
  Alcotest.(check (list int)) "sequential path" xs (Pool.map ~jobs:1 Fun.id xs)

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int)) "jobs > items" [ 2; 4 ]
    (Pool.map ~jobs:16 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 Fun.id [])

let test_pool_exception () =
  let boom = Failure "boom at 7" in
  Alcotest.check_raises "exception re-raised" boom (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 7 then raise boom else x)
           (List.init 32 Fun.id)))

let test_pool_runs_everything () =
  (* every item is processed exactly once even with contention *)
  let n = 500 in
  let hits = Array.make n (Atomic.make 0) in
  Array.iteri (fun i _ -> hits.(i) <- Atomic.make 0) hits;
  Pool.iter ~jobs:8 (fun i -> Atomic.incr hits.(i)) (List.init n Fun.id);
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "item %d processed %d times" i (Atomic.get c))
    hits

(* ---- run cache: compute-once under concurrency ----------------------- *)

let test_cache_computes_once () =
  Runner.clear_caches ();
  let k = List.hd Runner.kernels in
  let before = Runner.compute_count () in
  (* a storm of concurrent requests for the same cell *)
  let cells =
    Pool.map ~jobs:8
      (fun _ -> Runner.run_of k Cgra_arch.Config.HOM64 Runner.Basic)
      (List.init 16 Fun.id)
  in
  Alcotest.(check int) "computed exactly once" 1
    (Runner.compute_count () - before);
  match cells with
  | [] -> assert false
  | first :: rest ->
    List.iter
      (fun c ->
        Alcotest.(check bool) "all callers see the same value" true (c == first))
      rest

(* ---- cache poisoning regression --------------------------------------- *)

(* A compute that raises used to leave its slot in [Computing] forever:
   the first caller got the exception, every later caller of the same key
   hit [assert false] (or hung).  The memo must instead cache the failure
   and re-raise it to everyone, and a concurrent storm on a raising key
   must neither hang nor poison. *)
let test_cache_failure_not_poisoning () =
  let memo : (int, int) Runner.Memo.t = Runner.Memo.create 4 in
  let boom = Failure "memo compute failed" in
  Alcotest.check_raises "first caller sees the exception" boom (fun () ->
      ignore (Runner.Memo.get memo 1 (fun () -> raise boom)));
  (* the failure is cached: later callers re-raise without recomputing,
     and certainly without tripping the old [assert false] *)
  Alcotest.check_raises "second caller re-raises the cached failure" boom
    (fun () -> ignore (Runner.Memo.get memo 1 (fun () -> 42)));
  Alcotest.(check int) "failed compute claimed exactly once" 1
    (Runner.Memo.computed memo);
  (* other keys are unaffected *)
  Alcotest.(check int) "healthy key still computes" 7
    (Runner.Memo.get memo 2 (fun () -> 7));
  (* a concurrent storm on a raising key: every domain must terminate
     with the exception, with exactly one claim *)
  let storm : (int, int) Runner.Memo.t = Runner.Memo.create 4 in
  let outcomes =
    Pool.map ~jobs:8
      (fun _ ->
        match Runner.Memo.get storm 0 (fun () -> raise boom) with
        | (_ : int) -> "returned"
        | exception Failure msg -> msg)
      (List.init 16 Fun.id)
  in
  List.iter
    (fun o ->
      Alcotest.(check string) "every storm caller sees the failure"
        "memo compute failed" o)
    outcomes;
  Alcotest.(check int) "storm claimed exactly once" 1
    (Runner.Memo.computed storm)

(* A reset must not let a compute that was claimed *before* the reset
   publish its (now stale) result *after* it: the cleared cache would
   silently revive a value — or worse, a poisoned [Failed] slot — that
   the caller of [clear_caches] asked to forget. *)
let test_reset_discards_stale_publish () =
  let memo : (int, int) Runner.Memo.t = Runner.Memo.create 4 in
  let started = Atomic.make false and release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Runner.Memo.get memo 1 (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            111))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Runner.Memo.reset memo;
  Alcotest.(check int) "post-reset compute wins" 222
    (Runner.Memo.get memo 1 (fun () -> 222));
  Atomic.set release true;
  Alcotest.(check int) "pre-reset caller still gets its own value" 111
    (Domain.join d);
  Alcotest.(check int) "stale publish was discarded" 222
    (Runner.Memo.get memo 1 (fun () -> 333));
  (* same discipline for a stale *failure*: it must not poison the
     post-reset slot *)
  let memo2 : (int, int) Runner.Memo.t = Runner.Memo.create 4 in
  let started2 = Atomic.make false and release2 = Atomic.make false in
  let d2 =
    Domain.spawn (fun () ->
        match
          Runner.Memo.get memo2 1 (fun () ->
              Atomic.set started2 true;
              while not (Atomic.get release2) do
                Domain.cpu_relax ()
              done;
              failwith "stale failure")
        with
        | (_ : int) -> "returned"
        | exception Failure m -> m)
  in
  while not (Atomic.get started2) do
    Domain.cpu_relax ()
  done;
  Runner.Memo.reset memo2;
  Atomic.set release2 true;
  Alcotest.(check string) "pre-reset caller sees its own failure"
    "stale failure" (Domain.join d2);
  Alcotest.(check int) "stale failure does not poison the fresh cache" 42
    (Runner.Memo.get memo2 1 (fun () -> 42))

(* ---- persistent pool -------------------------------------------------- *)

(* One worker, two client lanes: jobs enqueued all-of-A-then-all-of-B
   must still execute A1 B1 A2 B2 ... — fair round-robin, not FIFO of
   arrival. *)
let test_persistent_pool_fairness () =
  let p = Pool.Persistent.create ~jobs:1 () in
  let gate = Atomic.make false and blocker_started = Atomic.make false in
  let order = ref [] in
  let order_m = Mutex.create () in
  let record tag () =
    Mutex.lock order_m;
    order := tag :: !order;
    Mutex.unlock order_m
  in
  (* occupy the single worker so the lane queues build up *)
  Alcotest.(check bool) "blocker accepted" true
    (Pool.Persistent.submit p ~lane:99 (fun () ->
         Atomic.set blocker_started true;
         while not (Atomic.get gate) do
           Domain.cpu_relax ()
         done));
  while not (Atomic.get blocker_started) do
    Domain.cpu_relax ()
  done;
  for i = 1 to 3 do
    ignore (Pool.Persistent.submit p ~lane:1 (record (Printf.sprintf "A%d" i)))
  done;
  for i = 1 to 3 do
    ignore (Pool.Persistent.submit p ~lane:2 (record (Printf.sprintf "B%d" i)))
  done;
  Alcotest.(check int) "six jobs queued behind the blocker" 7
    (Pool.Persistent.inflight p);
  Atomic.set gate true;
  Pool.Persistent.shutdown p;
  Alcotest.(check (list string)) "round-robin across lanes"
    [ "A1"; "B1"; "A2"; "B2"; "A3"; "B3" ]
    (List.rev !order);
  Alcotest.(check bool) "submit after shutdown is refused" false
    (Pool.Persistent.submit p ~lane:0 (fun () -> ()))

let test_persistent_pool_drains () =
  let p = Pool.Persistent.create ~jobs:4 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 100 do
    ignore (Pool.Persistent.submit p ~lane:(Atomic.get hits mod 5) (fun () ->
        Atomic.incr hits))
  done;
  Pool.Persistent.shutdown p;
  Alcotest.(check int) "every accepted job ran before shutdown returned" 100
    (Atomic.get hits);
  Alcotest.(check int) "nothing left inflight" 0 (Pool.Persistent.inflight p)

(* ---- jobs invariance -------------------------------------------------- *)

(* The full-artifact check lives in the bench driver (bench/main.exe all
   --jobs N is byte-identical for any N; see EXPERIMENTS.md); here a
   cheaper in-process version on a sub-grid keeps `dune runtest`
   exercising the property: every observable of a cell — mapping shape,
   cycle count, deterministic compile effort — must not depend on the
   number of domains that evaluated the grid. *)
let test_jobs_invariant () =
  let sub_grid =
    List.concat_map
      (fun k -> List.map (fun flow -> (k, flow)) Runner.flow_kinds)
      (List.filteri (fun i _ -> i < 2) Runner.kernels)
  in
  let signature (k, flow) =
    match Runner.run_of k Cgra_arch.Config.HET2 flow with
    | Runner.Mapped r ->
      Printf.sprintf "%s/%s: %d cycles, %d moves, %d work"
        k.Cgra_kernels.Kernel_def.slug (Runner.flow_label flow)
        r.Runner.cycles
        (Cgra_core.Mapping.total_moves r.Runner.mapping)
        r.Runner.compile_work
    | Runner.Unmappable { reason; _ } ->
      Printf.sprintf "%s/%s: unmappable (%s)"
        k.Cgra_kernels.Kernel_def.slug (Runner.flow_label flow) reason
  in
  Runner.clear_caches ();
  let seq = Pool.map ~jobs:1 signature sub_grid in
  Runner.clear_caches ();
  let par = Pool.map ~jobs:4 signature sub_grid in
  Alcotest.(check (list string)) "cells identical at jobs 1 vs 4" seq par

let test_clear_resets_compute_count () =
  Runner.clear_caches ();
  let k = List.hd Runner.kernels in
  ignore (Runner.run_of k Cgra_arch.Config.HOM64 Runner.Basic);
  Alcotest.(check bool) "computed at least once" true
    (Runner.compute_count () >= 1);
  Runner.clear_caches ();
  Alcotest.(check int) "counter reset with the caches" 0
    (Runner.compute_count ());
  ignore (Runner.run_of k Cgra_arch.Config.HOM64 Runner.Basic);
  Alcotest.(check int) "exactly one compute after the clear" 1
    (Runner.compute_count ())

(* ---- parallel population expansion ------------------------------------ *)

(* [expand_jobs] fans each search round's population out over domains; the
   expansion is RNG-free, so the mapping AND every deterministic telemetry
   counter must be identical at any job count — wall-clock is the only
   thing allowed to differ. *)
let test_expand_jobs_invariant () =
  let module S = Cgra_core.Search in
  let k = Option.get (Cgra_kernels.Kernels.by_slug "fft") in
  let cdfg = Cgra_kernels.Kernel_def.cdfg k in
  let cgra = Cgra_arch.Config.cgra Cgra_arch.Config.HET2 in
  let run jobs =
    let config =
      { Cgra_core.Flow_config.context_aware with expand_jobs = jobs }
    in
    match Cgra_core.Flow.run ~config cgra cdfg with
    | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
    | Ok (m, stats) ->
      let block_sig (bs : S.block_stats) =
        Printf.sprintf "%s: r%d a%d c%d nr%d ak%d ek%d ps%d ff%d rc%d pk%d"
          bs.S.block_name bs.S.rounds bs.S.attempts bs.S.children
          bs.S.route_failures bs.S.acmap_kills bs.S.ecmap_kills
          bs.S.prune_survivors bs.S.finalize_failures bs.S.recomputes
          bs.S.population_peak
      in
      Printf.sprintf "moves %d, work %d, retries %d | %s"
        (Cgra_core.Mapping.total_moves m)
        stats.Cgra_core.Flow.work stats.Cgra_core.Flow.retries_used
        (String.concat "; " (List.map block_sig stats.Cgra_core.Flow.search))
  in
  let seq = run 1 in
  Alcotest.(check string) "jobs 2 byte-identical" seq (run 2);
  Alcotest.(check string) "jobs 8 byte-identical" seq (run 8)

(* The search_report artifact is built from those counters only, so the
   rendered report must also be byte-identical however the grid cells are
   evaluated. *)
let test_search_report_jobs_invariant () =
  let report jobs =
    Runner.clear_caches ();
    Pool.iter ~jobs
      (fun k -> ignore (Runner.run_of k Cgra_arch.Config.HET2 Runner.Full))
      Runner.kernels;
    Cgra_exp.Figures.search_report ()
  in
  Alcotest.(check string) "search_report identical at jobs 1 vs 4" (report 1)
    (report 4)

(* Keyed per-cell seeds: the same cell reproduces in isolation, outside the
   cache and independent of any other cell having run. *)
let test_cell_reproducible_in_isolation () =
  let k = List.hd Runner.kernels in
  let config = Cgra_arch.Config.HOM64 in
  let fc = Runner.cell_flow_config k.Cgra_kernels.Kernel_def.slug config Runner.Basic in
  let cgra = Cgra_arch.Config.cgra config in
  let cdfg = Cgra_kernels.Kernel_def.cdfg k in
  let direct =
    match Cgra_core.Flow.run ~config:fc cgra cdfg with
    | Ok (m, _) -> Cgra_core.Mapping.total_moves m
    | Error f -> Alcotest.fail f.Cgra_core.Flow.reason
  in
  match Runner.run_of k config Runner.Basic with
  | Runner.Unmappable { reason; _ } -> Alcotest.fail reason
  | Runner.Mapped r ->
    Alcotest.(check int) "cached cell equals direct run" direct
      (Cgra_core.Mapping.total_moves r.Runner.mapping)

let suite =
  [ ( "parallel",
      [ Alcotest.test_case "pool preserves order" `Quick test_pool_order;
        Alcotest.test_case "pool jobs=1" `Quick test_pool_jobs_one;
        Alcotest.test_case "pool jobs > items" `Quick
          test_pool_more_jobs_than_items;
        Alcotest.test_case "pool re-raises" `Quick test_pool_exception;
        Alcotest.test_case "pool covers every item" `Quick
          test_pool_runs_everything;
        Alcotest.test_case "cache computes once" `Quick test_cache_computes_once;
        Alcotest.test_case "cache failure is cached, not poisoning" `Quick
          test_cache_failure_not_poisoning;
        Alcotest.test_case "clear_caches resets compute count" `Quick
          test_clear_resets_compute_count;
        Alcotest.test_case "reset discards stale publishes" `Quick
          test_reset_discards_stale_publish;
        Alcotest.test_case "persistent pool is lane-fair" `Quick
          test_persistent_pool_fairness;
        Alcotest.test_case "persistent pool drains on shutdown" `Quick
          test_persistent_pool_drains;
        Alcotest.test_case "cell reproducible in isolation" `Quick
          test_cell_reproducible_in_isolation;
        Alcotest.test_case "expand_jobs invariant" `Slow
          test_expand_jobs_invariant;
        Alcotest.test_case "search_report jobs-invariant" `Slow
          test_search_report_jobs_invariant;
        Alcotest.test_case "artifacts jobs-invariant" `Slow test_jobs_invariant ] ) ]
