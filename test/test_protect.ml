(* Context-memory protection: the SECDED/parity codec laws (qcheck), the
   protected simulator path (correction, scrubbing, typed uncorrectable
   errors), the serve-key protection knob, the pay-for-protection energy
   split, and the fault-campaign regressions — protection-off campaigns
   byte-identical to the pre-protection engine, injection sites shared
   across protection levels, and RF injections never landing on dead
   tiles of a degraded array. *)

module P = Cgra_arch.Protection
module Ecc = Cgra_asm.Ecc
module Asm = Cgra_asm.Assemble
module Sim = Cgra_sim.Simulator
module Cgra = Cgra_arch.Cgra
module Config = Cgra_arch.Config
module Flow = Cgra_core.Flow
module FC = Cgra_core.Flow_config
module F = Cgra_verify.Fault
module K = Cgra_kernels.Kernel_def
module Key = Cgra_serve.Key
module E = Cgra_power.Energy

let map_kernel ?(flow = FC.basic) slug config =
  let k = Option.get (Cgra_kernels.Kernels.by_slug slug) in
  let cdfg = K.cdfg k in
  match Flow.run ~config:flow (Config.cgra config) cdfg with
  | Ok (m, _) -> (k, m)
  | Error f -> Alcotest.fail (slug ^ ": " ^ f.Flow.reason)

let base = lazy (map_kernel "fir" Config.HOM64)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- codec laws ------------------------------------------------------- *)

let flip w bit = Int64.logxor w (Int64.shift_left 1L bit)

let arb_word_bit =
  QCheck.(pair (map Int64.of_int int) (int_bound 63))

let arb_word_two_bits =
  QCheck.(triple (map Int64.of_int int) (int_bound 63) (int_bound 63))

let prop_secded_clean =
  QCheck.Test.make ~count:500 ~name:"secded: pristine word decodes Clean"
    QCheck.(map Int64.of_int int)
    (fun w -> Ecc.decode P.Secded ~data:w ~check:(Ecc.check_bits P.Secded w) = Ecc.Clean)

let prop_secded_corrects =
  QCheck.Test.make ~count:500
    ~name:"secded: any single data-bit flip is corrected to the original"
    arb_word_bit
    (fun (w, bit) ->
      Ecc.decode P.Secded ~data:(flip w bit) ~check:(Ecc.check_bits P.Secded w)
      = Ecc.Corrected w)

let prop_secded_detects_double =
  QCheck.Test.make ~count:500
    ~name:"secded: any double data-bit flip is detected, never corrected"
    arb_word_two_bits
    (fun (w, b1, b2) ->
      QCheck.assume (b1 <> b2);
      Ecc.decode P.Secded ~data:(flip (flip w b1) b2)
        ~check:(Ecc.check_bits P.Secded w)
      = Ecc.Detected)

let prop_parity_detects_odd =
  QCheck.Test.make ~count:500 ~name:"parity: single flip detected"
    arb_word_bit
    (fun (w, bit) ->
      Ecc.decode P.Parity ~data:(flip w bit) ~check:(Ecc.check_bits P.Parity w)
      = Ecc.Detected)

let prop_parity_misses_even =
  QCheck.Test.make ~count:500
    ~name:"parity: double flip escapes as Clean (the whole point of secded)"
    arb_word_two_bits
    (fun (w, b1, b2) ->
      QCheck.assume (b1 <> b2);
      Ecc.decode P.Parity ~data:(flip (flip w b1) b2)
        ~check:(Ecc.check_bits P.Parity w)
      = Ecc.Clean)

let test_check_words () =
  let _, m = Lazy.force base in
  let prog = Asm.assemble m in
  Array.iter
    (fun tp ->
      let words = Asm.encode_tile tp in
      let unprot = Asm.check_words P.Unprotected tp in
      Alcotest.(check bool)
        "unprotected check words are all zero" true
        (Array.for_all (fun c -> c = 0) unprot);
      Alcotest.(check int) "one check entry per context word"
        (Array.length words)
        (Array.length (Asm.check_words P.Secded tp));
      Array.iteri
        (fun i w ->
          Alcotest.(check int) "check_words = per-word check_bits"
            (Ecc.check_bits P.Secded w)
            (Asm.check_words P.Secded tp).(i))
        words)
    prog.Asm.tiles

(* ---- profile spellings ------------------------------------------------ *)

let test_profile_strings () =
  List.iter
    (fun (s, p) ->
      (match P.profile_of_string s with
       | Some got ->
         Alcotest.(check string) ("parse " ^ s) (P.profile_to_string p)
           (P.profile_to_string got)
       | None -> Alcotest.fail ("profile_of_string rejected " ^ s));
      (* canonical spelling round-trips *)
      match P.profile_of_string (P.profile_to_string p) with
      | Some got ->
        Alcotest.(check string) "canonical round-trip"
          (P.profile_to_string p) (P.profile_to_string got)
      | None -> Alcotest.fail ("canonical spelling rejected for " ^ s))
    [ ("none", P.none);
      ("parity", P.parity);
      ("secded", P.secded);
      ("cm64=secded,cm32=parity,cm16=none",
       { P.cm64 = P.Secded; cm32 = P.Parity; cm16 = P.Unprotected });
      ("cm16=secded,cm64=none,cm32=none",
       { P.cm64 = P.Unprotected; cm32 = P.Unprotected; cm16 = P.Secded }) ];
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (P.profile_of_string s = None))
    [ "bogus"; "cm64=secded"; "cm64=x,cm32=none,cm16=none"; "" ]

(* ---- protected simulation -------------------------------------------- *)

let protect ?(upsets = []) ?(scrub_interval = P.default_scrub_interval) profile
    =
  { Sim.profile; upsets; scrub_interval }

(* A (tile, word) that the program actually stores: the first tile with a
   nonempty context image. *)
let some_site prog =
  let rec go t =
    if t >= Array.length prog.Asm.tiles then Alcotest.fail "no context words"
    else if Array.length (Asm.encode_tile prog.Asm.tiles.(t)) > 0 then t
    else go (t + 1)
  in
  go 0

let test_protected_run_clean () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let mem = K.fresh_mem k in
  let r = Sim.run ~protect:(protect P.secded) prog ~mem in
  Alcotest.(check bool) "functional" true (mem = K.run_golden k);
  match r.Sim.ecc with
  | None -> Alcotest.fail "protected run must report ecc counters"
  | Some e ->
    Alcotest.(check int) "nothing detected" 0 e.Sim.detected;
    Alcotest.(check int) "nothing corrected" 0 e.Sim.corrected

let test_protected_run_matches_unprotected () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let mem_u = K.fresh_mem k and mem_p = K.fresh_mem k in
  let u = Sim.run prog ~mem:mem_u in
  let p = Sim.run ~protect:(protect P.secded) prog ~mem:mem_p in
  Alcotest.(check bool) "same memory image" true (mem_u = mem_p);
  Alcotest.(check int) "same cycles" u.Sim.cycles p.Sim.cycles;
  Alcotest.(check int) "same fetches"
    (Array.fold_left (fun a (t : Sim.activity) -> a + t.Sim.fetches) 0
       u.Sim.activity)
    (Array.fold_left (fun a (t : Sim.activity) -> a + t.Sim.fetches) 0
       p.Sim.activity);
  Alcotest.(check bool) "unprotected run has no ecc record" true
    (u.Sim.ecc = None)

let test_secded_corrects_upset () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let tile = some_site prog in
  let up = { Sim.up_tile = tile; up_word = 0; up_bit = 17 } in
  let mem = K.fresh_mem k in
  let r = Sim.run ~protect:(protect ~upsets:[ up ] P.secded) prog ~mem in
  Alcotest.(check bool) "functional despite the upset" true
    (mem = K.run_golden k);
  match r.Sim.ecc with
  | None -> Alcotest.fail "no ecc record"
  | Some e ->
    Alcotest.(check bool) "at least one correction" true (e.Sim.corrected >= 1)

let test_parity_detects_upset () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let tile = some_site prog in
  let up = { Sim.up_tile = tile; up_word = 0; up_bit = 3 } in
  let mem = K.fresh_mem k in
  (* scrub every cycle: the upset is reached even if the word itself is
     never fetched on the executed path *)
  match
    Sim.run ~protect:(protect ~upsets:[ up ] ~scrub_interval:1 P.parity) prog
      ~mem
  with
  | exception Sim.Sim_error (Sim.Uncorrectable_cm _) -> ()
  | exception e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "parity upset must be an uncorrectable machine check"

let test_secded_detects_double_upset () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let tile = some_site prog in
  let ups =
    [ { Sim.up_tile = tile; up_word = 0; up_bit = 5 };
      { Sim.up_tile = tile; up_word = 0; up_bit = 41 } ]
  in
  let mem = K.fresh_mem k in
  match
    Sim.run ~protect:(protect ~upsets:ups ~scrub_interval:1 P.secded) prog ~mem
  with
  | exception Sim.Sim_error (Sim.Uncorrectable_cm _) -> ()
  | exception e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "double upset must be an uncorrectable machine check"

let test_scrub_runs () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let mem = K.fresh_mem k in
  let r = Sim.run ~protect:(protect ~scrub_interval:64 P.secded) prog ~mem in
  Alcotest.(check bool) "functional" true (mem = K.run_golden k);
  match r.Sim.ecc with
  | None -> Alcotest.fail "no ecc record"
  | Some e ->
    Alcotest.(check bool) "scrub passes happened" true (e.Sim.scrub_cycles > 0);
    Alcotest.(check bool) "scrub read words" true
      (Array.exists (fun n -> n > 0) e.Sim.scrub_reads)

let test_scrub_repairs_upset () =
  (* With a scrub every cycle, the background pass repairs the upset even
     before the word is fetched — and the repair is counted. *)
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let tile = some_site prog in
  let up = { Sim.up_tile = tile; up_word = 0; up_bit = 60 } in
  let mem = K.fresh_mem k in
  let r =
    Sim.run ~protect:(protect ~upsets:[ up ] ~scrub_interval:1 P.secded) prog
      ~mem
  in
  Alcotest.(check bool) "functional" true (mem = K.run_golden k);
  match r.Sim.ecc with
  | None -> Alcotest.fail "no ecc record"
  | Some e ->
    Alcotest.(check bool) "the scrub (or fetch) corrected it" true
      (e.Sim.corrected >= 1)

(* ---- energy ----------------------------------------------------------- *)

let test_protection_energy_split () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let cgra = m.Cgra_core.Mapping.cgra in
  let mem_u = K.fresh_mem k and mem_p = K.fresh_mem k in
  let ru = Sim.run prog ~mem:mem_u in
  let rp = Sim.run ~protect:(protect P.secded) prog ~mem:mem_p in
  let eu = E.cgra cgra ru in
  let ep = E.cgra ~protect:P.secded cgra rp in
  Alcotest.(check (float 1e-9)) "unprotected breakdown has zero protect term"
    0.0 eu.E.protect_pj;
  Alcotest.(check bool) "protection costs energy" true (ep.E.protect_pj > 0.0);
  Alcotest.(check (float 1e-6)) "total = unprotected total + protect term"
    (eu.E.total_pj +. ep.E.protect_pj)
    ep.E.total_pj

(* ---- serve key knob --------------------------------------------------- *)

let test_key_protection_knob () =
  let fc = { FC.context_aware with protection = P.secded } in
  let knobs = Key.knobs_of_config fc in
  Alcotest.(check (option string)) "knob rendered" (Some "secded")
    (List.assoc_opt "protection" knobs);
  (* round-trip through the daemon-side parser *)
  (match Key.config_of_knobs knobs with
   | Ok fc' ->
     Alcotest.(check string) "protection survives the round-trip" "secded"
       (P.profile_to_string fc'.FC.protection)
   | Error e -> Alcotest.fail e);
  (* the knob changes the digest — each profile has its own store entry *)
  let spec p =
    match
      Key.spec_of_bundled ~slug:"fir" ~config:Config.HOM64
        ~flow:{ FC.basic with protection = p }
        ~opt:Key.Default ~faults:[]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let d_none = Key.digest (spec P.none)
  and d_par = Key.digest (spec P.parity)
  and d_sec = Key.digest (spec P.secded) in
  Alcotest.(check bool) "parity digest differs from none" true
    (d_none <> d_par);
  Alcotest.(check bool) "secded digest differs from both" true
    (d_sec <> d_none && d_sec <> d_par)

let test_key_rejects_bad_protection () =
  match Key.config_of_knobs [ ("protection", "bogus") ] with
  | Ok _ -> Alcotest.fail "bogus protection value must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the knob" true
      (contains_sub ~sub:"protection" e);
    Alcotest.(check bool) "error names the valid values" true
      (contains_sub ~sub:"secded" e)

(* ---- fault campaigns -------------------------------------------------- *)

let campaign ?protect ?cm_only ?(trials = 60) (k, m) =
  let prog = Asm.assemble m in
  F.run_campaign ~jobs:2 ?protect ?cm_only ~seed:42 ~trials ~key:"test/protect"
    ~fresh_mem:(fun () -> K.fresh_mem k)
    prog

let trial_strings c =
  List.map
    (fun (t : F.trial) ->
      Printf.sprintf "%d %s -> %s" t.F.index
        (F.injection_to_string t.F.injection)
        (F.outcome_to_string t.F.outcome))
    c.F.runs

let test_campaign_off_identical () =
  (* ?protect omitted, ~protect:none and an all-Unprotected csv are the
     same campaign as the pre-protection engine. *)
  let b = Lazy.force base in
  let plain = campaign b in
  let off = campaign ~protect:P.none b in
  Alcotest.(check (list string)) "none = omitted" (trial_strings plain)
    (trial_strings off);
  Alcotest.(check int) "summary detected is 0" 0 plain.F.summary.F.detected;
  Alcotest.(check int) "summary corrected is 0" 0 plain.F.summary.F.corrected

let injections c = List.map (fun (t : F.trial) -> t.F.injection) c.F.runs

let test_campaign_sites_shared_across_levels () =
  let b = Lazy.force base in
  let at p = campaign ~protect:p ~cm_only:true b in
  let c_none = at P.none and c_par = at P.parity and c_sec = at P.secded in
  Alcotest.(check bool) "parity flips the same bits" true
    (injections c_none = injections c_par);
  Alcotest.(check bool) "secded flips the same bits" true
    (injections c_none = injections c_sec);
  List.iter
    (fun (t : F.trial) ->
      match t.F.injection with
      | F.Context_bit _ -> ()
      | i ->
        Alcotest.fail
          ("cm_only campaign drew a non-CM site: " ^ F.injection_to_string i))
    c_none.F.runs

let test_secded_campaign_has_no_cm_escapes () =
  let b = Lazy.force base in
  let c = campaign ~protect:P.secded ~cm_only:true b in
  let s = c.F.summary in
  Alcotest.(check int) "no wrong output" 0 s.F.wrong_output;
  Alcotest.(check int) "no crashes" 0 s.F.crash;
  Alcotest.(check int) "no hangs" 0 s.F.hang;
  Alcotest.(check bool) "single-bit CM upsets get corrected" true
    (s.F.corrected > 0)

let test_campaign_jobs_invariant_protected () =
  let k, m = Lazy.force base in
  let prog = Asm.assemble m in
  let run jobs =
    F.run_campaign ~jobs ~protect:P.secded ~seed:9 ~trials:40 ~key:"test/ji"
      ~fresh_mem:(fun () -> K.fresh_mem k)
      prog
  in
  Alcotest.(check (list string)) "protected campaign jobs-invariant"
    (trial_strings (run 1))
    (trial_strings (run 4))

let test_rf_injection_skips_dead_tiles () =
  (* Regression: on a degraded array the RF draw must only target live
     tiles — a trial flipping registers of a dead tile exercises nothing
     and would count as a spurious mask. *)
  let dead = 5 in
  let flow = { FC.basic with faults = [ Cgra.Dead_tile { tile = dead } ] } in
  let k, m = map_kernel ~flow "fir" Config.HOM64 in
  let cgra = m.Cgra_core.Mapping.cgra in
  Alcotest.(check bool) "the mapped array really is degraded" false
    (Cgra.alive cgra dead);
  let prog = Asm.assemble m in
  let c =
    F.run_campaign ~jobs:2 ~seed:3 ~trials:300 ~key:"test/dead"
      ~fresh_mem:(fun () -> K.fresh_mem k)
      prog
  in
  let rf_total = ref 0 in
  List.iter
    (fun (t : F.trial) ->
      match t.F.injection with
      | F.Rf_bit { tile; _ } ->
        incr rf_total;
        Alcotest.(check bool)
          (Printf.sprintf "trial %d targets a live tile" t.F.index)
          true (Cgra.alive cgra tile)
      | _ -> ())
    c.F.runs;
  Alcotest.(check bool) "the campaign drew RF injections at all" true
    (!rf_total > 0)

let suite =
  [ ( "protect",
      [ QCheck_alcotest.to_alcotest prop_secded_clean;
        QCheck_alcotest.to_alcotest prop_secded_corrects;
        QCheck_alcotest.to_alcotest prop_secded_detects_double;
        QCheck_alcotest.to_alcotest prop_parity_detects_odd;
        QCheck_alcotest.to_alcotest prop_parity_misses_even;
        Alcotest.test_case "check words per kind" `Quick test_check_words;
        Alcotest.test_case "profile spellings" `Quick test_profile_strings;
        Alcotest.test_case "protected clean run" `Quick test_protected_run_clean;
        Alcotest.test_case "protected = unprotected observables" `Quick
          test_protected_run_matches_unprotected;
        Alcotest.test_case "secded corrects a planted upset" `Quick
          test_secded_corrects_upset;
        Alcotest.test_case "parity detects a planted upset" `Quick
          test_parity_detects_upset;
        Alcotest.test_case "secded detects a double upset" `Quick
          test_secded_detects_double_upset;
        Alcotest.test_case "scrubbing runs and is counted" `Quick
          test_scrub_runs;
        Alcotest.test_case "scrubbing repairs an upset" `Quick
          test_scrub_repairs_upset;
        Alcotest.test_case "protection energy split" `Quick
          test_protection_energy_split;
        Alcotest.test_case "serve key protection knob" `Quick
          test_key_protection_knob;
        Alcotest.test_case "serve key rejects bad protection" `Quick
          test_key_rejects_bad_protection;
        Alcotest.test_case "protection-off campaign identical" `Quick
          test_campaign_off_identical;
        Alcotest.test_case "sites shared across protection levels" `Quick
          test_campaign_sites_shared_across_levels;
        Alcotest.test_case "secded kills all CM escapes" `Quick
          test_secded_campaign_has_no_cm_escapes;
        Alcotest.test_case "protected campaign jobs-invariant" `Quick
          test_campaign_jobs_invariant_protected;
        Alcotest.test_case "RF injections skip dead tiles" `Quick
          test_rf_injection_skips_dead_tiles ] ) ]
